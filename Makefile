GO ?= go

.PHONY: build test race bench bench-smoke vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -short -race ./...

vet:
	$(GO) vet ./...

# bench regenerates BENCH_core.json: the materialization cost matrix
# ({delta, full-copy} x {workers 1,4} x {device 1x,2x}) the perf acceptance
# gates read. Best-of-3 per cell; see cmd/benchcore.
bench:
	$(GO) run ./cmd/benchcore -o BENCH_core.json

# bench-smoke is the CI variant: one round, printed to stdout.
bench-smoke:
	$(GO) run ./cmd/benchcore -rounds 1
