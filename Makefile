GO ?= go

.PHONY: build test race bench bench-smoke bench-check bench-record profile vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -short -race ./...

vet:
	$(GO) vet ./...

# bench regenerates BENCH_core.json: the materialization cost matrix
# ({delta, full-copy} x {workers 1,4} x {device 1x,2x}) the perf acceptance
# gates read. Best-of-10 per cell so the committed minima are stable; see
# cmd/benchcore.
bench:
	$(GO) run ./cmd/benchcore -rounds 10 -o BENCH_core.json

# bench-smoke is the CI variant: one round, printed to stdout.
bench-smoke:
	$(GO) run ./cmd/benchcore -rounds 1

# bench-check is the perf regression gate: re-measure and fail if the
# delta-path ns/state geomean regresses >15% against the committed
# baseline, after calibrating out machine speed via the full-copy rows.
# Also reports (informationally) where the run stands against the
# BENCH_trajectory.jsonl seed and best-known rows.
bench-check:
	$(GO) run ./cmd/benchcore -check BENCH_core.json -rounds 10

# bench-record refreshes BENCH_core.json AND appends a dated delta-path
# summary row (git SHA, geomean ns/state, geomean states/sec) to
# BENCH_trajectory.jsonl — the perf history that survives baseline
# refreshes.
bench-record:
	$(GO) run ./cmd/benchcore -rounds 10 -record -o BENCH_core.json

# profile writes pprof CPU and heap profiles of the measurement matrix for
# `go tool pprof bench_cpu.pprof` / `go tool pprof bench_mem.pprof`.
profile:
	$(GO) run ./cmd/benchcore -rounds 3 -cpuprofile bench_cpu.pprof -memprofile bench_mem.pprof -o /dev/null
