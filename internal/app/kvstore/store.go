// Package kvstore is a write-ahead-logged key-value store built purely
// against vfs.FS — the application workload for Chipmunk's app-level
// durability checking. Mutations buffer in memory until Sync, which appends
// CRC-framed records to the WAL and fsyncs it; Sync's return is the store's
// durability acknowledgement. Recovery loads the newest valid snapshot (if
// compaction ran), replays the WAL, and truncates at the first torn or
// corrupt record rather than ever returning unverified data.
//
// On-device layout: /kv/wal (the log), /kv/snap-<seq> (compaction
// snapshots).
package kvstore

import (
	"errors"
	"fmt"

	"chipmunk/internal/vfs"
)

// Dir is the store's directory on the file system under test.
const Dir = "/kv"

// walPath is the write-ahead log file.
const walPath = Dir + "/wal"

// compactThreshold is the durable WAL size (bytes) beyond which Sync
// triggers snapshot compaction.
const compactThreshold = 4096

// ErrNotFound reports a Get on an absent key.
var ErrNotFound = errors.New("kvstore: key not found")

// Store is a single-threaded KV store instance on one mounted file system.
type Store struct {
	fs   vfs.FS
	bugs Bugs

	walFD   vfs.FD
	walSize int64  // durable bytes in the WAL
	buf     []byte // encoded records not yet synced

	mem     map[string][]byte
	seq     uint64 // last issued mutation seqno
	synced  uint64 // last acknowledged (synced) seqno
	snapSeq uint64 // seqno covered by the loaded snapshot
	closed  bool
}

// Open mounts the store on fs, creating the layout on first use and running
// recovery otherwise: newest valid snapshot, then the WAL's valid prefix.
// A torn or corrupt WAL tail is truncated — never silently returned.
func Open(fs vfs.FS, bugs Bugs) (*Store, error) {
	s := &Store{fs: fs, bugs: bugs, mem: map[string][]byte{}}

	if err := fs.Mkdir(Dir); err != nil && !errors.Is(err, vfs.ErrExist) {
		return nil, fmt.Errorf("kvstore: creating %s: %w", Dir, err)
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}

	fd, err := fs.Open(walPath)
	if errors.Is(err, vfs.ErrNotExist) {
		fd, err = fs.Create(walPath)
	}
	if err != nil {
		return nil, fmt.Errorf("kvstore: opening wal: %w", err)
	}
	s.walFD = fd

	if err := s.replayWAL(); err != nil {
		fs.Close(fd)
		return nil, err
	}
	return s, nil
}

// replayWAL applies the WAL's valid prefix on top of the snapshot and
// truncates everything after it. Records must chain seq+1 within the log;
// a log that does not connect to the snapshot is discarded whole.
func (s *Store) replayWAL() error {
	st, err := s.fs.Stat(walPath)
	if err != nil {
		return fmt.Errorf("kvstore: stat wal: %w", err)
	}
	data := make([]byte, st.Size)
	if st.Size > 0 {
		if _, err := s.fs.Pread(s.walFD, data, 0); err != nil {
			return fmt.Errorf("kvstore: reading wal: %w", err)
		}
	}

	valid := 0 // bytes of validated prefix
	last := s.snapSeq
	expected := uint64(0) // next record's required seq; 0 = first record
	for valid < len(data) {
		rec, n, err := decodeRecord(data[valid:], !s.bugs.AcceptBadCRC)
		if err != nil {
			break // torn tail: truncate here
		}
		if expected != 0 && rec.seq != expected {
			break // hole in the log: nothing after it is trustworthy
		}
		if expected == 0 && rec.seq > s.snapSeq+1 {
			// The log's first record does not connect to the snapshot:
			// mutations are missing, so the whole log is untrustworthy.
			break
		}
		expected = rec.seq + 1
		if rec.seq > s.snapSeq {
			s.apply(rec)
			last = rec.seq
		}
		valid += n
	}
	if int64(valid) < st.Size {
		if err := s.fs.Truncate(walPath, int64(valid)); err != nil {
			return fmt.Errorf("kvstore: truncating torn wal tail: %w", err)
		}
		if err := s.fs.Fsync(s.walFD); err != nil {
			return fmt.Errorf("kvstore: syncing truncated wal: %w", err)
		}
	}
	s.walSize = int64(valid)
	s.seq = last
	s.synced = last
	return nil
}

func (s *Store) apply(rec record) {
	if rec.op == opPut {
		s.mem[rec.key] = rec.val
	} else {
		delete(s.mem, rec.key)
	}
}

// Put stores val under key. The mutation is buffered: it is not durable
// until Sync returns.
func (s *Store) Put(key string, val []byte) error {
	if s.closed {
		return vfs.ErrBadFD
	}
	if len(key) == 0 || len(key) > maxKeyLen || len(val) > maxValLen {
		return vfs.ErrInvalid
	}
	s.seq++
	s.buf = appendRecord(s.buf, s.seq, opPut, key, val)
	s.mem[key] = append([]byte(nil), val...)
	return nil
}

// Delete removes key. Deleting an absent key is still a mutation (it is
// logged), keeping the seqno/op mapping independent of store content.
func (s *Store) Delete(key string) error {
	if s.closed {
		return vfs.ErrBadFD
	}
	if len(key) == 0 || len(key) > maxKeyLen {
		return vfs.ErrInvalid
	}
	s.seq++
	s.buf = appendRecord(s.buf, s.seq, opDel, key, nil)
	delete(s.mem, key)
	return nil
}

// Get returns a copy of key's current (possibly unsynced) value.
func (s *Store) Get(key string) ([]byte, error) {
	v, ok := s.mem[key]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Sync makes every buffered mutation durable: append to the WAL, fsync,
// acknowledge. Once the log grows past compactThreshold it is folded into
// a snapshot.
func (s *Store) Sync() error {
	if s.closed {
		return vfs.ErrBadFD
	}
	if s.bugs.DropSyncFlush {
		// Seeded ack-loss bug: acknowledge without persisting anything.
		s.synced = s.seq
		return nil
	}
	if len(s.buf) > 0 {
		if _, err := s.fs.Pwrite(s.walFD, s.buf, s.walSize); err != nil {
			return fmt.Errorf("kvstore: appending wal: %w", err)
		}
		if err := s.fs.Fsync(s.walFD); err != nil {
			return fmt.Errorf("kvstore: syncing wal: %w", err)
		}
		s.walSize += int64(len(s.buf))
		s.buf = s.buf[:0]
	}
	s.synced = s.seq
	if s.walSize >= compactThreshold {
		return s.Compact()
	}
	return nil
}

// Close releases the WAL descriptor. It deliberately does NOT flush
// buffered mutations: an app that only persists on Close would mask exactly
// the missing-sync bugs the durability contract exists to catch.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	return s.fs.Close(s.walFD)
}

// Seq returns the last issued mutation seqno (recovery: last recovered).
func (s *Store) Seq() uint64 { return s.seq }

// Synced returns the last acknowledged seqno.
func (s *Store) Synced() uint64 { return s.synced }

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.mem) }

// Snapshot returns a copy of the store's current contents.
func (s *Store) Snapshot() map[string][]byte {
	out := make(map[string][]byte, len(s.mem))
	for k, v := range s.mem {
		out[k] = append([]byte(nil), v...)
	}
	return out
}
