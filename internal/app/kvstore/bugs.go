package kvstore

// Bugs selects deliberately seeded store defects, used to prove the
// application contract checker actually catches the bug classes it claims
// to. The same Bugs value must be given to the workload's store and to the
// checker's recovery (the checker tests the store-as-written, not a
// corrected twin).
type Bugs struct {
	// DropSyncFlush makes Sync acknowledge durability without writing or
	// flushing the buffered WAL tail — the classic ack-loss bug. Live
	// reads still serve from memory, so only crash states expose it.
	DropSyncFlush bool
	// AcceptBadCRC makes recovery trust structurally complete records whose
	// checksum does not match, silently returning corrupt values instead of
	// truncating the torn tail.
	AcceptBadCRC bool
}
