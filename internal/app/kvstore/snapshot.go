package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"

	"chipmunk/internal/vfs"
)

// Snapshot file format (snap-<seq>), big-endian:
//
//	[seq u64][count u32] ([klen u16][vlen u32][key][val])* [crc u32]
//
// Entries are sorted by key so the encoding is deterministic. The CRC
// covers everything before it; a snapshot that fails it (torn compaction)
// is ignored at recovery and an older one — or the empty state — is used.

const snapPrefix = "snap-"

// Compact folds the durable state into a fresh snapshot and empties the
// WAL. Called from Sync once the log passes compactThreshold, so buffered
// mutations are already flushed; callable directly too (it syncs first).
func (s *Store) Compact() error {
	if s.closed {
		return vfs.ErrBadFD
	}
	if len(s.buf) > 0 {
		if err := s.Sync(); err != nil {
			return err
		}
	}
	if s.walSize == 0 && s.snapSeq == s.synced {
		return nil // nothing to fold (or Sync already compacted)
	}

	// 1. Write and fsync the new snapshot; until it is durable the old
	// snapshot + full WAL remain the recovery source.
	data := encodeSnapshot(s.synced, s.mem)
	path := fmt.Sprintf("%s/%s%d", Dir, snapPrefix, s.synced)
	fd, err := s.fs.Create(path)
	if err != nil {
		return fmt.Errorf("kvstore: creating snapshot: %w", err)
	}
	if _, err := s.fs.Pwrite(fd, data, 0); err != nil {
		s.fs.Close(fd)
		return fmt.Errorf("kvstore: writing snapshot: %w", err)
	}
	if err := s.fs.Fsync(fd); err != nil {
		s.fs.Close(fd)
		return fmt.Errorf("kvstore: syncing snapshot: %w", err)
	}
	if err := s.fs.Close(fd); err != nil {
		return fmt.Errorf("kvstore: closing snapshot: %w", err)
	}

	// 2. Empty the WAL: its content is now covered by the snapshot.
	if err := s.fs.Truncate(walPath, 0); err != nil {
		return fmt.Errorf("kvstore: emptying wal: %w", err)
	}
	if err := s.fs.Fsync(s.walFD); err != nil {
		return fmt.Errorf("kvstore: syncing emptied wal: %w", err)
	}
	s.walSize = 0
	s.snapSeq = s.synced

	// 3. Remove superseded snapshots; recovery picks the highest valid one,
	// so a crash mid-cleanup is harmless.
	ents, err := s.fs.ReadDir(Dir)
	if err != nil {
		return fmt.Errorf("kvstore: listing snapshots: %w", err)
	}
	for _, e := range ents {
		if n, ok := snapSeqOf(e.Name); ok && n != s.snapSeq {
			if err := s.fs.Unlink(Dir + "/" + e.Name); err != nil {
				return fmt.Errorf("kvstore: removing old snapshot: %w", err)
			}
		}
	}
	return nil
}

// loadSnapshot finds the newest valid snapshot and loads it into mem.
func (s *Store) loadSnapshot() error {
	ents, err := s.fs.ReadDir(Dir)
	if err != nil {
		if errors.Is(err, vfs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("kvstore: listing %s: %w", Dir, err)
	}
	var seqs []uint64
	for _, e := range ents {
		if n, ok := snapSeqOf(e.Name); ok {
			seqs = append(seqs, n)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })

	for _, n := range seqs {
		path := fmt.Sprintf("%s/%s%d", Dir, snapPrefix, n)
		st, err := s.fs.Stat(path)
		if err != nil {
			continue
		}
		data := make([]byte, st.Size)
		fd, err := s.fs.Open(path)
		if err != nil {
			continue
		}
		_, rerr := s.fs.Pread(fd, data, 0)
		s.fs.Close(fd)
		if rerr != nil {
			continue
		}
		seq, mem, ok := decodeSnapshot(data)
		if !ok || seq != n {
			continue // torn compaction: fall back to an older snapshot
		}
		s.mem = mem
		s.snapSeq = seq
		return nil
	}
	return nil
}

func snapSeqOf(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, snapPrefix)
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func encodeSnapshot(seq uint64, mem map[string][]byte) []byte {
	keys := make([]string, 0, len(mem))
	for k := range mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var b []byte
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:], seq)
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(keys)))
	b = append(b, hdr[:]...)
	for _, k := range keys {
		v := mem[k]
		var eh [6]byte
		binary.BigEndian.PutUint16(eh[0:], uint16(len(k)))
		binary.BigEndian.PutUint32(eh[2:], uint32(len(v)))
		b = append(b, eh[:]...)
		b = append(b, k...)
		b = append(b, v...)
	}
	var tr [4]byte
	binary.BigEndian.PutUint32(tr[:], crc32.ChecksumIEEE(b))
	return append(b, tr[:]...)
}

func decodeSnapshot(b []byte) (seq uint64, mem map[string][]byte, ok bool) {
	if len(b) < 16 {
		return 0, nil, false
	}
	body, tail := b[:len(b)-4], b[len(b)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return 0, nil, false
	}
	seq = binary.BigEndian.Uint64(body[0:])
	count := int(binary.BigEndian.Uint32(body[8:]))
	mem = make(map[string][]byte, count)
	off := 12
	for i := 0; i < count; i++ {
		if off+6 > len(body) {
			return 0, nil, false
		}
		klen := int(binary.BigEndian.Uint16(body[off:]))
		vlen := int(binary.BigEndian.Uint32(body[off+2:]))
		off += 6
		if off+klen+vlen > len(body) {
			return 0, nil, false
		}
		key := string(body[off : off+klen])
		val := append([]byte(nil), body[off+klen:off+klen+vlen]...)
		mem[key] = val
		off += klen + vlen
	}
	if off != len(body) {
		return 0, nil, false
	}
	return seq, mem, true
}
