package kvstore

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"chipmunk/internal/fs/memfs"
	"chipmunk/internal/vfs"
)

func newFS(t *testing.T) vfs.FS {
	t.Helper()
	fs := memfs.New()
	if err := fs.Mkfs(); err != nil {
		t.Fatal(err)
	}
	return fs
}

func mustOpen(t *testing.T, fs vfs.FS, b Bugs) *Store {
	t.Helper()
	st, err := Open(fs, b)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return st
}

func TestRecordRoundTrip(t *testing.T) {
	b := appendRecord(nil, 7, opPut, "alpha", []byte("value"))
	b = appendRecord(b, 8, opDel, "beta", nil)

	r1, n1, err := decodeRecord(b, true)
	if err != nil {
		t.Fatal(err)
	}
	if r1.seq != 7 || r1.op != opPut || r1.key != "alpha" || string(r1.val) != "value" {
		t.Fatalf("record 1 = %+v", r1)
	}
	r2, n2, err := decodeRecord(b[n1:], true)
	if err != nil {
		t.Fatal(err)
	}
	if r2.seq != 8 || r2.op != opDel || r2.key != "beta" || len(r2.val) != 0 {
		t.Fatalf("record 2 = %+v", r2)
	}
	if n1+n2 != len(b) {
		t.Fatalf("consumed %d of %d bytes", n1+n2, len(b))
	}

	// Every strict prefix is torn.
	for i := 0; i < n1; i++ {
		if _, _, err := decodeRecord(b[:i], true); err == nil {
			t.Fatalf("prefix of %d bytes decoded", i)
		}
	}
	// A flipped value byte fails the CRC — unless the AcceptBadCRC decode
	// is asked to trust it.
	bad := append([]byte(nil), b...)
	bad[recHeaderLen+1] ^= 0xFF
	if _, _, err := decodeRecord(bad, true); err == nil {
		t.Fatal("corrupt record decoded with CRC checking on")
	}
	if _, _, err := decodeRecord(bad, false); err != nil {
		t.Fatalf("AcceptBadCRC decode rejected: %v", err)
	}
}

func TestPutGetDeleteAndRecovery(t *testing.T) {
	fs := newFS(t)
	st := mustOpen(t, fs, Bugs{})

	if err := st.Put("alpha", []byte("A1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("beta", []byte("B1")); err != nil {
		t.Fatal(err) // unsynced: visible live, lost on reopen
	}
	if v, err := st.Get("beta"); err != nil || string(v) != "B1" {
		t.Fatalf("live read of unsynced key: %q, %v", v, err)
	}
	if st.Seq() != 2 || st.Synced() != 1 {
		t.Fatalf("seq=%d synced=%d", st.Seq(), st.Synced())
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, fs, Bugs{})
	defer re.Close()
	if re.Seq() != 1 || re.Len() != 1 {
		t.Fatalf("recovered seq=%d len=%d, want 1,1", re.Seq(), re.Len())
	}
	if v, err := re.Get("alpha"); err != nil || string(v) != "A1" {
		t.Fatalf("alpha after recovery: %q, %v", v, err)
	}
	if _, err := re.Get("beta"); err != ErrNotFound {
		t.Fatalf("unsynced beta survived recovery: %v", err)
	}
}

func TestDeleteIsLogged(t *testing.T) {
	fs := newFS(t)
	st := mustOpen(t, fs, Bugs{})
	st.Put("alpha", []byte("A1"))
	st.Delete("alpha")
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	st.Close()

	re := mustOpen(t, fs, Bugs{})
	defer re.Close()
	if re.Seq() != 2 || re.Len() != 0 {
		t.Fatalf("recovered seq=%d len=%d, want 2,0", re.Seq(), re.Len())
	}
}

// walBytes reads the current WAL content directly.
func walBytes(t *testing.T, fs vfs.FS) []byte {
	t.Helper()
	stat, err := fs.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, stat.Size)
	fd, err := fs.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close(fd)
	if stat.Size > 0 {
		if _, err := fs.Pread(fd, buf, 0); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

func TestTornTailTruncated(t *testing.T) {
	fs := newFS(t)
	st := mustOpen(t, fs, Bugs{})
	st.Put("alpha", []byte("A1"))
	st.Sync()
	st.Put("beta", []byte("B1"))
	st.Sync()
	st.Close()

	// Tear the second record: drop its trailing 2 bytes.
	size := int64(len(walBytes(t, fs)))
	if err := fs.Truncate(walPath, size-2); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, fs, Bugs{})
	if re.Seq() != 1 || re.Len() != 1 {
		t.Fatalf("recovered seq=%d len=%d, want 1,1", re.Seq(), re.Len())
	}
	re.Close()

	// The torn tail was physically truncated, not just skipped: a second
	// recovery sees a clean log ending at the valid prefix.
	stat, err := fs.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if stat.Size >= size-2 {
		t.Fatalf("torn tail not truncated: wal size %d", stat.Size)
	}
}

func TestBadCRCTruncatedUnlessBugAcceptsIt(t *testing.T) {
	build := func() vfs.FS {
		fs := newFS(t)
		st := mustOpen(t, fs, Bugs{})
		st.Put("alpha", []byte("AAAA"))
		st.Sync()
		st.Put("beta", []byte("BBBB"))
		st.Sync()
		st.Close()
		// Flip a value byte inside the second record (lengths intact).
		wal := walBytes(t, fs)
		off := int64(len(wal) - recTrailerLen - 1)
		fd, err := fs.Open(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Pwrite(fd, []byte{wal[off] ^ 0xFF}, off); err != nil {
			t.Fatal(err)
		}
		fs.Close(fd)
		return fs
	}

	// Honest recovery: the corrupt record and everything after it is cut.
	re := mustOpen(t, build(), Bugs{})
	if re.Seq() != 1 {
		t.Fatalf("honest recovery kept %d mutations, want 1", re.Seq())
	}
	if _, err := re.Get("beta"); err != ErrNotFound {
		t.Fatal("corrupt beta record survived honest recovery")
	}
	re.Close()

	// AcceptBadCRC: the corrupt value is silently returned — the defect the
	// no-silent-corruption contract exists to catch.
	buggy := mustOpen(t, build(), Bugs{AcceptBadCRC: true})
	defer buggy.Close()
	if buggy.Seq() != 2 {
		t.Fatalf("buggy recovery kept %d mutations, want 2", buggy.Seq())
	}
	v, err := buggy.Get("beta")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(v, []byte("BBBB")) {
		t.Fatal("corruption did not reach the recovered value")
	}
}

func TestDropSyncFlushLosesAckedWrites(t *testing.T) {
	fs := newFS(t)
	st := mustOpen(t, fs, Bugs{DropSyncFlush: true})
	st.Put("alpha", []byte("A1"))
	if err := st.Sync(); err != nil {
		t.Fatal(err) // the bug acknowledges...
	}
	if st.Synced() != 1 {
		t.Fatalf("synced=%d, want 1", st.Synced())
	}
	if v, err := st.Get("alpha"); err != nil || string(v) != "A1" {
		t.Fatalf("live read: %q, %v", v, err) // ...and live reads still work
	}
	st.Close()

	re := mustOpen(t, fs, Bugs{DropSyncFlush: true})
	defer re.Close()
	if re.Seq() != 0 || re.Len() != 0 {
		t.Fatalf("acked write survived: seq=%d len=%d", re.Seq(), re.Len())
	}
}

func TestCompactionAndSnapshotRecovery(t *testing.T) {
	fs := newFS(t)
	st := mustOpen(t, fs, Bugs{})
	// Push the durable WAL past compactThreshold.
	for i := 0; i < 12; i++ {
		if err := st.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte('a' + i)}, 512)); err != nil {
			t.Fatal(err)
		}
		if err := st.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if st.snapSeq == 0 {
		t.Fatal("compaction never triggered")
	}
	st.Close()

	// Exactly one snapshot remains, and the WAL only holds post-snapshot
	// records.
	ents, err := fs.ReadDir(Dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range ents {
		if strings.HasPrefix(e.Name, snapPrefix) {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("snapshots on device = %d, want 1", snaps)
	}

	re := mustOpen(t, fs, Bugs{})
	defer re.Close()
	if re.Seq() != 12 || re.Len() != 12 {
		t.Fatalf("recovered seq=%d len=%d, want 12,12", re.Seq(), re.Len())
	}
	for i := 0; i < 12; i++ {
		key := fmt.Sprintf("k%02d", i)
		v, err := re.Get(key)
		if err != nil || len(v) != 512 || v[0] != byte('a'+i) {
			t.Fatalf("%s after snapshot recovery: %d bytes, %v", key, len(v), err)
		}
	}
}

func TestTornSnapshotIgnored(t *testing.T) {
	fs := newFS(t)
	st := mustOpen(t, fs, Bugs{})
	st.Put("alpha", []byte("A1"))
	st.Sync()
	st.Close()

	// A torn compaction left a garbage snapshot but had not truncated the
	// WAL yet: recovery must ignore the snapshot and replay the log.
	fd, err := fs.Create(Dir + "/" + snapPrefix + "99")
	if err != nil {
		t.Fatal(err)
	}
	fs.Pwrite(fd, []byte("not a snapshot"), 0)
	fs.Close(fd)

	re := mustOpen(t, fs, Bugs{})
	defer re.Close()
	if re.Seq() != 1 || re.Len() != 1 {
		t.Fatalf("recovered seq=%d len=%d, want 1,1", re.Seq(), re.Len())
	}
	if v, err := re.Get("alpha"); err != nil || string(v) != "A1" {
		t.Fatalf("alpha: %q, %v", v, err)
	}
}

func TestCloseDoesNotFlush(t *testing.T) {
	fs := newFS(t)
	st := mustOpen(t, fs, Bugs{})
	st.Put("alpha", []byte("A1"))
	st.Close() // never synced

	re := mustOpen(t, fs, Bugs{})
	defer re.Close()
	if re.Seq() != 0 {
		t.Fatalf("Close flushed %d unsynced mutations", re.Seq())
	}
}

func TestNoFDLeaks(t *testing.T) {
	fs := newFS(t)
	counter := fs.(vfs.FDCounter)

	st := mustOpen(t, fs, Bugs{})
	if got := counter.OpenFDs(); got != 1 {
		t.Fatalf("open store holds %d FDs, want 1 (the WAL)", got)
	}
	for i := 0; i < 12; i++ {
		st.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{'x'}, 512))
		st.Sync() // crosses compaction: snapshot create/close cycles
	}
	st.Close()
	if got := counter.OpenFDs(); got != 0 {
		t.Fatalf("%d FDs leaked after Close", got)
	}

	// Recovery (snapshot load + WAL replay) must also be leak-free.
	re := mustOpen(t, fs, Bugs{})
	if got := counter.OpenFDs(); got != 1 {
		t.Fatalf("recovered store holds %d FDs, want 1", got)
	}
	re.Close()
	if got := counter.OpenFDs(); got != 0 {
		t.Fatalf("%d FDs leaked after recovery+Close", got)
	}
}
