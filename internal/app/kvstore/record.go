package kvstore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// WAL record framing, big-endian:
//
//	[seq u64][op u8][klen u16][vlen u32][key][val][crc u32]
//
// The CRC (IEEE) covers everything before it. A record that is incomplete
// or fails the checksum marks the end of the valid WAL prefix — recovery
// truncates there rather than guessing.

const (
	opPut byte = 1
	opDel byte = 2

	recHeaderLen  = 8 + 1 + 2 + 4
	recTrailerLen = 4
	maxKeyLen     = 1 << 10
	maxValLen     = 1 << 20
)

// errTorn marks an incomplete or checksum-failing record: a legal crash
// artifact, not corruption of the store's logic.
var errTorn = errors.New("kvstore: torn or corrupt record")

type record struct {
	seq uint64
	op  byte
	key string
	val []byte
}

// appendRecord encodes one mutation onto dst.
func appendRecord(dst []byte, seq uint64, op byte, key string, val []byte) []byte {
	start := len(dst)
	var hdr [recHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[0:], seq)
	hdr[8] = op
	binary.BigEndian.PutUint16(hdr[9:], uint16(len(key)))
	binary.BigEndian.PutUint32(hdr[11:], uint32(len(val)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, key...)
	dst = append(dst, val...)
	crc := crc32.ChecksumIEEE(dst[start:])
	var tr [recTrailerLen]byte
	binary.BigEndian.PutUint32(tr[:], crc)
	return append(dst, tr[:]...)
}

// decodeRecord reads one record from the front of b. checkCRC=false is the
// AcceptBadCRC bug: structurally complete records are trusted as-is.
func decodeRecord(b []byte, checkCRC bool) (record, int, error) {
	if len(b) < recHeaderLen {
		return record{}, 0, errTorn
	}
	klen := int(binary.BigEndian.Uint16(b[9:]))
	vlen := int(binary.BigEndian.Uint32(b[11:]))
	if klen > maxKeyLen || vlen > maxValLen {
		return record{}, 0, errTorn
	}
	total := recHeaderLen + klen + vlen + recTrailerLen
	if len(b) < total {
		return record{}, 0, errTorn
	}
	body := b[:total-recTrailerLen]
	want := binary.BigEndian.Uint32(b[total-recTrailerLen:])
	if checkCRC && crc32.ChecksumIEEE(body) != want {
		return record{}, 0, errTorn
	}
	rec := record{
		seq: binary.BigEndian.Uint64(b[0:]),
		op:  b[8],
		key: string(b[recHeaderLen : recHeaderLen+klen]),
		val: append([]byte(nil), b[recHeaderLen+klen:recHeaderLen+klen+vlen]...),
	}
	if rec.op != opPut && rec.op != opDel {
		return record{}, 0, errTorn
	}
	return rec, total, nil
}
