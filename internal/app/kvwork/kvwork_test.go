package kvwork_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"chipmunk/internal/ace"
	"chipmunk/internal/app/kvstore"
	"chipmunk/internal/app/kvwork"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fs/memfs"
	"chipmunk/internal/harness"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// kvConfig builds the engine config for one system with the KV app and
// contract checker installed — what `chipmunk -app=kv` resolves to.
func kvConfig(sys harness.System, kb kvstore.Bugs, workers int) core.Config {
	cfg := harness.Options{Bugs: bugs.None(), Workers: workers}.ConfigFor(sys)
	cfg.AppFactory = kvwork.Factory(kb)
	cfg.Checker = kvwork.NewChecker(kb)
	return cfg
}

// TestReferenceModelHasNoViolations runs the KV smoke suite over all seven
// systems: a correct store on a correct file system must satisfy the
// durability contract in every crash state.
func TestReferenceModelHasNoViolations(t *testing.T) {
	suite := ace.KVSmoke()
	for _, sys := range harness.Systems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			cfg := kvConfig(sys, kvstore.Bugs{}, 1)
			for _, w := range suite {
				res, err := core.RunContext(context.Background(), cfg, w)
				if err != nil {
					t.Fatalf("%s: %v", w.Name, err)
				}
				for _, r := range res.OpResults {
					if r.Err != nil {
						t.Fatalf("%s: live op %s failed: %v", w.Name, r.Op, r.Err)
					}
				}
				if len(res.Violations) > 0 {
					t.Fatalf("%s: %d violations, first:\n%s",
						w.Name, len(res.Violations), res.Violations[0].String())
				}
			}
		})
	}
}

// TestSeededAckLossIsCaught proves the contract has teeth: with the
// DropSyncFlush bug the acked-durability contract must flag crash states on
// every one of the seven systems, while live op behavior stays clean (the
// bug is invisible without crash testing — the point of the paper).
func TestSeededAckLossIsCaught(t *testing.T) {
	kb := kvstore.Bugs{DropSyncFlush: true}
	w := workload.Workload{Name: "kv-ackloss", Ops: []workload.Op{
		{Kind: workload.OpKVPut, Path: "alpha", FDSlot: -1, Size: 64, Seed: 11},
		{Kind: workload.OpKVSync, FDSlot: -1},
		{Kind: workload.OpKVPut, Path: "beta", FDSlot: -1, Size: 32, Seed: 12},
		{Kind: workload.OpKVSync, FDSlot: -1},
	}}
	for _, sys := range harness.Systems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			res, err := core.RunContext(context.Background(), kvConfig(sys, kb, 1), w)
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res.OpResults {
				if r.Err != nil {
					t.Fatalf("live op %s failed: %v (the bug must be crash-only)", r.Op, r.Err)
				}
			}
			found := false
			for _, v := range res.Violations {
				if v.Kind == core.VAppContract && v.Contract == "acked-durability" {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("ack-loss bug not flagged; %d violations", len(res.Violations))
			}
		})
	}
}

// TestSerialParallelIdentical pins the determinism contract for the KV
// checker: worker count must not change results.
func TestSerialParallelIdentical(t *testing.T) {
	sys, err := harness.SystemByName("nova")
	if err != nil {
		t.Fatal(err)
	}
	w := ace.KVSmoke()[0]
	fingerprint := func(workers int) string {
		res, err := core.RunContext(context.Background(), kvConfig(sys, kvstore.Bugs{DropSyncFlush: true}, workers), w)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "states=%d violations=%d\n", res.StatesChecked, len(res.Violations))
		for _, v := range res.Violations {
			b.WriteString(v.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	serial, parallel := fingerprint(1), fingerprint(8)
	if serial != parallel {
		t.Fatalf("serial != parallel\n--- serial ---\n%s--- parallel ---\n%s", serial, parallel)
	}
}

// checkEnv builds a RunEnv + CheckContext for direct checker unit tests:
// the crash is taken after all ops completed (post-syscall of the last op).
func checkEnv(w workload.Workload) (core.RunEnv, *core.CheckContext) {
	results := make([]workload.Result, len(w.Ops))
	for i, op := range w.Ops {
		results[i] = workload.Result{Op: op}
	}
	env := core.RunEnv{Workload: w, OpResults: results}
	cctx := &core.CheckContext{Phase: core.PhasePost, Sys: len(w.Ops) - 1, AckedOps: len(w.Ops)}
	return env, cctx
}

// runStore executes the workload's app ops against a fresh memfs.
func runStore(t *testing.T, w workload.Workload, kb kvstore.Bugs) vfs.FS {
	t.Helper()
	fs := memfs.New()
	if err := fs.Mkfs(); err != nil {
		t.Fatal(err)
	}
	app, err := kvwork.Factory(kb)(fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range w.Ops {
		if err := app.Exec(op); err != nil {
			t.Fatalf("%s: %v", op, err)
		}
	}
	app.Close()
	return fs
}

var kvUnitWorkload = workload.Workload{Name: "kv-unit", Ops: []workload.Op{
	{Kind: workload.OpKVPut, Path: "alpha", FDSlot: -1, Size: 64, Seed: 11},
	{Kind: workload.OpKVSync, FDSlot: -1},
	{Kind: workload.OpKVPut, Path: "beta", FDSlot: -1, Size: 32, Seed: 12},
	{Kind: workload.OpKVSync, FDSlot: -1},
}}

func TestCheckerAcceptsFaithfulState(t *testing.T) {
	fs := runStore(t, kvUnitWorkload, kvstore.Bugs{})
	env, cctx := checkEnv(kvUnitWorkload)
	if f := kvwork.NewChecker(kvstore.Bugs{})(env).Check(fs, cctx); f != nil {
		t.Fatalf("faithful state flagged: %+v", f)
	}
}

func TestCheckerFlagsAckedLoss(t *testing.T) {
	fs := runStore(t, kvUnitWorkload, kvstore.Bugs{})
	// Tear the WAL back to its first record: the second, acked, put is gone.
	st, err := fs.Stat(kvstore.Dir + "/wal")
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(kvstore.Dir+"/wal", st.Size-3); err != nil {
		t.Fatal(err)
	}
	env, cctx := checkEnv(kvUnitWorkload)
	f := kvwork.NewChecker(kvstore.Bugs{})(env).Check(fs, cctx)
	if f == nil || f.Contract != "acked-durability" {
		t.Fatalf("torn acked record not flagged as acked-durability: %+v", f)
	}
}

func TestCheckerFlagsSilentCorruption(t *testing.T) {
	kb := kvstore.Bugs{AcceptBadCRC: true}
	fs := runStore(t, kvUnitWorkload, kb)
	// Flip a value byte in the WAL's final record. An honest store would
	// truncate at recovery; the AcceptBadCRC store serves the corrupt value
	// and the contract must call it out.
	st, err := fs.Stat(kvstore.Dir + "/wal")
	if err != nil {
		t.Fatal(err)
	}
	fd, err := fs.Open(kvstore.Dir + "/wal")
	if err != nil {
		t.Fatal(err)
	}
	off := st.Size - 5 // inside the last record's value bytes
	buf := make([]byte, 1)
	if _, err := fs.Pread(fd, buf, off); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Pwrite(fd, []byte{buf[0] ^ 0xFF}, off); err != nil {
		t.Fatal(err)
	}
	fs.Close(fd)

	env, cctx := checkEnv(kvUnitWorkload)
	f := kvwork.NewChecker(kb)(env).Check(fs, cctx)
	if f == nil || f.Contract != "no-silent-corruption" {
		t.Fatalf("corrupt value not flagged as no-silent-corruption: %+v", f)
	}
}

// TestNoFDLeaksAcrossSystems opens, mutates, recovers, and closes the store
// on each of the seven file systems, asserting every implementation's
// descriptor table drains — Close bookkeeping bugs surface here.
func TestNoFDLeaksAcrossSystems(t *testing.T) {
	for _, sys := range harness.Systems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			dev := pmem.NewDevice(core.DefaultDevSize)
			fs := sys.Factory(bugs.None())(persist.New(dev))
			counter, ok := fs.(vfs.FDCounter)
			if !ok {
				t.Fatalf("%s does not implement vfs.FDCounter", sys.Name)
			}
			if err := fs.Mkfs(); err != nil {
				t.Fatal(err)
			}

			app, err := kvwork.Factory(kvstore.Bugs{})(fs)
			if err != nil {
				t.Fatal(err)
			}
			for _, op := range kvUnitWorkload.Ops {
				if err := app.Exec(op); err != nil {
					t.Fatalf("%s: %v", op, err)
				}
			}
			if err := app.Close(); err != nil {
				t.Fatal(err)
			}
			if got := counter.OpenFDs(); got != 0 {
				t.Fatalf("%d FDs open after app Close", got)
			}

			// Recovery path: reopen the store on the same image.
			st, err := kvstore.Open(fs, kvstore.Bugs{})
			if err != nil {
				t.Fatal(err)
			}
			if st.Seq() != 2 {
				t.Fatalf("recovered %d mutations, want 2", st.Seq())
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			if got := counter.OpenFDs(); got != 0 {
				t.Fatalf("%d FDs open after recovery Close", got)
			}
		})
	}
}
