// Package kvwork adapts the WAL KV store (internal/app/kvstore) to the
// Chipmunk engine: an AppFactory that executes OpKV* workload ops against a
// live store, and a crash-contract Checker asserting the store's durability
// contract on every recovered crash state:
//
//  1. acked-durability — mutations acknowledged by a successful kvsync
//     survive recovery;
//  2. seqno-prefix — the recovered state is a prefix of the issued mutation
//     history, with no holes and nothing from the future;
//  3. no-silent-corruption — recovered values are byte-exact (torn or
//     corrupt WAL tails must be truncated, never returned);
//  4. recoverable — recovery itself succeeds on every crash state.
package kvwork

import (
	"bytes"
	"fmt"
	"sort"
	"strings"

	"chipmunk/internal/app/kvstore"
	"chipmunk/internal/core"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// Factory returns a workload.AppFactory that opens the KV store (with the
// given seeded bugs) on the run's file system. The engine installs it for
// both the oracle and the target, so live op results stay comparable even
// when a bug is seeded — the contract violations appear in crash states.
func Factory(bugs kvstore.Bugs) workload.AppFactory {
	return func(fs vfs.FS) (workload.AppInstance, error) {
		st, err := kvstore.Open(fs, bugs)
		if err != nil {
			return nil, err
		}
		return &instance{st: st}, nil
	}
}

type instance struct {
	st *kvstore.Store
}

func (in *instance) Exec(op workload.Op) error {
	switch op.Kind {
	case workload.OpKVPut:
		return in.st.Put(op.Path, workload.Data(op.Seed, op.Size))
	case workload.OpKVDel:
		return in.st.Delete(op.Path)
	case workload.OpKVSync:
		return in.st.Sync()
	case workload.OpKVGet:
		val, err := in.st.Get(op.Path)
		if err != nil {
			return err
		}
		if op.Seed != 0 && !bytes.Equal(val, workload.Data(op.Seed, op.Size)) {
			return fmt.Errorf("kv: value mismatch for key %q", op.Path)
		}
		return nil
	default:
		return fmt.Errorf("kvwork: not an app-level op: %v", op.Kind)
	}
}

func (in *instance) Close() error { return in.st.Close() }

// NewChecker returns the CheckerFactory for the KV durability contract.
// bugs must match the Factory's: the checker recovers with the store as
// written (a checker that silently corrected AcceptBadCRC would be testing
// a different program than the one that ran).
func NewChecker(bugs kvstore.Bugs) core.CheckerFactory {
	return func(env core.RunEnv) core.Checker {
		return &kvChecker{env: env, bugs: bugs}
	}
}

type kvChecker struct {
	env  core.RunEnv
	bugs kvstore.Bugs
}

func (c *kvChecker) Name() string { return "kv-wal" }

// Check recovers the store from one mounted crash state and verifies the
// durability contract against the issued mutation history. Safe for
// concurrent calls: it reads only the frozen RunEnv and the state's private
// file system.
func (c *kvChecker) Check(fs vfs.FS, cctx *core.CheckContext) *core.Finding {
	ops := c.env.Workload.Ops

	// Bound the legal recovery outcomes by seqno. low: mutations covered by
	// the last successful kvsync among fully acknowledged ops — these MUST
	// survive. high: all mutations issued before the crash, counting an
	// in-flight mutation (its record may or may not have reached the
	// buffer; either outcome is legal) — nothing past this may appear.
	acked := cctx.AckedOps
	if acked > len(ops) {
		acked = len(ops)
	}
	muts, low := 0, 0
	for i := 0; i < acked; i++ {
		switch ops[i].Kind {
		case workload.OpKVPut, workload.OpKVDel:
			muts++
		case workload.OpKVSync:
			if i < len(c.env.OpResults) && c.env.OpResults[i].Err == nil {
				low = muts
			}
		}
	}
	high := muts
	if cctx.Phase == core.PhaseMid && cctx.Sys >= 0 && cctx.Sys < len(ops) {
		switch ops[cctx.Sys].Kind {
		case workload.OpKVPut, workload.OpKVDel:
			high++
		}
	}

	st, err := kvstore.Open(fs, c.bugs)
	if err != nil {
		return &core.Finding{Kind: core.VAppContract, Contract: "recoverable",
			Detail: fmt.Sprintf("store recovery failed: %v", err)}
	}
	defer st.Close()

	m := int(st.Seq())
	if m < low {
		return &core.Finding{Kind: core.VAppContract, Contract: "acked-durability",
			Detail: fmt.Sprintf("recovered %d mutations, but %d were acknowledged by kvsync", m, low)}
	}
	if m > high {
		return &core.Finding{Kind: core.VAppContract, Contract: "seqno-prefix",
			Detail: fmt.Sprintf("recovered %d mutations, but only %d were issued before the crash", m, high)}
	}

	// The recovered content must equal the model at exactly m mutations.
	model := replayPrefix(ops, m)
	got := st.Snapshot()

	keys := map[string]bool{}
	for k := range model {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	for _, k := range sorted {
		want, inModel := model[k]
		have, inGot := got[k]
		switch {
		case inModel && !inGot:
			return &core.Finding{Kind: core.VAppContract, Contract: "seqno-prefix",
				Detail: fmt.Sprintf("key %q missing after recovering %d mutations", k, m)}
		case !inModel && inGot:
			return &core.Finding{Kind: core.VAppContract, Contract: "seqno-prefix",
				Detail: fmt.Sprintf("unexpected key %q after recovering %d mutations", k, m)}
		case !bytes.Equal(want, have):
			return &core.Finding{Kind: core.VAppContract, Contract: "no-silent-corruption",
				Detail: fmt.Sprintf("key %q: recovered %d bytes, want %d-byte pattern value (mutation %d)",
					k, len(have), len(want), m)}
		}
	}
	return nil
}

// replayPrefix builds the reference state after the first m mutations of
// the issued history.
func replayPrefix(ops []workload.Op, m int) map[string][]byte {
	model := map[string][]byte{}
	n := 0
	for _, op := range ops {
		if n == m {
			break
		}
		switch op.Kind {
		case workload.OpKVPut:
			n++
			model[op.Path] = workload.Data(op.Seed, op.Size)
		case workload.OpKVDel:
			n++
			delete(model, op.Path)
		}
	}
	return model
}

// ParseBugs parses the CLIs' -app-bugs syntax: "none" (or empty), or a
// comma-separated list of seeded store defects ("ack-loss", "bad-crc").
func ParseBugs(spec string) (kvstore.Bugs, error) {
	var b kvstore.Bugs
	if spec == "" || spec == "none" {
		return b, nil
	}
	for _, part := range strings.Split(spec, ",") {
		switch strings.TrimSpace(part) {
		case "ack-loss":
			b.DropSyncFlush = true
		case "bad-crc":
			b.AcceptBadCRC = true
		default:
			return kvstore.Bugs{}, fmt.Errorf("unknown app bug %q (want ack-loss, bad-crc)", part)
		}
	}
	return b, nil
}
