package pmem

import "fmt"

// This file is the opt-in fault injector. The base device models exactly one
// crash outcome: an in-flight write is either wholly lost or wholly applied.
// Real PM fails in more ways — WITCHER and the Vinter line of tools treat
// torn sub-cache-line stores and uncorrectable media errors as first-class
// crash outcomes — so the injector widens the model along three axes, all
// seeded and fully deterministic:
//
//   - torn stores: a replayed in-flight write persists only a word-aligned
//     prefix, modeling a cache line that was partially written back when
//     power failed;
//   - bit corruption: one bit of a crash image flips, modeling media decay
//     on a cold image;
//   - read-time media errors: loads touching a poisoned cache line raise
//     *MediaError (the software-visible form of an uncorrectable machine
//     check), which the engine's check sandbox catches and classifies.
//
// Determinism contract: every decision is a pure function of (Seed, site) —
// the log sequence number for tears, the per-state salt for flips and
// poisoned lines — never of scheduling, so serial and parallel censuses
// agree byte-for-byte and a quarantined state fails the same way on retry.

// FaultConfig configures the injector. The zero value injects nothing; rates
// are expressed as "roughly one in N" with 0 disabling that fault class.
type FaultConfig struct {
	// Seed keys every injection decision; runs with equal seeds inject
	// identical faults.
	Seed uint64
	// TearOneInN tears roughly one in N replayed in-flight writes down to a
	// word-aligned prefix (sub-cache-line granularity). 0 disables tearing.
	TearOneInN int
	// FlipOneInN corrupts one bit in roughly one in N crash images.
	// 0 disables corruption.
	FlipOneInN int
	// ReadErrOneInN poisons roughly one in N cache lines per crash state;
	// any Load/LoadInto touching a poisoned line panics with *MediaError.
	// 0 disables media errors.
	ReadErrOneInN int
}

// Enabled reports whether any fault class is active.
func (c *FaultConfig) Enabled() bool {
	return c != nil && (c.TearOneInN > 0 || c.FlipOneInN > 0 || c.ReadErrOneInN > 0)
}

// DefaultFaults returns the rates the -faults CLI flag enables: frequent
// enough that a suite exercises every fault class, rare enough that most
// crash states still check cleanly.
func DefaultFaults(seed uint64) *FaultConfig {
	return &FaultConfig{Seed: seed, TearOneInN: 8, FlipOneInN: 16, ReadErrOneInN: 4096}
}

// MediaError is the read-time media fault: loads touching a poisoned cache
// line panic with *MediaError, modeling the uncorrectable-error machine
// check real PM raises. It implements error so recovery code can convert it
// (persist.PM.TryLoad) and the engine sandbox can classify it.
type MediaError struct {
	// Off is the cache-line-aligned offset of the poisoned line.
	Off int64
}

func (e *MediaError) Error() string {
	return fmt.Sprintf("pmem: media error reading line at offset %d", e.Off)
}

// Injector makes the per-site fault decisions for one crash state. A nil
// *Injector is valid and injects nothing, so call sites need no guards.
type Injector struct {
	cfg  FaultConfig
	salt uint64
}

// NewInjector builds the injector for one crash state. salt distinguishes
// states (derived from the crash point: fence ordinal, subset rank, syscall)
// so different states poison different lines and flip different bits, while
// the same state faults identically on every retry and in every worker.
func NewInjector(cfg *FaultConfig, salt uint64) *Injector {
	if !cfg.Enabled() {
		return nil
	}
	return &Injector{cfg: *cfg, salt: salt}
}

// mix is the splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Per-fault-class domain separators so one seed drives independent streams.
const (
	tearDomain = 0x7465617273746f72 // "tearstor"
	flipDomain = 0x666c697062697473 // "flipbits"
	readDomain = 0x726561646572726f // "readerro"
)

// TornPrefix returns how many bytes of an n-byte in-flight write (trace
// sequence number seq) reach the media: n when untorn, otherwise a
// word-aligned cut in [WordSize, n). Keyed by seq alone — not the per-state
// salt — so a write tears identically in every state that replays it, which
// keeps dedup (performed on untorn images) and retries deterministic.
func (in *Injector) TornPrefix(seq uint64, n int) int {
	if in == nil || in.cfg.TearOneInN <= 0 || n <= WordSize {
		return n
	}
	h := mix(in.cfg.Seed ^ tearDomain ^ seq*0x9e3779b97f4a7c15)
	if h%uint64(in.cfg.TearOneInN) != 0 {
		return n
	}
	words := (n - 1) / WordSize // cuts land strictly inside the write
	return WordSize * (1 + int(mix(h)%uint64(words)))
}

// FlipBit corrupts at most one bit of img in place, returning where (or
// flipped=false). Keyed by the per-state salt: the same state always flips
// the same bit, different states flip different ones.
func (in *Injector) FlipBit(img []byte) (off int64, bit int, flipped bool) {
	if in == nil || in.cfg.FlipOneInN <= 0 || len(img) == 0 {
		return 0, 0, false
	}
	h := mix(in.cfg.Seed ^ flipDomain ^ in.salt*0x9e3779b97f4a7c15)
	if h%uint64(in.cfg.FlipOneInN) != 0 {
		return 0, 0, false
	}
	off = int64(mix(h+1) % uint64(len(img)))
	bit = int(mix(h+2) % 8)
	img[off] ^= 1 << bit
	return off, bit, true
}

// Poisoned reports whether reads of the given cache line raise a media
// error in this state.
func (in *Injector) Poisoned(line int64) bool {
	if in == nil || in.cfg.ReadErrOneInN <= 0 {
		return false
	}
	h := mix(in.cfg.Seed ^ readDomain ^ in.salt ^ uint64(line)*0x9e3779b97f4a7c15)
	return h%uint64(in.cfg.ReadErrOneInN) == 0
}
