package pmem

// byteArena is a bump allocator for the device's transient byte copies:
// Load results and the in-flight Data captures NTStore/Flush make. Handing
// these out of one reusable buffer removes the dominant allocation sources
// on the crash-state check hot path (one fresh slice per guest read, one per
// durable-intent write).
//
// Lifetime contract: slices returned by take stay valid until the next
// reset — never across one. The device resets its arenas only at epoch
// boundaries where every outstanding slice is provably dead:
//
//   - the read arena at Device.Reset, which the engine calls before mounting
//     the next crash state (file-system instances, and thus every Load
//     result they hold, are per-mount);
//   - the write arena at Fence / Reset / TrackingDevice.Rollback, the three
//     places the in-flight list is truncated (everything that outlives an
//     InFlight — trace entries, InFlightWrites results — is deep-copied).
//
// Growing mid-epoch abandons the current buffer: slices already handed out
// keep it alive, and the replacement is sized to the epoch's running total,
// so a steady-state epoch allocates nothing once the buffer has converged.
type byteArena struct {
	buf  []byte
	used int
	need int // bytes requested this epoch, the high-water sizing input
}

// take returns an n-byte slice with unspecified contents, capacity-clamped
// so caller appends cannot bleed into neighboring takes.
func (a *byteArena) take(n int) []byte {
	if n == 0 {
		return nil
	}
	a.need += n
	if a.used+n > len(a.buf) {
		size := a.need
		if size < 2*len(a.buf) {
			size = 2 * len(a.buf)
		}
		if size < 4096 {
			size = 4096
		}
		a.buf = make([]byte, size)
		a.used = 0
	}
	s := a.buf[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// reset rewinds the arena for buffer reuse. Callers must guarantee no slice
// from the current epoch is still live (see the lifetime contract above).
func (a *byteArena) reset() { a.used, a.need = 0, 0 }
