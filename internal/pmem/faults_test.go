package pmem

import "testing"

// TestFaultInjectorNilSafe: a nil *Injector (faults off) injects nothing,
// so call sites need no guards.
func TestFaultInjectorNilSafe(t *testing.T) {
	var in *Injector
	if got := in.TornPrefix(3, 100); got != 100 {
		t.Errorf("nil TornPrefix = %d, want 100", got)
	}
	if _, _, flipped := in.FlipBit(make([]byte, 64)); flipped {
		t.Error("nil FlipBit flipped")
	}
	if in.Poisoned(5) {
		t.Error("nil Poisoned = true")
	}
	if NewInjector(nil, 1) != nil {
		t.Error("NewInjector(nil) != nil")
	}
	if NewInjector(&FaultConfig{Seed: 1}, 1) != nil {
		t.Error("NewInjector(zero rates) != nil")
	}
}

// TestFaultTornPrefixDeterministic: tears are keyed by the trace sequence
// number alone — word-aligned, strictly inside the write, identical across
// salts and repeats.
func TestFaultTornPrefixDeterministic(t *testing.T) {
	cfg := &FaultConfig{Seed: 42, TearOneInN: 2}
	a := NewInjector(cfg, 1)
	b := NewInjector(cfg, 0xdeadbeef) // different per-state salt
	torn := 0
	for seq := uint64(0); seq < 500; seq++ {
		for _, n := range []int{13, 64, 96, 4096} {
			got := a.TornPrefix(seq, n)
			if got != b.TornPrefix(seq, n) {
				t.Fatalf("seq %d n %d: tear differs across salts (%d vs %d)",
					seq, n, got, b.TornPrefix(seq, n))
			}
			if got != a.TornPrefix(seq, n) {
				t.Fatalf("seq %d n %d: tear not repeatable", seq, n)
			}
			if got == n {
				continue // untorn
			}
			torn++
			if got < WordSize || got >= n || got%WordSize != 0 {
				t.Fatalf("seq %d n %d: torn prefix %d not a word-aligned cut inside the write",
					seq, n, got)
			}
		}
	}
	if torn == 0 {
		t.Fatal("TearOneInN=2 never tore across 500 sequences")
	}
	if got := a.TornPrefix(7, WordSize); got != WordSize {
		t.Errorf("single-word write torn to %d; writes <= WordSize are atomic", got)
	}
}

// TestFaultFlipBitDeterministic: bit flips are keyed by the per-state salt;
// the same state flips the same bit every time, and a flip changes exactly
// one bit.
func TestFaultFlipBitDeterministic(t *testing.T) {
	cfg := &FaultConfig{Seed: 7, FlipOneInN: 2}
	flips := 0
	for salt := uint64(0); salt < 200; salt++ {
		in := NewInjector(cfg, salt)
		img := make([]byte, 4096)
		off, bit, flipped := in.FlipBit(img)
		img2 := make([]byte, 4096)
		off2, bit2, flipped2 := in.FlipBit(img2)
		if off != off2 || bit != bit2 || flipped != flipped2 {
			t.Fatalf("salt %d: flip not repeatable", salt)
		}
		if !flipped {
			continue
		}
		flips++
		for i, v := range img {
			want := byte(0)
			if int64(i) == off {
				want = 1 << bit
			}
			if v != want {
				t.Fatalf("salt %d: byte %d = %#x, want %#x (exactly one bit flipped)", salt, i, v, want)
			}
		}
	}
	if flips == 0 {
		t.Fatal("FlipOneInN=2 never flipped across 200 salts")
	}
}

// TestFaultPoisonedLineRaisesMediaError: loads touching a poisoned line
// panic with *MediaError; Peek (the instrumentation path) never faults.
func TestFaultPoisonedLineRaisesMediaError(t *testing.T) {
	dev := NewDevice(1024)
	dev.InjectFaults(NewInjector(&FaultConfig{Seed: 1, ReadErrOneInN: 1}, 3))

	expectMediaError := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s on a poisoned line did not panic", name)
			}
			me, ok := r.(*MediaError)
			if !ok {
				t.Fatalf("%s panicked with %v, want *MediaError", name, r)
			}
			if me.Off%CacheLineSize != 0 {
				t.Errorf("%s: MediaError.Off %d not line-aligned", name, me.Off)
			}
			if me.Error() == "" {
				t.Errorf("%s: empty error string", name)
			}
		}()
		fn()
	}
	expectMediaError("Load", func() { dev.Load(0, 8) })
	expectMediaError("LoadInto", func() { dev.LoadInto(128, make([]byte, 16)) })

	dev.Peek(0, make([]byte, 8)) // must not panic

	clean := NewDevice(1024)
	_ = clean.Load(0, 8) // no injector: must not panic
}
