package pmem

// UndoLog records byte ranges of a crash image before a consistency check
// mutates them, so the image can be rolled back before the next crash state
// is checked. Chipmunk uses this because its usability checks (create files
// everywhere, then delete them) write to the mounted crash image; rolling
// back is much cheaper than re-copying a whole device image for every state.
type UndoLog struct {
	img     []byte
	records []undoRecord
}

type undoRecord struct {
	off  int64
	data []byte
}

// NewUndoLog wraps a mutable image. The log does not copy the image; it
// captures old contents lazily as Save is called.
func NewUndoLog(img []byte) *UndoLog {
	return &UndoLog{img: img}
}

// Save captures the current contents of img[off:off+n] so Rollback can
// restore them. Call before mutating the range.
func (u *UndoLog) Save(off int64, n int) {
	if n <= 0 {
		return
	}
	u.records = append(u.records, undoRecord{
		off:  off,
		data: append([]byte(nil), u.img[off:off+int64(n)]...),
	})
}

// Len reports how many ranges have been saved since the last Rollback.
func (u *UndoLog) Len() int { return len(u.records) }

// Rollback restores all saved ranges in reverse order and clears the log.
func (u *UndoLog) Rollback() {
	for i := len(u.records) - 1; i >= 0; i-- {
		r := u.records[i]
		copy(u.img[r.off:], r.data)
	}
	u.records = u.records[:0]
}

// TrackingDevice wraps a Device so that every mutation is recorded in an
// undo log against the device's volatile image; used by the checker to run
// usability probes on a mounted crash image and then roll the image back.
type TrackingDevice struct {
	*Device
	undo *UndoLog
}

// NewTrackingDevice builds a device from img whose mutations are undoable.
// Rollback restores img (the caller's slice is the backing store).
func NewTrackingDevice(img []byte) *TrackingDevice {
	d := FromImage(img)
	return &TrackingDevice{Device: d, undo: NewUndoLog(d.volatile)}
}

// Store records old bytes then delegates.
func (t *TrackingDevice) Store(off int64, p []byte) {
	t.undo.Save(off, len(p))
	t.Device.Store(off, p)
}

// NTStore records old bytes then delegates.
func (t *TrackingDevice) NTStore(off int64, p []byte) {
	t.undo.Save(off, len(p))
	t.Device.NTStore(off, p)
}

// Rollback restores the volatile image to its state at construction (or the
// last Rollback) and mirrors it into the persistent image.
func (t *TrackingDevice) Rollback() {
	t.undo.Rollback()
	copy(t.Device.persistent, t.Device.volatile)
	t.Device.inflight = t.Device.inflight[:0]
	for k := range t.Device.dirty {
		delete(t.Device.dirty, k)
	}
}

// UndoBytes reports how many bytes of undo state are currently held.
func (t *TrackingDevice) UndoBytes() int64 {
	var n int64
	for _, r := range t.undo.records {
		n += int64(len(r.data))
	}
	return n
}
