package pmem

// UndoLog records byte ranges of crash-image buffers before they are
// mutated, so the buffers can be rolled back before the next crash state is
// checked. Chipmunk uses this because its checks (mount recovery, usability
// probes that create files everywhere and then delete them) write to the
// mounted crash image; rolling back only what was touched is much cheaper
// than re-copying a whole device image for every state.
//
// Records are dst-tagged: one log can cover several buffers at once (the
// engine tracks a device's volatile AND persistent images in a single log),
// and the saved bytes live in one reusable arena, so a steady-state
// save/rollback cycle allocates nothing.
type UndoLog struct {
	img     []byte // default destination for Save (nil when only SaveImage is used)
	records []undoRecord
	arena   []byte
}

// undoRecord points into the arena rather than holding its own copy:
// appends may reallocate the arena, but the (start, n) window stays valid
// because append copies the prefix.
type undoRecord struct {
	dst      []byte
	off      int64
	start, n int
}

// NewUndoLog wraps a mutable image. The log does not copy the image; it
// captures old contents lazily as Save is called. img may be nil when every
// range is saved through SaveImage.
func NewUndoLog(img []byte) *UndoLog {
	return &UndoLog{img: img}
}

// Save captures the current contents of img[off:off+n] so Rollback can
// restore them. Call before mutating the range.
func (u *UndoLog) Save(off int64, n int) { u.SaveImage(u.img, off, n) }

// SaveImage captures dst[off:off+n] for rollback. Call before mutating the
// range; dst may differ between calls (the engine saves ranges of both the
// volatile and the persistent image into one log).
func (u *UndoLog) SaveImage(dst []byte, off int64, n int) {
	if n <= 0 {
		return
	}
	start := len(u.arena)
	u.arena = append(u.arena, dst[off:off+int64(n)]...)
	u.records = append(u.records, undoRecord{dst: dst, off: off, start: start, n: n})
}

// Len reports how many ranges have been saved since the last Rollback.
func (u *UndoLog) Len() int { return len(u.records) }

// Bytes reports how many bytes of undo state are currently held.
func (u *UndoLog) Bytes() int64 { return int64(len(u.arena)) }

// Rollback restores all saved ranges in reverse order, clears the log, and
// returns the number of bytes restored. The arena is retained for reuse.
func (u *UndoLog) Rollback() int64 {
	var restored int64
	for i := len(u.records) - 1; i >= 0; i-- {
		r := u.records[i]
		copy(r.dst[r.off:], u.arena[r.start:r.start+r.n])
		restored += int64(r.n)
	}
	u.records = u.records[:0]
	u.arena = u.arena[:0]
	return restored
}

// TrackingDevice wraps a Device so that every image mutation — including
// fence persists — is recorded in an undo log; used to run checks on a
// mounted crash image and then roll the image back exactly.
type TrackingDevice struct {
	*Device
	undo *UndoLog
}

// NewTrackingDevice builds a device from img whose mutations are undoable.
// Rollback restores both images to their state at construction.
func NewTrackingDevice(img []byte) *TrackingDevice {
	d := FromImage(img)
	u := NewUndoLog(nil)
	d.TrackUndo(u)
	return &TrackingDevice{Device: d, undo: u}
}

// Rollback restores the volatile and persistent images to their state at
// construction (or the last Rollback) and clears the transient device state,
// without copying anything beyond the mutated ranges.
func (t *TrackingDevice) Rollback() {
	t.undo.Rollback()
	t.Device.inflight = t.Device.inflight[:0]
	t.Device.writes.reset()
	for k := range t.Device.dirty {
		delete(t.Device.dirty, k)
	}
}

// UndoBytes reports how many bytes of undo state are currently held.
func (t *TrackingDevice) UndoBytes() int64 { return t.undo.Bytes() }
