package pmem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDeviceZeroed(t *testing.T) {
	d := NewDevice(1024)
	if d.Size() != 1024 {
		t.Fatalf("size = %d, want 1024", d.Size())
	}
	img := d.CrashImage()
	for i, b := range img {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestNewDeviceInvalidSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero size")
		}
	}()
	NewDevice(0)
}

func TestStoreIsVolatileUntilFlushed(t *testing.T) {
	d := NewDevice(256)
	d.Store(10, []byte("hello"))
	if got := d.Load(10, 5); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("volatile read = %q", got)
	}
	// Not flushed, not fenced: crash loses it.
	img := d.CrashImage()
	if !bytes.Equal(img[10:15], make([]byte, 5)) {
		t.Fatalf("unflushed store leaked into crash image: %q", img[10:15])
	}
	// Flushed but not fenced: still in flight, default crash image loses it.
	d.Flush(10, 5)
	img = d.CrashImage()
	if !bytes.Equal(img[10:15], make([]byte, 5)) {
		t.Fatalf("unfenced flush leaked into crash image: %q", img[10:15])
	}
	// Fence makes it durable.
	d.Fence()
	img = d.CrashImage()
	if !bytes.Equal(img[10:15], []byte("hello")) {
		t.Fatalf("fenced flush missing from crash image: %q", img[10:15])
	}
}

func TestNTStoreInFlightUntilFence(t *testing.T) {
	d := NewDevice(256)
	d.NTStore(64, []byte{1, 2, 3, 4})
	if d.InFlightCount() != 1 {
		t.Fatalf("in-flight = %d, want 1", d.InFlightCount())
	}
	if img := d.CrashImage(); img[64] != 0 {
		t.Fatal("unfenced NT store persisted")
	}
	n := d.Fence()
	if n != 1 {
		t.Fatalf("Fence returned %d, want 1", n)
	}
	if img := d.CrashImage(); img[64] != 1 || img[67] != 4 {
		t.Fatal("fenced NT store not persisted")
	}
}

func TestFlushCapturesLineAtFlushTime(t *testing.T) {
	d := NewDevice(256)
	d.Store(0, []byte{0xAA})
	d.Flush(0, 1)
	// Overwrite after the flush; the in-flight capture must keep 0xAA.
	d.Store(0, []byte{0xBB})
	d.Fence()
	if img := d.CrashImage(); img[0] != 0xAA {
		t.Fatalf("crash image byte = %#x, want 0xAA (flush-time capture)", img[0])
	}
	// Volatile view sees the later store.
	if v := d.Load(0, 1); v[0] != 0xBB {
		t.Fatalf("volatile byte = %#x, want 0xBB", v[0])
	}
}

func TestFlushLineGranularity(t *testing.T) {
	d := NewDevice(512)
	d.Store(60, []byte{1, 2, 3, 4, 5, 6, 7, 8}) // spans lines 0 and 1
	d.Flush(60, 8)
	w := d.InFlightWrites()
	if len(w) != 2 {
		t.Fatalf("in-flight writes = %d, want 2 (two lines)", len(w))
	}
	if w[0].Off != 0 || w[1].Off != 64 {
		t.Fatalf("line offsets = %d, %d; want 0, 64", w[0].Off, w[1].Off)
	}
	for _, iw := range w {
		if len(iw.Data) != CacheLineSize {
			t.Fatalf("capture length = %d, want %d", len(iw.Data), CacheLineSize)
		}
	}
}

func TestFlushZeroLengthNoop(t *testing.T) {
	d := NewDevice(128)
	d.Flush(0, 0)
	if d.InFlightCount() != 0 {
		t.Fatal("zero-length flush created in-flight writes")
	}
}

func TestCrashImageWithSubset(t *testing.T) {
	d := NewDevice(256)
	d.NTStore(0, []byte{1})
	d.NTStore(8, []byte{2})
	d.NTStore(16, []byte{3})

	img := d.CrashImageWithSubset([]int{1})
	if img[0] != 0 || img[8] != 2 || img[16] != 0 {
		t.Fatalf("subset {1}: got %v %v %v", img[0], img[8], img[16])
	}
	img = d.CrashImageWithSubset([]int{2, 0}) // order should not matter
	if img[0] != 1 || img[8] != 0 || img[16] != 3 {
		t.Fatalf("subset {0,2}: got %v %v %v", img[0], img[8], img[16])
	}
	// Base image untouched.
	if base := d.CrashImage(); base[0] != 0 {
		t.Fatal("CrashImageWithSubset mutated base persistent image")
	}
}

func TestCrashImageSubsetProgramOrder(t *testing.T) {
	d := NewDevice(64)
	d.NTStore(0, []byte{1})
	d.NTStore(0, []byte{2}) // same address, later write
	img := d.CrashImageWithSubset([]int{1, 0})
	if img[0] != 2 {
		t.Fatalf("overlapping writes must replay in program order; got %d", img[0])
	}
}

func TestCrashImageSubsetOutOfRangePanics(t *testing.T) {
	d := NewDevice(64)
	d.NTStore(0, []byte{1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range subset index")
		}
	}()
	d.CrashImageWithSubset([]int{5})
}

func TestFromImage(t *testing.T) {
	src := make([]byte, 128)
	src[7] = 0x7F
	d := FromImage(src)
	if d.Load(7, 1)[0] != 0x7F {
		t.Fatal("volatile image not initialized")
	}
	if d.CrashImage()[7] != 0x7F {
		t.Fatal("persistent image not initialized")
	}
	// Mutating the source must not affect the device.
	src[7] = 0
	if d.Load(7, 1)[0] != 0x7F {
		t.Fatal("FromImage aliases caller slice")
	}
}

func TestDirtyUnflushedLines(t *testing.T) {
	d := NewDevice(512)
	d.Store(0, []byte{1})
	d.Store(130, []byte{2})
	lines := d.DirtyUnflushedLines()
	if len(lines) != 2 || lines[0] != 0 || lines[1] != 2 {
		t.Fatalf("dirty lines = %v, want [0 2]", lines)
	}
	d.Flush(0, 1)
	lines = d.DirtyUnflushedLines()
	if len(lines) != 1 || lines[0] != 2 {
		t.Fatalf("dirty lines after flush = %v, want [2]", lines)
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := NewDevice(64)
	cases := []func(){
		func() { d.Store(60, []byte{1, 2, 3, 4, 5}) },
		func() { d.Load(-1, 1) },
		func() { d.Flush(0, 65) },
		func() { d.NTStore(64, []byte{1}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestStats(t *testing.T) {
	d := NewDevice(1024)
	d.Store(0, make([]byte, 100))
	d.Flush(0, 100)
	d.NTStore(512, make([]byte, 64))
	d.Fence()
	s := d.Stats()
	if s.StoreBytes != 100 || s.NTBytes != 64 || s.Fences != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.LinesFlushed != 2 {
		t.Fatalf("lines flushed = %d, want 2", s.LinesFlushed)
	}
	if s.MaxInFlight != 3 { // 2 flushed lines + 1 NT store
		t.Fatalf("max in-flight = %d, want 3", s.MaxInFlight)
	}
	if s.SimNanos <= 0 {
		t.Fatal("simulated time did not advance")
	}
	d.ResetStats()
	if d.Stats().Fences != 0 {
		t.Fatal("ResetStats did not clear counters")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{StoreBytes: 1, Fences: 2, MaxInFlight: 3, SimNanos: 10}
	b := Stats{StoreBytes: 4, Fences: 1, MaxInFlight: 7, SimNanos: 5}
	a.Add(b)
	if a.StoreBytes != 5 || a.Fences != 3 || a.MaxInFlight != 7 || a.SimNanos != 15 {
		t.Fatalf("Add result = %+v", a)
	}
}

func TestWriteKindString(t *testing.T) {
	if KindFlush.String() != "flush" || KindNT.String() != "nt" {
		t.Fatal("WriteKind strings wrong")
	}
	if WriteKind(9).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

// Property: applying the full in-flight subset yields the same image as
// Fence() would produce.
func TestPropertyFullSubsetEqualsFence(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDevice(4096)
		ops := int(nOps%20) + 1
		for i := 0; i < ops; i++ {
			off := rng.Int63n(4000)
			n := rng.Intn(64) + 1
			buf := make([]byte, n)
			rng.Read(buf)
			if rng.Intn(2) == 0 {
				d.NTStore(off, buf)
			} else {
				d.Store(off, buf)
				d.Flush(off, n)
			}
		}
		all := make([]int, d.InFlightCount())
		for i := range all {
			all[i] = i
		}
		subsetImg := d.CrashImageWithSubset(all)
		d.Fence()
		return bytes.Equal(subsetImg, d.CrashImage())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: after a fence, volatile and persistent images agree on every
// byte that was ever NT-stored or store+flushed (and crash image is a prefix
// of the volatile history for those ranges).
func TestPropertyFencedWritesDurable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDevice(2048)
		type rng2 struct{ off, n int64 }
		var covered []rng2
		for i := 0; i < 15; i++ {
			off := rng.Int63n(1900)
			n := int64(rng.Intn(48) + 1)
			buf := make([]byte, n)
			rng.Read(buf)
			d.NTStore(off, buf)
			covered = append(covered, rng2{off, n})
		}
		d.Fence()
		img := d.CrashImage()
		vol := d.VolatileImage()
		for _, c := range covered {
			if !bytes.Equal(img[c.off:c.off+c.n], vol[c.off:c.off+c.n]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a store that is never flushed never appears in any crash image,
// even with every in-flight write applied.
func TestPropertyUnflushedStoresNeverPersist(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDevice(4096)
		// Unflushed store in line 50 (offset 3200..3263), which nothing
		// else touches.
		secret := byte(rng.Intn(255) + 1)
		d.Store(3200, []byte{secret})
		// Unrelated traffic elsewhere.
		for i := 0; i < 10; i++ {
			off := rng.Int63n(1024)
			buf := make([]byte, rng.Intn(32)+1)
			rng.Read(buf)
			d.NTStore(off, buf)
		}
		all := make([]int, d.InFlightCount())
		for i := range all {
			all[i] = i
		}
		img := d.CrashImageWithSubset(all)
		if img[3200] != 0 {
			return false
		}
		d.Fence()
		return d.CrashImage()[3200] == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadInto(t *testing.T) {
	d := NewDevice(64)
	d.Store(4, []byte{9, 8, 7})
	buf := make([]byte, 3)
	d.LoadInto(4, buf)
	if !bytes.Equal(buf, []byte{9, 8, 7}) {
		t.Fatalf("LoadInto = %v", buf)
	}
}

func TestWrapImagesCopyFree(t *testing.T) {
	volatile := make([]byte, 256)
	persistent := make([]byte, 256)
	for i := range volatile {
		volatile[i] = byte(i)
		persistent[i] = byte(i)
	}
	d := WrapImages(volatile, persistent)
	if d.Size() != 256 {
		t.Fatalf("size = %d", d.Size())
	}
	if got := d.Load(3, 4); !bytes.Equal(got, []byte{3, 4, 5, 6}) {
		t.Fatalf("load = %v", got)
	}
	// Stores land in the caller's buffers directly: that is the point.
	d.Store(0, []byte{0xAA})
	if volatile[0] != 0xAA {
		t.Fatal("store did not hit the wrapped volatile buffer")
	}
	if persistent[0] != 0 {
		t.Fatal("unflushed store reached the persistent buffer")
	}
}

func TestWrapImagesPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"size-mismatch": func() { WrapImages(make([]byte, 8), make([]byte, 16)) },
		"empty":         func() { WrapImages(nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
