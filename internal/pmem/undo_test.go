package pmem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUndoLogBasic(t *testing.T) {
	img := []byte{1, 2, 3, 4, 5}
	u := NewUndoLog(img)
	u.Save(1, 2)
	img[1], img[2] = 9, 9
	if u.Len() != 1 {
		t.Fatalf("len = %d", u.Len())
	}
	u.Rollback()
	if !bytes.Equal(img, []byte{1, 2, 3, 4, 5}) {
		t.Fatalf("rollback failed: %v", img)
	}
	if u.Len() != 0 {
		t.Fatal("rollback did not clear log")
	}
}

func TestUndoLogReverseOrder(t *testing.T) {
	img := []byte{0}
	u := NewUndoLog(img)
	u.Save(0, 1) // saves 0
	img[0] = 1
	u.Save(0, 1) // saves 1
	img[0] = 2
	u.Rollback()
	if img[0] != 0 {
		t.Fatalf("overlapping undo must restore oldest value; got %d", img[0])
	}
}

func TestUndoLogSaveZeroLength(t *testing.T) {
	u := NewUndoLog([]byte{1})
	u.Save(0, 0)
	if u.Len() != 0 {
		t.Fatal("zero-length save recorded")
	}
}

func TestUndoLogSaveImageMultipleBuffers(t *testing.T) {
	a := []byte{1, 2, 3, 4}
	b := []byte{5, 6, 7, 8}
	u := NewUndoLog(nil)
	u.SaveImage(a, 0, 2)
	a[0], a[1] = 9, 9
	u.SaveImage(b, 2, 2)
	b[2], b[3] = 9, 9
	if u.Bytes() != 4 {
		t.Fatalf("undo bytes = %d, want 4", u.Bytes())
	}
	if n := u.Rollback(); n != 4 {
		t.Fatalf("rollback restored %d bytes, want 4", n)
	}
	if !bytes.Equal(a, []byte{1, 2, 3, 4}) || !bytes.Equal(b, []byte{5, 6, 7, 8}) {
		t.Fatalf("rollback failed: a=%v b=%v", a, b)
	}
}

func TestDeviceResetPreservesImagesAndUndo(t *testing.T) {
	vol := make([]byte, 128)
	per := make([]byte, 128)
	d := WrapImages(vol, per)
	u := NewUndoLog(nil)
	d.TrackUndo(u)
	d.InjectFaults(NewInjector(&FaultConfig{ReadErrOneInN: 1}, 1))

	d.Store(0, []byte{0xAA})
	d.Flush(0, 1)
	d.Fence()
	d.Reset()
	if d.InFlightCount() != 0 || len(d.DirtyUnflushedLines()) != 0 {
		t.Fatal("Reset left transient device state")
	}
	if d.Stats() != (Stats{}) {
		t.Fatal("Reset left cost-model counters")
	}
	if vol[0] != 0xAA || per[0] != 0xAA {
		t.Fatal("Reset touched the images")
	}
	// The injector must be detached (loads no longer fault) and the undo
	// attachment preserved (new mutations keep being captured).
	d.Load(0, 64)
	d.Store(1, []byte{0xBB})
	u.Rollback()
	if vol[1] != 0 {
		t.Fatal("undo attachment lost across Reset")
	}
}

func TestTrackingDeviceRollback(t *testing.T) {
	img := make([]byte, 256)
	img[0] = 0x11
	td := NewTrackingDevice(img)
	td.Store(0, []byte{0x22})
	td.NTStore(64, []byte{0x33})
	td.Flush(0, 1)
	td.Fence()
	if td.Load(0, 1)[0] != 0x22 {
		t.Fatal("store not visible")
	}
	// Two 1-byte volatile saves (Store, NTStore) plus the fence persists:
	// the NT write (1 byte) and the flushed cache line (64 bytes).
	if td.UndoBytes() != 67 {
		t.Fatalf("undo bytes = %d, want 67", td.UndoBytes())
	}
	td.Rollback()
	if got := td.Load(0, 1)[0]; got != 0x11 {
		t.Fatalf("rollback: byte 0 = %#x, want 0x11", got)
	}
	if got := td.Load(64, 1)[0]; got != 0 {
		t.Fatalf("rollback: byte 64 = %#x, want 0", got)
	}
	if td.InFlightCount() != 0 {
		t.Fatal("rollback left in-flight writes")
	}
	// Persistent image must match the rolled-back volatile image.
	if !bytes.Equal(td.CrashImage(), td.VolatileImage()) {
		t.Fatal("rollback left persistent != volatile")
	}
}

// Property: arbitrary mutation sequences through a TrackingDevice always
// roll back to the original image.
func TestPropertyTrackingDeviceAlwaysRestores(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := make([]byte, 1024)
		rng.Read(orig)
		td := NewTrackingDevice(append([]byte(nil), orig...))
		for i := 0; i < 25; i++ {
			off := rng.Int63n(960)
			buf := make([]byte, rng.Intn(48)+1)
			rng.Read(buf)
			switch rng.Intn(3) {
			case 0:
				td.Store(off, buf)
			case 1:
				td.NTStore(off, buf)
			case 2:
				td.Store(off, buf)
				td.Flush(off, len(buf))
				td.Fence()
			}
		}
		td.Rollback()
		return bytes.Equal(td.VolatileImage(), orig) &&
			bytes.Equal(td.CrashImage(), orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
