package pmem

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUndoLogBasic(t *testing.T) {
	img := []byte{1, 2, 3, 4, 5}
	u := NewUndoLog(img)
	u.Save(1, 2)
	img[1], img[2] = 9, 9
	if u.Len() != 1 {
		t.Fatalf("len = %d", u.Len())
	}
	u.Rollback()
	if !bytes.Equal(img, []byte{1, 2, 3, 4, 5}) {
		t.Fatalf("rollback failed: %v", img)
	}
	if u.Len() != 0 {
		t.Fatal("rollback did not clear log")
	}
}

func TestUndoLogReverseOrder(t *testing.T) {
	img := []byte{0}
	u := NewUndoLog(img)
	u.Save(0, 1) // saves 0
	img[0] = 1
	u.Save(0, 1) // saves 1
	img[0] = 2
	u.Rollback()
	if img[0] != 0 {
		t.Fatalf("overlapping undo must restore oldest value; got %d", img[0])
	}
}

func TestUndoLogSaveZeroLength(t *testing.T) {
	u := NewUndoLog([]byte{1})
	u.Save(0, 0)
	if u.Len() != 0 {
		t.Fatal("zero-length save recorded")
	}
}

func TestTrackingDeviceRollback(t *testing.T) {
	img := make([]byte, 256)
	img[0] = 0x11
	td := NewTrackingDevice(img)
	td.Store(0, []byte{0x22})
	td.NTStore(64, []byte{0x33})
	td.Flush(0, 1)
	td.Fence()
	if td.Load(0, 1)[0] != 0x22 {
		t.Fatal("store not visible")
	}
	if td.UndoBytes() != 2 {
		t.Fatalf("undo bytes = %d, want 2", td.UndoBytes())
	}
	td.Rollback()
	if got := td.Load(0, 1)[0]; got != 0x11 {
		t.Fatalf("rollback: byte 0 = %#x, want 0x11", got)
	}
	if got := td.Load(64, 1)[0]; got != 0 {
		t.Fatalf("rollback: byte 64 = %#x, want 0", got)
	}
	if td.InFlightCount() != 0 {
		t.Fatal("rollback left in-flight writes")
	}
	// Persistent image must match the rolled-back volatile image.
	if !bytes.Equal(td.CrashImage(), td.VolatileImage()) {
		t.Fatal("rollback left persistent != volatile")
	}
}

// Property: arbitrary mutation sequences through a TrackingDevice always
// roll back to the original image.
func TestPropertyTrackingDeviceAlwaysRestores(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		orig := make([]byte, 1024)
		rng.Read(orig)
		td := NewTrackingDevice(append([]byte(nil), orig...))
		for i := 0; i < 25; i++ {
			off := rng.Int63n(960)
			buf := make([]byte, rng.Intn(48)+1)
			rng.Read(buf)
			switch rng.Intn(3) {
			case 0:
				td.Store(off, buf)
			case 1:
				td.NTStore(off, buf)
			case 2:
				td.Store(off, buf)
				td.Flush(off, len(buf))
				td.Fence()
			}
		}
		td.Rollback()
		return bytes.Equal(td.VolatileImage(), orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
