// Package pmem simulates a byte-addressable persistent-memory device with
// x86-style persistence semantics: regular stores land in a volatile cache
// and become durable only after an explicit cache-line write-back followed
// by a store fence; non-temporal stores bypass the cache but still require a
// fence before they are guaranteed durable. Writes that have been flushed or
// written non-temporally but not yet fenced are "in flight": on a crash, any
// subset of them may have reached the media, in any order.
//
// The device keeps two byte images: the volatile image (what loads observe)
// and the persistent image (what survives a crash). A crash image is a copy
// of the persistent image, optionally with a chosen subset of in-flight
// writes applied — exactly the crash-state model Chipmunk replays.
package pmem

import (
	"fmt"
	"sort"
)

const (
	// CacheLineSize is the granularity of flush operations, matching x86.
	CacheLineSize = 64
	// WordSize is the unit of write atomicity on Intel PM (8 bytes).
	WordSize = 8
)

// WriteKind distinguishes the two ways bytes become in-flight.
type WriteKind uint8

const (
	// KindFlush is a cache-line write-back (clwb/clflushopt) of bytes
	// previously written with regular stores.
	KindFlush WriteKind = iota
	// KindNT is a non-temporal store (movnt) that bypassed the cache.
	KindNT
)

func (k WriteKind) String() string {
	switch k {
	case KindFlush:
		return "flush"
	case KindNT:
		return "nt"
	default:
		return fmt.Sprintf("WriteKind(%d)", uint8(k))
	}
}

// InFlight is one durable-intent write that has not yet been fenced. Data is
// a private copy captured at flush/store time.
type InFlight struct {
	Kind WriteKind
	Off  int64
	Data []byte
}

// Device is a simulated PM device. It is not safe for concurrent use;
// Chipmunk runs workloads sequentially, as the paper does.
type Device struct {
	volatile   []byte
	persistent []byte
	inflight   []InFlight

	// dirty tracks cache lines holding store()d bytes that have not been
	// flushed yet, so MissingFlushCheck and line-granular Flush work.
	dirty map[int64]struct{}

	// faults, when non-nil, poisons cache lines: loads touching one panic
	// with *MediaError (see InjectFaults).
	faults *Injector

	// undo, when non-nil, captures the old contents of every image range a
	// mutation is about to overwrite (see TrackUndo), so the engine can roll
	// a pooled crash image back instead of re-copying the device.
	undo *UndoLog

	// reads backs Load results, writes backs in-flight Data captures; both
	// recycle one buffer per epoch instead of allocating per call (see
	// byteArena for the lifetime contract).
	reads  byteArena
	writes byteArena

	// unified marks a device whose volatile and persistent slices alias the
	// SAME buffer (see WrapImage): every store is immediately "durable", so
	// in-flight capture, fence persistence, and flush captures are skipped.
	// Only meaningful for post-crash checking, where durability is never
	// examined again — the recording device must stay two-image.
	unified bool

	stats Stats
}

// NewDevice returns a zeroed device of the given size in bytes.
func NewDevice(size int64) *Device {
	if size <= 0 {
		panic(fmt.Sprintf("pmem: invalid device size %d", size))
	}
	return &Device{
		volatile:   make([]byte, size),
		persistent: make([]byte, size),
		dirty:      make(map[int64]struct{}),
	}
}

// FromImage builds a device whose volatile and persistent images are both
// initialized from img, as if the machine had just rebooted from that crash
// image. The slice is copied.
func FromImage(img []byte) *Device {
	d := NewDevice(int64(len(img)))
	copy(d.volatile, img)
	copy(d.persistent, img)
	return d
}

// WrapImages builds a device directly over caller-owned volatile and
// persistent buffers, without copying either — the copy-free snapshot
// constructor the engine's pooled crash-state checks use. Both slices must
// have equal, non-zero length and identical contents (the just-rebooted
// invariant FromImage establishes by copying), and the caller must not read
// or recycle the buffers until it is done with the device.
func WrapImages(volatile, persistent []byte) *Device {
	if len(volatile) != len(persistent) {
		panic(fmt.Sprintf("pmem: WrapImages buffer sizes differ: %d vs %d", len(volatile), len(persistent)))
	}
	if len(volatile) == 0 {
		panic("pmem: WrapImages on empty buffers")
	}
	return &Device{
		volatile:   volatile,
		persistent: persistent,
		dirty:      make(map[int64]struct{}),
	}
}

// WrapImage builds a unified device over ONE caller-owned buffer serving as
// both images. A crashed-and-rebooted machine starts with volatile ==
// persistent, and a crash-state check never crashes again — durability is
// never examined — so the separation only costs memory and copies there.
// On a unified device stores are immediately durable: NTStore and Flush
// capture nothing in flight and Fence has nothing to persist. Guest-visible
// behavior (loads, media faults, dirty-line tracking) is identical to a
// two-image device, which the differential tests pin. Do NOT use for
// recording: crash-state enumeration needs the real in-flight sets.
func WrapImage(img []byte) *Device {
	if len(img) == 0 {
		panic("pmem: WrapImage on empty buffer")
	}
	return &Device{
		volatile:   img,
		persistent: img,
		dirty:      make(map[int64]struct{}),
		unified:    true,
	}
}

// TrackUndo attaches an undo log: from now on every mutation of either
// image — stores and non-temporal stores (volatile), fence persists
// (persistent), and patches (both) — saves the overwritten range first, so
// u.Rollback() restores both images exactly. The attachment survives Reset;
// pass nil to detach. Flush mutates no image and records nothing.
func (d *Device) TrackUndo(u *UndoLog) { d.undo = u }

// Reset returns the device to the just-rebooted state over its current
// images without reallocating: in-flight writes, dirty-line tracking, and
// cost-model counters are cleared, and any fault injector is detached. The
// images and an attached undo log are untouched — this is how the engine
// reuses one pooled device across crash states.
func (d *Device) Reset() {
	d.inflight = d.inflight[:0]
	for k := range d.dirty {
		delete(d.dirty, k)
	}
	d.faults = nil
	d.reads.reset()
	d.writes.reset()
	d.stats = Stats{}
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return int64(len(d.volatile)) }

func (d *Device) checkRange(off int64, n int) {
	if off < 0 || n < 0 || off+int64(n) > int64(len(d.volatile)) {
		panic(fmt.Sprintf("pmem: access [%d, %d) outside device of size %d", off, off+int64(n), len(d.volatile)))
	}
}

// Store performs regular (cached, write-back) stores of p at off. The bytes
// are visible to Load immediately but will not survive a crash until the
// covering cache lines are flushed and a fence executes.
func (d *Device) Store(off int64, p []byte) {
	d.checkRange(off, len(p))
	if d.undo != nil {
		d.undo.SaveImage(d.volatile, off, len(p))
	}
	copy(d.volatile[off:], p)
	for line := off / CacheLineSize; line <= (off+int64(len(p))-1)/CacheLineSize; line++ {
		d.dirty[line] = struct{}{}
	}
	d.stats.StoreBytes += int64(len(p))
	d.stats.SimNanos += costStore(len(p))
}

// NTStore performs a non-temporal store: the bytes are visible immediately
// and become an in-flight write at once (no separate flush needed), durable
// after the next Fence.
func (d *Device) NTStore(off int64, p []byte) {
	d.checkRange(off, len(p))
	if d.undo != nil {
		d.undo.SaveImage(d.volatile, off, len(p))
	}
	copy(d.volatile[off:], p)
	if !d.unified {
		data := d.writes.take(len(p))
		copy(data, p)
		d.inflight = append(d.inflight, InFlight{Kind: KindNT, Off: off, Data: data})
	}
	d.stats.NTBytes += int64(len(p))
	d.stats.NTStores++
	d.stats.SimNanos += costNT(len(p))
}

// Flush writes back the cache lines covering [off, off+n). The current
// volatile contents of each covered line are captured as in-flight writes.
// Lines with no unflushed stores are still captured (clwb of a clean line is
// legal and harmless), because the capture is what the crash-state replayer
// keys on.
func (d *Device) Flush(off int64, n int) {
	if n == 0 {
		return
	}
	d.checkRange(off, n)
	first := off / CacheLineSize
	last := (off + int64(n) - 1) / CacheLineSize
	for line := first; line <= last; line++ {
		if !d.unified {
			lo := line * CacheLineSize
			hi := lo + CacheLineSize
			if hi > int64(len(d.volatile)) {
				hi = int64(len(d.volatile))
			}
			data := d.writes.take(int(hi - lo))
			copy(data, d.volatile[lo:hi])
			d.inflight = append(d.inflight, InFlight{Kind: KindFlush, Off: lo, Data: data})
		}
		delete(d.dirty, line)
		d.stats.LinesFlushed++
	}
	d.stats.Flushes++
	d.stats.SimNanos += costFlush(int(last - first + 1))
}

// Fence executes a store fence: every in-flight write becomes persistent, in
// order. Returns the number of writes that were in flight, which Chipmunk's
// crash-state constructor uses to bound subset enumeration.
func (d *Device) Fence() int {
	n := len(d.inflight)
	for _, w := range d.inflight {
		if d.undo != nil {
			d.undo.SaveImage(d.persistent, w.Off, len(w.Data))
		}
		copy(d.persistent[w.Off:], w.Data)
	}
	d.inflight = d.inflight[:0]
	d.writes.reset()
	d.stats.Fences++
	if int64(n) > d.stats.MaxInFlight {
		d.stats.MaxInFlight = int64(n)
	}
	d.stats.SimNanos += costFence()
	return n
}

// InjectFaults attaches a fault injector to the device: subsequent Load and
// LoadInto calls touching a poisoned cache line panic with *MediaError. The
// engine attaches injectors only to the private per-crash-state devices its
// sandbox mounts, never to the recording device.
func (d *Device) InjectFaults(inj *Injector) { d.faults = inj }

// failOnPoisoned raises the media error for reads overlapping a poisoned
// line. No-op without an attached injector.
func (d *Device) failOnPoisoned(off int64, n int) {
	if d.faults == nil || n <= 0 {
		return
	}
	for line := off / CacheLineSize; line <= (off+int64(n)-1)/CacheLineSize; line++ {
		if d.faults.Poisoned(line) {
			panic(&MediaError{Off: line * CacheLineSize})
		}
	}
}

// Load copies n bytes at off into an arena-backed slice, observing the
// volatile image (i.e. the most recent stores, durable or not). The slice is
// valid until the device is Reset; callers that outlive a reset (none of the
// file systems do — they are constructed per mount) must copy.
func (d *Device) Load(off int64, n int) []byte {
	d.checkRange(off, n)
	d.failOnPoisoned(off, n)
	out := d.reads.take(n)
	copy(out, d.volatile[off:])
	d.stats.SimNanos += costLoad(n)
	return out
}

// Peek reads len(p) bytes at off into p without advancing the cost model.
// Used by tracing instrumentation to capture flush contents; instrumentation
// overhead must not perturb the simulated-latency measurements.
func (d *Device) Peek(off int64, p []byte) {
	d.checkRange(off, len(p))
	copy(p, d.volatile[off:])
}

// LoadInto reads n = len(p) bytes at off into p without allocating.
func (d *Device) LoadInto(off int64, p []byte) {
	d.checkRange(off, len(p))
	d.failOnPoisoned(off, len(p))
	copy(p, d.volatile[off:])
	d.stats.SimNanos += costLoad(len(p))
}

// InFlightWrites returns a copy of the current in-flight write set (writes
// that would be lost — or not — at a crash right now).
func (d *Device) InFlightWrites() []InFlight {
	out := make([]InFlight, len(d.inflight))
	for i, w := range d.inflight {
		out[i] = InFlight{Kind: w.Kind, Off: w.Off, Data: append([]byte(nil), w.Data...)}
	}
	return out
}

// InFlightCount returns how many writes are currently in flight.
func (d *Device) InFlightCount() int { return len(d.inflight) }

// CrashImage returns a copy of the persistent image: the state of the media
// if power were lost right now and no in-flight write had reached it.
func (d *Device) CrashImage() []byte {
	return append([]byte(nil), d.persistent...)
}

// CrashImageInto copies the persistent image into dst, the allocation-free
// variant of CrashImage for callers that pool their baselines. dst must be
// exactly device-sized.
func (d *Device) CrashImageInto(dst []byte) {
	if len(dst) != len(d.persistent) {
		panic(fmt.Sprintf("pmem: CrashImageInto buffer size %d, device size %d", len(dst), len(d.persistent)))
	}
	copy(dst, d.persistent)
}

// CrashImageWithSubset returns a crash image with the in-flight writes whose
// indices appear in subset applied in program order (ascending index),
// regardless of the order of subset. Indices out of range panic.
func (d *Device) CrashImageWithSubset(subset []int) []byte {
	img := d.CrashImage()
	idx := append([]int(nil), subset...)
	sort.Ints(idx)
	for _, i := range idx {
		if i < 0 || i >= len(d.inflight) {
			panic(fmt.Sprintf("pmem: in-flight index %d out of range %d", i, len(d.inflight)))
		}
		w := d.inflight[i]
		copy(img[w.Off:], w.Data)
	}
	return img
}

// Patch writes p at off into BOTH the volatile and persistent images,
// bypassing the cache model. It exists for crash-state construction: the
// replayer builds an image by patching recorded writes onto a baseline, and
// the resulting device must behave as freshly rebooted.
func (d *Device) Patch(off int64, p []byte) {
	d.checkRange(off, len(p))
	if d.undo != nil {
		d.undo.SaveImage(d.volatile, off, len(p))
		if !d.unified {
			d.undo.SaveImage(d.persistent, off, len(p))
		}
	}
	copy(d.volatile[off:], p)
	if !d.unified {
		copy(d.persistent[off:], p)
	}
}

// VolatileImage returns a copy of the volatile image (what a crash-free
// reader would see). Useful for differential tests.
func (d *Device) VolatileImage() []byte {
	return append([]byte(nil), d.volatile...)
}

// DirtyUnflushedLines reports cache lines that hold stores never flushed.
// A well-behaved file system has zero at the end of every operation unless
// the data is intentionally volatile.
func (d *Device) DirtyUnflushedLines() []int64 {
	out := make([]int64, 0, len(d.dirty))
	for l := range d.dirty {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns a copy of the accumulated cost-model counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats zeroes the cost-model counters (the images are untouched).
func (d *Device) ResetStats() { d.stats = Stats{} }
