package pmem

import "chipmunk/internal/obs"

// Feed accumulates the device's cost-model counters into an observability
// collector (nil-safe: feeding a nil collector is a no-op). The engine
// calls this after the record pass so the -stats breakdown carries the
// simulated-PM numbers (store/flush/fence counts, simulated nanoseconds)
// next to the real-time stage timings.
func (s Stats) Feed(c *obs.Collector) {
	c.RecordPM(s.StoreBytes, s.NTBytes, s.Flushes, s.LinesFlushed, s.Fences, s.SimNanos)
}
