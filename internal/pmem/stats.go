package pmem

import "fmt"

// Stats accumulates operation counts and a simulated-latency estimate for a
// device. The latency model is a coarse approximation of Optane DC PMM
// behaviour (sequential store bandwidth, per-line flush cost, fence drain)
// taken from published measurements; the paper's performance observations
// (e.g. the rename-fix overhead) are about *relative* cost, which this model
// preserves: every extra journal entry costs extra flushed lines and fences.
type Stats struct {
	StoreBytes   int64 // bytes written with cached stores
	NTBytes      int64 // bytes written with non-temporal stores
	NTStores     int64 // number of NT store operations
	Flushes      int64 // number of Flush calls
	LinesFlushed int64 // cache lines written back
	Fences       int64 // store fences
	MaxInFlight  int64 // largest in-flight set observed at a fence
	SimNanos     int64 // simulated elapsed nanoseconds
}

// Cost model constants (nanoseconds). Derived from the empirical guide to
// Optane behaviour [Yang et al., FAST '20]: ~90 ns read latency, ~60 ns/line
// write-back cost into the WPQ, fence drain on the order of 100-500 ns
// depending on pending bytes. We use fixed per-op costs; only ratios matter.
const (
	costPerLoadByte   = 1  // ~64 ns/line => ~1 ns/byte
	costPerStoreByte  = 1  // store into cache
	costPerNTByte     = 2  // NT store streams to WPQ
	costPerFlushLine  = 60 // clwb + write-back
	costFenceBase     = 100
	costStoreBase     = 5
	costLoadBase      = 5
	costNTBase        = 30
	costFlushCallBase = 10
)

func costStore(n int) int64 { return costStoreBase + int64(n)*costPerStoreByte }
func costLoad(n int) int64  { return costLoadBase + int64(n)*costPerLoadByte }
func costNT(n int) int64    { return costNTBase + int64(n)*costPerNTByte }
func costFlush(lines int) int64 {
	return costFlushCallBase + int64(lines)*costPerFlushLine
}
func costFence() int64 { return costFenceBase }

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.StoreBytes += other.StoreBytes
	s.NTBytes += other.NTBytes
	s.NTStores += other.NTStores
	s.Flushes += other.Flushes
	s.LinesFlushed += other.LinesFlushed
	s.Fences += other.Fences
	if other.MaxInFlight > s.MaxInFlight {
		s.MaxInFlight = other.MaxInFlight
	}
	s.SimNanos += other.SimNanos
}

func (s Stats) String() string {
	return fmt.Sprintf("stores=%dB nt=%dB flushes=%d lines=%d fences=%d maxInflight=%d sim=%dns",
		s.StoreBytes, s.NTBytes, s.Flushes, s.LinesFlushed, s.Fences, s.MaxInFlight, s.SimNanos)
}
