// Package persist provides the centralized persistence functions that every
// file system in this repository uses to write durable data, and the probe
// mechanism that intercepts them.
//
// This is the Go realization of the paper's key gray-box insight (§3.2): PM
// file systems funnel all durable I/O through a small set of functions —
// non-temporal memcpy, non-temporal memset, buffer flush, and store fence —
// and instrumenting those functions (Kprobes/Uprobes in the paper, a probe
// interface here) records every durable write without modifying file-system
// code and without per-instruction overhead.
package persist

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"chipmunk/internal/pmem"
)

// Memory is the device contract the persistence functions drive. Both
// *pmem.Device and *pmem.TrackingDevice satisfy it.
type Memory interface {
	Store(off int64, p []byte)
	NTStore(off int64, p []byte)
	Flush(off int64, n int)
	Fence() int
	Load(off int64, n int) []byte
	LoadInto(off int64, p []byte)
	Peek(off int64, p []byte)
	Size() int64
}

var (
	_ Memory = (*pmem.Device)(nil)
	_ Memory = trackingAdapter{}
)

// trackingAdapter lifts *pmem.TrackingDevice (whose Fence is promoted from
// the embedded Device) to the Memory interface.
type trackingAdapter struct{ *pmem.TrackingDevice }

// WrapTracking adapts a TrackingDevice to Memory.
func WrapTracking(t *pmem.TrackingDevice) Memory { return trackingAdapter{t} }

// Probe observes persistence-function invocations. Implementations must not
// mutate data.
type Probe interface {
	// OnNT fires for non-temporal memcpy/memset; data is the full buffer.
	OnNT(off int64, data []byte, fn string)
	// OnFlush fires for buffer flushes; data is the captured contents of
	// the covered cache lines at flush time, and off is aligned down to a
	// cache-line boundary.
	OnFlush(off int64, data []byte)
	// OnFence fires for store fences.
	OnFence()
	// OnStore fires for plain cached stores ONLY when per-store tracing is
	// enabled (the instruction-level ablation).
	OnStore(off int64, data []byte)
}

// PM couples a device with the persistence-function set. All file systems
// receive a *PM and perform durable I/O exclusively through it.
type PM struct {
	mem    Memory
	probes []Probe

	// TraceStores enables per-store probing, emulating instruction-level
	// tracers like Yat and Vinter for the overhead ablation.
	TraceStores bool

	// memset is MemsetNT's reusable pattern buffer (non-zero bytes only;
	// zero fills use the shared zeros buffer) and flushCap Flush's reusable
	// line-capture buffer. Reuse across calls is safe because every
	// consumer copies: the device captures the bytes into its own in-flight
	// storage and probes append private copies.
	memset   []byte
	flushCap []byte
}

// zeroBuf publishes a shared all-zero buffer for MemsetNT's dominant b==0
// case, so zeroing PM ranges neither allocates nor fills: the device copies
// the bytes it keeps and the Probe contract forbids mutating data, so the
// buffer is effectively read-only. Grown (never shrunk) under zeroMu,
// published atomically so concurrent checkers can read it lock-free.
var (
	zeroBuf atomic.Value // []byte
	zeroMu  sync.Mutex
)

func zeros(n int) []byte {
	if b, _ := zeroBuf.Load().([]byte); len(b) >= n {
		return b[:n]
	}
	zeroMu.Lock()
	defer zeroMu.Unlock()
	if b, _ := zeroBuf.Load().([]byte); len(b) >= n {
		return b[:n]
	}
	size := 4096
	for size < n {
		size *= 2
	}
	b := make([]byte, size)
	zeroBuf.Store(b)
	return b[:n]
}

// New wraps mem. Probes can be attached later with Attach.
func New(mem Memory) *PM { return &PM{mem: mem} }

// Attach registers a probe. Probes fire in attach order.
func (p *PM) Attach(pr Probe) { p.probes = append(p.probes, pr) }

// Detach removes a previously attached probe.
func (p *PM) Detach(pr Probe) {
	for i, x := range p.probes {
		if x == pr {
			p.probes = append(p.probes[:i], p.probes[i+1:]...)
			return
		}
	}
}

// Mem exposes the underlying device (for harness-level snapshots; file
// systems must not use it).
func (p *PM) Mem() Memory { return p.mem }

// Size returns the device capacity.
func (p *PM) Size() int64 { return p.mem.Size() }

// MemcpyNT copies src to PM at off with non-temporal stores. One logical
// durable write; durable after the next Fence.
func (p *PM) MemcpyNT(off int64, src []byte) {
	p.mem.NTStore(off, src)
	for _, pr := range p.probes {
		pr.OnNT(off, src, "memcpy_nt")
	}
}

// MemsetNT writes n copies of b at off with non-temporal stores.
func (p *PM) MemsetNT(off int64, b byte, n int) {
	var buf []byte
	if b == 0 {
		buf = zeros(n)
	} else {
		if cap(p.memset) < n {
			p.memset = make([]byte, n)
		}
		buf = p.memset[:n]
		for i := range buf {
			buf[i] = b
		}
	}
	p.mem.NTStore(off, buf)
	for _, pr := range p.probes {
		pr.OnNT(off, buf, "memset_nt")
	}
}

// Store performs plain cached stores: visible immediately, durable only
// after Flush + Fence. Not individually traced (function-level logging).
func (p *PM) Store(off int64, src []byte) {
	p.mem.Store(off, src)
	if p.TraceStores {
		for _, pr := range p.probes {
			pr.OnStore(off, src)
		}
	}
}

// Store64 stores a little-endian uint64 (the 8-byte atomic unit on Intel PM).
func (p *PM) Store64(off int64, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	p.Store(off, b[:])
}

// Store32 stores a little-endian uint32.
func (p *PM) Store32(off int64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	p.Store(off, b[:])
}

// Flush writes back the cache lines covering [off, off+n). The captured
// line contents are reported to probes, which is how the recorder learns
// what a crash could persist.
func (p *PM) Flush(off int64, n int) {
	if n <= 0 {
		return
	}
	if len(p.probes) == 0 {
		// No probe wants the capture; skip it. Crash-state check mounts
		// attach no probes, so this removes a full-range copy from every
		// flush the recovery and usability paths issue.
		p.mem.Flush(off, n)
		return
	}
	lo := off &^ (pmem.CacheLineSize - 1)
	hi := (off + int64(n) + pmem.CacheLineSize - 1) &^ (pmem.CacheLineSize - 1)
	if hi > p.mem.Size() {
		hi = p.mem.Size()
	}
	if cap(p.flushCap) < int(hi-lo) {
		p.flushCap = make([]byte, hi-lo)
	}
	capture := p.flushCap[:hi-lo]
	p.mem.Peek(lo, capture)
	p.mem.Flush(off, n)
	for _, pr := range p.probes {
		pr.OnFlush(lo, capture)
	}
}

// Fence executes a store fence, making all in-flight writes durable.
func (p *PM) Fence() {
	p.mem.Fence()
	for _, pr := range p.probes {
		pr.OnFence()
	}
}

// PersistStore is the common store+flush idiom: cached store of src at off
// followed by a write-back of the covered lines. Still requires Fence.
func (p *PM) PersistStore(off int64, src []byte) {
	p.Store(off, src)
	p.Flush(off, len(src))
}

// PersistStore64 stores, flushes (and leaves fencing to the caller) an
// 8-byte value — the idiom used for log-tail and journal pointers.
func (p *PM) PersistStore64(off int64, v uint64) {
	p.Store64(off, v)
	p.Flush(off, 8)
}

// Load reads n bytes at off.
//
// Fault model: when the device carries an injected fault set
// (pmem.Injector), a load touching a poisoned cache line panics with
// *pmem.MediaError — the software-visible form of an uncorrectable media
// error. PM propagates that panic unchanged; the engine's check sandbox
// catches and classifies it. Recovery code that wants to survive poisoned
// lines instead of aborting the mount should use TryLoad.
func (p *PM) Load(off int64, n int) []byte {
	p.notifyLoad(off, n)
	return p.mem.Load(off, n)
}

// TryLoad is Load with media faults returned as an error instead of raised
// as a panic: the API through which file systems can tolerate read-time
// media errors on their recovery paths. Panics that are not *pmem.MediaError
// propagate unchanged.
func (p *PM) TryLoad(off int64, n int) (data []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			if me, ok := r.(*pmem.MediaError); ok {
				data, err = nil, me
				return
			}
			panic(r)
		}
	}()
	return p.Load(off, n), nil
}

// LoadInto reads len(dst) bytes at off into dst.
func (p *PM) LoadInto(off int64, dst []byte) {
	p.notifyLoad(off, len(dst))
	p.mem.LoadInto(off, dst)
}

// Load64 reads a little-endian uint64 at off.
func (p *PM) Load64(off int64) uint64 {
	p.notifyLoad(off, 8)
	var b [8]byte
	p.mem.LoadInto(off, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Load32 reads a little-endian uint32 at off.
func (p *PM) Load32(off int64) uint32 {
	p.notifyLoad(off, 4)
	var b [4]byte
	p.mem.LoadInto(off, b[:])
	return binary.LittleEndian.Uint32(b[:])
}
