package persist

import (
	"bytes"
	"testing"

	"chipmunk/internal/pmem"
	"chipmunk/internal/trace"
)

func TestRegionOffsetsAndTracing(t *testing.T) {
	dev := pmem.NewDevice(1024)
	pm := New(dev)
	log := trace.NewLog()
	pm.Attach(NewRecorder(log))

	r := NewRegion(pm, 256, 512)
	if r.Size() != 512 {
		t.Fatalf("size = %d", r.Size())
	}
	r.MemcpyNT(0, []byte{1, 2, 3})
	r.Fence()
	// The probe sees the ABSOLUTE device offset.
	if e := log.At(0); e.Off != 256 {
		t.Fatalf("traced offset = %d, want 256", e.Off)
	}
	if got := dev.Load(256, 3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("device bytes = %v", got)
	}
	// Region reads are window-relative.
	if got := r.Load(0, 3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("region read = %v", got)
	}
}

func TestRegionRoundTripHelpers(t *testing.T) {
	dev := pmem.NewDevice(4096)
	pm := New(dev)
	r := NewRegion(pm, 1024, 2048)

	r.Store64(0, 0xABCD)
	if r.Load64(0) != 0xABCD {
		t.Fatal("store64/load64")
	}
	r.Store32(8, 77)
	if r.Load32(8) != 77 {
		t.Fatal("store32/load32")
	}
	r.PersistStore64(16, 99)
	r.PersistStore(24, []byte{5})
	r.Fence()
	if dev.CrashImage()[1024+16] != 99 || dev.CrashImage()[1024+24] != 5 {
		t.Fatal("persist helpers not durable")
	}
	r.MemsetNT(32, 0x11, 4)
	r.Fence()
	buf := make([]byte, 4)
	r.LoadInto(32, buf)
	if buf[0] != 0x11 || buf[3] != 0x11 {
		t.Fatal("memset/loadinto")
	}
	r.Flush(0, 0) // no-op
}

func TestRegionBoundsPanics(t *testing.T) {
	dev := pmem.NewDevice(1024)
	pm := New(dev)

	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("bad window", func() { NewRegion(pm, 512, 1024) })
	r := NewRegion(pm, 0, 128)
	expectPanic("store out of window", func() { r.Store(120, make([]byte, 16)) })
	expectPanic("load out of window", func() { r.Load(-1, 4) })
	expectPanic("nt out of window", func() { r.MemcpyNT(128, []byte{1}) })
}
