package persist

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"chipmunk/internal/pmem"
	"chipmunk/internal/trace"
)

func newRecorded(size int64) (*PM, *trace.Log, *pmem.Device) {
	dev := pmem.NewDevice(size)
	pm := New(dev)
	log := trace.NewLog()
	pm.Attach(NewRecorder(log))
	return pm, log, dev
}

func TestMemcpyNTRecorded(t *testing.T) {
	pm, log, dev := newRecorded(256)
	pm.MemcpyNT(16, []byte("abcd"))
	if log.Len() != 1 {
		t.Fatalf("log len = %d", log.Len())
	}
	e := log.At(0)
	if e.Kind != trace.KindNT || e.Off != 16 || !bytes.Equal(e.Data, []byte("abcd")) {
		t.Fatalf("entry = %+v", e)
	}
	if dev.InFlightCount() != 1 {
		t.Fatal("NT store not in flight")
	}
	pm.Fence()
	if img := dev.CrashImage(); !bytes.Equal(img[16:20], []byte("abcd")) {
		t.Fatal("NT store not durable after fence")
	}
}

func TestMemsetNT(t *testing.T) {
	pm, log, _ := newRecorded(256)
	pm.MemsetNT(0, 0x5A, 10)
	pm.Fence()
	e := log.At(0)
	if len(e.Data) != 10 || e.Data[9] != 0x5A {
		t.Fatalf("memset entry = %+v", e)
	}
	if got := pm.Load(0, 10); got[0] != 0x5A || got[9] != 0x5A {
		t.Fatalf("memset contents = %v", got)
	}
}

func TestFlushCaptureAndAlignment(t *testing.T) {
	pm, log, _ := newRecorded(512)
	pm.Store(100, []byte{7, 8, 9})
	pm.Flush(100, 3)
	if log.Len() != 1 {
		t.Fatalf("log len = %d", log.Len())
	}
	e := log.At(0)
	if e.Kind != trace.KindFlush {
		t.Fatalf("kind = %v", e.Kind)
	}
	if e.Off != 64 { // aligned down to line start
		t.Fatalf("flush off = %d, want 64", e.Off)
	}
	if len(e.Data) != pmem.CacheLineSize {
		t.Fatalf("capture len = %d, want one line", len(e.Data))
	}
	if e.Data[100-64] != 7 || e.Data[102-64] != 9 {
		t.Fatal("capture does not contain stored bytes")
	}
}

func TestFlushCaptureClampsAtDeviceEnd(t *testing.T) {
	pm, log, _ := newRecorded(100) // not line-aligned size
	pm.Store(96, []byte{1})
	pm.Flush(96, 1)
	e := log.At(0)
	if e.Off != 64 || len(e.Data) != 36 {
		t.Fatalf("clamped capture: off=%d len=%d", e.Off, len(e.Data))
	}
}

func TestFlushNonPositiveNoop(t *testing.T) {
	pm, log, _ := newRecorded(128)
	pm.Flush(0, 0)
	pm.Flush(0, -5)
	if log.Len() != 0 {
		t.Fatal("no-op flush recorded")
	}
}

func TestStoreNotTracedByDefault(t *testing.T) {
	pm, log, _ := newRecorded(128)
	pm.Store(0, []byte{1})
	if log.Len() != 0 {
		t.Fatal("plain store traced in function-level mode")
	}
	pm.TraceStores = true
	pm.Store(0, []byte{2})
	if log.Len() != 1 || log.At(0).Kind != trace.KindStore {
		t.Fatal("per-store tracing mode did not record store")
	}
}

func TestStore64Load64Roundtrip(t *testing.T) {
	pm, _, _ := newRecorded(128)
	pm.Store64(8, 0xDEADBEEFCAFE)
	if got := pm.Load64(8); got != 0xDEADBEEFCAFE {
		t.Fatalf("load64 = %#x", got)
	}
	pm.Store32(32, 0xABCD1234)
	if got := pm.Load32(32); got != 0xABCD1234 {
		t.Fatalf("load32 = %#x", got)
	}
}

func TestPersistStore64Durable(t *testing.T) {
	pm, _, dev := newRecorded(128)
	pm.PersistStore64(0, 42)
	pm.Fence()
	img := dev.CrashImage()
	if img[0] != 42 {
		t.Fatal("PersistStore64 not durable after fence")
	}
}

func TestDetach(t *testing.T) {
	pm, log, _ := newRecorded(128)
	rec2log := trace.NewLog()
	rec2 := NewRecorder(rec2log)
	pm.Attach(rec2)
	pm.MemcpyNT(0, []byte{1})
	pm.Detach(rec2)
	pm.MemcpyNT(8, []byte{2})
	if rec2log.Len() != 1 {
		t.Fatalf("detached probe log len = %d, want 1", rec2log.Len())
	}
	if log.Len() != 2 {
		t.Fatalf("remaining probe log len = %d, want 2", log.Len())
	}
}

func TestCountingProbe(t *testing.T) {
	dev := pmem.NewDevice(256)
	pm := New(dev)
	c := &CountingProbe{}
	pm.Attach(c)
	pm.TraceStores = true
	pm.MemcpyNT(0, []byte{1})
	pm.Store(8, []byte{2})
	pm.Flush(8, 1)
	pm.Fence()
	if c.NT != 1 || c.Stores != 1 || c.Flushes != 1 || c.Fences != 1 {
		t.Fatalf("counts = %+v", *c)
	}
}

func TestWrapTracking(t *testing.T) {
	td := pmem.NewTrackingDevice(make([]byte, 256))
	pm := New(WrapTracking(td))
	pm.MemcpyNT(0, []byte{9})
	pm.Fence()
	if pm.Load(0, 1)[0] != 9 {
		t.Fatal("tracking device write lost")
	}
	td.Rollback()
	if pm.Load(0, 1)[0] != 0 {
		t.Fatal("rollback through adapter failed")
	}
}

// Property: trace fidelity. For random persistence-op sequences, replaying
// the recorded trace onto a copy of the initial image produces exactly the
// device's persistent image (after a final fence). This is the foundation
// of Chipmunk's record-and-replay: the function-level log loses nothing the
// crash-state constructor needs.
func TestPropertyTraceReplayMatchesDevice(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pm, log, dev := newRecorded(4096)
		for i := 0; i < 40; i++ {
			off := rng.Int63n(3900)
			n := rng.Intn(100) + 1
			buf := make([]byte, n)
			rng.Read(buf)
			switch rng.Intn(4) {
			case 0:
				pm.MemcpyNT(off, buf)
			case 1:
				pm.MemsetNT(off, byte(rng.Intn(256)), n)
			case 2:
				pm.Store(off, buf)
				pm.Flush(off, n)
			case 3:
				pm.Fence()
			}
		}
		pm.Fence()
		img := make([]byte, 4096)
		trace.ReplayAll(img, log)
		return bytes.Equal(img, dev.CrashImage())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: unflushed cached stores never reach the replayed image either —
// the trace contains them only via flush captures.
func TestPropertyTraceOmitsUnflushedStores(t *testing.T) {
	pm, log, _ := newRecorded(1024)
	pm.Store(512, []byte{0xEE})
	pm.MemcpyNT(0, []byte{1})
	pm.Fence()
	img := make([]byte, 1024)
	trace.ReplayAll(img, log)
	if img[512] != 0 {
		t.Fatal("unflushed store appeared in trace replay")
	}
}
