package persist

import "fmt"

// Space is the persistence-function surface a file system programs against.
// *PM implements it over a whole device; *Region implements it over a
// window of a device, which is how SplitFS's kernel file system, operation
// log, and staging area share one PM DIMM. Because a Region delegates to
// the parent PM's persistence functions, probes observe every write with
// absolute device offsets — the gray-box tracing contract is preserved
// across layered file systems.
type Space interface {
	MemcpyNT(off int64, src []byte)
	MemsetNT(off int64, b byte, n int)
	Store(off int64, src []byte)
	Store64(off int64, v uint64)
	Store32(off int64, v uint32)
	Flush(off int64, n int)
	Fence()
	PersistStore(off int64, src []byte)
	PersistStore64(off int64, v uint64)
	Load(off int64, n int) []byte
	LoadInto(off int64, dst []byte)
	Load64(off int64) uint64
	Load32(off int64) uint32
	Size() int64
}

var (
	_ Space = (*PM)(nil)
	_ Space = (*Region)(nil)
)

// Region is a contiguous window [base, base+size) of a PM.
type Region struct {
	pm   *PM
	base int64
	size int64
}

// NewRegion carves a window out of pm. Panics if the window exceeds the
// device.
func NewRegion(pm *PM, base, size int64) *Region {
	if base < 0 || size <= 0 || base+size > pm.Size() {
		panic(fmt.Sprintf("persist: region [%d, %d) outside device of size %d", base, base+size, pm.Size()))
	}
	return &Region{pm: pm, base: base, size: size}
}

func (r *Region) check(off int64, n int) {
	if off < 0 || int64(n) < 0 || off+int64(n) > r.size {
		panic(fmt.Sprintf("persist: region access [%d, %d) outside window of size %d", off, off+int64(n), r.size))
	}
}

// MemcpyNT implements Space.
func (r *Region) MemcpyNT(off int64, src []byte) {
	r.check(off, len(src))
	r.pm.MemcpyNT(r.base+off, src)
}

// MemsetNT implements Space.
func (r *Region) MemsetNT(off int64, b byte, n int) {
	r.check(off, n)
	r.pm.MemsetNT(r.base+off, b, n)
}

// Store implements Space.
func (r *Region) Store(off int64, src []byte) {
	r.check(off, len(src))
	r.pm.Store(r.base+off, src)
}

// Store64 implements Space.
func (r *Region) Store64(off int64, v uint64) {
	r.check(off, 8)
	r.pm.Store64(r.base+off, v)
}

// Store32 implements Space.
func (r *Region) Store32(off int64, v uint32) {
	r.check(off, 4)
	r.pm.Store32(r.base+off, v)
}

// Flush implements Space.
func (r *Region) Flush(off int64, n int) {
	if n <= 0 {
		return
	}
	r.check(off, n)
	r.pm.Flush(r.base+off, n)
}

// Fence implements Space.
func (r *Region) Fence() { r.pm.Fence() }

// PersistStore implements Space.
func (r *Region) PersistStore(off int64, src []byte) {
	r.check(off, len(src))
	r.pm.PersistStore(r.base+off, src)
}

// PersistStore64 implements Space.
func (r *Region) PersistStore64(off int64, v uint64) {
	r.check(off, 8)
	r.pm.PersistStore64(r.base+off, v)
}

// Load implements Space.
func (r *Region) Load(off int64, n int) []byte {
	r.check(off, n)
	return r.pm.Load(r.base+off, n)
}

// LoadInto implements Space.
func (r *Region) LoadInto(off int64, dst []byte) {
	r.check(off, len(dst))
	r.pm.LoadInto(r.base+off, dst)
}

// Load64 implements Space.
func (r *Region) Load64(off int64) uint64 {
	r.check(off, 8)
	return r.pm.Load64(r.base + off)
}

// Load32 implements Space.
func (r *Region) Load32(off int64) uint32 {
	r.check(off, 4)
	return r.pm.Load32(r.base + off)
}

// Size implements Space.
func (r *Region) Size() int64 { return r.size }
