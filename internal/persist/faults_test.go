package persist

import (
	"testing"

	"chipmunk/internal/pmem"
)

// TestTryLoadConvertsMediaFault: TryLoad is the error-returning read for
// recovery paths — an injected *pmem.MediaError comes back as an error,
// while unrelated panics propagate unchanged.
func TestTryLoadConvertsMediaFault(t *testing.T) {
	dev := pmem.NewDevice(1024)
	pm := New(dev)
	if _, err := pm.TryLoad(0, 16); err != nil {
		t.Fatalf("TryLoad on a clean device: %v", err)
	}

	dev.InjectFaults(pmem.NewInjector(&pmem.FaultConfig{Seed: 1, ReadErrOneInN: 1}, 3))
	data, err := pm.TryLoad(0, 16)
	if err == nil {
		t.Fatal("TryLoad on a poisoned line returned no error")
	}
	if data != nil {
		t.Fatalf("TryLoad returned data %v alongside the error", data)
	}
	if _, ok := err.(*pmem.MediaError); !ok {
		t.Fatalf("TryLoad error %T, want *pmem.MediaError", err)
	}

	// Non-media panics (here: out-of-range access) must propagate.
	defer func() {
		if recover() == nil {
			t.Fatal("TryLoad swallowed a non-media panic")
		}
	}()
	pm.TryLoad(2000, 16)
}
