package persist

import "chipmunk/internal/trace"

// Recorder is the probe Chipmunk attaches to a PM under test. It appends
// one trace entry per persistence-function call; the log copies the data
// bytes into its own arena, so later mutations cannot corrupt it.
type Recorder struct {
	Log *trace.Log
}

// NewRecorder returns a recorder appending to log.
func NewRecorder(log *trace.Log) *Recorder { return &Recorder{Log: log} }

// OnNT implements Probe.
func (r *Recorder) OnNT(off int64, data []byte, fn string) {
	r.Log.Append(trace.KindNT, off, data, fn)
}

// OnFlush implements Probe.
func (r *Recorder) OnFlush(off int64, data []byte) {
	r.Log.Append(trace.KindFlush, off, data, "flush_buffer")
}

// OnFence implements Probe.
func (r *Recorder) OnFence() {
	r.Log.Append(trace.KindFence, 0, nil, "sfence")
}

// OnStore implements Probe (per-store ablation mode only).
func (r *Recorder) OnStore(off int64, data []byte) {
	r.Log.Append(trace.KindStore, off, data, "store")
}

var _ Probe = (*Recorder)(nil)

// CountingProbe tallies persistence-function calls without recording data;
// used by the tracing-overhead ablation to isolate interception cost.
type CountingProbe struct {
	NT, Flushes, Fences, Stores int64
}

// OnNT implements Probe.
func (c *CountingProbe) OnNT(off int64, data []byte, fn string) { c.NT++ }

// OnFlush implements Probe.
func (c *CountingProbe) OnFlush(off int64, data []byte) { c.Flushes++ }

// OnFence implements Probe.
func (c *CountingProbe) OnFence() { c.Fences++ }

// OnStore implements Probe.
func (c *CountingProbe) OnStore(off int64, data []byte) { c.Stores++ }

var _ Probe = (*CountingProbe)(nil)
