package persist

// LoadProbe is an optional extension of Probe: attachments implementing it
// also observe PM reads. Chipmunk's core design does not need read tracing,
// but §6.2 notes that Vinter's state-space heuristic — prioritize in-flight
// writes that recovery actually READS — could be incorporated by recording
// PM read functions; this is that hook.
type LoadProbe interface {
	OnLoad(off int64, n int)
}

// notifyLoad fans a read event out to attached probes implementing
// LoadProbe.
func (p *PM) notifyLoad(off int64, n int) {
	for _, pr := range p.probes {
		if lp, ok := pr.(LoadProbe); ok {
			lp.OnLoad(off, n)
		}
	}
}

// ReadSet records the cache lines a mount-time recovery read, at line
// granularity.
type ReadSet struct {
	lines map[int64]bool
}

// NewReadSet returns an empty read set usable as a probe.
func NewReadSet() *ReadSet { return &ReadSet{lines: map[int64]bool{}} }

// OnLoad implements LoadProbe.
func (r *ReadSet) OnLoad(off int64, n int) {
	if n <= 0 {
		return
	}
	for line := off / 64; line <= (off+int64(n)-1)/64; line++ {
		r.lines[line] = true
	}
}

// OnNT implements Probe (no-op; ReadSet only cares about reads).
func (r *ReadSet) OnNT(off int64, data []byte, fn string) {}

// OnFlush implements Probe.
func (r *ReadSet) OnFlush(off int64, data []byte) {}

// OnFence implements Probe.
func (r *ReadSet) OnFence() {}

// OnStore implements Probe.
func (r *ReadSet) OnStore(off int64, data []byte) {}

// Overlaps reports whether [off, off+n) touches any recorded line.
func (r *ReadSet) Overlaps(off int64, n int) bool {
	if n <= 0 {
		return false
	}
	for line := off / 64; line <= (off+int64(n)-1)/64; line++ {
		if r.lines[line] {
			return true
		}
	}
	return false
}

// Size returns the number of distinct lines read.
func (r *ReadSet) Size() int { return len(r.lines) }

var (
	_ Probe     = (*ReadSet)(nil)
	_ LoadProbe = (*ReadSet)(nil)
)
