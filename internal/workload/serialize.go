package workload

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// Format serializes a workload as a line-oriented reproducer program, the
// way Syzkaller emits repro files. The format round-trips through Parse:
//
//	# name: fuzz-mut-17
//	creat /f0 fd=0
//	open /f0 fd=1
//	pwrite fd=0 off=0 size=64 seed=1
//	rename /f0 /f1
//	sync
func Format(w Workload) string {
	var b strings.Builder
	if w.Name != "" {
		fmt.Fprintf(&b, "# name: %s\n", w.Name)
	}
	for _, op := range w.Ops {
		b.WriteString(formatOp(op))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatOp(op Op) string {
	parts := []string{op.Kind.String()}
	switch op.Kind {
	case OpLink, OpRename:
		parts = append(parts, op.Path, op.Path2)
	case OpSetxattr, OpRemovexattr:
		parts = append(parts, op.Path, "attr="+op.Path2)
	case OpClose:
		// fd-only
	case OpSync, OpKVSync:
		// no args
	case OpKVPut, OpKVDel, OpKVGet:
		// Keys are not "/"-prefixed paths, so they need an explicit tag.
		parts = append(parts, "key="+op.Path)
	default:
		if op.Path != "" {
			parts = append(parts, op.Path)
		}
	}
	if op.FDSlot >= 0 && !op.Kind.AppLevel() {
		parts = append(parts, fmt.Sprintf("fd=%d", op.FDSlot))
	}
	switch op.Kind {
	case OpPwrite, OpFalloc:
		parts = append(parts, fmt.Sprintf("off=%d", op.Off))
	}
	switch op.Kind {
	case OpWrite, OpPwrite, OpTruncate, OpFalloc, OpKVPut, OpKVGet:
		parts = append(parts, fmt.Sprintf("size=%d", op.Size))
	}
	switch op.Kind {
	case OpWrite, OpPwrite, OpSetxattr, OpKVPut, OpKVGet:
		parts = append(parts, fmt.Sprintf("seed=%d", op.Seed))
	}
	return strings.Join(parts, " ")
}

var kindByName = func() map[string]OpKind {
	m := map[string]OpKind{}
	for k := OpCreat; k <= OpKVGet; k++ {
		m[k.String()] = k
	}
	return m
}()

// Parse reads a reproducer program produced by Format.
func Parse(src string) (Workload, error) {
	var w Workload
	sc := bufio.NewScanner(strings.NewReader(src))
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if rest, ok := strings.CutPrefix(text, "# name:"); ok {
				w.Name = strings.TrimSpace(rest)
			}
			continue
		}
		op, err := parseOp(text)
		if err != nil {
			return Workload{}, fmt.Errorf("line %d: %w", line, err)
		}
		w.Ops = append(w.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return Workload{}, err
	}
	return w, nil
}

func parseOp(text string) (Op, error) {
	fields := strings.Fields(text)
	kind, ok := kindByName[fields[0]]
	if !ok {
		return Op{}, fmt.Errorf("unknown op %q", fields[0])
	}
	op := Op{Kind: kind, FDSlot: -1}
	var paths []string
	for _, f := range fields[1:] {
		switch {
		case strings.HasPrefix(f, "fd="):
			v, err := strconv.Atoi(f[3:])
			if err != nil {
				return Op{}, fmt.Errorf("bad fd %q", f)
			}
			op.FDSlot = v
		case strings.HasPrefix(f, "off="):
			v, err := strconv.ParseInt(f[4:], 10, 64)
			if err != nil {
				return Op{}, fmt.Errorf("bad off %q", f)
			}
			op.Off = v
		case strings.HasPrefix(f, "size="):
			v, err := strconv.ParseInt(f[5:], 10, 64)
			if err != nil {
				return Op{}, fmt.Errorf("bad size %q", f)
			}
			op.Size = v
		case strings.HasPrefix(f, "attr="):
			op.Path2 = f[5:]
		case strings.HasPrefix(f, "key="):
			op.Path = f[4:]
		case strings.HasPrefix(f, "seed="):
			v, err := strconv.ParseUint(f[5:], 10, 32)
			if err != nil {
				return Op{}, fmt.Errorf("bad seed %q", f)
			}
			op.Seed = uint32(v)
		case strings.HasPrefix(f, "/"):
			paths = append(paths, f)
		default:
			return Op{}, fmt.Errorf("unexpected token %q", f)
		}
	}
	if len(paths) > 0 {
		op.Path = paths[0]
	}
	if len(paths) > 1 {
		op.Path2 = paths[1]
	}
	if len(paths) > 2 {
		return Op{}, fmt.Errorf("too many paths in %q", text)
	}
	return op, nil
}
