package workload

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"chipmunk/internal/fs/memfs"
	"chipmunk/internal/vfs"
)

func newFS(t *testing.T) vfs.FS {
	t.Helper()
	f := memfs.New()
	if err := f.Mkfs(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRunBasicWorkload(t *testing.T) {
	fs := newFS(t)
	w := Workload{Ops: []Op{
		{Kind: OpCreat, Path: "/a", FDSlot: -1},
		{Kind: OpWrite, Path: "/a", FDSlot: -1, Size: 10, Seed: 1},
		{Kind: OpMkdir, Path: "/d"},
		{Kind: OpRename, Path: "/a", Path2: "/d/b"},
	}}
	res := Run(fs, w, Hooks{})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d (%s) failed: %v", i, r.Op, r.Err)
		}
	}
	st, err := fs.Stat("/d/b")
	if err != nil || st.Size != 10 {
		t.Fatalf("final state: %+v %v", st, err)
	}
}

func TestRunHooksOrder(t *testing.T) {
	fs := newFS(t)
	var events []string
	w := Workload{Ops: []Op{
		{Kind: OpCreat, Path: "/a", FDSlot: -1},
		{Kind: OpUnlink, Path: "/a"},
	}}
	Run(fs, w, Hooks{
		Before: func(i int, op Op) { events = append(events, "B"+op.Kind.String()) },
		After:  func(i int, op Op, err error) { events = append(events, "A"+op.Kind.String()) },
	})
	want := []string{"Bcreat", "Acreat", "Bunlink", "Aunlink"}
	if strings.Join(events, ",") != strings.Join(want, ",") {
		t.Fatalf("events = %v", events)
	}
}

func TestWriteAppendsAtEOF(t *testing.T) {
	fs := newFS(t)
	w := Workload{Ops: []Op{
		{Kind: OpCreat, Path: "/a", FDSlot: -1},
		{Kind: OpWrite, Path: "/a", FDSlot: -1, Size: 4, Seed: 1},
		{Kind: OpWrite, Path: "/a", FDSlot: -1, Size: 4, Seed: 2},
	}}
	Run(fs, w, Hooks{})
	st, _ := fs.Stat("/a")
	if st.Size != 8 {
		t.Fatalf("size = %d, want 8 (append)", st.Size)
	}
	fd, _ := fs.Open("/a")
	buf := make([]byte, 8)
	fs.Pread(fd, buf, 0)
	if !bytes.Equal(buf[:4], Data(1, 4)) || !bytes.Equal(buf[4:], Data(2, 4)) {
		t.Fatal("append order wrong")
	}
}

func TestFDSlots(t *testing.T) {
	fs := newFS(t)
	w := Workload{Ops: []Op{
		{Kind: OpCreat, Path: "/a", FDSlot: 0},
		{Kind: OpOpen, Path: "/a", FDSlot: 1},
		{Kind: OpPwrite, FDSlot: 0, Off: 0, Size: 4, Seed: 7},
		{Kind: OpPwrite, FDSlot: 1, Off: 2, Size: 4, Seed: 8},
		{Kind: OpClose, FDSlot: 0},
		{Kind: OpClose, FDSlot: 1},
	}}
	res := Run(fs, w, Hooks{})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}
	st, _ := fs.Stat("/a")
	if st.Size != 6 {
		t.Fatalf("size = %d (two-fd overlap)", st.Size)
	}
}

func TestSlotErrors(t *testing.T) {
	fs := newFS(t)
	res := Run(fs, Workload{Ops: []Op{
		{Kind: OpClose, FDSlot: 3},
		{Kind: OpPwrite, FDSlot: 5, Size: 1},
	}}, Hooks{})
	if !errors.Is(res[0].Err, vfs.ErrBadFD) || !errors.Is(res[1].Err, vfs.ErrBadFD) {
		t.Fatalf("errors = %v, %v", res[0].Err, res[1].Err)
	}
}

func TestOpErrorsRecordedNotFatal(t *testing.T) {
	fs := newFS(t)
	res := Run(fs, Workload{Ops: []Op{
		{Kind: OpUnlink, Path: "/missing"},
		{Kind: OpCreat, Path: "/a", FDSlot: -1},
	}}, Hooks{})
	if !errors.Is(res[0].Err, vfs.ErrNotExist) {
		t.Fatalf("first op err = %v", res[0].Err)
	}
	if res[1].Err != nil {
		t.Fatalf("second op err = %v", res[1].Err)
	}
}

func TestRemoveDispatch(t *testing.T) {
	fs := newFS(t)
	Run(fs, Workload{Ops: []Op{
		{Kind: OpCreat, Path: "/f", FDSlot: -1},
		{Kind: OpMkdir, Path: "/d"},
		{Kind: OpRemove, Path: "/f"},
		{Kind: OpRemove, Path: "/d"},
	}}, Hooks{})
	if _, err := fs.Stat("/f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("remove file failed")
	}
	if _, err := fs.Stat("/d"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("remove dir failed")
	}
}

func TestAutoOpenFsyncAndSync(t *testing.T) {
	fs := newFS(t)
	res := Run(fs, Workload{Ops: []Op{
		{Kind: OpCreat, Path: "/a", FDSlot: -1},
		{Kind: OpFsync, Path: "/a", FDSlot: -1},
		{Kind: OpFdatasync, Path: "/a", FDSlot: -1},
		{Kind: OpSync},
		{Kind: OpFalloc, Path: "/a", FDSlot: -1, Off: 0, Size: 16},
	}}, Hooks{})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}
	st, _ := fs.Stat("/a")
	if st.Size != 16 {
		t.Fatalf("fallocate size = %d", st.Size)
	}
}

func TestLeftOpenSlotsClosedAtEnd(t *testing.T) {
	fs := newFS(t)
	Run(fs, Workload{Ops: []Op{
		{Kind: OpCreat, Path: "/a", FDSlot: 0},
	}}, Hooks{})
	// The slot fd was closed by Run; closing again via a fresh Run gives EBADF.
	res := Run(fs, Workload{Ops: []Op{{Kind: OpClose, FDSlot: 0}}}, Hooks{})
	if !errors.Is(res[0].Err, vfs.ErrBadFD) {
		t.Fatal("slot not closed at workload end")
	}
}

func TestPatternDeterministicNoZeros(t *testing.T) {
	a := Data(42, 256)
	b := Data(42, 256)
	if !bytes.Equal(a, b) {
		t.Fatal("pattern not deterministic")
	}
	c := Data(43, 256)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced same data")
	}
	for _, x := range a {
		if x == 0 {
			t.Fatal("pattern contains zero byte")
		}
	}
}

func TestOpStringRendering(t *testing.T) {
	cases := []struct {
		op   Op
		want string
	}{
		{Op{Kind: OpRename, Path: "/a", Path2: "/b"}, "rename(/a, /b)"},
		{Op{Kind: OpPwrite, Path: "/a", FDSlot: -1, Off: 4, Size: 8}, "pwrite(/a, off=4, size=8)"},
		{Op{Kind: OpSync}, "sync()"},
		{Op{Kind: OpClose, FDSlot: 2}, "close(fd2)"},
		{Op{Kind: OpCreat, Path: "/x", FDSlot: 1}, "creat(/x) [fd1]"},
		{Op{Kind: OpTruncate, Path: "/a", Size: 9}, "truncate(/a, 9)"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	w := Workload{Name: "t1", Ops: []Op{{Kind: OpSync}}}
	if w.String() != "t1: sync()" {
		t.Errorf("workload string = %q", w.String())
	}
}

func TestCreatIntoSlotReplacesPrevious(t *testing.T) {
	fs := newFS(t)
	res := Run(fs, Workload{Ops: []Op{
		{Kind: OpCreat, Path: "/a", FDSlot: 0},
		{Kind: OpCreat, Path: "/b", FDSlot: 0},
		{Kind: OpPwrite, FDSlot: 0, Off: 0, Size: 3, Seed: 1},
	}}, Hooks{})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}
	sb, _ := fs.Stat("/b")
	if sb.Size != 3 {
		t.Fatal("slot did not point at new file")
	}
	sa, _ := fs.Stat("/a")
	if sa.Size != 0 {
		t.Fatal("write went to replaced slot")
	}
}
