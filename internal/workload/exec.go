package workload

import (
	"fmt"

	"chipmunk/internal/vfs"
)

// Hooks lets the Chipmunk engine observe syscall boundaries: Before fires
// just before op i executes (the engine snapshots the oracle and stamps a
// syscall-begin marker), After fires once it returns. App supplies the
// application instance for workloads with app-level ops (OpKV*).
type Hooks struct {
	Before func(i int, op Op)
	After  func(i int, op Op, err error)
	App    AppFactory
}

// AppInstance is an application running on top of a vfs.FS — the target of
// app-level ops. Exec performs one OpKV* op. Close releases descriptors the
// instance holds; it must NOT flush or sync unsynced state (a Close that
// quietly persisted buffers would mask missing-sync bugs the contract
// checker exists to catch).
type AppInstance interface {
	Exec(op Op) error
	Close() error
}

// AppFactory opens (or recovers) an application instance on fs.
type AppFactory func(fs vfs.FS) (AppInstance, error)

// Result records the outcome of one op.
type Result struct {
	Op  Op
	Err error
}

// Run executes w against fs, resolving FD slots and auto-open semantics.
// Op-level errors are recorded, not fatal: workloads may legitimately
// contain failing calls (the fuzzer generates them), and the oracle must
// fail the same way. Harness-level failures (slot misuse on a path with no
// file) surface as op errors too.
func Run(fs vfs.FS, w Workload, hooks Hooks) []Result {
	slots := map[int]vfs.FD{}
	slotPath := map[int]string{}
	results := make([]Result, 0, len(w.Ops))

	var app AppInstance
	var appErr error
	for i, op := range w.Ops {
		if hooks.Before != nil {
			hooks.Before(i, op)
		}
		var err error
		if op.Kind.AppLevel() {
			// Lazily open the app at the first app-level op so pure-syscall
			// workloads pay nothing. A missing factory or failed open is an
			// op error (sticky), not fatal: the oracle fails identically.
			if app == nil && appErr == nil {
				if hooks.App == nil {
					appErr = fmt.Errorf("workload: app-level op with no AppFactory")
				} else if app, appErr = hooks.App(fs); appErr != nil {
					appErr = fmt.Errorf("workload: opening app: %w", appErr)
				}
			}
			if appErr != nil {
				err = appErr
			} else {
				err = app.Exec(op)
			}
		} else {
			err = runOp(fs, op, slots, slotPath)
		}
		results = append(results, Result{Op: op, Err: err})
		if hooks.After != nil {
			hooks.After(i, op, err)
		}
	}
	if app != nil {
		app.Close()
	}
	// Close any slots left open so Unmount sees no busy files.
	for s, fd := range slots {
		fs.Close(fd)
		delete(slots, s)
	}
	return results
}

func runOp(fs vfs.FS, op Op, slots map[int]vfs.FD, slotPath map[int]string) error {
	switch op.Kind {
	case OpCreat:
		fd, err := fs.Create(op.Path)
		if err != nil {
			return err
		}
		if op.FDSlot >= 0 {
			closeSlot(fs, slots, op.FDSlot)
			slots[op.FDSlot] = fd
			slotPath[op.FDSlot] = op.Path
			return nil
		}
		return fs.Close(fd)

	case OpOpen:
		fd, err := fs.Open(op.Path)
		if err != nil {
			return err
		}
		slot := op.FDSlot
		if slot < 0 {
			slot = 0
		}
		closeSlot(fs, slots, slot)
		slots[slot] = fd
		slotPath[slot] = op.Path
		return nil

	case OpClose:
		fd, ok := slots[op.FDSlot]
		if !ok {
			return vfs.ErrBadFD
		}
		delete(slots, op.FDSlot)
		delete(slotPath, op.FDSlot)
		return fs.Close(fd)

	case OpMkdir:
		return fs.Mkdir(op.Path)
	case OpRmdir:
		return fs.Rmdir(op.Path)
	case OpLink:
		return fs.Link(op.Path, op.Path2)
	case OpUnlink:
		return fs.Unlink(op.Path)
	case OpRename:
		return fs.Rename(op.Path, op.Path2)
	case OpTruncate:
		return fs.Truncate(op.Path, op.Size)

	case OpRemove:
		st, err := fs.Stat(op.Path)
		if err != nil {
			return err
		}
		if st.Type == vfs.TypeDir {
			return fs.Rmdir(op.Path)
		}
		return fs.Unlink(op.Path)

	case OpFalloc:
		return withFD(fs, op, slots, func(fd vfs.FD) error {
			return fs.Fallocate(fd, op.Off, op.Size)
		})

	case OpWrite:
		return withFD(fs, op, slots, func(fd vfs.FD) error {
			path := op.Path
			if p, ok := slotPath[op.FDSlot]; ok && op.FDSlot >= 0 {
				path = p
			}
			st, err := fs.Stat(path)
			if err != nil {
				return err
			}
			_, err = fs.Pwrite(fd, Data(op.Seed, op.Size), st.Size)
			return err
		})

	case OpPwrite:
		return withFD(fs, op, slots, func(fd vfs.FD) error {
			_, err := fs.Pwrite(fd, Data(op.Seed, op.Size), op.Off)
			return err
		})

	case OpFsync, OpFdatasync:
		return withFD(fs, op, slots, fs.Fsync)

	case OpSync:
		return fs.Sync()

	case OpSetxattr:
		xfs, ok := fs.(vfs.XattrFS)
		if !ok {
			return vfs.ErrInvalid
		}
		return xfs.Setxattr(op.Path, op.Path2, Data(op.Seed, 16))

	case OpRemovexattr:
		xfs, ok := fs.(vfs.XattrFS)
		if !ok {
			return vfs.ErrInvalid
		}
		return xfs.Removexattr(op.Path, op.Path2)

	default:
		return fmt.Errorf("workload: unknown op kind %v", op.Kind)
	}
}

// withFD resolves the op's FD: slot if FDSlot >= 0, else auto-open Path.
func withFD(fs vfs.FS, op Op, slots map[int]vfs.FD, fn func(vfs.FD) error) error {
	if op.FDSlot >= 0 {
		fd, ok := slots[op.FDSlot]
		if !ok {
			return vfs.ErrBadFD
		}
		return fn(fd)
	}
	fd, err := fs.Open(op.Path)
	if err != nil {
		return err
	}
	opErr := fn(fd)
	if cerr := fs.Close(fd); opErr == nil {
		opErr = cerr
	}
	return opErr
}

func closeSlot(fs vfs.FS, slots map[int]vfs.FD, slot int) {
	if fd, ok := slots[slot]; ok {
		fs.Close(fd)
		delete(slots, slot)
	}
}
