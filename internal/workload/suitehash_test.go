package workload

import "testing"

func sampleSuite() []Workload {
	return []Workload{
		{Name: "a", Ops: []Op{
			{Kind: OpCreat, Path: "/f0", FDSlot: 0},
			{Kind: OpWrite, Path: "/f0", FDSlot: 0, Size: 64, Seed: 1},
			{Kind: OpFsync, FDSlot: 0},
		}},
		{Name: "b", Ops: []Op{
			{Kind: OpMkdir, Path: "/d0", FDSlot: -1},
			{Kind: OpRename, Path: "/d0", Path2: "/d1", FDSlot: -1},
		}},
	}
}

func TestSuiteHashDeterministic(t *testing.T) {
	a, b := SuiteHash(sampleSuite()), SuiteHash(sampleSuite())
	if a != b {
		t.Fatalf("same suite hashed differently: %016x vs %016x", a, b)
	}
	if a == 0 {
		t.Fatal("suite hash is zero")
	}
	if got := FormatSuiteHash(a); len(got) != 16 {
		t.Fatalf("FormatSuiteHash = %q, want 16 hex chars", got)
	}
}

func TestSuiteHashSensitivity(t *testing.T) {
	base := SuiteHash(sampleSuite())

	// Order matters: a shard-split suite must not hash like a reordering.
	swapped := sampleSuite()
	swapped[0], swapped[1] = swapped[1], swapped[0]
	if SuiteHash(swapped) == base {
		t.Error("reordered suite hashed identically")
	}

	// Op drift matters: one changed parameter is a different generator.
	mutated := sampleSuite()
	mutated[0].Ops[1].Size = 65
	if SuiteHash(mutated) == base {
		t.Error("mutated op hashed identically")
	}

	// Name drift matters: names appear in violations, so identity
	// includes them.
	renamed := sampleSuite()
	renamed[1].Name = "b2"
	if SuiteHash(renamed) == base {
		t.Error("renamed workload hashed identically")
	}

	// Framing: moving an op across a workload boundary must change the
	// hash even though the concatenated renderings could coincide.
	rehomed := sampleSuite()
	rehomed[1].Ops = append([]Op{rehomed[0].Ops[2]}, rehomed[1].Ops...)
	rehomed[0].Ops = rehomed[0].Ops[:2]
	if SuiteHash(rehomed) == base {
		t.Error("op rehomed across workloads hashed identically")
	}
}
