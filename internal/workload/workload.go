// Package workload defines the test-program representation shared by the
// ACE systematic generator, the gray-box fuzzer, and the Chipmunk engine,
// plus the executor that runs a workload against any vfs.FS while stamping
// syscall markers into the write trace.
package workload

import (
	"fmt"
	"strings"
	"sync"
)

// OpKind enumerates the system calls a workload can contain — the ten core
// operations the paper tests plus open/close/fsync plumbing.
type OpKind uint8

const (
	// OpCreat creates a regular file (and opens it into FDSlot if >= 0).
	OpCreat OpKind = iota
	// OpMkdir creates a directory.
	OpMkdir
	// OpFalloc extends a file's allocation via an open FD (or auto-opens).
	OpFalloc
	// OpWrite appends Size bytes at EOF.
	OpWrite
	// OpPwrite writes Size bytes at Off.
	OpPwrite
	// OpLink hard-links Path to Path2.
	OpLink
	// OpUnlink removes a file name.
	OpUnlink
	// OpRemove removes a file or an empty directory (like remove(3)).
	OpRemove
	// OpRename renames Path to Path2.
	OpRename
	// OpTruncate sets the file at Path to Size bytes.
	OpTruncate
	// OpRmdir removes an empty directory.
	OpRmdir
	// OpOpen opens an existing file into FDSlot.
	OpOpen
	// OpClose closes FDSlot.
	OpClose
	// OpFsync fsyncs FDSlot (or Path via auto-open).
	OpFsync
	// OpFdatasync is fdatasync; for our file systems it behaves as fsync.
	OpFdatasync
	// OpSync syncs the whole file system.
	OpSync
	// OpSetxattr sets extended attribute Path2 on Path (value from Seed).
	OpSetxattr
	// OpRemovexattr removes extended attribute Path2 from Path.
	OpRemovexattr

	// App-level operations: executed by the run's AppInstance (an
	// application living on top of the file system, e.g. the WAL KV store)
	// rather than translated to a single system call. Path carries the key.

	// OpKVPut stores a Size-byte Pattern(Seed) value under key Path.
	OpKVPut
	// OpKVDel deletes key Path from the store.
	OpKVDel
	// OpKVSync commits the store's buffered mutations (WAL append + fsync);
	// everything issued before it counts as acknowledged.
	OpKVSync
	// OpKVGet reads key Path back; with a non-zero Seed the executor
	// verifies the value matches Pattern(Seed, Size).
	OpKVGet
)

var opNames = [...]string{
	OpCreat: "creat", OpMkdir: "mkdir", OpFalloc: "fallocate",
	OpWrite: "write", OpPwrite: "pwrite", OpLink: "link",
	OpUnlink: "unlink", OpRemove: "remove", OpRename: "rename",
	OpTruncate: "truncate", OpRmdir: "rmdir", OpOpen: "open",
	OpClose: "close", OpFsync: "fsync", OpFdatasync: "fdatasync",
	OpSync: "sync", OpSetxattr: "setxattr", OpRemovexattr: "removexattr",
	OpKVPut: "kvput", OpKVDel: "kvdel", OpKVSync: "kvsync", OpKVGet: "kvget",
}

// AppLevel reports whether the op kind is executed by the run's application
// instance instead of a direct system call.
func (k OpKind) AppLevel() bool { return k >= OpKVPut && k <= OpKVGet }

func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one system call in a workload.
type Op struct {
	Kind  OpKind
	Path  string // primary path
	Path2 string // link/rename target
	// FDSlot selects a workload-level file-descriptor variable. -1 means
	// the executor auto-opens Path for the op and closes it afterwards
	// (ACE-style); >= 0 means the op uses/open-into that slot, which is how
	// the fuzzer expresses multiple FDs on the same file.
	FDSlot int
	Off    int64  // pwrite/fallocate offset
	Size   int64  // write/pwrite/truncate/fallocate length
	Seed   uint32 // deterministic data pattern seed
}

// String renders the op the way bug reports show it.
func (o Op) String() string {
	switch o.Kind {
	case OpLink, OpRename, OpSetxattr, OpRemovexattr:
		return fmt.Sprintf("%s(%s, %s)", o.Kind, o.Path, o.Path2)
	case OpWrite:
		return fmt.Sprintf("write(%s, size=%d)%s", o.Path, o.Size, o.slotSuffix())
	case OpPwrite:
		return fmt.Sprintf("pwrite(%s, off=%d, size=%d)%s", o.Path, o.Off, o.Size, o.slotSuffix())
	case OpFalloc:
		return fmt.Sprintf("fallocate(%s, off=%d, len=%d)%s", o.Path, o.Off, o.Size, o.slotSuffix())
	case OpTruncate:
		return fmt.Sprintf("truncate(%s, %d)", o.Path, o.Size)
	case OpOpen, OpCreat:
		return fmt.Sprintf("%s(%s)%s", o.Kind, o.Path, o.slotSuffix())
	case OpClose, OpFsync, OpFdatasync:
		if o.FDSlot >= 0 {
			return fmt.Sprintf("%s(fd%d)", o.Kind, o.FDSlot)
		}
		return fmt.Sprintf("%s(%s)", o.Kind, o.Path)
	case OpSync:
		return "sync()"
	case OpKVPut:
		return fmt.Sprintf("kvput(%s, size=%d)", o.Path, o.Size)
	case OpKVSync:
		return "kvsync()"
	default:
		return fmt.Sprintf("%s(%s)", o.Kind, o.Path)
	}
}

func (o Op) slotSuffix() string {
	if o.FDSlot >= 0 {
		return fmt.Sprintf(" [fd%d]", o.FDSlot)
	}
	return ""
}

// Workload is a sequence of operations.
type Workload struct {
	Name string
	Ops  []Op
}

// HasAppOps reports whether the workload contains app-level operations
// (which need an AppFactory to execute).
func (w Workload) HasAppOps() bool {
	for _, op := range w.Ops {
		if op.Kind.AppLevel() {
			return true
		}
	}
	return false
}

// String renders the whole workload on one line.
func (w Workload) String() string {
	parts := make([]string, len(w.Ops))
	for i, op := range w.Ops {
		parts[i] = op.String()
	}
	s := strings.Join(parts, "; ")
	if w.Name != "" {
		return w.Name + ": " + s
	}
	return s
}

// Pattern fills buf with the deterministic byte pattern for seed, so the
// oracle and the system under test write identical data.
func Pattern(seed uint32, buf []byte) {
	x := seed*2654435761 + 1
	for i := range buf {
		x = x*1664525 + 1013904223
		buf[i] = byte(x >> 24)
		if buf[i] == 0 {
			buf[i] = 0xA5 // avoid zero bytes so lost writes are visible
		}
	}
}

// dataCache memoizes Data buffers: the same few (seed, size) pairs are
// regenerated for every run of a workload (target pass, oracle pass, KV
// model), and the buffers are immutable once built. Bounded so
// fuzzer-generated seeds cannot grow it without limit.
var (
	dataMu    sync.Mutex
	dataCache = map[[2]int64][]byte{}
)

const dataCacheMax = 256

// Data returns the n-byte pattern buffer for seed. The buffer is shared and
// memoized — callers must treat it as read-only (every consumer stores a
// copy of the bytes it keeps).
func Data(seed uint32, n int64) []byte {
	k := [2]int64{int64(seed), n}
	dataMu.Lock()
	if b, ok := dataCache[k]; ok {
		dataMu.Unlock()
		return b
	}
	dataMu.Unlock()
	buf := make([]byte, n)
	Pattern(seed, buf)
	dataMu.Lock()
	if len(dataCache) >= dataCacheMax {
		for old := range dataCache {
			delete(dataCache, old)
			break
		}
	}
	dataCache[k] = buf
	dataMu.Unlock()
	return buf
}
