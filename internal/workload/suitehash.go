package workload

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// SuiteHash fingerprints a workload suite deterministically: FNV-64a over
// every workload's Format rendering, in suite order, with length-prefix
// framing so concatenation can never alias two different suites. The hash
// is a pure function of the suite content (names and ops) — two binaries
// whose generators produce the same workloads agree on it, and any drift
// (reordered variants, changed op parameters, renamed workloads) changes
// it.
//
// The distributed campaign runner exchanges this hash on every handshake,
// lease, and result: a coordinator and a worker built from diverged
// generators would otherwise silently merge incomparable censuses.
func SuiteHash(suite []Workload) uint64 {
	h := fnv.New64a()
	var frame [8]byte
	for _, w := range suite {
		s := Format(w)
		binary.LittleEndian.PutUint64(frame[:], uint64(len(s)))
		h.Write(frame[:])
		h.Write([]byte(s))
	}
	return h.Sum64()
}

// FormatSuiteHash renders a suite hash the way the wire protocol and the
// checkpoint file carry it: fixed-width hex.
func FormatSuiteHash(h uint64) string { return fmt.Sprintf("%016x", h) }
