package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatParseRoundTrip(t *testing.T) {
	w := Workload{Name: "repro-1", Ops: []Op{
		{Kind: OpCreat, Path: "/f0", FDSlot: 0},
		{Kind: OpOpen, Path: "/f0", FDSlot: 1},
		{Kind: OpPwrite, FDSlot: 0, Off: 13, Size: 100, Seed: 42},
		{Kind: OpWrite, Path: "/f0", FDSlot: -1, Size: 8, Seed: 7},
		{Kind: OpLink, Path: "/f0", Path2: "/d0/l1"},
		{Kind: OpRename, Path: "/f0", Path2: "/f1"},
		{Kind: OpTruncate, Path: "/f1", Size: 50, FDSlot: -1},
		{Kind: OpFalloc, Path: "/f1", FDSlot: -1, Off: 8, Size: 64},
		{Kind: OpUnlink, Path: "/d0/l1", FDSlot: -1},
		{Kind: OpMkdir, Path: "/d1", FDSlot: -1},
		{Kind: OpRmdir, Path: "/d1", FDSlot: -1},
		{Kind: OpRemove, Path: "/f1", FDSlot: -1},
		{Kind: OpFsync, FDSlot: 1},
		{Kind: OpFdatasync, Path: "/f1", FDSlot: -1},
		{Kind: OpClose, FDSlot: 1},
		{Kind: OpSync, FDSlot: -1},
	}}
	text := Format(w)
	got, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if got.Name != w.Name {
		t.Fatalf("name = %q", got.Name)
	}
	if len(got.Ops) != len(w.Ops) {
		t.Fatalf("ops = %d, want %d", len(got.Ops), len(w.Ops))
	}
	for i := range w.Ops {
		a, b := w.Ops[i], got.Ops[i]
		// Normalize: fields Format does not emit for this kind are zeroed
		// in the round-trip; compare the emitted surface instead.
		if formatOp(a) != formatOp(b) {
			t.Errorf("op %d: %q != %q", i, formatOp(a), formatOp(b))
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"explode /f0",
		"pwrite /f0 off=x",
		"pwrite /f0 size=x",
		"pwrite /f0 seed=x",
		"creat /a fd=x",
		"creat /a bogus",
		"link /a /b /c",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded", c)
		}
	}
}

func TestParseSkipsCommentsAndBlank(t *testing.T) {
	w, err := Parse("# a comment\n\n# name: t9\nsync\n")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "t9" || len(w.Ops) != 1 || w.Ops[0].Kind != OpSync {
		t.Fatalf("w = %+v", w)
	}
}

// Property: Format→Parse→Format is a fixed point.
func TestPropertyFormatFixedPoint(t *testing.T) {
	kinds := []OpKind{OpCreat, OpMkdir, OpFalloc, OpWrite, OpPwrite, OpLink,
		OpUnlink, OpRemove, OpRename, OpTruncate, OpRmdir, OpOpen, OpClose,
		OpFsync, OpFdatasync, OpSync}
	f := func(kindIdx uint8, slot int8, off, size uint16, seed uint32) bool {
		op := Op{
			Kind:   kinds[int(kindIdx)%len(kinds)],
			Path:   "/p0",
			Path2:  "/p1",
			FDSlot: int(slot%3) - 1,
			Off:    int64(off),
			Size:   int64(size),
			Seed:   seed,
		}
		w := Workload{Ops: []Op{op}}
		once := Format(w)
		parsed, err := Parse(once)
		if err != nil {
			return false
		}
		return Format(parsed) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatContainsName(t *testing.T) {
	if !strings.Contains(Format(Workload{Name: "x", Ops: []Op{{Kind: OpSync}}}), "# name: x") {
		t.Fatal("name header missing")
	}
}
