package core

import (
	"chipmunk/internal/obs"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// This file is the pluggable crash-contract API. The engine's job ends at
// producing mounted, recovered crash states; what "correct" means for such a
// state is a contract, and contracts are pluggable: the classic FS-oracle
// comparison (oracle_checker.go) is merely the default Checker. An
// application-level checker — e.g. the WAL KV store's durability contract in
// internal/app/kvwork — receives exactly the same crash states and judges
// them against the application's own acknowledgement semantics instead.

// CheckContext describes one crash state to a Checker: when the simulated
// crash happened relative to the workload's system calls, and the state's
// replay coordinates.
type CheckContext struct {
	// Phase says whether the crash interrupted a call (PhaseMid) or fell
	// between calls (PhasePost).
	Phase Phase
	// Sys is the implicated op index (-1 when the crash point precedes any
	// call). For PhaseMid, Ops[Sys] is the call in flight.
	Sys int
	// AckedOps is the acknowledged-operation high-water mark: the number of
	// workload ops that had fully returned when the crash hit. Ops[AckedOps:]
	// had not completed. It is also the index of the oracle state captured
	// just after the last completed call (OracleStates[AckedOps]).
	AckedOps int
	// Fence is the 1-based fence ordinal the state was generated at (0 for
	// post-syscall states, which have no fence); Rank is the state's
	// canonical rank among the distinct subsets checked at that crash point;
	// Subset holds the replayed in-flight write indices (nil = all fenced).
	// Together they are the state's replay coordinates in reports and the
	// run journal.
	Fence  int
	Rank   int
	Subset []int
}

// Finding is one failed contract check.
type Finding struct {
	// Kind classifies the violation for triage and census purposes.
	Kind ViolationKind
	// Contract names the specific application contract that failed (e.g.
	// "acked-durability"); empty for the built-in FS-oracle checks, whose
	// Kind already names the contract.
	Contract string
	// Detail is the human-readable evidence.
	Detail string
}

// Checker is a pluggable correctness contract. Check is called once per
// crash state with the file system already mounted — recovery has run; a
// mount failure is classified VUnmountable by the engine before any Checker
// sees the state. It returns the first failed contract (nil = the state is
// legal), matching the engine's one-violation-per-state accounting.
//
// Checkers run concurrently from crash-state workers when Config.Workers
// > 1: implementations must be safe for concurrent Check calls (read-only
// over their RunEnv) and must not retain fs past the call — the device
// behind it is rolled back and reused as soon as Check returns.
type Checker interface {
	// Name identifies the contract in reports ("fs-oracle", "kv").
	Name() string
	Check(fs vfs.FS, cctx *CheckContext) *Finding
}

// CrashPointPreparer is an optional Checker extension: the engine calls
// PrepareCrashPoint on the coordinator goroutine once per crash point,
// before dispatching any of that point's states to check workers, so the
// checker can precompute a shared, immutable view (e.g. the oracle snapshot
// of oracle_checker.go) instead of re-deriving it inside every concurrent
// Check call. The goroutine spawn gives every worker a happens-before edge
// on whatever PrepareCrashPoint published; anything it builds must be
// treated as frozen once Check calls may be in flight. The engine skips the
// hook entirely under Config.DisableOracleSnapshot, so implementations must
// also work without preparation (build-per-call), and the differential tests
// hold them to byte-identical verdicts either way.
type CrashPointPreparer interface {
	PrepareCrashPoint(cctx *CheckContext)
}

// RunEnv is the per-workload context a CheckerFactory builds its Checker
// from: everything the engine learned in the oracle and record passes.
type RunEnv struct {
	// Caps are the target's advertised crash-consistency guarantees.
	Caps vfs.Caps
	// Workload is the program whose crash states are being checked.
	Workload workload.Workload
	// OracleStates holds the reference model's observable state captured
	// before every op, plus the final state (len(Workload.Ops)+1 entries).
	OracleStates []vfs.State
	// OpResults are the target's live per-op outcomes from the record pass.
	OpResults []workload.Result
	// SkipUsability mirrors Config.SkipUsability for checkers implementing
	// the usability probe.
	SkipUsability bool
	// Obs is the run's metrics collector for checker-side counters (e.g.
	// oracle-snapshot-hits). Nil when observability is off; the Collector's
	// methods are nil-safe, so checkers record unconditionally.
	Obs *obs.Collector
}

// CheckerFactory builds the run's Checker. It is invoked once per workload,
// after the oracle and record passes and before any crash state is checked.
type CheckerFactory func(env RunEnv) Checker

// check converts the engine's internal crash coordinates into the public
// CheckContext handed to the run's Checker.
func (c crashCtx) check() *CheckContext {
	return &CheckContext{
		Phase:    c.phase,
		Sys:      c.sys,
		AckedOps: c.oracleIdx,
		Fence:    c.fence,
		Rank:     c.rank,
		Subset:   c.subset,
	}
}
