package core

import (
	"context"
	"runtime"
	"testing"
	"time"

	"chipmunk/internal/bugs"
	"chipmunk/internal/workload"
)

// heavyWorkload is a seq-2-shaped data workload whose fences carry large
// in-flight sets under exhaustive (cap=0) enumeration.
func heavyWorkload() workload.Workload {
	return workload.Workload{Name: "heavy", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 16384, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}
}

// TestParallelWorkersIdenticalResult is the core-level differential check:
// worker counts 1, 2, 4, and 8 must all produce identical results on the
// same workload (the harness-level test covers all seven systems).
func TestParallelWorkersIdenticalResult(t *testing.T) {
	w := heavyWorkload()
	base := mustRun(t, Config{NewFS: novaFS(bugs.None()), Workers: 1}, w)
	for _, workers := range []int{2, 4, 8} {
		res := mustRun(t, Config{NewFS: novaFS(bugs.None()), Workers: workers}, w)
		if res.StatesChecked != base.StatesChecked || res.StatesDeduped != base.StatesDeduped ||
			res.Fences != base.Fences || res.TruncatedFences != base.TruncatedFences ||
			len(res.Violations) != len(base.Violations) {
			t.Errorf("workers=%d: result diverged from serial: %+v vs %+v", workers, res, base)
		}
	}
}

// TestParallelFindsInjectedBug: the worker pool reports the same violations,
// in the same order, as the serial engine on a buggy run.
func TestParallelFindsInjectedBug(t *testing.T) {
	w := workload.Workload{Name: "rename-bug", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 4096, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}
	set := bugs.Of(bugs.NovaRenameInPlaceDelete)
	ser := mustRun(t, Config{NewFS: novaFS(set), Workers: 1}, w)
	par := mustRun(t, Config{NewFS: novaFS(set), Workers: 4}, w)
	if !ser.Buggy() || !par.Buggy() {
		t.Fatalf("bug 4 not found: serial %d, parallel %d violations",
			len(ser.Violations), len(par.Violations))
	}
	if len(ser.Violations) != len(par.Violations) {
		t.Fatalf("violation counts differ: %d vs %d", len(ser.Violations), len(par.Violations))
	}
	for i := range ser.Violations {
		if ser.Violations[i].String() != par.Violations[i].String() {
			t.Errorf("violation %d differs:\nserial:   %s\nparallel: %s",
				i, ser.Violations[i], par.Violations[i])
		}
	}
}

// TestRunContextCancelDuringWalk: cancelling mid-run aborts the crash-state
// walk promptly and returns the context error.
func TestRunContextCancelDuringWalk(t *testing.T) {
	w := heavyWorkload()
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := RunContext(ctx, Config{NewFS: novaFS(bugs.None()), Workers: workers}, w)
		if err != context.Canceled {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestParallelSpeedup measures wall-clock speedup of the worker pool. It
// needs real cores: a single-CPU machine interleaves the workers without
// speeding anything up, so the assertion is gated on NumCPU.
func TestParallelSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement is slow in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to measure parallel speedup, have %d", runtime.NumCPU())
	}
	w := heavyWorkload()
	cfgSerial := Config{NewFS: novaFS(bugs.None()), Workers: 1}
	cfgPar := Config{NewFS: novaFS(bugs.None()), Workers: 4}
	// Warm up (page in code, fill the buffer pools), then time a few rounds.
	mustRun(t, cfgSerial, w)
	mustRun(t, cfgPar, w)
	const rounds = 5
	var serial, parallel time.Duration
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		mustRun(t, cfgSerial, w)
		serial += time.Since(t0)
		t0 = time.Now()
		mustRun(t, cfgPar, w)
		parallel += time.Since(t0)
	}
	speedup := float64(serial) / float64(parallel)
	t.Logf("serial %v, workers-4 %v, speedup %.2fx", serial/rounds, parallel/rounds, speedup)
	if speedup < 1.5 {
		t.Errorf("4-worker speedup %.2fx < 1.5x on a %d-CPU machine", speedup, runtime.NumCPU())
	}
}
