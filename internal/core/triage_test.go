package core

import (
	"fmt"
	"testing"

	"chipmunk/internal/workload"
)

func mkViolation(kind ViolationKind, phase Phase, op workload.OpKind, detail string) Violation {
	return Violation{
		FS:       "nova",
		Kind:     kind,
		Phase:    phase,
		Syscall:  0,
		Workload: workload.Workload{Ops: []workload.Op{{Kind: op}}},
		Detail:   detail,
	}
}

func TestTriageMergesSameRootCause(t *testing.T) {
	var vs []Violation
	for i := 0; i < 10; i++ {
		vs = append(vs, mkViolation(VAtomicity, PhaseMid, workload.OpRename,
			fmt.Sprintf("/: matches neither pre- nor post-op state\n  crash: dir nlink=2 entries=[] offset %d", i)))
	}
	clusters := Triage(vs)
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(clusters))
	}
	if clusters[0].Count != 10 {
		t.Fatalf("count = %d", clusters[0].Count)
	}
}

func TestTriageSeparatesDifferentKinds(t *testing.T) {
	vs := []Violation{
		mkViolation(VUnmountable, PhaseMid, workload.OpWrite, "mount failed: bad log link"),
		mkViolation(VSynchrony, PhasePost, workload.OpPwrite, "/f0: mismatch size"),
		mkViolation(VUsability, PhaseMid, workload.OpUnlink, "deleting /f0 failed: input/output error"),
	}
	clusters := Triage(vs)
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d, want 3", len(clusters))
	}
}

func TestTriageIgnoresHexDumps(t *testing.T) {
	a := mkViolation(VSynchrony, PhasePost, workload.OpPwrite,
		"/f0: mismatch\n crash: file size=100 data=aabbccddeeff00112233445566778899\n oracle: file size=200 data=99887766554433221100ffeeddccbbaa")
	b := mkViolation(VSynchrony, PhasePost, workload.OpPwrite,
		"/f0: mismatch\n crash: file size=150 data=0102030405060708090a0b0c0d0e0f10\n oracle: file size=300 data=100f0e0d0c0b0a090807060504030201")
	clusters := Triage([]Violation{a, b})
	if len(clusters) != 1 {
		t.Fatalf("hex-differing duplicates not merged: %d clusters", len(clusters))
	}
}

func TestTriageOrderedByCount(t *testing.T) {
	var vs []Violation
	for i := 0; i < 5; i++ {
		vs = append(vs, mkViolation(VAtomicity, PhaseMid, workload.OpRename, "common failure A"))
	}
	vs = append(vs, mkViolation(VUnmountable, PhaseMid, workload.OpWrite, "rare failure B"))
	clusters := Triage(vs)
	if len(clusters) != 2 || clusters[0].Count < clusters[1].Count {
		t.Fatalf("clusters not ordered: %+v", clusters)
	}
}

func TestJaccardEdgeCases(t *testing.T) {
	if jaccard(nil, nil) != 1 {
		t.Fatal("empty/empty")
	}
	a := map[string]bool{"x": true}
	if jaccard(a, map[string]bool{}) != 0 {
		t.Fatal("disjoint")
	}
	if jaccard(a, a) != 1 {
		t.Fatal("identical")
	}
}

func TestIsNumericAndLooksHex(t *testing.T) {
	if !isNumeric("123") || !isNumeric("-5") || isNumeric("abc") {
		t.Fatal("isNumeric")
	}
	if !looksHex("aabbccdd") || looksHex("not-hex!") || looksHex("ab") {
		t.Fatal("looksHex")
	}
}
