package core

import (
	"sort"
	"strings"

	"chipmunk/internal/workload"
)

// TracePrefix renders w's ops up to and including the implicated syscall —
// the canonical trace prefix violation events carry. A pure function of the
// workload, so two violations with the same prefix failed at the same point
// of the same op sequence: the clustering key journaltool -triage and the
// fleet bug census group on (together with Kind and FS).
func TracePrefix(w workload.Workload, sys int) string {
	if sys < 0 || sys >= len(w.Ops) {
		return ""
	}
	parts := make([]string, 0, sys+1)
	for i := 0; i <= sys; i++ {
		parts = append(parts, w.Ops[i].String())
	}
	return strings.Join(parts, "; ")
}

// ClusterKey is the (kind, FS, trace prefix) identity under which repeated
// hits of one root cause collapse — the triple report.TriageEvents clusters
// journal events on, reused by crash-reproducer dedup and the fleet census.
func (v Violation) ClusterKey() string {
	return v.Kind.String() + "|" + v.FS + "|" + TracePrefix(v.Workload, v.Syscall)
}

// Cluster groups near-identical violations, mirroring the lexical-similarity
// triage the paper added to Syzkaller (§3.4.2): fuzzers generate many
// duplicate reports, and multiple crash states often trigger the same bug.
type Cluster struct {
	Representative Violation
	Count          int
	tokens         map[string]bool
}

// triageThreshold is the token-Jaccard similarity above which two reports
// are considered duplicates.
const triageThreshold = 0.55

// Triage clusters violations by lexical similarity of their kind + detail.
func Triage(violations []Violation) []*Cluster {
	var clusters []*Cluster
	for _, v := range violations {
		toks := tokenize(v)
		placed := false
		for _, c := range clusters {
			if jaccard(c.tokens, toks) >= triageThreshold {
				c.Count++
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, &Cluster{Representative: v, Count: 1, tokens: toks})
		}
	}
	sort.Slice(clusters, func(i, j int) bool { return clusters[i].Count > clusters[j].Count })
	return clusters
}

// tokenize reduces a violation to its signature tokens. Volatile details
// (offsets, page numbers, subset indices) are dropped so that the same root
// cause clusters across crash states.
func tokenize(v Violation) map[string]bool {
	out := map[string]bool{
		"kind:" + v.Kind.String():   true,
		"phase:" + v.Phase.String(): true,
	}
	if v.Syscall >= 0 && v.Syscall < len(v.Workload.Ops) {
		out["op:"+v.Workload.Ops[v.Syscall].Kind.String()] = true
	}
	for _, raw := range strings.FieldsFunc(v.Detail, func(r rune) bool {
		return r == ' ' || r == '\n' || r == ':' || r == ',' || r == '(' || r == ')' || r == '='
	}) {
		if raw == "" || isNumeric(raw) || len(raw) > 16 || looksHex(raw) {
			continue
		}
		out["w:"+raw] = true
	}
	return out
}

// looksHex drops data-dump tokens (file contents differ per crash state but
// do not distinguish root causes).
func looksHex(s string) bool {
	if len(s) < 8 {
		return false
	}
	for _, r := range s {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f' || r == '=') {
			return false
		}
	}
	return true
}

func isNumeric(s string) bool {
	for _, r := range s {
		if (r < '0' || r > '9') && r != '-' && r != '#' && r != 'x' {
			return false
		}
	}
	return true
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for t := range a {
		if b[t] {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}
