package core

import (
	"sync"
	"sync/atomic"
	"unsafe"

	"chipmunk/internal/trace"
)

// This file holds the allocation machinery behind the zero-alloc check loop:
// per-fence bump arenas for the small per-state slices (subset indices,
// merged spans, byte-diff keys) and process-wide size-keyed pools for the
// device-sized buffers and pooled crash-image pairs, so steady-state runs
// recycle O(device) memory across fences, workloads, and engine runs instead
// of reallocating it. Config.DisableBufferReuse bypasses the cross-run pools
// (every grab is a fresh allocation, every put a drop) for differential
// testing.
//
// Ownership protocol, in one place:
//
//   - Arena memory is written only by the coordinator, during enumerate;
//     checks (including parallel workers) only read it, and every in-fence
//     reader finishes before the next fence's reset (runChecks joins its
//     workers). The one escape is an ABANDONED sandbox goroutine, which may
//     read its crash state's subset/spans/key indefinitely: the checker
//     tracks abandonments and, instead of resetting, DROPS the arenas at the
//     next fence when any occurred — the abandoned goroutine keeps its
//     (now-private) blocks alive, and the coordinator starts clean. Reuse
//     therefore never races with a reader.
//   - Pooled buffers and images follow the existing image-lease protocol
//     (sandbox.go): only cleanly-released ones return to the pools; retired
//     or abandoned ones never do. Cross-run reuse of pooled images is made
//     safe by run tokens (workerImage.run vs. checker.runID): prime treats
//     an image from another run as never primed, so stale generation
//     numbers can never alias a new run's generations.

// arenaBlock is the minimum element capacity of a fresh arena block. Blocks
// grow geometrically toward the fence's running total, and saved slices are
// never moved, so returned slices stay valid until the arena is reset or
// dropped.
const arenaBlock = 4096

// sliceArena is a bump allocator for immutable copies of small slices.
// reset reuses the current block (callers must guarantee no live readers —
// see the ownership protocol above); the zero value is ready to use.
type sliceArena[T any] struct {
	cur  []T
	need int // elements saved this epoch, the high-water sizing input
}

// save copies src into the arena and returns the stable copy
// (capacity-clamped so appends by the caller cannot bleed into neighbors).
// Zero-length saves return nil without touching the arena.
func (a *sliceArena[T]) save(src []T) []T {
	n := len(src)
	if n == 0 {
		return nil
	}
	a.need += n
	if cap(a.cur)-len(a.cur) < n {
		// The outgrown block stays alive through the slices already handed
		// out; the arena just stops bumping it. The replacement is sized to
		// the epoch's running total (at least doubling), so once a block fits
		// a whole fence's saves, steady-state fences allocate nothing — even
		// when individual saves exceed arenaBlock.
		size := a.need
		if size < 2*cap(a.cur) {
			size = 2 * cap(a.cur)
		}
		if size < arenaBlock {
			size = arenaBlock
		}
		a.cur = make([]T, 0, size)
	}
	off := len(a.cur)
	a.cur = a.cur[:off+n]
	copy(a.cur[off:], src)
	return a.cur[off : off+n : off+n]
}

// reset rewinds the arena for reuse of its current block.
func (a *sliceArena[T]) reset() { a.cur = a.cur[:0]; a.need = 0 }

// drop abandons the arena's block entirely (used when an abandoned sandbox
// goroutine may still read previously saved slices).
func (a *sliceArena[T]) drop() { a.cur = nil; a.need = 0 }

// internKey returns a string view over arena-saved key bytes without
// copying. Safe because arena memory is immutable until reset/drop and the
// returned string's lifetime (dedup map entries, crashState.key) ends at the
// same fence boundary that resets the arena.
func internKey(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// runIDs issues process-unique run tokens; every checker takes one so pooled
// images recycled across engine runs are never mistaken for primed ones.
var runIDs atomic.Int64

// fenceScratch bundles the coordinator's per-fence scratch — the dedup map,
// state list, recursion buffer, outcome slots, arenas, and state-key
// buffers — so it can be recycled across runs. A fresh checker then starts
// with converged, already-grown blocks instead of re-growing them from zero
// every run, which would otherwise dominate steady-state allocations in a
// campaign of many short runs.
type fenceScratch struct {
	seen      map[string]struct{}
	distinct  []crashState
	subsetBuf []int
	outcomes  []checkOutcome
	subArena  sliceArena[int]
	spanArena sliceArena[span]
	keyArena  sliceArena[byte]
	keyBuf    []byte
	spans     []span
}

var scratchPool sync.Pool

// logPool recycles trace logs — the entry slice and the data arena — across
// runs. A log is recycled only when the run abandoned no sandbox goroutine
// (engine.go checks): an abandoned goroutine replays log entries
// indefinitely, so its run's log is forfeited to it like the fence arenas.
var logPool sync.Pool

// grabLog returns an empty trace log, recycled when reuse is enabled.
func grabLog(fresh bool) *trace.Log {
	if !fresh {
		if v := logPool.Get(); v != nil {
			l := v.(*trace.Log)
			l.Reset()
			return l
		}
	}
	return trace.NewLog()
}

// loanScratch moves a pooled bundle into the checker's scratch fields for
// the duration of one walk. Stale contents are harmless: every consumer
// truncates or clears before use (enumerate resets the arenas and dedup map
// at each fence, stateKey rewinds keyBuf/spans per state).
func (ck *checker) loanScratch() *fenceScratch {
	v := scratchPool.Get()
	if v == nil {
		return &fenceScratch{}
	}
	s := v.(*fenceScratch)
	ck.seen = s.seen
	ck.distinct = s.distinct
	ck.subsetBuf = s.subsetBuf
	ck.outcomes = s.outcomes
	ck.subArena = s.subArena
	ck.spanArena = s.spanArena
	ck.keyArena = s.keyArena
	ck.keyBuf = s.keyBuf
	ck.spans = s.spans
	return s
}

// returnScratch packages the scratch fields back into the bundle and
// recycles it — unless any sandbox goroutine was abandoned this run: an
// abandoned goroutine may read its crash state's arena saves indefinitely,
// so the whole bundle is forfeited to it (same reasoning as
// resetFenceScratch's drop path, extended across the run boundary).
func (ck *checker) returnScratch(s *fenceScratch) {
	if ck.abandoned.Load() != 0 {
		return
	}
	s.seen = ck.seen
	s.distinct = ck.distinct
	s.subsetBuf = ck.subsetBuf
	s.outcomes = ck.outcomes
	s.subArena = ck.subArena
	s.spanArena = ck.spanArena
	s.keyArena = ck.keyArena
	s.keyBuf = ck.keyBuf
	s.spans = ck.spans
	scratchPool.Put(s)
}

// bufPools and imagePools are process-wide pools keyed by buffer size.
// Workloads in one campaign share a device size, so in steady state every
// grab is a recycle.
var (
	bufPools   sync.Map // int -> *sync.Pool of []byte
	imagePools sync.Map // int -> *sync.Pool of *workerImage
)

func poolFor(m *sync.Map, size int) *sync.Pool {
	if p, ok := m.Load(size); ok {
		return p.(*sync.Pool)
	}
	p, _ := m.LoadOrStore(size, &sync.Pool{})
	return p.(*sync.Pool)
}

// grabBuf returns a []byte of the given size with unspecified contents.
// fresh bypasses the pool (Config.DisableBufferReuse).
func grabBuf(size int, fresh bool) []byte {
	if !fresh {
		if v := poolFor(&bufPools, size).Get(); v != nil {
			return v.([]byte)
		}
	}
	return make([]byte, size)
}

// grabZeroBuf returns a zeroed []byte of the given size.
func grabZeroBuf(size int, fresh bool) []byte {
	if !fresh {
		if v := poolFor(&bufPools, size).Get(); v != nil {
			b := v.([]byte)
			clear(b)
			return b
		}
	}
	return make([]byte, size)
}

// putBuf recycles a grabBuf buffer. Never put a buffer a goroutine may still
// touch — the image-lease rules apply to these too.
func putBuf(b []byte, fresh bool) {
	if fresh || len(b) == 0 {
		return
	}
	poolFor(&bufPools, len(b)).Put(b) //nolint:staticcheck // fixed-size []byte, pooled by design
}

// grabImage returns a pooled crash-image pair (possibly stale — prime
// consults its run token and generation before trusting it). The checker
// resolves its size-keyed pool once per run (walk) rather than per grab:
// sync.Map.Load would box the int size on every call, an allocation the
// zero-alloc check loop cannot afford.
func (ck *checker) grabImage() *workerImage {
	if ck.imgPool != nil {
		if v := ck.imgPool.Get(); v != nil {
			return v.(*workerImage)
		}
	}
	return newWorkerImage(ck.devSize)
}

// putImage recycles a cleanly-released image pair. Storing the *workerImage
// pointer (not a slice) keeps the Put interface conversion allocation-free.
func (ck *checker) putImage(wi *workerImage) {
	if ck.imgPool != nil {
		ck.imgPool.Put(wi)
	}
}
