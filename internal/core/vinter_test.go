package core

import (
	"testing"

	"chipmunk/internal/bugs"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
)

// TestVinterFilterReducesStatesKeepsRecoveryBugs: the read-set heuristic
// must cut the crash-state count while still finding bugs whose in-flight
// writes recovery reads (the rename bug's dentry and journal words are all
// consumed by the rebuild scan).
func TestVinterFilterReducesStatesKeepsRecoveryBugs(t *testing.T) {
	w := renameWorkload()
	mk := func(filter bool) *Result {
		res := mustRun(t, Config{
			NewFS: func(pm *persist.PM) vfs.FS {
				return nova.New(pm, bugs.Of(bugs.NovaRenameInPlaceDelete))
			},
			VinterFilter: filter,
		}, w)
		return res
	}
	plain := mk(false)
	filtered := mk(true)
	if !plain.Buggy() || !filtered.Buggy() {
		t.Fatalf("bug 4 detection: plain=%v filtered=%v", plain.Buggy(), filtered.Buggy())
	}
	if filtered.StatesChecked > plain.StatesChecked {
		t.Fatalf("filter increased states: %d > %d", filtered.StatesChecked, plain.StatesChecked)
	}
	t.Logf("states plain=%d filtered=%d (filtered writes: %d)",
		plain.StatesChecked, filtered.StatesChecked, filtered.FilteredWrites)
}

// TestVinterFilterCleanOnFixed: the heuristic must not create false
// positives (fewer states can only hide bugs, not invent them).
func TestVinterFilterCleanOnFixed(t *testing.T) {
	res := mustRun(t, Config{
		NewFS:        func(pm *persist.PM) vfs.FS { return nova.New(pm, bugs.None()) },
		VinterFilter: true,
	}, mixedWorkload())
	for _, v := range res.Violations {
		t.Errorf("false positive under filter: %s", v)
	}
}

// TestVinterFilterCountsFilteredWrites: on a data-heavy workload the filter
// actually excludes writes (NOVA recovery reads logs and inodes, not file
// data pages).
func TestVinterFilterCountsFilteredWrites(t *testing.T) {
	w := mixedWorkload()
	res := mustRun(t, Config{
		NewFS: func(pm *persist.PM) vfs.FS {
			return nova.New(pm, bugs.None())
		},
		VinterFilter: true,
	}, w)
	if res.FilteredWrites == 0 {
		t.Fatal("filter excluded nothing on a data workload")
	}
}
