package core

import (
	"strings"
	"testing"

	"chipmunk/internal/bugs"
	"chipmunk/internal/pmem"
)

// TestFaultInjectionDeterministic: fault decisions are pure functions of
// (seed, site), so two runs with the same FaultConfig — and a serial and a
// parallel run — must produce byte-identical results.
func TestFaultInjectionDeterministic(t *testing.T) {
	w := heavyWorkload()
	faults := &pmem.FaultConfig{Seed: 11, TearOneInN: 3, FlipOneInN: 4, ReadErrOneInN: 512}
	mk := func(workers int) Config {
		return Config{NewFS: novaFS(bugs.None()), Workers: workers, Faults: faults}
	}
	base := mustRun(t, mk(1), w)
	for name, res := range map[string]*Result{
		"rerun":    mustRun(t, mk(1), w),
		"workers4": mustRun(t, mk(4), w),
	} {
		if res.StatesChecked != base.StatesChecked || res.StatesDeduped != base.StatesDeduped ||
			res.TruncatedFences != base.TruncatedFences {
			t.Errorf("%s: accounting diverged: %+v vs %+v", name, res, base)
		}
		if len(res.Violations) != len(base.Violations) {
			t.Fatalf("%s: %d violations != %d", name, len(res.Violations), len(base.Violations))
		}
		for i := range res.Violations {
			if res.Violations[i].String() != base.Violations[i].String() {
				t.Errorf("%s: violation %d differs\ngot:  %s\nwant: %s",
					name, i, res.Violations[i], base.Violations[i])
			}
		}
		if len(res.Quarantined) != len(base.Quarantined) {
			t.Fatalf("%s: ledger %d != %d", name, len(res.Quarantined), len(base.Quarantined))
		}
		for i := range res.Quarantined {
			if res.Quarantined[i].String() != base.Quarantined[i].String() {
				t.Errorf("%s: quarantine %d differs", name, i)
			}
		}
	}
}

// TestFaultMediaErrorsClassified: with every cache line poisoned, every
// crash state's first recovery read raises *pmem.MediaError; the sandbox
// classifies each as VUnreadable — a modeled crash outcome, so nothing is
// quarantined and the census completes.
func TestFaultMediaErrorsClassified(t *testing.T) {
	w := renameWorkload()
	faults := &pmem.FaultConfig{Seed: 1, ReadErrOneInN: 1}
	res := mustRun(t, Config{NewFS: novaFS(bugs.None()), Faults: faults}, w)
	if res.StatesChecked == 0 {
		t.Fatal("no states checked")
	}
	if len(res.Violations)+res.SuppressedViolations != res.StatesChecked {
		t.Errorf("%d violations + %d suppressed != %d states (every poisoned state must report)",
			len(res.Violations), res.SuppressedViolations, res.StatesChecked)
	}
	for i, v := range res.Violations {
		if v.Kind != VUnreadable {
			t.Fatalf("violation %d: kind %v, want VUnreadable", i, v.Kind)
		}
		if !strings.Contains(v.Detail, "media error") {
			t.Fatalf("violation %d detail %q lacks the media error", i, v.Detail)
		}
	}
	if len(res.Quarantined) != 0 {
		t.Errorf("media errors quarantined %d states; they are modeled outcomes, not checker failures",
			len(res.Quarantined))
	}
}

// TestFaultsForceSandbox: DisableSandbox must be ignored when faults are on
// — media errors surface as panics only the sandbox can classify, so an
// inline run would crash the engine.
func TestFaultsForceSandbox(t *testing.T) {
	w := renameWorkload()
	res := mustRun(t, Config{
		NewFS:          novaFS(bugs.None()),
		DisableSandbox: true,
		Faults:         &pmem.FaultConfig{Seed: 1, ReadErrOneInN: 1},
	}, w)
	if len(res.Violations) == 0 {
		t.Fatal("poisoned run reported nothing")
	}
	for i, v := range res.Violations {
		if v.Kind != VUnreadable {
			t.Fatalf("violation %d: kind %v, want VUnreadable", i, v.Kind)
		}
	}
}

// TestFaultsOffMatchesBaseline: a nil/zero FaultConfig is a no-op — the run
// must equal a fault-free run exactly.
func TestFaultsOffMatchesBaseline(t *testing.T) {
	w := renameWorkload()
	base := mustRun(t, Config{NewFS: novaFS(bugs.None())}, w)
	zero := mustRun(t, Config{NewFS: novaFS(bugs.None()), Faults: &pmem.FaultConfig{Seed: 9}}, w)
	if base.StatesChecked != zero.StatesChecked || len(base.Violations) != len(zero.Violations) {
		t.Errorf("zero-rate FaultConfig changed the run: %+v vs %+v", zero, base)
	}
}
