package core

import (
	"fmt"
	"testing"

	"chipmunk/internal/bugs"
	"chipmunk/internal/obs"
	"chipmunk/internal/trace"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// TestCoalesceSpans pins the span-merging rules the dedup scan, the coalesced
// apply, and the release path all rely on: sorted output, overlapping and
// touching spans merged, contained spans absorbed, disjoint spans kept with
// their gap intact.
func TestCoalesceSpans(t *testing.T) {
	cases := []struct {
		name string
		in   []span
		want []span
	}{
		{"empty", nil, nil},
		{"single", []span{{10, 20}}, []span{{10, 20}}},
		{"disjoint", []span{{0, 4}, {8, 12}}, []span{{0, 4}, {8, 12}}},
		{"adjacent", []span{{0, 4}, {4, 8}}, []span{{0, 8}}},
		{"overlapping", []span{{0, 6}, {4, 10}}, []span{{0, 10}}},
		{"contained", []span{{0, 10}, {2, 5}}, []span{{0, 10}}},
		{"out-of-order", []span{{8, 12}, {0, 4}}, []span{{0, 4}, {8, 12}}},
		{"out-of-order-adjacent", []span{{4, 8}, {0, 4}}, []span{{0, 8}}},
		{"duplicate", []span{{3, 7}, {3, 7}}, []span{{3, 7}}},
		{
			"mixed",
			[]span{{20, 30}, {0, 5}, {4, 9}, {9, 12}, {40, 41}, {25, 28}},
			[]span{{0, 12}, {20, 30}, {40, 41}},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := append([]span(nil), c.in...)
			got := coalesceSpans(in)
			if len(got) != len(c.want) {
				t.Fatalf("coalesceSpans(%v) = %v, want %v", c.in, got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("coalesceSpans(%v) = %v, want %v", c.in, got, c.want)
				}
			}
			// The invariant downstream code depends on: merged spans are
			// sorted and separated by at least one uncovered byte.
			for i := 1; i < len(got); i++ {
				if got[i].lo <= got[i-1].hi {
					t.Fatalf("merged spans %v not separated by a gap", got)
				}
			}
		})
	}
}

// perfKnobMatrix runs one Disable* knob through the same differential the
// delta materializer is held to: full-Result agreement across clean and buggy
// systems, serial and parallel, on two workloads.
func perfKnobMatrix(t *testing.T, name string, legacy func(*Config)) {
	t.Helper()
	for _, set := range []bugs.Set{bugs.None(), bugs.AllSet()} {
		for _, workers := range []int{1, 8} {
			for _, w := range []struct {
				name string
				wl   func() workload.Workload
			}{
				{"mixed", mixedWorkload},
				{"rename", renameWorkload},
			} {
				legacyCfg := Config{NewFS: novaFS(set), Workers: workers}
				legacy(&legacyCfg)
				old := mustRun(t, legacyCfg, w.wl())
				new := mustRun(t, Config{NewFS: novaFS(set), Workers: workers}, w.wl())
				label := fmt.Sprintf("%s/%s/workers=%d", name, w.name, workers)
				if len(set.IDs()) > 0 {
					label += "/buggy"
				}
				compareDeltaResults(t, label, old, new)
			}
		}
	}
}

// TestCoalescedApplyMatchesPerStore: materializing a crash state by copying
// its coalesced diff runs must be byte-identical to replaying every in-flight
// store individually — overlaps were already resolved last-writer-wins when
// the key was computed.
func TestCoalescedApplyMatchesPerStore(t *testing.T) {
	perfKnobMatrix(t, "coalesce", func(c *Config) { c.DisableCoalescedApply = true })
}

// TestOracleSnapshotMatchesPerCheck: sharing one frozen oracle snapshot per
// crash point must produce verdicts byte-identical to rebuilding the
// pre/post view inside every check.
func TestOracleSnapshotMatchesPerCheck(t *testing.T) {
	perfKnobMatrix(t, "snapshot", func(c *Config) { c.DisableOracleSnapshot = true })
}

// TestBufferReuseMatchesFresh: recycling device-sized buffers and image pairs
// through the cross-run pools must change nothing — including on a warm
// second run, where every grab is a recycle of the first run's memory.
func TestBufferReuseMatchesFresh(t *testing.T) {
	perfKnobMatrix(t, "pooling", func(c *Config) { c.DisableBufferReuse = true })

	// Warm-pool differential: the second pooled run recycles the first one's
	// buffers; a stale byte surviving a recycle shows up here.
	for _, set := range []bugs.Set{bugs.None(), bugs.AllSet()} {
		fresh := mustRun(t, Config{NewFS: novaFS(set), DisableBufferReuse: true}, mixedWorkload())
		_ = mustRun(t, Config{NewFS: novaFS(set)}, mixedWorkload())
		warm := mustRun(t, Config{NewFS: novaFS(set)}, mixedWorkload())
		compareDeltaResults(t, "pooling/warm", fresh, warm)
	}
}

// TestOracleSnapshotShared: on an engine run the coordinator prepares each
// crash point's snapshot before dispatch, so every mid-syscall check is a
// cache hit — the counter that proves the sharing actually engages.
func TestOracleSnapshotShared(t *testing.T) {
	col := obs.New()
	res := mustRun(t, Config{NewFS: novaFS(bugs.None()), Obs: col}, mixedWorkload())
	hits := res.Obs.Count(obs.CtrOracleSnapshotHits)
	if hits == 0 {
		t.Fatal("no oracle snapshot hits on a mid-syscall-heavy workload")
	}
	off := obs.New()
	resOff := mustRun(t, Config{
		NewFS: novaFS(bugs.None()), Obs: off, DisableOracleSnapshot: true,
	}, mixedWorkload())
	if h := resOff.Obs.Count(obs.CtrOracleSnapshotHits); h != 0 {
		t.Errorf("DisableOracleSnapshot still hit the cache %d times", h)
	}
}

// TestOracleSnapshotImmutable: a prepared snapshot must be bitwise unchanged
// by the checks that consume it — including violating ones — and the
// prepared verdict must equal the fresh (unprepared) checker's verdict.
func TestOracleSnapshotImmutable(t *testing.T) {
	pre := vfs.State{
		"/":  dirState("/", "a", "b"),
		"/a": fileState("/a", "old", 1),
		"/b": fileState("/b", "bystander", 1),
	}
	post := pre.Clone()
	post["/a"] = fileState("/a", "new", 1)
	op := workload.Op{Kind: workload.OpPwrite, Path: "/a", FDSlot: -1, Size: 3}

	prepared := newAtomChecker(op, pre, post, true)
	ctx := crashCtx{phase: PhaseMid, sys: 0}.check()
	prepared.PrepareCrashPoint(ctx)
	snap := prepared.snaps.Load().(map[int]*oracleSnapshot)[0]
	if snap == nil {
		t.Fatal("PrepareCrashPoint published no snapshot")
	}
	frozen := *snap
	frozenPre := append([]vfs.FileState(nil), snap.pre...)
	frozenPaths := append([]string(nil), snap.paths...)

	fresh := newAtomChecker(op, pre, post, true)
	crashes := []vfs.State{
		pre.Clone(),
		post.Clone(),
		// Violating: bystander corrupted.
		func() vfs.State {
			c := post.Clone()
			c["/b"] = fileState("/b", "CORRUPTED", 1)
			return c
		}(),
		// Violating: crash-only extra path.
		func() vfs.State {
			c := pre.Clone()
			c["/zz"] = fileState("/zz", "ghost", 1)
			return c
		}(),
	}
	for i, crash := range crashes {
		got := prepared.checkAtomic(crash, ctx)
		want := fresh.checkAtomic(crash, ctx)
		if got != want {
			t.Errorf("crash %d: prepared verdict %q != fresh verdict %q", i, got, want)
		}
	}

	if snap.sys != frozen.sys || len(snap.paths) != len(frozenPaths) {
		t.Fatal("snapshot shape mutated by checks")
	}
	for i := range frozenPaths {
		if snap.paths[i] != frozenPaths[i] {
			t.Errorf("snapshot path %d mutated: %q -> %q", i, frozenPaths[i], snap.paths[i])
		}
		if !snap.pre[i].Equal(frozenPre[i]) {
			t.Errorf("snapshot pre state %d mutated", i)
		}
		if snap.inPre[i] != frozen.inPre[i] || snap.inPost[i] != frozen.inPost[i] ||
			snap.modified[i] != frozen.modified[i] || snap.mixOK[i] != frozen.mixOK[i] {
			t.Errorf("snapshot fact arrays mutated at %d", i)
		}
	}

	// Preparing the same crash point again must be a no-op on the published
	// map (same snapshot pointer — no rebuild).
	prepared.PrepareCrashPoint(ctx)
	if again := prepared.snaps.Load().(map[int]*oracleSnapshot)[0]; again != snap {
		t.Error("re-preparing an already-prepared crash point rebuilt the snapshot")
	}
}

// hotLoopChecker builds a bare checker plus a replayed-write log shaped like
// one fence: overlapping and disjoint in-flight stores over a pool-sized
// device. It drives exactly the coordinator+materializer hot path the engine
// runs per crash state — dedup keying, arena saves, image lease, coalesced
// apply, rollback, release — with the guest mount excluded (guest code
// allocates by design and is sandboxed, not part of the zero-alloc contract).
func hotLoopChecker(col *obs.Collector) (ck *checker, base []byte, log *trace.Log, subsets [][]int) {
	base = make([]byte, 1<<16)
	for i := range base {
		base[i] = byte(i * 7)
	}
	log = trace.NewLog()
	w := func(off int64, n int, seed byte) {
		data := make([]byte, n)
		for i := range data {
			data[i] = seed + byte(i)
		}
		log.Append(trace.KindNT, off, data, "w")
	}
	w(100, 64, 1) // overlaps the next store
	w(140, 64, 2) // last-writer-wins over [140,164)
	w(300, 32, 3) // disjoint
	w(204, 8, 4)  // adjacent-touching pair with the next
	w(212, 16, 5) //
	subsets = [][]int{
		{0}, {1}, {2}, {3}, {4},
		{0, 1}, {1, 0}, // same bytes, opposite order: the dedup-hit path
		{0, 1, 2}, {3, 4}, {0, 1, 2, 3, 4},
	}
	ck = &checker{
		cfg:     Config{},
		res:     &Result{},
		obs:     col,
		runID:   runIDs.Add(1),
		devSize: len(base),
		imgPool: poolFor(&imagePools, len(base)),
	}
	ck.scratch = grabBuf(len(base), false)
	return ck, base, log, subsets
}

// runHotLoop is one fence worth of per-state work on the hot path.
func runHotLoop(ck *checker, base []byte, log *trace.Log, subsets [][]int) {
	ck.resetFenceScratch()
	for _, sub := range subsets {
		k := ck.stateKey(base, log, sub)
		if _, dup := ck.seen[internKey(k)]; dup {
			continue
		}
		key := internKey(ck.keyArena.save(k))
		ck.seen[key] = struct{}{}
		st := crashState{
			subset: ck.subArena.save(sub),
			spans:  ck.spanArena.save(ck.spans),
			key:    key,
			keyed:  true,
		}
		wi := ck.grabImage()
		ck.prime(wi, base, log)
		ck.applyDelta(wi, log, st, nil, true)
		wi.dev.Reset()
		wi.undo.Rollback()
		ck.release(wi, base, st, true, 0, false)
	}
}

// TestCheckLoopZeroAlloc pins the tentpole claim: once warm, the per-state
// check loop performs zero heap allocations — with observability on and off.
func TestCheckLoopZeroAlloc(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race-detector instrumentation allocates; AllocsPerRun is meaningless under -race")
	}
	for _, c := range []struct {
		name string
		col  *obs.Collector
	}{
		{"obs-off", nil},
		{"obs-on", obs.New()},
	} {
		t.Run(c.name, func(t *testing.T) {
			ck, base, log, subsets := hotLoopChecker(c.col)
			defer putBuf(ck.scratch, false)
			for i := 0; i < 3; i++ { // warm arenas, pools, dedup map
				runHotLoop(ck, base, log, subsets)
			}
			allocs := testing.AllocsPerRun(20, func() {
				runHotLoop(ck, base, log, subsets)
			})
			if allocs != 0 {
				t.Errorf("per-fence check loop allocates %.1f times, want 0", allocs)
			}
		})
	}
}

// BenchmarkStateKey measures dedup keying (span coalescing + diff scan) per
// crash state; allocs/op must read 0 once warm.
func BenchmarkStateKey(b *testing.B) {
	ck, base, log, subsets := hotLoopChecker(nil)
	defer putBuf(ck.scratch, false)
	ck.resetFenceScratch()
	sub := subsets[len(subsets)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck.stateKey(base, log, sub)
	}
}

// BenchmarkDeltaApplyRelease measures one crash state's materialize + restore
// round trip on the coalesced path; allocs/op must read 0 once warm.
func BenchmarkDeltaApplyRelease(b *testing.B) {
	ck, base, log, subsets := hotLoopChecker(nil)
	defer putBuf(ck.scratch, false)
	ck.resetFenceScratch()
	sub := subsets[len(subsets)-1]
	k := ck.stateKey(base, log, sub)
	st := crashState{
		subset: ck.subArena.save(sub),
		spans:  ck.spanArena.save(ck.spans),
		key:    internKey(ck.keyArena.save(k)),
		keyed:  true,
	}
	wi := ck.grabImage()
	ck.prime(wi, base, log)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ck.applyDelta(wi, log, st, nil, true)
		ck.release(wi, base, st, true, 0, false)
	}
}

// BenchmarkMaterializeState is the end-to-end per-state hot loop (keying,
// dedup, lease, apply, rollback, release) the zero-alloc test pins.
func BenchmarkMaterializeState(b *testing.B) {
	ck, base, log, subsets := hotLoopChecker(nil)
	defer putBuf(ck.scratch, false)
	runHotLoop(ck, base, log, subsets)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runHotLoop(ck, base, log, subsets)
	}
}
