//go:build !race

package core

// raceDetectorEnabled reports whether the binary was built with -race. The
// zero-alloc assertions skip under the race detector: its instrumentation
// allocates on its own, so testing.AllocsPerRun cannot measure the code.
const raceDetectorEnabled = false
