package core

import (
	"hash/fnv"

	"chipmunk/internal/trace"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// crashCtx says which crash point a state belongs to.
type crashCtx struct {
	phase     Phase
	sys       int   // syscall index (-1 outside any call)
	oracleIdx int   // index into checker.states used for comparison
	subset    []int // replayed in-flight write indices (nil = all fenced)
}

// maxViolationsPerRun bounds report memory; overflow is counted, never
// silently dropped.
const maxViolationsPerRun = 200

type checker struct {
	cfg    Config
	caps   vfs.Caps
	w      workload.Workload
	res    *Result
	states []vfs.State

	scratch []byte
}

// walk replays the trace, generating crash states at every fence and after
// every system call (§3.3 "Constructing crash states").
//
// At a fence with n in-flight writes the engine checks the 2^n - 1
// non-empty subsets (in increasing subset-size order, which Observation 7
// shows finds bugs earliest), bounded by the configured cap; the full set is
// always checked because it is the next persistent base. Crash points after
// system calls use the current persistent image: writes that were never
// fenced are — correctly — absent, which is how missing-fence bugs surface.
func (ck *checker) walk(baseline []byte, log *trace.Log) {
	img := append([]byte(nil), baseline...)
	ck.scratch = make([]byte, len(img))
	var pending []int
	lastDone := -1
	sig := fnv.New64a()

	for _, e := range log.Entries() {
		if e.Sys >= 0 && e.Kind != trace.KindSyscallBegin && e.Kind != trace.KindSyscallEnd {
			// Fold the event shape into the enclosing call's signature.
			var shape [3]byte
			shape[0] = byte(e.Kind)
			shape[1] = sizeBucket(len(e.Data))
			shape[2] = byte(e.Off % 64)
			sig.Write(shape[:])
		}
		switch e.Kind {
		case trace.KindSyscallBegin:
			sig.Reset()
			sig.Write([]byte(e.Name))
		case trace.KindSyscallEnd:
			ck.res.SyscallSigs = append(ck.res.SyscallSigs, sig.Sum64())
		}
		switch e.Kind {
		case trace.KindNT, trace.KindFlush:
			pending = append(pending, e.Seq)
		case trace.KindStore:
			ck.res.StoreEntries++
		case trace.KindFence:
			ck.res.Fences++
			ck.noteInFlight(len(pending))
			if len(pending) > 0 && ck.caps.Strong && !ck.cfg.PostOnly {
				ck.enumerate(img, log, pending, e.Sys, lastDone)
			}
			for _, idx := range pending {
				trace.Apply(img, log.At(idx))
			}
			pending = pending[:0]
		case trace.KindSyscallEnd:
			lastDone = e.Sys
			if ck.shouldCheckPost(e.Sys) {
				ck.check(img, crashCtx{phase: PhasePost, sys: e.Sys, oracleIdx: e.Sys + 1})
			}
		}
	}
}

// shouldCheckPost selects post-syscall crash points: every call for strong
// systems, fsync-family calls for weak ones (§3.3, §4.1).
func (ck *checker) shouldCheckPost(sys int) bool {
	if sys < 0 || sys >= len(ck.w.Ops) {
		return false
	}
	if ck.caps.Strong {
		return true
	}
	switch ck.w.Ops[sys].Kind {
	case workload.OpFsync, workload.OpFdatasync, workload.OpSync:
		return ck.res.OpResults[sys].Err == nil
	default:
		return false
	}
}

// enumerate generates and checks the crash states of one fence.
func (ck *checker) enumerate(img []byte, log *trace.Log, pending []int, sys, lastDone int) {
	full := pending
	if ck.cfg.VinterFilter {
		reads := ck.recoveryReadSet(img)
		kept := pending[:0:len(pending)]
		for _, idx := range pending {
			e := log.At(idx)
			if reads == nil || reads.Overlaps(e.Off, len(e.Data)) {
				kept = append(kept, idx)
			} else {
				ck.res.FilteredWrites++
			}
		}
		pending = kept
		if len(pending) == 0 {
			// Nothing recovery-relevant in flight; still check the
			// post-fence state (the full set).
			ctx := fenceCtx(sys, lastDone)
			fullSet := append([]int(nil), full...)
			ck.checkSubset(img, log, fullSet, ctx)
			return
		}
	}
	n := len(pending)
	cap := ck.cfg.Cap
	truncated := false
	if cap == 0 {
		if n > exhaustiveLimit {
			cap = safetyCap
			truncated = true
		} else {
			cap = n
		}
	}
	if cap > n {
		cap = n
	}
	if truncated {
		ck.res.TruncatedFences++
	}

	ctx := fenceCtx(sys, lastDone)

	subset := make([]int, 0, n)
	for size := 1; size <= cap; size++ {
		ck.combinations(img, log, pending, subset, 0, size, ctx)
	}
	if cap < n || len(full) != len(pending) {
		// The full set is the next persistent base; always check it.
		fullSet := append([]int(nil), full...)
		ck.checkSubset(img, log, fullSet, ctx)
	}
}

// fenceCtx builds the crash context for a fence inside syscall sys (or
// deferred work after lastDone).
func fenceCtx(sys, lastDone int) crashCtx {
	if sys < 0 {
		return crashCtx{phase: PhasePost, sys: lastDone, oracleIdx: lastDone + 1}
	}
	return crashCtx{phase: PhaseMid, sys: sys, oracleIdx: sys}
}

// combinations enumerates size-k subsets of pending[from:] recursively.
func (ck *checker) combinations(img []byte, log *trace.Log, pending, subset []int, from, size int, ctx crashCtx) {
	if size == 0 {
		ck.checkSubset(img, log, subset, ctx)
		return
	}
	for i := from; i <= len(pending)-size; i++ {
		ck.combinations(img, log, pending, append(subset, pending[i]), i+1, size-1, ctx)
	}
}

// checkSubset materializes base-image + subset and checks it.
func (ck *checker) checkSubset(img []byte, log *trace.Log, subset []int, ctx crashCtx) {
	copy(ck.scratch, img)
	for _, idx := range subset {
		trace.Apply(ck.scratch, log.At(idx))
	}
	ctx.subset = append([]int(nil), subset...)
	ck.check(ck.scratch, ctx)
}

func (ck *checker) noteInFlight(n int) {
	for len(ck.res.InFlightCounts) <= n {
		ck.res.InFlightCounts = append(ck.res.InFlightCounts, 0)
	}
	ck.res.InFlightCounts[n]++
	if n > ck.res.MaxInFlight {
		ck.res.MaxInFlight = n
	}
}

// sizeBucket maps a write size to a coarse bucket for trace signatures.
func sizeBucket(n int) byte {
	switch {
	case n == 0:
		return 0
	case n <= 8:
		return 1
	case n <= 64:
		return 2
	case n <= 512:
		return 3
	case n <= 4096:
		return 4
	default:
		return 5
	}
}
