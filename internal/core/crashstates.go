package core

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"chipmunk/internal/obs"
	"chipmunk/internal/trace"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// crashCtx says which crash point a state belongs to.
type crashCtx struct {
	phase     Phase
	sys       int   // syscall index (-1 outside any call)
	oracleIdx int   // index into checker.states used for comparison
	subset    []int // replayed in-flight write indices (nil = all fenced)
	fence     int   // 1-based fence ordinal (0 = post-syscall, no fence)
	rank      int   // canonical rank among this crash point's distinct states
}

// maxViolationsPerRun bounds report memory; overflow is counted, never
// silently dropped.
const maxViolationsPerRun = 200

// parallelThreshold is the minimum number of distinct crash states at one
// fence worth dispatching to the worker pool; below it the coordinator
// checks inline. The threshold never changes results, only scheduling.
const parallelThreshold = 4

type checker struct {
	ctx  context.Context // nil behaves as Background (bare test checkers)
	cfg  Config
	caps vfs.Caps
	w    workload.Workload
	res  *Result
	// contract is the run's correctness contract (Config.Checker resolved,
	// NewOracleChecker by default), applied to every mounted crash state.
	// Checkers are read-only over their RunEnv, so calling Check from worker
	// goroutines is safe.
	contract Checker

	// obs is the run's private metrics collector and journal the shared
	// event stream; both are nil-safe no-ops when observability is off.
	// obs is recorded into from worker goroutines (atomics only); journal
	// events are emitted from the coordinator exclusively, which is what
	// makes the journal's event set deterministic across worker counts.
	obs     *obs.Collector
	journal *obs.Journal

	// tracer emits deterministic "span" events (coordinator-only, like the
	// journal); checkSpan is the precomputed ID of the run's "check" span,
	// the parent every fence span hangs off.
	tracer    *obs.Tracer
	checkSpan string

	// scratch is the coordinator-only buffer state-key computation
	// materializes written ranges into; workers use pooled buffers.
	scratch []byte
	keyBuf  []byte
	spans   []span

	// pool holds full-device []byte buffers for the legacy full-copy
	// materialization path (Config.DisableDeltaMaterialize); imgPool holds
	// *workerImage pairs for the delta path. Both are primed lazily.
	pool    sync.Pool
	imgPool sync.Pool

	// baseGen is the generation of the coordinator's working image: walk
	// bumps it each time a fence advances the persistent base, and records
	// in advance the in-flight writes that advance applied (valid when
	// advGen == baseGen). A pooled image at baseGen-1 catches up by
	// replaying advance instead of re-copying the device; see prime.
	// Written by the coordinator only, between check dispatches.
	baseGen int64
	advance []int
	advGen  int64
}

func (ck *checker) cancelled() error {
	if ck.ctx == nil {
		return nil
	}
	return ck.ctx.Err()
}

// span is a half-open byte interval [lo, hi) on the device.
type span struct{ lo, hi int64 }

// crashState is one distinct crash state queued for checking: the replayed
// in-flight subset plus the merged byte spans its writes cover — the exact
// spans stateKey computed during dedup, reused by the delta materializer as
// the replay recipe (apply) and the restore recipe (revert). The zero value
// is a post-syscall state: empty subset, the base image itself.
type crashState struct {
	subset []int
	spans  []span
}

// walk replays the trace, generating crash states at every fence and after
// every system call (§3.3 "Constructing crash states").
//
// At a fence with n in-flight writes the engine checks the 2^n - 1
// non-empty subsets (in increasing subset-size order, which Observation 7
// shows finds bugs earliest), bounded by the configured cap; the full set is
// always checked because it is the next persistent base. Crash points after
// system calls use the current persistent image: writes that were never
// fenced are — correctly — absent, which is how missing-fence bugs surface.
func (ck *checker) walk(baseline []byte, log *trace.Log) error {
	// The working image, key scratch, and pool priming are crash-state
	// construction costs: bill them to the replay stage so the -stats sum
	// tracks wall-clock.
	wt := ck.obs.Start()
	img := append([]byte(nil), baseline...)
	ck.scratch = make([]byte, len(img))
	ck.pool.New = func() any { return make([]byte, len(img)) }
	ck.imgPool.New = func() any { return newWorkerImage(len(img)) }
	// No advance recipe exists yet: a fresh image (gen -1) at generation 0
	// must full-prime, not replay an empty recipe.
	ck.advGen = -1
	ck.obs.ObserveSince(obs.StageReplay, wt)
	var pending []int
	lastDone := -1
	sig := fnv.New64a()

	for _, e := range log.Entries() {
		if e.Sys >= 0 && e.Kind != trace.KindSyscallBegin && e.Kind != trace.KindSyscallEnd {
			// Fold the event shape into the enclosing call's signature.
			var shape [3]byte
			shape[0] = byte(e.Kind)
			shape[1] = sizeBucket(len(e.Data))
			shape[2] = byte(e.Off % 64)
			sig.Write(shape[:])
		}
		switch e.Kind {
		case trace.KindSyscallBegin:
			sig.Reset()
			sig.Write([]byte(e.Name))
		case trace.KindSyscallEnd:
			ck.res.SyscallSigs = append(ck.res.SyscallSigs, sig.Sum64())
		}
		switch e.Kind {
		case trace.KindNT, trace.KindFlush:
			pending = append(pending, e.Seq)
		case trace.KindStore:
			ck.res.StoreEntries++
		case trace.KindFence:
			ck.res.Fences++
			ck.noteInFlight(len(pending))
			if len(pending) > 0 && ck.caps.Strong && !ck.cfg.PostOnly {
				if err := ck.enumerate(img, log, pending, e.Sys, lastDone); err != nil {
					return err
				}
			}
			// Advancing the persistent base past the fence is replay work.
			// The applied write set is kept as the advance recipe: a pooled
			// image one generation behind replays it instead of re-copying
			// the whole device.
			at := ck.obs.Start()
			for _, idx := range pending {
				trace.Apply(img, log.At(idx))
			}
			ck.advance = append(ck.advance[:0], pending...)
			ck.baseGen++
			ck.advGen = ck.baseGen
			ck.obs.ObserveSince(obs.StageReplay, at)
			pending = pending[:0]
		case trace.KindSyscallEnd:
			lastDone = e.Sys
			if ck.shouldCheckPost(e.Sys) {
				if err := ck.cancelled(); err != nil {
					return err
				}
				out := ck.checkOne(img, log, crashState{}, crashCtx{phase: PhasePost, sys: e.Sys, oracleIdx: e.Sys + 1})
				ck.fold(out)
				if out.cancelled {
					return ck.cancelled()
				}
			}
		}
	}
	return nil
}

// shouldCheckPost selects post-syscall crash points: every call for strong
// systems, fsync-family calls for weak ones (§3.3, §4.1). An app-level
// OpKVSync is fsync-family — the store's commit point is an fsync on its
// WAL, which is exactly when a weak system makes durability promises.
func (ck *checker) shouldCheckPost(sys int) bool {
	if sys < 0 || sys >= len(ck.w.Ops) {
		return false
	}
	if ck.caps.Strong {
		return true
	}
	switch ck.w.Ops[sys].Kind {
	case workload.OpFsync, workload.OpFdatasync, workload.OpSync, workload.OpKVSync:
		return ck.res.OpResults[sys].Err == nil
	default:
		return false
	}
}

// enumerate generates the crash states of one fence, deduplicates subsets
// that materialize byte-identical images, and checks the distinct ones —
// serially or across the worker pool, with identical results either way.
func (ck *checker) enumerate(img []byte, log *trace.Log, pending []int, sys, lastDone int) error {
	full := pending
	if ck.cfg.VinterFilter {
		reads := ck.recoveryReadSet(img)
		kept := pending[:0:len(pending)]
		for _, idx := range pending {
			e := log.At(idx)
			if reads == nil || reads.Overlaps(e.Off, len(e.Data)) {
				kept = append(kept, idx)
			} else {
				ck.res.FilteredWrites++
			}
		}
		pending = kept
	}
	n := len(pending)
	cap := ck.cfg.Cap
	truncated := false
	if cap == 0 {
		limit := ck.cfg.ExhaustiveLimit
		if limit <= 0 {
			limit = DefaultExhaustiveLimit
		}
		fallback := ck.cfg.SafetyCap
		if fallback <= 0 {
			fallback = DefaultSafetyCap
		}
		if n > limit {
			cap = fallback
			truncated = true
		} else {
			cap = n
		}
	}
	if cap > n {
		cap = n
	}
	if truncated {
		ck.res.TruncatedFences++
	}

	ctx := fenceCtx(sys, lastDone)
	ctx.fence = ck.res.Fences // walk increments before enumerating: 1-based

	var fenceStart time.Time
	if ck.journal != nil {
		fenceStart = time.Now()
	}
	ft := ck.tracer.Begin()
	dt := ck.obs.Start()

	// Stream candidate subsets in canonical rank order — size ascending,
	// lexicographic within a size, the full set last when not already the
	// final combination — deduplicating as they are generated: each
	// candidate's key is computed from the enumerator's shared recursion
	// buffer, and only the distinct ones are copied out (together with their
	// merged write spans, which the delta materializer reuses as the replay
	// recipe). Duplicates cost one key computation and zero allocations.
	// Rank order is the serial checking order, so the parallel path can
	// restore it when merging results.
	//
	// Dedup key: the exact byte diff against the base image, so equal keys
	// mean equal images — no hash collisions, no silently skipped distinct
	// states.
	seen := make(map[string]struct{}, n*n)
	var distinct []crashState
	dedupedHere := 0
	admit := func(s []int) {
		k := ck.stateKey(img, log, s)
		if _, dup := seen[k]; dup {
			ck.res.StatesDeduped++
			dedupedHere++
			return
		}
		seen[k] = struct{}{}
		distinct = append(distinct, crashState{
			subset: append([]int(nil), s...),
			spans:  append([]span(nil), ck.spans...),
		})
	}
	subset := make([]int, 0, n)
	for size := 1; size <= cap; size++ {
		combinations(pending, subset, 0, size, admit)
	}
	if cap < n || len(full) != len(pending) {
		// The full set is the next persistent base; always check it
		// (including when the Vinter filter kept nothing in flight).
		admit(full)
	}
	ck.obs.ObserveSince(obs.StageDedup, dt)

	if err := ck.runChecks(img, log, distinct, ctx); err != nil {
		return err
	}
	ck.journal.Emit(obs.Event{
		Type: "fence", FS: ck.caps.Name, Workload: ck.w.Name,
		Fence: ctx.fence, Sys: sys, Phase: ctx.phase.String(),
		InFlight: n, States: len(distinct), Deduped: dedupedHere,
		DurNanos: sinceNanos(fenceStart),
	})
	ck.tracer.Span("fence", ft, ck.checkSpan, obs.Event{
		FS: ck.caps.Name, Workload: ck.w.Name,
		Fence: ctx.fence, Sys: sys, States: len(distinct),
	})
	return nil
}

// runChecks materializes and checks each distinct subset, inline or across
// Workers goroutines. Outcomes — violations, quarantine entries, retry
// accounting — are folded in subset-rank order either way, and
// StatesChecked counts exactly the states whose check reached a classified
// outcome (clean, violating, or quarantined).
func (ck *checker) runChecks(img []byte, log *trace.Log, distinct []crashState, cctx crashCtx) error {
	workers := ck.cfg.Workers
	if workers > len(distinct) {
		workers = len(distinct)
	}
	if workers <= 1 || len(distinct) < parallelThreshold {
		for rank, st := range distinct {
			if err := ck.cancelled(); err != nil {
				return err
			}
			c := cctx
			c.rank = rank
			out := ck.checkOne(img, log, st, c)
			ck.fold(out)
			if out.cancelled {
				return ck.cancelled()
			}
		}
		return nil
	}

	outcomes := make([]checkOutcome, len(distinct))
	var next int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ck.cancelled() == nil {
				j := int(atomic.AddInt64(&next, 1)) - 1
				if j >= len(distinct) {
					return
				}
				c := cctx
				c.rank = j
				outcomes[j] = ck.checkOne(img, log, distinct[j], c)
			}
		}()
	}
	wg.Wait()
	for _, out := range outcomes {
		ck.fold(out)
	}
	return ck.cancelled()
}

// stateKey returns a canonical fingerprint of the crash image base+subset
// materializes: the exact byte runs where that image differs from base,
// encoded as (offset, length, bytes) records. Two subsets produce identical
// crash images if and only if their keys are equal. Coordinator-only (it
// reuses ck.scratch).
func (ck *checker) stateKey(base []byte, log *trace.Log, subset []int) string {
	// Collect and merge the written intervals.
	spans := ck.spans[:0]
	for _, idx := range subset {
		e := log.At(idx)
		if len(e.Data) == 0 {
			continue
		}
		spans = append(spans, span{e.Off, e.Off + int64(len(e.Data))})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	merged := spans[:0]
	for _, s := range spans {
		if len(merged) > 0 && s.lo <= merged[len(merged)-1].hi {
			if s.hi > merged[len(merged)-1].hi {
				merged[len(merged)-1].hi = s.hi
			}
			continue
		}
		merged = append(merged, s)
	}
	ck.spans = merged

	// Materialize the written ranges over the base bytes, in program order
	// (ascending log index — the same last-writer-wins order replay uses).
	for _, s := range merged {
		copy(ck.scratch[s.lo:s.hi], base[s.lo:s.hi])
	}
	for _, idx := range subset {
		trace.Apply(ck.scratch, log.At(idx))
	}

	// Emit the differing runs.
	key := ck.keyBuf[:0]
	for _, s := range merged {
		for i := s.lo; i < s.hi; {
			if ck.scratch[i] == base[i] {
				i++
				continue
			}
			j := i + 1
			for j < s.hi && ck.scratch[j] != base[j] {
				j++
			}
			key = binary.BigEndian.AppendUint64(key, uint64(i))
			key = binary.BigEndian.AppendUint32(key, uint32(j-i))
			key = append(key, ck.scratch[i:j]...)
			i = j
		}
	}
	ck.keyBuf = key
	return string(key)
}

// fenceCtx builds the crash context for a fence inside syscall sys (or
// deferred work after lastDone).
func fenceCtx(sys, lastDone int) crashCtx {
	if sys < 0 {
		return crashCtx{phase: PhasePost, sys: lastDone, oracleIdx: lastDone + 1}
	}
	return crashCtx{phase: PhaseMid, sys: sys, oracleIdx: sys}
}

// combinations enumerates size-k subsets of pending[from:] recursively,
// passing each to emit in lexicographic order.
func combinations(pending, subset []int, from, size int, emit func([]int)) {
	if size == 0 {
		emit(subset)
		return
	}
	for i := from; i <= len(pending)-size; i++ {
		combinations(pending, append(subset, pending[i]), i+1, size-1, emit)
	}
}

func (ck *checker) noteInFlight(n int) {
	for len(ck.res.InFlightCounts) <= n {
		ck.res.InFlightCounts = append(ck.res.InFlightCounts, 0)
	}
	ck.res.InFlightCounts[n]++
	if n > ck.res.MaxInFlight {
		ck.res.MaxInFlight = n
	}
}

// sizeBucket maps a write size to a coarse bucket for trace signatures.
func sizeBucket(n int) byte {
	switch {
	case n == 0:
		return 0
	case n <= 8:
		return 1
	case n <= 64:
		return 2
	case n <= 512:
		return 3
	case n <= 4096:
		return 4
	default:
		return 5
	}
}
