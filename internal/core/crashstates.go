package core

import (
	"context"
	"encoding/binary"
	"hash/fnv"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"chipmunk/internal/obs"
	"chipmunk/internal/trace"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// crashCtx says which crash point a state belongs to.
type crashCtx struct {
	phase     Phase
	sys       int   // syscall index (-1 outside any call)
	oracleIdx int   // index into checker.states used for comparison
	subset    []int // replayed in-flight write indices (nil = all fenced)
	fence     int   // 1-based fence ordinal (0 = post-syscall, no fence)
	rank      int   // canonical rank among this crash point's distinct states
}

// maxViolationsPerRun bounds report memory; overflow is counted, never
// silently dropped.
const maxViolationsPerRun = 200

// parallelThreshold is the minimum number of distinct crash states at one
// fence worth dispatching to the worker pool; below it the coordinator
// checks inline. The threshold never changes results, only scheduling.
const parallelThreshold = 4

type checker struct {
	ctx  context.Context // nil behaves as Background (bare test checkers)
	cfg  Config
	caps vfs.Caps
	w    workload.Workload
	res  *Result
	// contract is the run's correctness contract (Config.Checker resolved,
	// NewOracleChecker by default), applied to every mounted crash state.
	// Checkers are read-only over their RunEnv, so calling Check from worker
	// goroutines is safe.
	contract Checker

	// obs is the run's private metrics collector and journal the shared
	// event stream; both are nil-safe no-ops when observability is off.
	// obs is recorded into from worker goroutines (atomics only); journal
	// events are emitted from the coordinator exclusively, which is what
	// makes the journal's event set deterministic across worker counts.
	obs     *obs.Collector
	journal *obs.Journal

	// tracer emits deterministic "span" events (coordinator-only, like the
	// journal); checkSpan is the precomputed ID of the run's "check" span,
	// the parent every fence span hangs off.
	tracer    *obs.Tracer
	checkSpan string

	// scratch is the coordinator-only buffer state-key computation
	// materializes written ranges into; workers use pooled buffers.
	scratch []byte
	keyBuf  []byte
	spans   []span

	// Per-fence scratch reused across fences (coordinator-only, see
	// arena.go for the ownership protocol): the dedup map, the distinct
	// state list, the subset recursion buffer, the parallel outcome slots,
	// and the arenas behind every crash state's subset/spans/key.
	seen      map[string]struct{}
	distinct  []crashState
	subsetBuf []int
	outcomes  []checkOutcome
	subArena  sliceArena[int]
	spanArena sliceArena[span]
	keyArena  sliceArena[byte]

	// abandoned counts sandbox goroutines the dispatcher walked away from
	// (timeout/cancel); abandonedSeen is the coordinator's high-water mark.
	// When they differ at a fence boundary the arenas are dropped instead of
	// reset — an abandoned goroutine may still be reading last fence's
	// saves. Incremented from check workers, read by the coordinator after
	// the fence joins them.
	abandoned     atomic.Int64
	abandonedSeen int64

	// runID is this run's process-unique pool token (see arena.go);
	// devSize the device size every pooled grab is keyed by; imgPool the
	// resolved cross-run image pool (nil under DisableBufferReuse — every
	// grab is then a fresh allocation).
	runID   int64
	devSize int
	imgPool *sync.Pool

	// prep is the contract's optional per-crash-point hook (nil when the
	// contract has none or Config.DisableOracleSnapshot is set): the
	// coordinator calls it once per fence before dispatching that fence's
	// states, so workers share one immutable snapshot instead of each
	// rebuilding the oracle-visible view.
	prep CrashPointPreparer

	// spansCoalesced counts raw write spans merged away during dedup
	// keying (coordinator-only; mapped to obs.CtrSpansCoalesced at run end).
	spansCoalesced int64

	// baseGen is the generation of the coordinator's working image: the
	// walk accumulates fence-applied writes into advAccum (baseDirty set)
	// and commitBase folds them into one generation step — advance becomes
	// the accumulated write set (valid when advGen == baseGen), baseGen
	// bumps once — immediately before the next check dispatch. Committing
	// lazily means back-to-back fences with no check in between cost ONE
	// generation, so a pooled image is never more than one generation
	// behind and catches up by replaying advance instead of re-copying the
	// device; see prime. Written by the coordinator only, between check
	// dispatches.
	baseGen   int64
	advance   []int
	advGen    int64
	advAccum  []int
	baseDirty bool
}

func (ck *checker) cancelled() error {
	if ck.ctx == nil {
		return nil
	}
	return ck.ctx.Err()
}

// span is a half-open byte interval [lo, hi) on the device.
type span struct{ lo, hi int64 }

// crashState is one distinct crash state queued for checking: the replayed
// in-flight subset, the merged byte spans its writes cover — the exact
// spans stateKey computed during dedup, reused by the delta materializer as
// the replay recipe (apply) and the restore recipe (revert) — and the
// byte-diff dedup key itself. The key's (offset, length, bytes) runs are the
// state's minimal diff against the fence base: when faults are off the
// materializer applies and reverts exactly those runs, one copy per merged
// run, and the quarantine digest hashes the key instead of re-deriving the
// diff. All three slices are arena-backed and valid until the fence after
// next begins (see arena.go). The zero value is a post-syscall state: empty
// subset, no key, the base image itself.
type crashState struct {
	subset []int
	spans  []span
	key    string
	keyed  bool
}

// walk replays the trace, generating crash states at every fence and after
// every system call (§3.3 "Constructing crash states").
//
// At a fence with n in-flight writes the engine checks the 2^n - 1
// non-empty subsets (in increasing subset-size order, which Observation 7
// shows finds bugs earliest), bounded by the configured cap; the full set is
// always checked because it is the next persistent base. Crash points after
// system calls use the current persistent image: writes that were never
// fenced are — correctly — absent, which is how missing-fence bugs surface.
func (ck *checker) walk(baseline []byte, log *trace.Log) error {
	// Key scratch is a crash-state construction cost: bill it to the replay
	// stage so the -stats sum tracks wall-clock. walk takes ownership of
	// baseline and advances it in place as the working image — the caller
	// hands over a private copy, so no defensive copy is needed — and the
	// device-sized key scratch is a pooled grab released when walk returns.
	wt := ck.obs.Start()
	img := baseline
	ck.devSize = len(img)
	if !ck.cfg.DisableBufferReuse {
		ck.imgPool = poolFor(&imagePools, ck.devSize)
		scr := ck.loanScratch()
		defer ck.returnScratch(scr)
	}
	ck.scratch = grabBuf(len(img), ck.cfg.DisableBufferReuse)
	defer func() {
		putBuf(ck.scratch, ck.cfg.DisableBufferReuse)
		ck.scratch = nil
	}()
	// No advance recipe exists yet: a fresh image (gen -1) at generation 0
	// must full-prime, not replay an empty recipe.
	ck.advGen = -1
	ck.obs.ObserveSince(obs.StageReplay, wt)
	var pending []int
	lastDone := -1
	sig := fnv.New64a()

	for _, e := range log.Entries() {
		if e.Sys >= 0 && e.Kind != trace.KindSyscallBegin && e.Kind != trace.KindSyscallEnd {
			// Fold the event shape into the enclosing call's signature.
			var shape [3]byte
			shape[0] = byte(e.Kind)
			shape[1] = sizeBucket(len(e.Data))
			shape[2] = byte(e.Off % 64)
			sig.Write(shape[:])
		}
		switch e.Kind {
		case trace.KindSyscallBegin:
			sig.Reset()
			sig.Write([]byte(e.Name))
		case trace.KindSyscallEnd:
			ck.res.SyscallSigs = append(ck.res.SyscallSigs, sig.Sum64())
		}
		switch e.Kind {
		case trace.KindNT, trace.KindFlush:
			pending = append(pending, e.Seq)
		case trace.KindStore:
			ck.res.StoreEntries++
		case trace.KindFence:
			ck.res.Fences++
			ck.noteInFlight(len(pending))
			if len(pending) > 0 && ck.caps.Strong && !ck.cfg.PostOnly {
				if err := ck.enumerate(img, log, pending, e.Sys, lastDone); err != nil {
					return err
				}
			}
			// Advancing the persistent base past the fence is replay work.
			// The applied writes accumulate as the pending advance recipe;
			// commitBase folds them into one generation step right before
			// the next check dispatch. A fence with nothing in flight
			// changes no bytes and costs nothing.
			if len(pending) > 0 {
				at := ck.obs.Start()
				for _, idx := range pending {
					trace.Apply(img, log.At(idx))
				}
				ck.advAccum = append(ck.advAccum, pending...)
				ck.baseDirty = true
				ck.obs.ObserveSince(obs.StageReplay, at)
				pending = pending[:0]
			}
		case trace.KindSyscallEnd:
			lastDone = e.Sys
			if ck.shouldCheckPost(e.Sys) {
				if err := ck.cancelled(); err != nil {
					return err
				}
				ck.commitBase()
				out := ck.checkOne(img, log, crashState{}, crashCtx{phase: PhasePost, sys: e.Sys, oracleIdx: e.Sys + 1})
				ck.fold(out)
				if out.cancelled {
					return ck.cancelled()
				}
			}
		}
	}
	return nil
}

// shouldCheckPost selects post-syscall crash points: every call for strong
// systems, fsync-family calls for weak ones (§3.3, §4.1). An app-level
// OpKVSync is fsync-family — the store's commit point is an fsync on its
// WAL, which is exactly when a weak system makes durability promises.
func (ck *checker) shouldCheckPost(sys int) bool {
	if sys < 0 || sys >= len(ck.w.Ops) {
		return false
	}
	if ck.caps.Strong {
		return true
	}
	switch ck.w.Ops[sys].Kind {
	case workload.OpFsync, workload.OpFdatasync, workload.OpSync, workload.OpKVSync:
		return ck.res.OpResults[sys].Err == nil
	default:
		return false
	}
}

// enumerate generates the crash states of one fence, deduplicates subsets
// that materialize byte-identical images, and checks the distinct ones —
// serially or across the worker pool, with identical results either way.
func (ck *checker) enumerate(img []byte, log *trace.Log, pending []int, sys, lastDone int) error {
	ck.commitBase()
	full := pending
	if ck.cfg.VinterFilter {
		reads := ck.recoveryReadSet(img)
		kept := pending[:0:len(pending)]
		for _, idx := range pending {
			e := log.At(idx)
			if reads == nil || reads.Overlaps(e.Off, len(e.Data)) {
				kept = append(kept, idx)
			} else {
				ck.res.FilteredWrites++
			}
		}
		pending = kept
	}
	n := len(pending)
	cap := ck.cfg.Cap
	truncated := false
	if cap == 0 {
		limit := ck.cfg.ExhaustiveLimit
		if limit <= 0 {
			limit = DefaultExhaustiveLimit
		}
		fallback := ck.cfg.SafetyCap
		if fallback <= 0 {
			fallback = DefaultSafetyCap
		}
		if n > limit {
			cap = fallback
			truncated = true
		} else {
			cap = n
		}
	}
	if cap > n {
		cap = n
	}
	if truncated {
		ck.res.TruncatedFences++
	}

	ctx := fenceCtx(sys, lastDone)
	ctx.fence = ck.res.Fences // walk increments before enumerating: 1-based

	var fenceStart time.Time
	if ck.journal != nil {
		fenceStart = time.Now()
	}
	ft := ck.tracer.Begin()
	dt := ck.obs.Start()

	// Stream candidate subsets in canonical rank order — size ascending,
	// lexicographic within a size, the full set last when not already the
	// final combination — deduplicating as they are generated: each
	// candidate's key is computed from the enumerator's shared recursion
	// buffer, and only the distinct ones are saved (together with their
	// merged write spans and diff key, which the delta materializer reuses
	// as the replay and restore recipes). Duplicates cost one key
	// computation and zero allocations; distinct states cost arena bumps,
	// not per-state allocations. Rank order is the serial checking order,
	// so the parallel path can restore it when merging results.
	//
	// Dedup key: the exact byte diff against the base image, so equal keys
	// mean equal images — no hash collisions, no silently skipped distinct
	// states. Map keys are interned views over arena-saved bytes, never
	// over the shared key scratch.
	ck.resetFenceScratch()
	seen := ck.seen
	distinct := ck.distinct[:0]
	dedupedHere := 0
	admit := func(s []int) {
		k := ck.stateKey(img, log, s)
		if _, dup := seen[internKey(k)]; dup {
			ck.res.StatesDeduped++
			dedupedHere++
			return
		}
		key := internKey(ck.keyArena.save(k))
		seen[key] = struct{}{}
		distinct = append(distinct, crashState{
			subset: ck.subArena.save(s),
			spans:  ck.spanArena.save(ck.spans),
			key:    key,
			keyed:  true,
		})
	}
	// slices.Grow (not the cap builtin — shadowed by the subset-size cap
	// above) keeps the recursion buffer allocation-free across fences.
	ck.subsetBuf = slices.Grow(ck.subsetBuf[:0], n)
	subset := ck.subsetBuf
	for size := 1; size <= cap; size++ {
		combinations(pending, subset, 0, size, admit)
	}
	if cap < n || len(full) != len(pending) {
		// The full set is the next persistent base; always check it
		// (including when the Vinter filter kept nothing in flight).
		admit(full)
	}
	ck.distinct = distinct
	ck.obs.ObserveSince(obs.StageDedup, dt)

	// One immutable oracle snapshot per crash point, shared by every state
	// checked at it (nil when the contract has none or the knob is off).
	if ck.prep != nil && len(distinct) > 0 {
		c := ctx
		ck.prep.PrepareCrashPoint(c.check())
	}

	if err := ck.runChecks(img, log, distinct, ctx); err != nil {
		return err
	}
	ck.journal.Emit(obs.Event{
		Type: "fence", FS: ck.caps.Name, Workload: ck.w.Name,
		Fence: ctx.fence, Sys: sys, Phase: ctx.phase.String(),
		InFlight: n, States: len(distinct), Deduped: dedupedHere,
		DurNanos: sinceNanos(fenceStart),
	})
	ck.tracer.Span("fence", ft, ck.checkSpan, obs.Event{
		FS: ck.caps.Name, Workload: ck.w.Name,
		Fence: ctx.fence, Sys: sys, States: len(distinct),
	})
	return nil
}

// runChecks materializes and checks each distinct subset, inline or across
// Workers goroutines. Outcomes — violations, quarantine entries, retry
// accounting — are folded in subset-rank order either way, and
// StatesChecked counts exactly the states whose check reached a classified
// outcome (clean, violating, or quarantined).
func (ck *checker) runChecks(img []byte, log *trace.Log, distinct []crashState, cctx crashCtx) error {
	workers := ck.cfg.Workers
	if workers > len(distinct) {
		workers = len(distinct)
	}
	if workers <= 1 || len(distinct) < parallelThreshold {
		for rank, st := range distinct {
			if err := ck.cancelled(); err != nil {
				return err
			}
			c := cctx
			c.rank = rank
			out := ck.checkOne(img, log, st, c)
			ck.fold(out)
			if out.cancelled {
				return ck.cancelled()
			}
		}
		return nil
	}

	outcomes := slices.Grow(ck.outcomes[:0], len(distinct))[:len(distinct)]
	clear(outcomes)
	ck.outcomes = outcomes
	var next int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ck.cancelled() == nil {
				j := int(atomic.AddInt64(&next, 1)) - 1
				if j >= len(distinct) {
					return
				}
				c := cctx
				c.rank = j
				outcomes[j] = ck.checkOne(img, log, distinct[j], c)
			}
		}()
	}
	wg.Wait()
	for _, out := range outcomes {
		ck.fold(out)
	}
	return ck.cancelled()
}

// stateKey returns a canonical fingerprint of the crash image base+subset
// materializes: the exact byte runs where that image differs from base,
// encoded as (offset, length, bytes) records. Two subsets produce identical
// crash images if and only if their keys are equal. The returned slice
// aliases ck.keyBuf, valid until the next call — callers that keep a key
// arena-save it first. Coordinator-only (it reuses ck.scratch).
func (ck *checker) stateKey(base []byte, log *trace.Log, subset []int) []byte {
	// Collect and coalesce the written intervals once; the merged spans are
	// the materializer's replay recipe and the dedup scan's bounds.
	spans := ck.spans[:0]
	for _, idx := range subset {
		e := log.At(idx)
		if len(e.Data) == 0 {
			continue
		}
		spans = append(spans, span{e.Off, e.Off + int64(len(e.Data))})
	}
	raw := len(spans)
	merged := coalesceSpans(spans)
	ck.spans = merged
	ck.spansCoalesced += int64(raw - len(merged))

	// Materialize the written ranges into the scratch buffer, in program
	// order (ascending log index — the same last-writer-wins order replay
	// uses). Every byte of every merged span is covered by some write's
	// extent — the spans ARE the union of those extents — so the applies
	// fully overwrite the scanned region and no base pre-copy is needed:
	// scratch bytes outside the spans are never read.
	for _, idx := range subset {
		trace.Apply(ck.scratch, log.At(idx))
	}

	// Emit the differing runs. Distinct merged spans are separated by at
	// least one unwritten (base-equal) byte, so runs never cross a span
	// boundary and this per-span scan emits exactly the records a
	// whole-image diff would.
	// The scans move a word at a time where all eight byte pairs agree
	// (wholly equal, or wholly differing — no zero byte in the XOR), falling
	// back to bytes at run edges, so run boundaries — and therefore keys —
	// are bit-identical to the byte-at-a-time scan.
	key := ck.keyBuf[:0]
	for _, s := range merged {
		i := s.lo
		for i < s.hi {
			for i+8 <= s.hi && binary.LittleEndian.Uint64(ck.scratch[i:]) == binary.LittleEndian.Uint64(base[i:]) {
				i += 8
			}
			for i < s.hi && ck.scratch[i] == base[i] {
				i++
			}
			if i >= s.hi {
				break
			}
			j := i + 1
			for j+8 <= s.hi && !hasZeroByte(binary.LittleEndian.Uint64(ck.scratch[j:])^binary.LittleEndian.Uint64(base[j:])) {
				j += 8
			}
			for j < s.hi && ck.scratch[j] != base[j] {
				j++
			}
			key = binary.BigEndian.AppendUint64(key, uint64(i))
			key = binary.BigEndian.AppendUint32(key, uint32(j-i))
			key = append(key, ck.scratch[i:j]...)
			i = j
		}
	}
	ck.keyBuf = key
	return key
}

// hasZeroByte reports whether any byte of x is zero (the classic SWAR
// zero-byte test), i.e. whether an 8-byte XOR window contains an equal pair.
func hasZeroByte(x uint64) bool {
	return (x-0x0101010101010101)&^x&0x8080808080808080 != 0
}

// coalesceSpans sorts spans by start and merges overlapping or touching
// intervals in place, returning the merged prefix. Touching spans merge
// (lo == hi), so distinct merged spans are always separated by at least one
// byte no write covers — the invariant stateKey's per-span diff scan and the
// coalesced apply/revert paths rely on.
func coalesceSpans(spans []span) []span {
	if len(spans) < 2 {
		return spans
	}
	slices.SortFunc(spans, func(a, b span) int {
		switch {
		case a.lo < b.lo:
			return -1
		case a.lo > b.lo:
			return 1
		default:
			return 0
		}
	})
	merged := spans[:0]
	for _, s := range spans {
		if len(merged) > 0 && s.lo <= merged[len(merged)-1].hi {
			if s.hi > merged[len(merged)-1].hi {
				merged[len(merged)-1].hi = s.hi
			}
			continue
		}
		merged = append(merged, s)
	}
	return merged
}

// resetFenceScratch readies the per-fence scratch for reuse: normally the
// arenas rewind and the dedup map clears in place (zero allocations in
// steady state). If any sandbox goroutine was abandoned since the last
// fence, the arenas are dropped instead — the goroutine may still be
// reading last fence's subset/spans/key saves, and reusing their memory
// would race with it. Abandonments are rare (deterministic hangs, run
// cancellation), so the steady state stays allocation-free.
func (ck *checker) resetFenceScratch() {
	if n := ck.abandoned.Load(); n != ck.abandonedSeen {
		ck.abandonedSeen = n
		ck.subArena.drop()
		ck.spanArena.drop()
		ck.keyArena.drop()
		ck.seen = nil
		ck.distinct = nil
		ck.outcomes = nil
	} else {
		ck.subArena.reset()
		ck.spanArena.reset()
		ck.keyArena.reset()
	}
	if ck.seen == nil {
		ck.seen = make(map[string]struct{}, 64)
	} else {
		clear(ck.seen)
	}
}

// commitBase folds the writes fences applied since the last check dispatch
// into one generation step: advance becomes the accumulated recipe and
// baseGen bumps once. Coordinator-only, called immediately before dispatching
// checks — so every pooled image primed at the previous dispatch is exactly
// one generation (one advance replay) behind, never more.
func (ck *checker) commitBase() {
	if !ck.baseDirty {
		return
	}
	ck.advance, ck.advAccum = ck.advAccum, ck.advance[:0]
	ck.baseGen++
	ck.advGen = ck.baseGen
	ck.baseDirty = false
}

// fenceCtx builds the crash context for a fence inside syscall sys (or
// deferred work after lastDone).
func fenceCtx(sys, lastDone int) crashCtx {
	if sys < 0 {
		return crashCtx{phase: PhasePost, sys: lastDone, oracleIdx: lastDone + 1}
	}
	return crashCtx{phase: PhaseMid, sys: sys, oracleIdx: sys}
}

// combinations enumerates size-k subsets of pending[from:] recursively,
// passing each to emit in lexicographic order.
func combinations(pending, subset []int, from, size int, emit func([]int)) {
	if size == 0 {
		emit(subset)
		return
	}
	for i := from; i <= len(pending)-size; i++ {
		combinations(pending, append(subset, pending[i]), i+1, size-1, emit)
	}
}

func (ck *checker) noteInFlight(n int) {
	for len(ck.res.InFlightCounts) <= n {
		ck.res.InFlightCounts = append(ck.res.InFlightCounts, 0)
	}
	ck.res.InFlightCounts[n]++
	if n > ck.res.MaxInFlight {
		ck.res.MaxInFlight = n
	}
}

// sizeBucket maps a write size to a coarse bucket for trace signatures.
func sizeBucket(n int) byte {
	switch {
	case n == 0:
		return 0
	case n <= 8:
		return 1
	case n <= 64:
		return 2
	case n <= 512:
		return 3
	case n <= 4096:
		return 4
	default:
		return 5
	}
}
