// Package core is the Chipmunk engine: it records the persistence-function
// trace of a workload, constructs crash states by replaying subsets of
// in-flight writes at every store fence, mounts the target file system on
// each state, and checks the recovered state against an oracle (§3.3 of the
// paper).
package core

import (
	"context"
	"fmt"
	"time"

	"chipmunk/internal/fs/memfs"
	"chipmunk/internal/obs"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// DefaultDevSize is the simulated PM device size used for testing; the
// paper uses two 128 MB emulated devices, scaled down here because our
// workloads are the same small ACE/fuzzer programs.
const DefaultDevSize = 1 << 20

// DefaultExhaustiveLimit bounds exhaustive subset enumeration: fences with
// more in-flight writes than this fall back to DefaultSafetyCap and the
// truncation is counted (never silent — Result.TruncatedFences reports it).
// Both are configurable per run via Config.ExhaustiveLimit / SafetyCap.
const (
	DefaultExhaustiveLimit = 14
	DefaultSafetyCap       = 3
)

// Sandbox defaults: every per-crash-state check runs under a watchdogged
// goroutine with panic containment (see sandbox.go). A check that panics or
// exceeds the deadline is retried with backoff to separate transient
// failures (pool pressure) from deterministic ones; deterministic failures
// are quarantined, never silently dropped.
const (
	DefaultCheckTimeout = time.Second
	DefaultCheckRetries = 2
)

// Config describes one system under test.
type Config struct {
	// NewFS builds the file system (with its bug set baked in) over a PM.
	// It is called once for the execution device and once per crash state.
	NewFS func(pm *persist.PM) vfs.FS
	// DevSize is the simulated device size (DefaultDevSize if zero).
	DevSize int64
	// Cap bounds the size of replayed in-flight subsets (0 = exhaustive,
	// the setting used for ACE runs; the paper uses 2 for fuzzing).
	Cap int
	// Workers is the number of goroutines checking crash states inside one
	// engine run (<= 1 = serial) — the in-process analogue of the paper's
	// VM farm (§4.2), applied at the fence level. Results are guaranteed
	// byte-identical to a serial run: subsets are enumerated, deduplicated,
	// and reported in canonical rank order regardless of worker count.
	Workers int
	// TraceStores enables instruction-level tracing (the Yat/Vinter-style
	// ablation); the engine ignores KindStore entries, so this only adds
	// overhead and statistics.
	TraceStores bool
	// SkipUsability disables the usability probe phase (used by ablations).
	SkipUsability bool
	// PostOnly restricts crash points to system-call boundaries even for
	// strong systems — the policy of disk-era tools like CrashMonkey,
	// used to measure Observation 5 (how many bugs need mid-call crashes).
	PostOnly bool
	// VinterFilter enables the recovery-read-set heuristic from Vinter
	// (§6.2): at each fence the base image is mounted once with PM reads
	// recorded, and only in-flight writes overlapping what recovery read
	// participate in subset enumeration (the full set is always checked).
	// This trades coverage for state count — data writes that only the
	// post-recovery comparison reads can be filtered away, which is
	// exactly why the paper's tool checks more states than Vinter.
	VinterFilter bool
	// CheckTimeout is the per-crash-state check deadline: a check that
	// exceeds it is abandoned and classified VTimeout (0 = the
	// DefaultCheckTimeout of 1s; negative = no deadline, panic containment
	// only).
	CheckTimeout time.Duration
	// CheckRetries bounds the retry-with-backoff applied to a check that
	// panicked or timed out, distinguishing transient failures (pool
	// pressure) from deterministic ones (0 = DefaultCheckRetries;
	// negative = no retries).
	CheckRetries int
	// DisableSandbox runs every check inline on the caller's goroutine — the
	// pre-sandbox engine, kept for differential testing. A panicking or
	// hanging guest then takes the engine down with it. Ignored (the sandbox
	// is forced) when Faults is enabled, because media errors surface as
	// panics only the sandbox can classify.
	DisableSandbox bool
	// DisableDeltaMaterialize materializes every crash state by two full
	// device copies into pooled buffers — the pre-O(diff) engine — instead
	// of the default prime-once/delta-apply/rollback-after path. Kept for
	// differential testing (mirroring DisableSandbox): results are
	// guaranteed byte-identical either way; only the copy cost differs.
	DisableDeltaMaterialize bool
	// DisableCoalescedApply materializes and reverts each crash state per
	// in-flight store instead of per coalesced byte-diff run — the
	// pre-coalescing delta engine. Kept for differential testing (results
	// are guaranteed byte-identical; only the copy count differs). Fault
	// injection always uses the per-store path regardless, because torn
	// stores are a per-store phenomenon.
	DisableCoalescedApply bool
	// DisableOracleSnapshot stops the engine from offering contracts the
	// per-crash-point preparation hook (CrashPointPreparer): every check
	// then re-derives the oracle-visible view itself, as the pre-snapshot
	// engine did. Kept for differential testing — verdicts are guaranteed
	// byte-identical; only the per-check setup cost differs.
	DisableOracleSnapshot bool
	// DisableBufferReuse gives every device-sized buffer and pooled crash
	// image a fresh allocation instead of recycling it through the
	// process-wide size-keyed pools — the pre-pooling allocation behavior.
	// Kept for differential testing: byte-identical results, pessimal
	// allocation rate.
	DisableBufferReuse bool
	// ExhaustiveLimit overrides the exhaustive-enumeration bound: fences
	// with more in-flight writes fall back to SafetyCap, counted in
	// Result.TruncatedFences (0 = DefaultExhaustiveLimit).
	ExhaustiveLimit int
	// SafetyCap is the subset-size cap truncated fences fall back to
	// (0 = DefaultSafetyCap).
	SafetyCap int
	// Faults enables the opt-in pmem fault injector for crash-state checks:
	// torn stores, seeded bit corruption, and read-time media errors (see
	// pmem.FaultConfig). Faults apply only to the materialized crash images
	// and the devices mounted on them, never to the recording pass.
	Faults *pmem.FaultConfig
	// Obs, when non-nil, enables per-stage metrics: the run records into a
	// private collector (lock-free, safe from check workers), publishes the
	// frozen per-workload snapshot as Result.Obs, and merges it into Obs at
	// workload end so a long campaign's live totals can be watched via the
	// debug server. Nil disables collection at zero hot-path cost.
	Obs *obs.Collector
	// Journal, when non-nil, receives one event per workload, fence,
	// violation, quarantine, and sandbox retry — the append-only JSONL run
	// journal (-journal). All events are emitted from the coordinator, so
	// the journal's order-normalized event set is identical between serial
	// and parallel runs of the same suite.
	Journal *obs.Journal
	// Tracer, when non-nil, emits deterministic "span" events into its
	// journal covering the engine stages of this run: a "workload" root span
	// with "oracle", "record", and "check" children, plus one "fence" span
	// per enumerated fence. Span IDs are pure functions of work coordinates
	// (see obs.Tracer), and all engine spans are emitted from the
	// coordinator goroutine, so the canonical span multiset is identical
	// across worker counts — the same contract Journal events honor.
	Tracer *obs.Tracer
	// Checker selects the correctness contract applied to every mounted
	// crash state (nil = NewOracleChecker, the classic FS-oracle comparison,
	// byte-identical to the pre-seam engine). The factory runs once per
	// workload, after the oracle and record passes, so the Checker sees the
	// frozen RunEnv.
	Checker CheckerFactory
	// AppFactory builds the application under test (e.g. the WAL KV store
	// of internal/app/kvstore) for workloads containing app-level ops
	// (workload.OpKVPut etc.). The executor instantiates it lazily on both
	// the oracle and the record pass; a workload with app-level ops and a
	// nil AppFactory fails the run loudly rather than skipping ops.
	AppFactory workload.AppFactory
}

// Phase says when the simulated crash happened.
type Phase uint8

const (
	// PhaseMid is a crash during a system call.
	PhaseMid Phase = iota
	// PhasePost is a crash after a system call completed.
	PhasePost
)

func (p Phase) String() string {
	if p == PhasePost {
		return "post-syscall"
	}
	return "mid-syscall"
}

// ViolationKind classifies what the checker observed.
type ViolationKind uint8

const (
	// VUnmountable: the file system failed to mount the crash state.
	VUnmountable ViolationKind = iota
	// VUnreadable: the mounted state could not be fully read (EIO).
	VUnreadable
	// VSynchrony: a post-syscall state differs from the oracle.
	VSynchrony
	// VAtomicity: a mid-syscall state mixes pre- and post-op versions or
	// matches neither.
	VAtomicity
	// VUsability: creating or deleting files on the recovered state failed.
	VUsability
	// VOpBehavior: a system call's live result diverged from the oracle
	// (a non-crash-consistency bug, cf. §4.4).
	VOpBehavior
	// VPanic: checking the crash state panicked deterministically inside
	// the sandbox (the in-process analogue of a guest kernel crash taking
	// down one of the paper's VMs). The state is also quarantined.
	VPanic
	// VTimeout: checking the crash state exceeded the per-check deadline
	// deterministically (a recovery hang). The state is also quarantined.
	VTimeout
	// VAppContract: an application-level correctness contract failed on the
	// recovered state (a pluggable Checker's Finding — e.g. the KV store's
	// acked-durability contract). Violation.Contract names which one.
	VAppContract
)

var kindNames = [...]string{
	VUnmountable: "unmountable",
	VUnreadable:  "unreadable",
	VSynchrony:   "synchrony-violation",
	VAtomicity:   "atomicity-violation",
	VUsability:   "usability-failure",
	VOpBehavior:  "op-behavior-divergence",
	VPanic:       "check-panic",
	VTimeout:     "check-timeout",
	VAppContract: "app-contract-violation",
}

func (k ViolationKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("ViolationKind(%d)", uint8(k))
}

// Violation is one crash-consistency bug report.
type Violation struct {
	FS       string
	Workload workload.Workload
	Syscall  int    // index of the implicated call (-1 if none)
	SysName  string // rendering of that call
	Phase    Phase
	Subset   []int // in-flight write indices replayed into the crash state
	Kind     ViolationKind
	// Contract names the application contract that failed (Finding.Contract
	// of the run's pluggable Checker); empty for the built-in FS-oracle
	// checks, whose Kind already names the contract.
	Contract string
	Detail   string
}

// String renders the report the way Chipmunk's bug reports look.
func (v Violation) String() string {
	kind := v.Kind.String()
	if v.Contract != "" {
		kind = fmt.Sprintf("%s (contract %s)", kind, v.Contract)
	}
	return fmt.Sprintf("[%s] %s during %q (%s, subset %v)\n  workload: %s\n  detail: %s",
		v.FS, kind, v.SysName, v.Phase, v.Subset, v.Workload, v.Detail)
}

// Quarantine is one ledger entry for a crash state whose check failed
// deterministically inside the sandbox — it panicked or hung on every
// attempt. The entry pins down exactly which state was implicated (fence
// ordinal, canonical subset rank, byte-diff key digest) so the census can
// complete without it while never silently dropping it: the same
// "never silent" contract as TruncatedFences and StatesDeduped.
type Quarantine struct {
	// Workload names the run the state belongs to.
	Workload string
	// Fence is the 1-based fence ordinal the state was generated at
	// (0 for post-syscall states, which have no fence).
	Fence int
	// Sys is the implicated syscall index (-1 if none) and Phase the crash
	// phase, as in Violation.
	Sys   int
	Phase Phase
	// Rank is the state's canonical rank among the distinct subsets checked
	// at this crash point (the serial checking order).
	Rank int
	// Subset holds the replayed in-flight write indices (nil = all fenced).
	Subset []int
	// StateKey is the FNV-64a digest of the state's byte-diff key against
	// the fence's base image — the same identity dedup keys on.
	StateKey uint64
	// Kind is VPanic or VTimeout; Detail the deterministic one-line cause.
	Kind   ViolationKind
	Detail string
	// Stack is the captured guest stack for panics. Diagnostic only: stack
	// traces contain addresses, so Stack is excluded from the determinism
	// contract that the rest of the entry honors.
	Stack string
	// Attempts is how many times the check was tried before quarantine.
	Attempts int
}

func (q Quarantine) String() string {
	return fmt.Sprintf("quarantined [%s] %s at %s sys=%d (fence %d, rank %d, subset %v, key %016x, %d attempts): %s",
		q.Workload, q.Kind, q.Phase, q.Sys, q.Fence, q.Rank, q.Subset, q.StateKey, q.Attempts, q.Detail)
}

// Result aggregates one workload run.
type Result struct {
	Violations      []Violation
	StatesChecked   int
	Fences          int
	TruncatedFences int
	// StatesDeduped counts fence subsets whose replayed crash image was
	// byte-identical to one already checked at the same crash point and
	// were therefore skipped. Like TruncatedFences, skipping is never
	// silent: every deduplicated state is counted here.
	StatesDeduped int
	// InFlightCounts histograms the in-flight set size at each fence
	// (Observation 7 / §3.2 measurements).
	InFlightCounts []int
	// MaxInFlight is the largest in-flight set observed.
	MaxInFlight int
	// StoreEntries counts KindStore trace entries (per-store ablation).
	StoreEntries int
	// FilteredWrites counts in-flight writes the Vinter read-set heuristic
	// excluded from subset enumeration.
	FilteredWrites int
	// SuppressedViolations counts reports beyond the per-run bound.
	SuppressedViolations int
	// Quarantined is the quarantine ledger: crash states whose check
	// panicked or hung on every sandboxed attempt. Each is also classified
	// as a VPanic/VTimeout violation; the ledger carries the forensic
	// identity (fence, rank, byte-diff key) needed to re-materialize the
	// state. Bounded like Violations; overflow lands in
	// SuppressedQuarantine, never silently dropped.
	Quarantined          []Quarantine
	SuppressedQuarantine int
	// RetriedChecks counts checks that succeeded only after a sandbox
	// retry — transient failures (pool pressure), as opposed to the
	// deterministic ones the ledger records.
	RetriedChecks int
	OpResults     []workload.Result
	// Obs is the run's frozen per-stage metrics snapshot (nil when
	// Config.Obs was nil). Counters mirror the Result fields exactly —
	// they are set from them at run end — so serial and parallel runs
	// carry identical counter totals; stage durations are wall-clock
	// measurements and vary with scheduling.
	Obs *obs.Snapshot
	// SyscallSigs holds one hash per system call summarizing the shape of
	// its persistence-function trace (kinds, bucketed sizes, fences). The
	// fuzzer uses these as its gray-box coverage signal: Go cannot
	// self-instrument kernel-style kcov, so trace-shape novelty stands in
	// for branch coverage (see DESIGN.md).
	SyscallSigs []uint64
}

// Buggy reports whether any violation was found.
func (r *Result) Buggy() bool { return len(r.Violations) > 0 }

// RunContext executes the full Chipmunk pipeline for one workload. The
// context cancels the run between crash-state checks; a cancelled run
// returns ctx's error and no result.
func RunContext(ctx context.Context, cfg Config, w workload.Workload) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cfg.AppFactory == nil && w.HasAppOps() {
		return nil, fmt.Errorf("workload %s contains app-level ops but Config.AppFactory is nil", w.Name)
	}
	devSize := cfg.DevSize
	if devSize == 0 {
		devSize = DefaultDevSize
	}

	// Observability: a per-run collector keeps worker recording lock-free
	// and gives the workload its own attribution; the frozen snapshot is
	// merged into cfg.Obs at run end. Both stay nil when disabled.
	var col *obs.Collector
	if cfg.Obs != nil {
		col = obs.New()
	}
	var runStart time.Time
	if cfg.Obs != nil || cfg.Journal != nil {
		runStart = time.Now()
	}
	// Spans: the root "workload" span is emitted last (after its children —
	// parents complete after children), so its ID is precomputed here for
	// the children to reference.
	tr := cfg.Tracer
	runBegin := tr.Begin()
	wlSpan := tr.ID("workload", w.Name, 0, 0)

	// --- Oracle pass: run the workload on the reference model, recording
	// the observable state around every system call.
	obegin := tr.Begin()
	ot := col.Start()
	oracle := memfs.New()
	if err := oracle.Mkfs(); err != nil {
		return nil, fmt.Errorf("oracle mkfs: %w", err)
	}
	states := make([]vfs.State, 0, len(w.Ops)+1)
	var oracleErr error
	oracleResults := workload.Run(oracle, w, workload.Hooks{
		Before: func(i int, op workload.Op) {
			st, err := vfs.Capture(oracle)
			if err != nil && oracleErr == nil {
				oracleErr = err
			}
			states = append(states, st)
		},
		App: cfg.AppFactory,
	})
	if oracleErr != nil {
		return nil, fmt.Errorf("oracle capture: %w", oracleErr)
	}
	final, err := vfs.Capture(oracle)
	if err != nil {
		return nil, fmt.Errorf("oracle final capture: %w", err)
	}
	states = append(states, final)
	col.ObserveSince(obs.StageOracle, ot)
	// The oracle pass runs on the reference model, not the target, so its
	// span carries no FS attribution.
	tr.Span("oracle", obegin, wlSpan, obs.Event{Workload: w.Name})

	// --- Record pass: run the workload on the target, tracing writes. The
	// device images and the baseline crash image are pooled grabs — nothing
	// retains them past the run (workload results carry no device memory,
	// and walk's sandbox goroutines never see these buffers), so they
	// recycle at return. WrapImages requires the just-rebooted
	// volatile == persistent invariant, which two zeroed buffers satisfy.
	rbegin := tr.Begin()
	rt := col.Start()
	recVol := grabZeroBuf(int(devSize), cfg.DisableBufferReuse)
	recPers := grabZeroBuf(int(devSize), cfg.DisableBufferReuse)
	defer putBuf(recVol, cfg.DisableBufferReuse)
	defer putBuf(recPers, cfg.DisableBufferReuse)
	dev := pmem.WrapImages(recVol, recPers)
	pm := persist.New(dev)
	pm.TraceStores = cfg.TraceStores
	target := cfg.NewFS(pm)
	if err := target.Mkfs(); err != nil {
		return nil, fmt.Errorf("target mkfs: %w", err)
	}
	baseline := grabBuf(int(devSize), cfg.DisableBufferReuse)
	defer putBuf(baseline, cfg.DisableBufferReuse)
	dev.CrashImageInto(baseline)
	log := grabLog(cfg.DisableBufferReuse)
	rec := persist.NewRecorder(log)
	pm.Attach(rec)
	targetResults := workload.Run(target, w, workload.Hooks{
		Before: func(i int, op workload.Op) { log.BeginSyscall(i, op.String()) },
		After:  func(i int, op workload.Op, err error) { log.EndSyscall(i, op.String()) },
		App:    cfg.AppFactory,
	})
	pm.Detach(rec)
	caps := target.Caps()
	col.ObserveSince(obs.StageRecord, rt)
	dev.Stats().Feed(col)
	tr.Span("record", rbegin, wlSpan, obs.Event{FS: caps.Name, Workload: w.Name})

	res := &Result{OpResults: targetResults}

	// --- Live-behaviour comparison (non-crash bugs).
	for i := range targetResults {
		te, oe := targetResults[i].Err, oracleResults[i].Err
		if te != nil && te == vfs.ErrNoSpace {
			continue // the reference model has unbounded space
		}
		if (te == nil) != (oe == nil) {
			res.Violations = append(res.Violations, Violation{
				FS: caps.Name, Workload: w, Syscall: i,
				SysName: targetResults[i].Op.String(), Phase: PhasePost,
				Kind:   VOpBehavior,
				Detail: fmt.Sprintf("live result %v, oracle %v", te, oe),
			})
		}
	}

	// --- Crash-state construction and checking. The run's contract is
	// built here, once, over the frozen RunEnv; checkState applies it to
	// every mounted crash state.
	factory := cfg.Checker
	if factory == nil {
		factory = NewOracleChecker
	}
	contract := factory(RunEnv{
		Caps:          caps,
		Workload:      w,
		OracleStates:  states,
		OpResults:     targetResults,
		SkipUsability: cfg.SkipUsability,
		Obs:           col,
	})
	cbegin := tr.Begin()
	ck := &checker{ctx: ctx, cfg: cfg, caps: caps, w: w, contract: contract, res: res,
		obs: col, journal: cfg.Journal,
		tracer: tr, checkSpan: tr.ID("check", w.Name, 0, 0),
		runID: runIDs.Add(1)}
	if !cfg.DisableOracleSnapshot {
		ck.prep, _ = contract.(CrashPointPreparer)
	}
	if err := ck.walk(baseline, log); err != nil {
		return nil, err
	}
	if !cfg.DisableBufferReuse && ck.abandoned.Load() == 0 {
		logPool.Put(log)
	}
	tr.Span("check", cbegin, wlSpan, obs.Event{
		FS: caps.Name, Workload: w.Name, States: res.StatesChecked,
	})

	// Freeze the run's metrics. Counters are copied from the Result fields
	// — not accumulated on the hot path — so snapshot counters and Result
	// agree exactly, and serial == parallel totals follow from the
	// engine's own determinism guarantee.
	if col != nil {
		col.Add(obs.CtrWorkloads, 1)
		col.Add(obs.CtrSpansCoalesced, ck.spansCoalesced)
		col.Add(obs.CtrFences, int64(res.Fences))
		col.Add(obs.CtrStatesChecked, int64(res.StatesChecked))
		col.Add(obs.CtrDedupHits, int64(res.StatesDeduped))
		col.Add(obs.CtrTruncatedFences, int64(res.TruncatedFences))
		col.Add(obs.CtrSandboxRetries, int64(res.RetriedChecks))
		col.Add(obs.CtrQuarantines, int64(len(res.Quarantined)+res.SuppressedQuarantine))
		col.Add(obs.CtrViolations, int64(len(res.Violations)+res.SuppressedViolations))
		snap := col.Snapshot()
		res.Obs = &snap
		cfg.Obs.Merge(snap)
	}
	tr.Span("workload", runBegin, "", obs.Event{
		FS: caps.Name, Workload: w.Name,
		Fences: res.Fences, Violations: len(res.Violations) + res.SuppressedViolations,
	})
	cfg.Journal.Emit(obs.Event{
		Type: "workload", FS: caps.Name, Workload: w.Name, Sys: -1,
		States: res.StatesChecked, Deduped: res.StatesDeduped,
		Fences: res.Fences, Violations: len(res.Violations) + res.SuppressedViolations,
		DurNanos: sinceNanos(runStart),
	})
	return res, nil
}

// sinceNanos returns the elapsed nanoseconds since start, or 0 for the
// zero time (observability disabled).
func sinceNanos(start time.Time) int64 {
	if start.IsZero() {
		return 0
	}
	return time.Since(start).Nanoseconds()
}
