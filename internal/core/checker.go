package core

import (
	"fmt"
	"time"

	"chipmunk/internal/obs"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
)

// checkState mounts the target file system on one crash state and applies
// the run's correctness contract (§3.3): mountability is classified here —
// recovery itself failing is a bug no contract needs to see — and every
// mountable state is handed to the pluggable Checker (the FS-oracle
// comparison by default, an application contract like the KV store's when
// Config.Checker says so). The first failed check produces the state's
// violation (nil when the state is legal). The device is this call's
// private, just-rebooted view of the crash image (optionally carrying an
// attached fault injector), so checkState is goroutine-safe; it normally
// runs inside the sandbox (sandbox.go), which converts guest panics, media
// faults, and hangs into classified outcomes.
//
// The stage windows tile across the sandbox handoff so the -stats sum
// tracks wall-clock: mountStart is an already-open mount window (opened by
// the caller before spawning the sandbox goroutine, so the spawn and
// scheduling costs bill to mount), and the returned checkStart is the open
// check window, closed by the caller after the sandbox hands the result
// back. Both are the zero time when observability is off.
func (ck *checker) checkState(dev *pmem.Device, ctx crashCtx, mountStart time.Time) (v *Violation, checkStart time.Time) {
	fs := ck.cfg.NewFS(persist.New(dev))

	err := fs.Mount()
	ck.obs.ObserveSince(obs.StageMount, mountStart)
	ct := ck.obs.Start()
	if err != nil {
		return ck.violation(ctx, VUnmountable, fmt.Sprintf("mount failed: %v", err)), ct
	}

	if f := ck.contract.Check(fs, ctx.check()); f != nil {
		v := ck.violation(ctx, f.Kind, f.Detail)
		v.Contract = f.Contract
		return v, ct
	}
	return nil, ct
}

// recoveryReadSet mounts the base image once with PM reads recorded,
// returning the cache lines recovery consulted — the Vinter heuristic's
// input. A failed mount returns nil (no filtering: everything is relevant
// when recovery itself is broken); a panicking mount is contained the same
// way — this runs on the coordinator, outside the per-state sandbox.
func (ck *checker) recoveryReadSet(img []byte) (rs *persist.ReadSet) {
	defer func() {
		if recover() != nil {
			rs = nil
		}
	}()
	dev := pmem.FromImage(img)
	pm := persist.New(dev)
	reads := persist.NewReadSet()
	pm.Attach(reads)
	fs := ck.cfg.NewFS(pm)
	if err := fs.Mount(); err != nil {
		return nil
	}
	return reads
}

// violation builds (but does not record) the report for one failed check.
func (ck *checker) violation(ctx crashCtx, kind ViolationKind, detail string) *Violation {
	sysName := ""
	if ctx.sys >= 0 && ctx.sys < len(ck.w.Ops) {
		sysName = ck.w.Ops[ctx.sys].String()
	}
	return &Violation{
		FS:       ck.caps.Name,
		Workload: ck.w,
		Syscall:  ctx.sys,
		SysName:  sysName,
		Phase:    ctx.phase,
		// Cloned, not aliased: violations outlive the fence whose arena
		// backs ctx.subset (see arena.go). Empty subsets stay nil.
		Subset: append([]int(nil), ctx.subset...),
		Kind:   kind,
		Detail: detail,
	}
}

// reportViolation records a violation (bounded; overflow is counted).
// Coordinator-only: parallel workers return violations to the coordinator,
// which appends them in subset-rank order.
func (ck *checker) reportViolation(v Violation) {
	if len(ck.res.Violations) >= maxViolationsPerRun {
		ck.res.SuppressedViolations++
		return
	}
	ck.res.Violations = append(ck.res.Violations, v)
}

// report records a violation for the given crash context (bounded).
func (ck *checker) report(ctx crashCtx, kind ViolationKind, detail string) {
	ck.reportViolation(*ck.violation(ctx, kind, detail))
}
