package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"chipmunk/internal/obs"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// checkState mounts the target file system on one crash state and applies
// the consistency checks of §3.3: mountability, oracle comparison (synchrony
// for post-syscall states, atomicity for mid-syscall states), and the
// usability probe. The first failed check produces the state's violation
// (nil when the state is legal). The device is this call's private,
// just-rebooted view of the crash image (optionally carrying an attached
// fault injector), so checkState is goroutine-safe; it normally runs inside
// the sandbox (sandbox.go), which converts guest panics, media faults, and
// hangs into classified outcomes.
//
// The stage windows tile across the sandbox handoff so the -stats sum
// tracks wall-clock: mountStart is an already-open mount window (opened by
// the caller before spawning the sandbox goroutine, so the spawn and
// scheduling costs bill to mount), and the returned checkStart is the open
// check window, closed by the caller after the sandbox hands the result
// back. Both are the zero time when observability is off.
func (ck *checker) checkState(dev *pmem.Device, ctx crashCtx, mountStart time.Time) (v *Violation, checkStart time.Time) {
	fs := ck.cfg.NewFS(persist.New(dev))

	err := fs.Mount()
	ck.obs.ObserveSince(obs.StageMount, mountStart)
	ct := ck.obs.Start()
	if err != nil {
		return ck.violation(ctx, VUnmountable, fmt.Sprintf("mount failed: %v", err)), ct
	}

	st, err := vfs.Capture(fs)
	if err != nil {
		return ck.violation(ctx, VUnreadable, fmt.Sprintf("reading recovered state failed: %v", err)), ct
	}

	switch ctx.phase {
	case PhasePost:
		if ctx.oracleIdx >= 0 && ctx.oracleIdx < len(ck.states) {
			if d := vfs.Diff(st, ck.states[ctx.oracleIdx]); d != "" {
				return ck.violation(ctx, VSynchrony, d), ct
			}
		}
	case PhaseMid:
		if detail := ck.checkAtomic(st, ctx); detail != "" {
			return ck.violation(ctx, VAtomicity, detail), ct
		}
	}

	if !ck.cfg.SkipUsability {
		if detail := ck.usability(fs, st); detail != "" {
			return ck.violation(ctx, VUsability, detail), ct
		}
	}
	return nil, ct
}

// checkAtomic validates a mid-syscall crash state: every file the call
// modifies must match either the pre-call or post-call oracle version, all
// of them the same version; untouched files must be untouched (§3.3
// "Testing crash states").
func (ck *checker) checkAtomic(crash vfs.State, ctx crashCtx) string {
	if ctx.sys < 0 || ctx.sys+1 >= len(ck.states) {
		return ""
	}
	pre := ck.states[ctx.sys]
	post := ck.states[ctx.sys+1]

	paths := map[string]bool{}
	for p := range pre {
		paths[p] = true
	}
	for p := range post {
		paths[p] = true
	}
	for p := range crash {
		paths[p] = true
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)

	var sawPre, sawPost []string
	for _, p := range sorted {
		preF, inPre := pre[p]
		postF, inPost := post[p]
		crashF, inCrash := crash[p]

		modified := inPre != inPost || (inPre && inPost && !preF.Equal(postF))
		if !modified {
			// Untouched by this call: must match exactly (or be equally
			// absent).
			if inPre != inCrash {
				return fmt.Sprintf("%s: untouched file presence changed (crash has it: %v)", p, inCrash)
			}
			if inPre && !preF.Equal(crashF) {
				return fmt.Sprintf("%s: untouched file changed\n  crash:  %s\n  oracle: %s",
					p, crashF.Describe(), preF.Describe())
			}
			continue
		}

		matchPre := inPre == inCrash && (!inPre || preF.Equal(crashF))
		matchPost := inPost == inCrash && (!inPost || postF.Equal(crashF))
		switch {
		case matchPre:
			sawPre = append(sawPre, p)
		case matchPost:
			sawPost = append(sawPost, p)
		case ck.mixAllowed(ctx, p) && inCrash && byteMixOK(preF, postF, crashF, inPre, inPost):
			// A torn data write on a system without atomic writes: legal,
			// and consistent with either version.
		default:
			detail := fmt.Sprintf("%s: matches neither pre- nor post-op state", p)
			if inCrash {
				detail += "\n  crash:  " + crashF.Describe()
			} else {
				detail += "\n  crash:  (missing)"
			}
			if inPre {
				detail += "\n  pre:    " + preF.Describe()
			} else {
				detail += "\n  pre:    (absent)"
			}
			if inPost {
				detail += "\n  post:   " + postF.Describe()
			} else {
				detail += "\n  post:   (absent)"
			}
			return detail
		}
	}
	if len(sawPre) > 0 && len(sawPost) > 0 {
		return fmt.Sprintf("operation not atomic: %s at pre-op state while %s at post-op state",
			strings.Join(sawPre, ","), strings.Join(sawPost, ","))
	}
	return ""
}

// mixAllowed reports whether path may legally hold a mix of old and new
// bytes in this crash state: the system does not guarantee atomic data
// writes and path names the file the in-flight write/fallocate targets —
// either directly or as a hard-link alias (a torn write is visible under
// every name of the inode).
func (ck *checker) mixAllowed(ctx crashCtx, path string) bool {
	if ck.caps.AtomicWrite {
		return false
	}
	if ctx.sys < 0 || ctx.sys >= len(ck.w.Ops) {
		return false
	}
	op := ck.w.Ops[ctx.sys]
	switch op.Kind {
	case workload.OpWrite, workload.OpPwrite, workload.OpFalloc:
	default:
		return false
	}
	if op.FDSlot >= 0 {
		// Descriptor-based write: the target path is not recorded in the
		// op, so any regular file may legally be torn (conservative).
		return true
	}
	target := vfs.Clean(op.Path)
	if target == path {
		return true
	}
	if ctx.sys+1 < len(ck.states) {
		if ck.states[ctx.sys].SameInode(target, path) ||
			ck.states[ctx.sys+1].SameInode(target, path) {
			return true
		}
	}
	return false
}

// byteMixOK accepts a torn data write: the size is the old or the new one,
// the link count unchanged, and every byte matches the old or the new
// content (bytes beyond a version's size count as zero).
func byteMixOK(pre, post, crash vfs.FileState, inPre, inPost bool) bool {
	if !inPost || crash.Type != vfs.TypeRegular || post.Type != vfs.TypeRegular {
		return false
	}
	if !inPre {
		// File created by this op: old content is "absent"; a torn state
		// still has the file with partial data.
		pre = vfs.FileState{Type: vfs.TypeRegular, Nlink: post.Nlink}
	}
	if pre.Type != vfs.TypeRegular {
		return false
	}
	if crash.Size != pre.Size && crash.Size != post.Size {
		return false
	}
	if crash.Nlink != post.Nlink {
		return false
	}
	byteAt := func(f vfs.FileState, i int64) byte {
		if i < int64(len(f.Data)) {
			return f.Data[i]
		}
		return 0
	}
	for i := int64(0); i < crash.Size; i++ {
		b := crash.Data[i]
		if b != byteAt(pre, i) && b != byteAt(post, i) {
			return false
		}
	}
	return true
}

// usability validates that the recovered file system is actually usable
// (§3.3): create a file in every directory, write and read it back, then
// delete every file and directory. The mutations land on this state's
// private device copy.
func (ck *checker) usability(fs vfs.FS, st vfs.State) string {
	var dirs, files []string
	for p, f := range st {
		if f.Type == vfs.TypeDir {
			dirs = append(dirs, p)
		} else {
			files = append(files, p)
		}
	}
	sort.Strings(dirs)

	probe := "chipmunk_probe"
	for _, d := range dirs {
		path := vfs.Join(d, probe)
		fd, err := fs.Create(path)
		if err != nil {
			return fmt.Sprintf("creating %s failed: %v", path, err)
		}
		if _, err := fs.Pwrite(fd, []byte("probe"), 0); err != nil {
			fs.Close(fd)
			return fmt.Sprintf("writing %s failed: %v", path, err)
		}
		buf := make([]byte, 5)
		if _, err := fs.Pread(fd, buf, 0); err != nil {
			fs.Close(fd)
			return fmt.Sprintf("reading %s back failed: %v", path, err)
		}
		if string(buf) != "probe" {
			fs.Close(fd)
			return fmt.Sprintf("read-back of %s returned %q", path, buf)
		}
		if err := fs.Close(fd); err != nil {
			return fmt.Sprintf("closing %s failed: %v", path, err)
		}
		files = append(files, path)
	}

	sort.Strings(files)
	for _, p := range files {
		if err := fs.Unlink(p); err != nil {
			return fmt.Sprintf("deleting %s failed: %v", p, err)
		}
	}
	// Directories deepest-first; the root stays.
	sort.Slice(dirs, func(i, j int) bool { return len(dirs[i]) > len(dirs[j]) })
	for _, d := range dirs {
		if d == "/" {
			continue
		}
		if err := fs.Rmdir(d); err != nil {
			return fmt.Sprintf("removing directory %s failed: %v", d, err)
		}
	}
	return ""
}

// recoveryReadSet mounts the base image once with PM reads recorded,
// returning the cache lines recovery consulted — the Vinter heuristic's
// input. A failed mount returns nil (no filtering: everything is relevant
// when recovery itself is broken); a panicking mount is contained the same
// way — this runs on the coordinator, outside the per-state sandbox.
func (ck *checker) recoveryReadSet(img []byte) (rs *persist.ReadSet) {
	defer func() {
		if recover() != nil {
			rs = nil
		}
	}()
	dev := pmem.FromImage(img)
	pm := persist.New(dev)
	reads := persist.NewReadSet()
	pm.Attach(reads)
	fs := ck.cfg.NewFS(pm)
	if err := fs.Mount(); err != nil {
		return nil
	}
	return reads
}

// violation builds (but does not record) the report for one failed check.
func (ck *checker) violation(ctx crashCtx, kind ViolationKind, detail string) *Violation {
	sysName := ""
	if ctx.sys >= 0 && ctx.sys < len(ck.w.Ops) {
		sysName = ck.w.Ops[ctx.sys].String()
	}
	return &Violation{
		FS:       ck.caps.Name,
		Workload: ck.w,
		Syscall:  ctx.sys,
		SysName:  sysName,
		Phase:    ctx.phase,
		Subset:   ctx.subset,
		Kind:     kind,
		Detail:   detail,
	}
}

// reportViolation records a violation (bounded; overflow is counted).
// Coordinator-only: parallel workers return violations to the coordinator,
// which appends them in subset-rank order.
func (ck *checker) reportViolation(v Violation) {
	if len(ck.res.Violations) >= maxViolationsPerRun {
		ck.res.SuppressedViolations++
		return
	}
	ck.res.Violations = append(ck.res.Violations, v)
}

// report records a violation for the given crash context (bounded).
func (ck *checker) report(ctx crashCtx, kind ViolationKind, detail string) {
	ck.reportViolation(*ck.violation(ctx, kind, detail))
}
