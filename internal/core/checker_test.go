package core

import (
	"strings"
	"testing"

	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

func fileState(path string, data string, nlink uint32) vfs.FileState {
	return vfs.FileState{
		Path: path, Type: vfs.TypeRegular, Nlink: nlink,
		Size: int64(len(data)), Data: []byte(data),
	}
}

func dirState(path string, entries ...string) vfs.FileState {
	return vfs.FileState{Path: path, Type: vfs.TypeDir, Nlink: 2, Entries: entries}
}

func newAtomChecker(op workload.Op, pre, post vfs.State, atomicWrite bool) *oracleChecker {
	w := workload.Workload{Ops: []workload.Op{op}}
	return &oracleChecker{env: RunEnv{
		Caps:         vfs.Caps{Name: "test", Strong: true, AtomicWrite: atomicWrite},
		Workload:     w,
		OracleStates: []vfs.State{pre, post},
		OpResults:    []workload.Result{{Op: op}},
	}}
}

func TestCheckAtomicAcceptsPreAndPost(t *testing.T) {
	pre := vfs.State{"/": dirState("/", "a"), "/a": fileState("/a", "old", 1)}
	post := vfs.State{"/": dirState("/", "a"), "/a": fileState("/a", "new", 1)}
	op := workload.Op{Kind: workload.OpPwrite, Path: "/a", FDSlot: -1, Size: 3}
	ck := newAtomChecker(op, pre, post, true)
	ctx := crashCtx{phase: PhaseMid, sys: 0}.check()
	if d := ck.checkAtomic(pre.Clone(), ctx); d != "" {
		t.Fatalf("pre state rejected: %s", d)
	}
	if d := ck.checkAtomic(post.Clone(), ctx); d != "" {
		t.Fatalf("post state rejected: %s", d)
	}
}

func TestCheckAtomicRejectsMixedVersions(t *testing.T) {
	// rename: old gone in post, new appears. A state with BOTH is mixed.
	pre := vfs.State{"/": dirState("/", "old"), "/old": fileState("/old", "x", 1)}
	post := vfs.State{"/": dirState("/", "new"), "/new": fileState("/new", "x", 1)}
	op := workload.Op{Kind: workload.OpRename, Path: "/old", Path2: "/new"}
	ck := newAtomChecker(op, pre, post, true)
	ctx := crashCtx{phase: PhaseMid, sys: 0}.check()

	both := vfs.State{
		"/":    dirState("/", "new", "old"),
		"/old": fileState("/old", "x", 1),
		"/new": fileState("/new", "x", 1),
	}
	if d := ck.checkAtomic(both, ctx); d == "" {
		t.Fatal("state with both names accepted")
	}
	neither := vfs.State{"/": dirState("/")}
	if d := ck.checkAtomic(neither, ctx); d == "" {
		t.Fatal("state with neither name accepted")
	}
}

func TestCheckAtomicUntouchedFileMustNotChange(t *testing.T) {
	pre := vfs.State{
		"/":  dirState("/", "a", "b"),
		"/a": fileState("/a", "old", 1),
		"/b": fileState("/b", "bystander", 1),
	}
	post := pre.Clone()
	post["/a"] = fileState("/a", "new", 1)
	op := workload.Op{Kind: workload.OpPwrite, Path: "/a", FDSlot: -1, Size: 3}
	ck := newAtomChecker(op, pre, post, true)
	ctx := crashCtx{phase: PhaseMid, sys: 0}.check()

	crash := post.Clone()
	crash["/b"] = fileState("/b", "CORRUPTED", 1)
	d := ck.checkAtomic(crash, ctx)
	if d == "" || !strings.Contains(d, "/b") {
		t.Fatalf("bystander corruption not flagged: %q", d)
	}
}

func TestByteMixOK(t *testing.T) {
	pre := fileState("/a", "AAAA", 1)
	post := fileState("/a", "BBBB", 1)
	cases := []struct {
		crash vfs.FileState
		want  bool
	}{
		{fileState("/a", "ABAB", 1), true},  // byte mix
		{fileState("/a", "AAAA", 1), true},  // all old
		{fileState("/a", "BBBB", 1), true},  // all new
		{fileState("/a", "ABCB", 1), false}, // foreign byte
		{fileState("/a", "AB", 1), false},   // size matches neither
		{fileState("/a", "ABAB", 2), false}, // nlink changed
	}
	for i, c := range cases {
		if got := byteMixOK(pre, post, c.crash, true, true); got != c.want {
			t.Errorf("case %d: byteMixOK = %v, want %v", i, got, c.want)
		}
	}
	// Extension: post larger than pre; bytes beyond pre's size compare
	// against zero.
	pre2 := fileState("/a", "AA", 1)
	post2 := fileState("/a", "BBBB", 1)
	mixed := vfs.FileState{Path: "/a", Type: vfs.TypeRegular, Nlink: 1, Size: 4, Data: []byte{'B', 'A', 0, 'B'}}
	if !byteMixOK(pre2, post2, mixed, true, true) {
		t.Error("extension mix with zero hole rejected")
	}
	// Created file (no pre): torn create is a mix of zeros and new data.
	created := vfs.FileState{Path: "/a", Type: vfs.TypeRegular, Nlink: 1, Size: 4, Data: []byte{'B', 0, 0, 'B'}}
	if !byteMixOK(vfs.FileState{}, post2, created, false, true) {
		t.Error("torn create rejected")
	}
}

func TestMixAllowedOnlyForWritesOnNonAtomicFS(t *testing.T) {
	pre := vfs.State{}
	post := vfs.State{}
	wOp := workload.Op{Kind: workload.OpPwrite, Path: "/a", FDSlot: -1}
	rOp := workload.Op{Kind: workload.OpRename, Path: "/a", Path2: "/b"}

	ckAtomic := newAtomChecker(wOp, pre, post, true)
	if ckAtomic.mixAllowed(crashCtx{sys: 0}.check(), "/a") {
		t.Error("mix allowed on atomic-write FS")
	}
	ckTorn := newAtomChecker(wOp, pre, post, false)
	if !ckTorn.mixAllowed(crashCtx{sys: 0}.check(), "/a") {
		t.Error("mix not allowed for write on non-atomic FS")
	}
	ckRename := newAtomChecker(rOp, pre, post, false)
	if ckRename.mixAllowed(crashCtx{sys: 0}.check(), "/a") {
		t.Error("mix allowed for rename")
	}
	if ckTorn.mixAllowed(crashCtx{sys: -1}.check(), "/a") {
		t.Error("mix allowed outside any syscall")
	}
}

func TestReportBounded(t *testing.T) {
	op := workload.Op{Kind: workload.OpSync}
	ck := &checker{
		caps: vfs.Caps{Name: "test"},
		w:    workload.Workload{Ops: []workload.Op{op}},
		res:  &Result{OpResults: []workload.Result{{Op: op}}},
	}
	for i := 0; i < maxViolationsPerRun+50; i++ {
		ck.report(crashCtx{sys: 0}, VAtomicity, "x")
	}
	if len(ck.res.Violations) != maxViolationsPerRun {
		t.Fatalf("violations = %d", len(ck.res.Violations))
	}
	if ck.res.SuppressedViolations != 50 {
		t.Fatalf("suppressed = %d", ck.res.SuppressedViolations)
	}
}

func TestPhaseAndKindStrings(t *testing.T) {
	if PhaseMid.String() != "mid-syscall" || PhasePost.String() != "post-syscall" {
		t.Fatal("phase strings")
	}
	if VUnmountable.String() != "unmountable" || ViolationKind(99).String() == "" {
		t.Fatal("kind strings")
	}
}

func TestSizeBucketMonotone(t *testing.T) {
	last := byte(0)
	for _, n := range []int{0, 1, 8, 9, 64, 65, 512, 513, 4096, 4097} {
		b := sizeBucket(n)
		if b < last {
			t.Fatalf("bucket not monotone at %d", n)
		}
		last = b
	}
}
