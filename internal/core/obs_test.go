package core

import (
	"bytes"
	"reflect"
	"sort"
	"testing"

	"chipmunk/internal/bugs"
	"chipmunk/internal/obs"
	"chipmunk/internal/pmem"
	"chipmunk/internal/workload"
)

// TestObsSnapshotMatchesResult: the per-run snapshot's counters are set
// from the Result's deterministic fields, so the two views can never
// disagree — and the campaign collector receives the same totals.
func TestObsSnapshotMatchesResult(t *testing.T) {
	campaign := obs.New()
	res := mustRun(t, Config{NewFS: novaFS(bugs.None()), Obs: campaign}, mixedWorkload())
	if res.Obs == nil {
		t.Fatal("Result.Obs nil with Config.Obs set")
	}
	snap := res.Obs
	for _, tc := range []struct {
		ctr  obs.Counter
		want int
	}{
		{obs.CtrWorkloads, 1},
		{obs.CtrFences, res.Fences},
		{obs.CtrStatesChecked, res.StatesChecked},
		{obs.CtrDedupHits, res.StatesDeduped},
		{obs.CtrTruncatedFences, res.TruncatedFences},
		{obs.CtrSandboxRetries, res.RetriedChecks},
		{obs.CtrQuarantines, len(res.Quarantined) + res.SuppressedQuarantine},
		{obs.CtrViolations, len(res.Violations) + res.SuppressedViolations},
	} {
		if got := snap.Count(tc.ctr); got != int64(tc.want) {
			t.Errorf("counter %v = %d, want %d", tc.ctr, got, tc.want)
		}
	}
	// Every pipeline stage ran on this workload.
	for _, st := range []obs.Stage{obs.StageOracle, obs.StageRecord, obs.StageDedup,
		obs.StageReplay, obs.StageMount, obs.StageCheck} {
		if snap.Stage(st).Count == 0 {
			t.Errorf("stage %v never observed", st)
		}
	}
	// Mount observations cover every checked state (replay can exceed it:
	// post-syscall states materialize without being distinct mid-states).
	if got := snap.Stage(obs.StageMount).Count; got < int64(res.StatesChecked) {
		t.Errorf("mount count %d < states checked %d", got, res.StatesChecked)
	}
	// The record pass fed the PM cost model into the snapshot.
	if snap.PM.Fences == 0 || snap.PM.StoreBytes == 0 {
		t.Errorf("pm stats not fed: %+v", snap.PM)
	}
	// The campaign collector merged exactly this run.
	if got := campaign.Snapshot(); !reflect.DeepEqual(got.Counters, snap.Counters) {
		t.Errorf("campaign counters %v != run counters %v", got.Counters, snap.Counters)
	}
}

// TestObsDisabledByDefault: without Config.Obs the engine publishes no
// snapshot — the hot path stays on the nil no-op sink.
func TestObsDisabledByDefault(t *testing.T) {
	res := mustRun(t, Config{NewFS: novaFS(bugs.None())}, renameWorkload())
	if res.Obs != nil {
		t.Fatal("Result.Obs set without Config.Obs")
	}
}

// TestObsCountersSerialVsParallel: deterministic counters are pure
// functions of the suite, never of scheduling — workers=1 and workers=8
// agree exactly. Measurement-class counters (image primes, bytes primed /
// rolled back) legitimately vary with pool scheduling and are excluded by
// DeterministicCounters; the delta differential tests pin the Result-level
// agreement instead.
func TestObsCountersSerialVsParallel(t *testing.T) {
	w := workload.Workload{Name: "obs-par", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Off: 0, Size: 8192, Seed: 3},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}
	counters := map[int]map[string]int64{}
	for _, workers := range []int{1, 8} {
		col := obs.New()
		res := mustRun(t, Config{NewFS: novaFS(bugs.None()), Workers: workers, Obs: col}, w)
		if res.Obs == nil {
			t.Fatal("no snapshot")
		}
		counters[workers] = res.Obs.DeterministicCounters()
	}
	if !reflect.DeepEqual(counters[1], counters[8]) {
		t.Fatalf("counters diverge by worker count:\n serial:   %v\n workers8: %v",
			counters[1], counters[8])
	}
}

// TestObsFaultCounter: with faults forced on, the injected-fault counter
// records landed tears/flips/media errors.
func TestObsFaultCounter(t *testing.T) {
	col := obs.New()
	cfg := Config{
		NewFS:  novaFS(bugs.None()),
		Obs:    col,
		Faults: &pmem.FaultConfig{Seed: 11, TearOneInN: 2, FlipOneInN: 2},
	}
	res := mustRun(t, cfg, mixedWorkload())
	if got := res.Obs.Count(obs.CtrFaultsInjected); got == 0 {
		t.Fatal("fault injection enabled but fault-injected counter is 0")
	}
}

// journalKeys runs w and returns the sorted canonical-key multiset of its
// journal — the identity the determinism contract is stated over.
func journalKeys(t *testing.T, cfg Config, w workload.Workload) []string {
	t.Helper()
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	cfg.Journal = j
	mustRun(t, cfg, w)
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	events, skipped, err := obs.ReadJournal(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("journal read: err=%v skipped=%d", err, skipped)
	}
	keys := make([]string, len(events))
	for i, e := range events {
		keys[i] = e.CanonicalKey()
	}
	sort.Strings(keys)
	return keys
}

// TestJournalDeterministicAcrossWorkers: serial and parallel runs of one
// workload journal identical event multisets (order-normalized; wall-clock
// fields excluded by CanonicalKey). Exercises fence, workload, violation,
// and retry/quarantine-free paths on both a clean and a buggy system.
func TestJournalDeterministicAcrossWorkers(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		w    workload.Workload
	}{
		{"clean", Config{NewFS: novaFS(bugs.None())}, mixedWorkload()},
		{"buggy", Config{NewFS: novaFS(bugs.Of(bugs.NovaRenameInPlaceDelete))}, renameWorkload()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := journalKeys(t, tc.cfg, tc.w)
			if len(serial) == 0 {
				t.Fatal("empty journal")
			}
			par := tc.cfg
			par.Workers = 4
			parallel := journalKeys(t, par, tc.w)
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("journal multisets diverge: serial %d events, parallel %d",
					len(serial), len(parallel))
			}
		})
	}
}

// TestJournalEventShape: the journal carries the event types the summary
// and CI validation rely on, with workload totals matching the Result.
func TestJournalEventShape(t *testing.T) {
	var buf bytes.Buffer
	j := obs.NewJournal(&buf)
	res := mustRun(t, Config{
		NewFS:   novaFS(bugs.Of(bugs.NovaRenameInPlaceDelete)),
		Journal: j,
	}, renameWorkload())
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	events, _, err := obs.ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	byType := map[string][]obs.Event{}
	for _, e := range events {
		byType[e.Type] = append(byType[e.Type], e)
	}
	if len(byType["fence"]) != res.Fences {
		t.Errorf("%d fence events, want %d", len(byType["fence"]), res.Fences)
	}
	if len(byType["violation"]) != len(res.Violations) {
		t.Errorf("%d violation events, want %d", len(byType["violation"]), len(res.Violations))
	}
	wl := byType["workload"]
	if len(wl) != 1 {
		t.Fatalf("%d workload events, want 1", len(wl))
	}
	if wl[0].States != res.StatesChecked || wl[0].Violations != len(res.Violations) {
		t.Errorf("workload event %+v disagrees with result (states %d, violations %d)",
			wl[0], res.StatesChecked, len(res.Violations))
	}
	if wl[0].DurNanos <= 0 {
		t.Error("workload event missing duration")
	}
}
