package core

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"chipmunk/internal/bugs"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// sandboxWorkload is deliberately tiny: hostile-guest tests pay a timeout
// (and leak one goroutine) per crash state, so fewer states is better.
func sandboxWorkload() workload.Workload {
	return workload.Workload{Name: "sandbox-tiny", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/a", FDSlot: -1},
	}}
}

// panicMountFS panics on every Mount — the in-process analogue of a crash
// state taking the guest kernel down. Mkfs and the workload ops (the record
// pass) delegate to the real system underneath.
type panicMountFS struct{ vfs.FS }

func (f panicMountFS) Mount() error { panic("injected mount panic") }

func panicNovaFS(set bugs.Set) func(pm *persist.PM) vfs.FS {
	return func(pm *persist.PM) vfs.FS { return panicMountFS{nova.New(pm, set)} }
}

// hangReadDirFS mounts fine but hangs forever in vfs.Capture (ReadDir) — a
// recovery hang only the watchdog deadline can classify.
type hangReadDirFS struct{ vfs.FS }

func (f hangReadDirFS) ReadDir(path string) ([]vfs.DirEnt, error) { select {} }

func hangNovaFS(set bugs.Set) func(pm *persist.PM) vfs.FS {
	return func(pm *persist.PM) vfs.FS { return hangReadDirFS{nova.New(pm, set)} }
}

// flakyMountFS panics on the first N Mounts across the whole run, then
// behaves — a transient failure the retry loop must absorb.
type flakyMountFS struct {
	vfs.FS
	remaining *int32
}

func (f flakyMountFS) Mount() error {
	if atomic.AddInt32(f.remaining, -1) >= 0 {
		panic("transient mount panic")
	}
	return f.FS.Mount()
}

// TestSandboxContainsMountPanic: a guest that panics on every Mount must
// not take the engine down. The census completes (same state count as the
// healthy system), every state is classified VPanic, and the quarantine
// ledger records each one — never silent.
func TestSandboxContainsMountPanic(t *testing.T) {
	w := sandboxWorkload()
	healthy := mustRun(t, Config{NewFS: novaFS(bugs.None())}, w)
	if healthy.StatesChecked == 0 {
		t.Fatal("healthy run checked no states; test workload too small")
	}
	res := mustRun(t, Config{NewFS: panicNovaFS(bugs.None()), CheckRetries: -1}, w)

	if res.StatesChecked != healthy.StatesChecked {
		t.Errorf("census incomplete: %d states checked, healthy run checked %d",
			res.StatesChecked, healthy.StatesChecked)
	}
	if len(res.Violations)+res.SuppressedViolations != res.StatesChecked {
		t.Errorf("%d violations + %d suppressed != %d states checked",
			len(res.Violations), res.SuppressedViolations, res.StatesChecked)
	}
	for i, v := range res.Violations {
		if v.Kind != VPanic {
			t.Fatalf("violation %d: kind %v, want VPanic", i, v.Kind)
		}
		if !strings.Contains(v.Detail, "injected mount panic") {
			t.Fatalf("violation %d detail %q lacks the panic value", i, v.Detail)
		}
	}
	if len(res.Quarantined)+res.SuppressedQuarantine != res.StatesChecked {
		t.Errorf("%d quarantined + %d suppressed != %d states checked",
			len(res.Quarantined), res.SuppressedQuarantine, res.StatesChecked)
	}
	for i, q := range res.Quarantined {
		if q.Kind != VPanic {
			t.Fatalf("quarantine %d: kind %v, want VPanic", i, q.Kind)
		}
		if q.Attempts != 1 {
			t.Errorf("quarantine %d: %d attempts with retries disabled, want 1", i, q.Attempts)
		}
		if q.Stack == "" {
			t.Errorf("quarantine %d: no captured stack", i)
		}
		if q.Workload != w.Name {
			t.Errorf("quarantine %d: workload %q, want %q", i, q.Workload, w.Name)
		}
	}
}

// TestSandboxContainsCaptureHang: a guest that hangs in Capture is cut off
// by the per-check deadline and classified VTimeout; the census still
// completes. (Each timed-out state abandons its goroutine by design.)
func TestSandboxContainsCaptureHang(t *testing.T) {
	w := sandboxWorkload()
	healthy := mustRun(t, Config{NewFS: novaFS(bugs.None())}, w)
	res := mustRun(t, Config{
		NewFS:        hangNovaFS(bugs.None()),
		CheckTimeout: 40 * time.Millisecond,
		CheckRetries: -1,
	}, w)

	if res.StatesChecked != healthy.StatesChecked {
		t.Errorf("census incomplete: %d states checked, healthy run checked %d",
			res.StatesChecked, healthy.StatesChecked)
	}
	if len(res.Violations) == 0 || len(res.Quarantined) == 0 {
		t.Fatalf("hanging guest produced %d violations, %d quarantined; want both > 0",
			len(res.Violations), len(res.Quarantined))
	}
	for i, v := range res.Violations {
		if v.Kind != VTimeout {
			t.Fatalf("violation %d: kind %v, want VTimeout", i, v.Kind)
		}
		if !strings.Contains(v.Detail, "deadline") {
			t.Fatalf("violation %d detail %q lacks the deadline", i, v.Detail)
		}
	}
	for i, q := range res.Quarantined {
		if q.Kind != VTimeout {
			t.Fatalf("quarantine %d: kind %v, want VTimeout", i, q.Kind)
		}
	}
}

// TestSandboxSerialParallelAgreeOnHostileGuest: quarantining must honor the
// same determinism contract as everything else — serial and parallel runs
// produce identical violations and identical ledgers. Stack is diagnostic
// and excluded (Quarantine.String omits it).
func TestSandboxSerialParallelAgreeOnHostileGuest(t *testing.T) {
	w := sandboxWorkload()
	ser := mustRun(t, Config{NewFS: panicNovaFS(bugs.None()), CheckRetries: -1, Workers: 1}, w)
	par := mustRun(t, Config{NewFS: panicNovaFS(bugs.None()), CheckRetries: -1, Workers: 4}, w)
	if ser.StatesChecked != par.StatesChecked {
		t.Errorf("StatesChecked serial %d != parallel %d", ser.StatesChecked, par.StatesChecked)
	}
	if len(ser.Violations) != len(par.Violations) {
		t.Fatalf("violations: serial %d != parallel %d", len(ser.Violations), len(par.Violations))
	}
	for i := range ser.Violations {
		if ser.Violations[i].String() != par.Violations[i].String() {
			t.Errorf("violation %d differs\nserial:   %s\nparallel: %s",
				i, ser.Violations[i], par.Violations[i])
		}
	}
	if len(ser.Quarantined) != len(par.Quarantined) {
		t.Fatalf("ledger: serial %d != parallel %d", len(ser.Quarantined), len(par.Quarantined))
	}
	for i := range ser.Quarantined {
		if ser.Quarantined[i].String() != par.Quarantined[i].String() {
			t.Errorf("quarantine %d differs\nserial:   %s\nparallel: %s",
				i, ser.Quarantined[i], par.Quarantined[i])
		}
	}
}

// TestSandboxRetryAbsorbsTransientPanic: a failure that vanishes on retry is
// transient — counted in RetriedChecks, not quarantined, not a violation.
func TestSandboxRetryAbsorbsTransientPanic(t *testing.T) {
	w := sandboxWorkload()
	var remaining int32 = 1
	cfg := Config{NewFS: func(pm *persist.PM) vfs.FS {
		return flakyMountFS{nova.New(pm, bugs.None()), &remaining}
	}}
	res := mustRun(t, cfg, w)
	if res.RetriedChecks != 1 {
		t.Errorf("RetriedChecks = %d, want 1", res.RetriedChecks)
	}
	if len(res.Quarantined) != 0 {
		t.Errorf("transient failure quarantined: %v", res.Quarantined)
	}
	if res.Buggy() {
		t.Errorf("transient failure reported as violation: %v", res.Violations)
	}
}

// TestSandboxDifferentialAgainstDirect: with faults off, the sandboxed
// checker must be byte-identical to the inline pre-sandbox path, on clean
// and on violating runs alike (the all-seven-systems version lives in
// internal/harness).
func TestSandboxDifferentialAgainstDirect(t *testing.T) {
	for _, set := range []bugs.Set{bugs.None(), bugs.AllSet()} {
		for _, w := range []workload.Workload{mixedWorkload(), renameWorkload()} {
			direct := mustRun(t, Config{NewFS: novaFS(set), DisableSandbox: true}, w)
			sand := mustRun(t, Config{NewFS: novaFS(set)}, w)
			if direct.StatesChecked != sand.StatesChecked ||
				direct.StatesDeduped != sand.StatesDeduped ||
				direct.Fences != sand.Fences ||
				direct.TruncatedFences != sand.TruncatedFences {
				t.Errorf("%s: accounting diverged: direct %+v vs sandboxed %+v", w.Name, direct, sand)
			}
			if len(direct.Violations) != len(sand.Violations) {
				t.Fatalf("%s: %d direct violations != %d sandboxed",
					w.Name, len(direct.Violations), len(sand.Violations))
			}
			for i := range direct.Violations {
				if direct.Violations[i].String() != sand.Violations[i].String() {
					t.Errorf("%s: violation %d differs\ndirect:    %s\nsandboxed: %s",
						w.Name, i, direct.Violations[i], sand.Violations[i])
				}
			}
			if len(sand.Quarantined) != 0 || sand.RetriedChecks != 0 {
				t.Errorf("%s: healthy guest quarantined %d states, retried %d",
					w.Name, len(sand.Quarantined), sand.RetriedChecks)
			}
		}
	}
}

// TestExhaustiveLimitOverride: lowering Config.ExhaustiveLimit/SafetyCap
// must truncate more fences (visibly, in TruncatedFences) and check fewer
// states than the defaults.
func TestExhaustiveLimitOverride(t *testing.T) {
	w := heavyWorkload()
	base := mustRun(t, Config{NewFS: novaFS(bugs.None())}, w)
	low := mustRun(t, Config{NewFS: novaFS(bugs.None()), ExhaustiveLimit: 2, SafetyCap: 1}, w)
	if low.TruncatedFences <= base.TruncatedFences {
		t.Errorf("TruncatedFences %d with limit 2, want > %d (default limit)",
			low.TruncatedFences, base.TruncatedFences)
	}
	if low.StatesChecked >= base.StatesChecked {
		t.Errorf("StatesChecked %d with limit 2, want < %d (default limit)",
			low.StatesChecked, base.StatesChecked)
	}
}
