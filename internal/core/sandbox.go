package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"strings"
	"time"

	"chipmunk/internal/pmem"
	"chipmunk/internal/trace"
)

// This file is the check sandbox: the in-process analogue of the paper's VM
// farm (§4.2). The paper mounts every crash state inside a disposable VM
// precisely because a corrupted state can take the guest kernel down with
// it; here every per-crash-state check (mount, oracle comparison, usability
// probe) runs on a watchdogged goroutine with panic containment, so a
// hostile state costs one classified report instead of the whole census.
//
// Outcome taxonomy:
//   - success: the check's verdict (violation or clean) is used as-is;
//   - media error (*pmem.MediaError): an injected fault — classified as
//     VUnreadable, no retry (the poison is deterministic by construction);
//   - panic/timeout: retried with backoff up to Config.CheckRetries times;
//     a failure that survives every retry is deterministic — the state is
//     quarantined (Result.Quarantined) and classified VPanic/VTimeout.
//
// A timed-out goroutine cannot be killed in Go; it is abandoned together
// with its pooled buffers (it returns them itself if it ever completes).
// That leak is the price of a census that always terminates — the same
// trade the paper makes when it shoots a wedged VM.

// checkOutcome is what one sandboxed check contributes to the result; the
// caller folds it (serially, in canonical rank order) via fold.
type checkOutcome struct {
	done      bool // the check reached a classified outcome (counted)
	v         *Violation
	q         *Quarantine
	retried   bool // succeeded only after a retry (transient failure)
	cancelled bool // run context cancelled mid-check; nothing counted
}

// attemptResult is the raw outcome of one sandboxed attempt.
type attemptResult struct {
	ok        bool
	v         *Violation
	media     *pmem.MediaError
	panicked  bool
	panicVal  string
	stack     string
	timedOut  bool
	cancelled bool
}

// fold applies one outcome to the result. Coordinator-only: parallel
// workers hand their outcomes back in rank order instead. Zero-value
// outcomes (cancelled runs leave unclaimed slots) fold to nothing.
func (ck *checker) fold(out checkOutcome) {
	if !out.done || out.cancelled {
		return
	}
	ck.res.StatesChecked++
	if out.retried {
		ck.res.RetriedChecks++
	}
	if out.q != nil {
		if len(ck.res.Quarantined) >= maxViolationsPerRun {
			ck.res.SuppressedQuarantine++
		} else {
			ck.res.Quarantined = append(ck.res.Quarantined, *out.q)
		}
	}
	if out.v != nil {
		ck.reportViolation(*out.v)
	}
}

// checkOne checks one crash state (base image + replayed subset) end to end:
// sandboxed attempt, bounded retry, quarantine on deterministic failure.
// Safe to call from worker goroutines.
func (ck *checker) checkOne(img []byte, log *trace.Log, subset []int, cctx crashCtx) checkOutcome {
	cctx.subset = subset
	if ck.cfg.DisableSandbox && !ck.cfg.Faults.Enabled() {
		return checkOutcome{done: true, v: ck.checkDirect(img, log, subset, cctx)}
	}

	timeout := ck.cfg.CheckTimeout
	if timeout == 0 {
		timeout = DefaultCheckTimeout
	}
	retries := ck.cfg.CheckRetries
	if retries == 0 {
		retries = DefaultCheckRetries
	} else if retries < 0 {
		retries = 0
	}

	backoff := time.Millisecond
	var last attemptResult
	attempts := 0
	for {
		last = ck.attempt(img, log, subset, cctx, timeout)
		attempts++
		switch {
		case last.cancelled:
			return checkOutcome{cancelled: true}
		case last.ok:
			return checkOutcome{done: true, v: last.v, retried: attempts > 1}
		case last.media != nil:
			// An injected media fault is deterministic by construction:
			// classify immediately, no retry, no quarantine — it is a
			// modeled crash outcome, not a checker failure.
			return checkOutcome{done: true, v: ck.violation(cctx, VUnreadable,
				fmt.Sprintf("reading recovered state failed: %v", last.media))}
		}
		if attempts <= retries {
			time.Sleep(backoff)
			backoff *= 4
			continue
		}
		break
	}

	// Deterministic panic or hang: quarantine the state and classify it.
	kind, detail := VPanic, "check panicked: "+firstLine(last.panicVal)
	if last.timedOut {
		kind, detail = VTimeout, fmt.Sprintf("check exceeded %v deadline", timeout)
	}
	q := &Quarantine{
		Workload: ck.w.Name,
		Fence:    cctx.fence,
		Sys:      cctx.sys,
		Phase:    cctx.phase,
		Rank:     cctx.rank,
		Subset:   append([]int(nil), subset...),
		StateKey: stateDigest(img, log, subset),
		Kind:     kind,
		Detail:   detail,
		Stack:    last.stack,
		Attempts: attempts,
	}
	return checkOutcome{done: true, v: ck.violation(cctx, kind, detail), q: q}
}

// attempt runs one sandboxed check attempt: materialize the crash image
// into pooled buffers, apply injected faults, mount and check — all on a
// fresh goroutine guarded by recover() and a watchdog timer.
func (ck *checker) attempt(img []byte, log *trace.Log, subset []int, cctx crashCtx, timeout time.Duration) attemptResult {
	done := make(chan attemptResult, 1)
	go func() {
		persistent := ck.pool.Get().([]byte)
		volatile := ck.pool.Get().([]byte)
		defer func() {
			if r := recover(); r != nil {
				// Every attempt re-copies the buffers in full before use,
				// so they are safe to recycle even after a mid-check panic.
				ck.pool.Put(persistent) //nolint:staticcheck // fixed-size []byte, pooled by design
				ck.pool.Put(volatile)   //nolint:staticcheck
				if me, ok := r.(*pmem.MediaError); ok {
					done <- attemptResult{media: me}
					return
				}
				done <- attemptResult{
					panicked: true,
					panicVal: fmt.Sprint(r),
					stack:    string(debug.Stack()),
				}
			}
		}()

		inj := ck.injector(cctx)
		ck.materialize(persistent, img, log, subset, inj)
		if inj != nil {
			inj.FlipBit(persistent)
		}
		copy(volatile, persistent)
		dev := pmem.WrapImages(volatile, persistent)
		dev.InjectFaults(inj)
		v := ck.checkState(dev, cctx)

		ck.pool.Put(persistent) //nolint:staticcheck
		ck.pool.Put(volatile)   //nolint:staticcheck
		done <- attemptResult{ok: true, v: v}
	}()

	var timerC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timerC = t.C
	}
	var cancelC <-chan struct{}
	if ck.ctx != nil {
		cancelC = ck.ctx.Done()
	}
	select {
	case r := <-done:
		return r
	case <-timerC:
		return attemptResult{timedOut: true}
	case <-cancelC:
		return attemptResult{cancelled: true}
	}
}

// checkDirect is the pre-sandbox inline path (Config.DisableSandbox), kept
// so the differential tests can assert the sandbox changes nothing for
// well-behaved guests.
func (ck *checker) checkDirect(img []byte, log *trace.Log, subset []int, cctx crashCtx) *Violation {
	persistent := ck.pool.Get().([]byte)
	volatile := ck.pool.Get().([]byte)
	defer func() {
		ck.pool.Put(persistent) //nolint:staticcheck // fixed-size []byte, pooled by design
		ck.pool.Put(volatile)   //nolint:staticcheck
	}()
	ck.materialize(persistent, img, log, subset, nil)
	copy(volatile, persistent)
	return ck.checkState(pmem.WrapImages(volatile, persistent), cctx)
}

// materialize builds the crash image: base bytes plus the replayed subset,
// each write torn down to a word-aligned prefix when the injector says so.
func (ck *checker) materialize(persistent, img []byte, log *trace.Log, subset []int, inj *pmem.Injector) {
	copy(persistent, img)
	for _, idx := range subset {
		e := log.At(idx)
		if !e.IsWrite() {
			continue
		}
		n := inj.TornPrefix(uint64(e.Seq), len(e.Data))
		copy(persistent[e.Off:e.Off+int64(n)], e.Data[:n])
	}
}

// injector builds the per-state fault injector (nil when faults are off).
// The salt mixes the crash point's identity — fence ordinal, subset rank,
// syscall, phase — so every state faults independently yet identically on
// retry, in any worker, serial or parallel.
func (ck *checker) injector(cctx crashCtx) *pmem.Injector {
	if !ck.cfg.Faults.Enabled() {
		return nil
	}
	salt := uint64(cctx.fence)*0x100000001b3 ^
		uint64(cctx.rank)*0x9e3779b97f4a7c15 ^
		uint64(cctx.sys+2)<<1 ^
		uint64(cctx.phase)
	return pmem.NewInjector(ck.cfg.Faults, salt)
}

// stateDigest fingerprints a crash state for the quarantine ledger: the
// FNV-64a digest of the byte-diff key (the (offset, length, bytes) runs
// where the materialized image differs from the fence's base image — the
// same identity stateKey deduplicates on). Post-syscall states, which ARE
// their base image, digest the whole image. Only called on quarantine, so
// the extra allocation is off the hot path; safe from worker goroutines.
func stateDigest(img []byte, log *trace.Log, subset []int) uint64 {
	h := fnv.New64a()
	if len(subset) == 0 {
		h.Write(img)
		return h.Sum64()
	}
	scratch := append([]byte(nil), img...)
	for _, idx := range subset {
		trace.Apply(scratch, log.At(idx))
	}
	var rec [12]byte
	for i := 0; i < len(img); {
		if scratch[i] == img[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(img) && scratch[j] != img[j] {
			j++
		}
		binary.BigEndian.PutUint64(rec[:8], uint64(i))
		binary.BigEndian.PutUint32(rec[8:], uint32(j-i))
		h.Write(rec[:])
		h.Write(scratch[i:j])
		i = j
	}
	return h.Sum64()
}

// firstLine truncates a panic rendering to its first line so violation
// details stay deterministic and report-sized.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
