package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"chipmunk/internal/obs"
	"chipmunk/internal/pmem"
	"chipmunk/internal/trace"
)

// This file is the check sandbox: the in-process analogue of the paper's VM
// farm (§4.2). The paper mounts every crash state inside a disposable VM
// precisely because a corrupted state can take the guest kernel down with
// it; here every per-crash-state check (mount, oracle comparison, usability
// probe) runs on a watchdogged goroutine with panic containment, so a
// hostile state costs one classified report instead of the whole census.
//
// Outcome taxonomy:
//   - success: the check's verdict (violation or clean) is used as-is;
//   - media error (*pmem.MediaError): an injected fault — classified as
//     VUnreadable, no retry (the poison is deterministic by construction);
//   - panic/timeout: retried with backoff up to Config.CheckRetries times;
//     a failure that survives every retry is deterministic — the state is
//     quarantined (Result.Quarantined) and classified VPanic/VTimeout.
//
// A timed-out goroutine cannot be killed in Go; it is abandoned together
// with its pooled image (which is retired from the pool — see the lease
// protocol below). That leak is the price of a census that always
// terminates — the same trade the paper makes when it shoots a wedged VM.
//
// Crash-image materialization is O(diff), not O(device): pooled images are
// primed with the fence's base once per generation, each crash state is
// materialized by applying only its subset's merged byte spans (the spans
// stateKey already computed during dedup), and after the check the image is
// restored — guest mount-time mutations via the device's undo log, the
// delta spans by re-copying them from the base. Config.DisableDeltaMaterialize
// selects the legacy two-full-copies-per-state path for differential tests.

// checkOutcome is what one sandboxed check contributes to the result; the
// caller folds it (serially, in canonical rank order) via fold.
type checkOutcome struct {
	done      bool // the check reached a classified outcome (counted)
	v         *Violation
	q         *Quarantine
	retried   bool     // succeeded only after a retry (transient failure)
	cancelled bool     // run context cancelled mid-check; nothing counted
	ctx       crashCtx // crash point identity, for journal attribution
}

// attemptResult is the raw outcome of one sandboxed attempt.
type attemptResult struct {
	ok        bool
	v         *Violation
	media     *pmem.MediaError
	panicked  bool
	panicVal  string
	stack     string
	timedOut  bool
	cancelled bool
	// checkStart is the open check-stage window (see checkState): the
	// dispatching side closes it after the hand-back so the stage total
	// includes the sandbox return path. Zero when the attempt failed before
	// the check phase or observability is off.
	checkStart time.Time
}

// fold applies one outcome to the result. Coordinator-only: parallel
// workers hand their outcomes back in rank order instead. Zero-value
// outcomes (cancelled runs leave unclaimed slots) fold to nothing.
func (ck *checker) fold(out checkOutcome) {
	if !out.done || out.cancelled {
		return
	}
	ck.res.StatesChecked++
	if out.retried {
		ck.res.RetriedChecks++
		ck.journal.Emit(obs.Event{
			Type: "retry", FS: ck.caps.Name, Workload: ck.w.Name,
			Fence: out.ctx.fence, Sys: out.ctx.sys, Rank: out.ctx.rank,
			Phase: out.ctx.phase.String(),
		})
	}
	if out.q != nil {
		if len(ck.res.Quarantined) >= maxViolationsPerRun {
			ck.res.SuppressedQuarantine++
		} else {
			ck.res.Quarantined = append(ck.res.Quarantined, *out.q)
		}
		ck.journal.Emit(obs.Event{
			Type: "quarantine", FS: ck.caps.Name, Workload: ck.w.Name,
			Fence: out.q.Fence, Sys: out.q.Sys, Rank: out.q.Rank,
			Phase: out.q.Phase.String(), Kind: out.q.Kind.String(),
			StateKey: fmt.Sprintf("%016x", out.q.StateKey),
			Detail:   out.q.Detail,
		})
	}
	if out.v != nil {
		ck.reportViolation(*out.v)
		ck.journal.Emit(obs.Event{
			Type: "violation", FS: ck.caps.Name, Workload: ck.w.Name,
			Fence: out.ctx.fence, Sys: out.ctx.sys, Rank: out.ctx.rank,
			Phase: out.v.Phase.String(), Kind: out.v.Kind.String(),
			Detail: firstLine(out.v.Detail),
			Prefix: ck.tracePrefix(out.ctx.sys),
		})
	}
}

// checkOne checks one crash state (base image + replayed subset) end to end:
// sandboxed attempt, bounded retry, quarantine on deterministic failure.
// Safe to call from worker goroutines.
func (ck *checker) checkOne(img []byte, log *trace.Log, st crashState, cctx crashCtx) checkOutcome {
	cctx.subset = st.subset
	if ck.cfg.DisableSandbox && !ck.cfg.Faults.Enabled() {
		return checkOutcome{done: true, v: ck.checkDirect(img, log, st, cctx), ctx: cctx}
	}

	timeout := ck.cfg.CheckTimeout
	if timeout == 0 {
		timeout = DefaultCheckTimeout
	}
	retries := ck.cfg.CheckRetries
	if retries == 0 {
		retries = DefaultCheckRetries
	} else if retries < 0 {
		retries = 0
	}

	backoff := time.Millisecond
	var last attemptResult
	attempts := 0
	for {
		last = ck.attempt(img, log, st, cctx, timeout)
		attempts++
		switch {
		case last.cancelled:
			return checkOutcome{cancelled: true}
		case last.ok:
			return checkOutcome{done: true, v: last.v, retried: attempts > 1, ctx: cctx}
		case last.media != nil:
			// An injected media fault is deterministic by construction:
			// classify immediately, no retry, no quarantine — it is a
			// modeled crash outcome, not a checker failure.
			ck.obs.Inc(obs.CtrFaultsInjected)
			return checkOutcome{done: true, v: ck.violation(cctx, VUnreadable,
				fmt.Sprintf("reading recovered state failed: %v", last.media)), ctx: cctx}
		}
		if attempts <= retries {
			time.Sleep(backoff)
			backoff *= 4
			continue
		}
		break
	}

	// Deterministic panic or hang: quarantine the state and classify it.
	kind, detail := VPanic, "check panicked: "+firstLine(last.panicVal)
	if last.timedOut {
		kind, detail = VTimeout, fmt.Sprintf("check exceeded %v deadline", timeout)
	}
	q := &Quarantine{
		Workload: ck.w.Name,
		Fence:    cctx.fence,
		Sys:      cctx.sys,
		Phase:    cctx.phase,
		Rank:     cctx.rank,
		Subset:   append([]int(nil), st.subset...),
		StateKey: stateDigest(img, log, st),
		Kind:     kind,
		Detail:   detail,
		Stack:    last.stack,
		Attempts: attempts,
	}
	return checkOutcome{done: true, v: ck.violation(cctx, kind, detail), q: q, ctx: cctx}
}

// workerImage is one pooled crash-image pair with its reusable device and
// undo log. Invariant while pooled: both images hold exactly the contents of
// run `run`'s working image at generation gen (-1 = never primed). prime
// re-establishes the invariant for the current run and generation, applyDelta
// perturbs it for one crash state, and release restores it — so a state
// whose base is already primed costs only its own diff, never a device copy.
// Images recycle across engine runs through the process-wide pool
// (arena.go); the run token is what keeps a stale image's generations from
// aliasing a new run's.
type workerImage struct {
	dev *pmem.Device
	// img is the single buffer serving as BOTH the volatile and persistent
	// image: a just-rebooted device starts with the two identical, and a
	// crash-state check never examines durability again, so the unified
	// device (pmem.WrapImage) keeps them fused — halving prime, delta, and
	// rollback traffic relative to a two-image pair.
	img  []byte
	undo *pmem.UndoLog
	run  int64
	gen  int64
}

func newWorkerImage(size int) *workerImage {
	wi := &workerImage{
		img:  make([]byte, size),
		undo: pmem.NewUndoLog(nil),
		gen:  -1,
	}
	wi.dev = pmem.WrapImage(wi.img)
	wi.dev.TrackUndo(wi.undo)
	return wi
}

// Image-lease states: the ownership protocol between the dispatcher and the
// sandbox goroutine it spawned. The goroutine transitions running → clean
// (after rolling back the guest's mutations) or running → poisoned (panic or
// media error left the check half-done); the dispatcher transitions
// running → abandoned when the watchdog fires or the run is cancelled.
// Exactly one side wins the CAS, and with it, ownership of the image:
// clean images are released back to the pool, everything else is retired —
// an abandoned goroutine may still be scribbling on its buffers, and a
// poisoned image can no longer be trusted to equal base-plus-delta.
const (
	leaseRunning int32 = iota
	leaseClean
	leasePoisoned
	leaseAbandoned
)

// attempt runs one sandboxed check attempt: lease a pooled image, prime it
// with the fence's base if its generation is stale, apply the crash state's
// delta (subset writes and injected faults) on the dispatching side, then
// mount and check on a fresh goroutine guarded by recover() and a watchdog
// timer. On a clean finish the image is restored and pooled; on
// abandonment or poisoning it is retired.
//
// Replay runs OUTSIDE the sandbox goroutine on purpose: the working image
// belongs to the coordinator, which keeps advancing it after a timed-out
// goroutine is abandoned — a goroutine still reading img at that point is
// a data race. Replay is trusted engine code (no guest involvement), so
// only the guest-facing mount/check phase needs containment; media-error
// panics are raised at read time, inside that phase. It also means the
// replay stage window is a synchronous span of the dispatcher's timeline,
// which keeps the -stats stage sum tracking wall-clock.
func (ck *checker) attempt(img []byte, log *trace.Log, st crashState, cctx crashCtx, timeout time.Duration) attemptResult {
	if ck.cfg.DisableDeltaMaterialize {
		return ck.attemptFullCopy(img, log, st.subset, cctx, timeout)
	}
	rt := ck.obs.Start()
	wi := ck.grabImage()
	inj := ck.injector(cctx)
	// With faults off the state's diff key is its exact materialization
	// recipe: apply (and later revert) each coalesced run once. Fault
	// injection tears individual stores, so it must go through the
	// per-store path — a torn prefix can differ from the diff runs.
	coal := st.keyed && inj == nil && !ck.cfg.DisableCoalescedApply
	ck.prime(wi, img, log)
	flipOff, flipped := ck.applyDelta(wi, log, st, inj, coal)
	ck.obs.ObserveSince(obs.StageReplay, rt)
	wi.dev.Reset()
	wi.dev.InjectFaults(inj)

	// The mount window opens before the spawn so the goroutine handoff
	// bills to mount — the windows tile across the sandbox boundary.
	mt := ck.obs.Start()
	var lease atomic.Int32 // leaseRunning
	done := make(chan attemptResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				res := attemptResult{
					panicked: true,
					panicVal: fmt.Sprint(r),
					stack:    string(debug.Stack()),
				}
				if me, ok := r.(*pmem.MediaError); ok {
					res = attemptResult{media: me}
				}
				if lease.CompareAndSwap(leaseRunning, leasePoisoned) {
					done <- res
				}
				// CAS lost: abandoned mid-check — the dispatcher already
				// retired the image and stopped listening.
			}
		}()

		v, ct := ck.checkState(wi.dev, cctx, mt)

		// Undo the guest's mount-time mutations while still owning the
		// image, THEN publish the clean hand-back: the dispatcher reverts
		// only the delta spans. If abandonment won the CAS the rollback was
		// wasted work on a retired buffer — harmless.
		rolledBack := wi.undo.Rollback()
		if lease.CompareAndSwap(leaseRunning, leaseClean) {
			ck.obs.Add(obs.CtrBytesRolledBack, rolledBack)
			done <- attemptResult{ok: true, v: v, checkStart: ct}
		}
	}()

	// finish settles the image lease after a hand-back: clean images go
	// back to the pool (delta reverted), poisoned ones are retired.
	finish := func(r attemptResult) attemptResult {
		if lease.Load() == leaseClean {
			ck.release(wi, img, st, coal, flipOff, flipped)
		} else {
			ck.obs.Inc(obs.CtrImagesRetired)
		}
		if r.ok {
			ck.obs.ObserveSince(obs.StageCheck, r.checkStart)
		}
		return r
	}

	var timerC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timerC = t.C
	}
	var cancelC <-chan struct{}
	if ck.ctx != nil {
		cancelC = ck.ctx.Done()
	}
	select {
	case r := <-done:
		return finish(r)
	case <-timerC:
		if lease.CompareAndSwap(leaseRunning, leaseAbandoned) {
			ck.obs.Inc(obs.CtrImagesRetired)
			ck.abandoned.Add(1)
			return attemptResult{timedOut: true}
		}
		// The check finished inside the deadline/CAS race window; its send
		// is already buffered (or imminent) — use the real result.
		return finish(<-done)
	case <-cancelC:
		if lease.CompareAndSwap(leaseRunning, leaseAbandoned) {
			ck.obs.Inc(obs.CtrImagesRetired)
			ck.abandoned.Add(1)
			return attemptResult{cancelled: true}
		}
		// Reclaim or retire the image, but still report cancellation: a
		// cancelled run's partial results are discarded either way.
		finish(<-done)
		return attemptResult{cancelled: true}
	}
}

// prime establishes the pooled-image invariant for the current run and
// generation: a current image is untouched (zero copies — the empty-subset
// fast path), an image exactly one generation behind catches up by replaying
// the last fence's advance recipe (O(advance bytes)), and anything older —
// fresh from the pool, left over from a previous run, or stale after the
// coordinator moved on — is re-primed by full device copy, the only
// O(device) operation left on the check path. The run-token check comes
// first: a recycled image's generation numbers are meaningless outside the
// run that stamped them.
func (ck *checker) prime(wi *workerImage, base []byte, log *trace.Log) {
	if wi.run == ck.runID {
		if wi.gen == ck.baseGen {
			return
		}
		if wi.gen == ck.baseGen-1 && ck.advGen == ck.baseGen {
			var n int64
			for _, idx := range ck.advance {
				e := log.At(idx)
				trace.Apply(wi.img, e)
				n += int64(len(e.Data))
			}
			wi.gen = ck.baseGen
			ck.obs.Add(obs.CtrBytesPrimed, n)
			return
		}
	}
	copy(wi.img, base)
	wi.run = ck.runID
	wi.gen = ck.baseGen
	ck.obs.Inc(obs.CtrImagePrimes)
	ck.obs.Add(obs.CtrBytesPrimed, int64(len(base)))
}

// applyDelta perturbs a primed image into one crash state. On the coalesced
// path (faults off) the state's byte-diff key is the recipe: each merged
// (offset, length, bytes) run lands on the unified image exactly once —
// overlapping stores were already resolved, last-writer-wins, when the key
// was computed. Otherwise the subset's writes land per store in program
// order (torn to a word-aligned prefix when the injector says so), then the
// injected bit flip. The just-rebooted volatile == persistent invariant the
// legacy path establishes by copying is structural here: the unified device
// serves both images from wi.img. Cost is O(diff bytes) coalesced,
// O(subset bytes) otherwise; both independent of device size.
func (ck *checker) applyDelta(wi *workerImage, log *trace.Log, st crashState, inj *pmem.Injector, coal bool) (flipOff int64, flipped bool) {
	if coal {
		var n int64
		forEachKeyRun(st.key, func(off int64, data string) {
			copy(wi.img[off:off+int64(len(data))], data)
			n += int64(len(data))
		})
		ck.obs.Add(obs.CtrBytesMaterialized, n)
		return 0, false
	}
	var n int64
	for _, idx := range st.subset {
		e := log.At(idx)
		if !e.IsWrite() {
			continue
		}
		tn := inj.TornPrefix(uint64(e.Seq), len(e.Data))
		if tn < len(e.Data) {
			ck.obs.Inc(obs.CtrFaultsInjected)
		}
		copy(wi.img[e.Off:e.Off+int64(tn)], e.Data[:tn])
		n += int64(tn)
	}
	if inj != nil {
		if flipOff, _, flipped = inj.FlipBit(wi.img); flipped {
			ck.obs.Inc(obs.CtrFaultsInjected)
			n++
		}
	}
	ck.obs.Add(obs.CtrBytesMaterialized, n)
	return flipOff, flipped
}

// release returns a cleanly-finished image to the pool. The sandbox
// goroutine already rolled back the guest's mutations, so exactly the delta
// this attempt applied remains. On the coalesced path only the key's diff
// runs were written, so only those bytes are re-copied from the base — the
// minimal restore. Otherwise the subset's merged spans are re-copied (the
// spans over-approximate the diff) plus the flipped byte, which may land
// outside every span; when it lands inside, the span copy has already
// restored it and the second write is a same-value no-op. Either way the
// pooled-image invariant (contents == base at wi.gen) holds afterward.
func (ck *checker) release(wi *workerImage, base []byte, st crashState, coal bool, flipOff int64, flipped bool) {
	var n int64
	if coal {
		forEachKeyRun(st.key, func(off int64, data string) {
			copy(wi.img[off:off+int64(len(data))], base[off:off+int64(len(data))])
			n += int64(len(data))
		})
	} else {
		for _, s := range st.spans {
			copy(wi.img[s.lo:s.hi], base[s.lo:s.hi])
			n += s.hi - s.lo
		}
		if flipped {
			wi.img[flipOff] = base[flipOff]
			n++
		}
	}
	ck.obs.Add(obs.CtrBytesRolledBack, n)
	ck.putImage(wi)
}

// forEachKeyRun decodes a byte-diff key's (offset, length, bytes) records.
// The callback's data string aliases the key — no copies.
func forEachKeyRun(key string, fn func(off int64, data string)) {
	for i := 0; i+12 <= len(key); {
		off := int64(beUint64(key[i:]))
		n := int(beUint32(key[i+8:]))
		i += 12
		fn(off, key[i:i+n])
		i += n
	}
}

// beUint64 and beUint32 read big-endian integers from a string without the
// []byte conversion binary.BigEndian would force (and its allocation).
func beUint64(s string) uint64 {
	_ = s[7]
	return uint64(s[0])<<56 | uint64(s[1])<<48 | uint64(s[2])<<40 | uint64(s[3])<<32 |
		uint64(s[4])<<24 | uint64(s[5])<<16 | uint64(s[6])<<8 | uint64(s[7])
}

func beUint32(s string) uint32 {
	_ = s[3]
	return uint32(s[0])<<24 | uint32(s[1])<<16 | uint32(s[2])<<8 | uint32(s[3])
}

// attemptFullCopy is the legacy materialization path
// (Config.DisableDeltaMaterialize): two full-device copies into pooled
// buffers per crash state. Kept so the differential tests can assert the
// delta path changes nothing.
func (ck *checker) attemptFullCopy(img []byte, log *trace.Log, subset []int, cctx crashCtx, timeout time.Duration) attemptResult {
	rt := ck.obs.Start()
	fresh := ck.cfg.DisableBufferReuse
	persistent := grabBuf(ck.devSize, fresh)
	volatile := grabBuf(ck.devSize, fresh)
	inj := ck.injector(cctx)
	ck.materialize(persistent, img, log, subset, inj)
	if inj != nil {
		if _, _, flipped := inj.FlipBit(persistent); flipped {
			ck.obs.Inc(obs.CtrFaultsInjected)
		}
	}
	copy(volatile, persistent)
	ck.obs.ObserveSince(obs.StageReplay, rt)
	dev := pmem.WrapImages(volatile, persistent)
	dev.InjectFaults(inj)

	// The mount window opens before the spawn so the goroutine handoff
	// bills to mount — the windows tile across the sandbox boundary.
	mt := ck.obs.Start()
	done := make(chan attemptResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				// Every attempt re-copies the buffers in full before use,
				// so they are safe to recycle even after a mid-check panic.
				putBuf(persistent, fresh)
				putBuf(volatile, fresh)
				if me, ok := r.(*pmem.MediaError); ok {
					done <- attemptResult{media: me}
					return
				}
				done <- attemptResult{
					panicked: true,
					panicVal: fmt.Sprint(r),
					stack:    string(debug.Stack()),
				}
			}
		}()

		v, ct := ck.checkState(dev, cctx, mt)

		// A timed-out check was abandoned together with these buffers; only
		// the goroutine itself knows when they are safe to recycle.
		putBuf(persistent, fresh)
		putBuf(volatile, fresh)
		done <- attemptResult{ok: true, v: v, checkStart: ct}
	}()

	var timerC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timerC = t.C
	}
	var cancelC <-chan struct{}
	if ck.ctx != nil {
		cancelC = ck.ctx.Done()
	}
	select {
	case r := <-done:
		if r.ok {
			ck.obs.ObserveSince(obs.StageCheck, r.checkStart)
		}
		return r
	case <-timerC:
		ck.abandoned.Add(1)
		return attemptResult{timedOut: true}
	case <-cancelC:
		ck.abandoned.Add(1)
		return attemptResult{cancelled: true}
	}
}

// checkDirect is the inline path (Config.DisableSandbox), kept so the
// differential tests can assert the sandbox changes nothing for well-behaved
// guests. It materializes the same way the sandboxed path does — delta by
// default, full-copy under DisableDeltaMaterialize — minus fault injection
// (faults force the sandbox on).
func (ck *checker) checkDirect(img []byte, log *trace.Log, st crashState, cctx crashCtx) *Violation {
	fresh := ck.cfg.DisableBufferReuse
	if ck.cfg.DisableDeltaMaterialize {
		persistent := grabBuf(ck.devSize, fresh)
		volatile := grabBuf(ck.devSize, fresh)
		defer func() {
			putBuf(persistent, fresh)
			putBuf(volatile, fresh)
		}()
		rt := ck.obs.Start()
		ck.materialize(persistent, img, log, st.subset, nil)
		copy(volatile, persistent)
		ck.obs.ObserveSince(obs.StageReplay, rt)
		v, ct := ck.checkState(pmem.WrapImages(volatile, persistent), cctx, ck.obs.Start())
		ck.obs.ObserveSince(obs.StageCheck, ct)
		return v
	}

	wi := ck.grabImage()
	coal := st.keyed && !ck.cfg.DisableCoalescedApply
	rt := ck.obs.Start()
	ck.prime(wi, img, log)
	ck.applyDelta(wi, log, st, nil, coal)
	ck.obs.ObserveSince(obs.StageReplay, rt)
	wi.dev.Reset()
	v, ct := ck.checkState(wi.dev, cctx, ck.obs.Start())
	ck.obs.ObserveSince(obs.StageCheck, ct)
	ck.obs.Add(obs.CtrBytesRolledBack, wi.undo.Rollback())
	ck.release(wi, img, st, coal, 0, false)
	return v
}

// materialize builds the crash image: base bytes plus the replayed subset,
// each write torn down to a word-aligned prefix when the injector says so.
func (ck *checker) materialize(persistent, img []byte, log *trace.Log, subset []int, inj *pmem.Injector) {
	copy(persistent, img)
	for _, idx := range subset {
		e := log.At(idx)
		if !e.IsWrite() {
			continue
		}
		n := inj.TornPrefix(uint64(e.Seq), len(e.Data))
		if n < len(e.Data) {
			ck.obs.Inc(obs.CtrFaultsInjected)
		}
		copy(persistent[e.Off:e.Off+int64(n)], e.Data[:n])
	}
}

// injector builds the per-state fault injector (nil when faults are off).
// The salt mixes the crash point's identity — fence ordinal, subset rank,
// syscall, phase — so every state faults independently yet identically on
// retry, in any worker, serial or parallel.
func (ck *checker) injector(cctx crashCtx) *pmem.Injector {
	if !ck.cfg.Faults.Enabled() {
		return nil
	}
	salt := uint64(cctx.fence)*0x100000001b3 ^
		uint64(cctx.rank)*0x9e3779b97f4a7c15 ^
		uint64(cctx.sys+2)<<1 ^
		uint64(cctx.phase)
	return pmem.NewInjector(ck.cfg.Faults, salt)
}

// stateDigest fingerprints a crash state for the quarantine ledger: the
// FNV-64a digest of the byte-diff key (the (offset, length, bytes) runs
// where the materialized image differs from the fence's base image — the
// same identity stateKey deduplicates on). Keyed states hash their key
// directly — the key IS the record stream the legacy digest hashed, so the
// digests are identical without re-deriving the diff (which used to cost a
// full-image copy per quarantine). Post-syscall states, which ARE their base
// image, digest the whole image. The unkeyed-subset fallback re-derives the
// diff the slow way; it only runs for states built outside enumerate (tests).
// Safe from worker goroutines.
func stateDigest(img []byte, log *trace.Log, st crashState) uint64 {
	if st.keyed {
		return fnv64a(st.key)
	}
	h := fnv.New64a()
	if len(st.subset) == 0 {
		h.Write(img)
		return h.Sum64()
	}
	scratch := append([]byte(nil), img...)
	for _, idx := range st.subset {
		trace.Apply(scratch, log.At(idx))
	}
	var rec [12]byte
	for i := 0; i < len(img); {
		if scratch[i] == img[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(img) && scratch[j] != img[j] {
			j++
		}
		binary.BigEndian.PutUint64(rec[:8], uint64(i))
		binary.BigEndian.PutUint32(rec[8:], uint32(j-i))
		h.Write(rec[:])
		h.Write(scratch[i:j])
		i = j
	}
	return h.Sum64()
}

// fnv64a is hash/fnv's 64-bit FNV-1a over a string, hand-rolled so the hot
// path never allocates a hasher.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// tracePrefix renders the workload's ops up to and including the implicated
// syscall — see TracePrefix, which it delegates to.
func (ck *checker) tracePrefix(sys int) string {
	return TracePrefix(ck.w, sys)
}

// firstLine truncates a panic rendering to its first line so violation
// details stay deterministic and report-sized.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
