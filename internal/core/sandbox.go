package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"strings"
	"time"

	"chipmunk/internal/obs"
	"chipmunk/internal/pmem"
	"chipmunk/internal/trace"
)

// This file is the check sandbox: the in-process analogue of the paper's VM
// farm (§4.2). The paper mounts every crash state inside a disposable VM
// precisely because a corrupted state can take the guest kernel down with
// it; here every per-crash-state check (mount, oracle comparison, usability
// probe) runs on a watchdogged goroutine with panic containment, so a
// hostile state costs one classified report instead of the whole census.
//
// Outcome taxonomy:
//   - success: the check's verdict (violation or clean) is used as-is;
//   - media error (*pmem.MediaError): an injected fault — classified as
//     VUnreadable, no retry (the poison is deterministic by construction);
//   - panic/timeout: retried with backoff up to Config.CheckRetries times;
//     a failure that survives every retry is deterministic — the state is
//     quarantined (Result.Quarantined) and classified VPanic/VTimeout.
//
// A timed-out goroutine cannot be killed in Go; it is abandoned together
// with its pooled buffers (it returns them itself if it ever completes).
// That leak is the price of a census that always terminates — the same
// trade the paper makes when it shoots a wedged VM.

// checkOutcome is what one sandboxed check contributes to the result; the
// caller folds it (serially, in canonical rank order) via fold.
type checkOutcome struct {
	done      bool // the check reached a classified outcome (counted)
	v         *Violation
	q         *Quarantine
	retried   bool // succeeded only after a retry (transient failure)
	cancelled bool // run context cancelled mid-check; nothing counted
	ctx       crashCtx // crash point identity, for journal attribution
}

// attemptResult is the raw outcome of one sandboxed attempt.
type attemptResult struct {
	ok        bool
	v         *Violation
	media     *pmem.MediaError
	panicked  bool
	panicVal  string
	stack     string
	timedOut  bool
	cancelled bool
	// checkStart is the open check-stage window (see checkState): the
	// dispatching side closes it after the hand-back so the stage total
	// includes the sandbox return path. Zero when the attempt failed before
	// the check phase or observability is off.
	checkStart time.Time
}

// fold applies one outcome to the result. Coordinator-only: parallel
// workers hand their outcomes back in rank order instead. Zero-value
// outcomes (cancelled runs leave unclaimed slots) fold to nothing.
func (ck *checker) fold(out checkOutcome) {
	if !out.done || out.cancelled {
		return
	}
	ck.res.StatesChecked++
	if out.retried {
		ck.res.RetriedChecks++
		ck.journal.Emit(obs.Event{
			Type: "retry", FS: ck.caps.Name, Workload: ck.w.Name,
			Fence: out.ctx.fence, Sys: out.ctx.sys, Rank: out.ctx.rank,
			Phase: out.ctx.phase.String(),
		})
	}
	if out.q != nil {
		if len(ck.res.Quarantined) >= maxViolationsPerRun {
			ck.res.SuppressedQuarantine++
		} else {
			ck.res.Quarantined = append(ck.res.Quarantined, *out.q)
		}
		ck.journal.Emit(obs.Event{
			Type: "quarantine", FS: ck.caps.Name, Workload: ck.w.Name,
			Fence: out.q.Fence, Sys: out.q.Sys, Rank: out.q.Rank,
			Phase: out.q.Phase.String(), Kind: out.q.Kind.String(),
			StateKey: fmt.Sprintf("%016x", out.q.StateKey),
			Detail:   out.q.Detail,
		})
	}
	if out.v != nil {
		ck.reportViolation(*out.v)
		ck.journal.Emit(obs.Event{
			Type: "violation", FS: ck.caps.Name, Workload: ck.w.Name,
			Fence: out.ctx.fence, Sys: out.ctx.sys, Rank: out.ctx.rank,
			Phase: out.v.Phase.String(), Kind: out.v.Kind.String(),
			Detail: firstLine(out.v.Detail),
		})
	}
}

// checkOne checks one crash state (base image + replayed subset) end to end:
// sandboxed attempt, bounded retry, quarantine on deterministic failure.
// Safe to call from worker goroutines.
func (ck *checker) checkOne(img []byte, log *trace.Log, subset []int, cctx crashCtx) checkOutcome {
	cctx.subset = subset
	if ck.cfg.DisableSandbox && !ck.cfg.Faults.Enabled() {
		return checkOutcome{done: true, v: ck.checkDirect(img, log, subset, cctx), ctx: cctx}
	}

	timeout := ck.cfg.CheckTimeout
	if timeout == 0 {
		timeout = DefaultCheckTimeout
	}
	retries := ck.cfg.CheckRetries
	if retries == 0 {
		retries = DefaultCheckRetries
	} else if retries < 0 {
		retries = 0
	}

	backoff := time.Millisecond
	var last attemptResult
	attempts := 0
	for {
		last = ck.attempt(img, log, subset, cctx, timeout)
		attempts++
		switch {
		case last.cancelled:
			return checkOutcome{cancelled: true}
		case last.ok:
			return checkOutcome{done: true, v: last.v, retried: attempts > 1, ctx: cctx}
		case last.media != nil:
			// An injected media fault is deterministic by construction:
			// classify immediately, no retry, no quarantine — it is a
			// modeled crash outcome, not a checker failure.
			ck.obs.Inc(obs.CtrFaultsInjected)
			return checkOutcome{done: true, v: ck.violation(cctx, VUnreadable,
				fmt.Sprintf("reading recovered state failed: %v", last.media)), ctx: cctx}
		}
		if attempts <= retries {
			time.Sleep(backoff)
			backoff *= 4
			continue
		}
		break
	}

	// Deterministic panic or hang: quarantine the state and classify it.
	kind, detail := VPanic, "check panicked: "+firstLine(last.panicVal)
	if last.timedOut {
		kind, detail = VTimeout, fmt.Sprintf("check exceeded %v deadline", timeout)
	}
	q := &Quarantine{
		Workload: ck.w.Name,
		Fence:    cctx.fence,
		Sys:      cctx.sys,
		Phase:    cctx.phase,
		Rank:     cctx.rank,
		Subset:   append([]int(nil), subset...),
		StateKey: stateDigest(img, log, subset),
		Kind:     kind,
		Detail:   detail,
		Stack:    last.stack,
		Attempts: attempts,
	}
	return checkOutcome{done: true, v: ck.violation(cctx, kind, detail), q: q, ctx: cctx}
}

// attempt runs one sandboxed check attempt: materialize the crash image
// into pooled buffers and apply injected faults on the dispatching side,
// then mount and check on a fresh goroutine guarded by recover() and a
// watchdog timer.
//
// Replay runs OUTSIDE the sandbox goroutine on purpose: the working image
// belongs to the coordinator, which keeps advancing it after a timed-out
// goroutine is abandoned — a goroutine still reading img at that point is
// a data race. Replay is trusted engine code (no guest involvement), so
// only the guest-facing mount/check phase needs containment; media-error
// panics are raised at read time, inside that phase. It also means the
// replay stage window is a synchronous span of the dispatcher's timeline,
// which keeps the -stats stage sum tracking wall-clock.
func (ck *checker) attempt(img []byte, log *trace.Log, subset []int, cctx crashCtx, timeout time.Duration) attemptResult {
	rt := ck.obs.Start()
	persistent := ck.pool.Get().([]byte)
	volatile := ck.pool.Get().([]byte)
	inj := ck.injector(cctx)
	ck.materialize(persistent, img, log, subset, inj)
	if inj != nil {
		if _, _, flipped := inj.FlipBit(persistent); flipped {
			ck.obs.Inc(obs.CtrFaultsInjected)
		}
	}
	copy(volatile, persistent)
	ck.obs.ObserveSince(obs.StageReplay, rt)
	dev := pmem.WrapImages(volatile, persistent)
	dev.InjectFaults(inj)

	// The mount window opens before the spawn so the goroutine handoff
	// bills to mount — the windows tile across the sandbox boundary.
	mt := ck.obs.Start()
	done := make(chan attemptResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				// Every attempt re-copies the buffers in full before use,
				// so they are safe to recycle even after a mid-check panic.
				ck.pool.Put(persistent) //nolint:staticcheck // fixed-size []byte, pooled by design
				ck.pool.Put(volatile)   //nolint:staticcheck
				if me, ok := r.(*pmem.MediaError); ok {
					done <- attemptResult{media: me}
					return
				}
				done <- attemptResult{
					panicked: true,
					panicVal: fmt.Sprint(r),
					stack:    string(debug.Stack()),
				}
			}
		}()

		v, ct := ck.checkState(dev, cctx, mt)

		// A timed-out check was abandoned together with these buffers; only
		// the goroutine itself knows when they are safe to recycle.
		ck.pool.Put(persistent) //nolint:staticcheck
		ck.pool.Put(volatile)   //nolint:staticcheck
		done <- attemptResult{ok: true, v: v, checkStart: ct}
	}()

	var timerC <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timerC = t.C
	}
	var cancelC <-chan struct{}
	if ck.ctx != nil {
		cancelC = ck.ctx.Done()
	}
	select {
	case r := <-done:
		if r.ok {
			ck.obs.ObserveSince(obs.StageCheck, r.checkStart)
		}
		return r
	case <-timerC:
		return attemptResult{timedOut: true}
	case <-cancelC:
		return attemptResult{cancelled: true}
	}
}

// checkDirect is the pre-sandbox inline path (Config.DisableSandbox), kept
// so the differential tests can assert the sandbox changes nothing for
// well-behaved guests.
func (ck *checker) checkDirect(img []byte, log *trace.Log, subset []int, cctx crashCtx) *Violation {
	persistent := ck.pool.Get().([]byte)
	volatile := ck.pool.Get().([]byte)
	defer func() {
		ck.pool.Put(persistent) //nolint:staticcheck // fixed-size []byte, pooled by design
		ck.pool.Put(volatile)   //nolint:staticcheck
	}()
	rt := ck.obs.Start()
	ck.materialize(persistent, img, log, subset, nil)
	copy(volatile, persistent)
	ck.obs.ObserveSince(obs.StageReplay, rt)
	v, ct := ck.checkState(pmem.WrapImages(volatile, persistent), cctx, ck.obs.Start())
	ck.obs.ObserveSince(obs.StageCheck, ct)
	return v
}

// materialize builds the crash image: base bytes plus the replayed subset,
// each write torn down to a word-aligned prefix when the injector says so.
func (ck *checker) materialize(persistent, img []byte, log *trace.Log, subset []int, inj *pmem.Injector) {
	copy(persistent, img)
	for _, idx := range subset {
		e := log.At(idx)
		if !e.IsWrite() {
			continue
		}
		n := inj.TornPrefix(uint64(e.Seq), len(e.Data))
		if n < len(e.Data) {
			ck.obs.Inc(obs.CtrFaultsInjected)
		}
		copy(persistent[e.Off:e.Off+int64(n)], e.Data[:n])
	}
}

// injector builds the per-state fault injector (nil when faults are off).
// The salt mixes the crash point's identity — fence ordinal, subset rank,
// syscall, phase — so every state faults independently yet identically on
// retry, in any worker, serial or parallel.
func (ck *checker) injector(cctx crashCtx) *pmem.Injector {
	if !ck.cfg.Faults.Enabled() {
		return nil
	}
	salt := uint64(cctx.fence)*0x100000001b3 ^
		uint64(cctx.rank)*0x9e3779b97f4a7c15 ^
		uint64(cctx.sys+2)<<1 ^
		uint64(cctx.phase)
	return pmem.NewInjector(ck.cfg.Faults, salt)
}

// stateDigest fingerprints a crash state for the quarantine ledger: the
// FNV-64a digest of the byte-diff key (the (offset, length, bytes) runs
// where the materialized image differs from the fence's base image — the
// same identity stateKey deduplicates on). Post-syscall states, which ARE
// their base image, digest the whole image. Only called on quarantine, so
// the extra allocation is off the hot path; safe from worker goroutines.
func stateDigest(img []byte, log *trace.Log, subset []int) uint64 {
	h := fnv.New64a()
	if len(subset) == 0 {
		h.Write(img)
		return h.Sum64()
	}
	scratch := append([]byte(nil), img...)
	for _, idx := range subset {
		trace.Apply(scratch, log.At(idx))
	}
	var rec [12]byte
	for i := 0; i < len(img); {
		if scratch[i] == img[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(img) && scratch[j] != img[j] {
			j++
		}
		binary.BigEndian.PutUint64(rec[:8], uint64(i))
		binary.BigEndian.PutUint32(rec[8:], uint32(j-i))
		h.Write(rec[:])
		h.Write(scratch[i:j])
		i = j
	}
	return h.Sum64()
}

// firstLine truncates a panic rendering to its first line so violation
// details stay deterministic and report-sized.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
