package core

import (
	"testing"
	"time"

	"chipmunk/internal/bugs"
	"chipmunk/internal/obs"
	"chipmunk/internal/pmem"
	"chipmunk/internal/workload"
)

// compareDeltaResults is the full-Result agreement check the O(diff)
// materialization path must satisfy against the full-copy engine: identical
// violations and quarantine ledgers (String includes kind, state, detail),
// identical state accounting including dedup counts. Anything the delta
// path gets wrong — a stale byte left by an incomplete rollback, a missed
// span, a divergent fault application — shows up here as a differing
// StateKey (and therefore dedup count) or a differing violation.
func compareDeltaResults(t *testing.T, name string, full, delta *Result) {
	t.Helper()
	if full.StatesChecked != delta.StatesChecked {
		t.Errorf("%s: StatesChecked full %d != delta %d", name, full.StatesChecked, delta.StatesChecked)
	}
	if full.StatesDeduped != delta.StatesDeduped {
		t.Errorf("%s: StatesDeduped full %d != delta %d", name, full.StatesDeduped, delta.StatesDeduped)
	}
	if full.Fences != delta.Fences {
		t.Errorf("%s: Fences full %d != delta %d", name, full.Fences, delta.Fences)
	}
	if full.TruncatedFences != delta.TruncatedFences {
		t.Errorf("%s: TruncatedFences full %d != delta %d", name, full.TruncatedFences, delta.TruncatedFences)
	}
	if full.SuppressedViolations != delta.SuppressedViolations {
		t.Errorf("%s: SuppressedViolations full %d != delta %d",
			name, full.SuppressedViolations, delta.SuppressedViolations)
	}
	if full.SuppressedQuarantine != delta.SuppressedQuarantine {
		t.Errorf("%s: SuppressedQuarantine full %d != delta %d",
			name, full.SuppressedQuarantine, delta.SuppressedQuarantine)
	}
	if len(full.Violations) != len(delta.Violations) {
		t.Fatalf("%s: %d full-copy violations != %d delta", name, len(full.Violations), len(delta.Violations))
	}
	for i := range full.Violations {
		if full.Violations[i].String() != delta.Violations[i].String() {
			t.Errorf("%s: violation %d differs\nfull-copy: %s\ndelta:     %s",
				name, i, full.Violations[i], delta.Violations[i])
		}
	}
	if len(full.Quarantined) != len(delta.Quarantined) {
		t.Fatalf("%s: %d full-copy quarantines != %d delta", name, len(full.Quarantined), len(delta.Quarantined))
	}
	for i := range full.Quarantined {
		if full.Quarantined[i].String() != delta.Quarantined[i].String() {
			t.Errorf("%s: quarantine %d differs\nfull-copy: %s\ndelta:     %s",
				name, i, full.Quarantined[i], delta.Quarantined[i])
		}
	}
}

// TestDeltaMaterializeMatchesFullCopy: the tentpole differential. The delta
// path (default) must be byte-identical to the full-copy engine on clean
// and violating runs, exhaustive and capped, serial and workers=8 — the
// prime/apply/rollback lifecycle never leaks one crash state's bytes into
// the next.
func TestDeltaMaterializeMatchesFullCopy(t *testing.T) {
	for _, set := range []bugs.Set{bugs.None(), bugs.AllSet()} {
		for _, cap := range []int{0, 2} {
			for _, workers := range []int{1, 8} {
				for _, w := range []struct {
					name string
					wl   func() workload.Workload
				}{
					{"mixed", mixedWorkload},
					{"rename", renameWorkload},
				} {
					full := mustRun(t, Config{
						NewFS: novaFS(set), Cap: cap, Workers: workers,
						DisableDeltaMaterialize: true,
					}, w.wl())
					delta := mustRun(t, Config{
						NewFS: novaFS(set), Cap: cap, Workers: workers,
					}, w.wl())
					name := w.name
					if len(set.IDs()) > 0 {
						name += "/buggy"
					}
					compareDeltaResults(t, name, full, delta)
				}
			}
		}
	}
}

// TestDeltaMaterializeMatchesFullCopyUnderFaults: with the fault injector
// on, tears and bit-flips must land identically in both engines — the
// injector is a pure function of (seed, state identity), and the delta path
// applies TornPrefix inside its spans and mirrors FlipBit into the volatile
// image exactly as materialize does.
func TestDeltaMaterializeMatchesFullCopyUnderFaults(t *testing.T) {
	fc := &pmem.FaultConfig{Seed: 11, TearOneInN: 2, FlipOneInN: 3}
	for _, workers := range []int{1, 8} {
		full := mustRun(t, Config{
			NewFS: novaFS(bugs.None()), Workers: workers, Faults: fc,
			DisableDeltaMaterialize: true,
		}, mixedWorkload())
		delta := mustRun(t, Config{
			NewFS: novaFS(bugs.None()), Workers: workers, Faults: fc,
		}, mixedWorkload())
		compareDeltaResults(t, "faults", full, delta)
	}
}

// TestDeltaMaterializeRetiresPoisonedImages: a guest that panics during
// Mount leaves its pooled image in an unknown state; the lease protocol
// must retire it (never return it to the pool) while still classifying
// every state identically to the full-copy engine.
func TestDeltaMaterializeRetiresPoisonedImages(t *testing.T) {
	w := sandboxWorkload()
	for _, workers := range []int{1, 8} {
		col := obs.New()
		delta := mustRun(t, Config{
			NewFS: panicNovaFS(bugs.None()), CheckRetries: -1, Workers: workers, Obs: col,
		}, w)
		full := mustRun(t, Config{
			NewFS: panicNovaFS(bugs.None()), CheckRetries: -1, Workers: workers,
			DisableDeltaMaterialize: true,
		}, w)
		compareDeltaResults(t, "panic-guest", full, delta)
		if retired := delta.Obs.Count(obs.CtrImagesRetired); retired == 0 {
			t.Errorf("workers=%d: panicking guest retired no images", workers)
		}
	}
}

// TestDeltaMaterializeRetiresAbandonedImages: a check that outlives its
// deadline abandons its goroutine, which still owns the image — the
// dispatcher must retire it rather than race the rollback.
func TestDeltaMaterializeRetiresAbandonedImages(t *testing.T) {
	col := obs.New()
	res := mustRun(t, Config{
		NewFS:        hangNovaFS(bugs.None()),
		CheckTimeout: 40 * time.Millisecond,
		CheckRetries: -1,
		Obs:          col,
	}, sandboxWorkload())
	if len(res.Violations) == 0 {
		t.Fatal("hanging guest produced no timeout violations")
	}
	for i, v := range res.Violations {
		if v.Kind != VTimeout {
			t.Fatalf("violation %d: kind %v, want VTimeout", i, v.Kind)
		}
	}
	if retired := res.Obs.Count(obs.CtrImagesRetired); retired == 0 {
		t.Error("timed-out checks retired no images")
	}
}

// TestDeltaMaterializeBytesScaleWithDiff: the perf contract. Per-state
// materialization cost must track the crash state's diff (subset bytes +
// guest-mutated bytes), not the device size — and full primes must be rare
// (pool reuse + advance-by-recipe), not once per state as in the full-copy
// engine.
func TestDeltaMaterializeBytesScaleWithDiff(t *testing.T) {
	col := obs.New()
	res := mustRun(t, Config{NewFS: novaFS(bugs.None()), Obs: col}, mixedWorkload())
	states := int64(res.StatesChecked)
	if states == 0 {
		t.Fatal("no states checked")
	}
	mat := res.Obs.Count(obs.CtrBytesMaterialized)
	perState := mat / states
	if perState >= DefaultDevSize/10 {
		t.Errorf("bytes materialized per state = %d, want well under device size %d",
			perState, int64(DefaultDevSize))
	}
	primes := res.Obs.Count(obs.CtrImagePrimes)
	if primes >= states {
		t.Errorf("full primes %d >= states %d; pool reuse never engaged", primes, states)
	}
	if primes == 0 {
		t.Error("no full prime recorded; the first state must prime its image")
	}
	// Every clean check rolls its image back; the counter proves the undo
	// log is engaged on the hot path.
	if res.Obs.Count(obs.CtrBytesRolledBack) == 0 {
		t.Error("no bytes rolled back on a clean run")
	}
}

// TestDeltaMaterializePostSyscallSkipsCopy: post-syscall states (empty
// subset) on an already-primed image need no materialization work at all —
// nothing beyond the guest's own mutations is copied for them. Observable
// as total materialized bytes staying below one device copy on a workload
// dominated by post-syscall states.
func TestDeltaMaterializePostSyscallSkipsCopy(t *testing.T) {
	col := obs.New()
	res := mustRun(t, Config{NewFS: novaFS(bugs.None()), Obs: col}, sandboxWorkload())
	if res.StatesChecked == 0 {
		t.Fatal("no states checked")
	}
	mat := res.Obs.Count(obs.CtrBytesMaterialized)
	if mat >= DefaultDevSize {
		t.Errorf("tiny workload materialized %d bytes, want < one device copy (%d)",
			mat, int64(DefaultDevSize))
	}
}
