package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"chipmunk/internal/obs"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// oracleChecker is the default contract: the §3.3 FS-oracle comparison that
// was hardwired into the engine before the Checker seam existed. Its
// verdicts are byte-identical to the pre-seam engine (pinned by
// TestDefaultCheckerMatchesLegacy in internal/harness): readability,
// synchrony for post-syscall states, atomicity for mid-syscall states, and
// the usability probe, in that order.
type oracleChecker struct {
	env RunEnv

	// snaps caches per-syscall oracle snapshots, keyed by syscall index and
	// published copy-on-write: PrepareCrashPoint (coordinator-only, called
	// before a crash point's states are dispatched) stores a NEW map holding
	// the old entries plus the new one, so concurrent — and even abandoned —
	// Check calls keep reading whichever map they loaded. Snapshots are
	// immutable after build; a Check call that finds no cached entry (the
	// engine skipped preparation, or a bare test checker) builds its own
	// throwaway snapshot, which is exactly the pre-snapshot per-call cost.
	snaps atomic.Value // map[int]*oracleSnapshot
}

// oracleSnapshot is the frozen oracle-visible view of one mid-syscall crash
// point, shared by every crash state checked at it: the sorted union of the
// pre- and post-op oracle paths with the per-path facts checkAtomic needs —
// presence, file states, whether the op modifies the path, and whether a
// pre/post byte mix is legal there. All fields are read-only after
// buildSnapshot returns (the copy-on-write invariant PrepareCrashPoint's
// publication relies on); per-state data stays in checkAtomic's locals.
type oracleSnapshot struct {
	sys           int
	paths         []string
	index         map[string]int
	pre, post     []vfs.FileState
	inPre, inPost []bool
	modified      []bool
	mixOK         []bool
}

// NewOracleChecker builds the default FS-oracle contract — what
// Config.Checker == nil resolves to.
func NewOracleChecker(env RunEnv) Checker {
	return &oracleChecker{env: env}
}

func (oc *oracleChecker) Name() string { return "fs-oracle" }

// captureScratches recycles crash-state capture storage across checks and
// runs. Safe because the capture never escapes Check: every consumer (Diff,
// checkAtomic, usability) reduces it to verdict strings before returning.
var captureScratches = sync.Pool{New: func() any { return new(vfs.Scratch) }}

// Check applies the oracle contract to one mounted crash state. Safe for
// concurrent calls: it only reads the run's frozen RunEnv.
func (oc *oracleChecker) Check(fs vfs.FS, cctx *CheckContext) *Finding {
	scr := captureScratches.Get().(*vfs.Scratch)
	defer captureScratches.Put(scr)
	st, err := vfs.CaptureWith(fs, scr)
	if err != nil {
		return &Finding{Kind: VUnreadable, Detail: fmt.Sprintf("reading recovered state failed: %v", err)}
	}

	switch cctx.Phase {
	case PhasePost:
		if cctx.AckedOps >= 0 && cctx.AckedOps < len(oc.env.OracleStates) {
			if d := vfs.Diff(st, oc.env.OracleStates[cctx.AckedOps]); d != "" {
				return &Finding{Kind: VSynchrony, Detail: d}
			}
		}
	case PhaseMid:
		if detail := oc.checkAtomic(st, cctx); detail != "" {
			return &Finding{Kind: VAtomicity, Detail: detail}
		}
	}

	if !oc.env.SkipUsability {
		if detail := usability(fs, st); detail != "" {
			return &Finding{Kind: VUsability, Detail: detail}
		}
	}
	return nil
}

// PrepareCrashPoint implements CrashPointPreparer: it builds and publishes
// the crash point's oracle snapshot before any of its states reach a check
// worker. Coordinator-only; fences inside the same syscall reuse the entry.
func (oc *oracleChecker) PrepareCrashPoint(cctx *CheckContext) {
	if cctx.Phase != PhaseMid || cctx.Sys < 0 || cctx.Sys+1 >= len(oc.env.OracleStates) {
		return
	}
	old, _ := oc.snaps.Load().(map[int]*oracleSnapshot)
	if _, ok := old[cctx.Sys]; ok {
		return
	}
	next := make(map[int]*oracleSnapshot, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[cctx.Sys] = oc.buildSnapshot(cctx.Sys)
	oc.snaps.Store(next)
}

// snapshotFor returns the crash point's prepared snapshot, or builds a
// throwaway one when none was published (Config.DisableOracleSnapshot, or a
// checker used outside an engine run) — the legacy per-check cost, with the
// identical verdict.
func (oc *oracleChecker) snapshotFor(cctx *CheckContext) *oracleSnapshot {
	if m, _ := oc.snaps.Load().(map[int]*oracleSnapshot); m != nil {
		if s, ok := m[cctx.Sys]; ok {
			oc.env.Obs.Inc(obs.CtrOracleSnapshotHits)
			return s
		}
	}
	return oc.buildSnapshot(cctx.Sys)
}

// buildSnapshot derives one syscall's frozen oracle view: the sorted
// pre ∪ post path union and the per-path modified/mix facts, computed once
// instead of once per crash state. The caller guarantees sys is in range.
func (oc *oracleChecker) buildSnapshot(sys int) *oracleSnapshot {
	pre := oc.env.OracleStates[sys]
	post := oc.env.OracleStates[sys+1]

	index := make(map[string]int, len(pre)+len(post))
	paths := make([]string, 0, len(pre)+len(post))
	for p := range pre {
		if _, ok := index[p]; !ok {
			index[p] = 0
			paths = append(paths, p)
		}
	}
	for p := range post {
		if _, ok := index[p]; !ok {
			index[p] = 0
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	n := len(paths)
	snap := &oracleSnapshot{
		sys: sys, paths: paths, index: index,
		pre: make([]vfs.FileState, n), post: make([]vfs.FileState, n),
		inPre: make([]bool, n), inPost: make([]bool, n),
		modified: make([]bool, n), mixOK: make([]bool, n),
	}
	mixCtx := &CheckContext{Phase: PhaseMid, Sys: sys}
	for i, p := range paths {
		index[p] = i
		preF, inPre := pre[p]
		postF, inPost := post[p]
		snap.pre[i], snap.inPre[i] = preF, inPre
		snap.post[i], snap.inPost[i] = postF, inPost
		snap.modified[i] = inPre != inPost || (inPre && inPost && !preF.Equal(postF))
		snap.mixOK[i] = oc.mixAllowed(mixCtx, p)
	}
	return snap
}

// checkAtomic validates a mid-syscall crash state: every file the call
// modifies must match either the pre-call or post-call oracle version, all
// of them the same version; untouched files must be untouched (§3.3
// "Testing crash states"). The per-path oracle facts come from the crash
// point's shared snapshot; only the crash state itself is examined per call.
func (oc *oracleChecker) checkAtomic(crash vfs.State, cctx *CheckContext) string {
	if cctx.Sys < 0 || cctx.Sys+1 >= len(oc.env.OracleStates) {
		return ""
	}
	snap := oc.snapshotFor(cctx)

	// A crash-only path — present in neither oracle state — is always an
	// untouched-presence violation. Track the first in sort order so the
	// verdict is the one the legacy sorted pre ∪ post ∪ crash walk returned:
	// it fires exactly when the walk would have reached that path before
	// any other violation.
	extra := ""
	for p := range crash {
		if _, ok := snap.index[p]; !ok && (extra == "" || p < extra) {
			extra = p
		}
	}

	var sawPre, sawPost []string
	for i, p := range snap.paths {
		if extra != "" && extra < p {
			return fmt.Sprintf("%s: untouched file presence changed (crash has it: %v)", extra, true)
		}
		crashF, inCrash := crash[p]

		if !snap.modified[i] {
			// Untouched by this call: must match exactly (or be equally
			// absent).
			if snap.inPre[i] != inCrash {
				return fmt.Sprintf("%s: untouched file presence changed (crash has it: %v)", p, inCrash)
			}
			if snap.inPre[i] && !snap.pre[i].Equal(crashF) {
				return fmt.Sprintf("%s: untouched file changed\n  crash:  %s\n  oracle: %s",
					p, crashF.Describe(), snap.pre[i].Describe())
			}
			continue
		}

		matchPre := snap.inPre[i] == inCrash && (!snap.inPre[i] || snap.pre[i].Equal(crashF))
		matchPost := snap.inPost[i] == inCrash && (!snap.inPost[i] || snap.post[i].Equal(crashF))
		switch {
		case matchPre:
			sawPre = append(sawPre, p)
		case matchPost:
			sawPost = append(sawPost, p)
		case snap.mixOK[i] && inCrash && byteMixOK(snap.pre[i], snap.post[i], crashF, snap.inPre[i], snap.inPost[i]):
			// A torn data write on a system without atomic writes: legal,
			// and consistent with either version.
		default:
			detail := fmt.Sprintf("%s: matches neither pre- nor post-op state", p)
			if inCrash {
				detail += "\n  crash:  " + crashF.Describe()
			} else {
				detail += "\n  crash:  (missing)"
			}
			if snap.inPre[i] {
				detail += "\n  pre:    " + snap.pre[i].Describe()
			} else {
				detail += "\n  pre:    (absent)"
			}
			if snap.inPost[i] {
				detail += "\n  post:   " + snap.post[i].Describe()
			} else {
				detail += "\n  post:   (absent)"
			}
			return detail
		}
	}
	if extra != "" {
		return fmt.Sprintf("%s: untouched file presence changed (crash has it: %v)", extra, true)
	}
	if len(sawPre) > 0 && len(sawPost) > 0 {
		return fmt.Sprintf("operation not atomic: %s at pre-op state while %s at post-op state",
			strings.Join(sawPre, ","), strings.Join(sawPost, ","))
	}
	return ""
}

// mixAllowed reports whether path may legally hold a mix of old and new
// bytes in this crash state: the system does not guarantee atomic data
// writes and path names the file the in-flight write/fallocate targets —
// either directly or as a hard-link alias (a torn write is visible under
// every name of the inode).
func (oc *oracleChecker) mixAllowed(cctx *CheckContext, path string) bool {
	if oc.env.Caps.AtomicWrite {
		return false
	}
	if cctx.Sys < 0 || cctx.Sys >= len(oc.env.Workload.Ops) {
		return false
	}
	op := oc.env.Workload.Ops[cctx.Sys]
	switch op.Kind {
	case workload.OpWrite, workload.OpPwrite, workload.OpFalloc:
	case workload.OpKVPut, workload.OpKVDel, workload.OpKVSync:
		// App-level mutation: the store writes through descriptors the op
		// does not record, so any regular file may legally be torn
		// (conservative).
		return true
	default:
		return false
	}
	if op.FDSlot >= 0 {
		// Descriptor-based write: the target path is not recorded in the
		// op, so any regular file may legally be torn (conservative).
		return true
	}
	target := vfs.Clean(op.Path)
	if target == path {
		return true
	}
	if cctx.Sys+1 < len(oc.env.OracleStates) {
		if oc.env.OracleStates[cctx.Sys].SameInode(target, path) ||
			oc.env.OracleStates[cctx.Sys+1].SameInode(target, path) {
			return true
		}
	}
	return false
}

// byteMixOK accepts a torn data write: the size is the old or the new one,
// the link count unchanged, and every byte matches the old or the new
// content (bytes beyond a version's size count as zero).
func byteMixOK(pre, post, crash vfs.FileState, inPre, inPost bool) bool {
	if !inPost || crash.Type != vfs.TypeRegular || post.Type != vfs.TypeRegular {
		return false
	}
	if !inPre {
		// File created by this op: old content is "absent"; a torn state
		// still has the file with partial data.
		pre = vfs.FileState{Type: vfs.TypeRegular, Nlink: post.Nlink}
	}
	if pre.Type != vfs.TypeRegular {
		return false
	}
	if crash.Size != pre.Size && crash.Size != post.Size {
		return false
	}
	if crash.Nlink != post.Nlink {
		return false
	}
	byteAt := func(f vfs.FileState, i int64) byte {
		if i < int64(len(f.Data)) {
			return f.Data[i]
		}
		return 0
	}
	for i := int64(0); i < crash.Size; i++ {
		b := crash.Data[i]
		if b != byteAt(pre, i) && b != byteAt(post, i) {
			return false
		}
	}
	return true
}

// usability validates that the recovered file system is actually usable
// (§3.3): create a file in every directory, write and read it back, then
// delete every file and directory. The mutations land on this state's
// private device copy.
func usability(fs vfs.FS, st vfs.State) string {
	var dirs, files []string
	for p, f := range st {
		if f.Type == vfs.TypeDir {
			dirs = append(dirs, p)
		} else {
			files = append(files, p)
		}
	}
	sort.Strings(dirs)

	probe := "chipmunk_probe"
	for _, d := range dirs {
		path := vfs.Join(d, probe)
		fd, err := fs.Create(path)
		if err != nil {
			return fmt.Sprintf("creating %s failed: %v", path, err)
		}
		if _, err := fs.Pwrite(fd, []byte("probe"), 0); err != nil {
			fs.Close(fd)
			return fmt.Sprintf("writing %s failed: %v", path, err)
		}
		buf := make([]byte, 5)
		if _, err := fs.Pread(fd, buf, 0); err != nil {
			fs.Close(fd)
			return fmt.Sprintf("reading %s back failed: %v", path, err)
		}
		if string(buf) != "probe" {
			fs.Close(fd)
			return fmt.Sprintf("read-back of %s returned %q", path, buf)
		}
		if err := fs.Close(fd); err != nil {
			return fmt.Sprintf("closing %s failed: %v", path, err)
		}
		files = append(files, path)
	}

	sort.Strings(files)
	for _, p := range files {
		if err := fs.Unlink(p); err != nil {
			return fmt.Sprintf("deleting %s failed: %v", p, err)
		}
	}
	// Directories deepest-first; the root stays.
	sort.Slice(dirs, func(i, j int) bool { return len(dirs[i]) > len(dirs[j]) })
	for _, d := range dirs {
		if d == "/" {
			continue
		}
		if err := fs.Rmdir(d); err != nil {
			return fmt.Sprintf("removing directory %s failed: %v", d, err)
		}
	}
	return ""
}
