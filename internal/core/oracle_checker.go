package core

import (
	"fmt"
	"sort"
	"strings"

	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// oracleChecker is the default contract: the §3.3 FS-oracle comparison that
// was hardwired into the engine before the Checker seam existed. Its
// verdicts are byte-identical to the pre-seam engine (pinned by
// TestDefaultCheckerMatchesLegacy in internal/harness): readability,
// synchrony for post-syscall states, atomicity for mid-syscall states, and
// the usability probe, in that order.
type oracleChecker struct {
	env RunEnv
}

// NewOracleChecker builds the default FS-oracle contract — what
// Config.Checker == nil resolves to.
func NewOracleChecker(env RunEnv) Checker {
	return &oracleChecker{env: env}
}

func (oc *oracleChecker) Name() string { return "fs-oracle" }

// Check applies the oracle contract to one mounted crash state. Safe for
// concurrent calls: it only reads the run's frozen RunEnv.
func (oc *oracleChecker) Check(fs vfs.FS, cctx *CheckContext) *Finding {
	st, err := vfs.Capture(fs)
	if err != nil {
		return &Finding{Kind: VUnreadable, Detail: fmt.Sprintf("reading recovered state failed: %v", err)}
	}

	switch cctx.Phase {
	case PhasePost:
		if cctx.AckedOps >= 0 && cctx.AckedOps < len(oc.env.OracleStates) {
			if d := vfs.Diff(st, oc.env.OracleStates[cctx.AckedOps]); d != "" {
				return &Finding{Kind: VSynchrony, Detail: d}
			}
		}
	case PhaseMid:
		if detail := oc.checkAtomic(st, cctx); detail != "" {
			return &Finding{Kind: VAtomicity, Detail: detail}
		}
	}

	if !oc.env.SkipUsability {
		if detail := usability(fs, st); detail != "" {
			return &Finding{Kind: VUsability, Detail: detail}
		}
	}
	return nil
}

// checkAtomic validates a mid-syscall crash state: every file the call
// modifies must match either the pre-call or post-call oracle version, all
// of them the same version; untouched files must be untouched (§3.3
// "Testing crash states").
func (oc *oracleChecker) checkAtomic(crash vfs.State, cctx *CheckContext) string {
	if cctx.Sys < 0 || cctx.Sys+1 >= len(oc.env.OracleStates) {
		return ""
	}
	pre := oc.env.OracleStates[cctx.Sys]
	post := oc.env.OracleStates[cctx.Sys+1]

	paths := map[string]bool{}
	for p := range pre {
		paths[p] = true
	}
	for p := range post {
		paths[p] = true
	}
	for p := range crash {
		paths[p] = true
	}
	sorted := make([]string, 0, len(paths))
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)

	var sawPre, sawPost []string
	for _, p := range sorted {
		preF, inPre := pre[p]
		postF, inPost := post[p]
		crashF, inCrash := crash[p]

		modified := inPre != inPost || (inPre && inPost && !preF.Equal(postF))
		if !modified {
			// Untouched by this call: must match exactly (or be equally
			// absent).
			if inPre != inCrash {
				return fmt.Sprintf("%s: untouched file presence changed (crash has it: %v)", p, inCrash)
			}
			if inPre && !preF.Equal(crashF) {
				return fmt.Sprintf("%s: untouched file changed\n  crash:  %s\n  oracle: %s",
					p, crashF.Describe(), preF.Describe())
			}
			continue
		}

		matchPre := inPre == inCrash && (!inPre || preF.Equal(crashF))
		matchPost := inPost == inCrash && (!inPost || postF.Equal(crashF))
		switch {
		case matchPre:
			sawPre = append(sawPre, p)
		case matchPost:
			sawPost = append(sawPost, p)
		case oc.mixAllowed(cctx, p) && inCrash && byteMixOK(preF, postF, crashF, inPre, inPost):
			// A torn data write on a system without atomic writes: legal,
			// and consistent with either version.
		default:
			detail := fmt.Sprintf("%s: matches neither pre- nor post-op state", p)
			if inCrash {
				detail += "\n  crash:  " + crashF.Describe()
			} else {
				detail += "\n  crash:  (missing)"
			}
			if inPre {
				detail += "\n  pre:    " + preF.Describe()
			} else {
				detail += "\n  pre:    (absent)"
			}
			if inPost {
				detail += "\n  post:   " + postF.Describe()
			} else {
				detail += "\n  post:   (absent)"
			}
			return detail
		}
	}
	if len(sawPre) > 0 && len(sawPost) > 0 {
		return fmt.Sprintf("operation not atomic: %s at pre-op state while %s at post-op state",
			strings.Join(sawPre, ","), strings.Join(sawPost, ","))
	}
	return ""
}

// mixAllowed reports whether path may legally hold a mix of old and new
// bytes in this crash state: the system does not guarantee atomic data
// writes and path names the file the in-flight write/fallocate targets —
// either directly or as a hard-link alias (a torn write is visible under
// every name of the inode).
func (oc *oracleChecker) mixAllowed(cctx *CheckContext, path string) bool {
	if oc.env.Caps.AtomicWrite {
		return false
	}
	if cctx.Sys < 0 || cctx.Sys >= len(oc.env.Workload.Ops) {
		return false
	}
	op := oc.env.Workload.Ops[cctx.Sys]
	switch op.Kind {
	case workload.OpWrite, workload.OpPwrite, workload.OpFalloc:
	case workload.OpKVPut, workload.OpKVDel, workload.OpKVSync:
		// App-level mutation: the store writes through descriptors the op
		// does not record, so any regular file may legally be torn
		// (conservative).
		return true
	default:
		return false
	}
	if op.FDSlot >= 0 {
		// Descriptor-based write: the target path is not recorded in the
		// op, so any regular file may legally be torn (conservative).
		return true
	}
	target := vfs.Clean(op.Path)
	if target == path {
		return true
	}
	if cctx.Sys+1 < len(oc.env.OracleStates) {
		if oc.env.OracleStates[cctx.Sys].SameInode(target, path) ||
			oc.env.OracleStates[cctx.Sys+1].SameInode(target, path) {
			return true
		}
	}
	return false
}

// byteMixOK accepts a torn data write: the size is the old or the new one,
// the link count unchanged, and every byte matches the old or the new
// content (bytes beyond a version's size count as zero).
func byteMixOK(pre, post, crash vfs.FileState, inPre, inPost bool) bool {
	if !inPost || crash.Type != vfs.TypeRegular || post.Type != vfs.TypeRegular {
		return false
	}
	if !inPre {
		// File created by this op: old content is "absent"; a torn state
		// still has the file with partial data.
		pre = vfs.FileState{Type: vfs.TypeRegular, Nlink: post.Nlink}
	}
	if pre.Type != vfs.TypeRegular {
		return false
	}
	if crash.Size != pre.Size && crash.Size != post.Size {
		return false
	}
	if crash.Nlink != post.Nlink {
		return false
	}
	byteAt := func(f vfs.FileState, i int64) byte {
		if i < int64(len(f.Data)) {
			return f.Data[i]
		}
		return 0
	}
	for i := int64(0); i < crash.Size; i++ {
		b := crash.Data[i]
		if b != byteAt(pre, i) && b != byteAt(post, i) {
			return false
		}
	}
	return true
}

// usability validates that the recovered file system is actually usable
// (§3.3): create a file in every directory, write and read it back, then
// delete every file and directory. The mutations land on this state's
// private device copy.
func usability(fs vfs.FS, st vfs.State) string {
	var dirs, files []string
	for p, f := range st {
		if f.Type == vfs.TypeDir {
			dirs = append(dirs, p)
		} else {
			files = append(files, p)
		}
	}
	sort.Strings(dirs)

	probe := "chipmunk_probe"
	for _, d := range dirs {
		path := vfs.Join(d, probe)
		fd, err := fs.Create(path)
		if err != nil {
			return fmt.Sprintf("creating %s failed: %v", path, err)
		}
		if _, err := fs.Pwrite(fd, []byte("probe"), 0); err != nil {
			fs.Close(fd)
			return fmt.Sprintf("writing %s failed: %v", path, err)
		}
		buf := make([]byte, 5)
		if _, err := fs.Pread(fd, buf, 0); err != nil {
			fs.Close(fd)
			return fmt.Sprintf("reading %s back failed: %v", path, err)
		}
		if string(buf) != "probe" {
			fs.Close(fd)
			return fmt.Sprintf("read-back of %s returned %q", path, buf)
		}
		if err := fs.Close(fd); err != nil {
			return fmt.Sprintf("closing %s failed: %v", path, err)
		}
		files = append(files, path)
	}

	sort.Strings(files)
	for _, p := range files {
		if err := fs.Unlink(p); err != nil {
			return fmt.Sprintf("deleting %s failed: %v", p, err)
		}
	}
	// Directories deepest-first; the root stays.
	sort.Slice(dirs, func(i, j int) bool { return len(dirs[i]) > len(dirs[j]) })
	for _, d := range dirs {
		if d == "/" {
			continue
		}
		if err := fs.Rmdir(d); err != nil {
			return fmt.Sprintf("removing directory %s failed: %v", d, err)
		}
	}
	return ""
}
