//go:build race

package core

// raceDetectorEnabled reports whether the binary was built with -race.
const raceDetectorEnabled = true
