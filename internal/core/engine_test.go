package core

import (
	"context"
	"strings"
	"testing"

	"chipmunk/internal/bugs"
	"chipmunk/internal/fs/extdax"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/fs/pmfs"
	"chipmunk/internal/fs/splitfs"
	"chipmunk/internal/fs/winefs"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// factories for each system at a given bug set.
func novaFS(set bugs.Set) func(pm *persist.PM) vfs.FS {
	return func(pm *persist.PM) vfs.FS { return nova.New(pm, set) }
}

func fortisFS(set bugs.Set) func(pm *persist.PM) vfs.FS {
	return func(pm *persist.PM) vfs.FS { return nova.New(pm, set, nova.WithFortis()) }
}

func pmfsFS(set bugs.Set) func(pm *persist.PM) vfs.FS {
	return func(pm *persist.PM) vfs.FS { return pmfs.New(pm, set) }
}

func winefsFS(set bugs.Set) func(pm *persist.PM) vfs.FS {
	return func(pm *persist.PM) vfs.FS { return winefs.New(pm, set) }
}

func splitfsFS(set bugs.Set) func(pm *persist.PM) vfs.FS {
	return func(pm *persist.PM) vfs.FS { return splitfs.New(pm, set) }
}

func extdaxFS() func(pm *persist.PM) vfs.FS {
	return func(pm *persist.PM) vfs.FS { return extdax.New(pm, extdax.Ext4) }
}

// a small but representative workload exercising most syscalls.
func mixedWorkload() workload.Workload {
	return workload.Workload{Name: "mixed", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/a", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/a", FDSlot: -1, Off: 0, Size: 512, Seed: 1},
		{Kind: workload.OpMkdir, Path: "/d"},
		{Kind: workload.OpLink, Path: "/a", Path2: "/d/l"},
		{Kind: workload.OpRename, Path: "/a", Path2: "/b"},
		{Kind: workload.OpTruncate, Path: "/b", Size: 100},
		{Kind: workload.OpUnlink, Path: "/d/l"},
		{Kind: workload.OpRmdir, Path: "/d"},
	}}
}

func renameWorkload() workload.Workload {
	return workload.Workload{Name: "rename", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/old", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/old", FDSlot: -1, Off: 0, Size: 64, Seed: 7},
		{Kind: workload.OpRename, Path: "/old", Path2: "/new"},
	}}
}

func mustRun(t *testing.T, cfg Config, w workload.Workload) *Result {
	t.Helper()
	res, err := RunContext(context.Background(), cfg, w)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

// TestFixedSystemsClean: the engine must report NO violations for any fixed
// file system on the mixed workload — every crash state of a correct system
// recovers legally. This is the no-false-positive guarantee everything else
// rests on.
func TestFixedSystemsClean(t *testing.T) {
	cases := []struct {
		name string
		fs   func(pm *persist.PM) vfs.FS
	}{
		{"nova", novaFS(bugs.None())},
		{"nova-fortis", fortisFS(bugs.None())},
		{"pmfs", pmfsFS(bugs.None())},
		{"winefs", winefsFS(bugs.None())},
		{"splitfs", splitfsFS(bugs.None())},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res := mustRun(t, Config{NewFS: c.fs}, mixedWorkload())
			for _, v := range res.Violations {
				t.Errorf("false positive: %s", v)
			}
			if res.StatesChecked == 0 {
				t.Error("no crash states checked")
			}
		})
	}
}

// TestFixedWeakSystemClean: ext4-DAX with fsync-gated crash points.
func TestFixedWeakSystemClean(t *testing.T) {
	w := workload.Workload{Name: "weak", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/a", FDSlot: 0},
		{Kind: workload.OpPwrite, FDSlot: 0, Off: 0, Size: 256, Seed: 3},
		{Kind: workload.OpFsync, FDSlot: 0},
		{Kind: workload.OpMkdir, Path: "/d"},
		{Kind: workload.OpSync},
		{Kind: workload.OpClose, FDSlot: 0},
	}}
	res := mustRun(t, Config{NewFS: extdaxFS()}, w)
	for _, v := range res.Violations {
		t.Errorf("false positive: %s", v)
	}
	if res.StatesChecked == 0 {
		t.Error("no crash states checked (fsync points missing)")
	}
}

// TestBug4RenameDisappears reproduces Figure 2: NOVA's same-directory
// rename invalidates the old dentry in place before the journal commits; a
// crash state with only that write loses the file entirely.
func TestBug4RenameDisappears(t *testing.T) {
	res := mustRun(t, Config{NewFS: novaFS(bugs.Of(bugs.NovaRenameInPlaceDelete))}, renameWorkload())
	if !res.Buggy() {
		t.Fatal("bug 4 not detected")
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == VAtomicity && v.Phase == PhaseMid && strings.Contains(v.SysName, "rename") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("expected mid-syscall rename atomicity violation, got: %v", res.Violations[0])
	}
	// Fixed NOVA passes the same workload.
	clean := mustRun(t, Config{NewFS: novaFS(bugs.None())}, renameWorkload())
	if clean.Buggy() {
		t.Fatalf("fixed NOVA flagged: %s", clean.Violations[0])
	}
}

// TestBug14NotSynchronous: the missing data fence shows up as a
// post-syscall synchrony violation.
func TestBug14NotSynchronous(t *testing.T) {
	w := workload.Workload{Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/a", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/a", FDSlot: -1, Off: 0, Size: 512, Seed: 2},
	}}
	res := mustRun(t, Config{NewFS: pmfsFS(bugs.Of(bugs.WriteNotSync))}, w)
	found := false
	for _, v := range res.Violations {
		if v.Kind == VSynchrony && v.Phase == PhasePost {
			found = true
		}
	}
	if !found {
		t.Fatalf("bug 14 not detected as synchrony violation: %v", res.Violations)
	}
}

// TestTornWriteAllowedOnPmfs: PMFS data writes are not atomic; mid-write
// crash states with partial data must NOT be flagged.
func TestTornWriteAllowedOnPmfs(t *testing.T) {
	w := workload.Workload{Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/a", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/a", FDSlot: -1, Off: 0, Size: 6000, Seed: 4},
		{Kind: workload.OpPwrite, Path: "/a", FDSlot: -1, Off: 100, Size: 4096, Seed: 5},
	}}
	res := mustRun(t, Config{NewFS: pmfsFS(bugs.None())}, w)
	for _, v := range res.Violations {
		t.Errorf("torn-write false positive: %s", v)
	}
}

// TestCapLimitsStates: a cap of 2 checks far fewer states but still finds
// bug 4 (Observation 7).
func TestCapLimitsStates(t *testing.T) {
	// A multi-page write puts several data pages in flight at one fence, so
	// exhaustive enumeration visibly outgrows the capped one.
	w := renameWorkload()
	w.Ops = append([]workload.Op{
		{Kind: workload.OpCreat, Path: "/big", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/big", FDSlot: -1, Off: 0, Size: 16384, Seed: 9},
	}, w.Ops...)
	exhaustive := mustRun(t, Config{NewFS: novaFS(bugs.Of(bugs.NovaRenameInPlaceDelete))}, w)
	capped := mustRun(t, Config{NewFS: novaFS(bugs.Of(bugs.NovaRenameInPlaceDelete)), Cap: 2}, w)
	if capped.StatesChecked >= exhaustive.StatesChecked {
		t.Fatalf("cap did not reduce states: %d vs %d", capped.StatesChecked, exhaustive.StatesChecked)
	}
	if !capped.Buggy() {
		t.Fatal("cap=2 missed bug 4")
	}
}

// TestInFlightStatsPopulated: the Observation 7 measurements come out of
// the engine.
func TestInFlightStatsPopulated(t *testing.T) {
	res := mustRun(t, Config{NewFS: novaFS(bugs.None())}, mixedWorkload())
	if res.MaxInFlight == 0 || res.Fences == 0 {
		t.Fatalf("stats empty: %+v", res)
	}
	total := 0
	for _, c := range res.InFlightCounts {
		total += c
	}
	if total != res.Fences {
		t.Fatalf("histogram total %d != fences %d", total, res.Fences)
	}
}

// TestPerStoreTracing: the instruction-level ablation records store entries.
func TestPerStoreTracing(t *testing.T) {
	res := mustRun(t, Config{NewFS: novaFS(bugs.None()), TraceStores: true}, renameWorkload())
	if res.StoreEntries == 0 {
		t.Fatal("per-store tracing recorded nothing")
	}
}

// TestOpBehaviorDivergence: a live divergence (not crash-related) is
// reported as VOpBehavior. Bug 2 makes a created file unreadable only after
// recovery, so instead force divergence with a workload whose op fails on
// the target: write beyond PMFS's max file size appears as ENOSPC and is
// excluded; use nothing else — so craft via nova fallocate invalid length.
func TestOpBehaviorDivergenceSkipsENOSPC(t *testing.T) {
	w := workload.Workload{Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/a", FDSlot: 0},
		{Kind: workload.OpPwrite, FDSlot: 0, Off: pmfs.MaxFileSize, Size: 8, Seed: 1},
		{Kind: workload.OpClose, FDSlot: 0},
	}}
	res := mustRun(t, Config{NewFS: pmfsFS(bugs.None())}, w)
	for _, v := range res.Violations {
		if v.Kind == VOpBehavior {
			t.Fatalf("ENOSPC divergence should be tolerated: %s", v)
		}
	}
}

// TestTriageClusters: duplicate reports collapse into clusters.
func TestTriageClusters(t *testing.T) {
	res := mustRun(t, Config{NewFS: novaFS(bugs.Of(bugs.NovaRenameOldSurvives))}, workload.Workload{
		Ops: []workload.Op{
			{Kind: workload.OpCreat, Path: "/x", FDSlot: -1},
			{Kind: workload.OpMkdir, Path: "/d"},
			{Kind: workload.OpRename, Path: "/x", Path2: "/d/y"},
		},
	})
	if !res.Buggy() {
		t.Fatal("bug 5 not detected")
	}
	clusters := Triage(res.Violations)
	if len(clusters) == 0 {
		t.Fatal("no clusters")
	}
	if len(clusters) >= len(res.Violations) && len(res.Violations) > 1 {
		t.Fatalf("triage did not deduplicate: %d reports, %d clusters", len(res.Violations), len(clusters))
	}
}

// TestViolationStringRendering sanity-checks report formatting.
func TestViolationStringRendering(t *testing.T) {
	v := Violation{
		FS: "nova", Kind: VAtomicity, Phase: PhaseMid, SysName: "rename(/a, /b)",
		Workload: renameWorkload(), Subset: []int{3}, Detail: "both names missing",
	}
	s := v.String()
	for _, want := range []string{"nova", "atomicity", "rename", "both names missing"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// TestSplitfsCompactionUnderChecker: a small device forces the kernel
// journal to compact during relinks; every crash state (including those
// inside the compaction) must still recover legally under the strong
// checker.
func TestSplitfsCompactionUnderChecker(t *testing.T) {
	var ops []workload.Op
	ops = append(ops, workload.Op{Kind: workload.OpCreat, Path: "/a", FDSlot: 0})
	for i := 0; i < 6; i++ {
		ops = append(ops,
			workload.Op{Kind: workload.OpPwrite, FDSlot: 0, Off: 0, Size: 4096, Seed: uint32(i + 1)},
			workload.Op{Kind: workload.OpFsync, FDSlot: 0},
		)
	}
	ops = append(ops, workload.Op{Kind: workload.OpClose, FDSlot: 0})
	res := mustRun(t, Config{
		NewFS:   splitfsFS(bugs.None()),
		DevSize: 256 << 10,
		Cap:     2,
	}, workload.Workload{Name: "compaction", Ops: ops})
	for _, v := range res.Violations {
		t.Errorf("false positive during compaction: %s", v)
	}
}

// TestTornWriteThroughHardLinkAllowed is the regression test for a checker
// false positive the exhaustive seq-2 sweep caught: a torn append on a
// non-atomic-write system is visible under EVERY hard link of the inode,
// and the alias paths must be granted the same old/new byte-mix allowance
// as the written path.
func TestTornWriteThroughHardLinkAllowed(t *testing.T) {
	w := workload.Workload{Name: "link-then-write", Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpWrite, Path: "/f0", FDSlot: -1, Size: 4096, Seed: 1},
		{Kind: workload.OpLink, Path: "/f0", Path2: "/l0"},
		{Kind: workload.OpWrite, Path: "/f0", FDSlot: -1, Size: 4096, Seed: 2},
	}}
	res := mustRun(t, Config{NewFS: pmfsFS(bugs.None()), Cap: 2}, w)
	for _, v := range res.Violations {
		t.Errorf("hard-link torn-write false positive: %s", v)
	}
	// WineFS relaxed mode has the same non-atomic writes.
	resW := mustRun(t, Config{NewFS: func(pm *persist.PM) vfs.FS {
		return winefs.New(pm, bugs.None(), winefs.WithMode(winefs.Relaxed))
	}, Cap: 2}, w)
	for _, v := range resW.Violations {
		t.Errorf("winefs-relaxed false positive: %s", v)
	}
}
