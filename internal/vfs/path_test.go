package vfs

import (
	"testing"
	"testing/quick"
)

func TestClean(t *testing.T) {
	cases := map[string]string{
		"":           "/",
		"/":          "/",
		"//":         "/",
		"/a":         "/a",
		"/a/":        "/a",
		"a/b":        "/a/b",
		"/a//b":      "/a/b",
		"/a/./b":     "/a/b",
		"/a/../b":    "/b",
		"/../a":      "/a",
		"/a/b/../..": "/",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplitPath(t *testing.T) {
	cases := []struct{ in, dir, name string }{
		{"/a/b", "/a", "b"},
		{"/a", "/", "a"},
		{"/", "/", ""},
		{"/a/b/c", "/a/b", "c"},
	}
	for _, c := range cases {
		dir, name := SplitPath(c.in)
		if dir != c.dir || name != c.name {
			t.Errorf("SplitPath(%q) = (%q, %q), want (%q, %q)", c.in, dir, name, c.dir, c.name)
		}
	}
}

func TestComponents(t *testing.T) {
	if got := Components("/"); len(got) != 0 {
		t.Errorf("Components(/) = %v", got)
	}
	got := Components("/a/b/c")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Components = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Components = %v", got)
		}
	}
}

func TestJoin(t *testing.T) {
	if Join("/", "a") != "/a" || Join("/a", "b") != "/a/b" {
		t.Fatal("Join wrong")
	}
}

func TestValidName(t *testing.T) {
	if ValidName("") || ValidName("a/b") || ValidName(string(make([]byte, MaxNameLen+1))) {
		t.Fatal("accepted invalid name")
	}
	if !ValidName("foo") || !ValidName("a.b-c_d") {
		t.Fatal("rejected valid name")
	}
}

func TestIsAncestor(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"/a", "/a/b", true},
		{"/a", "/a", false},
		{"/a", "/ab", false},
		{"/", "/a", true},
		{"/a/b", "/a", false},
	}
	for _, c := range cases {
		if got := IsAncestor(c.a, c.b); got != c.want {
			t.Errorf("IsAncestor(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// Property: Clean is idempotent and SplitPath+Join round-trips.
func TestPropertyCleanIdempotent(t *testing.T) {
	f := func(s string) bool {
		c := Clean(s)
		if Clean(c) != c {
			return false
		}
		if c == "/" {
			return true
		}
		dir, name := SplitPath(c)
		return Join(dir, name) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
