package vfs_test

import (
	"strings"
	"testing"

	"chipmunk/internal/fs/memfs"
	"chipmunk/internal/vfs"
)

func buildFS(t *testing.T) *memfs.FS {
	t.Helper()
	f := memfs.New()
	if err := f.Mkfs(); err != nil {
		t.Fatal(err)
	}
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("hello"), 0)
	f.Close(fd)
	f.Mkdir("/d")
	f.Create("/d/inner")
	return f
}

func TestCaptureState(t *testing.T) {
	f := buildFS(t)
	st, err := vfs.Capture(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 4 { // /, /a, /d, /d/inner
		t.Fatalf("captured %d paths: %v", len(st), st.Paths())
	}
	root := st["/"]
	if root.Type != vfs.TypeDir || len(root.Entries) != 2 {
		t.Fatalf("root = %+v", root)
	}
	a := st["/a"]
	if a.Size != 5 || string(a.Data) != "hello" || a.Nlink != 1 {
		t.Fatalf("/a = %+v", a)
	}
}

func TestStateEqualAndDiff(t *testing.T) {
	f1 := buildFS(t)
	f2 := buildFS(t)
	s1, _ := vfs.Capture(f1)
	s2, _ := vfs.Capture(f2)
	if !s1.Equal(s2) {
		t.Fatalf("identical builds differ: %s", vfs.Diff(s1, s2))
	}
	// Mutate contents.
	fd, _ := f2.Open("/a")
	f2.Pwrite(fd, []byte("X"), 0)
	s2b, _ := vfs.Capture(f2)
	d := vfs.Diff(s1, s2b)
	if !strings.Contains(d, "/a") || !strings.Contains(d, "mismatch") {
		t.Fatalf("diff = %q", d)
	}
}

func TestDiffMissingAndUnexpected(t *testing.T) {
	f1 := buildFS(t)
	f2 := buildFS(t)
	f2.Create("/extra")
	s1, _ := vfs.Capture(f1)
	s2, _ := vfs.Capture(f2)
	// The parent directory's entry list differs first in sorted order; the
	// diff must fire and mention the extra entry either way.
	if d := vfs.Diff(s1, s2); d == "" || !strings.Contains(d, "extra") {
		t.Fatalf("diff = %q", d)
	}
	if d := vfs.Diff(s2, s1); d == "" || !strings.Contains(d, "extra") {
		t.Fatalf("diff = %q", d)
	}
	// With the parent aligned, a purely missing path reports "missing".
	delete(s2, "/extra")
	s2["/"] = s1["/"]
	s2b := s2.Clone()
	s2b["/extra2"] = vfs.FileState{Path: "/extra2", Type: vfs.TypeRegular}
	if d := vfs.Diff(s1, s2b); !strings.Contains(d, "missing") {
		t.Fatalf("diff = %q", d)
	}
	if d := vfs.Diff(s2b, s1); !strings.Contains(d, "unexpected") {
		t.Fatalf("diff = %q", d)
	}
}

func TestDiffDirEntriesPropagate(t *testing.T) {
	// A missing child also changes the parent's entry list; ensure the diff
	// fires even when only entries differ (e.g. dangling dirent).
	f1 := buildFS(t)
	f2 := buildFS(t)
	f2.Unlink("/d/inner")
	s1, _ := vfs.Capture(f1)
	s2, _ := vfs.Capture(f2)
	if vfs.Diff(s1, s2) == "" {
		t.Fatal("diff empty after unlink")
	}
}

func TestHardLinkPartitionCompared(t *testing.T) {
	f1 := buildFS(t)
	f2 := buildFS(t)
	// In f1, /b is a hard link to /a; in f2 it is an independent file with
	// identical metadata/content. States must differ.
	f1.Link("/a", "/b")
	fd, _ := f2.Create("/b")
	f2.Pwrite(fd, []byte("hello"), 0)
	// Give f2's /a and /b nlink 2 as well so only the partition differs.
	f2.Link("/a", "/a2")
	f2.Link("/b", "/b2")
	f1.Link("/a", "/a2")
	f1.Link("/a", "/b2")
	// Align nlink counts: f1 /a family has nlink 4; adjust instead by
	// comparing and expecting inequality either way.
	s1, _ := vfs.Capture(f1)
	s2, _ := vfs.Capture(f2)
	if s1.Equal(s2) {
		t.Fatal("states with different hard-link structure compared equal")
	}
}

func TestStateClone(t *testing.T) {
	f := buildFS(t)
	s, _ := vfs.Capture(f)
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone differs")
	}
	// Mutating the clone's data must not affect the original.
	cf := c["/a"]
	cf.Data[0] = 'X'
	if s["/a"].Data[0] == 'X' {
		t.Fatal("clone aliases data")
	}
}

func TestFileStateDescribe(t *testing.T) {
	f := buildFS(t)
	s, _ := vfs.Capture(f)
	if d := s["/"].Describe(); !strings.Contains(d, "dir") {
		t.Fatalf("describe dir = %q", d)
	}
	if d := s["/a"].Describe(); !strings.Contains(d, "size=5") {
		t.Fatalf("describe file = %q", d)
	}
	// Large data summarized.
	fd, _ := f.Open("/a")
	f.Pwrite(fd, make([]byte, 100), 0)
	s2, _ := vfs.Capture(f)
	if d := s2["/a"].Describe(); len(d) > 200 {
		t.Fatalf("describe not summarized: %d chars", len(d))
	}
}
