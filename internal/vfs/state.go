package vfs

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// FileState is the observable state of one file or directory: everything
// the checker compares between a crash state and the oracle. Inode numbers
// are captured but never compared directly (they differ across file
// systems); instead hard-link structure is compared via path partitions.
type FileState struct {
	Path    string
	Type    FileType
	Nlink   uint32
	Size    int64
	Data    []byte   // regular files only
	Entries []string // directories only, sorted child names
	Xattrs  []string // "name=value" pairs, sorted (XattrFS systems only)
	ino     uint64
}

// Equal compares two file states (ignoring inode numbers).
func (f FileState) Equal(other FileState) bool {
	return f.Path == other.Path &&
		f.Type == other.Type &&
		f.Nlink == other.Nlink &&
		f.Size == other.Size &&
		bytes.Equal(f.Data, other.Data) &&
		equalStrings(f.Entries, other.Entries) &&
		equalStrings(f.Xattrs, other.Xattrs)
}

// Describe renders the state compactly for diffs and bug reports.
func (f FileState) Describe() string {
	x := ""
	if len(f.Xattrs) > 0 {
		x = fmt.Sprintf(" xattrs=[%s]", strings.Join(f.Xattrs, ","))
	}
	if f.Type == TypeDir {
		return fmt.Sprintf("dir nlink=%d entries=[%s]%s", f.Nlink, strings.Join(f.Entries, ","), x)
	}
	return fmt.Sprintf("file nlink=%d size=%d data=%x%s", f.Nlink, f.Size, summarize(f.Data), x)
}

func summarize(b []byte) []byte {
	if len(b) <= 32 {
		return b
	}
	out := append([]byte(nil), b[:16]...)
	return append(out, b[len(b)-16:]...)
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// State is the full observable state of a mounted file system, keyed by
// absolute path.
type State map[string]FileState

// Scratch recycles the allocations of repeated Captures: the state map, the
// file-content buffers, and the directory-entry name slices all come from
// reusable storage. The State returned by CaptureWith — and every slice it
// references — is valid only until the next CaptureWith on the same
// scratch, so use it for transient captures (comparing a crash state
// against an oracle) and plain Capture for captures that must persist
// (recording oracle states).
type Scratch struct {
	st    State
	data  []byte
	dUsed int
	dNeed int
	names []string
	nUsed int
	nNeed int
}

// takeData returns an n-byte buffer from the scratch's content arena.
func (s *Scratch) takeData(n int) []byte {
	s.dNeed += n
	if s.dUsed+n > len(s.data) {
		size := s.dNeed
		if size < 2*len(s.data) {
			size = 2 * len(s.data)
		}
		if size < 4096 {
			size = 4096
		}
		s.data = make([]byte, size)
		s.dUsed = 0
	}
	b := s.data[s.dUsed : s.dUsed+n : s.dUsed+n]
	s.dUsed += n
	return b
}

// takeNames returns an empty string slice with capacity n from the
// scratch's name arena.
func (s *Scratch) takeNames(n int) []string {
	s.nNeed += n
	if s.nUsed+n > len(s.names) {
		size := s.nNeed
		if size < 2*len(s.names) {
			size = 2 * len(s.names)
		}
		if size < 64 {
			size = 64
		}
		s.names = make([]string, size)
		s.nUsed = 0
	}
	out := s.names[s.nUsed : s.nUsed : s.nUsed+n]
	s.nUsed += n
	return out
}

// Capture walks the mounted file system from the root and records every
// file and directory, including file contents. The returned State owns all
// its memory.
func Capture(fs FS) (State, error) {
	st := make(State)
	if err := captureDir(fs, "/", st, nil); err != nil {
		return nil, err
	}
	return st, nil
}

// CaptureWith is Capture backed by reusable scratch storage (nil scratch
// degrades to Capture). See Scratch for the lifetime contract.
func CaptureWith(fs FS, s *Scratch) (State, error) {
	if s == nil {
		return Capture(fs)
	}
	if s.st == nil {
		s.st = make(State, 16)
	} else {
		clear(s.st)
	}
	s.dUsed, s.dNeed = 0, 0
	s.nUsed, s.nNeed = 0, 0
	if err := captureDir(fs, "/", s.st, s); err != nil {
		return nil, err
	}
	return s.st, nil
}

func captureDir(fs FS, dir string, st State, s *Scratch) error {
	info, err := fs.Stat(dir)
	if err != nil {
		return fmt.Errorf("stat %s: %w", dir, err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("readdir %s: %w", dir, err)
	}
	var names []string
	if s != nil {
		names = s.takeNames(len(ents))
	} else {
		names = make([]string, 0, len(ents))
	}
	for _, e := range ents {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	st[dir] = FileState{
		Path:    dir,
		Type:    TypeDir,
		Nlink:   info.Nlink,
		Entries: names,
		Xattrs:  captureXattrs(fs, dir),
		ino:     info.Ino,
	}
	for _, e := range ents {
		child := Join(dir, e.Name)
		ci, err := fs.Stat(child)
		if err != nil {
			return fmt.Errorf("stat %s: %w", child, err)
		}
		if ci.Type == TypeDir {
			if err := captureDir(fs, child, st, s); err != nil {
				return err
			}
			continue
		}
		data, err := readAll(fs, child, ci.Size, s)
		if err != nil {
			return fmt.Errorf("read %s: %w", child, err)
		}
		st[child] = FileState{
			Path:   child,
			Type:   TypeRegular,
			Nlink:  ci.Nlink,
			Size:   ci.Size,
			Data:   data,
			Xattrs: captureXattrs(fs, child),
			ino:    ci.Ino,
		}
	}
	return nil
}

func readAll(fs FS, path string, size int64, s *Scratch) ([]byte, error) {
	fd, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer fs.Close(fd)
	var buf []byte
	if s != nil {
		buf = s.takeData(int(size))
	} else {
		buf = make([]byte, size)
	}
	n, err := fs.Pread(fd, buf, 0)
	if err != nil {
		return nil, err
	}
	return buf[:n], nil
}

// captureXattrs collects "name=value" pairs when the file system supports
// extended attributes.
func captureXattrs(fs FS, path string) []string {
	xfs, ok := fs.(XattrFS)
	if !ok {
		return nil
	}
	names, err := xfs.Listxattr(path)
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(names))
	for _, n := range names {
		v, err := xfs.Getxattr(path, n)
		if err != nil {
			continue
		}
		out = append(out, n+"="+string(v))
	}
	sort.Strings(out)
	return out
}

// Equal reports whether two states are observationally identical,
// including hard-link structure.
func (s State) Equal(other State) bool {
	return Diff(s, other) == ""
}

// Diff returns a human-readable description of the first difference between
// two states, or "" if they match. a is conventionally the crash state and
// b the oracle.
func Diff(a, b State) string {
	paths := make([]string, 0, len(a)+len(b))
	seen := map[string]bool{}
	for p := range a {
		paths = append(paths, p)
		seen[p] = true
	}
	for p := range b {
		if !seen[p] {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	for _, p := range paths {
		fa, okA := a[p]
		fb, okB := b[p]
		switch {
		case !okA:
			return fmt.Sprintf("%s: missing (oracle has %s)", p, fb.Describe())
		case !okB:
			return fmt.Sprintf("%s: unexpected (crash state has %s)", p, fa.Describe())
		case !fa.Equal(fb):
			return fmt.Sprintf("%s: mismatch\n  crash:  %s\n  oracle: %s", p, fa.Describe(), fb.Describe())
		}
	}
	if d := diffLinkPartition(a, b); d != "" {
		return d
	}
	return ""
}

// diffLinkPartition compares hard-link structure: paths sharing an inode in
// one state must share one in the other.
func diffLinkPartition(a, b State) string {
	pa := linkPartition(a)
	pb := linkPartition(b)
	if len(pa) != len(pb) {
		return fmt.Sprintf("hard-link structure differs: %d vs %d link groups", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			return fmt.Sprintf("hard-link group mismatch: %q vs %q", pa[i], pb[i])
		}
	}
	return ""
}

func linkPartition(s State) []string {
	groups := map[uint64][]string{}
	for p, f := range s {
		if f.Type == TypeRegular {
			groups[f.ino] = append(groups[f.ino], p)
		}
	}
	var out []string
	for _, g := range groups {
		sort.Strings(g)
		out = append(out, strings.Join(g, "|"))
	}
	sort.Strings(out)
	return out
}

// SameInode reports whether paths a and b name the same regular file (hard
// links) in this state.
func (s State) SameInode(a, b string) bool {
	fa, okA := s[a]
	fb, okB := s[b]
	return okA && okB &&
		fa.Type == TypeRegular && fb.Type == TypeRegular &&
		fa.ino == fb.ino
}

// Clone deep-copies a state.
func (s State) Clone() State {
	out := make(State, len(s))
	for p, f := range s {
		nf := f
		nf.Data = append([]byte(nil), f.Data...)
		nf.Entries = append([]string(nil), f.Entries...)
		nf.Xattrs = append([]string(nil), f.Xattrs...)
		out[p] = nf
	}
	return out
}

// Paths returns the sorted paths in the state.
func (s State) Paths() []string {
	out := make([]string, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
