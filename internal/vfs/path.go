package vfs

import "strings"

// MaxNameLen is the maximum length of a single path component, chosen to
// fit the fixed-size on-media directory entries used by the file systems.
const MaxNameLen = 23

// SplitPath splits an absolute path into its parent directory and final
// component. SplitPath("/a/b") = ("/a", "b"); SplitPath("/a") = ("/", "a").
// The root itself returns ("/", "").
func SplitPath(path string) (dir, name string) {
	path = Clean(path)
	if path == "/" {
		return "/", ""
	}
	i := strings.LastIndexByte(path, '/')
	dir = path[:i]
	if dir == "" {
		dir = "/"
	}
	return dir, path[i+1:]
}

// Components returns the path components of a cleaned absolute path.
// Components("/a/b") = ["a", "b"]; Components("/") = [].
func Components(path string) []string {
	path = Clean(path)
	if path == "/" {
		return nil
	}
	return strings.Split(path[1:], "/")
}

// Clean normalizes a path: ensures a leading slash, collapses duplicate
// slashes, and strips a trailing slash (except for the root).
func Clean(path string) string {
	if path == "" {
		return "/"
	}
	if path == "/" || isClean(path) {
		return path
	}
	parts := strings.Split(path, "/")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		switch p {
		case "", ".":
			// skip
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return "/"
	}
	return "/" + strings.Join(out, "/")
}

// isClean reports whether path is already in normal form — leading slash,
// no empty, ".", or ".." components, no trailing slash — so Clean can
// return it unchanged without splitting. Nearly every path the engine
// handles is already clean (captures and probes build them with Join), so
// this fast path removes the split/join allocations from the check loop.
func isClean(path string) bool {
	if path[0] != '/' || path[len(path)-1] == '/' {
		return false
	}
	for i := 1; i < len(path); i++ {
		if path[i] == '/' && (path[i-1] == '/' || path[i+1] == '.') {
			return false
		}
		if path[i] == '.' && path[i-1] == '/' {
			return false
		}
	}
	return true
}

// Join concatenates a directory and a child name.
func Join(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// ValidName reports whether a single component is legal.
func ValidName(name string) bool {
	if name == "" || len(name) > MaxNameLen {
		return false
	}
	return !strings.ContainsAny(name, "/\x00")
}

// IsAncestor reports whether a is a strict ancestor directory of b
// (used to reject rename of a directory into its own subtree).
func IsAncestor(a, b string) bool {
	a, b = Clean(a), Clean(b)
	if a == b {
		return false
	}
	if a == "/" {
		return true
	}
	return strings.HasPrefix(b, a+"/")
}
