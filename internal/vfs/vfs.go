// Package vfs defines the POSIX-like file-system interface that every file
// system in this repository implements, together with the error vocabulary,
// path helpers, and observable-state capture used by Chipmunk's oracle and
// consistency checker.
//
// The operation set matches the ten key system calls the paper tests
// (creat, mkdir, fallocate, write/pwrite, link, unlink, remove, rename,
// truncate, rmdir) plus open/close/fsync/sync plumbing.
package vfs

// FD is a file descriptor handle returned by Open/Create.
type FD int

// FileType distinguishes regular files from directories.
type FileType uint8

const (
	// TypeRegular is a regular file.
	TypeRegular FileType = iota
	// TypeDir is a directory.
	TypeDir
)

func (t FileType) String() string {
	if t == TypeDir {
		return "dir"
	}
	return "file"
}

// Stat is the metadata Chipmunk compares between crash state and oracle
// (the paper compares stat output; timestamps are deliberately excluded, as
// Chipmunk does not check them).
type Stat struct {
	Ino   uint64
	Type  FileType
	Nlink uint32
	Size  int64
}

// DirEnt is one directory entry.
type DirEnt struct {
	Name string
	Ino  uint64
	Type FileType
}

// Caps describes the crash-consistency guarantees a file system advertises;
// the checker selects crash points and checks from these, mirroring how the
// paper configures Chipmunk per target (§3.3, §4.1).
type Caps struct {
	// Name identifies the system in reports ("nova", "pmfs", ...).
	Name string
	// Strong means metadata operations are synchronous and atomic without
	// fsync: crash points are injected during and after every system call.
	// Weak systems (ext4-DAX, XFS-DAX) get crash points only after
	// fsync/fdatasync/sync.
	Strong bool
	// AtomicWrite means data writes are all-or-nothing even across a crash
	// (WineFS strict mode). When false, a torn write is legal as long as
	// every byte is either old or new data at the right offset.
	AtomicWrite bool
	// SyncDataWrites means file data is durable when write returns (strong
	// PM systems). ext4-DAX only promises this after fsync.
	SyncDataWrites bool
}

// FS is the file-system interface under test. Implementations are single-
// threaded (the paper runs workloads sequentially). All paths are absolute,
// slash-separated, and already cleaned by the caller.
type FS interface {
	// Mkfs formats the underlying device and leaves the system mounted.
	Mkfs() error
	// Mount attaches to an existing (possibly crashed) image, running
	// recovery. It must be callable on any crash state.
	Mount() error
	// Unmount detaches; volatile state is discarded.
	Unmount() error
	// Caps reports the advertised guarantees.
	Caps() Caps

	Create(path string) (FD, error)
	Open(path string) (FD, error)
	Close(fd FD) error
	Mkdir(path string) error
	Rmdir(path string) error
	Link(oldPath, newPath string) error
	Unlink(path string) error
	Rename(oldPath, newPath string) error
	Truncate(path string, size int64) error
	Fallocate(fd FD, off, length int64) error

	Pwrite(fd FD, data []byte, off int64) (int, error)
	Pread(fd FD, buf []byte, off int64) (int, error)
	Fsync(fd FD) error
	Sync() error

	Stat(path string) (Stat, error)
	ReadDir(path string) ([]DirEnt, error)
}

// XattrFS is the optional extended-attribute interface. Of the tested
// systems only ext4-DAX and XFS-DAX support xattrs (§4.1), matching the
// paper's methodology; the reference model implements it so the oracle can
// track them.
type XattrFS interface {
	Setxattr(path, name string, value []byte) error
	Getxattr(path, name string) ([]byte, error)
	Removexattr(path, name string) error
	Listxattr(path string) ([]string, error)
}

// FDCounter is an optional interface: file systems that track open
// descriptors report how many are live, so tests can assert that recovery
// and application paths close everything they open (FD-leak detection).
type FDCounter interface {
	OpenFDs() int
}
