package vfs

import "errors"

// Sentinel errors shared by all file systems, mirroring the POSIX errnos
// the tested operations can return. The checker treats any error from Mount
// as a crash-consistency failure, and compares op-level errors against the
// oracle's.
var (
	// ErrNotExist corresponds to ENOENT.
	ErrNotExist = errors.New("no such file or directory")
	// ErrExist corresponds to EEXIST.
	ErrExist = errors.New("file exists")
	// ErrNotDir corresponds to ENOTDIR.
	ErrNotDir = errors.New("not a directory")
	// ErrIsDir corresponds to EISDIR.
	ErrIsDir = errors.New("is a directory")
	// ErrNotEmpty corresponds to ENOTEMPTY.
	ErrNotEmpty = errors.New("directory not empty")
	// ErrInvalid corresponds to EINVAL.
	ErrInvalid = errors.New("invalid argument")
	// ErrNoSpace corresponds to ENOSPC.
	ErrNoSpace = errors.New("no space left on device")
	// ErrBadFD corresponds to EBADF.
	ErrBadFD = errors.New("bad file descriptor")
	// ErrNameTooLong corresponds to ENAMETOOLONG.
	ErrNameTooLong = errors.New("file name too long")
	// ErrBusy corresponds to EBUSY (e.g. rename onto a non-empty dir).
	ErrBusy = errors.New("device or resource busy")
	// ErrCorrupt is returned by Mount when the on-media state cannot be
	// recovered — the "file system unmountable" consequence in Table 1.
	ErrCorrupt = errors.New("file system image corrupt")
	// ErrIO corresponds to EIO: an operation failed against media state
	// (e.g. checksum mismatch in NOVA-Fortis).
	ErrIO = errors.New("input/output error")
)
