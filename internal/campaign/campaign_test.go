package campaign

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/obs"
	"path/filepath"
)

// testSpec is the shared campaign under test: injected-bug NOVA over a
// seq1 prefix, small enough for -race, bug-rich enough that the violation
// ledger (the hard part of the determinism contract) is non-trivial.
func testSpec() Spec {
	return Spec{FS: "nova", Bugs: "all", Suite: "seq1", Max: 24, Cap: 2, Workers: 1, Stats: true}
}

// serialBaseline runs testSpec's suite through plain harness.Run once per
// test binary — the ground truth every distributed configuration must
// reproduce byte for byte.
var baselineOnce sync.Once
var baselineCensus *harness.Census
var baselineViol []core.Violation
var baselineErr error

func baseline(t *testing.T) (*harness.Census, []core.Violation, string) {
	t.Helper()
	baselineOnce.Do(func() {
		spec := testSpec()
		suite, err := spec.BuildSuite()
		if err != nil {
			baselineErr = err
			return
		}
		opts, err := spec.Options()
		if err != nil {
			baselineErr = err
			return
		}
		opts.Obs = obs.New()
		_, cfg, err := opts.Resolve()
		if err != nil {
			baselineErr = err
			return
		}
		baselineCensus, baselineViol, baselineErr = harness.Run(context.Background(), cfg, suite)
	})
	if baselineErr != nil {
		t.Fatalf("serial baseline: %v", baselineErr)
	}
	return baselineCensus, baselineViol, Fingerprint(baselineCensus, baselineViol)
}

// campaignResult is one distributed run's outcome.
type campaignResult struct {
	census *harness.Census
	viol   []core.Violation
	stats  Stats
	// workerErrs holds each worker goroutine's exit error, by index.
	workerErrs []error
}

// runCampaign spins up a coordinator on a loopback listener plus n
// in-process workers and waits for the campaign to finish. mut, when set,
// customizes each worker's config (kill hooks, IDs); ctxFor, when set,
// supplies per-worker contexts (cancel one to kill that worker).
func runCampaign(t *testing.T, cc CoordinatorConfig, n int, ctxFor func(i int) context.Context, mut func(i int, wc *WorkerConfig)) campaignResult {
	t.Helper()
	coord, err := NewCoordinator(cc)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ListenAndServe("127.0.0.1:0", coord)
	if err != nil {
		t.Fatal(err)
	}
	res := campaignResult{workerErrs: make([]error, n)}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wc := WorkerConfig{Addr: srv.Addr(), ID: fmt.Sprintf("w%d", i), Poll: 5 * time.Millisecond}
		if mut != nil {
			mut(i, &wc)
		}
		wctx := context.Background()
		if ctxFor != nil {
			wctx = ctxFor(i)
		}
		wg.Add(1)
		go func(i int, wc WorkerConfig, wctx context.Context) {
			defer wg.Done()
			res.workerErrs[i] = RunWorker(wctx, wc)
		}(i, wc, wctx)
	}
	census, viol, err := coord.Wait(context.Background())
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	// Workers exit on their own (next lease poll answers LeaseDone); close
	// the listener only after, so nobody falls into the dial-retry budget.
	wg.Wait()
	srv.Close()
	res.census, res.viol = census, viol
	res.stats = coord.Stats()
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDistributedMatchesSerial is the determinism contract: for any worker
// count, the folded campaign census is byte-identical to a serial
// harness.Run of the same suite — counts, violation ledger, quarantines,
// deterministic obs counters, and the exact AvgInFlight float.
func TestDistributedMatchesSerial(t *testing.T) {
	serialCensus, _, want := baseline(t)
	for _, n := range []int{1, 2, 4} {
		n := n
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			res := runCampaign(t, CoordinatorConfig{Spec: testSpec(), ShardSize: 4}, n, nil, nil)
			for i, err := range res.workerErrs {
				if err != nil {
					t.Errorf("worker %d: %v", i, err)
				}
			}
			if got := Fingerprint(res.census, res.viol); got != want {
				t.Fatalf("distributed census diverges from serial:\n--- serial ---\n%s--- distributed ---\n%s", want, got)
			}
			if res.census.AvgInFlight != serialCensus.AvgInFlight {
				t.Fatalf("AvgInFlight diverges: serial %v distributed %v",
					serialCensus.AvgInFlight, res.census.AvgInFlight)
			}
			if res.stats.Done != res.stats.Shards || res.stats.Duplicates != 0 {
				t.Fatalf("stats: %+v", res.stats)
			}
		})
	}
}

// TestDistributedMatchesSerialWorkerKill kills a worker mid-shard: its
// lease expires, the shard is re-dispatched whole to a surviving worker,
// and the merged census is still byte-identical to serial.
func TestDistributedMatchesSerialWorkerKill(t *testing.T) {
	_, _, want := baseline(t)
	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	var killed sync.Once
	res := runCampaign(t,
		CoordinatorConfig{Spec: testSpec(), ShardSize: 4, LeaseTTL: 250 * time.Millisecond},
		3, func(i int) context.Context {
			if i == 0 {
				return victimCtx
			}
			return context.Background()
		}, func(i int, wc *WorkerConfig) {
			if i != 0 {
				return
			}
			// Worker 0 dies the moment its first lease is granted — after
			// the coordinator marked the shard leased, before any result.
			wc.OnLease = func(LeaseResponse) { killed.Do(killVictim) }
		})
	// The victim must have exited on its own cancelled context; survivors
	// clean.
	for i, err := range res.workerErrs {
		if i == 0 {
			if err == nil {
				t.Log("victim finished before first lease (campaign too fast); kill path not exercised")
			}
			continue
		}
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if res.workerErrs[0] != nil && res.stats.Redispatched == 0 {
		t.Fatalf("victim died mid-shard but nothing was re-dispatched: %+v", res.stats)
	}
	if got := Fingerprint(res.census, res.viol); got != want {
		t.Fatalf("census diverges after worker kill:\n--- serial ---\n%s--- distributed ---\n%s", want, got)
	}
	if res.stats.PerWorker["w0"] != 0 {
		t.Fatalf("dead worker credited: %+v", res.stats)
	}
}

// TestDistributedMatchesSerialResume interrupts a campaign after K shards,
// restarts the coordinator against the same checkpoint, and verifies that
// exactly the N-K missing shards re-run and the merged census still
// matches serial byte for byte.
func TestDistributedMatchesSerialResume(t *testing.T) {
	_, _, want := baseline(t)
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")

	// Phase 1: interrupt the coordinator once 2 shards are credited. The
	// drain path keeps crediting in-flight shards, so K >= 2.
	ctx1, interrupt := context.WithCancel(context.Background())
	defer interrupt()
	wctx1, stopWorkers1 := context.WithCancel(context.Background())
	defer stopWorkers1()
	coord1, err := NewCoordinator(CoordinatorConfig{
		Spec: testSpec(), ShardSize: 4, CheckpointPath: ckpt,
		Progress: func(done, total int, c harness.Census) {
			if done >= 8 { // 2 shards of 4 workloads
				interrupt()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := ListenAndServe("127.0.0.1:0", coord1)
	if err != nil {
		t.Fatal(err)
	}
	var wg1 sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg1.Add(1)
		go func(i int) {
			defer wg1.Done()
			RunWorker(wctx1, WorkerConfig{ //nolint:errcheck // interrupted on purpose
				Addr: srv1.Addr(), ID: fmt.Sprintf("p1-w%d", i), Poll: 5 * time.Millisecond,
			})
		}(i)
	}
	_, _, err = coord1.Wait(ctx1)
	if err == nil {
		t.Fatal("phase 1 completed before the interrupt; raise the suite size")
	}
	srv1.Close()
	stopWorkers1()
	wg1.Wait()
	k := coord1.Stats().Done
	if err := coord1.Close(); err != nil {
		t.Fatal(err)
	}
	if k < 2 || k >= coord1.Stats().Shards {
		t.Fatalf("phase 1 credited %d of %d shards; want a strict partial >= 2",
			k, coord1.Stats().Shards)
	}

	// Phase 2: a fresh coordinator resumes from the checkpoint. Exactly k
	// shards come back from disk; the workers run only the rest.
	res := runCampaign(t, CoordinatorConfig{Spec: testSpec(), ShardSize: 4, CheckpointPath: ckpt},
		2, nil, nil)
	for i, err := range res.workerErrs {
		if err != nil {
			t.Errorf("phase 2 worker %d: %v", i, err)
		}
	}
	if res.stats.Resumed != k || res.stats.PerWorker["checkpoint"] != k {
		t.Fatalf("resumed %d shards from checkpoint, want %d: %+v", res.stats.Resumed, k, res.stats)
	}
	rerun := 0
	for w, n := range res.stats.PerWorker {
		if w != "checkpoint" {
			rerun += n
		}
	}
	if rerun != res.stats.Shards-k {
		t.Fatalf("phase 2 re-ran %d shards, want exactly %d: %+v", rerun, res.stats.Shards-k, res.stats)
	}
	if got := Fingerprint(res.census, res.viol); got != want {
		t.Fatalf("census diverges after resume:\n--- serial ---\n%s--- resumed ---\n%s", want, got)
	}
}

// TestLeaseExpiryAtMostOnce drives the lease state machine directly: an
// expired lease re-dispatches, and the slow original worker's late result
// is discarded as a duplicate rather than double-credited.
func TestLeaseExpiryAtMostOnce(t *testing.T) {
	spec := testSpec()
	spec.Max = 4
	coord, err := NewCoordinator(CoordinatorConfig{Spec: spec, ShardSize: 4, LeaseTTL: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hash := coord.Info().SuiteHash
	la, err := coord.Lease(LeaseRequest{Worker: "slow", SuiteHash: hash})
	if err != nil || la.Status != LeaseGranted {
		t.Fatalf("lease A: %+v, %v", la, err)
	}
	time.Sleep(50 * time.Millisecond) // past the TTL
	lb, err := coord.Lease(LeaseRequest{Worker: "fast", SuiteHash: hash})
	if err != nil || lb.Status != LeaseGranted || lb.Shard != la.Shard {
		t.Fatalf("expired lease not re-dispatched: %+v, %v", lb, err)
	}
	payload := &ShardPayload{Shard: lb.Shard, Worker: "fast", SuiteHash: hash, Workloads: 4}
	if cr, err := coord.Credit(payload); err != nil || !cr.Accepted || !cr.Done {
		t.Fatalf("credit fast: %+v, %v", cr, err)
	}
	late := &ShardPayload{Shard: la.Shard, Worker: "slow", SuiteHash: hash, Workloads: 4}
	cr, err := coord.Credit(late)
	if err != nil || cr.Accepted || !cr.Duplicate {
		t.Fatalf("late result not discarded as duplicate: %+v, %v", cr, err)
	}
	st := coord.Stats()
	if st.Redispatched != 1 || st.Duplicates != 1 || st.Done != 1 || st.PerWorker["slow"] != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestSuiteFingerprintMismatch checks both rejection sides: the
// coordinator refuses leases and results carrying a foreign fingerprint
// (HTTP 409 with a diagnosable message), and a worker whose local
// generator disagrees with the handshake refuses to run at all.
func TestSuiteFingerprintMismatch(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Spec: testSpec(), ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	defer srv.Close()

	resp, err := http.Post(srv.URL+PathLease, "application/json",
		strings.NewReader(`{"worker":"rogue","suite_hash":"deadbeef"}`))
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 512)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || !strings.Contains(string(body[:n]), "suite fingerprint mismatch") {
		t.Fatalf("lease with foreign hash: status %d, body %q", resp.StatusCode, body[:n])
	}
	if _, err := coord.Credit(&ShardPayload{Shard: 0, Worker: "rogue", SuiteHash: "deadbeef"}); err == nil ||
		!strings.Contains(err.Error(), "suite fingerprint mismatch") {
		t.Fatalf("credit with foreign hash: %v", err)
	}
	if st := coord.Stats(); st.Rejected != 2 {
		t.Fatalf("stats: %+v", st)
	}

	// Worker side: a coordinator lying about the fingerprint (stand-in for
	// a diverged generator) must be refused at handshake.
	info := coord.Info()
	info.SuiteHash = "0000000000000000"
	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, info)
	}))
	defer liar.Close()
	err = RunWorker(context.Background(), WorkerConfig{
		Addr: strings.TrimPrefix(liar.URL, "http://"), ID: "w", Poll: time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "suite fingerprint mismatch") {
		t.Fatalf("worker accepted a mismatched handshake: %v", err)
	}
}

// TestCheckpointTornTail covers the SIGKILLed-coordinator contract: a
// checkpoint with a torn final line still resumes, skipping (and counting)
// only the torn line; a fully-recorded checkpoint resumes to a complete
// campaign with no workers at all.
func TestCheckpointTornTail(t *testing.T) {
	_, _, want := baseline(t)
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")

	// Record a full campaign, then tear the tail the way a crash mid-write
	// would.
	res := runCampaign(t, CoordinatorConfig{Spec: testSpec(), ShardSize: 4, CheckpointPath: ckpt},
		2, nil, nil)
	if got := Fingerprint(res.census, res.viol); got != want {
		t.Fatalf("recorded campaign diverges:\n%s\nvs\n%s", want, got)
	}
	f, err := os.OpenFile(ckpt, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"type":"shard","payload":{"shard":3,"wor`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 1 || len(st.Payloads) != res.stats.Shards {
		t.Fatalf("torn checkpoint: skipped=%d payloads=%d want skipped=1 payloads=%d",
			st.Skipped, len(st.Payloads), res.stats.Shards)
	}

	// Resume against the torn file: every shard comes back from disk, the
	// campaign completes with zero workers, and the census round-tripped
	// through JSON still matches serial byte for byte.
	coord, err := NewCoordinator(CoordinatorConfig{Spec: testSpec(), ShardSize: 4, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	census, viol, err := coord.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := Fingerprint(census, viol); got != want {
		t.Fatalf("resumed census diverges from serial:\n--- serial ---\n%s--- resumed ---\n%s", want, got)
	}
	if st := coord.Stats(); st.Resumed != st.Shards {
		t.Fatalf("stats: %+v", st)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointRejectsForeignCampaign: resuming with a different suite or
// shard geometry must refuse loudly, never merge.
func TestCheckpointRejectsForeignCampaign(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	spec := testSpec()
	spec.Max = 8
	coord, err := NewCoordinator(CoordinatorConfig{Spec: spec, ShardSize: 4, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	coord.Close()

	other := testSpec()
	other.Max = 12 // different suite prefix -> different fingerprint
	if _, err := NewCoordinator(CoordinatorConfig{Spec: other, ShardSize: 4, CheckpointPath: ckpt}); err == nil ||
		!strings.Contains(err.Error(), "suite fingerprint mismatch") {
		t.Fatalf("foreign suite accepted: %v", err)
	}
	if _, err := NewCoordinator(CoordinatorConfig{Spec: spec, ShardSize: 2, CheckpointPath: ckpt}); err == nil ||
		!strings.Contains(err.Error(), "shard geometry mismatch") {
		t.Fatalf("foreign geometry accepted: %v", err)
	}
}
