package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// TestStatusSnapshot drives the lease state machine directly and checks the
// dashboard snapshot tracks it: shard states, the shard map, piggybacked
// heartbeat progress, credited throughput, and worker liveness.
func TestStatusSnapshot(t *testing.T) {
	spec := testSpec()
	spec.Max = 8
	coord, err := NewCoordinator(CoordinatorConfig{Spec: spec, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	hash := coord.Info().SuiteHash

	st := coord.Status()
	if st.Shards != 2 || st.Pending != 2 || st.ShardMap != ".." {
		t.Fatalf("fresh status: %+v", st)
	}
	if st.SuiteHash != hash || st.Workloads != 8 || st.ShardSize != 4 {
		t.Fatalf("status identity: %+v", st)
	}

	l0, err := coord.Lease(LeaseRequest{Worker: "w0", SuiteHash: hash})
	if err != nil || l0.Status != LeaseGranted || l0.Shard != 0 {
		t.Fatalf("lease: %+v, %v", l0, err)
	}
	if _, err := coord.Heartbeat(HeartbeatRequest{
		Worker: "w0", Shard: 0, SuiteHash: hash, StatesChecked: 7,
	}); err != nil {
		t.Fatal(err)
	}
	// A lagging (smaller) progress report must not regress the gauge.
	if _, err := coord.Heartbeat(HeartbeatRequest{
		Worker: "w0", Shard: 0, SuiteHash: hash, StatesChecked: 3,
	}); err != nil {
		t.Fatal(err)
	}
	l1, err := coord.Lease(LeaseRequest{Worker: "w1", SuiteHash: hash})
	if err != nil || l1.Status != LeaseGranted || l1.Shard != 1 {
		t.Fatalf("lease: %+v, %v", l1, err)
	}
	if cr, err := coord.Credit(&ShardPayload{
		Shard: 1, Worker: "w1", SuiteHash: hash,
		Workloads: 4, StatesChecked: 100, ViolationTotal: 2,
	}); err != nil || !cr.Accepted {
		t.Fatalf("credit: %+v, %v", cr, err)
	}

	st = coord.Status()
	if st.Pending != 0 || st.Leased != 1 || st.Done != 1 || st.Quarantined != 0 {
		t.Fatalf("status counts: %+v", st)
	}
	if st.ShardMap != "r#" {
		t.Fatalf("shard map %q, want \"r#\"", st.ShardMap)
	}
	if st.StatesChecked != 107 { // 100 credited + 7 in flight
		t.Fatalf("states checked %d, want 107", st.StatesChecked)
	}
	if st.Violations != 2 {
		t.Fatalf("violations %d, want 2", st.Violations)
	}
	if st.StatesPerSec <= 0 || st.ETASec <= 0 {
		t.Fatalf("rate/ETA not derived: %+v", st)
	}
	if len(st.InFlight) != 1 || st.InFlight[0].Shard != 0 ||
		st.InFlight[0].Worker != "w0" || st.InFlight[0].StatesChecked != 7 {
		t.Fatalf("in-flight: %+v", st.InFlight)
	}
	if len(st.Workers) != 2 || st.Workers[0].ID != "w0" || st.Workers[1].ID != "w1" ||
		st.Workers[1].ShardsDone != 1 {
		t.Fatalf("workers: %+v", st.Workers)
	}
}

// TestStatusHTTPSurface serves the three read-only endpoints over a real
// listener: /campaign/status parses as JSON, /campaign/dash renders HTML,
// and /debug/metrics speaks the Prometheus text format with the shared
// content type.
func TestStatusHTTPSurface(t *testing.T) {
	spec := testSpec()
	spec.Max = 4
	coord, err := NewCoordinator(CoordinatorConfig{Spec: spec, ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	hash := coord.Info().SuiteHash
	col := obs.New()
	col.Inc(obs.CtrStatesChecked)
	snap := col.Snapshot()
	if cr, err := coord.Credit(&ShardPayload{
		Shard: 0, Worker: "w0", SuiteHash: hash,
		Workloads: 4, StatesChecked: 1, Obs: &snap,
	}); err != nil || !cr.Accepted || !cr.Done {
		t.Fatalf("credit: %+v, %v", cr, err)
	}
	srv := httptest.NewServer(coord)
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get(PathStatus)
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("status content type %q", ctype)
	}
	var st CampaignStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status does not parse: %v\n%s", err, body)
	}
	if st.Done != 1 || st.ShardMap != "#" || st.CampaignID != coord.Info().CampaignID {
		t.Fatalf("wire status: %+v", st)
	}

	body, ctype = get(PathDash)
	if !strings.Contains(ctype, "text/html") {
		t.Fatalf("dash content type %q", ctype)
	}
	for _, want := range []string{"<!DOCTYPE html>", coord.Info().CampaignID, "1/1 shards done", "shard map"} {
		if !strings.Contains(body, want) {
			t.Fatalf("dash missing %q:\n%s", want, body)
		}
	}

	body, ctype = get("/debug/metrics")
	if ctype != obs.MetricsContentType {
		t.Fatalf("metrics content type %q, want %q", ctype, obs.MetricsContentType)
	}
	if !strings.Contains(body, "chipmunk_states_checked_total 1") {
		t.Fatalf("metrics missing credited counter:\n%s", body)
	}
}

// TestWorkerWatchdogJournal wedges every engine call so the worker's shard
// watchdog fires on each dispatch attempt: the journal must record one
// "shard-watchdog" event per attempt plus the shard spans, and the
// campaign must complete degraded with the shard quarantined — never hung.
func TestWorkerWatchdogJournal(t *testing.T) {
	spec := testSpec()
	spec.Max = 4
	var buf bytes.Buffer
	jr := obs.NewJournal(&buf)
	res := runCampaign(t, CoordinatorConfig{Spec: spec, ShardSize: 4, LeaseTTL: time.Second},
		1, nil, func(i int, wc *WorkerConfig) {
			wc.Journal = jr
			wc.ShardTimeout = 30 * time.Millisecond
			wc.runEngine = func(ctx context.Context, cfg core.Config, slice []workload.Workload, lease LeaseResponse, jobs int) (*harness.Census, []core.Violation, error) {
				<-ctx.Done()
				return nil, nil, ctx.Err()
			}
		})
	if res.workerErrs[0] != nil {
		t.Fatalf("worker: %v", res.workerErrs[0])
	}
	if res.stats.ShardsQuarantined != 1 || res.stats.Done != 0 {
		t.Fatalf("stats: %+v", res.stats)
	}
	if err := jr.Flush(); err != nil {
		t.Fatal(err)
	}
	events, skipped, err := obs.ReadJournal(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("journal read: err=%v skipped=%d", err, skipped)
	}
	watchdogs, shardSpans := 0, 0
	for _, e := range events {
		switch {
		case e.Type == "shard-watchdog":
			watchdogs++
			if e.Rank != 0 || e.Worker != "w0" || !strings.Contains(e.Detail, "shard watchdog") {
				t.Fatalf("watchdog event: %+v", e)
			}
		case e.Type == "span" && e.Name == "shard":
			shardSpans++
			if e.Trace == "" || e.Span == "" {
				t.Fatalf("shard span missing IDs: %+v", e)
			}
		}
	}
	if watchdogs != DefaultShardRetries {
		t.Fatalf("%d shard-watchdog events, want %d (one per dispatch attempt)", watchdogs, DefaultShardRetries)
	}
	if shardSpans != DefaultShardRetries {
		t.Fatalf("%d shard spans, want %d", shardSpans, DefaultShardRetries)
	}
}

// TestWorkerHeartbeatRefusedJournal refuses a worker's first heartbeat at
// the wire: the worker must journal a "heartbeat-refused" event, abandon
// the shard, and the campaign must still complete once the lease expires
// and the shard re-runs.
func TestWorkerHeartbeatRefusedJournal(t *testing.T) {
	spec := testSpec()
	spec.Max = 4
	coord, err := NewCoordinator(CoordinatorConfig{Spec: spec, ShardSize: 4, LeaseTTL: 120 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var refused atomic.Bool
	srv, err := ListenAndServe("127.0.0.1:0", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == PathHeartbeat && refused.CompareAndSwap(false, true) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprint(w, `{"extended":false}`)
			return
		}
		coord.ServeHTTP(w, r)
	}))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	jr := obs.NewJournal(&buf)
	var calls atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(context.Background(), WorkerConfig{
			Addr: srv.Addr(), ID: "w0", Poll: 5 * time.Millisecond, Journal: jr,
			runEngine: func(ctx context.Context, cfg core.Config, slice []workload.Workload, lease LeaseResponse, jobs int) (*harness.Census, []core.Violation, error) {
				if calls.Add(1) == 1 {
					// First attempt wedges until the refused heartbeat
					// cancels it; later attempts succeed immediately.
					<-ctx.Done()
					return nil, nil, ctx.Err()
				}
				return &harness.Census{Workloads: len(slice)}, nil, nil
			},
		})
	}()
	if _, _, err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
	srv.Close()
	if st := coord.Stats(); st.Done != st.Shards || st.ShardsQuarantined != 0 {
		t.Fatalf("campaign did not recover: %+v", st)
	}
	if err := jr.Flush(); err != nil {
		t.Fatal(err)
	}
	events, skipped, err := obs.ReadJournal(&buf)
	if err != nil || skipped != 0 {
		t.Fatalf("journal read: err=%v skipped=%d", err, skipped)
	}
	refusals := 0
	for _, e := range events {
		if e.Type == "heartbeat-refused" {
			refusals++
			if e.Worker != "w0" || e.Rank != 0 {
				t.Fatalf("refusal event: %+v", e)
			}
		}
	}
	if refusals != 1 {
		t.Fatalf("%d heartbeat-refused events, want 1", refusals)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
}
