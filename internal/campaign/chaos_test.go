package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// restrictedBaseline runs the suite minus the excluded shards through plain
// harness.Run — the ground truth a degraded campaign's partial census must
// reproduce byte for byte. Valid because every census field is a sum, a
// maximum, or a suite-ordered concatenation: one run over the concatenated
// healthy slices equals the fold of per-shard runs over the same slices.
func restrictedBaseline(t *testing.T, spec Spec, shardSize int, exclude map[int]bool) string {
	t.Helper()
	suite, err := spec.BuildSuite()
	if err != nil {
		t.Fatal(err)
	}
	n := numShards(len(suite), shardSize)
	var restricted []workload.Workload
	for i := 0; i < n; i++ {
		if exclude[i] {
			continue
		}
		s, e := shardRange(i, shardSize, len(suite))
		restricted = append(restricted, suite[s:e]...)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	opts.Obs = obs.New()
	_, cfg, err := opts.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	cen, viol, err := harness.Run(context.Background(), cfg, restricted)
	if err != nil {
		t.Fatal(err)
	}
	return Fingerprint(cen, viol)
}

// TestChaosDifferential is the headline robustness contract: a campaign
// under seeded wire faults (drops, duplicates, truncation, bit flips,
// latency), a worker kill, and a deliberately poisoning shard still
// completes — degraded, not failed — and its census over the non-quarantined
// shards is byte-identical to a serial run restricted to the same shards.
// No shard is ever both credited and quarantined, and a coordinator kill +
// resume preserves the quarantine ledger exactly.
func TestChaosDifferential(t *testing.T) {
	const (
		shardSize   = 4
		poisoned    = 2
		retries     = 5 // poison always fails; wire noise must not quarantine a healthy shard
		chaosSeed   = 42
		leaseTTL    = 300 * time.Millisecond
		workerCount = 3
	)
	spec := testSpec() // Max=24 -> 6 shards of 4
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")

	coord, err := NewCoordinator(CoordinatorConfig{
		Spec: spec, ShardSize: shardSize, LeaseTTL: leaseTTL,
		ShardRetries: retries, CheckpointPath: ckpt,
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	wrapped, faultStats := WrapWireFaults(coord, DefaultWireFaults(chaosSeed))
	srv, err := ListenAndServe("127.0.0.1:0", wrapped)
	if err != nil {
		t.Fatal(err)
	}

	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	var killed sync.Once
	workerErrs := make([]error, workerCount)
	var wg sync.WaitGroup
	for i := 0; i < workerCount; i++ {
		wc := WorkerConfig{
			Addr: srv.Addr(), ID: fmt.Sprintf("w%d", i), Poll: 5 * time.Millisecond,
			PoisonShards: []int{poisoned}, // every worker crashes on the poisoned shard
		}
		wctx := context.Background()
		if i == 0 {
			wctx = victimCtx
			wc.OnLease = func(LeaseResponse) { killed.Do(killVictim) }
		}
		wg.Add(1)
		go func(i int, wc WorkerConfig, wctx context.Context) {
			defer wg.Done()
			workerErrs[i] = RunWorker(wctx, wc)
		}(i, wc, wctx)
	}

	census, viol, err := coord.Wait(context.Background())
	if err != nil {
		t.Fatalf("chaos campaign failed instead of degrading: %v", err)
	}
	wg.Wait()
	srv.Close()
	for i, werr := range workerErrs {
		if i == 0 || werr == nil {
			continue
		}
		t.Errorf("surviving worker %d: %v", i, werr)
	}
	if fs := faultStats(); fs.Dropped+fs.Duped+fs.Truncated+fs.Corrupted+fs.Delayed == 0 {
		t.Fatalf("chaos proved nothing — no faults injected: %s", fs)
	} else {
		t.Logf("%s", fs)
	}

	// Degraded, with exactly the poisoned shard quarantined.
	st := coord.Stats()
	if !coord.Degraded() || st.ShardsQuarantined != 1 {
		t.Fatalf("want exactly the poisoned shard quarantined: %+v", st)
	}
	ledger := coord.Quarantined()
	if len(ledger) != 1 || ledger[0].Shard != poisoned || ledger[0].Attempts != retries ||
		!strings.Contains(ledger[0].Err, "chaos: poisoned shard") {
		t.Fatalf("quarantine ledger: %+v", ledger)
	}
	// No shard both credited and quarantined; together they cover the suite.
	if st.Done != st.Shards-1 {
		t.Fatalf("credited %d of %d shards with 1 quarantined: %+v", st.Done, st.Shards, st)
	}
	for _, q := range ledger {
		if coordShardDone(coord, q.Shard) {
			t.Fatalf("shard %d both credited and quarantined", q.Shard)
		}
	}

	// The partial census is byte-identical to serial over the healthy shards.
	want := restrictedBaseline(t, spec, shardSize, map[int]bool{poisoned: true})
	if got := Fingerprint(census, viol); got != want {
		t.Fatalf("degraded census diverges from restricted serial:\n--- serial ---\n%s--- chaos ---\n%s", want, got)
	}
	// The quarantine count itself is measurement-class, reported but outside
	// the fingerprint.
	if census.Obs == nil || census.Obs.Counters[obs.CtrShardsQuarantined.String()] != 1 {
		t.Fatalf("shards-quarantined counter missing from census obs: %+v", census.Obs)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}

	// Coordinator kill + resume: the quarantine ledger survives exactly, the
	// credited shards come back from the checkpoint, and no worker is needed.
	resumed, err := NewCoordinator(CoordinatorConfig{
		Spec: spec, ShardSize: shardSize, ShardRetries: retries, CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	rc, rviol, err := resumed.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed.Quarantined(), ledger) {
		t.Fatalf("quarantine ledger not preserved across resume:\nbefore: %+v\nafter:  %+v",
			ledger, resumed.Quarantined())
	}
	if rst := resumed.Stats(); rst.Resumed != st.Shards-1 || rst.ShardsQuarantined != 1 {
		t.Fatalf("resume stats: %+v", rst)
	}
	if got := Fingerprint(rc, rviol); got != want {
		t.Fatalf("resumed degraded census diverges:\n--- serial ---\n%s--- resumed ---\n%s", want, got)
	}
	if err := resumed.Close(); err != nil {
		t.Fatal(err)
	}
}

// coordShardDone reports whether shard i is credited.
func coordShardDone(c *Coordinator, i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shards[i].state == shardDone
}

// TestRetryQuarantined: a quarantined shard is re-runnable — and only it
// re-runs. Phase 1 quarantines the poisoned shard; phase 2 resumes with
// RetryQuarantined and a healthy worker, re-running exactly that shard to a
// full, non-degraded census; phase 3 resumes once more and finds everything
// credited (the later credit wins over the older quarantine records).
func TestRetryQuarantined(t *testing.T) {
	const (
		shardSize = 4
		poisoned  = 2
	)
	spec := testSpec()
	_, _, fullWant := baseline(t)
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")

	// Phase 1: poison quarantines shard 2.
	res := runCampaign(t, CoordinatorConfig{
		Spec: spec, ShardSize: shardSize, ShardRetries: 2, CheckpointPath: ckpt,
	}, 2, nil, func(i int, wc *WorkerConfig) {
		wc.PoisonShards = []int{poisoned}
	})
	if res.stats.ShardsQuarantined != 1 || res.stats.Done != res.stats.Shards-1 {
		t.Fatalf("phase 1 stats: %+v", res.stats)
	}

	// Phase 2: -retry-quarantined with healthy workers re-runs exactly the
	// quarantined shard.
	res2 := runCampaign(t, CoordinatorConfig{
		Spec: spec, ShardSize: shardSize, CheckpointPath: ckpt, RetryQuarantined: true,
	}, 2, nil, nil)
	if res2.stats.Resumed != res.stats.Shards-1 {
		t.Fatalf("phase 2 resumed %d shards, want %d: %+v", res2.stats.Resumed, res.stats.Shards-1, res2.stats)
	}
	rerun := 0
	for w, n := range res2.stats.PerWorker {
		if w != "checkpoint" {
			rerun += n
		}
	}
	if rerun != 1 || res2.stats.ShardsQuarantined != 0 {
		t.Fatalf("phase 2 re-ran %d shards (want exactly the 1 quarantined): %+v", rerun, res2.stats)
	}
	if got := Fingerprint(res2.census, res2.viol); got != fullWant {
		t.Fatalf("census after retry diverges from full serial:\n--- serial ---\n%s--- retried ---\n%s", fullWant, got)
	}

	// Phase 3: the credit now outranks the old quarantine records — a plain
	// resume completes fully with zero workers.
	coord, err := NewCoordinator(CoordinatorConfig{Spec: spec, ShardSize: shardSize, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	cen, viol, err := coord.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st := coord.Stats(); st.Resumed != st.Shards || st.ShardsQuarantined != 0 || coord.Degraded() {
		t.Fatalf("phase 3 stats: %+v", st)
	}
	if got := Fingerprint(cen, viol); got != fullWant {
		t.Fatalf("phase 3 census diverges:\n--- serial ---\n%s--- resumed ---\n%s", fullWant, got)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointTornQuarantineTail: a checkpoint whose final quarantine
// line is torn (coordinator SIGKILLed mid-append) still resumes; the torn
// line is skipped and counted, the intact quarantine records carry forward.
func TestCheckpointTornQuarantineTail(t *testing.T) {
	const shardSize = 4
	spec := testSpec()
	ckpt := filepath.Join(t.TempDir(), "campaign.ckpt")
	res := runCampaign(t, CoordinatorConfig{
		Spec: spec, ShardSize: shardSize, ShardRetries: 2, CheckpointPath: ckpt,
	}, 2, nil, func(i int, wc *WorkerConfig) {
		wc.PoisonShards = []int{1}
	})
	if res.stats.ShardsQuarantined != 1 {
		t.Fatalf("phase 1 stats: %+v", res.stats)
	}

	tearCheckpoint(t, ckpt, `{"type":"quarantine","quarantine":{"shard":3,"sta`)
	st, err := LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if st.Skipped != 1 || len(st.Quarantined) != 1 || st.Quarantined[0].Shard != 1 {
		t.Fatalf("torn checkpoint: skipped=%d quarantined=%+v", st.Skipped, st.Quarantined)
	}

	coord, err := NewCoordinator(CoordinatorConfig{Spec: spec, ShardSize: shardSize, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := coord.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rst := coord.Stats(); rst.ShardsQuarantined != 1 || rst.Resumed != rst.Shards-1 {
		t.Fatalf("resume stats: %+v", rst)
	}
	want := restrictedBaseline(t, spec, shardSize, map[int]bool{1: true})
	cen, viol := coord.Merged()
	if got := Fingerprint(cen, viol); got != want {
		t.Fatalf("resumed degraded census diverges:\n--- serial ---\n%s--- resumed ---\n%s", want, got)
	}
	if err := coord.Close(); err != nil {
		t.Fatal(err)
	}
}

func tearCheckpoint(t *testing.T, path, torn string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(torn); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHeartbeatSemantics drives the heartbeat endpoint directly: extension
// only for the live lease holder, refusal for strangers and expired leases,
// rejection for foreign fingerprints.
func TestHeartbeatSemantics(t *testing.T) {
	spec := testSpec()
	spec.Max = 4
	coord, err := NewCoordinator(CoordinatorConfig{Spec: spec, ShardSize: 4, LeaseTTL: 60 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	hash := coord.Info().SuiteHash
	lease, err := coord.Lease(LeaseRequest{Worker: "holder", SuiteHash: hash})
	if err != nil || lease.Status != LeaseGranted {
		t.Fatalf("lease: %+v, %v", lease, err)
	}
	if hb, err := coord.Heartbeat(HeartbeatRequest{Worker: "holder", Shard: lease.Shard, SuiteHash: hash}); err != nil || !hb.Extended {
		t.Fatalf("holder heartbeat refused: %+v, %v", hb, err)
	}
	if hb, err := coord.Heartbeat(HeartbeatRequest{Worker: "stranger", Shard: lease.Shard, SuiteHash: hash}); err != nil || hb.Extended {
		t.Fatalf("stranger extended a lease it does not hold: %+v, %v", hb, err)
	}
	if _, err := coord.Heartbeat(HeartbeatRequest{Worker: "holder", Shard: lease.Shard, SuiteHash: "deadbeef"}); err == nil ||
		!strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("foreign-fingerprint heartbeat accepted: %v", err)
	}
	if _, err := coord.Heartbeat(HeartbeatRequest{Worker: "holder", Shard: 99, SuiteHash: hash}); err == nil {
		t.Fatal("out-of-range heartbeat accepted")
	}
	time.Sleep(90 * time.Millisecond) // past the TTL
	if hb, err := coord.Heartbeat(HeartbeatRequest{Worker: "holder", Shard: lease.Shard, SuiteHash: hash}); err != nil || hb.Extended {
		t.Fatalf("expired lease extended: %+v, %v", hb, err)
	}
	if st := coord.Stats(); st.Heartbeats != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestHeartbeatKeepsSlowShardAlive: a shard legitimately slower than the
// lease TTL survives because its worker heartbeats — a second, idle worker
// keeps polling (which is what reclaims expired leases) and never steals
// the shard.
func TestHeartbeatKeepsSlowShardAlive(t *testing.T) {
	spec := testSpec()
	spec.Max = 4 // one shard
	const ttl = 150 * time.Millisecond
	res := runCampaign(t, CoordinatorConfig{Spec: spec, ShardSize: 4, LeaseTTL: ttl},
		2, nil, func(i int, wc *WorkerConfig) {
			// Whichever worker wins the shard runs slow; the other keeps
			// polling Lease, which is what reclaims expired leases.
			wc.runEngine = func(ctx context.Context, cfg core.Config, slice []workload.Workload, lease LeaseResponse, jobs int) (*harness.Census, []core.Violation, error) {
				select {
				case <-time.After(3 * ttl): // much longer than the lease
				case <-ctx.Done():
					return nil, nil, ctx.Err()
				}
				return harness.Run(ctx, cfg, slice, harness.WithWorkers(jobs))
			}
		})
	for i, err := range res.workerErrs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if res.stats.Redispatched != 0 || res.stats.Heartbeats < 2 || res.stats.Done != 1 {
		t.Fatalf("slow shard not kept alive by heartbeats: %+v", res.stats)
	}
}

// TestShardWatchdog: an engine call that hangs past -shard-timeout becomes
// a structured error payload (one failed dispatch attempt), and a shard
// that always hangs ends up quarantined — a degraded campaign, not a hung
// fleet.
func TestShardWatchdog(t *testing.T) {
	spec := testSpec()
	spec.Max = 4 // one shard
	res := runCampaign(t, CoordinatorConfig{Spec: spec, ShardSize: 4, ShardRetries: 2},
		1, nil, func(i int, wc *WorkerConfig) {
			wc.ShardTimeout = 50 * time.Millisecond
			wc.runEngine = func(ctx context.Context, cfg core.Config, slice []workload.Workload, lease LeaseResponse, jobs int) (*harness.Census, []core.Violation, error) {
				<-ctx.Done() // hang until the watchdog fires
				return nil, nil, ctx.Err()
			}
		})
	if res.workerErrs[0] != nil {
		t.Fatalf("worker died instead of defending itself: %v", res.workerErrs[0])
	}
	if res.stats.ShardsQuarantined != 1 || res.stats.Done != 0 {
		t.Fatalf("hung shard not quarantined: %+v", res.stats)
	}
	if res.census.Workloads != 0 {
		t.Fatalf("hung shard credited workloads: %+v", res.census)
	}
}

// TestWorkerPanicContained: a transiently panicking engine call (standing
// in for any escape from the check sandbox) is contained into an error
// payload — the worker stays alive, the shard is re-dispatched within its
// attempt budget, and the campaign still completes whole.
func TestWorkerPanicContained(t *testing.T) {
	_, _, fullWant := baseline(t)
	var panicked sync.Once
	var tripped bool
	res := runCampaign(t, CoordinatorConfig{Spec: testSpec(), ShardSize: 4, ShardRetries: 3},
		2, nil, func(i int, wc *WorkerConfig) {
			wc.runEngine = func(ctx context.Context, cfg core.Config, slice []workload.Workload, lease LeaseResponse, jobs int) (*harness.Census, []core.Violation, error) {
				if lease.Shard == 1 {
					trip := false
					panicked.Do(func() { trip = true; tripped = true })
					if trip {
						panic("chaos: transient engine panic")
					}
				}
				return harness.Run(ctx, cfg, slice, harness.WithWorkers(jobs))
			}
		})
	for i, err := range res.workerErrs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}
	if !tripped {
		t.Fatal("panic hook never fired")
	}
	if res.stats.ShardsQuarantined != 0 || res.stats.Done != res.stats.Shards || res.stats.Redispatched < 1 {
		t.Fatalf("transient panic not contained and re-dispatched: %+v", res.stats)
	}
	if got := Fingerprint(res.census, res.viol); got != fullWant {
		t.Fatalf("census diverges after contained panic:\n--- serial ---\n%s--- got ---\n%s", fullWant, got)
	}
}

// TestDialBudgetExhausted: a worker that can never reach the coordinator
// exhausts its bounded retry budget and fails with ErrCoordinatorGone —
// the distinct "could not join" outcome — instead of retrying forever.
func TestDialBudgetExhausted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore
	start := time.Now()
	err = RunWorker(context.Background(), WorkerConfig{Addr: addr, ID: "w", DialBudget: 250 * time.Millisecond})
	if !errors.Is(err, ErrCoordinatorGone) {
		t.Fatalf("want ErrCoordinatorGone, got: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dial retry not bounded by budget: took %v", elapsed)
	}
}

// TestResultChecksumRejected: the wire boundary refuses result bodies that
// fail their self-checksum (HTTP 400) and counts them, so corruption is
// re-dispatched, never mis-credited.
func TestResultChecksumRejected(t *testing.T) {
	coord, err := NewCoordinator(CoordinatorConfig{Spec: testSpec(), ShardSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+PathResult, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	// Valid JSON, wrong checksum.
	p := &ShardPayload{Shard: 0, Worker: "w", SuiteHash: coord.Info().SuiteHash, Workloads: 4, Sum: "0000000000000000"}
	b, _ := json.Marshal(p)
	if resp := post(string(b)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("checksum mismatch not rejected: %d", resp.StatusCode)
	}
	// Missing checksum.
	p.Sum = ""
	b, _ = json.Marshal(p)
	if resp := post(string(b)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing checksum not rejected: %d", resp.StatusCode)
	}
	// Truncated JSON.
	if resp := post(string(b[:len(b)/2])); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated body not rejected: %d", resp.StatusCode)
	}
	if st := coord.Stats(); st.BadPayloads != 3 || st.Done != 0 {
		t.Fatalf("stats: %+v", st)
	}
	// And the genuine payload still credits.
	p.Sum = PayloadSum(p)
	b, _ = json.Marshal(p)
	if resp := post(string(b)); resp.StatusCode != http.StatusOK {
		t.Fatalf("honest payload rejected: %d", resp.StatusCode)
	}
	if st := coord.Stats(); st.Done != 1 {
		t.Fatalf("stats after honest credit: %+v", st)
	}
}

// TestPayloadSumSelfConsistent: the checksum is a pure function of payload
// content, ignores its own field, and moves when any field moves.
func TestPayloadSumSelfConsistent(t *testing.T) {
	p := &ShardPayload{Shard: 3, Worker: "w", SuiteHash: "abc", Workloads: 4, StatesChecked: 99}
	sum := PayloadSum(p)
	p.Sum = sum
	if got := PayloadSum(p); got != sum {
		t.Fatalf("checksum depends on its own field: %s vs %s", got, sum)
	}
	p.StatesChecked++
	if got := PayloadSum(p); got == sum {
		t.Fatal("checksum blind to a content change")
	}
}

// TestWireFaultDeterminism: injection decisions are a pure function of
// (seed, endpoint, call-index) — same seed, same faults; different seed,
// (overwhelmingly) different faults.
func TestWireFaultDeterminism(t *testing.T) {
	pattern := func(seed uint64) string {
		wf := &wireFaults{cfg: *DefaultWireFaults(seed)}
		var b strings.Builder
		for _, ep := range []string{PathLease, PathResult, PathHeartbeat} {
			for idx := uint64(0); idx < 64; idx++ {
				for _, dom := range []uint64{wireDropDomain, wireDupDomain, wireTruncDomain, wireFlipDomain, wireDelayDomain} {
					if hit(wf.site(dom, ep, idx), 11) {
						b.WriteByte('x')
					} else {
						b.WriteByte('.')
					}
				}
			}
		}
		return b.String()
	}
	if pattern(7) != pattern(7) {
		t.Fatal("same seed produced different fault patterns")
	}
	if pattern(7) == pattern(8) {
		t.Fatal("different seeds produced identical fault patterns")
	}
}
