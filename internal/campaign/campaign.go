// Package campaign is the distributed campaign runner: a stdlib-only
// coordinator/worker subsystem that shards a workload suite into numbered
// leases, dispatches them to worker processes over HTTP/JSON, and folds
// the results back into one Census.
//
// The design extends the engine's determinism contract one level up. A
// shard is a contiguous slice of the suite, identified by (shard index,
// suite fingerprint); a worker runs harness.Run on its slice and posts
// back the frozen census. Because every census field is either a sum, a
// maximum, or a suite-ordered concatenation, folding shard payloads in
// shard-index order reproduces the serial census byte for byte — for any
// worker count, any lease-expiry schedule, and any mid-campaign worker
// kill. Crediting is at-most-once (a resurrected slow worker's duplicate
// result is discarded), and completed shards are appended to an append-only
// checkpoint so a killed coordinator restarts with -resume and skips
// finished work.
//
// Fault tolerance falls out of the lease state machine (see coordinator.go):
// pending -> leased(worker, deadline) -> done | quarantined. A worker that
// dies mid-shard simply lets its lease expire; the shard reverts to pending
// and is re-dispatched. A shard that keeps failing — lease expiries,
// structured error payloads from a worker's watchdog, results rejected at
// the wire — spends a bounded number of dispatch attempts and then moves to
// the shard-quarantine ledger instead of failing the campaign or looping:
// the campaign completes degraded with a partial census over the healthy
// shards. Workers heartbeat live leases so a conservative TTL never loses a
// legitimately long shard, and result payloads carry an FNV-64a
// self-checksum so wire corruption is rejected, never mis-credited. Nothing
// a worker does before its result is credited has any effect on the
// campaign state.
package campaign

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"chipmunk/internal/ace"
	"chipmunk/internal/app/kvwork"
	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/obs"
	"chipmunk/internal/pmem"
	"chipmunk/internal/workload"
)

// Spec is the campaign configuration the coordinator is authoritative for.
// Workers fetch it on handshake and resolve it locally — the suite itself
// never crosses the wire, only its name plus the fingerprint that proves
// both sides generated the same workloads. Fields mirror the shared CLI
// flags (harness.BindCLI), in wire-friendly types.
type Spec struct {
	// FS and Bugs select the system under test (Bugs in -bugs syntax:
	// "none", "all", or a comma-separated ID list).
	FS   string `json:"fs"`
	Bugs string `json:"bugs"`
	// Suite names the ACE suite (ace.SuiteByName); Max truncates it
	// (0 = whole suite).
	Suite string `json:"suite"`
	Max   int    `json:"max,omitempty"`
	// Cap, Workers, CheckTimeoutNanos, ExhaustiveLimit, and FullCopy are
	// the engine tuning knobs every worker must share for results to be
	// comparable.
	Cap               int   `json:"cap"`
	Workers           int   `json:"workers"`
	CheckTimeoutNanos int64 `json:"check_timeout_ns"`
	ExhaustiveLimit   int   `json:"exhaustive_limit"`
	FullCopy          bool  `json:"full_copy,omitempty"`
	// Faults/FaultSeed enable the deterministic pmem fault injector.
	Faults    bool   `json:"faults,omitempty"`
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	// Stats asks workers to run with a metrics collector so shard
	// censuses carry obs snapshots (merged like the serial path would).
	Stats bool `json:"stats,omitempty"`
	// App selects an application-level workload and contract checker
	// ("" = FS-oracle checking); AppBugs is its -app-bugs spec. Every
	// worker must resolve the same app for shard results to be mergeable.
	App     string `json:"app,omitempty"`
	AppBugs string `json:"app_bugs,omitempty"`

	// Fuzz switches the campaign into fleet-fuzzing mode (internal/fleet):
	// leases become coverage-guided fuzzing rounds and minimization tasks
	// instead of suite shards, and corpus entries travel over the wire.
	// Workers auto-detect the mode from the handshake spec.
	Fuzz bool `json:"fuzz,omitempty"`
	// FuzzSeed is the soak's master seed: round r runs with RNG seed
	// splitmix64(FuzzSeed, r), so each round's behaviour is a pure function
	// of (spec, round index, corpus cut).
	FuzzSeed int64 `json:"fuzz_seed,omitempty"`
	// BudgetExecs / BudgetNanos bound the soak; exactly one is nonzero
	// (-budget EXECS or -budget DURATION). Exec budgets make the whole soak
	// deterministic; duration budgets bound wall-clock instead.
	BudgetExecs int   `json:"budget_execs,omitempty"`
	BudgetNanos int64 `json:"budget_ns,omitempty"`
	// RoundExecs is how many fuzzing iterations one round lease covers;
	// MinExecs the engine-invocation budget of one minimization task;
	// GenRounds the generation width (round r's corpus is the canonical
	// fold of everything discovered in generations before r/GenRounds).
	RoundExecs int `json:"round_execs,omitempty"`
	MinExecs   int `json:"min_execs,omitempty"`
	GenRounds  int `json:"gen_rounds,omitempty"`
}

// BuildSuite generates the spec's workload suite locally.
func (s Spec) BuildSuite() ([]workload.Workload, error) {
	suite, err := ace.SuiteByName(s.Suite)
	if err != nil {
		return nil, err
	}
	if s.Max > 0 && s.Max < len(suite) {
		suite = suite[:s.Max]
	}
	return suite, nil
}

// Options resolves the spec into the harness Options a worker runs with.
func (s Spec) Options() (harness.Options, error) {
	set, err := harness.ParseBugSpec(s.Bugs)
	if err != nil {
		return harness.Options{}, fmt.Errorf("campaign spec: %w", err)
	}
	opts := harness.Options{
		FS:                      s.FS,
		Bugs:                    set,
		Cap:                     s.Cap,
		Workers:                 s.Workers,
		CheckTimeout:            time.Duration(s.CheckTimeoutNanos),
		ExhaustiveLimit:         s.ExhaustiveLimit,
		DisableDeltaMaterialize: s.FullCopy,
	}
	if s.Faults {
		opts.Faults = pmem.DefaultFaults(s.FaultSeed)
	}
	if s.App != "" {
		if err := harness.AppByName(s.App); err != nil {
			return harness.Options{}, fmt.Errorf("campaign spec: %w", err)
		}
		appBugs, err := kvwork.ParseBugs(s.AppBugs)
		if err != nil {
			return harness.Options{}, fmt.Errorf("campaign spec: %w", err)
		}
		opts.App = s.App
		opts.AppBugs = appBugs
	}
	return opts, nil
}

// SpecInfo is the handshake response (GET /campaign/spec): the spec plus
// the coordinator's view of the sharded suite. Workers rebuild the suite
// from Spec, hash it, and refuse to proceed on a fingerprint mismatch —
// diverged generators must fail loudly, never merge silently.
type SpecInfo struct {
	CampaignID string `json:"campaign_id"`
	Spec       Spec   `json:"spec"`
	// SuiteHash is workload.FormatSuiteHash of the coordinator's suite.
	SuiteHash string `json:"suite_hash"`
	Shards    int    `json:"shards"`
	ShardSize int    `json:"shard_size"`
	Workloads int    `json:"workloads"`
}

// LeaseRequest asks for the next shard (POST /campaign/lease).
type LeaseRequest struct {
	Worker    string `json:"worker"`
	SuiteHash string `json:"suite_hash"`
}

// Lease states returned to workers.
const (
	// LeaseGranted carries a shard to run.
	LeaseGranted = "lease"
	// LeaseWait means every remaining shard is leased out — poll again.
	LeaseWait = "wait"
	// LeaseDone means the campaign is complete (or draining): exit.
	LeaseDone = "done"
)

// LeaseResponse answers a lease request.
type LeaseResponse struct {
	Status string `json:"status"`
	// Shard/Start/End identify the granted suite slice (Status=="lease").
	Shard int `json:"shard,omitempty"`
	Start int `json:"start,omitempty"`
	End   int `json:"end,omitempty"`
	// TTLNanos is the lease deadline budget: a result posted after the
	// coordinator re-dispatched the shard is discarded as a duplicate.
	TTLNanos int64 `json:"ttl_ns,omitempty"`
}

// ShardPayload is one completed shard's result (POST /campaign/result):
// the frozen census of harness.Run over suite[Start:End], carried field by
// field in wire-friendly integers plus the violation and quarantine
// ledgers verbatim. The coordinator folds payloads in shard order, so the
// distributed census is byte-identical to the serial one.
type ShardPayload struct {
	Shard     int    `json:"shard"`
	Worker    string `json:"worker"`
	SuiteHash string `json:"suite_hash"`

	Workloads            int               `json:"workloads"`
	StatesChecked        int               `json:"states_checked"`
	StatesDeduped        int               `json:"states_deduped"`
	TruncatedFences      int               `json:"truncated_fences"`
	Fences               int               `json:"fences"`
	MaxInFlight          int               `json:"max_in_flight"`
	InFlightSum          int               `json:"in_flight_sum"`
	InFlightN            int               `json:"in_flight_n"`
	ViolationTotal       int               `json:"violation_total"`
	SuppressedQuarantine int               `json:"suppressed_quarantine"`
	RetriedChecks        int               `json:"retried_checks"`
	ElapsedNanos         int64             `json:"elapsed_ns"`
	Violations           []core.Violation  `json:"violations,omitempty"`
	Quarantined          []core.Quarantine `json:"quarantined,omitempty"`
	Obs                  *obs.Snapshot     `json:"obs,omitempty"`

	// Err reports a shard whose engine call failed — an engine error, a
	// contained worker panic, or a tripped shard watchdog. The coordinator
	// counts it as a failed dispatch attempt: the shard is re-dispatched
	// until -shard-retries attempts are spent, then quarantined.
	Err string `json:"err,omitempty"`

	// Sum is the payload's FNV-64a self-checksum (PayloadSum over the JSON
	// encoding with Sum cleared). The coordinator recomputes it at the wire
	// boundary and rejects mismatches with HTTP 400, so a truncated or
	// corrupted body is re-dispatched instead of mis-credited.
	Sum string `json:"sum,omitempty"`
}

// PayloadSum computes the payload's wire self-checksum: FNV-64a over the
// canonical JSON encoding with the Sum field cleared. Pure function of the
// payload's content, so worker and coordinator agree independently.
func PayloadSum(p *ShardPayload) string {
	cp := *p
	cp.Sum = ""
	b, err := json.Marshal(&cp)
	if err != nil {
		// ShardPayload is a plain struct of marshalable fields; unreachable,
		// but never let checksumming panic the wire path.
		return fmt.Sprintf("unmarshalable: %v", err)
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// ShardQuarantine is one entry of the shard-quarantine ledger: a shard that
// failed -shard-retries dispatch attempts (lease expiries, structured error
// payloads, rejected results) and was removed from the campaign instead of
// failing it or looping forever. Mirrors PR 2's per-check quarantine one
// level up: the campaign completes with a partial census, and the ledger is
// never silent — persisted in the checkpoint, rendered in CAMPAIGN.txt,
// counted in obs, and reflected in the degraded exit code.
type ShardQuarantine struct {
	// Shard and Start/End identify the suite slice that went unchecked.
	Shard int `json:"shard"`
	Start int `json:"start"`
	End   int `json:"end"`
	// SuiteHash pins the ledger entry to its campaign, like shard credits.
	SuiteHash string `json:"suite_hash,omitempty"`
	// Worker is the last worker that held the shard; Err the last failure
	// (lease expiry, engine error payload, rejected result); Attempts the
	// total failed dispatch attempts.
	Worker   string `json:"worker,omitempty"`
	Err      string `json:"err,omitempty"`
	Attempts int    `json:"attempts"`
}

// String renders the ledger entry deterministically (reports, tests).
func (q ShardQuarantine) String() string {
	return fmt.Sprintf("shard %d [%d,%d): %d failed attempts, last worker %q: %s",
		q.Shard, q.Start, q.End, q.Attempts, q.Worker, q.Err)
}

// HeartbeatRequest extends a live lease (POST /campaign/heartbeat): a
// worker legitimately still running its shard posts one every TTL/3, so
// lease durations can stay conservative without losing long shards — an
// expiry then means the worker is actually gone.
type HeartbeatRequest struct {
	Worker    string `json:"worker"`
	Shard     int    `json:"shard"`
	SuiteHash string `json:"suite_hash"`
	// StatesChecked piggybacks the shard's live progress (crash states
	// checked so far) on the heartbeat, feeding the coordinator's
	// /campaign/status rate and ETA without a separate progress wire call.
	StatesChecked int `json:"states_checked,omitempty"`
}

// HeartbeatResponse answers a heartbeat. Extended is false when the shard
// is no longer leased to this worker (expired and re-dispatched, done, or
// quarantined): the worker should abandon the shard rather than burn
// compute on a result that would be discarded.
type HeartbeatResponse struct {
	Extended bool  `json:"extended"`
	TTLNanos int64 `json:"ttl_ns,omitempty"`
}

// CreditResponse answers a result post.
type CreditResponse struct {
	Accepted bool `json:"accepted"`
	// Duplicate means the shard was already credited (at-most-once): the
	// payload was discarded.
	Duplicate bool `json:"duplicate"`
	// Quarantined means the shard is in the shard-quarantine ledger — either
	// this error payload spent its last dispatch attempt, or a late result
	// arrived for an already-quarantined shard (discarded: a shard is never
	// both credited and quarantined).
	Quarantined bool `json:"quarantined,omitempty"`
	// Done means the campaign completed with this credit.
	Done bool `json:"done"`
}

// NewShardPayload freezes a shard's harness.Run outcome into its wire form.
func NewShardPayload(shard int, worker, suiteHash string, c *harness.Census, viol []core.Violation) *ShardPayload {
	return &ShardPayload{
		Shard:                shard,
		Worker:               worker,
		SuiteHash:            suiteHash,
		Workloads:            c.Workloads,
		StatesChecked:        c.StatesChecked,
		StatesDeduped:        c.StatesDeduped,
		TruncatedFences:      c.TruncatedFences,
		Fences:               c.Fences,
		MaxInFlight:          c.MaxInFlight,
		InFlightSum:          c.InFlightSum,
		InFlightN:            c.InFlightN,
		ViolationTotal:       c.Violations,
		SuppressedQuarantine: c.SuppressedQuarantine,
		RetriedChecks:        c.RetriedChecks,
		ElapsedNanos:         int64(c.Elapsed),
		Violations:           viol,
		Quarantined:          c.Quarantined,
		Obs:                  c.Obs,
	}
}

// Fold merges shard payloads — in shard-index order — into one Census plus
// the suite-ordered violation list, exactly the way the serial aggregator
// would have built them. Payloads must be complete (one per shard) and
// sorted by Shard; the coordinator guarantees both. Elapsed is the sum of
// shard wall-clocks (the campaign's total compute, not its wall-clock —
// the coordinator reports its own wall-clock separately).
func Fold(payloads []*ShardPayload) (*harness.Census, []core.Violation) {
	c := &harness.Census{}
	var viol []core.Violation
	var elapsed int64
	for _, p := range payloads {
		if p == nil {
			continue
		}
		c.Workloads += p.Workloads
		c.StatesChecked += p.StatesChecked
		c.StatesDeduped += p.StatesDeduped
		c.TruncatedFences += p.TruncatedFences
		c.Fences += p.Fences
		if p.MaxInFlight > c.MaxInFlight {
			c.MaxInFlight = p.MaxInFlight
		}
		c.InFlightSum += p.InFlightSum
		c.InFlightN += p.InFlightN
		c.Violations += p.ViolationTotal
		c.SuppressedQuarantine += p.SuppressedQuarantine
		c.RetriedChecks += p.RetriedChecks
		c.Quarantined = append(c.Quarantined, p.Quarantined...)
		viol = append(viol, p.Violations...)
		elapsed += p.ElapsedNanos
		if p.Obs != nil {
			if c.Obs == nil {
				c.Obs = &obs.Snapshot{}
			}
			c.Obs.Merge(*p.Obs)
		}
	}
	if c.InFlightN > 0 {
		c.AvgInFlight = float64(c.InFlightSum) / float64(c.InFlightN)
	}
	c.Elapsed = time.Duration(elapsed)
	return c, viol
}

// Fingerprint renders the deterministic identity of a census: every field
// the serial == distributed contract covers, and nothing wall-clock. Two
// runs of the same suite — serial, or distributed across any worker count,
// lease schedule, and kill pattern — produce byte-identical fingerprints.
// Obs is reduced to its DeterministicCounters (stage durations are
// measurements, and the materialization/fault counters are per-attempt).
func Fingerprint(c *harness.Census, viol []core.Violation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "workloads=%d states=%d deduped=%d truncated=%d fences=%d max-inflight=%d inflight=%d/%d violations=%d suppressed-quarantine=%d retried=%d\n",
		c.Workloads, c.StatesChecked, c.StatesDeduped, c.TruncatedFences,
		c.Fences, c.MaxInFlight, c.InFlightSum, c.InFlightN,
		c.Violations, c.SuppressedQuarantine, c.RetriedChecks)
	for _, v := range viol {
		b.WriteString(v.String())
		b.WriteByte('\n')
	}
	for _, q := range c.Quarantined {
		b.WriteString(q.String())
		b.WriteByte('\n')
	}
	if c.Obs != nil {
		ctrs := c.Obs.DeterministicCounters()
		names := make([]string, 0, len(ctrs))
		for name := range ctrs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "obs %s=%d\n", name, ctrs[name])
		}
	}
	return b.String()
}

// shardRange returns shard i's suite slice bounds for a given shard size.
func shardRange(i, shardSize, workloads int) (start, end int) {
	start = i * shardSize
	end = start + shardSize
	if end > workloads {
		end = workloads
	}
	return start, end
}

// numShards returns how many shards a suite splits into.
func numShards(workloads, shardSize int) int {
	if workloads == 0 {
		return 0
	}
	return (workloads + shardSize - 1) / shardSize
}
