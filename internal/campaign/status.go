package campaign

import (
	"html/template"
	"net/http"
	"sort"
	"time"

	"chipmunk/internal/obs"
)

// This file is the coordinator's read-only observability surface: the live
// JSON shard map (GET /campaign/status), the stdlib-only auto-refreshing
// HTML dashboard rendered from the same snapshot (GET /campaign/dash), and
// the Prometheus text exposition of the merged census collector
// (GET /debug/metrics). None of these mutate campaign state: watching a
// campaign is always safe.

// CampaignStatus is one point-in-time view of a campaign: the shard state
// counts, worker liveness, throughput, and ETA the dashboard renders. All
// durations are seconds (JSON-friendly; no nanosecond fields to misread).
type CampaignStatus struct {
	CampaignID string `json:"campaign_id"`
	FS         string `json:"fs"`
	Suite      string `json:"suite"`
	SuiteHash  string `json:"suite_hash"`
	Workloads  int    `json:"workloads"`
	ShardSize  int    `json:"shard_size"`

	// Shard state machine counts; Shards = Pending+Leased+Done+Quarantined.
	Shards      int  `json:"shards"`
	Pending     int  `json:"pending"`
	Leased      int  `json:"leased"`
	Done        int  `json:"done"`
	Quarantined int  `json:"quarantined"`
	Resumed     int  `json:"resumed,omitempty"`
	Draining    bool `json:"draining,omitempty"`

	// ShardMap is one character per shard in shard order: '.' pending,
	// 'r' leased (running), '#' done, 'X' quarantined.
	ShardMap string `json:"shard_map"`

	// StatesChecked sums credited shard payloads plus the live progress
	// in-flight leases piggybacked on their last heartbeat; StatesPerSec
	// divides the credited portion by campaign wall-clock, and ETASec
	// extrapolates the remaining shards from the shards credited this run
	// (checkpoint resumes excluded — they were free). ETASec is 0 until the
	// first live credit lands.
	ElapsedSec    float64 `json:"elapsed_sec"`
	StatesChecked int64   `json:"states_checked"`
	StatesPerSec  float64 `json:"states_per_sec"`
	ETASec        float64 `json:"eta_sec"`
	Violations    int     `json:"violations"`

	Workers  []WorkerStatus `json:"workers,omitempty"`
	InFlight []ShardStatus  `json:"in_flight,omitempty"`
}

// WorkerStatus is one worker's liveness row, sorted by ID.
type WorkerStatus struct {
	ID string `json:"id"`
	// LastSeenSec is the age of the worker's most recent lease, heartbeat,
	// or result — the dashboard's liveness column.
	LastSeenSec float64 `json:"last_seen_sec"`
	ShardsDone  int     `json:"shards_done"`
}

// ShardStatus is one in-flight lease, in shard order.
type ShardStatus struct {
	Shard  int    `json:"shard"`
	Start  int    `json:"start"`
	End    int    `json:"end"`
	Worker string `json:"worker"`
	// AgeSec is time since the lease grant, BeatAgeSec since its last
	// heartbeat (also the grant when none arrived yet).
	AgeSec     float64 `json:"age_sec"`
	BeatAgeSec float64 `json:"beat_age_sec"`
	// StatesChecked is the live progress the worker piggybacked on its last
	// heartbeat (0 until the first one lands).
	StatesChecked int `json:"states_checked"`
	Attempts      int `json:"attempts,omitempty"`
}

// Status snapshots the campaign for the dashboard. Expired leases are shown
// as the lease state machine last left them — reclaim happens on the next
// lease request, and a read-only status probe must not advance the machine.
func (c *Coordinator) Status() CampaignStatus {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := CampaignStatus{
		CampaignID: c.info.CampaignID,
		FS:         c.info.Spec.FS,
		Suite:      c.info.Spec.Suite,
		SuiteHash:  c.info.SuiteHash,
		Workloads:  c.info.Workloads,
		ShardSize:  c.info.ShardSize,
		Shards:     len(c.shards),
		Resumed:    c.resumed,
		Draining:   c.draining,
		ElapsedSec: now.Sub(c.started).Seconds(),
	}
	shardMap := make([]byte, len(c.shards))
	var credited int64
	for i := range c.shards {
		s := &c.shards[i]
		switch s.state {
		case shardPending:
			st.Pending++
			shardMap[i] = '.'
		case shardLeased:
			st.Leased++
			shardMap[i] = 'r'
			credited += int64(s.progress)
			st.InFlight = append(st.InFlight, ShardStatus{
				Shard: i, Start: s.start, End: s.end, Worker: s.worker,
				AgeSec:     now.Sub(s.leasedAt).Seconds(),
				BeatAgeSec: now.Sub(s.lastBeat).Seconds(),
				StatesChecked: s.progress, Attempts: s.attempts,
			})
		case shardDone:
			st.Done++
			shardMap[i] = '#'
			if s.payload != nil {
				credited += int64(s.payload.StatesChecked)
				st.Violations += s.payload.ViolationTotal
			}
		case shardQuarantined:
			st.Quarantined++
			shardMap[i] = 'X'
		}
	}
	st.ShardMap = string(shardMap)
	st.StatesChecked = credited
	if st.ElapsedSec > 0 {
		st.StatesPerSec = float64(credited) / st.ElapsedSec
	}
	if live := st.Done - c.resumed; live > 0 {
		remaining := st.Pending + st.Leased
		st.ETASec = st.ElapsedSec * float64(remaining) / float64(live)
	}
	for id, seen := range c.workers {
		st.Workers = append(st.Workers, WorkerStatus{
			ID: id, LastSeenSec: now.Sub(seen).Seconds(), ShardsDone: c.perWorker[id],
		})
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	return st
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// handleMetrics exposes the merged census collector in Prometheus text
// format — the same exposition the engine's -debug-addr listener serves, so
// one scrape config covers local runs and campaign coordinators alike.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cen, _ := c.Merged()
	w.Header().Set("Content-Type", obs.MetricsContentType)
	cen.Obs.WriteMetrics(w)
}

// dashTmpl is the whole dashboard: one HTML page, no scripts, no external
// assets, refreshed by <meta http-equiv="refresh">. html/template escapes
// every interpolation, so worker IDs and suite names are inert.
var dashTmpl = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>chipmunk campaign {{.CampaignID}}</title>
<style>
body { font-family: monospace; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.2em; }
table { border-collapse: collapse; } td, th { padding: 2px 10px; text-align: left; border-bottom: 1px solid #ddd; }
.map { word-break: break-all; max-width: 64em; line-height: 1.1; }
.done { color: #2a7; } .run { color: #07c; } .quar { color: #c22; font-weight: bold; }
</style></head><body>
<h1>campaign {{.CampaignID}} &mdash; {{.FS}} / {{.Suite}} ({{.Workloads}} workloads, hash {{.SuiteHash}})</h1>
<p>
<span class="done">{{.Done}}/{{.Shards}} shards done</span> &middot;
<span class="run">{{.Leased}} running</span> &middot;
{{.Pending}} pending{{if .Quarantined}} &middot; <span class="quar">{{.Quarantined}} QUARANTINED</span>{{end}}{{if .Draining}} &middot; draining{{end}}
</p>
<p>{{.StatesChecked}} states checked &middot; {{printf "%.1f" .StatesPerSec}} states/sec &middot;
elapsed {{printf "%.0f" .ElapsedSec}}s{{if gt .ETASec 0.0}} &middot; ETA {{printf "%.0f" .ETASec}}s{{end}} &middot;
{{.Violations}} violations</p>
<h2>shard map ('.' pending, 'r' running, '#' done, 'X' quarantined)</h2>
<pre class="map">{{.ShardMap}}</pre>
{{if .Workers}}<h2>workers</h2>
<table><tr><th>worker</th><th>last seen</th><th>shards done</th></tr>
{{range .Workers}}<tr><td>{{.ID}}</td><td>{{printf "%.1f" .LastSeenSec}}s ago</td><td>{{.ShardsDone}}</td></tr>
{{end}}</table>{{end}}
{{if .InFlight}}<h2>in flight</h2>
<table><tr><th>shard</th><th>range</th><th>worker</th><th>age</th><th>last beat</th><th>states</th><th>attempts</th></tr>
{{range .InFlight}}<tr><td>{{.Shard}}</td><td>[{{.Start}},{{.End}})</td><td>{{.Worker}}</td><td>{{printf "%.1f" .AgeSec}}s</td><td>{{printf "%.1f" .BeatAgeSec}}s ago</td><td>{{.StatesChecked}}</td><td>{{.Attempts}}</td></tr>
{{end}}</table>{{end}}
</body></html>
`))

func (c *Coordinator) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashTmpl.Execute(w, c.Status()); err != nil {
		// Too late for an HTTP error (the header is out); the next refresh
		// retries anyway.
		c.log("dash render: %v", err)
	}
}
