package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Addr is the coordinator's host:port.
	Addr string
	// ID names this worker in leases and per-worker stats (default:
	// hostname-pid).
	ID string
	// Jobs is the suite-level worker count within each shard (harness
	// WithWorkers; determinism holds for any value). Default 1.
	Jobs int
	// Journal, when non-nil, receives this worker's run-journal events —
	// per-worker journals are merged afterwards with journaltool -merge.
	Journal *obs.Journal
	// Poll is the wait-state poll interval (default 300ms).
	Poll time.Duration
	// OnLease, when set, is called after each granted lease before the
	// shard runs — the hook kill-mid-shard tests use to die at a precise
	// point.
	OnLease func(LeaseResponse)
	// Logf, when set, receives one line per lease/result event.
	Logf func(format string, args ...any)
}

// Worker-side wire client tunables: how long to keep retrying an
// unreachable coordinator before concluding it is gone.
const (
	workerDialRetries = 20
	workerDialBackoff = 250 * time.Millisecond
)

// RunWorker joins the campaign at wc.Addr and processes leases until the
// coordinator reports the campaign done (or draining), the context is
// cancelled, or an error is fatal.
//
// Fault-model contract: a worker makes no campaign-visible progress except
// by a credited result POST. Dying mid-shard — crash, SIGKILL, cancelled
// context, lost network — just lets the lease expire for re-dispatch; the
// shard is eventually credited exactly once, somewhere, with byte-identical
// payload. A coordinator that becomes permanently unreachable after the
// handshake is treated as "campaign over" (it completed and exited, or it
// crashed and its checkpoint will resume): the worker exits cleanly rather
// than failing a pipeline whose state is safe either way.
func RunWorker(ctx context.Context, wc WorkerConfig) error {
	if wc.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		wc.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if wc.Jobs == 0 {
		wc.Jobs = 1
	}
	if wc.Poll <= 0 {
		wc.Poll = 300 * time.Millisecond
	}
	logf := wc.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := &http.Client{}

	// Handshake: fetch the spec, rebuild the suite locally, and verify the
	// fingerprint — a worker whose generator diverged must stop here, not
	// merge incomparable results.
	var info SpecInfo
	if err := getJSON(ctx, client, "http://"+wc.Addr+PathSpec, &info); err != nil {
		return fmt.Errorf("campaign: handshake with %s: %w", wc.Addr, err)
	}
	suite, err := info.Spec.BuildSuite()
	if err != nil {
		return fmt.Errorf("campaign: handshake: %w", err)
	}
	localHash := workload.FormatSuiteHash(workload.SuiteHash(suite))
	if localHash != info.SuiteHash {
		return fmt.Errorf(
			"campaign: suite fingerprint mismatch: coordinator %s has %s for %q (%d workloads), this worker generated %s (%d workloads) — binaries/generators differ, refusing to run",
			wc.Addr, info.SuiteHash, info.Spec.Suite, info.Workloads, localHash, len(suite))
	}
	opts, err := info.Spec.Options()
	if err != nil {
		return err
	}
	if info.Spec.Stats {
		opts.Obs = obs.New()
	}
	opts.Journal = wc.Journal
	sys, cfg, err := opts.Resolve()
	if err != nil {
		return err
	}
	logf("worker %s joined campaign %s: %s suite %s (%d workloads, %d shards), fingerprint %s",
		wc.ID, info.CampaignID, sys.Name, info.Spec.Suite, info.Workloads, info.Shards, info.SuiteHash)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lease LeaseResponse
		err := postJSON(ctx, client, "http://"+wc.Addr+PathLease,
			LeaseRequest{Worker: wc.ID, SuiteHash: info.SuiteHash}, &lease)
		if err != nil {
			if gone(err) {
				logf("worker %s: coordinator %s gone; assuming campaign over", wc.ID, wc.Addr)
				return nil
			}
			return fmt.Errorf("campaign: lease: %w", err)
		}
		switch lease.Status {
		case LeaseDone:
			logf("worker %s: campaign done", wc.ID)
			return nil
		case LeaseWait:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wc.Poll):
			}
			continue
		case LeaseGranted:
		default:
			return fmt.Errorf("campaign: unknown lease status %q", lease.Status)
		}

		if wc.OnLease != nil {
			wc.OnLease(lease)
		}
		if lease.Start < 0 || lease.End > len(suite) || lease.Start >= lease.End {
			return fmt.Errorf("campaign: lease shard %d range [%d,%d) out of suite bounds [0,%d)",
				lease.Shard, lease.Start, lease.End, len(suite))
		}
		logf("worker %s: running shard %d [%d,%d)", wc.ID, lease.Shard, lease.Start, lease.End)
		payload := runShard(ctx, cfg, suite, lease, wc.ID, info.SuiteHash, wc.Jobs)
		if payload == nil {
			// Cancelled mid-shard: report nothing — the lease expires and
			// the shard is re-dispatched whole.
			return ctx.Err()
		}

		var credit CreditResponse
		err = postJSON(ctx, client, "http://"+wc.Addr+PathResult, payload, &credit)
		if err != nil {
			if gone(err) {
				logf("worker %s: coordinator %s gone before result for shard %d; lease will expire elsewhere",
					wc.ID, wc.Addr, lease.Shard)
				return nil
			}
			return fmt.Errorf("campaign: result: %w", err)
		}
		switch {
		case credit.Duplicate:
			logf("worker %s: shard %d was already credited (re-dispatched past our lease)", wc.ID, lease.Shard)
		case credit.Accepted:
			logf("worker %s: shard %d credited", wc.ID, lease.Shard)
		}
		if payload.Err != "" || credit.Done {
			if payload.Err != "" {
				return fmt.Errorf("campaign: shard %d failed: %s", lease.Shard, payload.Err)
			}
			logf("worker %s: campaign done", wc.ID)
			return nil
		}
	}
}

// runShard executes one leased suite slice and freezes the payload.
// Returns nil when the context was cancelled mid-run (nothing to report:
// the lease expires and the shard re-runs whole elsewhere). An engine
// error becomes a payload with Err set — deterministic, so the
// coordinator fails the campaign instead of re-dispatching forever.
func runShard(ctx context.Context, cfg core.Config, suite []workload.Workload, lease LeaseResponse, id, suiteHash string, jobs int) *ShardPayload {
	census, viol, err := harness.Run(ctx, cfg, suite[lease.Start:lease.End], harness.WithWorkers(jobs))
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return &ShardPayload{Shard: lease.Shard, Worker: id, SuiteHash: suiteHash, Err: err.Error()}
	}
	return NewShardPayload(lease.Shard, id, suiteHash, census, viol)
}

// gone classifies transport errors that mean the coordinator process is no
// longer there (connection refused/reset, EOF mid-response) after retries
// were exhausted, as opposed to protocol errors it answered with.
func gone(err error) bool {
	return errors.Is(err, errCoordinatorGone)
}

var errCoordinatorGone = errors.New("coordinator unreachable")

// getJSON fetches url into out, retrying transport errors with backoff
// until the budget is spent (then wrapping errCoordinatorGone) or ctx is
// cancelled.
func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	return doJSON(ctx, client, http.MethodGet, url, nil, out)
}

// postJSON posts body (JSON) to url and decodes the response into out,
// with the same retry contract as getJSON. A non-2xx response is returned
// as an error carrying the coordinator's message (e.g. a fingerprint
// rejection) and is never retried.
func postJSON(ctx context.Context, client *http.Client, url string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return doJSON(ctx, client, http.MethodPost, url, b, out)
}

func doJSON(ctx context.Context, client *http.Client, method, url string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt < workerDialRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(workerDialBackoff):
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			continue // transport error: coordinator restarting or gone; retry
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBody))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode/100 != 2 {
			var we wireError
			if json.Unmarshal(data, &we) == nil && we.Error != "" {
				return fmt.Errorf("coordinator rejected request (%d): %s", resp.StatusCode, we.Error)
			}
			return fmt.Errorf("coordinator rejected request: %s", resp.Status)
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("bad coordinator response: %w", err)
			}
		}
		return nil
	}
	return fmt.Errorf("%w after %d attempts: %v", errCoordinatorGone, workerDialRetries, lastErr)
}
