package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// DefaultShardTimeout is the worker-side watchdog deadline for one shard's
// engine call (-shard-timeout): a shard that exceeds it is reported to the
// coordinator as a structured error payload instead of wedging the worker
// forever. Generous — a shard is DefaultShardSize small workloads — but
// finite, because the paper's weeks-long campaigns only work if no single
// target hang can pin a fleet slot.
const DefaultShardTimeout = 10 * time.Minute

// DefaultDialBudget is the total retry budget one wire call gets before the
// worker concludes the coordinator is gone. Individual attempts back off
// exponentially with full jitter (so a restarting coordinator is not
// stampeded), and the budget bounds the whole loop.
const DefaultDialBudget = 15 * time.Second

// WorkerConfig configures RunWorker.
type WorkerConfig struct {
	// Addr is the coordinator's host:port.
	Addr string
	// ID names this worker in leases and per-worker stats (default:
	// hostname-pid).
	ID string
	// Jobs is the suite-level worker count within each shard (harness
	// WithWorkers; determinism holds for any value). Default 1.
	Jobs int
	// ShardTimeout is the per-shard engine watchdog (0 = DefaultShardTimeout,
	// negative = no watchdog). A tripped watchdog becomes a structured error
	// payload — one failed dispatch attempt on the coordinator, counting
	// toward the shard's quarantine budget.
	ShardTimeout time.Duration
	// DialBudget bounds the total retry time of each wire call
	// (0 = DefaultDialBudget). Exhausting it at handshake fails RunWorker
	// with ErrCoordinatorGone; after the handshake it means the campaign is
	// over (completed, or crashed with its checkpoint safe) and the worker
	// exits cleanly.
	DialBudget time.Duration
	// Journal, when non-nil, receives this worker's run-journal events —
	// per-worker journals are merged afterwards with journaltool -merge.
	Journal *obs.Journal
	// Poll is the wait-state poll interval (default 300ms).
	Poll time.Duration
	// OnLease, when set, is called after each granted lease before the
	// shard runs — the hook kill-mid-shard tests use to die at a precise
	// point.
	OnLease func(LeaseResponse)
	// PoisonShards is the chaos hook behind -poison-shard: the engine call
	// panics for these shard ids, modeling a workload that crash-loops its
	// worker (OOM, SIGKILL, an engine bug escaping the check sandbox). The
	// worker's self-defense contains the panic into an error payload; the
	// coordinator quarantines the shard once its attempts are spent. Tests
	// and the CI chaos smoke use it; empty in production.
	PoisonShards []int
	// Logf, when set, receives one line per lease/result event.
	Logf func(format string, args ...any)

	// runEngine overrides the shard engine call in tests (slow shards,
	// hangs, deterministic failures). nil = harness.Run.
	runEngine func(ctx context.Context, cfg core.Config, slice []workload.Workload, lease LeaseResponse, jobs int) (*harness.Census, []core.Violation, error)
}

// RunWorker joins the campaign at wc.Addr and processes leases until the
// coordinator reports the campaign done (or draining), the context is
// cancelled, or an error is fatal.
//
// Fault-model contract: a worker makes no campaign-visible progress except
// by a credited result POST. Dying mid-shard — crash, SIGKILL, cancelled
// context, lost network — just lets the lease expire for re-dispatch; the
// shard is eventually credited exactly once, somewhere, with byte-identical
// payload, or quarantined once its dispatch attempts are spent. While a
// shard runs, the worker heartbeats its lease (every TTL/3) so a
// conservative lease never expires under a legitimately long shard, and the
// engine call runs under a watchdog with panic containment: a hung or
// crashing shard becomes a structured error payload, not a dead worker. A
// coordinator that becomes permanently unreachable after the handshake is
// treated as "campaign over" (it completed and exited, or it crashed and
// its checkpoint will resume): the worker exits cleanly rather than failing
// a pipeline whose state is safe either way. Unreachable at handshake is
// different — the worker never joined — and fails with ErrCoordinatorGone.
func RunWorker(ctx context.Context, wc WorkerConfig) error {
	if wc.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		wc.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if wc.Jobs == 0 {
		wc.Jobs = 1
	}
	if wc.Poll <= 0 {
		wc.Poll = 300 * time.Millisecond
	}
	if wc.ShardTimeout == 0 {
		wc.ShardTimeout = DefaultShardTimeout
	}
	if wc.DialBudget <= 0 {
		wc.DialBudget = DefaultDialBudget
	}
	logf := wc.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	client := &http.Client{}

	// Handshake: fetch the spec, rebuild the suite locally, and verify the
	// fingerprint — a worker whose generator diverged must stop here, not
	// merge incomparable results.
	var info SpecInfo
	if err := getJSON(ctx, client, "http://"+wc.Addr+PathSpec, &info, wc.DialBudget); err != nil {
		return fmt.Errorf("campaign: handshake with %s: %w", wc.Addr, err)
	}
	suite, err := info.Spec.BuildSuite()
	if err != nil {
		return fmt.Errorf("campaign: handshake: %w", err)
	}
	localHash := workload.FormatSuiteHash(workload.SuiteHash(suite))
	if localHash != info.SuiteHash {
		return fmt.Errorf(
			"campaign: suite fingerprint mismatch: coordinator %s has %s for %q (%d workloads), this worker generated %s (%d workloads) — binaries/generators differ, refusing to run",
			wc.Addr, info.SuiteHash, info.Spec.Suite, info.Workloads, localHash, len(suite))
	}
	opts, err := info.Spec.Options()
	if err != nil {
		return err
	}
	if info.Spec.Stats {
		opts.Obs = obs.New()
	}
	opts.Journal = wc.Journal
	sys, cfg, err := opts.Resolve()
	if err != nil {
		return err
	}
	logf("worker %s joined campaign %s: %s suite %s (%d workloads, %d shards), fingerprint %s",
		wc.ID, info.CampaignID, sys.Name, info.Spec.Suite, info.Workloads, info.Shards, info.SuiteHash)
	// Per-shard traces key off (suite hash, shard index): any worker that
	// runs shard k of this campaign emits the same trace ID, so a
	// re-dispatched shard's attempts land in one waterfall.
	traceSeed, _ := strconv.ParseUint(info.SuiteHash, 16, 64)

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lstart time.Time
		if wc.Journal != nil {
			lstart = time.Now()
		}
		var lease LeaseResponse
		err := postJSON(ctx, client, "http://"+wc.Addr+PathLease,
			LeaseRequest{Worker: wc.ID, SuiteHash: info.SuiteHash}, &lease, wc.DialBudget)
		if err != nil {
			if gone(err) {
				logf("worker %s: coordinator %s gone; assuming campaign over", wc.ID, wc.Addr)
				return nil
			}
			return fmt.Errorf("campaign: lease: %w", err)
		}
		switch lease.Status {
		case LeaseDone:
			logf("worker %s: campaign done", wc.ID)
			return nil
		case LeaseWait:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wc.Poll):
			}
			continue
		case LeaseGranted:
		default:
			// A status outside the protocol can only be a response corrupted
			// in flight (the coordinator emits three fixed strings): discard
			// and re-poll — whatever was actually granted expires on its own.
			logf("worker %s: unknown lease status %q; discarding (corrupt response?)", wc.ID, lease.Status)
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(wc.Poll):
			}
			continue
		}

		if wc.OnLease != nil {
			wc.OnLease(lease)
		}
		// Geometry check: the slice bounds are fully determined by (shard id,
		// shard size, suite length), all known since the handshake, so a lease
		// response corrupted in flight — a flipped bit in shard, start, or end
		// — cannot make the worker silently run the wrong slice. Discard it;
		// the phantom lease expires and the shard re-runs intact.
		wantStart, wantEnd := shardRange(lease.Shard, info.ShardSize, len(suite))
		if lease.Shard < 0 || lease.Shard >= info.Shards || lease.Start != wantStart || lease.End != wantEnd {
			logf("worker %s: lease shard %d [%d,%d) fails geometry check (want [%d,%d)); discarding (corrupt response?)",
				wc.ID, lease.Shard, lease.Start, lease.End, wantStart, wantEnd)
			continue
		}
		logf("worker %s: running shard %d [%d,%d)", wc.ID, lease.Shard, lease.Start, lease.End)
		// The shard's measurement trace: a "shard" span over the engine call,
		// with wire:lease/wire:heartbeat/wire:result children. These spans
		// measure the fleet (latency, retries), not the suite — they are
		// never part of the local span-determinism differential.
		tr := obs.NewTracer(wc.Journal, traceSeed, lease.Shard)
		shardSpan := tr.ID("shard", info.Spec.Suite, 0, lease.Shard)
		tr.Span("wire:lease", lstart, shardSpan,
			obs.Event{Workload: info.Spec.Suite, Worker: wc.ID, Sys: -1, Rank: lease.Shard})
		payload, abandoned := runShard(ctx, client, wc, cfg, suite, lease, info, tr, shardSpan)
		if payload == nil {
			if abandoned {
				// The coordinator told a heartbeat this lease is lost
				// (expired and re-dispatched, or quarantined): stop burning
				// compute on a result that would be discarded and lease on.
				logf("worker %s: shard %d lease lost mid-run; abandoning", wc.ID, lease.Shard)
				continue
			}
			// Cancelled mid-shard: report nothing — the lease expires and
			// the shard is re-dispatched whole.
			return ctx.Err()
		}
		payload.Sum = PayloadSum(payload)

		rstart := tr.Begin()
		var credit CreditResponse
		err = postJSON(ctx, client, "http://"+wc.Addr+PathResult, payload, &credit, wc.DialBudget)
		tr.Span("wire:result", rstart, shardSpan,
			obs.Event{Workload: info.Spec.Suite, Worker: wc.ID, Sys: -1, Rank: lease.Shard, States: payload.StatesChecked})
		if err != nil {
			if gone(err) {
				logf("worker %s: coordinator %s gone before result for shard %d; lease will expire elsewhere",
					wc.ID, wc.Addr, lease.Shard)
				return nil
			}
			return fmt.Errorf("campaign: result: %w", err)
		}
		switch {
		case payload.Err != "" && credit.Quarantined:
			logf("worker %s: shard %d failed (%s) and was QUARANTINED by the coordinator", wc.ID, lease.Shard, payload.Err)
		case payload.Err != "":
			logf("worker %s: shard %d failed (%s); coordinator will re-dispatch", wc.ID, lease.Shard, payload.Err)
		case credit.Quarantined:
			logf("worker %s: shard %d result discarded (shard already quarantined)", wc.ID, lease.Shard)
		case credit.Duplicate:
			logf("worker %s: shard %d was already credited (re-dispatched past our lease)", wc.ID, lease.Shard)
		case credit.Accepted:
			logf("worker %s: shard %d credited", wc.ID, lease.Shard)
		}
		if credit.Done {
			logf("worker %s: campaign done", wc.ID)
			return nil
		}
	}
}

// runShard executes one leased suite slice under the worker's self-defense
// layers — a watchdog deadline, panic containment, and lease heartbeats —
// and freezes the payload. Returns (nil, false) when the worker's own
// context was cancelled (nothing to report: the lease expires and the shard
// re-runs whole elsewhere) and (nil, true) when the coordinator declared
// the lease lost mid-run (abandon, lease on). Engine errors, contained
// panics, and tripped watchdogs become payloads with Err set: one failed
// dispatch attempt, counted toward the shard's quarantine budget.
func runShard(ctx context.Context, client *http.Client, wc WorkerConfig, cfg core.Config,
	suite []workload.Workload, lease LeaseResponse, info SpecInfo,
	tr *obs.Tracer, shardSpan string) (payload *ShardPayload, abandoned bool) {
	runCtx, cancel := context.WithCancel(ctx)
	if wc.ShardTimeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, wc.ShardTimeout)
	}
	defer cancel()

	// Heartbeat the lease every TTL/3 while the engine runs, piggybacking
	// the shard's live states-checked count for the coordinator's dashboard.
	// A failed heartbeat POST stops the loop quietly (the result POST or the
	// lease expiry decides); an explicit "not extended" means the lease is
	// gone — journal the refusal, cancel the engine, and abandon.
	var lost atomic.Bool
	var progress atomic.Int64
	hbDone := make(chan struct{})
	interval := time.Duration(lease.TTLNanos) / 3
	if interval <= 0 {
		interval = DefaultLeaseTTL / 3
	}
	go func() {
		defer close(hbDone)
		t := time.NewTicker(interval)
		defer t.Stop()
		for beat := 0; ; beat++ {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
			}
			hstart := tr.Begin()
			var hb HeartbeatResponse
			err := postJSON(runCtx, client, "http://"+wc.Addr+PathHeartbeat,
				HeartbeatRequest{Worker: wc.ID, Shard: lease.Shard, SuiteHash: info.SuiteHash,
					StatesChecked: int(progress.Load())}, &hb, interval)
			if err != nil {
				return
			}
			tr.Span("wire:heartbeat", hstart, shardSpan,
				obs.Event{Workload: info.Spec.Suite, Worker: wc.ID, Sys: -1, Rank: beat})
			if !hb.Extended {
				wc.Journal.Emit(obs.Event{
					Type: "heartbeat-refused", FS: info.Spec.FS, Workload: info.Spec.Suite,
					Worker: wc.ID, Sys: -1, Rank: lease.Shard,
					Detail: "coordinator refused lease extension (expired, re-dispatched, or quarantined); abandoning shard",
				})
				lost.Store(true)
				cancel()
				return
			}
		}
	}()

	sbegin := tr.Begin()
	census, viol, err := func() (c *harness.Census, v []core.Violation, err error) {
		// Self-defense: an engine panic (or a poisoned shard) must become a
		// structured error payload, never a dead worker — the coordinator's
		// attempt accounting depends on hearing about failures.
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("engine panic: %v", r)
			}
		}()
		for _, p := range wc.PoisonShards {
			if p == lease.Shard {
				panic(fmt.Sprintf("chaos: poisoned shard %d", lease.Shard))
			}
		}
		if wc.runEngine != nil {
			return wc.runEngine(runCtx, cfg, suite[lease.Start:lease.End], lease, wc.Jobs)
		}
		return harness.Run(runCtx, cfg, suite[lease.Start:lease.End], harness.WithWorkers(wc.Jobs),
			harness.WithProgress(func(done, total int, c harness.Census) {
				progress.Store(int64(c.StatesChecked))
			}))
	}()
	cancel()
	<-hbDone

	shardEvent := func(detail string) obs.Event {
		e := obs.Event{Workload: info.Spec.Suite, FS: info.Spec.FS,
			Worker: wc.ID, Sys: -1, Rank: lease.Shard, Detail: detail}
		if census != nil {
			e.States = census.StatesChecked
			e.Fences = census.Fences
			e.Violations = census.Violations
		}
		return e
	}
	errPayload := func(msg string) *ShardPayload {
		return &ShardPayload{Shard: lease.Shard, Worker: wc.ID, SuiteHash: info.SuiteHash, Err: msg}
	}
	switch {
	case err == nil:
		tr.Span("shard", sbegin, "", shardEvent(""))
		return NewShardPayload(lease.Shard, wc.ID, info.SuiteHash, census, viol), false
	case lost.Load():
		tr.Span("shard", sbegin, "", shardEvent("abandoned: lease lost mid-run"))
		return nil, true
	case ctx.Err() != nil:
		return nil, false
	case errors.Is(runCtx.Err(), context.DeadlineExceeded):
		msg := fmt.Sprintf("shard watchdog: engine exceeded -shard-timeout %v", wc.ShardTimeout)
		wc.Journal.Emit(obs.Event{
			Type: "shard-watchdog", FS: info.Spec.FS, Workload: info.Spec.Suite,
			Worker: wc.ID, Sys: -1, Rank: lease.Shard, Detail: msg,
		})
		tr.Span("shard", sbegin, "", shardEvent(msg))
		return errPayload(msg), false
	default:
		tr.Span("shard", sbegin, "", shardEvent("error: "+err.Error()))
		return errPayload(err.Error()), false
	}
}

// gone classifies transport errors that mean the coordinator process is no
// longer there (connection refused/reset, EOF mid-response) after the dial
// budget was exhausted, as opposed to protocol errors it answered with.
func gone(err error) bool {
	return errors.Is(err, ErrCoordinatorGone)
}

// ErrCoordinatorGone marks a wire call whose whole retry budget was spent
// on transport errors: the coordinator process is unreachable. RunWorker
// wraps it in its handshake error so frontends can exit with a distinct
// status ("could not join") instead of a generic failure.
var ErrCoordinatorGone = errors.New("coordinator unreachable")

// getJSON fetches url into out, retrying transport errors with jittered
// exponential backoff until the budget is spent (then wrapping
// ErrCoordinatorGone) or ctx is cancelled.
func getJSON(ctx context.Context, client *http.Client, url string, out any, budget time.Duration) error {
	return doJSON(ctx, client, http.MethodGet, url, nil, out, budget)
}

// GetJSON and PostJSON expose the worker wire-call helpers — jittered
// exponential backoff, ErrCoordinatorGone on budget exhaustion, 400/409
// retried as in-flight corruption — to the other campaign frontend
// (internal/fleet's fuzzing workers), so both modes share one retry
// contract against one coordinator implementation.
func GetJSON(ctx context.Context, client *http.Client, url string, out any, budget time.Duration) error {
	return getJSON(ctx, client, url, out, budget)
}

// PostJSON is the exported form of postJSON; see GetJSON.
func PostJSON(ctx context.Context, client *http.Client, url string, body, out any, budget time.Duration) error {
	return postJSON(ctx, client, url, body, out, budget)
}

// postJSON posts body (JSON) to url and decodes the response into out, with
// the same retry contract as getJSON. HTTP 400 and 409 are retried like
// transport errors: 400 means the coordinator could not parse or verify the
// body, and 409 means it refused the identity it carried — and since an
// honest worker's suite fingerprint is verified at handshake, both can only
// mean the request was corrupted in flight; the next attempt sends a fresh
// copy. Any other non-2xx response is returned immediately, never retried.
func postJSON(ctx context.Context, client *http.Client, url string, body, out any, budget time.Duration) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return doJSON(ctx, client, http.MethodPost, url, b, out, budget)
}

func doJSON(ctx context.Context, client *http.Client, method, url string, body []byte, out any, budget time.Duration) error {
	if budget <= 0 {
		budget = DefaultDialBudget
	}
	deadline := time.Now().Add(budget)
	base := budget / 64
	if base < time.Millisecond {
		base = time.Millisecond
	}
	maxSleep := budget / 4
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			// Full jitter over an exponentially growing cap: spreads a fleet
			// of workers hammering a restarting coordinator, instead of the
			// old fixed-250ms lockstep.
			sleepCap := base << uint(min(attempt-1, 30))
			if sleepCap <= 0 || sleepCap > maxSleep {
				sleepCap = maxSleep
			}
			sleep := time.Duration(rand.Int63n(int64(sleepCap) + 1)) //nolint:gosec // jitter, not crypto
			if time.Now().Add(sleep).After(deadline) {
				return fmt.Errorf("%w after %d attempts over %v: %v", ErrCoordinatorGone, attempt, budget, lastErr)
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(sleep):
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, url, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err
			continue // transport error: coordinator restarting or gone; retry
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBody))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode == http.StatusBadRequest || resp.StatusCode == http.StatusConflict {
			// The coordinator could not parse, verify, or accept what arrived
			// — truncation or corruption on the wire. Retrying sends a fresh,
			// intact copy; the budget bounds a genuinely bad sender.
			var we wireError
			if json.Unmarshal(data, &we) == nil && we.Error != "" {
				lastErr = fmt.Errorf("coordinator rejected body (400): %s", we.Error)
			} else {
				lastErr = fmt.Errorf("coordinator rejected body: %s", resp.Status)
			}
			continue
		}
		if resp.StatusCode/100 != 2 {
			var we wireError
			if json.Unmarshal(data, &we) == nil && we.Error != "" {
				return fmt.Errorf("coordinator rejected request (%d): %s", resp.StatusCode, we.Error)
			}
			return fmt.Errorf("coordinator rejected request: %s", resp.Status)
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				lastErr = fmt.Errorf("bad coordinator response: %w", err)
				continue // response corrupted in flight: retry
			}
		}
		return nil
	}
}
