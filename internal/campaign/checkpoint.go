package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
)

// The checkpoint is an append-only JSONL file: one header line identifying
// the campaign (suite fingerprint, spec summary, shard geometry) followed
// by one line per credited shard, each carrying the full ShardPayload. The
// coordinator appends and fsyncs a line the moment a shard is credited, so
// a SIGKILLed coordinator loses at most the line it was writing — and the
// tolerant loader skips a torn tail the same way obs.ReadJournal does.
// Restarting with -resume folds the recorded shards as if their workers
// had just reported, and only the missing shards are leased out again.

// ckptLine is the on-disk record: Type discriminates the header from shard
// credits and shard quarantines so the file stays self-describing and
// future-extensible.
type ckptLine struct {
	Type string `json:"type"` // "campaign" (header), "shard", or "quarantine"
	// Header fields.
	CampaignID string `json:"campaign_id,omitempty"`
	SuiteHash  string `json:"suite_hash,omitempty"`
	FS         string `json:"fs,omitempty"`
	Suite      string `json:"suite,omitempty"`
	Workloads  int    `json:"workloads,omitempty"`
	Shards     int    `json:"shards,omitempty"`
	ShardSize  int    `json:"shard_size,omitempty"`
	// Shard credit.
	Payload *ShardPayload `json:"payload,omitempty"`
	// Shard quarantine (type "quarantine"): the ledger entry, persisted so
	// a resumed campaign carries quarantined shards forward instead of
	// silently re-running or re-crediting them.
	Quarantine *ShardQuarantine `json:"quarantine,omitempty"`
}

// Checkpoint appends credited shards to the campaign's checkpoint file.
type Checkpoint struct {
	f *os.File
}

// CheckpointState is what a resumed coordinator recovers from disk.
type CheckpointState struct {
	Header *ckptLine
	// Payloads holds the recorded shard credits in file order (duplicates
	// impossible: the coordinator credits each shard at most once before
	// appending).
	Payloads []*ShardPayload
	// Quarantined holds the recorded shard-quarantine entries in file
	// order. A shard may appear here AND in Payloads when a later
	// -retry-quarantined run credited it: the credit wins.
	Quarantined []*ShardQuarantine
	// Skipped counts corrupt or torn lines the tolerant loader dropped —
	// reported, never silent.
	Skipped int
}

// maxCkptLine bounds one checkpoint line during reads. Shard payloads
// carry full violation ledgers, so the cap is generous.
const maxCkptLine = 16 << 20

// LoadCheckpoint reads the checkpoint at path tolerantly. A missing file
// returns an empty state and no error (first run); corrupt lines —
// including the torn final line of a SIGKILLed coordinator — are skipped
// and counted.
func LoadCheckpoint(path string) (*CheckpointState, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return &CheckpointState{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	defer f.Close()
	return readCheckpoint(f)
}

func readCheckpoint(r io.Reader) (*CheckpointState, error) {
	st := &CheckpointState{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxCkptLine)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec ckptLine
		if json.Unmarshal(line, &rec) != nil {
			st.Skipped++
			continue
		}
		switch rec.Type {
		case "campaign":
			if st.Header == nil {
				rec2 := rec
				st.Header = &rec2
			}
		case "shard":
			if rec.Payload != nil {
				st.Payloads = append(st.Payloads, rec.Payload)
			} else {
				st.Skipped++
			}
		case "quarantine":
			if rec.Quarantine != nil {
				st.Quarantined = append(st.Quarantined, rec.Quarantine)
			} else {
				st.Skipped++
			}
		default:
			st.Skipped++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	return st, nil
}

// Validate checks a recovered checkpoint against the campaign about to
// resume it. A mismatched suite fingerprint or shard geometry means the
// file belongs to a different campaign — refusing is the only safe answer.
func (st *CheckpointState) Validate(info SpecInfo) error {
	if st.Header == nil {
		return nil // empty or headerless file: nothing to contradict
	}
	h := st.Header
	if h.SuiteHash != info.SuiteHash {
		return fmt.Errorf("campaign: checkpoint suite fingerprint mismatch: file has %s (fs=%s suite=%s), campaign is %s (fs=%s suite=%s) — wrong checkpoint or diverged generator",
			h.SuiteHash, h.FS, h.Suite, info.SuiteHash, info.Spec.FS, info.Spec.Suite)
	}
	if h.Shards != info.Shards || h.ShardSize != info.ShardSize {
		return fmt.Errorf("campaign: checkpoint shard geometry mismatch: file has %d shards of %d, campaign wants %d of %d — rerun with the original -shard-size",
			h.Shards, h.ShardSize, info.Shards, info.ShardSize)
	}
	return nil
}

// OpenCheckpoint opens path for appending, writing the header when the
// file is new or empty. Call after LoadCheckpoint+Validate.
func OpenCheckpoint(path string, info SpecInfo, fresh bool) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	ck := &Checkpoint{f: f}
	if fresh {
		err := ck.append(ckptLine{
			Type:       "campaign",
			CampaignID: info.CampaignID,
			SuiteHash:  info.SuiteHash,
			FS:         info.Spec.FS,
			Suite:      info.Spec.Suite,
			Workloads:  info.Workloads,
			Shards:     info.Shards,
			ShardSize:  info.ShardSize,
		})
		if err != nil {
			f.Close()
			return nil, err
		}
	}
	return ck, nil
}

// AppendShard records one credited shard durably (fsync per shard: shards
// are coarse units, and surviving a coordinator SIGKILL is the point).
func (ck *Checkpoint) AppendShard(p *ShardPayload) error {
	if ck == nil {
		return nil
	}
	return ck.append(ckptLine{Type: "shard", Payload: p})
}

// AppendQuarantine records one quarantined shard durably, with the same
// fsync contract as credits: a resumed coordinator must never silently
// re-run (or worse, re-credit) a shard the ledger already condemned.
func (ck *Checkpoint) AppendQuarantine(q ShardQuarantine) error {
	if ck == nil {
		return nil
	}
	return ck.append(ckptLine{Type: "quarantine", Quarantine: &q})
}

func (ck *Checkpoint) append(rec ckptLine) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	if _, err := ck.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	if err := ck.f.Sync(); err != nil {
		return fmt.Errorf("campaign: checkpoint: %w", err)
	}
	return nil
}

// Close closes the checkpoint file.
func (ck *Checkpoint) Close() error {
	if ck == nil {
		return nil
	}
	return ck.f.Close()
}
