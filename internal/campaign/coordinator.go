package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/workload"
)

// DefaultShardSize is how many workloads one lease covers. Coarse enough
// that per-shard HTTP and checkpoint overhead is noise, fine enough that a
// lost worker forfeits little work and stragglers rebalance.
const DefaultShardSize = 32

// DefaultLeaseTTL is how long a worker holds a shard before the
// coordinator assumes it died and re-dispatches.
const DefaultLeaseTTL = 2 * time.Minute

// CoordinatorConfig configures NewCoordinator.
type CoordinatorConfig struct {
	Spec      Spec
	ShardSize int           // 0 = DefaultShardSize
	LeaseTTL  time.Duration // 0 = DefaultLeaseTTL
	// CheckpointPath, when set, appends credited shards to this file and
	// — when the file already records shards of this same campaign —
	// resumes by skipping them ("-resume").
	CheckpointPath string
	// Progress, when set, is called after every credited shard with the
	// folded census so far (drives the -debug-addr /progress view).
	Progress func(doneWorkloads, totalWorkloads int, c harness.Census)
	// Logf, when set, receives one line per lease/credit/expiry event.
	Logf func(format string, args ...any)
}

type shardState uint8

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

type shardSlot struct {
	start, end int
	state      shardState
	worker     string
	deadline   time.Time
	payload    *ShardPayload
}

// Stats summarizes the campaign's control-plane history.
type Stats struct {
	Shards int
	Done   int
	// Resumed counts shards credited from the checkpoint at startup,
	// Redispatched lease expiries, Duplicates at-most-once discards, and
	// Rejected fingerprint-mismatch requests.
	Resumed      int
	Redispatched int
	Duplicates   int
	Rejected     int
	// PerWorker counts shards credited per worker ID (checkpoint resumes
	// appear under "checkpoint").
	PerWorker map[string]int
}

// Coordinator owns a campaign: the sharded suite, the lease state machine,
// the at-most-once credit ledger, and the checkpoint. It is an
// http.Handler serving the campaign wire protocol.
type Coordinator struct {
	info     SpecInfo
	leaseTTL time.Duration
	progress func(done, total int, c harness.Census)
	logf     func(format string, args ...any)
	mux      *http.ServeMux

	mu           sync.Mutex
	shards       []shardSlot
	remaining    int
	draining     bool
	failed       error
	ckpt         *Checkpoint
	resumed      int
	redispatched int
	duplicates   int
	rejected     int
	perWorker    map[string]int

	doneOnce sync.Once
	doneCh   chan struct{}
}

// NewCoordinator builds the campaign: generates the suite, fingerprints
// it, shards it, and — when CheckpointPath names a file recording this
// same campaign — folds the already-completed shards back in so only the
// rest are leased out.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	suite, err := cfg.Spec.BuildSuite()
	if err != nil {
		return nil, err
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("campaign: empty suite %q", cfg.Spec.Suite)
	}
	shardSize := cfg.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	hash := workload.FormatSuiteHash(workload.SuiteHash(suite))
	n := numShards(len(suite), shardSize)
	info := SpecInfo{
		CampaignID: campaignID(cfg.Spec, hash),
		Spec:       cfg.Spec,
		SuiteHash:  hash,
		Shards:     n,
		ShardSize:  shardSize,
		Workloads:  len(suite),
	}
	c := &Coordinator{
		info:      info,
		leaseTTL:  ttl,
		progress:  cfg.Progress,
		logf:      cfg.Logf,
		shards:    make([]shardSlot, n),
		remaining: n,
		perWorker: map[string]int{},
		doneCh:    make(chan struct{}),
	}
	for i := range c.shards {
		c.shards[i].start, c.shards[i].end = shardRange(i, shardSize, len(suite))
	}
	mux := http.NewServeMux()
	mux.HandleFunc(PathSpec, c.handleSpec)
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathResult, c.handleResult)
	c.mux = mux

	if cfg.CheckpointPath != "" {
		if err := c.attachCheckpoint(cfg.CheckpointPath); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func campaignID(spec Spec, suiteHash string) string {
	h := fnv.New64a()
	b, _ := json.Marshal(spec)
	h.Write(b)
	h.Write([]byte(suiteHash))
	return fmt.Sprintf("c%016x", h.Sum64())
}

func (c *Coordinator) attachCheckpoint(path string) error {
	st, err := LoadCheckpoint(path)
	if err != nil {
		return err
	}
	if err := st.Validate(c.info); err != nil {
		return err
	}
	if st.Skipped > 0 {
		c.log("checkpoint: skipped %d corrupt/torn lines in %s", st.Skipped, path)
	}
	for _, p := range st.Payloads {
		if p.SuiteHash != c.info.SuiteHash || p.Shard < 0 || p.Shard >= len(c.shards) {
			c.log("checkpoint: ignoring foreign shard record (shard %d, hash %s)", p.Shard, p.SuiteHash)
			continue
		}
		slot := &c.shards[p.Shard]
		if slot.state == shardDone {
			continue
		}
		slot.state = shardDone
		slot.payload = p
		c.remaining--
		c.resumed++
		c.perWorker["checkpoint"]++
	}
	fresh := st.Header == nil
	ck, err := OpenCheckpoint(path, c.info, fresh)
	if err != nil {
		return err
	}
	c.ckpt = ck
	if c.resumed > 0 {
		c.log("checkpoint: resumed %d/%d shards from %s", c.resumed, len(c.shards), path)
	}
	if c.remaining == 0 {
		c.complete()
	}
	return nil
}

// Info returns the campaign identity served on handshake.
func (c *Coordinator) Info() SpecInfo { return c.info }

func (c *Coordinator) log(format string, args ...any) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}

func (c *Coordinator) complete() {
	c.doneOnce.Do(func() { close(c.doneCh) })
}

// reclaimLocked reverts expired leases to pending so the next lease
// request re-dispatches them. Caller holds c.mu.
func (c *Coordinator) reclaimLocked(now time.Time) {
	for i := range c.shards {
		s := &c.shards[i]
		if s.state == shardLeased && now.After(s.deadline) {
			c.log("lease expired: shard %d (worker %s) re-dispatching", i, s.worker)
			s.state = shardPending
			s.worker = ""
			c.redispatched++
		}
	}
}

func (c *Coordinator) leasedLocked() int {
	n := 0
	for i := range c.shards {
		if c.shards[i].state == shardLeased {
			n++
		}
	}
	return n
}

// Lease hands the lowest-numbered pending shard to a worker, or tells it
// to wait (everything in flight) or exit (done, draining, or failed).
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.SuiteHash != c.info.SuiteHash {
		c.rejected++
		return LeaseResponse{}, fmt.Errorf(
			"suite fingerprint mismatch: coordinator has %s, worker %q sent %s — generators differ, refusing to merge incomparable results",
			c.info.SuiteHash, req.Worker, req.SuiteHash)
	}
	if c.draining || c.failed != nil || c.remaining == 0 {
		return LeaseResponse{Status: LeaseDone}, nil
	}
	c.reclaimLocked(time.Now())
	for i := range c.shards {
		s := &c.shards[i]
		if s.state != shardPending {
			continue
		}
		s.state = shardLeased
		s.worker = req.Worker
		s.deadline = time.Now().Add(c.leaseTTL)
		c.log("lease: shard %d [%d,%d) -> %s (ttl %v)", i, s.start, s.end, req.Worker, c.leaseTTL)
		return LeaseResponse{
			Status: LeaseGranted, Shard: i, Start: s.start, End: s.end,
			TTLNanos: int64(c.leaseTTL),
		}, nil
	}
	return LeaseResponse{Status: LeaseWait}, nil
}

// Credit records one shard result, at most once per (shard id, suite
// fingerprint): a resurrected slow worker whose lease expired and whose
// shard was re-run elsewhere gets Duplicate, and its payload is discarded
// — the two payloads are byte-identical by the determinism contract, but
// counting both would double-credit the shard.
func (c *Coordinator) Credit(p *ShardPayload) (CreditResponse, error) {
	c.mu.Lock()
	if p.SuiteHash != c.info.SuiteHash {
		c.rejected++
		c.mu.Unlock()
		return CreditResponse{}, fmt.Errorf(
			"suite fingerprint mismatch: coordinator has %s, worker %q sent %s — discarding result",
			c.info.SuiteHash, p.Worker, p.SuiteHash)
	}
	if p.Shard < 0 || p.Shard >= len(c.shards) {
		c.rejected++
		c.mu.Unlock()
		return CreditResponse{}, fmt.Errorf("shard %d out of range [0,%d)", p.Shard, len(c.shards))
	}
	if p.Err != "" {
		// Engine errors are deterministic (same binary, same suite):
		// re-dispatching would loop forever, so the campaign fails fast,
		// mirroring harness.Run.
		if c.failed == nil {
			c.failed = fmt.Errorf("shard %d (worker %s): %s", p.Shard, p.Worker, p.Err)
		}
		c.mu.Unlock()
		c.complete()
		return CreditResponse{Accepted: false, Done: true}, nil
	}
	slot := &c.shards[p.Shard]
	if slot.state == shardDone {
		c.duplicates++
		c.mu.Unlock()
		c.log("duplicate result for shard %d from %s: discarded", p.Shard, p.Worker)
		return CreditResponse{Accepted: false, Duplicate: true}, nil
	}
	if slot.payload != nil {
		// Unreachable (payload is only set with state=done), but never
		// let an invariant break double-count silently.
		c.mu.Unlock()
		return CreditResponse{}, fmt.Errorf("shard %d: payload already recorded", p.Shard)
	}
	slot.state = shardDone
	slot.worker = p.Worker
	slot.payload = p
	c.remaining--
	c.perWorker[p.Worker]++
	done := c.remaining == 0
	doneCount := len(c.shards) - c.remaining
	if err := c.ckpt.AppendShard(p); err != nil {
		// A checkpoint that silently stops recording is worse than a
		// failed campaign: resume would rerun shards it believes missing.
		if c.failed == nil {
			c.failed = err
		}
		c.mu.Unlock()
		c.complete()
		return CreditResponse{Accepted: false, Done: true}, nil
	}
	c.mu.Unlock()
	c.log("credit: shard %d from %s (%d/%d done)", p.Shard, p.Worker, doneCount, len(c.shards))

	if c.progress != nil {
		cen, _ := c.Merged()
		c.progress(cen.Workloads, c.info.Workloads, *cen)
	}
	if done {
		c.complete()
	}
	return CreditResponse{Accepted: true, Done: done}, nil
}

// Merged folds the credited shards, in shard order, into the campaign
// census so far.
func (c *Coordinator) Merged() (*harness.Census, []core.Violation) {
	c.mu.Lock()
	payloads := make([]*ShardPayload, 0, len(c.shards))
	for i := range c.shards {
		if c.shards[i].state == shardDone {
			payloads = append(payloads, c.shards[i].payload)
		}
	}
	c.mu.Unlock()
	return Fold(payloads)
}

// Stats snapshots the control-plane counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	per := make(map[string]int, len(c.perWorker))
	for k, v := range c.perWorker {
		per[k] = v
	}
	return Stats{
		Shards:       len(c.shards),
		Done:         len(c.shards) - c.remaining,
		Resumed:      c.resumed,
		Redispatched: c.redispatched,
		Duplicates:   c.duplicates,
		Rejected:     c.rejected,
		PerWorker:    per,
	}
}

// Drain stops issuing new leases; in-flight shards may still report and
// be credited (and checkpointed) until their deadlines expire.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

// Wait blocks until the campaign completes, fails, or ctx is cancelled.
// Cancellation is the graceful path (first SIGINT): the coordinator stops
// issuing leases, keeps crediting in-flight shards to the checkpoint until
// they report or their leases expire, and returns the partial census with
// ctx's error.
func (c *Coordinator) Wait(ctx context.Context) (*harness.Census, []core.Violation, error) {
	select {
	case <-c.doneCh:
		return c.finish(nil)
	case <-ctx.Done():
	}
	c.Drain()
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-c.doneCh:
			return c.finish(nil)
		case <-tick.C:
			c.mu.Lock()
			c.reclaimLocked(time.Now())
			leased := c.leasedLocked()
			c.mu.Unlock()
			if leased == 0 {
				return c.finish(ctx.Err())
			}
		}
	}
}

func (c *Coordinator) finish(err error) (*harness.Census, []core.Violation, error) {
	c.mu.Lock()
	failed := c.failed
	c.mu.Unlock()
	if failed != nil {
		return nil, nil, failed
	}
	cen, viol := c.Merged()
	return cen, viol, err
}

// Close releases the checkpoint file handle.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	ck := c.ckpt
	c.ckpt = nil
	c.mu.Unlock()
	return ck.Close()
}

// --- HTTP surface -------------------------------------------------------

// Wire paths. Workers GET the spec once (handshake), then loop
// POST lease -> run shard -> POST result.
const (
	PathSpec   = "/campaign/spec"
	PathLease  = "/campaign/lease"
	PathResult = "/campaign/result"
)

// maxResultBody bounds one shard-result POST; aligned with maxCkptLine
// (the payload is what gets checkpointed).
const maxResultBody = maxCkptLine

// ServeHTTP serves the campaign protocol.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.info)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad lease request: %v", err))
		return
	}
	resp, err := c.Lease(req)
	if err != nil {
		writeJSONError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var p ShardPayload
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxResultBody)).Decode(&p); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad result payload: %v", err))
		return
	}
	resp, err := c.Credit(&p)
	if err != nil {
		writeJSONError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type wireError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone = client's problem
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, wireError{Error: msg})
}

// Server binds a Coordinator to a TCP listener (-serve ADDR).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe starts serving the campaign protocol on addr (host:port;
// port 0 picks a free one, see Addr).
func ListenAndServe(addr string, c *Coordinator) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("campaign: listen: %w", err)
	}
	srv := &http.Server{Handler: c, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }

// String formats the control-plane summary the -serve frontend prints:
// shard accounting first, then per-worker credit counts sorted by worker
// name (deterministic output for logs and tests).
func (st Stats) String() string {
	lines := []string{fmt.Sprintf(
		"campaign: %d/%d shards done (%d resumed from checkpoint, %d re-dispatched, %d duplicates discarded, %d rejected)",
		st.Done, st.Shards, st.Resumed, st.Redispatched, st.Duplicates, st.Rejected)}
	workers := make([]string, 0, len(st.PerWorker))
	for wkr := range st.PerWorker {
		workers = append(workers, wkr)
	}
	sort.Strings(workers)
	for _, wkr := range workers {
		lines = append(lines, fmt.Sprintf("  %s: %d shards", wkr, st.PerWorker[wkr]))
	}
	return strings.Join(lines, "\n")
}
