package campaign

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"chipmunk/internal/core"
	"chipmunk/internal/harness"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// DefaultShardSize is how many workloads one lease covers. Coarse enough
// that per-shard HTTP and checkpoint overhead is noise, fine enough that a
// lost worker forfeits little work and stragglers rebalance.
const DefaultShardSize = 32

// DefaultLeaseTTL is how long a worker holds a shard before the
// coordinator assumes it died and re-dispatches. With heartbeats extending
// live leases, an expiry means the worker is actually gone, so the TTL can
// stay conservative without losing long shards.
const DefaultLeaseTTL = 2 * time.Minute

// DefaultShardRetries is how many failed dispatch attempts (lease expiry,
// structured error payload, rejected result) a shard gets before it is
// quarantined instead of re-dispatched (-shard-retries).
const DefaultShardRetries = 3

// CoordinatorConfig configures NewCoordinator.
type CoordinatorConfig struct {
	Spec      Spec
	ShardSize int           // 0 = DefaultShardSize
	LeaseTTL  time.Duration // 0 = DefaultLeaseTTL
	// ShardRetries bounds failed dispatch attempts per shard before it is
	// quarantined (0 = DefaultShardRetries). A shard that crash-loops its
	// worker — OOM, SIGKILL, an engine panic that escapes the check sandbox
	// — degrades the campaign instead of stalling or failing it.
	ShardRetries int
	// CheckpointPath, when set, appends credited shards to this file and
	// — when the file already records shards of this same campaign —
	// resumes by skipping them ("-resume").
	CheckpointPath string
	// RetryQuarantined re-runs the shards the checkpoint records as
	// quarantined instead of carrying them forward ("-retry-quarantined"):
	// their attempt budgets reset and they are leased out again.
	RetryQuarantined bool
	// Progress, when set, is called after every credited shard with the
	// folded census so far (drives the -debug-addr /progress view).
	Progress func(doneWorkloads, totalWorkloads int, c harness.Census)
	// Journal, when non-nil, receives one "shard-quarantine" event per
	// quarantined shard — the campaign-layer mirror of the per-check
	// quarantine events the engine emits.
	Journal *obs.Journal
	// Logf, when set, receives one line per lease/credit/expiry event.
	Logf func(format string, args ...any)
}

type shardState uint8

const (
	shardPending shardState = iota
	shardLeased
	shardDone
	shardQuarantined
)

type shardSlot struct {
	start, end int
	state      shardState
	worker     string
	deadline   time.Time
	payload    *ShardPayload
	// attempts counts failed dispatch attempts; lastErr describes the most
	// recent one (expiry, error payload, rejected result).
	attempts int
	lastErr  string
	// leasedAt stamps the current lease grant (feeds the shard-lease span
	// and the dashboard's in-flight age); lastBeat is the most recent
	// heartbeat for this lease, and progress the states-checked count it
	// piggybacked (live only while leased — reset on each grant).
	leasedAt time.Time
	lastBeat time.Time
	progress int
}

// Stats summarizes the campaign's control-plane history.
type Stats struct {
	Shards int
	Done   int
	// Resumed counts shards credited from the checkpoint at startup,
	// Redispatched lease expiries, Duplicates at-most-once discards, and
	// Rejected fingerprint-mismatch requests.
	Resumed      int
	Redispatched int
	Duplicates   int
	Rejected     int
	// ShardsQuarantined counts shards in the shard-quarantine ledger
	// (including ones carried forward from the checkpoint); a nonzero value
	// means the campaign completed degraded. BadPayloads counts result
	// bodies rejected at the wire (truncated, corrupt, checksum mismatch);
	// Heartbeats counts granted lease extensions.
	ShardsQuarantined int
	BadPayloads       int
	Heartbeats        int
	// PerWorker counts shards credited per worker ID (checkpoint resumes
	// appear under "checkpoint").
	PerWorker map[string]int
}

// Coordinator owns a campaign: the sharded suite, the lease state machine,
// the at-most-once credit ledger, and the checkpoint. It is an
// http.Handler serving the campaign wire protocol.
type Coordinator struct {
	info         SpecInfo
	leaseTTL     time.Duration
	shardRetries int
	progress     func(done, total int, c harness.Census)
	journal      *obs.Journal
	// tracer emits "shard-lease" spans (one per credited shard, spanning
	// lease grant to credit) under the campaign's coordinates: seed = suite
	// hash, shard index -1. Nil when no journal is attached.
	tracer  *obs.Tracer
	started time.Time
	logf    func(format string, args ...any)
	mux     *http.ServeMux

	mu           sync.Mutex
	shards       []shardSlot
	remaining    int
	draining     bool
	failed       error
	ckpt         *Checkpoint
	resumed      int
	redispatched int
	duplicates   int
	rejected     int
	badPayloads  int
	heartbeats   int
	perWorker    map[string]int
	// workers maps worker ID to the last moment it was heard from (lease,
	// heartbeat, or result) — the dashboard's liveness column.
	workers map[string]time.Time

	doneOnce sync.Once
	doneCh   chan struct{}
}

// NewCoordinator builds the campaign: generates the suite, fingerprints
// it, shards it, and — when CheckpointPath names a file recording this
// same campaign — folds the already-completed shards back in so only the
// rest are leased out.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	suite, err := cfg.Spec.BuildSuite()
	if err != nil {
		return nil, err
	}
	if len(suite) == 0 {
		return nil, fmt.Errorf("campaign: empty suite %q", cfg.Spec.Suite)
	}
	shardSize := cfg.ShardSize
	if shardSize <= 0 {
		shardSize = DefaultShardSize
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	retries := cfg.ShardRetries
	if retries <= 0 {
		retries = DefaultShardRetries
	}
	hash := workload.FormatSuiteHash(workload.SuiteHash(suite))
	n := numShards(len(suite), shardSize)
	info := SpecInfo{
		CampaignID: campaignID(cfg.Spec, hash),
		Spec:       cfg.Spec,
		SuiteHash:  hash,
		Shards:     n,
		ShardSize:  shardSize,
		Workloads:  len(suite),
	}
	c := &Coordinator{
		info:         info,
		leaseTTL:     ttl,
		shardRetries: retries,
		progress:     cfg.Progress,
		journal:      cfg.Journal,
		started:      time.Now(),
		logf:         cfg.Logf,
		shards:       make([]shardSlot, n),
		remaining:    n,
		perWorker:    map[string]int{},
		workers:      map[string]time.Time{},
		doneCh:       make(chan struct{}),
	}
	if cfg.Journal != nil {
		// The campaign traces under (suite hash, shard -1): deterministic for
		// a given campaign, distinct from every worker's per-shard traces.
		seed, _ := strconv.ParseUint(hash, 16, 64)
		c.tracer = obs.NewTracer(cfg.Journal, seed, -1)
	}
	for i := range c.shards {
		c.shards[i].start, c.shards[i].end = shardRange(i, shardSize, len(suite))
	}
	mux := http.NewServeMux()
	mux.HandleFunc(PathSpec, c.handleSpec)
	mux.HandleFunc(PathLease, c.handleLease)
	mux.HandleFunc(PathResult, c.handleResult)
	mux.HandleFunc(PathHeartbeat, c.handleHeartbeat)
	mux.HandleFunc(PathStatus, c.handleStatus)
	mux.HandleFunc(PathDash, c.handleDash)
	mux.HandleFunc("/debug/metrics", c.handleMetrics)
	c.mux = mux

	if cfg.CheckpointPath != "" {
		if err := c.attachCheckpoint(cfg.CheckpointPath, cfg.RetryQuarantined); err != nil {
			return nil, err
		}
	}
	return c, nil
}

func campaignID(spec Spec, suiteHash string) string {
	h := fnv.New64a()
	b, _ := json.Marshal(spec)
	h.Write(b)
	h.Write([]byte(suiteHash))
	return fmt.Sprintf("c%016x", h.Sum64())
}

func (c *Coordinator) attachCheckpoint(path string, retryQuarantined bool) error {
	st, err := LoadCheckpoint(path)
	if err != nil {
		return err
	}
	if err := st.Validate(c.info); err != nil {
		return err
	}
	if st.Skipped > 0 {
		c.log("checkpoint: skipped %d corrupt/torn lines in %s", st.Skipped, path)
	}
	for _, p := range st.Payloads {
		if p.SuiteHash != c.info.SuiteHash || p.Shard < 0 || p.Shard >= len(c.shards) {
			c.log("checkpoint: ignoring foreign shard record (shard %d, hash %s)", p.Shard, p.SuiteHash)
			continue
		}
		slot := &c.shards[p.Shard]
		if slot.state == shardDone {
			continue
		}
		slot.state = shardDone
		slot.payload = p
		c.remaining--
		c.resumed++
		c.perWorker["checkpoint"]++
	}
	// Quarantine records: a credit anywhere in the file wins (the shard was
	// eventually checked, e.g. by a prior -retry-quarantined run); otherwise
	// the shard carries its quarantine forward — never re-credited, never
	// silently re-run — unless this run asks to retry it.
	requeued := 0
	for _, q := range st.Quarantined {
		if q.SuiteHash != "" && q.SuiteHash != c.info.SuiteHash {
			c.log("checkpoint: ignoring foreign quarantine record (shard %d, hash %s)", q.Shard, q.SuiteHash)
			continue
		}
		if q.Shard < 0 || q.Shard >= len(c.shards) {
			c.log("checkpoint: ignoring out-of-range quarantine record (shard %d)", q.Shard)
			continue
		}
		slot := &c.shards[q.Shard]
		if slot.state == shardDone {
			continue // later credited: done wins
		}
		if retryQuarantined {
			if slot.state == shardQuarantined {
				slot.state = shardPending
				c.remaining++
			}
			slot.attempts, slot.lastErr, slot.worker = 0, "", ""
			requeued++
			continue
		}
		if slot.state != shardQuarantined {
			c.remaining--
		}
		slot.state = shardQuarantined
		slot.worker = q.Worker
		slot.attempts = q.Attempts
		slot.lastErr = q.Err
	}
	fresh := st.Header == nil
	ck, err := OpenCheckpoint(path, c.info, fresh)
	if err != nil {
		return err
	}
	c.ckpt = ck
	if c.resumed > 0 {
		c.log("checkpoint: resumed %d/%d shards from %s", c.resumed, len(c.shards), path)
	}
	if n := c.quarantinedLocked(); n > 0 {
		c.log("checkpoint: carrying %d quarantined shards forward (re-run them with -retry-quarantined)", n)
	}
	if requeued > 0 {
		c.log("checkpoint: re-queued %d quarantined shards for retry", requeued)
	}
	if c.remaining == 0 {
		c.complete()
	}
	return nil
}

// quarantinedLocked counts quarantined shards. Caller holds c.mu (or owns
// the coordinator exclusively, as during construction).
func (c *Coordinator) quarantinedLocked() int {
	n := 0
	for i := range c.shards {
		if c.shards[i].state == shardQuarantined {
			n++
		}
	}
	return n
}

// Info returns the campaign identity served on handshake.
func (c *Coordinator) Info() SpecInfo { return c.info }

func (c *Coordinator) log(format string, args ...any) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}

func (c *Coordinator) complete() {
	c.doneOnce.Do(func() { close(c.doneCh) })
}

// reclaimLocked reverts expired leases to pending so the next lease
// request re-dispatches them. Each expiry is a failed dispatch attempt:
// with heartbeats extending live leases, expiry means the worker is gone,
// and a shard whose attempts are spent is quarantined. Caller holds c.mu.
func (c *Coordinator) reclaimLocked(now time.Time) {
	for i := range c.shards {
		s := &c.shards[i]
		if s.state == shardLeased && now.After(s.deadline) {
			c.failAttemptLocked(i, s.worker, "lease expired (worker gone or stalled)")
		}
	}
}

// failAttemptLocked records one failed dispatch attempt for a leased shard
// — lease expiry, structured error payload, or rejected result — and either
// reverts it to pending for re-dispatch or, once the attempt budget is
// spent, quarantines it. Caller holds c.mu.
func (c *Coordinator) failAttemptLocked(i int, worker, cause string) {
	s := &c.shards[i]
	s.attempts++
	s.lastErr = cause
	s.worker = worker
	if s.attempts >= c.shardRetries {
		c.quarantineLocked(i)
		return
	}
	c.log("shard %d attempt %d/%d failed (worker %s): %s — re-dispatching",
		i, s.attempts, c.shardRetries, worker, cause)
	s.state = shardPending
	c.redispatched++
}

// quarantineLocked moves a shard to the quarantine ledger: removed from the
// campaign (never re-credited), persisted in the checkpoint, journaled, and
// reported — never silent, never fatal. Caller holds c.mu.
func (c *Coordinator) quarantineLocked(i int) {
	s := &c.shards[i]
	s.state = shardQuarantined
	c.remaining--
	q := c.quarantineEntryLocked(i)
	c.log("shard QUARANTINED: %s", q)
	c.journal.Emit(obs.Event{
		Type: "shard-quarantine", FS: c.info.Spec.FS, Workload: c.info.Spec.Suite,
		Sys: -1, Rank: i, States: s.end - s.start, Detail: q.String(),
	})
	if err := c.ckpt.AppendQuarantine(q); err != nil {
		// Same contract as shard credits: a checkpoint that silently stops
		// recording is worse than a failed campaign — resume would re-run
		// shards it believes missing.
		if c.failed == nil {
			c.failed = err
		}
	}
	if c.remaining == 0 || c.failed != nil {
		// complete only closes a channel (sync.Once); safe under c.mu.
		c.complete()
	}
}

// quarantineEntryLocked renders shard i's ledger entry. Caller holds c.mu.
func (c *Coordinator) quarantineEntryLocked(i int) ShardQuarantine {
	s := &c.shards[i]
	return ShardQuarantine{
		Shard: i, Start: s.start, End: s.end, SuiteHash: c.info.SuiteHash,
		Worker: s.worker, Err: s.lastErr, Attempts: s.attempts,
	}
}

// Quarantined returns the shard-quarantine ledger in shard order.
func (c *Coordinator) Quarantined() []ShardQuarantine {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []ShardQuarantine
	for i := range c.shards {
		if c.shards[i].state == shardQuarantined {
			out = append(out, c.quarantineEntryLocked(i))
		}
	}
	return out
}

// Degraded reports whether the campaign carries quarantined shards: its
// census is partial (the quarantined slices went unchecked) and the CLI
// exits with the distinct degraded code so CI can tell "degraded" from
// "failed".
func (c *Coordinator) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantinedLocked() > 0
}

func (c *Coordinator) leasedLocked() int {
	n := 0
	for i := range c.shards {
		if c.shards[i].state == shardLeased {
			n++
		}
	}
	return n
}

// Lease hands the lowest-numbered pending shard to a worker, or tells it
// to wait (everything in flight) or exit (done, draining, or failed).
func (c *Coordinator) Lease(req LeaseRequest) (LeaseResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.SuiteHash != c.info.SuiteHash {
		c.rejected++
		return LeaseResponse{}, fmt.Errorf(
			"suite fingerprint mismatch: coordinator has %s, worker %q sent %s — generators differ, refusing to merge incomparable results",
			c.info.SuiteHash, req.Worker, req.SuiteHash)
	}
	if c.draining || c.failed != nil || c.remaining == 0 {
		return LeaseResponse{Status: LeaseDone}, nil
	}
	c.reclaimLocked(time.Now())
	c.workers[req.Worker] = time.Now()
	for i := range c.shards {
		s := &c.shards[i]
		if s.state != shardPending {
			continue
		}
		now := time.Now()
		s.state = shardLeased
		s.worker = req.Worker
		s.deadline = now.Add(c.leaseTTL)
		s.leasedAt = now
		s.lastBeat = now
		s.progress = 0
		c.log("lease: shard %d [%d,%d) -> %s (ttl %v)", i, s.start, s.end, req.Worker, c.leaseTTL)
		return LeaseResponse{
			Status: LeaseGranted, Shard: i, Start: s.start, End: s.end,
			TTLNanos: int64(c.leaseTTL),
		}, nil
	}
	return LeaseResponse{Status: LeaseWait}, nil
}

// Credit records one shard result, at most once per (shard id, suite
// fingerprint): a resurrected slow worker whose lease expired and whose
// shard was re-run elsewhere gets Duplicate, and its payload is discarded
// — the two payloads are byte-identical by the determinism contract, but
// counting both would double-credit the shard.
func (c *Coordinator) Credit(p *ShardPayload) (CreditResponse, error) {
	c.mu.Lock()
	if p.SuiteHash != c.info.SuiteHash {
		c.rejected++
		c.mu.Unlock()
		return CreditResponse{}, fmt.Errorf(
			"suite fingerprint mismatch: coordinator has %s, worker %q sent %s — discarding result",
			c.info.SuiteHash, p.Worker, p.SuiteHash)
	}
	if p.Shard < 0 || p.Shard >= len(c.shards) {
		c.rejected++
		c.mu.Unlock()
		return CreditResponse{}, fmt.Errorf("shard %d out of range [0,%d)", p.Shard, len(c.shards))
	}
	slot := &c.shards[p.Shard]
	if p.Err != "" {
		// A structured error payload — engine error, contained worker panic,
		// tripped shard watchdog — is one failed dispatch attempt. The shard
		// is re-dispatched until its attempt budget is spent, then
		// quarantined; the campaign never fails or loops on one bad shard.
		if slot.state != shardLeased || slot.worker != p.Worker {
			// Stale: the lease already expired (that attempt was counted at
			// reclaim) or the shard moved on. Discard.
			c.mu.Unlock()
			c.log("stale error payload for shard %d from %s: discarded", p.Shard, p.Worker)
			return CreditResponse{Accepted: false, Duplicate: true}, nil
		}
		c.failAttemptLocked(p.Shard, p.Worker, p.Err)
		quarantined := slot.state == shardQuarantined
		done := c.remaining == 0
		c.mu.Unlock()
		return CreditResponse{Accepted: false, Quarantined: quarantined, Done: done}, nil
	}
	if slot.state == shardQuarantined {
		// Never credit a quarantined shard: the ledger says its slice went
		// unchecked, and a shard must never be both credited and
		// quarantined. (A healthy late result can land here when earlier
		// attempts spent the budget; re-run it with -retry-quarantined.)
		c.duplicates++
		c.mu.Unlock()
		c.log("result for quarantined shard %d from %s: discarded", p.Shard, p.Worker)
		return CreditResponse{Accepted: false, Duplicate: true, Quarantined: true}, nil
	}
	if slot.state == shardDone {
		c.duplicates++
		c.mu.Unlock()
		c.log("duplicate result for shard %d from %s: discarded", p.Shard, p.Worker)
		return CreditResponse{Accepted: false, Duplicate: true}, nil
	}
	if slot.payload != nil {
		// Unreachable (payload is only set with state=done), but never
		// let an invariant break double-count silently.
		c.mu.Unlock()
		return CreditResponse{}, fmt.Errorf("shard %d: payload already recorded", p.Shard)
	}
	slot.state = shardDone
	slot.worker = p.Worker
	slot.payload = p
	c.remaining--
	c.perWorker[p.Worker]++
	c.workers[p.Worker] = time.Now()
	// One measurement span per credited shard, spanning lease grant to
	// credit: the campaign-side view of shard latency (includes wire and
	// queueing time the worker's own "shard" span cannot see).
	c.tracer.Span("shard-lease", slot.leasedAt, "", obs.Event{
		FS: c.info.Spec.FS, Workload: c.info.Spec.Suite, Worker: p.Worker,
		Sys: -1, Rank: p.Shard, States: p.StatesChecked,
	})
	done := c.remaining == 0
	doneCount := len(c.shards) - c.remaining
	if err := c.ckpt.AppendShard(p); err != nil {
		// A checkpoint that silently stops recording is worse than a
		// failed campaign: resume would rerun shards it believes missing.
		if c.failed == nil {
			c.failed = err
		}
		c.mu.Unlock()
		c.complete()
		return CreditResponse{Accepted: false, Done: true}, nil
	}
	c.mu.Unlock()
	c.log("credit: shard %d from %s (%d/%d done)", p.Shard, p.Worker, doneCount, len(c.shards))

	if c.progress != nil {
		cen, _ := c.Merged()
		c.progress(cen.Workloads, c.info.Workloads, *cen)
	}
	if done {
		c.complete()
	}
	return CreditResponse{Accepted: true, Done: done}, nil
}

// Merged folds the credited shards, in shard order, into the campaign
// census so far. Quarantined shards contribute nothing (their slices went
// unchecked); their count lands in the census obs snapshot under the
// measurement-class "shards-quarantined" counter, which Fingerprint
// excludes — the census over the healthy shards stays byte-identical to a
// serial run over the same slices.
func (c *Coordinator) Merged() (*harness.Census, []core.Violation) {
	c.mu.Lock()
	payloads := make([]*ShardPayload, 0, len(c.shards))
	for i := range c.shards {
		if c.shards[i].state == shardDone {
			payloads = append(payloads, c.shards[i].payload)
		}
	}
	quarantined := c.quarantinedLocked()
	c.mu.Unlock()
	cen, viol := Fold(payloads)
	if quarantined > 0 {
		if cen.Obs == nil {
			cen.Obs = &obs.Snapshot{}
		}
		if cen.Obs.Counters == nil {
			cen.Obs.Counters = make(map[string]int64, 1)
		}
		cen.Obs.Counters[obs.CtrShardsQuarantined.String()] = int64(quarantined)
	}
	return cen, viol
}

// Heartbeat extends a live lease (POST /campaign/heartbeat). Extension is
// granted only when the shard is still leased to the requesting worker;
// otherwise the worker learns it lost the lease and should abandon the
// shard.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.SuiteHash != c.info.SuiteHash {
		c.rejected++
		return HeartbeatResponse{}, fmt.Errorf(
			"suite fingerprint mismatch: coordinator has %s, worker %q sent %s — refusing heartbeat",
			c.info.SuiteHash, req.Worker, req.SuiteHash)
	}
	if req.Shard < 0 || req.Shard >= len(c.shards) {
		return HeartbeatResponse{}, fmt.Errorf("shard %d out of range [0,%d)", req.Shard, len(c.shards))
	}
	c.workers[req.Worker] = time.Now()
	s := &c.shards[req.Shard]
	if s.state != shardLeased || s.worker != req.Worker || time.Now().After(s.deadline) {
		return HeartbeatResponse{Extended: false}, nil
	}
	now := time.Now()
	s.deadline = now.Add(c.leaseTTL)
	s.lastBeat = now
	if req.StatesChecked > s.progress {
		s.progress = req.StatesChecked
	}
	c.heartbeats++
	return HeartbeatResponse{Extended: true, TTLNanos: int64(c.leaseTTL)}, nil
}

// RejectResult records a result payload rejected at the wire (truncated
// body, corrupt JSON, checksum mismatch) as a failed dispatch attempt when
// the claimed (shard, worker) identity matches a live lease — the shard is
// re-dispatched promptly instead of waiting out the lease. When the
// identity itself is implausible (corrupted, foreign, or stale) only the
// bad-payload counter moves; lease expiry covers the shard.
func (c *Coordinator) RejectResult(shard int, worker, cause string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.badPayloads++
	if shard < 0 || shard >= len(c.shards) {
		return
	}
	s := &c.shards[shard]
	if s.state != shardLeased || s.worker != worker {
		return
	}
	c.failAttemptLocked(shard, worker, cause)
}

// Stats snapshots the control-plane counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	per := make(map[string]int, len(c.perWorker))
	for k, v := range c.perWorker {
		per[k] = v
	}
	done := 0
	for i := range c.shards {
		if c.shards[i].state == shardDone {
			done++
		}
	}
	return Stats{
		Shards:            len(c.shards),
		Done:              done,
		Resumed:           c.resumed,
		Redispatched:      c.redispatched,
		Duplicates:        c.duplicates,
		Rejected:          c.rejected,
		ShardsQuarantined: c.quarantinedLocked(),
		BadPayloads:       c.badPayloads,
		Heartbeats:        c.heartbeats,
		PerWorker:         per,
	}
}

// Drain stops issuing new leases; in-flight shards may still report and
// be credited (and checkpointed) until their deadlines expire.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
}

// Wait blocks until the campaign completes, fails, or ctx is cancelled.
// Cancellation is the graceful path (first SIGINT): the coordinator stops
// issuing leases, keeps crediting in-flight shards to the checkpoint until
// they report or their leases expire, and returns the partial census with
// ctx's error.
func (c *Coordinator) Wait(ctx context.Context) (*harness.Census, []core.Violation, error) {
	select {
	case <-c.doneCh:
		return c.finish(nil)
	case <-ctx.Done():
	}
	c.Drain()
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-c.doneCh:
			return c.finish(nil)
		case <-tick.C:
			c.mu.Lock()
			c.reclaimLocked(time.Now())
			leased := c.leasedLocked()
			c.mu.Unlock()
			if leased == 0 {
				return c.finish(ctx.Err())
			}
		}
	}
}

func (c *Coordinator) finish(err error) (*harness.Census, []core.Violation, error) {
	c.mu.Lock()
	failed := c.failed
	c.mu.Unlock()
	if failed != nil {
		return nil, nil, failed
	}
	cen, viol := c.Merged()
	return cen, viol, err
}

// Close releases the checkpoint file handle.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	ck := c.ckpt
	c.ckpt = nil
	c.mu.Unlock()
	return ck.Close()
}

// --- HTTP surface -------------------------------------------------------

// Wire paths. Workers GET the spec once (handshake), then loop
// POST lease -> run shard (heartbeating) -> POST result.
const (
	PathSpec      = "/campaign/spec"
	PathLease     = "/campaign/lease"
	PathResult    = "/campaign/result"
	PathHeartbeat = "/campaign/heartbeat"
	// PathStatus and PathDash are the read-only observability surface:
	// PathStatus serves the live JSON shard map (dashboards, scripts, the CI
	// smoke), PathDash a stdlib-only auto-refreshing HTML view of the same
	// snapshot. Neither mutates campaign state.
	PathStatus = "/campaign/status"
	PathDash   = "/campaign/dash"
)

// maxResultBody bounds one shard-result POST; aligned with maxCkptLine
// (the payload is what gets checkpointed).
const maxResultBody = maxCkptLine

// ServeHTTP serves the campaign protocol.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

func (c *Coordinator) handleSpec(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.info)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad lease request: %v", err))
		return
	}
	resp, err := c.Lease(req)
	if err != nil {
		writeJSONError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	// Results are the one message that mutates the census, so the wire
	// boundary is paranoid: the body must parse AND match its own FNV-64a
	// self-checksum. A truncated or corrupted payload gets HTTP 400 and a
	// failed-attempt mark, and the shard is re-dispatched — never
	// mis-credited. (Workers retry 400s with a fresh POST; a fresh body
	// passes unless the corruption is at the sender.)
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxResultBody))
	if err != nil {
		c.RejectResult(-1, "", "truncated result body")
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("truncated result body: %v", err))
		return
	}
	var p ShardPayload
	if err := json.Unmarshal(data, &p); err != nil {
		c.RejectResult(-1, "", "corrupt result body")
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad result payload: %v", err))
		return
	}
	if want := PayloadSum(&p); p.Sum == "" || p.Sum != want {
		cause := fmt.Sprintf("payload checksum mismatch: body carries %q, content hashes to %s", p.Sum, want)
		c.RejectResult(p.Shard, p.Worker, cause)
		writeJSONError(w, http.StatusBadRequest, cause)
		return
	}
	resp, err := c.Credit(&p)
	if err != nil {
		writeJSONError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad heartbeat request: %v", err))
		return
	}
	resp, err := c.Heartbeat(req)
	if err != nil {
		writeJSONError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

type wireError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone = client's problem
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, wireError{Error: msg})
}

// WriteJSON and WriteJSONError expose the coordinator's response helpers to
// the fleet-fuzzing coordinator (internal/fleet), which serves the same wire
// conventions (JSON bodies, {"error": ...} rejections) on its own handlers.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// WriteJSONError renders a wire rejection; see WriteJSON.
func WriteJSONError(w http.ResponseWriter, status int, msg string) { writeJSONError(w, status, msg) }

// Server binds a Coordinator to a TCP listener (-serve ADDR).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// ListenAndServe starts serving the campaign protocol on addr (host:port;
// port 0 picks a free one, see Addr). h is usually the Coordinator itself;
// the chaos harness wraps it with WrapWireFaults.
func ListenAndServe(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("campaign: listen: %w", err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }

// String formats the control-plane summary the -serve frontend prints:
// shard accounting first, then per-worker credit counts sorted by worker
// name (deterministic output for logs and tests).
func (st Stats) String() string {
	lines := []string{fmt.Sprintf(
		"campaign: %d/%d shards done (%d resumed from checkpoint, %d re-dispatched, %d duplicates discarded, %d rejected, %d bad payloads, %d heartbeats)",
		st.Done, st.Shards, st.Resumed, st.Redispatched, st.Duplicates, st.Rejected, st.BadPayloads, st.Heartbeats)}
	if st.ShardsQuarantined > 0 {
		lines = append(lines, fmt.Sprintf(
			"  DEGRADED: %d shards quarantined after exhausting their dispatch attempts — census excludes their workloads (re-run with -retry-quarantined)",
			st.ShardsQuarantined))
	}
	workers := make([]string, 0, len(st.PerWorker))
	for wkr := range st.PerWorker {
		workers = append(workers, wkr)
	}
	sort.Strings(workers)
	for _, wkr := range workers {
		lines = append(lines, fmt.Sprintf("  %s: %d shards", wkr, st.PerWorker[wkr]))
	}
	return strings.Join(lines, "\n")
}
