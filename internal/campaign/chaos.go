package campaign

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the campaign-layer analogue of pmem's fault injector: a
// deterministic wire-fault layer that wraps the coordinator's HTTP handlers
// and mangles traffic the way flaky fleet networks do — dropped
// connections, duplicated deliveries, truncated and bit-flipped bodies,
// and injected latency. Every decision is a pure function of
// (Seed, endpoint, call-index), mirroring pmem.FaultConfig's
// (Seed, site) contract: two runs with the same seed and the same
// per-endpoint call sequence inject identical faults, so chaos tests are
// replayable. (Which concurrent request draws which call-index is
// scheduling-dependent — but the campaign's correctness argument never
// depends on which request gets hurt, only on surviving it.)
//
// The injector sits in front of the coordinator, so "truncate" and
// "corrupt" mangle *request* bodies as received — exactly the damage the
// payload self-checksum (PayloadSum) exists to catch — while "drop" aborts
// the connection before the handler runs, exercising the workers' jittered
// retry budget, and "duplicate" replays the request against the handler a
// second time, exercising at-most-once crediting.

// WireFaultConfig configures the injector. The zero value injects nothing;
// rates are "roughly one in N" with 0 disabling that class, matching
// pmem.FaultConfig.
type WireFaultConfig struct {
	// Seed keys every injection decision; runs with equal seeds and equal
	// call sequences inject identical faults.
	Seed uint64
	// DropOneInN aborts roughly one in N requests before the handler runs:
	// the client sees a torn connection and no response.
	DropOneInN int
	// DupOneInN delivers roughly one in N requests to the handler twice;
	// the client sees only the first response. Models a retransmit racing a
	// slow ack.
	DupOneInN int
	// TruncateOneInN cuts roughly one in N request bodies to a prefix.
	TruncateOneInN int
	// CorruptOneInN flips one bit in roughly one in N request bodies.
	CorruptOneInN int
	// DelayOneInN stalls roughly one in N requests for up to MaxDelay.
	DelayOneInN int
	// MaxDelay bounds injected latency (default 50ms when DelayOneInN > 0).
	MaxDelay time.Duration
}

// Enabled reports whether any fault class is active.
func (c *WireFaultConfig) Enabled() bool {
	return c != nil && (c.DropOneInN > 0 || c.DupOneInN > 0 ||
		c.TruncateOneInN > 0 || c.CorruptOneInN > 0 || c.DelayOneInN > 0)
}

// DefaultWireFaults returns the rates the -wire-faults CLI flag enables:
// frequent enough that a short campaign exercises every class, rare enough
// that it still completes inside the workers' retry budgets.
func DefaultWireFaults(seed uint64) *WireFaultConfig {
	return &WireFaultConfig{
		Seed:           seed,
		DropOneInN:     11,
		DupOneInN:      13,
		TruncateOneInN: 17,
		CorruptOneInN:  17,
		DelayOneInN:    7,
		MaxDelay:       25 * time.Millisecond,
	}
}

// Per-class domain separators so one seed drives independent streams,
// mirroring pmem's tearDomain/flipDomain/readDomain.
const (
	wireDropDomain  = 0x64726f70636f6e6e // "dropconn"
	wireDupDomain   = 0x6475706c69636174 // "duplicat"
	wireTruncDomain = 0x7472756e63626f64 // "truncbod"
	wireFlipDomain  = 0x77697265666c6970 // "wireflip"
	wireDelayDomain = 0x64656c6179776972 // "delaywir"
)

// WireFaultStats counts injected faults per class, for test logs and the
// chaos smoke's visibility ("silent chaos" would prove nothing).
type WireFaultStats struct {
	Calls     uint64
	Dropped   uint64
	Duped     uint64
	Truncated uint64
	Corrupted uint64
	Delayed   uint64
}

func (s WireFaultStats) String() string {
	return fmt.Sprintf("wire faults: %d calls, %d dropped, %d duplicated, %d truncated, %d corrupted, %d delayed",
		s.Calls, s.Dropped, s.Duped, s.Truncated, s.Corrupted, s.Delayed)
}

// wireFaults is the wrapping handler.
type wireFaults struct {
	cfg   WireFaultConfig
	inner http.Handler

	mu    sync.Mutex
	calls map[string]*uint64 // per-endpoint call-index counters

	dropped, duped, truncated, corrupted, delayed, total atomic.Uint64
}

// WrapWireFaults wraps h with the deterministic wire-fault injector. A nil
// or disabled config returns h unchanged. The second return value reads the
// injection counters (nil when disabled).
func WrapWireFaults(h http.Handler, cfg *WireFaultConfig) (http.Handler, func() WireFaultStats) {
	if !cfg.Enabled() {
		return h, nil
	}
	wf := &wireFaults{cfg: *cfg, inner: h, calls: make(map[string]*uint64)}
	if wf.cfg.MaxDelay <= 0 {
		wf.cfg.MaxDelay = 50 * time.Millisecond
	}
	return wf, wf.stats
}

func (wf *wireFaults) stats() WireFaultStats {
	return WireFaultStats{
		Calls:     wf.total.Load(),
		Dropped:   wf.dropped.Load(),
		Duped:     wf.duped.Load(),
		Truncated: wf.truncated.Load(),
		Corrupted: wf.corrupted.Load(),
		Delayed:   wf.delayed.Load(),
	}
}

// callIndex assigns the next per-endpoint call index.
func (wf *wireFaults) callIndex(endpoint string) uint64 {
	wf.mu.Lock()
	defer wf.mu.Unlock()
	p := wf.calls[endpoint]
	if p == nil {
		p = new(uint64)
		wf.calls[endpoint] = p
	}
	i := *p
	*p++
	return i
}

// site folds (seed, endpoint, call-index, class-domain) into one mixed
// 64-bit decision value, the wire analogue of pmem's per-site hashes.
func (wf *wireFaults) site(domain uint64, endpoint string, idx uint64) uint64 {
	h := fnv.New64a()
	io.WriteString(h, endpoint)
	return mixWire(wf.cfg.Seed ^ domain ^ h.Sum64() ^ idx*0x9e3779b97f4a7c15)
}

// mixWire is the splitmix64 finalizer (same mixer as pmem.mix, local so the
// campaign package stays free of a pmem dependency).
func mixWire(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func hit(h uint64, oneInN int) bool {
	return oneInN > 0 && h%uint64(oneInN) == 0
}

func (wf *wireFaults) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	wf.total.Add(1)
	endpoint := r.URL.Path
	idx := wf.callIndex(endpoint)

	if h := wf.site(wireDelayDomain, endpoint, idx); hit(h, wf.cfg.DelayOneInN) {
		wf.delayed.Add(1)
		time.Sleep(time.Duration(mixWire(h) % uint64(wf.cfg.MaxDelay)))
	}
	if hit(wf.site(wireDropDomain, endpoint, idx), wf.cfg.DropOneInN) {
		// Torn connection: the handler never runs, the client gets no
		// response bytes. http.ErrAbortHandler is the sanctioned way to
		// abort without a stack trace.
		wf.dropped.Add(1)
		panic(http.ErrAbortHandler)
	}

	// Body mutations model damage in flight: what the coordinator's reader
	// sees differs from what the worker sent, and only the self-checksum
	// stands between that and a mis-credit.
	var body []byte
	if r.Body != nil && r.Method == http.MethodPost {
		b, err := io.ReadAll(io.LimitReader(r.Body, maxResultBody+1))
		r.Body.Close()
		if err != nil {
			panic(http.ErrAbortHandler)
		}
		body = b
	}
	if body != nil {
		if h := wf.site(wireTruncDomain, endpoint, idx); hit(h, wf.cfg.TruncateOneInN) && len(body) > 1 {
			wf.truncated.Add(1)
			body = body[:1+int(mixWire(h)%uint64(len(body)-1))]
		}
		if h := wf.site(wireFlipDomain, endpoint, idx); hit(h, wf.cfg.CorruptOneInN) && len(body) > 0 {
			wf.corrupted.Add(1)
			bit := mixWire(h) % uint64(len(body)*8)
			flipped := append([]byte(nil), body...)
			flipped[bit/8] ^= 1 << (bit % 8)
			body = flipped
		}
	}

	serve := func(w http.ResponseWriter) {
		req := r
		if body != nil {
			req = r.Clone(r.Context())
			req.Body = io.NopCloser(bytes.NewReader(body))
			req.ContentLength = int64(len(body))
		}
		wf.inner.ServeHTTP(w, req)
	}
	serve(w)
	if hit(wf.site(wireDupDomain, endpoint, idx), wf.cfg.DupOneInN) {
		// Retransmit racing a slow ack: the handler hears the same request
		// twice, the client hears only the first answer. At-most-once
		// crediting must make the replay a no-op.
		wf.duped.Add(1)
		serve(discardWriter{})
	}
}

// discardWriter swallows the duplicate delivery's response.
type discardWriter struct{}

func (discardWriter) Header() http.Header       { return make(http.Header) }
func (discardWriter) Write(b []byte) (int, error) { return len(b), nil }
func (discardWriter) WriteHeader(int)           {}
