package fuzz

import (
	"chipmunk/internal/core"
	"chipmunk/internal/workload"
	"context"
)

// Minimize shrinks a violating workload to a minimal reproducer, the way
// Syzkaller minimizes crashing programs before reporting: it greedily drops
// operations (largest chunks first) and keeps any reduction that still
// triggers a violation. The result is what a developer reads in the bug
// report, so smaller is better.
//
// check runs the engine on a candidate; budget bounds the number of engine
// invocations (each one replays every crash state).
func Minimize(cfg core.Config, w workload.Workload, budget int) (workload.Workload, int, error) {
	execs := 0
	stillBuggy := func(cand workload.Workload) (bool, error) {
		if execs >= budget {
			return false, nil
		}
		execs++
		res, err := core.RunContext(context.Background(), cfg, cand)
		if err != nil {
			return false, err
		}
		return res.Buggy(), nil
	}

	// Sanity: the input must reproduce.
	ok, err := stillBuggy(w)
	if err != nil {
		return w, execs, err
	}
	if !ok {
		return w, execs, nil
	}

	cur := append([]workload.Op(nil), w.Ops...)
	// Chunked removal: halves, quarters, ..., single ops.
	for chunk := len(cur) / 2; chunk >= 1; chunk /= 2 {
		for start := 0; start+chunk <= len(cur); {
			if execs >= budget {
				break
			}
			cand := make([]workload.Op, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if len(cand) == 0 {
				start += chunk
				continue
			}
			ok, err := stillBuggy(workload.Workload{Name: w.Name + "-min", Ops: cand})
			if err != nil {
				return w, execs, err
			}
			if ok {
				cur = cand // keep the reduction; retry the same start
			} else {
				start += chunk
			}
		}
	}
	return workload.Workload{Name: w.Name + "-min", Ops: cur}, execs, nil
}
