package fuzz

import (
	"testing"

	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/fs/pmfs"
	"chipmunk/internal/fs/splitfs"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
)

func novaCfg(set bugs.Set) core.Config {
	return core.Config{
		NewFS: func(pm *persist.PM) vfs.FS { return nova.New(pm, set) },
		Cap:   2, // the paper's fuzzing cap (§4.2)
	}
}

func TestFuzzerFindsCoverageAndBuildsCorpus(t *testing.T) {
	f := New(novaCfg(bugs.None()), 1, nil)
	if err := f.Run(30); err != nil {
		t.Fatal(err)
	}
	if f.Execs != 30 {
		t.Fatalf("execs = %d", f.Execs)
	}
	if f.CoverageSize() == 0 || f.CorpusSize() == 0 {
		t.Fatal("no coverage or corpus growth")
	}
	if f.StatesChecked == 0 {
		t.Fatal("no crash states checked")
	}
}

func TestFuzzerCleanOnFixedNova(t *testing.T) {
	f := New(novaCfg(bugs.None()), 7, nil)
	if err := f.Run(60); err != nil {
		t.Fatal(err)
	}
	for _, v := range f.Violations {
		t.Errorf("false positive on fixed nova: %s", v)
	}
}

// TestFuzzerFindsUnalignedBug: bug 17 (PMFS/WineFS unaligned NT tail) is
// out of ACE's reach but inside the fuzzer's argument space.
func TestFuzzerFindsUnalignedBug(t *testing.T) {
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS { return pmfs.New(pm, bugs.Of(bugs.NTTailNotFenced)) },
		Cap:   2,
	}
	f := New(cfg, 3, nil)
	found := false
	for i := 0; i < 300 && !found; i++ {
		res, _, err := f.Step()
		if err != nil {
			t.Fatal(err)
		}
		if res.Buggy() {
			found = true
		}
	}
	if !found {
		t.Fatal("fuzzer did not find the unaligned-write bug in 300 execs")
	}
}

// TestFuzzerFindsTwoFDBug: bug 22 (SplitFS per-FD staging) needs two open
// descriptors on one file.
func TestFuzzerFindsTwoFDBug(t *testing.T) {
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS { return splitfs.New(pm, bugs.Of(bugs.SplitfsStagePerFD)) },
		Cap:   2,
	}
	f := New(cfg, 5, nil)
	found := false
	for i := 0; i < 400 && !found; i++ {
		res, _, err := f.Step()
		if err != nil {
			t.Fatal(err)
		}
		if res.Buggy() {
			found = true
		}
	}
	if !found {
		t.Fatal("fuzzer did not find the two-FD staging bug in 400 execs")
	}
}

func TestTriageIntegration(t *testing.T) {
	cfg := novaCfg(bugs.Of(bugs.NovaRenameInPlaceDelete))
	f := New(cfg, 11, nil)
	if err := f.Run(150); err != nil {
		t.Fatal(err)
	}
	if len(f.Violations) == 0 {
		t.Skip("rename bug not hit in this seed's budget (mutation-dependent)")
	}
	if len(f.Clusters) == 0 {
		t.Fatal("violations but no clusters")
	}
	if len(f.Clusters) > len(f.Violations) {
		t.Fatal("more clusters than violations")
	}
}

func TestGenerateAndMutateShapes(t *testing.T) {
	f := New(novaCfg(bugs.None()), 13, nil)
	w := f.generate()
	if len(w.Ops) < 3 {
		t.Fatalf("generated workload too short: %d", len(w.Ops))
	}
	m := f.mutate(w)
	if len(m.Ops) == 0 || len(m.Ops) > 24 {
		t.Fatalf("mutated workload size = %d", len(m.Ops))
	}
}
