package fuzz

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"chipmunk/internal/workload"
)

// SaveCorpus writes the fuzzer's current corpus as reproducer files, one
// per workload, so long campaigns can resume (Syzkaller's corpus.db, in
// plain text).
func (f *Fuzzer) SaveCorpus(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fuzz: %w", err)
	}
	for i, w := range f.corpus {
		path := filepath.Join(dir, fmt.Sprintf("corpus-%05d.txt", i))
		if err := os.WriteFile(path, []byte(workload.Format(w)), 0o644); err != nil {
			return fmt.Errorf("fuzz: %w", err)
		}
	}
	return nil
}

// saveCrash writes a triggering workload to CrashDir as a reproducer,
// named by failure class (panic-*, sandbox-*). Best-effort by design: it
// runs on the panic path, where a secondary I/O failure must not mask the
// original fault.
func (f *Fuzzer) saveCrash(class string, w workload.Workload) {
	if f.CrashDir == "" {
		return
	}
	if err := os.MkdirAll(f.CrashDir, 0o755); err != nil {
		return
	}
	f.crashSaves++
	path := filepath.Join(f.CrashDir, fmt.Sprintf("%s-%05d.txt", class, f.crashSaves))
	_ = os.WriteFile(path, []byte(workload.Format(w)), 0o644)
}

// LoadCorpus reads every reproducer file in dir as seed workloads.
// Unparseable files are skipped with their names returned, not fatal — a
// corpus directory survives format evolution.
func LoadCorpus(dir string) ([]workload.Workload, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("fuzz: %w", err)
	}
	var (
		seeds   []workload.Workload
		skipped []string
		names   []string
	)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			skipped = append(skipped, name)
			continue
		}
		w, err := workload.Parse(string(data))
		if err != nil || len(w.Ops) == 0 {
			skipped = append(skipped, name)
			continue
		}
		if w.Name == "" {
			w.Name = name
		}
		seeds = append(seeds, w)
	}
	return seeds, skipped, nil
}
