package fuzz

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"chipmunk/internal/workload"
)

// writeFileAtomic writes data via a temp file in the same directory plus
// rename, so a worker killed mid-write never leaves a torn reproducer for
// LoadCorpus to choke on. Temp names carry no ".txt" suffix, so an
// orphaned temp from a crash is invisible to LoadCorpus.
func writeFileAtomic(path string, data []byte) error {
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// SaveCorpus writes the fuzzer's current corpus as reproducer files, one
// per workload, so long campaigns can resume (Syzkaller's corpus.db, in
// plain text). Each entry is written temp-then-rename: a kill at any point
// leaves every corpus file either absent or complete.
func (f *Fuzzer) SaveCorpus(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fuzz: %w", err)
	}
	for i, w := range f.corpus {
		path := filepath.Join(dir, fmt.Sprintf("corpus-%05d.txt", i))
		if err := writeFileAtomic(path, []byte(workload.Format(w))); err != nil {
			return fmt.Errorf("fuzz: %w", err)
		}
	}
	return nil
}

// saveCrash writes a triggering workload to CrashDir as a reproducer. The
// filename is <class>-<fnv64a(key)>.txt, so repeated hits of the same key
// (for violations, the (kind, FS, trace prefix) cluster key) update one
// file instead of flooding the directory with duplicates. Best-effort by
// design: it runs on the panic path, where a secondary I/O failure must
// not mask the original fault.
func (f *Fuzzer) saveCrash(class, key string, w workload.Workload) {
	if f.CrashDir == "" {
		return
	}
	if err := os.MkdirAll(f.CrashDir, 0o755); err != nil {
		return
	}
	f.crashSaves++
	h := fnv.New64a()
	h.Write([]byte(key))
	path := filepath.Join(f.CrashDir, fmt.Sprintf("%s-%016x.txt", class, h.Sum64()))
	_ = writeFileAtomic(path, []byte(workload.Format(w)))
}

// LoadCorpus reads every reproducer file in dir as seed workloads.
// Unparseable files are skipped with their names returned, not fatal — a
// corpus directory survives format evolution and torn writes alike.
func LoadCorpus(dir string) ([]workload.Workload, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("fuzz: %w", err)
	}
	var (
		seeds   []workload.Workload
		skipped []string
		names   []string
	)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			skipped = append(skipped, name)
			continue
		}
		w, err := workload.Parse(string(data))
		if err != nil || len(w.Ops) == 0 {
			skipped = append(skipped, name)
			continue
		}
		if w.Name == "" {
			w.Name = name
		}
		seeds = append(seeds, w)
	}
	return seeds, skipped, nil
}
