// Package fuzz is the gray-box workload fuzzer frontend, standing in for
// the paper's modified Syzkaller (§3.4.2). Starting from a seed corpus (or
// nothing), it mutates workloads with genetic operators — argument
// mutation, op insertion/deletion, splicing — runs each candidate through
// the Chipmunk engine, and keeps candidates that exercise new behaviour.
//
// Coverage substitution: Syzkaller consumes kcov branch coverage, which has
// no Go-stdlib equivalent for code under test in-process. The fuzzer
// instead uses the engine's per-syscall trace signatures (the shape of the
// persistence-function stream) plus live error outcomes — a gray-box
// feedback signal of the same flavour: it distinguishes workloads that
// drive the file system down different durability paths.
//
// Crucially, the fuzzer's argument generators are not confined to ACE's
// lattice: offsets and sizes may be arbitrary (unaligned), and multiple
// file descriptors can target one file — the patterns that expose the four
// ACE-unreachable bugs of §4.3.
package fuzz

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"chipmunk/internal/core"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// Fuzzer drives one target file system.
type Fuzzer struct {
	cfg core.Config
	rng *rand.Rand

	corpus   []workload.Workload
	coverage map[uint64]bool

	// KV adds the application-level KV ops (kvput/kvdel/kvsync/kvget) to
	// the mutation vocabulary. Set it when Config carries the KV app
	// factory and contract checker (chipmunkfuzz -app=kv); the flag is read
	// only inside randOp, so KV=false campaigns replay byte-identically to
	// builds that predate it.
	KV bool

	// CrashDir, when set, receives the triggering workload whenever a
	// candidate escapes the engine's sandbox with a panic (saved before the
	// panic is re-raised, so a crashed campaign still leaves a reproducer)
	// or produces quarantined crash states (saved as a sandbox-* artifact).
	CrashDir string

	// Violations accumulates every report; Clusters is the triaged view.
	Violations []core.Violation
	Clusters   []*core.Cluster

	// Stats.
	Execs         int
	StatesChecked int
	CorpusAdds    int
	// Quarantined counts crash states the engine's sandbox isolated across
	// the whole campaign; RetriedChecks counts transient check retries.
	Quarantined   int
	RetriedChecks int
	// ObsTotals merges every exec's per-run metrics snapshot — the
	// campaign-wide stage/counter totals. Nil until an exec runs with
	// Config.Obs set.
	ObsTotals  *obs.Snapshot
	crashSaves int
}

// New builds a fuzzer. seeds may be empty (the paper's runs start with an
// empty seed set).
func New(cfg core.Config, seed int64, seeds []workload.Workload) *Fuzzer {
	f := &Fuzzer{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(seed)),
		coverage: map[uint64]bool{},
	}
	f.corpus = append(f.corpus, seeds...)
	return f
}

var pathPool = []string{"/f0", "/f1", "/f2", "/d0", "/d1", "/d0/f3", "/d0/d2", "/d1/f4", "/l0"}

func (f *Fuzzer) randPath() string { return pathPool[f.rng.Intn(len(pathPool))] }

var kvKeyPool = []string{"alpha", "beta", "gamma", "delta"}

// randKVOp generates one application-level KV op. Puts carry a nonzero
// seed so the contract checker can verify recovered bytes; gets use seed 0
// (presence check only — a fuzzed get has no expected value).
func (f *Fuzzer) randKVOp() workload.Op {
	key := kvKeyPool[f.rng.Intn(len(kvKeyPool))]
	sizes := []int64{1, 16, 64, 200, 512, 1024}
	switch f.rng.Intn(5) {
	case 0, 1:
		return workload.Op{Kind: workload.OpKVPut, Path: key, FDSlot: -1,
			Size: sizes[f.rng.Intn(len(sizes))], Seed: f.rng.Uint32()%1000 + 1}
	case 2:
		return workload.Op{Kind: workload.OpKVDel, Path: key, FDSlot: -1}
	case 3:
		return workload.Op{Kind: workload.OpKVGet, Path: key, FDSlot: -1}
	default:
		return workload.Op{Kind: workload.OpKVSync, FDSlot: -1}
	}
}

// randOp generates one random operation. Offsets and sizes are drawn from
// a mix of aligned and deliberately unaligned values.
func (f *Fuzzer) randOp() workload.Op {
	if f.KV && f.rng.Intn(2) == 0 {
		return f.randKVOp()
	}
	offs := []int64{0, 1, 3, 8, 64, 100, 1024, 2048, 4095, 4096, 4097}
	sizes := []int64{1, 5, 8, 13, 100, 512, 1000, 1024, 4096, 5000}
	slot := -1
	if f.rng.Intn(2) == 0 {
		slot = f.rng.Intn(2)
	}
	switch f.rng.Intn(13) {
	case 0:
		return workload.Op{Kind: workload.OpCreat, Path: f.randPath(), FDSlot: slot}
	case 1:
		return workload.Op{Kind: workload.OpMkdir, Path: f.randPath()}
	case 2:
		return workload.Op{Kind: workload.OpOpen, Path: f.randPath(), FDSlot: f.rng.Intn(2)}
	case 3:
		return workload.Op{Kind: workload.OpClose, FDSlot: f.rng.Intn(2)}
	case 4:
		return workload.Op{Kind: workload.OpWrite, Path: f.randPath(), FDSlot: slot,
			Size: sizes[f.rng.Intn(len(sizes))], Seed: f.rng.Uint32()}
	case 5:
		return workload.Op{Kind: workload.OpPwrite, Path: f.randPath(), FDSlot: slot,
			Off: offs[f.rng.Intn(len(offs))], Size: sizes[f.rng.Intn(len(sizes))], Seed: f.rng.Uint32()}
	case 6:
		return workload.Op{Kind: workload.OpLink, Path: f.randPath(), Path2: f.randPath()}
	case 7:
		return workload.Op{Kind: workload.OpUnlink, Path: f.randPath()}
	case 8:
		return workload.Op{Kind: workload.OpRename, Path: f.randPath(), Path2: f.randPath()}
	case 9:
		return workload.Op{Kind: workload.OpTruncate, Path: f.randPath(), Size: offs[f.rng.Intn(len(offs))]}
	case 10:
		return workload.Op{Kind: workload.OpRmdir, Path: f.randPath()}
	case 11:
		return workload.Op{Kind: workload.OpFalloc, Path: f.randPath(), FDSlot: slot,
			Off: offs[f.rng.Intn(len(offs))], Size: sizes[f.rng.Intn(len(sizes))]}
	default:
		return workload.Op{Kind: workload.OpFsync, Path: f.randPath(), FDSlot: slot}
	}
}

// generate produces a fresh random workload, biased toward creating files
// before using them so more ops succeed. Half the templates pre-populate
// /f0 with data (so later writes are overwrites) and open a second
// descriptor on it — the access patterns a systematic generator like ACE
// omits and that §4.3's fuzzer-only bugs hide behind.
func (f *Fuzzer) generate() workload.Workload {
	n := f.rng.Intn(6) + 3
	ops := []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: 0},
		{Kind: workload.OpMkdir, Path: "/d0"},
	}
	if f.rng.Intn(2) == 0 {
		ops = append(ops, workload.Op{Kind: workload.OpPwrite, FDSlot: 0, Off: 0,
			Size: int64(f.rng.Intn(2000) + 200), Seed: f.rng.Uint32()})
	}
	if f.rng.Intn(2) == 0 {
		ops = append(ops, workload.Op{Kind: workload.OpOpen, Path: "/f0", FDSlot: 1})
	}
	for i := 0; i < n; i++ {
		ops = append(ops, f.randOp())
	}
	return workload.Workload{Name: fmt.Sprintf("fuzz-gen-%d", f.Execs), Ops: ops}
}

// mutate applies one genetic operator to a parent workload.
func (f *Fuzzer) mutate(parent workload.Workload) workload.Workload {
	ops := append([]workload.Op(nil), parent.Ops...)
	switch f.rng.Intn(5) {
	case 0: // insert
		i := f.rng.Intn(len(ops) + 1)
		ops = append(ops[:i], append([]workload.Op{f.randOp()}, ops[i:]...)...)
	case 1: // delete
		if len(ops) > 1 {
			i := f.rng.Intn(len(ops))
			ops = append(ops[:i], ops[i+1:]...)
		}
	case 2: // mutate args
		if len(ops) > 0 {
			i := f.rng.Intn(len(ops))
			op := &ops[i]
			switch f.rng.Intn(4) {
			case 0:
				op.Off = f.rng.Int63n(8192)
			case 1:
				op.Size = f.rng.Int63n(6000) + 1
			case 2:
				op.Path = f.randPath()
			case 3:
				op.FDSlot = f.rng.Intn(3) - 1
			}
		}
	case 3: // duplicate an op
		if len(ops) > 0 {
			i := f.rng.Intn(len(ops))
			ops = append(ops[:i], append([]workload.Op{ops[i]}, ops[i:]...)...)
		}
	case 4: // splice with another corpus entry
		if len(f.corpus) > 0 {
			other := f.corpus[f.rng.Intn(len(f.corpus))]
			cut := f.rng.Intn(len(ops) + 1)
			ops = append(ops[:cut], other.Ops...)
		}
	}
	if len(ops) > 24 {
		ops = ops[:24]
	}
	return workload.Workload{Name: fmt.Sprintf("fuzz-mut-%d", f.Execs), Ops: ops}
}

// Delta is one fuzzing step's contribution: the candidate workload, the
// engine result, and — when the candidate earned a corpus slot — the trace
// signatures that made it novel. fleet.Node ships Deltas over the wire, so
// everything here is a pure function of (seed, corpus, step index).
type Delta struct {
	Workload workload.Workload
	Result   *core.Result
	// Admitted reports whether Workload joined the corpus this step.
	Admitted bool
	// NewSigs are the signatures unseen before this step; AllSigs is the
	// candidate's full signature set. Both sorted ascending.
	NewSigs []uint64
	AllSigs []uint64
}

// StepDelta runs one fuzzing iteration and reports what it contributed.
func (f *Fuzzer) StepDelta() (Delta, error) {
	var w workload.Workload
	if len(f.corpus) == 0 || f.rng.Intn(4) == 0 {
		w = f.generate()
	} else {
		w = f.mutate(f.corpus[f.rng.Intn(len(f.corpus))])
	}
	// The engine's sandbox contains per-crash-state panics, but a panic on
	// the coordinator path (trace recording, enumeration) would still take
	// the campaign down. Save the triggering workload first, then re-raise:
	// a crashed campaign must leave its reproducer behind.
	defer func() {
		if r := recover(); r != nil {
			f.saveCrash("panic", workload.Format(w), w)
			panic(r)
		}
	}()
	res, err := core.RunContext(context.Background(), f.cfg, w)
	if err != nil {
		return Delta{Workload: w}, err
	}
	f.Execs++
	f.StatesChecked += res.StatesChecked
	f.RetriedChecks += res.RetriedChecks
	if res.Obs != nil {
		if f.ObsTotals == nil {
			f.ObsTotals = &obs.Snapshot{}
		}
		f.ObsTotals.Merge(*res.Obs)
	}
	if n := len(res.Quarantined) + res.SuppressedQuarantine; n > 0 {
		f.Quarantined += n
		f.saveCrash("sandbox", workload.Format(w), w)
	}

	// Coverage feedback: new trace-shape signatures promote the workload
	// into the corpus.
	d := Delta{Workload: w, Result: res, AllSigs: sortedSigs(res.SyscallSigs)}
	for _, sig := range d.AllSigs {
		if !f.coverage[sig] {
			f.coverage[sig] = true
			d.NewSigs = append(d.NewSigs, sig)
		}
	}
	if len(d.NewSigs) > 0 {
		f.corpus = append(f.corpus, w)
		f.CorpusAdds++
		d.Admitted = true
	}
	if len(res.Violations) > 0 {
		for _, v := range res.Violations {
			f.saveCrash("crash", v.ClusterKey(), w)
		}
		f.Violations = append(f.Violations, res.Violations...)
		f.Clusters = core.Triage(f.Violations)
	}
	return d, nil
}

// Step runs one fuzzing iteration and returns the engine result.
func (f *Fuzzer) Step() (*core.Result, workload.Workload, error) {
	d, err := f.StepDelta()
	return d.Result, d.Workload, err
}

// Absorb injects an externally-discovered corpus entry (a coordinator
// redistribution in fleet mode): sigs join the coverage map, and w earns a
// corpus slot iff any of them was still unseen. Reports whether w was
// admitted. Callers that need determinism must absorb entries in a
// canonical order — corpus slots are assigned in call order.
func (f *Fuzzer) Absorb(w workload.Workload, sigs []uint64) bool {
	novel := false
	for _, sig := range sigs {
		if !f.coverage[sig] {
			f.coverage[sig] = true
			novel = true
		}
	}
	if novel {
		f.corpus = append(f.corpus, w)
		f.CorpusAdds++
	}
	return novel
}

// sortedSigs returns a sorted copy (dedup preserved — signatures repeat per
// syscall and the multiset shape is part of the wire contract's AllSigs).
func sortedSigs(sigs []uint64) []uint64 {
	out := append([]uint64(nil), sigs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Run performs n iterations.
func (f *Fuzzer) Run(n int) error {
	for i := 0; i < n; i++ {
		if _, _, err := f.Step(); err != nil {
			return err
		}
	}
	return nil
}

// CorpusSize reports how many workloads the corpus holds.
func (f *Fuzzer) CorpusSize() int { return len(f.corpus) }

// CoverageSize reports the number of distinct trace signatures seen.
func (f *Fuzzer) CoverageSize() int { return len(f.coverage) }
