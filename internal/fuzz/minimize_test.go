package fuzz

import (
	"context"
	"os"
	"testing"

	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

func TestMinimizeShrinksReproducer(t *testing.T) {
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS {
			return nova.New(pm, bugs.Of(bugs.NovaRenameInPlaceDelete))
		},
		Cap: 2,
	}
	// A bloated workload around the 3-op rename reproducer.
	w := workload.Workload{Name: "bloated", Ops: []workload.Op{
		{Kind: workload.OpMkdir, Path: "/junk1"},
		{Kind: workload.OpMkdir, Path: "/junk2"},
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Size: 64, Seed: 1},
		{Kind: workload.OpMkdir, Path: "/junk3"},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
		{Kind: workload.OpMkdir, Path: "/junk4"},
		{Kind: workload.OpRmdir, Path: "/junk4"},
	}}
	min, execs, err := Minimize(cfg, w, 100)
	if err != nil {
		t.Fatal(err)
	}
	if execs == 0 {
		t.Fatal("no executions")
	}
	if len(min.Ops) >= len(w.Ops) {
		t.Fatalf("no reduction: %d ops", len(min.Ops))
	}
	// The minimized workload must still reproduce.
	res, err := core.RunContext(context.Background(), cfg, min)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Buggy() {
		t.Fatalf("minimized workload does not reproduce:\n%s", workload.Format(min))
	}
	// The rename must have survived minimization.
	hasRename := false
	for _, op := range min.Ops {
		if op.Kind == workload.OpRename {
			hasRename = true
		}
	}
	if !hasRename {
		t.Fatalf("rename dropped:\n%s", workload.Format(min))
	}
	t.Logf("minimized %d -> %d ops in %d execs:\n%s", len(w.Ops), len(min.Ops), execs, workload.Format(min))
}

func TestMinimizeNonBuggyUnchanged(t *testing.T) {
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS { return nova.New(pm, bugs.None()) },
	}
	w := workload.Workload{Ops: []workload.Op{{Kind: workload.OpCreat, Path: "/a", FDSlot: -1}}}
	min, _, err := Minimize(cfg, w, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Ops) != 1 {
		t.Fatal("non-buggy workload modified")
	}
}

func TestMinimizeRespectsBudget(t *testing.T) {
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS {
			return nova.New(pm, bugs.Of(bugs.NovaRenameInPlaceDelete))
		},
		Cap: 1,
	}
	w := workload.Workload{Ops: []workload.Op{
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}
	_, execs, err := Minimize(cfg, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if execs > 3 {
		t.Fatalf("budget exceeded: %d", execs)
	}
}

func TestCorpusSaveLoadRoundTrip(t *testing.T) {
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS { return nova.New(pm, bugs.None()) },
		Cap:   2,
	}
	f := New(cfg, 3, nil)
	if err := f.Run(20); err != nil {
		t.Fatal(err)
	}
	if f.CorpusSize() == 0 {
		t.Skip("no corpus growth this seed")
	}
	dir := t.TempDir()
	if err := f.SaveCorpus(dir); err != nil {
		t.Fatal(err)
	}
	seeds, skipped, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped = %v", skipped)
	}
	if len(seeds) != f.CorpusSize() {
		t.Fatalf("loaded %d, saved %d", len(seeds), f.CorpusSize())
	}
	// A fuzzer seeded from the saved corpus starts warm.
	g := New(cfg, 4, seeds)
	if g.CorpusSize() != len(seeds) {
		t.Fatal("seeds not adopted")
	}
	if err := g.Run(5); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCorpusSkipsGarbage(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(dir+"/good.txt", []byte("creat /f0\n"), 0o644)
	os.WriteFile(dir+"/bad.txt", []byte("explode /f0\n"), 0o644)
	os.WriteFile(dir+"/notes.md", []byte("ignored"), 0o644)
	seeds, skipped, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 1 || len(skipped) != 1 {
		t.Fatalf("seeds=%d skipped=%v", len(seeds), skipped)
	}
}

// Minimization is deterministic: the same reproducer and budget produce a
// byte-identical minimized workload and the same exec count. Fleet mode
// depends on this — a re-dispatched minimization task must credit the same
// result no matter which worker runs it.
func TestMinimizeDeterministic(t *testing.T) {
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS {
			return nova.New(pm, bugs.Of(bugs.NovaRenameInPlaceDelete))
		},
		Cap: 2,
	}
	w := workload.Workload{Name: "bloated", Ops: []workload.Op{
		{Kind: workload.OpMkdir, Path: "/junk1"},
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Size: 64, Seed: 1},
		{Kind: workload.OpMkdir, Path: "/junk2"},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}
	min1, execs1, err := Minimize(cfg, w, 60)
	if err != nil {
		t.Fatal(err)
	}
	min2, execs2, err := Minimize(cfg, w, 60)
	if err != nil {
		t.Fatal(err)
	}
	if execs1 != execs2 {
		t.Fatalf("exec counts differ: %d vs %d", execs1, execs2)
	}
	if workload.Format(min1) != workload.Format(min2) {
		t.Fatalf("minimized workloads differ:\n%s\nvs\n%s", workload.Format(min1), workload.Format(min2))
	}
}

// Minimization preserves the violation cluster's stable coordinates: the
// shrunk workload still trips a violation of the same kind implicating the
// same op kind. (The full cluster key's trace prefix is a rendering of the
// op sequence, so a successful shrink necessarily changes it — which is why
// the fleet's post-minimization re-verification also checks kind and FS,
// not the prefix.)
func TestMinimizePreservesCluster(t *testing.T) {
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS {
			return nova.New(pm, bugs.Of(bugs.NovaRenameInPlaceDelete))
		},
		Cap: 2,
	}
	w := workload.Workload{Name: "bloated", Ops: []workload.Op{
		{Kind: workload.OpMkdir, Path: "/junk1"},
		{Kind: workload.OpCreat, Path: "/f0", FDSlot: -1},
		{Kind: workload.OpPwrite, Path: "/f0", FDSlot: -1, Size: 64, Seed: 1},
		{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"},
	}}
	orig, err := core.RunContext(context.Background(), cfg, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Violations) == 0 {
		t.Fatal("original workload not buggy; test needs a reproducer")
	}
	wantKeys := map[string]bool{}
	for _, v := range orig.Violations {
		op := ""
		if v.Syscall >= 0 && v.Syscall < len(v.Workload.Ops) {
			op = v.Workload.Ops[v.Syscall].Kind.String()
		}
		wantKeys[v.Kind.String()+"|"+v.FS+"|"+op] = true
	}
	min, _, err := Minimize(cfg, w, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(min.Ops) >= len(w.Ops) {
		t.Fatalf("nothing shrunk: %d ops -> %d ops", len(w.Ops), len(min.Ops))
	}
	res, err := core.RunContext(context.Background(), cfg, min)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		op := ""
		if v.Syscall >= 0 && v.Syscall < len(v.Workload.Ops) {
			op = v.Workload.Ops[v.Syscall].Kind.String()
		}
		if wantKeys[v.Kind.String()+"|"+v.FS+"|"+op] {
			return
		}
	}
	t.Fatalf("minimized workload preserves no original (kind, fs, op) triple; got %d violations", len(res.Violations))
}
