package fuzz

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
	"chipmunk/internal/workload"
)

// mountPanicFS panics when a crash state is mounted; the record pass (Mkfs
// and the workload ops) behaves normally.
type mountPanicFS struct{ vfs.FS }

func (f mountPanicFS) Mount() error { panic("hostile crash state") }

// mkfsPanicFS panics on the coordinator path (Mkfs), escaping the engine's
// per-check sandbox entirely — the case the fuzzer's own containment covers.
type mkfsPanicFS struct{ vfs.FS }

func (f mkfsPanicFS) Mkfs() error { panic("coordinator panic") }

func listCrashFiles(t *testing.T, dir, prefix string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), prefix) {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// TestFuzzerSavesSandboxReproducer: a candidate whose crash states are
// quarantined is persisted to CrashDir as a sandbox-* reproducer, and the
// campaign's quarantine counter advances.
func TestFuzzerSavesSandboxReproducer(t *testing.T) {
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS {
			return mountPanicFS{nova.New(pm, bugs.None())}
		},
		Cap:          2,
		CheckRetries: -1,
	}
	f := New(cfg, 1, nil)
	f.CrashDir = t.TempDir()
	if _, _, err := f.Step(); err != nil {
		t.Fatal(err)
	}
	if f.Quarantined == 0 {
		t.Fatal("hostile guest quarantined nothing")
	}
	files := listCrashFiles(t, f.CrashDir, "sandbox-")
	if len(files) != 1 {
		t.Fatalf("got %d sandbox reproducers, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if w, err := workload.Parse(string(data)); err != nil || len(w.Ops) == 0 {
		t.Fatalf("saved reproducer does not parse back: %v", err)
	}
}

// TestFuzzerSavesPanicReproducerBeforeReraise: a panic that escapes the
// engine is re-raised to the caller, but only after the triggering workload
// lands in CrashDir.
func TestFuzzerSavesPanicReproducerBeforeReraise(t *testing.T) {
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS {
			return mkfsPanicFS{nova.New(pm, bugs.None())}
		},
		Cap: 2,
	}
	f := New(cfg, 1, nil)
	f.CrashDir = t.TempDir()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("coordinator panic was swallowed instead of re-raised")
			}
		}()
		f.Step()
	}()
	files := listCrashFiles(t, f.CrashDir, "panic-")
	if len(files) != 1 {
		t.Fatalf("got %d panic reproducers, want 1", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if w, err := workload.Parse(string(data)); err != nil || len(w.Ops) == 0 {
		t.Fatalf("saved reproducer does not parse back: %v", err)
	}
}
