package trace

import (
	"strings"
	"testing"
)

func TestLogAppendAndMarkers(t *testing.T) {
	l := NewLog()
	if l.CurrentSyscall() != -1 {
		t.Fatal("fresh log should be outside any syscall")
	}
	l.BeginSyscall(0, "creat(/a)")
	l.Append(KindNT, 100, []byte{1, 2}, "memcpy_nt")
	l.Append(KindFence, 0, nil, "sfence")
	l.EndSyscall(0, "creat(/a)")
	l.Append(KindFlush, 64, make([]byte, 64), "flush_buffer")

	if l.Len() != 5 {
		t.Fatalf("len = %d, want 5", l.Len())
	}
	if e := l.At(1); e.Sys != 0 || e.Kind != KindNT || e.Seq != 1 {
		t.Fatalf("entry 1 = %+v", e)
	}
	if e := l.At(4); e.Sys != -1 {
		t.Fatalf("post-syscall entry stamped with sys %d, want -1", e.Sys)
	}
	if got := l.SyscallName(0); got != "creat(/a)" {
		t.Fatalf("syscall name = %q", got)
	}
	if got := l.SyscallName(7); got != "" {
		t.Fatalf("missing syscall name = %q, want empty", got)
	}
	if l.SyscallCount() != 1 {
		t.Fatalf("syscall count = %d", l.SyscallCount())
	}
}

func TestWrites(t *testing.T) {
	l := NewLog()
	l.Append(KindNT, 0, []byte{1}, "")
	l.Append(KindFence, 0, nil, "")
	l.Append(KindFlush, 0, []byte{2}, "")
	l.Append(KindStore, 0, []byte{3}, "")
	w := l.Writes(0, l.Len())
	if len(w) != 2 || w[0] != 0 || w[1] != 2 {
		t.Fatalf("writes = %v, want [0 2]", w)
	}
	if w := l.Writes(1, 2); len(w) != 0 {
		t.Fatalf("writes(1,2) = %v, want empty", w)
	}
}

func TestIsWrite(t *testing.T) {
	cases := map[Kind]bool{
		KindNT: true, KindFlush: true,
		KindFence: false, KindSyscallBegin: false, KindSyscallEnd: false, KindStore: false,
	}
	for k, want := range cases {
		if got := (Entry{Kind: k}).IsWrite(); got != want {
			t.Errorf("IsWrite(%v) = %v, want %v", k, got, want)
		}
	}
}

func TestApplyAndReplayAll(t *testing.T) {
	l := NewLog()
	l.Append(KindNT, 2, []byte{0xAA, 0xBB}, "")
	l.Append(KindStore, 0, []byte{0xFF}, "") // must be ignored
	l.Append(KindFlush, 0, []byte{0x11, 0x22}, "")
	img := make([]byte, 8)
	ReplayAll(img, l)
	want := []byte{0x11, 0x22, 0xAA, 0xBB, 0, 0, 0, 0}
	for i := range want {
		if img[i] != want[i] {
			t.Fatalf("img = %v, want %v", img, want)
		}
	}
}

func TestReplayOrderLastWriteWins(t *testing.T) {
	l := NewLog()
	l.Append(KindNT, 0, []byte{1}, "")
	l.Append(KindNT, 0, []byte{2}, "")
	img := make([]byte, 1)
	ReplayAll(img, l)
	if img[0] != 2 {
		t.Fatalf("img[0] = %d, want 2 (program order)", img[0])
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNT: "nt", KindFlush: "flush", KindFence: "fence",
		KindSyscallBegin: "syscall-begin", KindSyscallEnd: "syscall-end", KindStore: "store",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind formatting")
	}
}

func TestDumpContainsEntries(t *testing.T) {
	l := NewLog()
	l.BeginSyscall(3, "rename(a,b)")
	l.Append(KindNT, 42, []byte{1}, "memcpy_nt")
	d := l.Dump()
	if !strings.Contains(d, "rename(a,b)") || !strings.Contains(d, "off=42") {
		t.Fatalf("dump missing detail:\n%s", d)
	}
}

func TestEntryStringVariants(t *testing.T) {
	e := Entry{Seq: 1, Kind: KindFence, Sys: 2}
	if !strings.Contains(e.String(), "fence") {
		t.Fatal("fence entry string")
	}
	e = Entry{Seq: 0, Kind: KindSyscallBegin, Sys: 0, Name: "mkdir(/d)"}
	if !strings.Contains(e.String(), "mkdir(/d)") {
		t.Fatal("marker entry string")
	}
}
