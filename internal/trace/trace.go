// Package trace defines the write log that Chipmunk records while a
// workload runs. Each entry corresponds to one call of a centralized
// persistence function (non-temporal memcpy/memset, buffer flush, store
// fence) — the same function-level granularity the paper's Kprobe/Uprobe
// loggers capture — plus markers delimiting the system call that issued the
// surrounding writes.
//
// Function-level entries are the unit of crash-state construction: one
// MemcpyNT call is one logical in-flight write no matter how many cache
// lines it spans. This is the coalescing insight from §3.2 of the paper
// (a 1 KB file write is one logical write, not 128 8-byte stores).
package trace

import (
	"fmt"
	"strings"
)

// Kind is the type of a log entry.
type Kind uint8

const (
	// KindNT is a non-temporal store (memcpy_nt / memset_nt).
	KindNT Kind = iota
	// KindFlush is a cache-line write-back of a buffer.
	KindFlush
	// KindFence is a store fence; everything in flight becomes durable.
	KindFence
	// KindSyscallBegin marks the start of a system call in the workload.
	KindSyscallBegin
	// KindSyscallEnd marks the end of a system call.
	KindSyscallEnd
	// KindStore is a plain cached store. Only recorded in per-store tracing
	// mode (the Yat/Vinter-style ablation); ignored by the replayer, which
	// relies on KindFlush captures for durability.
	KindStore
)

func (k Kind) String() string {
	switch k {
	case KindNT:
		return "nt"
	case KindFlush:
		return "flush"
	case KindFence:
		return "fence"
	case KindSyscallBegin:
		return "syscall-begin"
	case KindSyscallEnd:
		return "syscall-end"
	case KindStore:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Entry is one recorded event.
type Entry struct {
	Seq  int    // position in the log
	Kind Kind   // event type
	Off  int64  // device offset (NT/Flush/Store)
	Data []byte // bytes that would persist (NT: stored bytes; Flush: capture)
	Sys  int    // index of the enclosing system call, -1 if outside any
	Name string // syscall name for markers, persistence fn name otherwise
}

// IsWrite reports whether the entry represents a durable-intent write that
// participates in crash-state construction.
func (e Entry) IsWrite() bool { return e.Kind == KindNT || e.Kind == KindFlush }

func (e Entry) String() string {
	switch e.Kind {
	case KindSyscallBegin, KindSyscallEnd:
		return fmt.Sprintf("#%d %s sys=%d %s", e.Seq, e.Kind, e.Sys, e.Name)
	case KindFence:
		return fmt.Sprintf("#%d fence sys=%d", e.Seq, e.Sys)
	default:
		return fmt.Sprintf("#%d %s off=%d len=%d sys=%d %s", e.Seq, e.Kind, e.Off, len(e.Data), e.Sys, e.Name)
	}
}

// Log is an append-only sequence of entries. The current syscall index is
// tracked so persistence-function probes can stamp entries without knowing
// about the executor. Entry data is copied into one log-owned arena rather
// than allocated per entry; a growth reallocation copies the arena prefix,
// so earlier entries' Data views stay valid and immutable.
type Log struct {
	entries []Entry
	arena   []byte
	curSys  int
}

// NewLog returns an empty log with no enclosing system call.
func NewLog() *Log {
	return &Log{curSys: -1}
}

// Reset empties the log for reuse, retaining its entry and arena storage.
// Callers must guarantee no reader still holds entries from the previous
// use.
func (l *Log) Reset() {
	l.entries = l.entries[:0]
	l.arena = l.arena[:0]
	l.curSys = -1
}

// Append adds an entry, assigning its sequence number and current syscall.
// The data bytes are copied, so callers may reuse their buffer immediately.
func (l *Log) Append(kind Kind, off int64, data []byte, name string) {
	var cp []byte
	if len(data) > 0 {
		start := len(l.arena)
		l.arena = append(l.arena, data...)
		cp = l.arena[start : start+len(data) : start+len(data)]
	}
	l.entries = append(l.entries, Entry{
		Seq:  len(l.entries),
		Kind: kind,
		Off:  off,
		Data: cp,
		Sys:  l.curSys,
		Name: name,
	})
}

// BeginSyscall records a syscall-begin marker. Index is the position of the
// call in the workload; name is a human-readable rendering for reports.
func (l *Log) BeginSyscall(index int, name string) {
	l.curSys = index
	l.Append(KindSyscallBegin, 0, nil, name)
}

// EndSyscall records a syscall-end marker and returns to "outside" state.
func (l *Log) EndSyscall(index int, name string) {
	l.Append(KindSyscallEnd, 0, nil, name)
	l.curSys = -1
}

// CurrentSyscall returns the syscall index subsequent entries are stamped
// with (-1 when outside a call).
func (l *Log) CurrentSyscall() int { return l.curSys }

// Len returns the number of entries.
func (l *Log) Len() int { return len(l.entries) }

// At returns entry i.
func (l *Log) At(i int) Entry { return l.entries[i] }

// Entries returns the backing slice; callers must not mutate it.
func (l *Log) Entries() []Entry { return l.entries }

// Writes returns the indices of durable-intent writes in [from, to).
func (l *Log) Writes(from, to int) []int {
	var out []int
	for i := from; i < to && i < len(l.entries); i++ {
		if l.entries[i].IsWrite() {
			out = append(out, i)
		}
	}
	return out
}

// SyscallName returns the recorded name of syscall index i, or "" if the
// log holds no marker for it.
func (l *Log) SyscallName(i int) string {
	for _, e := range l.entries {
		if e.Kind == KindSyscallBegin && e.Sys == i {
			return e.Name
		}
	}
	return ""
}

// SyscallCount returns one past the highest syscall index seen.
func (l *Log) SyscallCount() int {
	max := -1
	for _, e := range l.entries {
		if e.Sys > max {
			max = e.Sys
		}
	}
	return max + 1
}

// Dump renders the log for debugging and bug reports.
func (l *Log) Dump() string {
	var b strings.Builder
	for _, e := range l.entries {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Apply replays entry e onto img (durable-intent writes only).
func Apply(img []byte, e Entry) {
	if !e.IsWrite() {
		return
	}
	copy(img[e.Off:], e.Data)
}

// ReplayAll applies every durable-intent write in the log onto img in
// program order, producing the state an uninterrupted run persists. Fences
// are irrelevant here because all writes land.
func ReplayAll(img []byte, l *Log) {
	for _, e := range l.entries {
		Apply(img, e)
	}
}
