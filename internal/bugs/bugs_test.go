package bugs

import (
	"strings"
	"testing"
)

func TestRegistryHas23UniqueBugs(t *testing.T) {
	all := All()
	if len(all) != 23 {
		t.Fatalf("registry has %d bugs, want 23", len(all))
	}
	seen := map[ID]bool{}
	for _, b := range all {
		if seen[b.ID] {
			t.Fatalf("duplicate bug ID %d", b.ID)
		}
		seen[b.ID] = true
	}
}

func TestTable1RowCount25(t *testing.T) {
	// Table 1 has 25 rows: two bugs each affect two file systems.
	rows := 0
	for _, b := range All() {
		rows += len(b.FileSystems)
	}
	// The shared nova/nova-fortis implementation means NOVA bugs also list
	// nova-fortis; Table 1 counts those once. Count per the paper's own
	// accounting: unique-fix bugs per primary system.
	perFS := map[string]int{}
	for _, b := range All() {
		perFS[b.FileSystems[0]]++
	}
	// Paper: 8 NOVA, 4 NOVA-Fortis-only, 2 PMFS-only + 2 shared, 2 WineFS-only, 5 SplitFS.
	if perFS["nova"] != 8 {
		t.Errorf("nova bugs = %d, want 8", perFS["nova"])
	}
	if perFS["nova-fortis"] != 4 {
		t.Errorf("nova-fortis bugs = %d, want 4", perFS["nova-fortis"])
	}
	if perFS["pmfs"] != 4 { // 13, 14&15, 16, 17&18
		t.Errorf("pmfs-primary bugs = %d, want 4", perFS["pmfs"])
	}
	if perFS["winefs"] != 2 {
		t.Errorf("winefs-only bugs = %d, want 2", perFS["winefs"])
	}
	if perFS["splitfs"] != 5 {
		t.Errorf("splitfs bugs = %d, want 5", perFS["splitfs"])
	}
	_ = rows
}

func TestObservationCountsMatchTable2(t *testing.T) {
	var logic, inPlace, recovery, resilience, mid, short, aceMiss int
	for _, b := range All() {
		if b.Type == Logic {
			logic++
		}
		if b.InPlaceUpdate {
			inPlace++
		}
		if b.RecoveryRebuil {
			recovery++
		}
		if b.Resilience {
			resilience++
		}
		if b.NeedsMidCrash {
			mid++
		}
		if b.ShortWorkload {
			short++
		}
		if !b.ACEReachable {
			aceMiss++
		}
	}
	if logic != 19 {
		t.Errorf("logic bugs = %d, want 19 (Obs 1)", logic)
	}
	// Table 2 lists rows 4-7, 14, 15 (6 rows) for Obs 2; rows 14 and 15
	// are one unique bug affecting two systems, so 5 unique IDs.
	if inPlace != 5 {
		t.Errorf("in-place bugs = %d unique, want 5 (6 Table 2 rows)", inPlace)
	}
	if recovery != 9 {
		t.Errorf("recovery bugs = %d, want 9 (Obs 3)", recovery)
	}
	if resilience != 5 {
		t.Errorf("resilience bugs = %d, want 5 (Obs 4 lists 2, 9-12)", resilience)
	}
	if mid != 11 {
		t.Errorf("mid-syscall bugs = %d, want 11 (Obs 5)", mid)
	}
	if short != 23 {
		t.Errorf("short-workload bugs = %d, want 23 (Obs 6: all bugs reproduce on short workloads)", short)
	}
	if aceMiss != 4 {
		t.Errorf("ACE-unreachable bugs = %d, want 4 (§4.3)", aceMiss)
	}
}

func TestObservation7MinWrites(t *testing.T) {
	// Of the 11 mid-syscall bugs, 10 need only one replayed write and one
	// needs two (Obs 7).
	one, two := 0, 0
	for _, b := range All() {
		if !b.NeedsMidCrash {
			continue
		}
		switch b.MinWrites {
		case 1:
			one++
		case 2:
			two++
		default:
			t.Errorf("bug %d: mid-syscall with MinWrites=%d", b.ID, b.MinWrites)
		}
	}
	if one != 10 || two != 1 {
		t.Errorf("min-writes split = %d/%d, want 10/1", one, two)
	}
}

func TestLookup(t *testing.T) {
	b, ok := Lookup(NovaRenameInPlaceDelete)
	if !ok || b.ID != 4 || !strings.Contains(b.Consequence, "Rename") {
		t.Fatalf("lookup bug 4 = %+v, %v", b, ok)
	}
	if _, ok := Lookup(ID(999)); ok {
		t.Fatal("lookup of unknown ID succeeded")
	}
}

func TestForFS(t *testing.T) {
	nf := ForFS("nova-fortis")
	if len(nf) != 12 { // 8 NOVA bugs + 4 Fortis bugs
		t.Fatalf("nova-fortis bugs = %d, want 12", len(nf))
	}
	pm := ForFS("pmfs")
	if len(pm) != 4 {
		t.Fatalf("pmfs bugs = %d, want 4", len(pm))
	}
	if len(ForFS("ext4-dax")) != 0 {
		t.Fatal("ext4-dax should have no bugs")
	}
}

func TestSetOperations(t *testing.T) {
	s := Of(NovaRenameInPlaceDelete, PmfsJournalOOB)
	if !s.Has(NovaRenameInPlaceDelete) || s.Has(NovaLinkCountEarly) {
		t.Fatal("Of/Has wrong")
	}
	s2 := s.With(NovaLinkCountEarly)
	if !s2.Has(NovaLinkCountEarly) || s.Has(NovaLinkCountEarly) {
		t.Fatal("With not copy-on-write")
	}
	s3 := s2.Without(PmfsJournalOOB)
	if s3.Has(PmfsJournalOOB) || !s2.Has(PmfsJournalOOB) {
		t.Fatal("Without not copy-on-write")
	}
	if None().Has(NovaTailBeforeLink) {
		t.Fatal("None has bugs")
	}
	all := AllSet()
	if len(all.IDs()) != 23 {
		t.Fatalf("AllSet size = %d", len(all.IDs()))
	}
	ids := s.IDs()
	if len(ids) != 2 || ids[0] != 4 || ids[1] != 16 {
		t.Fatalf("IDs = %v", ids)
	}
	if got := s.String(); got != "{4,16}" {
		t.Fatalf("String = %q", got)
	}
	var nilSet Set
	if nilSet.Has(NovaTailBeforeLink) {
		t.Fatal("nil set has bugs")
	}
}

func TestTypeString(t *testing.T) {
	if Logic.String() != "Logic" || PM.String() != "PM" {
		t.Fatal("type strings")
	}
}

func TestTableRow(t *testing.T) {
	b, _ := Lookup(WriteNotSync)
	row := b.TableRow()
	if !strings.Contains(row, "pmfs,winefs") || !strings.Contains(row, "PM") {
		t.Fatalf("row = %q", row)
	}
}
