// Package bugs catalogues the 23 unique crash-consistency bugs from Table 1
// of the Chipmunk paper and the per-bug attributes behind the observations
// in Table 2. Each file-system implementation takes a Set of enabled bugs:
// the enabled path reproduces the published (buggy) algorithm, the disabled
// path reproduces the developers' fix. The Chipmunk engine knows nothing
// about these flags — it must rediscover every bug through its generic
// checks, which is the soundness claim this reproduction validates.
package bugs

import (
	"fmt"
	"sort"
	"strings"
)

// ID identifies a unique bug. Values track the row numbers of Table 1;
// rows 14&15 and 17&18 of the table are single bugs affecting two file
// systems and carry one ID each.
type ID int

// Bug IDs, named after their Table 1 rows.
const (
	// NovaTailBeforeLink (bug 1): inode-table log tail persisted before the
	// new log page's link is flushed; recovery scans garbage. Unmountable.
	NovaTailBeforeLink ID = 1
	// NovaInodeInitNoFlush (bug 2): newly initialized inode not flushed;
	// file unreadable and undeletable. PM bug.
	NovaInodeInitNoFlush ID = 2
	// NovaEntryAfterTail (bug 3): log entry written after tail update;
	// recovery reads an invalid entry. Unmountable.
	NovaEntryAfterTail ID = 3
	// NovaRenameInPlaceDelete (bug 4): rename removes the old dentry
	// in-place before the journal commits; crash loses the file entirely.
	NovaRenameInPlaceDelete ID = 4
	// NovaRenameOldSurvives (bug 5): rename persists the new dentry but a
	// crash before old-dentry invalidation leaves both names after recovery.
	NovaRenameOldSurvives ID = 5
	// NovaLinkCountEarly (bug 6): link bumps the inode link count in place
	// before the new dentry is durable.
	NovaLinkCountEarly ID = 6
	// NovaTruncateRebuildLoss (bug 7): DRAM-index rebuild after truncate
	// drops valid data pages. File data lost.
	NovaTruncateRebuildLoss ID = 7
	// NovaFallocUnfenced (bug 8): fallocate publishes the write entry tail
	// without fencing the entry. File data lost.
	NovaFallocUnfenced ID = 8
	// FortisCsumNoFlush (bug 9): NOVA-Fortis updates a checksum without
	// flushing it. Unreadable directory or data loss. PM bug.
	FortisCsumNoFlush ID = 9
	// FortisReplicaSkew (bug 10): replica inode not updated atomically with
	// the primary; mismatch makes the file undeletable.
	FortisReplicaSkew ID = 10
	// FortisDoubleFree (bug 11): truncate recovery deallocates blocks that
	// are already free.
	FortisDoubleFree ID = 11
	// FortisCsumStaleData (bug 12): truncate updates size before the data
	// checksum; mismatch makes the file unreadable.
	FortisCsumStaleData ID = 12
	// PmfsTruncateListNull (bug 13): truncate-list replay dereferences the
	// DRAM free list before it is rebuilt. Unmountable.
	PmfsTruncateListNull ID = 13
	// WriteNotSync (bugs 14 & 15, PMFS and WineFS): the final extent of a
	// data write is not flushed before return; write not synchronous. PM bug.
	WriteNotSync ID = 14
	// PmfsJournalOOB (bug 16): journal replay trusts an on-media length and
	// reads outside the journal area. Affects all system calls.
	PmfsJournalOOB ID = 16
	// NTTailNotFenced (bugs 17 & 18, PMFS and WineFS): the non-temporal
	// copy fast path skips the fence for sub-cache-line tails. Data lost.
	// PM bug. Requires non-8-byte-aligned writes — ACE cannot trigger it.
	NTTailNotFenced ID = 17
	// WinefsJournalIndex (bug 19): recovery indexes the per-CPU journal
	// array with the live CPU id instead of the stored id; journaled
	// updates lost. File unreadable and undeletable.
	WinefsJournalIndex ID = 19
	// WinefsStrictInPlace (bug 20): strict mode falls back to an in-place
	// data write for aligned extents, breaking write atomicity. Requires
	// unaligned/misfit writes to expose — ACE cannot trigger it.
	WinefsStrictInPlace ID = 20
	// SplitfsOplogUnfenced (bug 21): metadata operation-log entry not
	// fenced before the call returns; operation not synchronous.
	SplitfsOplogUnfenced ID = 21
	// SplitfsStagePerFD (bug 22): staged extents are tracked per file
	// descriptor; writes through a second FD clobber the first stage on
	// relink. Data lost. Requires two FDs on one file — ACE cannot trigger.
	SplitfsStagePerFD ID = 22
	// SplitfsRelinkSkip (bug 23): append-log replay skips entries whose
	// predecessor crossed a staging boundary. Data lost. Requires two FDs.
	SplitfsRelinkSkip ID = 23
	// SplitfsTailBeforeCsum (bug 24): op-log tail published before the
	// entry checksum; recovery silently drops ops. Not synchronous.
	SplitfsTailBeforeCsum ID = 24
	// SplitfsRenameOldSurvives (bug 25): logged rename replays the create
	// but a crash loses the delete of the old name.
	SplitfsRenameOldSurvives ID = 25
)

// Type classifies a bug per Table 1.
type Type uint8

const (
	// Logic bugs cannot be fixed by adding flushes or fences.
	Logic Type = iota
	// PM bugs are missing/misordered flushes or fences.
	PM
)

func (t Type) String() string {
	if t == PM {
		return "PM"
	}
	return "Logic"
}

// Info is the registry entry for a bug: the Table 1 row plus the Table 2
// observation attributes used by the analysis experiments.
type Info struct {
	ID          ID
	FileSystems []string // systems affected ("nova", "nova-fortis", ...)
	Consequence string   // Table 1 consequence text
	Syscalls    []string // affected system calls
	Type        Type

	// Table 2 observation attributes.
	InPlaceUpdate  bool // Obs 2: caused by an in-place update optimization
	RecoveryRebuil bool // Obs 3: in volatile-state rebuilding/recovery code
	Resilience     bool // Obs 4: introduced by resilience mechanisms
	NeedsMidCrash  bool // Obs 5: only exposed by a crash during a syscall
	ShortWorkload  bool // Obs 6: discoverable by an ACE workload (seq<=3)
	MinWrites      int  // Obs 7: smallest in-flight subset size that exposes it (0 = exposed by the empty subset / post-syscall state)

	// ACEReachable mirrors §4.3: 19 of 23 bugs are in ACE's pattern space;
	// the other four need unaligned writes or multiple FDs per file.
	ACEReachable bool
}

// registry holds every unique bug, ordered by ID.
var registry = []Info{
	{ID: NovaTailBeforeLink, FileSystems: []string{"nova", "nova-fortis"}, Consequence: "File system unmountable", Syscalls: []string{"all"}, Type: Logic, RecoveryRebuil: true, NeedsMidCrash: false, ShortWorkload: true, MinWrites: 1, ACEReachable: true},
	{ID: NovaInodeInitNoFlush, FileSystems: []string{"nova", "nova-fortis"}, Consequence: "File is unreadable and undeletable", Syscalls: []string{"mkdir", "creat"}, Type: PM, Resilience: true, ShortWorkload: true, MinWrites: 0, ACEReachable: true},
	{ID: NovaEntryAfterTail, FileSystems: []string{"nova", "nova-fortis"}, Consequence: "File system unmountable", Syscalls: []string{"write", "pwrite", "link", "unlink", "rename"}, Type: Logic, RecoveryRebuil: true, NeedsMidCrash: true, ShortWorkload: true, MinWrites: 1, ACEReachable: true},
	{ID: NovaRenameInPlaceDelete, FileSystems: []string{"nova", "nova-fortis"}, Consequence: "Rename atomicity broken (file disappears)", Syscalls: []string{"rename"}, Type: Logic, InPlaceUpdate: true, NeedsMidCrash: true, ShortWorkload: true, MinWrites: 1, ACEReachable: true},
	{ID: NovaRenameOldSurvives, FileSystems: []string{"nova", "nova-fortis"}, Consequence: "Rename atomicity broken (old file still present)", Syscalls: []string{"rename"}, Type: Logic, InPlaceUpdate: true, NeedsMidCrash: true, ShortWorkload: true, MinWrites: 1, ACEReachable: true},
	{ID: NovaLinkCountEarly, FileSystems: []string{"nova", "nova-fortis"}, Consequence: "Link count incremented before new file appears", Syscalls: []string{"link"}, Type: Logic, InPlaceUpdate: true, NeedsMidCrash: true, ShortWorkload: true, MinWrites: 1, ACEReachable: true},
	{ID: NovaTruncateRebuildLoss, FileSystems: []string{"nova", "nova-fortis"}, Consequence: "File data lost", Syscalls: []string{"truncate"}, Type: Logic, InPlaceUpdate: true, RecoveryRebuil: true, ShortWorkload: true, MinWrites: 0, ACEReachable: true},
	{ID: NovaFallocUnfenced, FileSystems: []string{"nova", "nova-fortis"}, Consequence: "File data lost", Syscalls: []string{"fallocate"}, Type: Logic, ShortWorkload: true, MinWrites: 0, ACEReachable: true},
	{ID: FortisCsumNoFlush, FileSystems: []string{"nova-fortis"}, Consequence: "Unreadable directory or file data loss", Syscalls: []string{"unlink", "rmdir", "truncate"}, Type: PM, Resilience: true, NeedsMidCrash: true, ShortWorkload: true, MinWrites: 1, ACEReachable: true},
	{ID: FortisReplicaSkew, FileSystems: []string{"nova-fortis"}, Consequence: "File is undeletable", Syscalls: []string{"write", "pwrite", "link", "rename"}, Type: Logic, Resilience: true, NeedsMidCrash: true, ShortWorkload: true, MinWrites: 1, ACEReachable: true},
	{ID: FortisDoubleFree, FileSystems: []string{"nova-fortis"}, Consequence: "FS attempts to deallocate free blocks", Syscalls: []string{"truncate"}, Type: Logic, Resilience: true, RecoveryRebuil: true, NeedsMidCrash: true, ShortWorkload: true, MinWrites: 1, ACEReachable: true},
	{ID: FortisCsumStaleData, FileSystems: []string{"nova-fortis"}, Consequence: "File is unreadable", Syscalls: []string{"truncate"}, Type: Logic, Resilience: true, NeedsMidCrash: true, ShortWorkload: true, MinWrites: 1, ACEReachable: true},
	{ID: PmfsTruncateListNull, FileSystems: []string{"pmfs"}, Consequence: "File system unmountable", Syscalls: []string{"truncate", "unlink", "rmdir", "rename"}, Type: Logic, RecoveryRebuil: true, NeedsMidCrash: true, ShortWorkload: true, MinWrites: 1, ACEReachable: true},
	{ID: WriteNotSync, FileSystems: []string{"pmfs", "winefs"}, Consequence: "Write is not synchronous", Syscalls: []string{"write", "pwrite"}, Type: PM, InPlaceUpdate: true, ShortWorkload: true, MinWrites: 0, ACEReachable: true},
	{ID: PmfsJournalOOB, FileSystems: []string{"pmfs"}, Consequence: "Out-of-bounds memory access", Syscalls: []string{"all"}, Type: Logic, RecoveryRebuil: true, ShortWorkload: true, MinWrites: 0, ACEReachable: true},
	{ID: NTTailNotFenced, FileSystems: []string{"pmfs", "winefs"}, Consequence: "File data lost", Syscalls: []string{"write", "pwrite"}, Type: PM, ShortWorkload: true, MinWrites: 0, ACEReachable: false},
	{ID: WinefsJournalIndex, FileSystems: []string{"winefs"}, Consequence: "File is unreadable and undeletable", Syscalls: []string{"all"}, Type: Logic, RecoveryRebuil: true, NeedsMidCrash: true, ShortWorkload: true, MinWrites: 1, ACEReachable: true},
	{ID: WinefsStrictInPlace, FileSystems: []string{"winefs"}, Consequence: "Data write is not atomic in strict mode", Syscalls: []string{"write", "pwrite"}, Type: Logic, NeedsMidCrash: true, ShortWorkload: true, MinWrites: 2, ACEReachable: false},
	{ID: SplitfsOplogUnfenced, FileSystems: []string{"splitfs"}, Consequence: "Operation is not synchronous", Syscalls: []string{"all metadata"}, Type: Logic, ShortWorkload: true, MinWrites: 0, ACEReachable: true},
	{ID: SplitfsStagePerFD, FileSystems: []string{"splitfs"}, Consequence: "File data lost", Syscalls: []string{"write", "pwrite"}, Type: Logic, ShortWorkload: true, MinWrites: 0, ACEReachable: false},
	{ID: SplitfsRelinkSkip, FileSystems: []string{"splitfs"}, Consequence: "File data lost", Syscalls: []string{"write", "pwrite"}, Type: Logic, ShortWorkload: true, MinWrites: 0, ACEReachable: false},
	{ID: SplitfsTailBeforeCsum, FileSystems: []string{"splitfs"}, Consequence: "Operation is not synchronous", Syscalls: []string{"all"}, Type: Logic, RecoveryRebuil: true, ShortWorkload: true, MinWrites: 0, ACEReachable: true},
	{ID: SplitfsRenameOldSurvives, FileSystems: []string{"splitfs"}, Consequence: "Rename atomicity broken (old file still present)", Syscalls: []string{"rename"}, Type: Logic, RecoveryRebuil: true, ShortWorkload: true, MinWrites: 0, ACEReachable: true},
}

// All returns every unique bug, ordered by ID.
func All() []Info {
	out := make([]Info, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the registry entry for id.
func Lookup(id ID) (Info, bool) {
	for _, b := range registry {
		if b.ID == id {
			return b, true
		}
	}
	return Info{}, false
}

// ForFS returns the bugs affecting the named file system.
func ForFS(name string) []Info {
	var out []Info
	for _, b := range registry {
		for _, f := range b.FileSystems {
			if f == name {
				out = append(out, b)
				break
			}
		}
	}
	return out
}

// Set is a collection of enabled (injected) bugs.
type Set map[ID]bool

// None returns an empty set: every code path takes the fixed branch.
func None() Set { return Set{} }

// AllSet returns a set with every registry bug enabled: the as-published
// file systems.
func AllSet() Set {
	s := Set{}
	for _, b := range registry {
		s[b.ID] = true
	}
	return s
}

// Of builds a set from explicit IDs.
func Of(ids ...ID) Set {
	s := Set{}
	for _, id := range ids {
		s[id] = true
	}
	return s
}

// Has reports whether id is enabled.
func (s Set) Has(id ID) bool { return s != nil && s[id] }

// With returns a copy of s with id enabled.
func (s Set) With(id ID) Set {
	out := Set{}
	for k, v := range s {
		out[k] = v
	}
	out[id] = true
	return out
}

// Without returns a copy of s with id disabled.
func (s Set) Without(id ID) Set {
	out := Set{}
	for k, v := range s {
		if k != id {
			out[k] = v
		}
	}
	return out
}

// IDs returns the enabled IDs in ascending order.
func (s Set) IDs() []ID {
	var out []ID
	for id, on := range s {
		if on {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s Set) String() string {
	ids := s.IDs()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// TableRow renders the Table 1 row for a bug.
func (b Info) TableRow() string {
	return fmt.Sprintf("%-2d | %-14s | %-50s | %-40s | %s",
		b.ID, strings.Join(b.FileSystems, ","), b.Consequence,
		strings.Join(b.Syscalls, ", "), b.Type)
}
