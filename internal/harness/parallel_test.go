package harness

import (
	"context"
	"fmt"
	"testing"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
)

func TestRunSuiteParallelMatchesSerial(t *testing.T) {
	sys, _ := SystemByName("nova")
	cfg := Options{Bugs: bugs.None(), Cap: 2}.ConfigFor(sys)
	suite := ace.Seq1()[:24]

	serial, sViol, err := Run(context.Background(), cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	parallel, pViol, err := Run(context.Background(), cfg, suite, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if serial.StatesChecked != parallel.StatesChecked ||
		serial.Workloads != parallel.Workloads ||
		serial.Fences != parallel.Fences {
		t.Fatalf("parallel stats diverge: serial %+v parallel %+v", serial, parallel)
	}
	if len(sViol) != len(pViol) {
		t.Fatalf("violations diverge: %d vs %d", len(sViol), len(pViol))
	}
}

func TestRunSuiteParallelFindsBugs(t *testing.T) {
	sys, _ := SystemByName("nova")
	cfg := Options{Bugs: bugs.Of(bugs.NovaRenameInPlaceDelete), Cap: 2}.ConfigFor(sys)
	_, viol, err := Run(context.Background(), cfg, ace.Seq1(), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) == 0 {
		t.Fatal("parallel sweep missed the rename bug")
	}
}

func TestRunSuiteParallelSingleWorkerFallback(t *testing.T) {
	sys, _ := SystemByName("nova")
	cfg := Options{Bugs: bugs.None(), Cap: 2}.ConfigFor(sys)
	c, _, err := Run(context.Background(), cfg, ace.Seq1()[:3], WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Workloads != 3 {
		t.Fatalf("workloads = %d", c.Workloads)
	}
}

// TestEngineDeterminism: two runs of the same workload produce identical
// statistics and identical report sequences — the engine has no hidden
// nondeterminism, which reproducer files and triage rely on.
func TestEngineDeterminism(t *testing.T) {
	sys, _ := SystemByName("winefs")
	cfg := Options{Bugs: bugs.Of(bugs.WinefsJournalIndex), Cap: 0}.ConfigFor(sys)
	w := TargetedWorkloads(bugs.WinefsJournalIndex)[0]
	summarize := func() string {
		res, err := core.RunContext(context.Background(), cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		out := fmt.Sprintf("states=%d fences=%d max=%d reports=%d|",
			res.StatesChecked, res.Fences, res.MaxInFlight, len(res.Violations))
		for _, v := range res.Violations {
			out += v.String() + "|"
		}
		return out
	}
	a, b := summarize(), summarize()
	if a != b {
		t.Fatalf("nondeterministic engine:\n%s\nvs\n%s", a, b)
	}
}
