package harness

import (
	"fmt"
	"testing"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
)

func TestRunSuiteParallelMatchesSerial(t *testing.T) {
	sys, _ := SystemByName("nova")
	cfg := ConfigFor(sys, bugs.None(), 2)
	suite := ace.Seq1()[:24]

	serial, sViol, err := RunSuite(cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	parallel, pViol, err := RunSuiteParallel(cfg, suite, 4)
	if err != nil {
		t.Fatal(err)
	}
	if serial.StatesChecked != parallel.StatesChecked ||
		serial.Workloads != parallel.Workloads ||
		serial.Fences != parallel.Fences {
		t.Fatalf("parallel stats diverge: serial %+v parallel %+v", serial, parallel)
	}
	if len(sViol) != len(pViol) {
		t.Fatalf("violations diverge: %d vs %d", len(sViol), len(pViol))
	}
}

func TestRunSuiteParallelFindsBugs(t *testing.T) {
	sys, _ := SystemByName("nova")
	cfg := ConfigFor(sys, bugs.Of(bugs.NovaRenameInPlaceDelete), 2)
	_, viol, err := RunSuiteParallel(cfg, ace.Seq1(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(viol) == 0 {
		t.Fatal("parallel sweep missed the rename bug")
	}
}

func TestRunSuiteParallelSingleWorkerFallback(t *testing.T) {
	sys, _ := SystemByName("nova")
	cfg := ConfigFor(sys, bugs.None(), 2)
	c, _, err := RunSuiteParallel(cfg, ace.Seq1()[:3], 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Workloads != 3 {
		t.Fatalf("workloads = %d", c.Workloads)
	}
}

// TestEngineDeterminism: two runs of the same workload produce identical
// statistics and identical report sequences — the engine has no hidden
// nondeterminism, which reproducer files and triage rely on.
func TestEngineDeterminism(t *testing.T) {
	sys, _ := SystemByName("winefs")
	cfg := ConfigFor(sys, bugs.Of(bugs.WinefsJournalIndex), 0)
	w := TargetedWorkloads(bugs.WinefsJournalIndex)[0]
	summarize := func() string {
		res, err := core.Run(cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		out := fmt.Sprintf("states=%d fences=%d max=%d reports=%d|",
			res.StatesChecked, res.Fences, res.MaxInFlight, len(res.Violations))
		for _, v := range res.Violations {
			out += v.String() + "|"
		}
		return out
	}
	a, b := summarize(), summarize()
	if a != b {
		t.Fatalf("nondeterministic engine:\n%s\nvs\n%s", a, b)
	}
}
