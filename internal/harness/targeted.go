package harness

import (
	"fmt"

	"chipmunk/internal/bugs"
	"chipmunk/internal/workload"
)

// TargetedWorkloads returns minimal reproduction workloads for a bug —
// the programs a developer would attach to the upstream bug report. The
// detection experiments verify that Chipmunk's generic checker flags at
// least one of them, and that the fixed system passes all of them.
func TargetedWorkloads(id bugs.ID) []workload.Workload {
	mk := func(name string, ops ...workload.Op) workload.Workload {
		return workload.Workload{Name: fmt.Sprintf("bug%d-%s", id, name), Ops: ops}
	}
	creat := func(p string) workload.Op { return workload.Op{Kind: workload.OpCreat, Path: p, FDSlot: -1} }
	write := func(p string, off, size int64, seed uint32) workload.Op {
		return workload.Op{Kind: workload.OpPwrite, Path: p, FDSlot: -1, Off: off, Size: size, Seed: seed}
	}

	switch id {
	case bugs.NovaTailBeforeLink:
		// Chain the root directory's scaled-down log pages.
		return []workload.Workload{mk("chain",
			creat("/f0"), creat("/f1"), creat("/f2"), creat("/f3"), creat("/f4"))}

	case bugs.NovaInodeInitNoFlush:
		return []workload.Workload{
			mk("creat", creat("/f0")),
			mk("mkdir", workload.Op{Kind: workload.OpMkdir, Path: "/d0"}),
		}

	case bugs.NovaEntryAfterTail:
		return []workload.Workload{mk("write",
			creat("/f0"), write("/f0", 0, 1024, 1))}

	case bugs.NovaRenameInPlaceDelete:
		// Figure 2's workload: same-directory rename.
		return []workload.Workload{mk("rename",
			creat("/f0"), write("/f0", 0, 64, 1),
			workload.Op{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"})}

	case bugs.NovaRenameOldSurvives:
		return []workload.Workload{mk("rename-xdir",
			creat("/f0"), write("/f0", 0, 64, 1),
			workload.Op{Kind: workload.OpMkdir, Path: "/d0"},
			workload.Op{Kind: workload.OpRename, Path: "/f0", Path2: "/d0/f1"})}

	case bugs.NovaLinkCountEarly:
		return []workload.Workload{mk("link",
			creat("/f0"),
			workload.Op{Kind: workload.OpLink, Path: "/f0", Path2: "/l0"})}

	case bugs.NovaTruncateRebuildLoss:
		return []workload.Workload{mk("truncate",
			creat("/f0"), write("/f0", 0, 6000, 1),
			workload.Op{Kind: workload.OpTruncate, Path: "/f0", Size: 4500})}

	case bugs.NovaFallocUnfenced:
		return []workload.Workload{mk("falloc",
			creat("/f0"), write("/f0", 0, 1000, 1),
			workload.Op{Kind: workload.OpFalloc, Path: "/f0", FDSlot: -1, Off: 0, Size: 4096})}

	case bugs.FortisCsumNoFlush:
		return []workload.Workload{mk("unlink",
			creat("/f0"),
			workload.Op{Kind: workload.OpUnlink, Path: "/f0"})}

	case bugs.FortisReplicaSkew:
		return []workload.Workload{mk("write",
			creat("/f0"), write("/f0", 0, 512, 1))}

	case bugs.FortisDoubleFree:
		return []workload.Workload{mk("truncate",
			creat("/f0"), write("/f0", 0, 6000, 1),
			workload.Op{Kind: workload.OpTruncate, Path: "/f0", Size: 100})}

	case bugs.FortisCsumStaleData:
		return []workload.Workload{mk("truncate-partial",
			creat("/f0"), write("/f0", 0, 6000, 1),
			workload.Op{Kind: workload.OpTruncate, Path: "/f0", Size: 4500})}

	case bugs.PmfsTruncateListNull:
		return []workload.Workload{
			mk("truncate",
				creat("/f0"), write("/f0", 0, 6000, 1),
				workload.Op{Kind: workload.OpTruncate, Path: "/f0", Size: 0}),
			mk("unlink",
				creat("/f0"), write("/f0", 0, 512, 1),
				workload.Op{Kind: workload.OpUnlink, Path: "/f0"}),
		}

	case bugs.WriteNotSync:
		return []workload.Workload{mk("write",
			creat("/f0"), write("/f0", 0, 512, 1))}

	case bugs.PmfsJournalOOB:
		// Enough journaled transactions to wrap the record area.
		return []workload.Workload{mk("wrap",
			creat("/f0"), creat("/f1"), creat("/f2"), creat("/f3"),
			creat("/f4"), creat("/f5"), creat("/f6"), creat("/f7"))}

	case bugs.NTTailNotFenced:
		// 13-byte write: unaligned tail (the fuzzer-only pattern).
		return []workload.Workload{mk("unaligned",
			creat("/f0"), write("/f0", 0, 13, 1))}

	case bugs.WinefsJournalIndex:
		// Ops rotate across CPUs; the later ones journal off CPU 0.
		return []workload.Workload{mk("percpu",
			creat("/f0"), creat("/f1"), creat("/f2"), creat("/f3"), creat("/f4"))}

	case bugs.WinefsStrictInPlace:
		// Sub-cache-line-offset EXTENDING write (fuzzer-only pattern): the
		// strict-mode fast publish can commit the new size without the new
		// block pointer.
		return []workload.Workload{mk("fastpublish",
			creat("/f0"), write("/f0", 0, 40, 1), write("/f0", 3, 100, 2))}

	case bugs.SplitfsOplogUnfenced:
		return []workload.Workload{mk("mkdir",
			workload.Op{Kind: workload.OpMkdir, Path: "/d0"})}

	case bugs.SplitfsStagePerFD:
		// Two descriptors writing one file (fuzzer-only).
		return []workload.Workload{mk("twofd",
			workload.Op{Kind: workload.OpCreat, Path: "/f0", FDSlot: 0},
			workload.Op{Kind: workload.OpOpen, Path: "/f0", FDSlot: 1},
			workload.Op{Kind: workload.OpPwrite, FDSlot: 0, Off: 0, Size: 64, Seed: 1},
			workload.Op{Kind: workload.OpPwrite, FDSlot: 1, Off: 64, Size: 64, Seed: 2})}

	case bugs.SplitfsRelinkSkip:
		// Interleaved overlapping writes through two descriptors.
		return []workload.Workload{mk("twofd-order",
			workload.Op{Kind: workload.OpCreat, Path: "/f0", FDSlot: 0},
			workload.Op{Kind: workload.OpOpen, Path: "/f0", FDSlot: 1},
			workload.Op{Kind: workload.OpPwrite, FDSlot: 1, Off: 0, Size: 64, Seed: 1},
			workload.Op{Kind: workload.OpPwrite, FDSlot: 0, Off: 0, Size: 64, Seed: 2})}

	case bugs.SplitfsTailBeforeCsum:
		return []workload.Workload{mk("mkdir",
			workload.Op{Kind: workload.OpMkdir, Path: "/d0"})}

	case bugs.SplitfsRenameOldSurvives:
		return []workload.Workload{mk("rename",
			creat("/f0"), write("/f0", 0, 64, 1),
			workload.Op{Kind: workload.OpRename, Path: "/f0", Path2: "/f1"})}
	}
	return nil
}
