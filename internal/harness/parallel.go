package harness

import (
	"context"

	"chipmunk/internal/core"
	"chipmunk/internal/workload"
)

// RunSuite runs a workload suite serially.
//
// Deprecated: use Run, which adds context cancellation, worker pools, and
// progress reporting behind one signature.
func RunSuite(cfg core.Config, suite []workload.Workload) (*Census, []core.Violation, error) {
	return Run(context.Background(), cfg, suite)
}

// RunSuiteParallel runs a workload suite across worker goroutines
// (workers <= 0 selects GOMAXPROCS).
//
// Deprecated: use Run with WithWorkers.
func RunSuiteParallel(cfg core.Config, suite []workload.Workload, workers int) (*Census, []core.Violation, error) {
	return Run(context.Background(), cfg, suite, WithWorkers(workers))
}
