package harness

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"chipmunk/internal/core"
	"chipmunk/internal/workload"
)

// RunSuiteParallel runs a workload suite across worker goroutines — the
// in-process analogue of the paper's practice of splitting seq-2/seq-3
// suites across 10-20 VMs (§4.2). Each workload's engine run is fully
// independent (own devices, own oracle), so parallelism is embarrassing.
// workers <= 0 selects GOMAXPROCS.
func RunSuiteParallel(cfg core.Config, suite []workload.Workload, workers int) (*Census, []core.Violation, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(suite) {
		workers = len(suite)
	}
	if workers <= 1 {
		return RunSuite(cfg, suite)
	}

	type partial struct {
		census Census
		viol   []core.Violation
		err    error

		inflightSum, inflightN int
	}
	start := time.Now()
	work := make(chan workload.Workload)
	parts := make([]partial, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(p *partial) {
			defer wg.Done()
			for w := range work {
				if p.err != nil {
					continue // drain
				}
				res, err := core.Run(cfg, w)
				if err != nil {
					p.err = fmt.Errorf("workload %s: %w", w.Name, err)
					continue
				}
				p.census.Workloads++
				p.census.StatesChecked += res.StatesChecked
				p.census.Fences += res.Fences
				if res.MaxInFlight > p.census.MaxInFlight {
					p.census.MaxInFlight = res.MaxInFlight
				}
				for n, cnt := range res.InFlightCounts {
					if n > 0 {
						p.inflightSum += n * cnt
						p.inflightN += cnt
					}
				}
				p.census.Violations += len(res.Violations)
				p.viol = append(p.viol, res.Violations...)
			}
		}(&parts[i])
	}
	for _, w := range suite {
		work <- w
	}
	close(work)
	wg.Wait()

	total := &Census{}
	var viol []core.Violation
	var inflightSum, inflightN int
	for i := range parts {
		p := &parts[i]
		if p.err != nil {
			return nil, nil, p.err
		}
		total.Workloads += p.census.Workloads
		total.StatesChecked += p.census.StatesChecked
		total.Fences += p.census.Fences
		if p.census.MaxInFlight > total.MaxInFlight {
			total.MaxInFlight = p.census.MaxInFlight
		}
		total.Violations += p.census.Violations
		viol = append(viol, p.viol...)
		inflightSum += p.inflightSum
		inflightN += p.inflightN
	}
	if inflightN > 0 {
		total.AvgInFlight = float64(inflightSum) / float64(inflightN)
	}
	total.Elapsed = time.Since(start)
	return total, viol, nil
}
