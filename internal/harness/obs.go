package harness

import (
	"fmt"
	"time"

	"chipmunk/internal/obs"
)

// This file is the CLIs' shared observability bundle: the Instrumentation
// that the -stats, -journal, and -debug-addr flags (bound via BindCLI in
// cli.go) resolve to. The three commands build one Instrumentation, apply
// it to their Options, and close it on exit.

// Instrumentation bundles one run's observability plumbing: the live
// metrics collector, the run journal, and the debug listener. Any field
// may be nil (that facility is off); all methods are nil-safe on the
// receiver too, so call sites need no guards.
type Instrumentation struct {
	Col     *obs.Collector
	Journal *obs.Journal
	Tracer  *obs.Tracer
	Debug   *obs.DebugServer
	stats   bool
}

// Apply wires the instrumentation into an Options value.
func (in *Instrumentation) Apply(o *Options) {
	if in == nil {
		return
	}
	o.Obs = in.Col
	o.Journal = in.Journal
	o.Tracer = in.Tracer
}

// EmitRun journals the run-level header event (suite size, target FS).
func (in *Instrumentation) EmitRun(fsName string, workloads int) {
	if in == nil {
		return
	}
	in.Journal.Emit(obs.Event{Type: "run", FS: fsName, Sys: -1, States: workloads})
}

// Progress publishes suite progress to the debug listener; shaped to slot
// into a WithProgress callback.
func (in *Instrumentation) Progress(done, total int, c Census) {
	if in == nil {
		return
	}
	in.Debug.SetProgress(obs.ProgressInfo{
		Done: done, Total: total,
		StatesChecked: c.StatesChecked, Violations: c.Violations,
	})
}

// RenderStats formats the -stats breakdown against the run's wall-clock
// time, or returns "" when -stats was not requested.
func (in *Instrumentation) RenderStats(wall time.Duration) string {
	if in == nil || !in.stats || in.Col == nil {
		return ""
	}
	snap := in.Col.Snapshot()
	return snap.Render(wall)
}

// RenderStatsSnapshot is RenderStats over an explicit snapshot — the
// distributed coordinator's collector never records anything (the workers
// did), so -serve renders the census's merged obs snapshot instead. Still
// gated on -stats; "" when off or snap is nil.
func (in *Instrumentation) RenderStatsSnapshot(snap *obs.Snapshot, wall time.Duration) string {
	if in == nil || !in.stats || snap == nil {
		return ""
	}
	return snap.Render(wall)
}

// Close flushes and closes the journal and shuts the debug listener down,
// reporting the first error.
func (in *Instrumentation) Close() error {
	if in == nil {
		return nil
	}
	var first error
	if err := in.Journal.Close(); err != nil && first == nil {
		first = fmt.Errorf("journal: %w", err)
	}
	if err := in.Debug.Close(); err != nil && first == nil {
		first = fmt.Errorf("debug server: %w", err)
	}
	return first
}
