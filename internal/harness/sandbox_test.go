package harness

import (
	"context"
	"flag"
	"testing"
	"time"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
)

// TestSandboxedCheckerMatchesDirect: with faults off, the sandboxed checker
// must be byte-identical to the pre-sandbox inline path across all seven
// systems, on violating runs (published bug sets) and clean ones alike.
func TestSandboxedCheckerMatchesDirect(t *testing.T) {
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			set := bugs.AllSet()
			suite := ace.Seq1()[:8]
			if sys.Weak {
				set = bugs.None()
				suite = ace.Seq1Dax()[:8]
			}
			direct := Options{Bugs: set, Cap: 2}.ConfigFor(sys)
			direct.DisableSandbox = true
			sandboxed := Options{Bugs: set, Cap: 2}.ConfigFor(sys)
			for _, w := range suite {
				rd, err := core.RunContext(context.Background(), direct, w)
				if err != nil {
					t.Fatalf("%s direct: %v", w.Name, err)
				}
				rs, err := core.RunContext(context.Background(), sandboxed, w)
				if err != nil {
					t.Fatalf("%s sandboxed: %v", w.Name, err)
				}
				compareResults(t, w.Name, rd, rs)
				if len(rs.Quarantined) != 0 || rs.RetriedChecks != 0 {
					t.Errorf("%s: well-behaved guest quarantined %d states, retried %d",
						w.Name, len(rs.Quarantined), rs.RetriedChecks)
				}
			}
		})
	}
}

// mountPanicFS panics on Mount (crash-state checks only); the record pass
// underneath is the real system.
type mountPanicFS struct{ vfs.FS }

func (f mountPanicFS) Mount() error { panic("hostile crash state") }

// TestCensusCarriesQuarantine: the suite-level census folds every run's
// quarantine ledger, in suite order regardless of worker count, and counts
// the states as checked — the census completes, nothing is silent.
func TestCensusCarriesQuarantine(t *testing.T) {
	cfg := core.Config{
		NewFS: func(pm *persist.PM) vfs.FS {
			return mountPanicFS{nova.New(pm, bugs.None())}
		},
		Cap:          2,
		CheckRetries: -1,
	}
	suite := ace.Seq1()[:4]
	serial, _, err := Run(context.Background(), cfg, suite)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Quarantined) == 0 {
		t.Fatal("hostile suite quarantined nothing")
	}
	if serial.StatesChecked == 0 {
		t.Fatal("census did not complete")
	}
	par, _, err := Run(context.Background(), cfg, suite, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Quarantined) != len(serial.Quarantined) {
		t.Fatalf("ledger size: parallel %d != serial %d", len(par.Quarantined), len(serial.Quarantined))
	}
	for i := range serial.Quarantined {
		if par.Quarantined[i].String() != serial.Quarantined[i].String() {
			t.Errorf("ledger entry %d out of suite order under workers\nserial:   %s\nparallel: %s",
				i, serial.Quarantined[i], par.Quarantined[i])
		}
	}
}

// TestBindCLISandboxOptions: -check-timeout and -exhaustive-limit plumb
// from the shared flag surface through Options into the engine Config.
func TestBindCLISandboxOptions(t *testing.T) {
	fl := flag.NewFlagSet("test", flag.ContinueOnError)
	spec := BindCLI(fl, CLIDefaults{FS: "nova"})
	if err := fl.Parse([]string{"-check-timeout", "250ms", "-exhaustive-limit", "10"}); err != nil {
		t.Fatal(err)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts.CheckTimeout != 250*time.Millisecond || opts.ExhaustiveLimit != 10 {
		t.Fatalf("opts = %+v", opts)
	}
	sys, cfg, err := opts.Resolve()
	if err != nil || sys.Name != "nova" {
		t.Fatalf("Resolve: %v, %v", sys.Name, err)
	}
	if cfg.CheckTimeout != 250*time.Millisecond || cfg.ExhaustiveLimit != 10 {
		t.Fatalf("cfg = %+v", cfg)
	}

	// Defaults: unparsed flags resolve to the engine defaults.
	fl2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	spec2 := BindCLI(fl2, CLIDefaults{FS: "nova"})
	if err := fl2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	opts2, err := spec2.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts2.CheckTimeout != core.DefaultCheckTimeout || opts2.ExhaustiveLimit != core.DefaultExhaustiveLimit {
		t.Fatalf("default opts = %+v", opts2)
	}
}
