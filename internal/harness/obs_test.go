package harness

import (
	"bytes"
	"context"
	"flag"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/obs"
)

// TestCensusObsMerged: Run merges every engine run's snapshot into
// Census.Obs, and the merged counters agree with the census's own fields
// regardless of suite-level worker count.
func TestCensusObsMerged(t *testing.T) {
	sys, _ := SystemByName("nova")
	suite := ace.Seq1()[:8]
	var serial, parallel *Census
	for _, j := range []int{1, 4} {
		opts := Options{Bugs: bugs.None(), Cap: 2, Obs: obs.New()}
		census, _, err := Run(context.Background(), opts.ConfigFor(sys), suite, WithWorkers(j))
		if err != nil {
			t.Fatal(err)
		}
		if census.Obs == nil {
			t.Fatal("Census.Obs nil with Options.Obs set")
		}
		if got := census.Obs.Count(obs.CtrWorkloads); got != int64(census.Workloads) {
			t.Fatalf("j=%d: obs workloads %d != census %d", j, got, census.Workloads)
		}
		if got := census.Obs.Count(obs.CtrStatesChecked); got != int64(census.StatesChecked) {
			t.Fatalf("j=%d: obs states %d != census %d", j, got, census.StatesChecked)
		}
		if j == 1 {
			serial = census
		} else {
			parallel = census
		}
	}
	// Only the deterministic counters are covered by the serial == parallel
	// contract; the materialization counters vary with pool scheduling.
	if !reflect.DeepEqual(serial.Obs.DeterministicCounters(), parallel.Obs.DeterministicCounters()) {
		t.Fatalf("census counters diverge by suite workers:\n j=1: %v\n j=4: %v",
			serial.Obs.DeterministicCounters(), parallel.Obs.DeterministicCounters())
	}
}

// TestSuiteJournalDeterministic: a whole suite's journal is the same
// canonical multiset whether workloads run serially or across 4 workers.
func TestSuiteJournalDeterministic(t *testing.T) {
	sys, _ := SystemByName("pmfs")
	suite := ace.Seq1()[:6]
	keys := map[int][]string{}
	for _, j := range []int{1, 4} {
		var buf bytes.Buffer
		jr := obs.NewJournal(&buf)
		opts := Options{Bugs: bugs.None(), Cap: 2, Journal: jr}
		if _, _, err := Run(context.Background(), opts.ConfigFor(sys), suite, WithWorkers(j)); err != nil {
			t.Fatal(err)
		}
		if err := jr.Flush(); err != nil {
			t.Fatal(err)
		}
		events, skipped, err := obs.ReadJournal(&buf)
		if err != nil || skipped != 0 {
			t.Fatalf("journal read: err=%v skipped=%d", err, skipped)
		}
		ks := make([]string, len(events))
		for i, e := range events {
			ks[i] = e.CanonicalKey()
		}
		sort.Strings(ks)
		keys[j] = ks
	}
	if len(keys[1]) == 0 {
		t.Fatal("empty suite journal")
	}
	if !reflect.DeepEqual(keys[1], keys[4]) {
		t.Fatalf("suite journal multisets diverge: j=1 has %d events, j=4 has %d",
			len(keys[1]), len(keys[4]))
	}
}

// TestSpanMultisetDeterministic: the canonical span multiset a suite emits
// is byte-identical between serial and 8-worker runs (engine-level AND
// suite-level parallelism) — the acceptance contract of the deterministic
// span layer. Span IDs are pure functions of work coordinates and all
// engine spans are coordinator-emitted, so only wall-clock fields (cleared
// by CanonicalKey) may differ.
func TestSpanMultisetDeterministic(t *testing.T) {
	sys, _ := SystemByName("pmfs")
	suite := ace.Seq1()[:6]
	multisets := map[int]string{}
	spanCount := 0
	for _, workers := range []int{1, 8} {
		var buf bytes.Buffer
		jr := obs.NewJournal(&buf)
		opts := Options{
			Bugs: bugs.None(), Cap: 2, Workers: workers,
			Journal: jr, Tracer: obs.NewTracer(jr, 0, 0),
		}
		if _, _, err := Run(context.Background(), opts.ConfigFor(sys), suite, WithWorkers(workers)); err != nil {
			t.Fatal(err)
		}
		if err := jr.Flush(); err != nil {
			t.Fatal(err)
		}
		events, skipped, err := obs.ReadJournal(&buf)
		if err != nil || skipped != 0 {
			t.Fatalf("journal read: err=%v skipped=%d", err, skipped)
		}
		var ks []string
		roots := 0
		for _, e := range events {
			if e.Type != "span" {
				continue
			}
			if e.Trace == "" || e.Span == "" {
				t.Fatalf("span event missing IDs: %+v", e)
			}
			if e.Name == "workload" && e.Parent == "" {
				roots++
			}
			ks = append(ks, e.CanonicalKey())
		}
		if roots != len(suite) {
			t.Fatalf("workers=%d: %d root spans, want %d", workers, roots, len(suite))
		}
		sort.Strings(ks)
		spanCount = len(ks)
		multisets[workers] = strings.Join(ks, "\n")
	}
	if spanCount == 0 {
		t.Fatal("no spans emitted")
	}
	if multisets[1] != multisets[8] {
		t.Fatalf("canonical span multisets diverge between workers=1 and workers=8:\n--- j=1 ---\n%s\n--- j=8 ---\n%s",
			multisets[1], multisets[8])
	}
}

// TestProgressNotSerializedBySlowCallback: a progress callback much slower
// than a workload must not gate the parallel run — coalescing means the
// callback fires far fewer times than there are workloads, while the final
// update (done == total) is still always delivered, and calls are
// serialized with monotonically non-decreasing done values.
func TestProgressNotSerializedBySlowCallback(t *testing.T) {
	sys, _ := SystemByName("nova")
	suite := ace.Seq1()[:12]
	const delay = 30 * time.Millisecond

	var mu sync.Mutex
	var calls []int
	inCallback := false
	cfg := Options{Bugs: bugs.None(), Cap: 1}.ConfigFor(sys)
	census, _, err := Run(context.Background(), cfg, suite,
		WithWorkers(4),
		WithProgress(func(done, total int, c Census) {
			mu.Lock()
			if inCallback {
				mu.Unlock()
				t.Error("progress callbacks overlap")
				return
			}
			inCallback = true
			calls = append(calls, done)
			mu.Unlock()
			time.Sleep(delay) // a deliberately slow printer
			mu.Lock()
			inCallback = false
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(calls) == 0 {
		t.Fatal("progress never delivered")
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] < calls[i-1] {
			t.Fatalf("done values regressed: %v", calls)
		}
	}
	if final := calls[len(calls)-1]; final != census.Workloads {
		t.Fatalf("final progress %d != completed workloads %d", final, census.Workloads)
	}
	// If the callback gated the workers, the run would have taken at least
	// one delay per workload; coalescing keeps the call count well below
	// the workload count when the callback is the bottleneck.
	if len(calls) >= len(suite) && census.Elapsed > time.Duration(len(suite))*delay {
		t.Fatalf("slow callback serialized the run: %d calls, %v elapsed", len(calls), census.Elapsed)
	}
}

// TestObsFlagsInstrument: the shared flag bundle resolves to a working
// Instrumentation and Apply threads it into Options.
func TestObsFlagsInstrument(t *testing.T) {
	fl := flag.NewFlagSet("test", flag.ContinueOnError)
	spec := BindCLI(fl, CLIDefaults{})
	journal := t.TempDir() + "/run.jsonl"
	if err := fl.Parse([]string{"-stats", "-journal", journal, "-debug-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	in, err := spec.Instrument()
	if err != nil {
		t.Fatal(err)
	}
	if in.Col == nil || in.Journal == nil || in.Debug == nil {
		t.Fatalf("instrumentation incomplete: %+v", in)
	}
	if in.Debug.Addr() == "" {
		t.Fatal("debug listener has no address")
	}
	var o Options
	in.Apply(&o)
	if o.Obs != in.Col || o.Journal != in.Journal {
		t.Fatal("Apply did not thread the instrumentation")
	}
	in.EmitRun("nova", 3)
	in.Col.Inc(obs.CtrStatesChecked)
	if s := in.RenderStats(time.Second); s == "" {
		t.Fatal("RenderStats empty with -stats set")
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	events, skipped, err := obs.ReadJournalFile(journal)
	if err != nil || skipped != 0 || len(events) != 1 || events[0].Type != "run" {
		t.Fatalf("journal after close: events=%v skipped=%d err=%v", events, skipped, err)
	}

	// All facilities off: Instrument still returns a safe bundle.
	fl2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	spec2 := BindCLI(fl2, CLIDefaults{})
	if err := fl2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	off, err := spec2.Instrument()
	if err != nil {
		t.Fatal(err)
	}
	if off.Col != nil || off.Journal != nil || off.Debug != nil {
		t.Fatal("disabled instrumentation not empty")
	}
	if s := off.RenderStats(time.Second); s != "" {
		t.Fatalf("RenderStats with everything off = %q", s)
	}
	var o2 Options
	off.Apply(&o2)
	if o2.Obs != nil || o2.Journal != nil {
		t.Fatal("Apply leaked non-nil sinks")
	}
	if err := off.Close(); err != nil {
		t.Fatal(err)
	}
}
