package harness

import (
	"context"
	"testing"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
)

// TestSeq2SweepFixedSystemsClean is the exhaustive no-false-positive sweep:
// every fixed strong system runs the ENTIRE ACE seq-2 suite (3136
// workloads) and must produce zero violations across every crash state.
// This is the long-running counterpart of TestFixedSystemsClean and the
// reproduction's strongest soundness statement; the paper's equivalent is
// that Chipmunk reports no bugs on patched systems.
//
// Runtime is minutes per system; skipped in -short mode (the regular suite
// covers seq-1 samples).
func TestSeq2SweepFixedSystemsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("seq-2 sweep takes minutes; run without -short")
	}
	suite := ace.Seq2()
	for _, sys := range Systems() {
		if sys.Weak {
			continue
		}
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			cfg := Options{Bugs: bugs.None(), Cap: 2}.ConfigFor(sys)
			c, viol, err := Run(context.Background(), cfg, suite, WithWorkers(0)) // all cores
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range viol {
				if i > 5 {
					t.Fatalf("... and %d more", len(viol)-5)
				}
				t.Errorf("false positive: %s", v)
			}
			t.Logf("%s: %d workloads, %d crash states, %v",
				sys.Name, c.Workloads, c.StatesChecked, c.Elapsed)
		})
	}
}

// TestSeq1SweepWeakSystemsClean: the full DAX-mode seq-1 suite against both
// weak systems.
func TestSeq1SweepWeakSystemsClean(t *testing.T) {
	suite := ace.Seq1Dax()
	for _, name := range []string{"ext4-dax", "xfs-dax"} {
		sys, _ := SystemByName(name)
		cfg := Options{Bugs: bugs.None(), Cap: 2}.ConfigFor(sys)
		_, viol, err := Run(context.Background(), cfg, suite)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range viol {
			t.Errorf("%s false positive: %s", name, v)
		}
	}
}
