package harness

import (
	"context"
	"strings"
	"testing"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
)

func TestRunTable1AllFound(t *testing.T) {
	if testing.Short() {
		t.Skip("Table 1 runs exhaustive targeted detection for all 23 bugs; slow in -short mode")
	}
	rows, err := RunTable1(DetectOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 23 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.Detection.Found {
			t.Errorf("bug %d not found", r.Bug.ID)
		}
	}
	rendered := RenderTable1(rows)
	if !strings.Contains(rendered, "Rename atomicity broken") || strings.Contains(rendered, " NO ") {
		t.Fatalf("table rendering wrong:\n%s", rendered)
	}
}

func TestRunTable2MatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("Table 2 re-measures every bug at several caps; slow in -short mode")
	}
	t2, err := RunTable2()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(t2.LogicBugs); got != 19 {
		t.Errorf("logic bugs = %d, want 19", got)
	}
	if got := len(t2.MidSyscallMeasured); got != 11 {
		t.Errorf("measured mid-syscall bugs = %d, want 11 (got %v)", got, t2.MidSyscallMeasured)
	}
	// Obs 7: of the measured mid-syscall bugs, 10 need cap 1 and one needs 2.
	one, two := 0, 0
	for _, c := range t2.MinWritesMeasured {
		switch c {
		case 1:
			one++
		case 2:
			two++
		}
	}
	if one != 10 || two != 1 {
		t.Errorf("measured min-writes = %d/%d, want 10/1 (%v)", one, two, t2.MinWritesMeasured)
	}
	// The measured mid-syscall set must equal the registry's classification.
	want := map[bugs.ID]bool{}
	for _, info := range bugs.All() {
		if info.NeedsMidCrash {
			want[info.ID] = true
		}
	}
	for _, id := range t2.MidSyscallMeasured {
		if !want[id] {
			t.Errorf("bug %d measured mid-syscall but not classified so", id)
		}
		delete(want, id)
	}
	for id := range want {
		t.Errorf("bug %d classified mid-syscall but found post-only", id)
	}
	if out := t2.Render(); !strings.Contains(out, "in-place") && !strings.Contains(out, "In-place") && !strings.Contains(out, "in-DRAM") {
		t.Errorf("render missing content:\n%s", out)
	}
}

// TestACEFindsReachableBugsQuickly: every ACE-reachable bug is discovered
// within the seq-1 + seq-2 prefix (bounded for test time).
func TestACEFindsReachableBugsQuickly(t *testing.T) {
	if testing.Short() {
		t.Skip("ACE scan is slow in -short mode")
	}
	for _, info := range bugs.All() {
		if !info.ACEReachable {
			continue
		}
		det, err := DetectWithACE(info.ID, 400, DetectOptions{Cap: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !det.Found {
			t.Errorf("ACE-reachable bug %d not found within 400 workloads", info.ID)
		}
	}
}

// TestACEMissesUnreachableBugs: the four fuzzer-only bugs survive an ACE
// prefix scan (§4.3): unaligned writes and two-FD patterns are outside
// ACE's lattice.
func TestACEMissesUnreachableBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("ACE scan is slow in -short mode")
	}
	for _, info := range bugs.All() {
		if info.ACEReachable {
			continue
		}
		det, err := DetectWithACE(info.ID, 300, DetectOptions{Cap: 2})
		if err != nil {
			t.Fatal(err)
		}
		if det.Found {
			t.Errorf("ACE found supposedly unreachable bug %d via %s", info.ID, det.Via)
		}
	}
}

// TestFuzzerFindsACEUnreachableBugs: the fuzzer reaches all four (§4.3).
func TestFuzzerFindsACEUnreachableBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing is slow in -short mode")
	}
	for _, info := range bugs.All() {
		if info.ACEReachable {
			continue
		}
		det, err := DetectWithFuzzer(info.ID, 42, 600)
		if err != nil {
			t.Fatal(err)
		}
		if !det.Found {
			t.Errorf("fuzzer did not find ACE-unreachable bug %d in 600 execs", info.ID)
		}
	}
}

func TestInFlightCensusMatchesPaperShape(t *testing.T) {
	census, err := InFlightCensus()
	if err != nil {
		t.Fatal(err)
	}
	if len(census) != 5 {
		t.Fatalf("census systems = %d", len(census))
	}
	for name, c := range census {
		if c.Workloads == 0 || c.Fences == 0 {
			t.Errorf("%s: empty census %+v", name, c)
		}
		// §3.2: small in-flight sets for metadata ops (average ~3, max ~10;
		// we accept the same order of magnitude).
		if c.AvgInFlight > 8 {
			t.Errorf("%s: avg in-flight %f too large for metadata ops", name, c.AvgInFlight)
		}
		if c.MaxInFlight > 20 {
			t.Errorf("%s: max in-flight %d too large", name, c.MaxInFlight)
		}
	}
}

func TestRunSuiteCleanOnFixedSeq1Sample(t *testing.T) {
	// Fixed NOVA over the first 20 seq-1 workloads: no violations.
	sys, _ := SystemByName("nova")
	cfg := Options{Bugs: bugs.None(), Cap: 0}.ConfigFor(sys)
	c, viol, err := Run(context.Background(), cfg, ace.Seq1()[:20])
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range viol {
		t.Errorf("false positive: %s", v)
	}
	if c.StatesChecked == 0 {
		t.Fatal("no states checked")
	}
}

func TestCurveAndRender(t *testing.T) {
	pts := []DiscoveryPoint{
		{Bug: 1, Found: true, Elapsed: 10},
		{Bug: 2, Found: true, Elapsed: 5},
		{Bug: 3, Found: false},
	}
	c := Curve(pts)
	if len(c) != 2 || c[0].Bugs != 1 || c[1].Cumulative != 15 {
		t.Fatalf("curve = %+v", c)
	}
	out := RenderFig3(c, c)
	if !strings.Contains(out, "ACE") || !strings.Contains(out, "Fuzzer") {
		t.Fatalf("render = %s", out)
	}
}

func TestSystemLookup(t *testing.T) {
	if _, err := SystemByName("nova"); err != nil {
		t.Fatal(err)
	}
	if _, err := SystemByName("nope"); err == nil {
		t.Fatal("unknown system accepted")
	}
	if len(Systems()) != 7 {
		t.Fatalf("systems = %d, want 7 (as §4.1)", len(Systems()))
	}
	info, _ := bugs.Lookup(bugs.WriteNotSync)
	sys, err := BugSystem(info)
	if err != nil || sys.Name != "pmfs" {
		t.Fatalf("BugSystem = %v, %v", sys.Name, err)
	}
}

func TestWeakSystemsCleanOnDaxSample(t *testing.T) {
	for _, name := range []string{"ext4-dax", "xfs-dax"} {
		sys, _ := SystemByName(name)
		cfg := core.Config{NewFS: sys.Factory(bugs.None())}
		_, viol, err := Run(context.Background(), cfg, ace.Seq1Dax()[:30])
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range viol {
			t.Errorf("%s false positive: %s", name, v)
		}
	}
}
