package harness

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// --- Table 1: the bug-detection matrix -----------------------------------

// Table1Row pairs a bug with its detection outcome.
type Table1Row struct {
	Bug       bugs.Info
	Detection Detection
}

// RunTable1 verifies every Table 1 bug with its targeted workloads and
// renders the matrix.
func RunTable1(opts DetectOptions) ([]Table1Row, error) {
	var rows []Table1Row
	for _, info := range bugs.All() {
		det, err := DetectWithTargeted(info.ID, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{Bug: info, Detection: det})
	}
	return rows, nil
}

// RenderTable1 formats the matrix like the paper's Table 1, with the
// detection outcome appended.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-12s %-50s %-34s %-6s %-10s %s\n",
		"Bug", "File system", "Consequence", "Affected system calls", "Type", "Detected", "Detected as")
	fmt.Fprintln(&b, strings.Repeat("-", 130))
	for _, r := range rows {
		found := "NO"
		as := "-"
		if r.Detection.Found {
			found = "yes"
			as = fmt.Sprintf("%s (%s)", r.Detection.Kind, r.Detection.Phase)
		}
		fmt.Fprintf(&b, "%-3d %-12s %-50s %-34s %-6s %-10s %s\n",
			r.Bug.ID, r.Bug.FileSystems[0], r.Bug.Consequence,
			strings.Join(r.Bug.Syscalls, ", "), r.Bug.Type, found, as)
	}
	return b.String()
}

// --- Table 2: observations ------------------------------------------------

// Table2 holds the measured observation data.
type Table2 struct {
	LogicBugs      []bugs.ID
	InPlaceBugs    []bugs.ID
	RecoveryBugs   []bugs.ID
	ResilienceBugs []bugs.ID
	// MidSyscallMeasured: bugs invisible when crash points are restricted
	// to syscall boundaries — measured, not read from the registry.
	MidSyscallMeasured []bugs.ID
	// MinWritesMeasured: for mid-syscall bugs, the smallest replay cap that
	// exposes them (Observation 7).
	MinWritesMeasured map[bugs.ID]int
	// ShortWorkload: all bugs reproduce on <= 3-op core workloads by
	// construction of the targeted set; recorded for the rendering.
	ShortWorkload []bugs.ID
}

// RunTable2 measures the Table 2 observations empirically.
func RunTable2() (*Table2, error) {
	t2 := &Table2{MinWritesMeasured: map[bugs.ID]int{}}
	for _, info := range bugs.All() {
		if info.Type == bugs.Logic {
			t2.LogicBugs = append(t2.LogicBugs, info.ID)
		}
		if info.InPlaceUpdate {
			t2.InPlaceBugs = append(t2.InPlaceBugs, info.ID)
		}
		if info.RecoveryRebuil {
			t2.RecoveryBugs = append(t2.RecoveryBugs, info.ID)
		}
		if info.Resilience {
			t2.ResilienceBugs = append(t2.ResilienceBugs, info.ID)
		}
		t2.ShortWorkload = append(t2.ShortWorkload, info.ID)

		// Measure the mid-syscall requirement.
		postOnly, err := DetectWithTargeted(info.ID, DetectOptions{PostOnly: true})
		if err != nil {
			return nil, err
		}
		if !postOnly.Found {
			t2.MidSyscallMeasured = append(t2.MidSyscallMeasured, info.ID)
			// Measure the smallest sufficient replay cap.
			for cap := 1; cap <= 3; cap++ {
				det, err := DetectWithTargeted(info.ID, DetectOptions{Cap: cap})
				if err != nil {
					return nil, err
				}
				if det.Found {
					t2.MinWritesMeasured[info.ID] = cap
					break
				}
			}
		}
	}
	return t2, nil
}

func idList(ids []bugs.ID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return strings.Join(parts, ", ")
}

// Render formats the measured Table 2.
func (t2 *Table2) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-72s %s\n", "Observation", "Associated bugs (measured)")
	fmt.Fprintln(&b, strings.Repeat("-", 110))
	fmt.Fprintf(&b, "%-72s %s\n", "Many bugs are logic/design issues, not PM programming errors.", idList(t2.LogicBugs))
	fmt.Fprintf(&b, "%-72s %s\n", "The complexity of performing in-place updates leads to bugs.", idList(t2.InPlaceBugs))
	fmt.Fprintf(&b, "%-72s %s\n", "Recovery related to rebuilding in-DRAM state is a source of bugs.", idList(t2.RecoveryBugs))
	fmt.Fprintf(&b, "%-72s %s\n", "Complex resilience features can introduce crash consistency bugs.", idList(t2.ResilienceBugs))
	fmt.Fprintf(&b, "%-72s %s\n", "Many can only be exposed by simulating crashes during system calls.", idList(t2.MidSyscallMeasured))
	fmt.Fprintf(&b, "%-72s %s\n", "Short workloads were sufficient to expose many crash consistency bugs.", idList(t2.ShortWorkload))
	one, two := 0, 0
	for _, c := range t2.MinWritesMeasured {
		switch c {
		case 1:
			one++
		case 2:
			two++
		}
	}
	fmt.Fprintf(&b, "%-72s %d bugs with 1 write, %d with 2\n",
		"Many bugs are exposed by replaying a few small writes.", one, two)
	return b.String()
}

// --- Figure 3: cumulative discovery time, ACE vs fuzzer -------------------

// DiscoveryPoint is one bug's first detection by a generator.
type DiscoveryPoint struct {
	Bug       bugs.ID
	Found     bool
	Workloads int
	States    int
	Elapsed   time.Duration
}

// Fig3ACE measures, per bug, how long the systematic ACE scan takes to find
// it (maxPerBug bounds the scan; unreachable bugs exhaust the budget).
func Fig3ACE(maxPerBug int, opts DetectOptions) ([]DiscoveryPoint, error) {
	var out []DiscoveryPoint
	for _, info := range bugs.All() {
		det, err := DetectWithACE(info.ID, maxPerBug, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, DiscoveryPoint{
			Bug: info.ID, Found: det.Found, Workloads: det.Workloads,
			States: det.StatesChecked, Elapsed: det.Elapsed,
		})
	}
	return out, nil
}

// Fig3Fuzz measures per-bug discovery with the fuzzer.
func Fig3Fuzz(seed int64, maxExecs int) ([]DiscoveryPoint, error) {
	var out []DiscoveryPoint
	for _, info := range bugs.All() {
		det, err := DetectWithFuzzer(info.ID, seed+int64(info.ID), maxExecs)
		if err != nil {
			return nil, err
		}
		out = append(out, DiscoveryPoint{
			Bug: info.ID, Found: det.Found, Workloads: det.Workloads,
			States: det.StatesChecked, Elapsed: det.Elapsed,
		})
	}
	return out, nil
}

// Curve turns per-bug discovery points into the cumulative Figure 3 series:
// (bugs found, cumulative time), ordered by discovery time.
func Curve(points []DiscoveryPoint) []struct {
	Bugs       int
	Cumulative time.Duration
} {
	var found []DiscoveryPoint
	for _, p := range points {
		if p.Found {
			found = append(found, p)
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].Elapsed < found[j].Elapsed })
	out := make([]struct {
		Bugs       int
		Cumulative time.Duration
	}, len(found))
	var cum time.Duration
	for i, p := range found {
		cum += p.Elapsed
		out[i].Bugs = i + 1
		out[i].Cumulative = cum
	}
	return out
}

// RenderFig3 formats the two curves side by side.
func RenderFig3(aceCurve, fuzzCurve []struct {
	Bugs       int
	Cumulative time.Duration
}) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-16s %-16s\n", "#bugs", "ACE cum. time", "Fuzzer cum. time")
	fmt.Fprintln(&b, strings.Repeat("-", 42))
	n := len(aceCurve)
	if len(fuzzCurve) > n {
		n = len(fuzzCurve)
	}
	for i := 0; i < n; i++ {
		a, f := "-", "-"
		if i < len(aceCurve) {
			a = aceCurve[i].Cumulative.String()
		}
		if i < len(fuzzCurve) {
			f = fuzzCurve[i].Cumulative.String()
		}
		fmt.Fprintf(&b, "%-6d %-16s %-16s\n", i+1, a, f)
	}
	return b.String()
}

// --- §3.2 census: in-flight writes and suite statistics -------------------

// Census aggregates engine statistics across a suite of workloads.
type Census struct {
	System        string
	Workloads     int
	StatesChecked int
	// StatesDeduped counts crash states skipped because their replayed
	// image was identical to an already-checked state at the same crash
	// point; TruncatedFences counts fences whose exhaustive enumeration
	// fell back to the safety cap. Both are reported, never silent.
	StatesDeduped   int
	TruncatedFences int
	Fences          int
	MaxInFlight     int
	// InFlightSum and InFlightN are the raw accumulators behind
	// AvgInFlight (sum of nonzero in-flight counts, weighted by how often
	// each size occurred, and the number of observations). They are
	// exported so a distributed campaign can fold per-shard censuses and
	// recompute the exact same average the serial run reports — merging
	// the float directly would not be associative.
	InFlightSum int
	InFlightN   int
	AvgInFlight float64
	Violations  int
	// Quarantined is the suite-wide quarantine ledger: crash states whose
	// check panicked or hung deterministically inside the sandbox. Entries
	// appear in suite order regardless of worker count, and every
	// quarantined state is also counted as a VPanic/VTimeout violation —
	// the census completes, nothing is silently dropped.
	Quarantined []core.Quarantine
	// SuppressedQuarantine counts quarantined states past the per-run
	// ledger cap — reported, never silent.
	SuppressedQuarantine int
	// RetriedChecks counts checks that succeeded only after a sandbox
	// retry (transient failures, e.g. pool pressure).
	RetriedChecks int
	// Obs is the merged per-stage metrics snapshot across the suite's
	// engine runs — nil unless Config.Obs was set. Merging is commutative
	// (sums, maxima, histogram-bucket adds), so serial and parallel runs
	// of the same suite agree on every counter.
	Obs     *obs.Snapshot
	Elapsed time.Duration
}

// InFlightCensus measures the average and maximum in-flight write counts
// for metadata operations across the strong fixed systems — the §3.2
// numbers (paper: average 3, maximum 10).
func InFlightCensus() (map[string]*Census, error) {
	suite := metadataSeq1()
	out := map[string]*Census{}
	for _, sys := range Systems() {
		if sys.Weak {
			continue
		}
		cfg := Options{Bugs: bugs.None(), Cap: 2}.ConfigFor(sys)
		c, _, err := Run(context.Background(), cfg, suite)
		if err != nil {
			return nil, err
		}
		c.System = sys.Name
		out[sys.Name] = c
	}
	return out, nil
}

// metadataSeq1 selects the seq-1 workloads whose core op is metadata.
func metadataSeq1() []workload.Workload {
	var out []workload.Workload
	for i, v := range ace.Variants() {
		switch v.Op.Kind {
		case workload.OpCreat, workload.OpMkdir, workload.OpLink,
			workload.OpUnlink, workload.OpRename, workload.OpRmdir, workload.OpRemove:
			out = append(out, ace.Seq1()[i])
		}
	}
	return out
}
