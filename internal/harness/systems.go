// Package harness wires the Chipmunk engine to the file systems under test
// and drives the paper's experiments: the Table 1 bug-detection matrix, the
// Table 2 observation measurements, the Figure 3 ACE-vs-fuzzer discovery
// comparison, and the §3.2/§5.1 census numbers.
package harness

import (
	"fmt"

	"chipmunk/internal/bugs"
	"chipmunk/internal/fs/extdax"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/fs/pmfs"
	"chipmunk/internal/fs/splitfs"
	"chipmunk/internal/fs/winefs"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
)

// System describes one target file system.
type System struct {
	Name string
	// Weak marks fsync-gated systems (crash points after fsync only).
	Weak bool
	// Factory builds an instance with the given injected bug set.
	Factory func(set bugs.Set) func(pm *persist.PM) vfs.FS
}

// Systems returns the seven systems of §4.1 in the paper's order.
func Systems() []System {
	return []System{
		{Name: "nova", Factory: func(set bugs.Set) func(pm *persist.PM) vfs.FS {
			return func(pm *persist.PM) vfs.FS { return nova.New(pm, set) }
		}},
		{Name: "nova-fortis", Factory: func(set bugs.Set) func(pm *persist.PM) vfs.FS {
			return func(pm *persist.PM) vfs.FS { return nova.New(pm, set, nova.WithFortis()) }
		}},
		{Name: "pmfs", Factory: func(set bugs.Set) func(pm *persist.PM) vfs.FS {
			return func(pm *persist.PM) vfs.FS { return pmfs.New(pm, set) }
		}},
		{Name: "winefs", Factory: func(set bugs.Set) func(pm *persist.PM) vfs.FS {
			return func(pm *persist.PM) vfs.FS { return winefs.New(pm, set) }
		}},
		{Name: "splitfs", Factory: func(set bugs.Set) func(pm *persist.PM) vfs.FS {
			return func(pm *persist.PM) vfs.FS { return splitfs.New(pm, set) }
		}},
		{Name: "ext4-dax", Weak: true, Factory: func(set bugs.Set) func(pm *persist.PM) vfs.FS {
			return func(pm *persist.PM) vfs.FS { return extdax.New(pm, extdax.Ext4) }
		}},
		{Name: "xfs-dax", Weak: true, Factory: func(set bugs.Set) func(pm *persist.PM) vfs.FS {
			return func(pm *persist.PM) vfs.FS { return extdax.New(pm, extdax.XFS) }
		}},
	}
}

// SystemByName looks up a system.
func SystemByName(name string) (System, error) {
	for _, s := range Systems() {
		if s.Name == name {
			return s, nil
		}
	}
	return System{}, fmt.Errorf("harness: unknown file system %q", name)
}

// BugSystem returns the system a bug is tested on: the first file system in
// the bug's registry entry (NOVA bugs are tested on NOVA, the shared
// PMFS/WineFS bugs on PMFS, etc.).
func BugSystem(info bugs.Info) (System, error) {
	return SystemByName(info.FileSystems[0])
}
