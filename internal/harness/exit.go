package harness

// Process exit codes shared by every frontend, so CI pipelines can
// distinguish outcomes without parsing output. The convention predates the
// distributed runner (violations/fatal/interrupted) and gains two
// campaign-specific codes: a degraded campaign completed but quarantined
// shards (its census is partial — worth a different alert than a bug
// finding or a crash), and a worker that never managed to join its
// coordinator failed before doing any work at all.
const (
	// ExitClean: the run completed and found nothing.
	ExitClean = 0
	// ExitViolations: the run completed and found crash-consistency
	// violations — the tool worked; the target is buggy.
	ExitViolations = 1
	// ExitFatal: the tool itself failed (bad flags, I/O error, engine
	// error).
	ExitFatal = 2
	// ExitDegraded: a distributed campaign completed with quarantined
	// shards — the census is partial. Takes precedence over ExitViolations:
	// an incomplete census is the more urgent fact about the run.
	ExitDegraded = 3
	// ExitCoordinatorUnreachable: a campaign worker exhausted its dial
	// budget at handshake and never joined. Distinct from ExitFatal so
	// fleet tooling can retry joining instead of paging.
	ExitCoordinatorUnreachable = 7
	// ExitInterrupted: the run was cancelled by SIGINT (partial census
	// reported), following the shell convention of 128+SIGINT.
	ExitInterrupted = 130
)
