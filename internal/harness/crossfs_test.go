package harness

import (
	"context"
	"testing"

	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fs/winefs"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
)

// TestNovaBugsAlsoPresentInFortis: Table 1 lists every NOVA bug as present
// in NOVA-Fortis too ("NOVA-Fortis has all the same crash-consistency bugs
// we found in the original version of NOVA", Obs 4). Verify the shared
// implementation reproduces that: each NOVA bug is detected when the same
// workloads run against the Fortis build.
func TestNovaBugsAlsoPresentInFortis(t *testing.T) {
	fortis, err := SystemByName("nova-fortis")
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range bugs.All() {
		if info.FileSystems[0] != "nova" {
			continue
		}
		cfg := Options{Bugs: bugs.Of(info.ID), Cap: 0}.ConfigFor(fortis)
		found := false
		for _, w := range TargetedWorkloads(info.ID) {
			res, err := core.RunContext(context.Background(), cfg, w)
			if err != nil {
				t.Fatalf("bug %d on fortis: %v", info.ID, err)
			}
			if res.Buggy() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("NOVA bug %d not detected on nova-fortis", info.ID)
		}
	}
}

// TestSharedPmfsWinefsBugs: bugs 14&15 and 17&18 are one fix affecting both
// PMFS and WineFS; verify detection on BOTH systems. The bugs live in the
// PMFS-derived in-place write path, which in WineFS is the relaxed mode —
// in strict mode the copy-on-write publish's own fences make the data
// durable regardless.
func TestSharedPmfsWinefsBugs(t *testing.T) {
	for _, id := range []bugs.ID{bugs.WriteNotSync, bugs.NTTailNotFenced} {
		for _, sysName := range []string{"pmfs", "winefs"} {
			var cfg core.Config
			if sysName == "winefs" {
				set := bugs.Of(id)
				cfg = core.Config{NewFS: func(pm *persist.PM) vfs.FS {
					return winefs.New(pm, set, winefs.WithMode(winefs.Relaxed))
				}}
			} else {
				sys, _ := SystemByName(sysName)
				cfg = Options{Bugs: bugs.Of(id), Cap: 0}.ConfigFor(sys)
			}
			found := false
			for _, w := range TargetedWorkloads(id) {
				res, err := core.RunContext(context.Background(), cfg, w)
				if err != nil {
					t.Fatal(err)
				}
				if res.Buggy() {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("shared bug %d not detected on %s", id, sysName)
			}
		}
	}
}

// TestFixedFortisCleanOnNovaWorkloads: the Fortis machinery (checksums,
// replicas, recovery arbitration) must not create false positives on the
// NOVA reproduction workloads.
func TestFixedFortisCleanOnNovaWorkloads(t *testing.T) {
	fortis, _ := SystemByName("nova-fortis")
	cfg := Options{Bugs: bugs.None(), Cap: 0}.ConfigFor(fortis)
	for _, info := range bugs.All() {
		if info.FileSystems[0] != "nova" && info.FileSystems[0] != "nova-fortis" {
			continue
		}
		for _, w := range TargetedWorkloads(info.ID) {
			res, err := core.RunContext(context.Background(), cfg, w)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range res.Violations {
				t.Errorf("fixed fortis flagged on %s: %s", w.Name, v)
			}
		}
	}
}
