package harness

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"chipmunk/internal/app/kvstore"
	"chipmunk/internal/app/kvwork"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/obs"
	"chipmunk/internal/pmem"
)

// Options selects a system under test plus the engine tuning the CLIs and
// experiment drivers share — the replacement for the positional
// ConfigFor(sys, set, cap) and the flag parsing each command used to copy.
type Options struct {
	// FS names the target file system (see Systems).
	FS string
	// Bugs is the injected bug set (bugs.None() for the fixed systems).
	Bugs bugs.Set
	// Cap bounds replayed in-flight subsets (0 = exhaustive).
	Cap int
	// Workers is the in-engine crash-state worker count (<= 1 = serial).
	Workers int
	// CheckTimeout is the per-crash-state sandbox deadline
	// (0 = core.DefaultCheckTimeout, negative = none).
	CheckTimeout time.Duration
	// ExhaustiveLimit overrides the exhaustive-enumeration bound
	// (0 = core.DefaultExhaustiveLimit).
	ExhaustiveLimit int
	// Faults enables the pmem fault injector for crash-state checks
	// (nil = off).
	Faults *pmem.FaultConfig
	// DisableDeltaMaterialize selects the legacy full-copy crash-image
	// materialization instead of the default O(diff) delta path — the
	// -full-copy escape hatch, mirroring DisableSandbox, kept for
	// differential testing and perf comparison. Results are identical.
	DisableDeltaMaterialize bool
	// DisableCoalescedApply materializes per in-flight store instead of per
	// coalesced diff run; DisableOracleSnapshot rebuilds the oracle view in
	// every check instead of sharing one snapshot per crash point;
	// DisableBufferReuse allocates fresh device-sized buffers instead of
	// recycling pooled ones. All three mirror DisableDeltaMaterialize:
	// legacy code paths kept for differential testing, identical results.
	DisableCoalescedApply bool
	DisableOracleSnapshot bool
	DisableBufferReuse    bool
	// Obs receives per-stage metrics from every engine run (nil = off;
	// the engine then skips all clock reads).
	Obs *obs.Collector
	// Journal receives run-journal events from every engine run (nil = off).
	Journal *obs.Journal
	// Tracer emits deterministic engine-stage spans into the journal
	// (nil = off; see obs.Tracer).
	Tracer *obs.Tracer
	// App selects an application-level workload and its crash-contract
	// checker instead of the FS-oracle comparison: "" (none, the default)
	// or "kv" (the WAL KV store, internal/app/kvstore).
	App string
	// AppBugs seeds store defects into the -app application (both the
	// workload's instance and the checker's recovery). Zero value = none.
	AppBugs kvstore.Bugs
}

// Resolve looks up the system and builds its engine Config.
func (o Options) Resolve() (System, core.Config, error) {
	sys, err := SystemByName(o.FS)
	if err != nil {
		return System{}, core.Config{}, err
	}
	return sys, o.ConfigFor(sys), nil
}

// ConfigFor builds the engine Config for an already-resolved system. With
// App set, the application factory and its contract checker replace the
// default FS-oracle comparison.
func (o Options) ConfigFor(sys System) core.Config {
	cfg := core.Config{
		NewFS:                   sys.Factory(o.Bugs),
		Cap:                     o.Cap,
		Workers:                 o.Workers,
		CheckTimeout:            o.CheckTimeout,
		ExhaustiveLimit:         o.ExhaustiveLimit,
		Faults:                  o.Faults,
		DisableDeltaMaterialize: o.DisableDeltaMaterialize,
		DisableCoalescedApply:   o.DisableCoalescedApply,
		DisableOracleSnapshot:   o.DisableOracleSnapshot,
		DisableBufferReuse:      o.DisableBufferReuse,
		Obs:                     o.Obs,
		Journal:                 o.Journal,
		Tracer:                  o.Tracer,
	}
	if o.App == "kv" {
		cfg.AppFactory = kvwork.Factory(o.AppBugs)
		cfg.Checker = kvwork.NewChecker(o.AppBugs)
	}
	return cfg
}

// AppByName validates an -app selector.
func AppByName(name string) error {
	switch name {
	case "", "kv":
		return nil
	}
	return fmt.Errorf("harness: unknown app %q (want kv)", name)
}

// ParseBugSpec parses the CLIs' -bugs syntax: "none" (or empty), "all", or
// a comma-separated ID list such as "4,5".
func ParseBugSpec(spec string) (bugs.Set, error) {
	switch spec {
	case "none", "":
		return bugs.None(), nil
	case "all":
		return bugs.AllSet(), nil
	}
	set := bugs.Set{}
	for _, part := range strings.Split(spec, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad bug id %q", part)
		}
		if _, ok := bugs.Lookup(bugs.ID(id)); !ok {
			return nil, fmt.Errorf("unknown bug id %d", id)
		}
		set = set.With(bugs.ID(id))
	}
	return set, nil
}
