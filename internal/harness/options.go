package harness

import (
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/obs"
	"chipmunk/internal/pmem"
)

// Options selects a system under test plus the engine tuning the CLIs and
// experiment drivers share — the replacement for the positional
// ConfigFor(sys, set, cap) and the flag parsing each command used to copy.
type Options struct {
	// FS names the target file system (see Systems).
	FS string
	// Bugs is the injected bug set (bugs.None() for the fixed systems).
	Bugs bugs.Set
	// Cap bounds replayed in-flight subsets (0 = exhaustive).
	Cap int
	// Workers is the in-engine crash-state worker count (<= 1 = serial).
	Workers int
	// CheckTimeout is the per-crash-state sandbox deadline
	// (0 = core.DefaultCheckTimeout, negative = none).
	CheckTimeout time.Duration
	// ExhaustiveLimit overrides the exhaustive-enumeration bound
	// (0 = core.DefaultExhaustiveLimit).
	ExhaustiveLimit int
	// Faults enables the pmem fault injector for crash-state checks
	// (nil = off).
	Faults *pmem.FaultConfig
	// DisableDeltaMaterialize selects the legacy full-copy crash-image
	// materialization instead of the default O(diff) delta path — the
	// -full-copy escape hatch, mirroring DisableSandbox, kept for
	// differential testing and perf comparison. Results are identical.
	DisableDeltaMaterialize bool
	// Obs receives per-stage metrics from every engine run (nil = off;
	// the engine then skips all clock reads).
	Obs *obs.Collector
	// Journal receives run-journal events from every engine run (nil = off).
	Journal *obs.Journal
}

// Resolve looks up the system and builds its engine Config.
func (o Options) Resolve() (System, core.Config, error) {
	sys, err := SystemByName(o.FS)
	if err != nil {
		return System{}, core.Config{}, err
	}
	return sys, o.ConfigFor(sys), nil
}

// ConfigFor builds the engine Config for an already-resolved system.
func (o Options) ConfigFor(sys System) core.Config {
	return core.Config{
		NewFS:                   sys.Factory(o.Bugs),
		Cap:                     o.Cap,
		Workers:                 o.Workers,
		CheckTimeout:            o.CheckTimeout,
		ExhaustiveLimit:         o.ExhaustiveLimit,
		Faults:                  o.Faults,
		DisableDeltaMaterialize: o.DisableDeltaMaterialize,
		Obs:                     o.Obs,
		Journal:                 o.Journal,
	}
}

// ParseBugSpec parses the CLIs' -bugs syntax: "none" (or empty), "all", or
// a comma-separated ID list such as "4,5".
func ParseBugSpec(spec string) (bugs.Set, error) {
	switch spec {
	case "none", "":
		return bugs.None(), nil
	case "all":
		return bugs.AllSet(), nil
	}
	set := bugs.Set{}
	for _, part := range strings.Split(spec, ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad bug id %q", part)
		}
		if _, ok := bugs.Lookup(bugs.ID(id)); !ok {
			return nil, fmt.Errorf("unknown bug id %d", id)
		}
		set = set.With(bugs.ID(id))
	}
	return set, nil
}

// FlagSpec holds the raw values of the shared CLI flags between flag
// registration and parsing.
type FlagSpec struct {
	FS              *string
	Bugs            *string
	Cap             *int
	Workers         *int
	CheckTimeout    *time.Duration
	ExhaustiveLimit *int
	FullCopy        *bool
}

// BindFlags registers the shared -fs, -bugs, -cap, -workers,
// -check-timeout, and -exhaustive-limit flags on fl with the given
// defaults. Call fl.Parse (or flag.Parse for the default set), then Options
// to resolve the parsed values.
func BindFlags(fl *flag.FlagSet, defFS, defBugs string, defCap int) *FlagSpec {
	return &FlagSpec{
		FS:      fl.String("fs", defFS, "file system: nova, nova-fortis, pmfs, winefs, splitfs, ext4-dax, xfs-dax"),
		Bugs:    fl.String("bugs", defBugs, `injected bugs: "none", "all", or comma-separated IDs (e.g. "4,5")`),
		Cap:     fl.Int("cap", defCap, "max in-flight writes replayed per crash state (0 = exhaustive)"),
		Workers: fl.Int("workers", 1, "crash-state check workers inside each engine run (<=1 = serial)"),
		CheckTimeout: fl.Duration("check-timeout", core.DefaultCheckTimeout,
			"per-crash-state check deadline; hung checks are quarantined as check-timeout (negative = no deadline)"),
		ExhaustiveLimit: fl.Int("exhaustive-limit", core.DefaultExhaustiveLimit,
			"max in-flight writes for exhaustive subset enumeration before falling back to the safety cap"),
		FullCopy: fl.Bool("full-copy", false,
			"materialize each crash state by full device copy instead of delta replay (slow; results identical)"),
	}
}

// Options validates the parsed flag values into an Options.
func (fs *FlagSpec) Options() (Options, error) {
	set, err := ParseBugSpec(*fs.Bugs)
	if err != nil {
		return Options{}, err
	}
	return Options{
		FS:                      *fs.FS,
		Bugs:                    set,
		Cap:                     *fs.Cap,
		Workers:                 *fs.Workers,
		CheckTimeout:            *fs.CheckTimeout,
		ExhaustiveLimit:         *fs.ExhaustiveLimit,
		DisableDeltaMaterialize: *fs.FullCopy,
	}, nil
}
