package harness

import (
	"testing"

	"chipmunk/internal/bugs"
)

// TestTable1AllBugsDetected is the central soundness result of the
// reproduction: for every bug in Table 1, the generic Chipmunk checker —
// which knows nothing about the injected flags — flags the buggy system on
// a minimal workload, and the fixed system passes the same workloads.
func TestTable1AllBugsDetected(t *testing.T) {
	for _, info := range bugs.All() {
		info := info
		t.Run(info.TableRow()[:20], func(t *testing.T) {
			det, err := DetectWithTargeted(info.ID, DetectOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !det.Found {
				t.Fatalf("bug %d (%s) NOT detected on %s (checked %d states over %d workloads)",
					info.ID, info.Consequence, det.System, det.StatesChecked, det.Workloads)
			}
			clean, err := VerifyFixedClean(info.ID, DetectOptions{})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range clean {
				t.Errorf("fixed %s flagged (false positive): %s", det.System, v)
			}
		})
	}
}

// TestCapTwoSufficient: Observation 7 / §4.2 — a replay cap of two writes
// is enough to find every bug.
func TestCapTwoSufficient(t *testing.T) {
	for _, info := range bugs.All() {
		det, err := DetectWithTargeted(info.ID, DetectOptions{Cap: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !det.Found {
			t.Errorf("bug %d not found with cap=2", info.ID)
		}
	}
}

// TestObservation5MidSyscallRequirement: with crash points only at syscall
// boundaries (the CrashMonkey policy), exactly the bugs Table 2 marks as
// mid-syscall-dependent become invisible.
func TestObservation5MidSyscallRequirement(t *testing.T) {
	for _, info := range bugs.All() {
		det, err := DetectWithTargeted(info.ID, DetectOptions{PostOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if info.NeedsMidCrash && det.Found {
			t.Errorf("bug %d should require mid-syscall crashes but was found post-only (via %s, %s)",
				info.ID, det.Via, det.Kind)
		}
		if !info.NeedsMidCrash && !det.Found {
			t.Errorf("bug %d should be detectable from post-syscall states alone", info.ID)
		}
	}
}
