package harness

import (
	"context"
	"testing"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
)

// TestParallelEngineMatchesSerial: the tentpole guarantee. For every system,
// a workload checked with a worker pool must produce a Result byte-identical
// to the serial engine: same violations in the same order, same state
// accounting (checked, deduped, truncated), same census statistics.
func TestParallelEngineMatchesSerial(t *testing.T) {
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			// Published bug sets on the strong systems so the comparison
			// covers violating runs, not just clean ones; weak systems have
			// no injected bugs and use the fsync-gated DAX suite.
			set := bugs.AllSet()
			suite := ace.Seq1()[:12]
			if sys.Weak {
				set = bugs.None()
				suite = ace.Seq1Dax()[:12]
			}
			serial := Options{Bugs: set, Cap: 0, Workers: 1}.ConfigFor(sys)
			par := Options{Bugs: set, Cap: 0, Workers: 4}.ConfigFor(sys)
			for _, w := range suite {
				rs, err := core.RunContext(context.Background(), serial, w)
				if err != nil {
					t.Fatalf("%s serial: %v", w.Name, err)
				}
				rp, err := core.RunContext(context.Background(), par, w)
				if err != nil {
					t.Fatalf("%s parallel: %v", w.Name, err)
				}
				compareResults(t, w.Name, rs, rp)
			}
		})
	}
}

func compareResults(t *testing.T, name string, rs, rp *core.Result) {
	t.Helper()
	if rs.StatesChecked != rp.StatesChecked {
		t.Errorf("%s: StatesChecked serial %d != parallel %d", name, rs.StatesChecked, rp.StatesChecked)
	}
	if rs.StatesDeduped != rp.StatesDeduped {
		t.Errorf("%s: StatesDeduped serial %d != parallel %d", name, rs.StatesDeduped, rp.StatesDeduped)
	}
	if rs.Fences != rp.Fences {
		t.Errorf("%s: Fences serial %d != parallel %d", name, rs.Fences, rp.Fences)
	}
	if rs.TruncatedFences != rp.TruncatedFences {
		t.Errorf("%s: TruncatedFences serial %d != parallel %d", name, rs.TruncatedFences, rp.TruncatedFences)
	}
	if rs.MaxInFlight != rp.MaxInFlight {
		t.Errorf("%s: MaxInFlight serial %d != parallel %d", name, rs.MaxInFlight, rp.MaxInFlight)
	}
	if rs.FilteredWrites != rp.FilteredWrites {
		t.Errorf("%s: FilteredWrites serial %d != parallel %d", name, rs.FilteredWrites, rp.FilteredWrites)
	}
	if rs.SuppressedViolations != rp.SuppressedViolations {
		t.Errorf("%s: SuppressedViolations serial %d != parallel %d", name, rs.SuppressedViolations, rp.SuppressedViolations)
	}
	if len(rs.InFlightCounts) != len(rp.InFlightCounts) {
		t.Errorf("%s: InFlightCounts len %d != %d", name, len(rs.InFlightCounts), len(rp.InFlightCounts))
	} else {
		for i := range rs.InFlightCounts {
			if rs.InFlightCounts[i] != rp.InFlightCounts[i] {
				t.Errorf("%s: InFlightCounts[%d] serial %d != parallel %d",
					name, i, rs.InFlightCounts[i], rp.InFlightCounts[i])
			}
		}
	}
	if len(rs.Violations) != len(rp.Violations) {
		t.Errorf("%s: %d serial violations != %d parallel", name, len(rs.Violations), len(rp.Violations))
		return
	}
	for i := range rs.Violations {
		if rs.Violations[i].String() != rp.Violations[i].String() {
			t.Errorf("%s: violation %d differs\nserial:   %s\nparallel: %s",
				name, i, rs.Violations[i], rp.Violations[i])
		}
	}
}

// TestDedupActuallyFires: on an exhaustive (cap=0) run of a journal-heavy
// in-place system, the dedup must skip a nonzero number of identical crash
// states, and the skips must be visible in the Result — never silent.
// (In-place systems like PMFS re-persist bytes that often match the base
// image, so distinct subsets frequently replay to identical images;
// log-structured NOVA dedups far less.)
func TestDedupActuallyFires(t *testing.T) {
	sys, _ := SystemByName("pmfs")
	cfg := Options{Bugs: bugs.None(), Cap: 0}.ConfigFor(sys)
	total := 0
	for _, w := range ace.Seq1()[:20] {
		res, err := core.RunContext(context.Background(), cfg, w)
		if err != nil {
			t.Fatal(err)
		}
		total += res.StatesDeduped
	}
	if total == 0 {
		t.Fatal("StatesDeduped = 0 across 20 pmfs seq-1 workloads; dedup never fired")
	}
}

// TestRunCancelledMidSuite: cancelling the context mid-suite returns
// promptly with ctx.Err() and the partial census accumulated so far.
func TestRunCancelledMidSuite(t *testing.T) {
	sys, _ := SystemByName("nova")
	cfg := Options{Bugs: bugs.None(), Cap: 2}.ConfigFor(sys)
	// A large suite: parallel progress is delivered asynchronously (and
	// coalesced), so the suite must comfortably outlast the delivery of the
	// cancelling update or the whole run can finish before cancel() lands.
	suite := ace.Seq2()[:300]
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		census, _, err := Run(ctx, cfg, suite,
			WithWorkers(workers),
			// >= 3, not == 3: parallel progress updates are coalesced, so
			// a specific intermediate done value may never be observed.
			WithProgress(func(done, total int, c Census) {
				if done >= 3 {
					cancel()
				}
			}))
		cancel()
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if census == nil {
			t.Fatalf("workers=%d: no partial census", workers)
		}
		if census.Workloads < 3 || census.Workloads >= len(suite) {
			t.Errorf("workers=%d: partial census has %d workloads, want [3, %d)",
				workers, census.Workloads, len(suite))
		}
	}
}

// TestRunContextPreCancelled: an already-cancelled context fails fast
// without running the engine.
func TestRunContextPreCancelled(t *testing.T) {
	sys, _ := SystemByName("nova")
	cfg := Options{Bugs: bugs.None()}.ConfigFor(sys)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.RunContext(ctx, cfg, ace.Seq1()[0]); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, _, err := Run(ctx, cfg, ace.Seq1()[:5]); err != context.Canceled {
		t.Fatalf("Run err = %v, want context.Canceled", err)
	}
}

// TestOptionsResolve: the shared flag/Options surface used by all three
// CLI frontends.
func TestOptionsResolve(t *testing.T) {
	opts := Options{FS: "pmfs", Bugs: bugs.AllSet(), Cap: 2, Workers: 3}
	sys, cfg, err := opts.Resolve()
	if err != nil || sys.Name != "pmfs" {
		t.Fatalf("Resolve = %v, %v", sys.Name, err)
	}
	if cfg.Cap != 2 || cfg.Workers != 3 || cfg.NewFS == nil {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, _, err := (Options{FS: "nope"}).Resolve(); err == nil {
		t.Fatal("unknown FS accepted")
	}

	set, err := ParseBugSpec("1, 3")
	if err != nil || len(set.IDs()) != 2 {
		t.Fatalf("ParseBugSpec = %v, %v", set, err)
	}
	if _, err := ParseBugSpec("99"); err == nil {
		t.Fatal("unknown bug id accepted")
	}
	if _, err := ParseBugSpec("x"); err == nil {
		t.Fatal("malformed bug id accepted")
	}
	none, err := ParseBugSpec("none")
	if err != nil || len(none.IDs()) != 0 {
		t.Fatalf("ParseBugSpec(none) = %v, %v", none, err)
	}
}
