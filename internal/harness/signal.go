package harness

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled by the first SIGINT/SIGTERM, so
// a long census winds down gracefully (partial results are still reported).
// A second signal force-exits with status 130 — the escape hatch when a
// hostile crash state has wedged a check goroutine past even the sandbox
// deadline. The returned stop func releases the signal handler.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		select {
		case <-ch:
			fmt.Fprintln(os.Stderr, "\ninterrupt: finishing in-flight work (interrupt again to force exit)")
			cancel()
		case <-ctx.Done():
			return
		}
		<-ch
		fmt.Fprintln(os.Stderr, "second interrupt: forcing exit")
		os.Exit(130)
	}()
	stop := func() {
		signal.Stop(ch)
		cancel()
	}
	return ctx, stop
}
