package harness

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext returns a context cancelled by the first SIGINT/SIGTERM, so
// a long census winds down gracefully (partial results are still reported).
// A second signal force-exits with status 130 — the escape hatch when a
// hostile crash state has wedged a check goroutine past even the sandbox
// deadline. The returned stop func releases the signal handler.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return SignalContextNotify(parent,
		"interrupt: finishing in-flight work (interrupt again to force exit)")
}

// SignalContextNotify is SignalContext with a caller-chosen first-interrupt
// message — what a frontend prints decides what the operator believes the
// first Ctrl-C does, and the distributed coordinator's answer ("stop
// issuing leases, drain in-flight shards to the checkpoint") differs from
// the single-process one ("abandon in-flight work"). The escalation
// contract is shared: the first signal cancels the context and prints msg;
// the second force-exits with status 130.
func SignalContextNotify(parent context.Context, msg string) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		select {
		case <-ch:
			fmt.Fprintln(os.Stderr, "\n"+msg)
			cancel()
		case <-ctx.Done():
			return
		}
		<-ch
		fmt.Fprintln(os.Stderr, "second interrupt: forcing exit")
		os.Exit(130)
	}()
	stop := func() {
		signal.Stop(ch)
		cancel()
	}
	return ctx, stop
}
