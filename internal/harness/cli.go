package harness

import (
	"flag"
	"time"

	"chipmunk/internal/app/kvwork"
	"chipmunk/internal/core"
	"chipmunk/internal/obs"
	"chipmunk/internal/pmem"
)

// This file is the CLIs' single flag frontend: every flag shared by
// cmd/chipmunk, cmd/chipmunkfuzz, and cmd/experiments — engine tuning,
// application selection, fault injection, output, and observability — binds
// through one BindCLI call into one CLIOptions value, replacing the old
// FlagSpec + ObsFlagSpec pair plus the ad-hoc per-command flags. Lifecycle:
//
//	cli := harness.BindCLI(flag.CommandLine, harness.CLIDefaults{FS: "nova"})
//	flag.Parse()
//	opts, err := cli.Options()     // engine Options (validated)
//	inst, err := cli.Instrument()  // -stats/-journal/-debug-addr plumbing
//	defer inst.Close()
//	inst.Apply(&opts)

// CLIDefaults sets the per-command default values of the flags whose
// defaults differ between commands.
type CLIDefaults struct {
	FS   string // -fs default ("nova")
	Bugs string // -bugs default ("none" for the fixed systems, "all" for the fuzzer)
	Cap  int    // -cap default (0 = exhaustive; the fuzzer uses the paper's 2)
}

// CLIOptions holds the parsed values of every shared CLI flag. Fields are
// plain values (not pointers): read them after flag parsing.
type CLIOptions struct {
	// Engine selection and tuning.
	FS              string
	Bugs            string
	Cap             int
	Workers         int
	CheckTimeout    time.Duration
	ExhaustiveLimit int
	FullCopy        bool

	// Application-level durability checking.
	App              string
	AppBugs          string
	DurabilityReport string

	// Fault injection.
	Faults    bool
	FaultSeed uint64

	// Suite-level execution and output.
	Jobs    int
	OutDir  string
	Verbose bool

	// Observability.
	Stats     bool
	Journal   string
	DebugAddr string
}

// BindCLI registers the shared flags on fl with the given defaults. Call
// fl.Parse (or flag.Parse for the default set), then Options and Instrument
// to resolve the parsed values.
func BindCLI(fl *flag.FlagSet, def CLIDefaults) *CLIOptions {
	if def.FS == "" {
		def.FS = "nova"
	}
	if def.Bugs == "" {
		def.Bugs = "none"
	}
	c := &CLIOptions{}
	fl.StringVar(&c.FS, "fs", def.FS, "file system: nova, nova-fortis, pmfs, winefs, splitfs, ext4-dax, xfs-dax")
	fl.StringVar(&c.Bugs, "bugs", def.Bugs, `injected bugs: "none", "all", or comma-separated IDs (e.g. "4,5")`)
	fl.IntVar(&c.Cap, "cap", def.Cap, "max in-flight writes replayed per crash state (0 = exhaustive)")
	fl.IntVar(&c.Workers, "workers", 1, "crash-state check workers inside each engine run (<=1 = serial)")
	fl.DurationVar(&c.CheckTimeout, "check-timeout", core.DefaultCheckTimeout,
		"per-crash-state check deadline; hung checks are quarantined as check-timeout (negative = no deadline)")
	fl.IntVar(&c.ExhaustiveLimit, "exhaustive-limit", core.DefaultExhaustiveLimit,
		"max in-flight writes for exhaustive subset enumeration before falling back to the safety cap")
	fl.BoolVar(&c.FullCopy, "full-copy", false,
		"materialize each crash state by full device copy instead of delta replay (slow; results identical)")

	fl.StringVar(&c.App, "app", "",
		`application-level durability checking: "kv" runs the WAL KV store workload and checks its crash contract instead of the FS oracle`)
	fl.StringVar(&c.AppBugs, "app-bugs", "none",
		`seeded application bugs for -app: "none", or comma-separated of ack-loss, bad-crc`)
	fl.StringVar(&c.DurabilityReport, "durability-report", "DURABILITY.md",
		"(with -app) write the application-durability report to this path")

	fl.BoolVar(&c.Faults, "faults", false,
		"inject pmem faults (torn stores, bit flips, media errors) into crash states")
	fl.Uint64Var(&c.FaultSeed, "fault-seed", 1, "deterministic seed for -faults")

	fl.IntVar(&c.Jobs, "j", 1, "suite-level workers (like the paper's VM sharding; 0 = all cores)")
	fl.StringVar(&c.OutDir, "o", "", "write triaged bug reports and reproducers to this directory")
	fl.BoolVar(&c.Verbose, "v", false, "print every violation")

	fl.BoolVar(&c.Stats, "stats", false,
		"print the per-stage time/counter breakdown after the run")
	fl.StringVar(&c.Journal, "journal", "",
		"append one JSONL event per workload/fence/violation/quarantine/retry/span to this file")
	fl.StringVar(&c.DebugAddr, "debug-addr", "",
		"serve live introspection (/debug/vars, /debug/metrics, /debug/pprof/, /progress) on this host:port")
	return c
}

// Options validates the parsed flag values into an engine Options,
// including the -app wiring (application factory + contract checker) and
// -faults configuration.
func (c *CLIOptions) Options() (Options, error) {
	set, err := ParseBugSpec(c.Bugs)
	if err != nil {
		return Options{}, err
	}
	if err := AppByName(c.App); err != nil {
		return Options{}, err
	}
	appBugs, err := kvwork.ParseBugs(c.AppBugs)
	if err != nil {
		return Options{}, err
	}
	o := Options{
		FS:                      c.FS,
		Bugs:                    set,
		Cap:                     c.Cap,
		Workers:                 c.Workers,
		CheckTimeout:            c.CheckTimeout,
		ExhaustiveLimit:         c.ExhaustiveLimit,
		DisableDeltaMaterialize: c.FullCopy,
		App:                     c.App,
		AppBugs:                 appBugs,
	}
	if c.Faults {
		o.Faults = pmem.DefaultFaults(c.FaultSeed)
	}
	return o, nil
}

// Instrument resolves the parsed observability flags into an
// Instrumentation. All three facilities are off by default; the returned
// value (possibly holding only nils) is always safe to Apply and Close.
// Errors (unwritable journal path, unbindable debug address) are reported,
// not ignored.
func (c *CLIOptions) Instrument() (*Instrumentation, error) {
	in := &Instrumentation{stats: c.Stats}
	if c.Stats || c.DebugAddr != "" {
		in.Col = obs.New()
	}
	if c.Journal != "" {
		j, err := obs.Create(c.Journal)
		if err != nil {
			return nil, err
		}
		in.Journal = j
		// Local runs trace under fixed (seed 0, shard 0) coordinates, so
		// the span multiset is comparable across worker counts and reruns;
		// campaign workers derive per-shard tracers instead.
		in.Tracer = obs.NewTracer(j, 0, 0)
	}
	if c.DebugAddr != "" {
		ds, err := obs.ServeDebug(c.DebugAddr, in.Col)
		if err != nil {
			in.Journal.Close() //nolint:errcheck // already failing
			return nil, err
		}
		in.Debug = ds
	}
	return in, nil
}
