package harness

import (
	"context"
	"flag"
	"testing"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fs/nova"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
)

// TestDeltaMaterializeMatchesFullCopyAllSystems: the O(diff) delta path
// must be byte-identical to the full-copy engine across all seven systems,
// on violating runs (published bug sets) and clean ones alike, serial and
// at workers=8. Reuses the same Result comparison the parallel-vs-serial
// differential is stated over.
func TestDeltaMaterializeMatchesFullCopyAllSystems(t *testing.T) {
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			set := bugs.AllSet()
			suite := ace.Seq1()[:8]
			if sys.Weak {
				set = bugs.None()
				suite = ace.Seq1Dax()[:8]
			}
			for _, workers := range []int{1, 8} {
				full := Options{Bugs: set, Cap: 2, Workers: workers, DisableDeltaMaterialize: true}.ConfigFor(sys)
				delta := Options{Bugs: set, Cap: 2, Workers: workers}.ConfigFor(sys)
				for _, w := range suite {
					rf, err := core.RunContext(context.Background(), full, w)
					if err != nil {
						t.Fatalf("%s full-copy: %v", w.Name, err)
					}
					rd, err := core.RunContext(context.Background(), delta, w)
					if err != nil {
						t.Fatalf("%s delta: %v", w.Name, err)
					}
					compareResults(t, w.Name, rf, rd)
					if len(rf.Quarantined) != len(rd.Quarantined) {
						t.Fatalf("%s: quarantine ledgers diverge: full %d, delta %d",
							w.Name, len(rf.Quarantined), len(rd.Quarantined))
					}
					for i := range rf.Quarantined {
						if rf.Quarantined[i].String() != rd.Quarantined[i].String() {
							t.Errorf("%s: quarantine %d differs\nfull:  %s\ndelta: %s",
								w.Name, i, rf.Quarantined[i], rd.Quarantined[i])
						}
					}
				}
			}
		})
	}
}

// deltaPanicFS panics on Mount; the record pass underneath is real nova.
type deltaPanicFS struct{ vfs.FS }

func (f deltaPanicFS) Mount() error { panic("hostile crash state") }

// TestDeltaMaterializeHostileGuestAgreement: a guest that panics mid-mount
// poisons pooled images (the retirement path), and the classification must
// still agree with the full-copy engine, serially and in parallel.
func TestDeltaMaterializeHostileGuestAgreement(t *testing.T) {
	newFS := func(pm *persist.PM) vfs.FS {
		return deltaPanicFS{nova.New(pm, bugs.None())}
	}
	suite := ace.Seq1()[:2]
	for _, workers := range []int{1, 8} {
		full := core.Config{NewFS: newFS, Cap: 2, CheckRetries: -1, Workers: workers,
			DisableDeltaMaterialize: true}
		delta := core.Config{NewFS: newFS, Cap: 2, CheckRetries: -1, Workers: workers}
		for _, w := range suite {
			rf, err := core.RunContext(context.Background(), full, w)
			if err != nil {
				t.Fatalf("%s full-copy: %v", w.Name, err)
			}
			rd, err := core.RunContext(context.Background(), delta, w)
			if err != nil {
				t.Fatalf("%s delta: %v", w.Name, err)
			}
			compareResults(t, w.Name, rf, rd)
			if len(rd.Quarantined) == 0 {
				t.Fatalf("%s: hostile guest quarantined nothing", w.Name)
			}
		}
	}
}

// TestDeltaMaterializeFlagPlumbing: -full-copy plumbs from the shared flag
// surface through Options into the engine Config, and defaults to the
// delta path.
func TestDeltaMaterializeFlagPlumbing(t *testing.T) {
	fl := flag.NewFlagSet("test", flag.ContinueOnError)
	spec := BindCLI(fl, CLIDefaults{FS: "nova"})
	if err := fl.Parse([]string{"-full-copy"}); err != nil {
		t.Fatal(err)
	}
	opts, err := spec.Options()
	if err != nil {
		t.Fatal(err)
	}
	if !opts.DisableDeltaMaterialize {
		t.Fatal("-full-copy did not set Options.DisableDeltaMaterialize")
	}
	_, cfg, err := opts.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.DisableDeltaMaterialize {
		t.Fatal("-full-copy did not reach core.Config")
	}

	fl2 := flag.NewFlagSet("test2", flag.ContinueOnError)
	spec2 := BindCLI(fl2, CLIDefaults{FS: "nova"})
	if err := fl2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	opts2, err := spec2.Options()
	if err != nil {
		t.Fatal(err)
	}
	if opts2.DisableDeltaMaterialize {
		t.Fatal("delta materialization not the default")
	}
}
