package harness

import (
	"context"
	"fmt"
	"time"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
	"chipmunk/internal/fuzz"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// Detection records how a bug was (or was not) found.
type Detection struct {
	Bug           bugs.Info
	System        string
	Found         bool
	Via           string // which workload exposed it
	Kind          core.ViolationKind
	Phase         core.Phase
	StatesChecked int
	Workloads     int
	Elapsed       time.Duration
}

// DetectOptions tune a detection run.
type DetectOptions struct {
	// Cap bounds replayed subset sizes (0 = exhaustive).
	Cap int
	// PostOnly restricts crash points to syscall boundaries (Obs 5).
	PostOnly bool
	// Workers is the in-engine crash-state worker count (<= 1 = serial).
	Workers int
	// Obs receives per-stage metrics from the detection's engine runs
	// (nil = off); Journal receives their run-journal events.
	Obs     *obs.Collector
	Journal *obs.Journal
}

// config builds the engine Config for one detection run.
func (o DetectOptions) config(sys System, set bugs.Set) core.Config {
	cfg := Options{Bugs: set, Cap: o.Cap, Workers: o.Workers,
		Obs: o.Obs, Journal: o.Journal}.ConfigFor(sys)
	cfg.PostOnly = o.PostOnly
	return cfg
}

// DetectWithTargeted checks whether the generic checker flags the bug on
// its minimal reproduction workloads — the fast developer-loop validation.
func DetectWithTargeted(id bugs.ID, opts DetectOptions) (Detection, error) {
	info, ok := bugs.Lookup(id)
	if !ok {
		return Detection{}, fmt.Errorf("unknown bug %d", id)
	}
	sys, err := BugSystem(info)
	if err != nil {
		return Detection{}, err
	}
	cfg := opts.config(sys, bugs.Of(id))
	det := Detection{Bug: info, System: sys.Name}
	start := time.Now()
	for _, w := range TargetedWorkloads(id) {
		res, err := core.RunContext(context.Background(), cfg, w)
		if err != nil {
			return det, fmt.Errorf("bug %d workload %s: %w", id, w.Name, err)
		}
		det.Workloads++
		det.StatesChecked += res.StatesChecked
		if res.Buggy() {
			det.Found = true
			det.Via = w.Name
			det.Kind = res.Violations[0].Kind
			det.Phase = res.Violations[0].Phase
			break
		}
	}
	det.Elapsed = time.Since(start)
	return det, nil
}

// VerifyFixedClean runs the bug's targeted workloads against the FIXED
// system and reports any violation (a checker false positive).
func VerifyFixedClean(id bugs.ID, opts DetectOptions) ([]core.Violation, error) {
	info, ok := bugs.Lookup(id)
	if !ok {
		return nil, fmt.Errorf("unknown bug %d", id)
	}
	sys, err := BugSystem(info)
	if err != nil {
		return nil, err
	}
	cfg := opts.config(sys, bugs.None())
	var out []core.Violation
	for _, w := range TargetedWorkloads(id) {
		res, err := core.RunContext(context.Background(), cfg, w)
		if err != nil {
			return nil, err
		}
		out = append(out, res.Violations...)
	}
	return out, nil
}

// DetectWithACE scans ACE workloads in generation order until the bug is
// found, mirroring how the paper's ACE runs discover bugs. maxWorkloads
// bounds the scan (0 = the full seq-1 + seq-2 + seq-3-metadata corpus).
func DetectWithACE(id bugs.ID, maxWorkloads int, opts DetectOptions) (Detection, error) {
	info, ok := bugs.Lookup(id)
	if !ok {
		return Detection{}, fmt.Errorf("unknown bug %d", id)
	}
	sys, err := BugSystem(info)
	if err != nil {
		return Detection{}, err
	}
	cfg := opts.config(sys, bugs.Of(id))
	det := Detection{Bug: info, System: sys.Name}
	start := time.Now()

	run := func(suite []workload.Workload) (bool, error) {
		for _, w := range suite {
			if maxWorkloads > 0 && det.Workloads >= maxWorkloads {
				return false, nil
			}
			res, err := core.RunContext(context.Background(), cfg, w)
			if err != nil {
				return false, fmt.Errorf("bug %d on %s: %w", id, w.Name, err)
			}
			det.Workloads++
			det.StatesChecked += res.StatesChecked
			if res.Buggy() {
				det.Found = true
				det.Via = w.Name
				det.Kind = res.Violations[0].Kind
				det.Phase = res.Violations[0].Phase
				return true, nil
			}
		}
		return false, nil
	}

	for _, suite := range [][]workload.Workload{ace.Seq1(), ace.Seq2(), ace.Seq3Metadata()} {
		found, err := run(suite)
		if err != nil {
			return det, err
		}
		if found {
			break
		}
		if maxWorkloads > 0 && det.Workloads >= maxWorkloads {
			break
		}
	}
	det.Elapsed = time.Since(start)
	return det, nil
}

// DetectWithFuzzer fuzzes until the bug is found or the exec budget runs
// out, mirroring the paper's Syzkaller runs (cap 2, §4.2).
func DetectWithFuzzer(id bugs.ID, seed int64, maxExecs int) (Detection, error) {
	info, ok := bugs.Lookup(id)
	if !ok {
		return Detection{}, fmt.Errorf("unknown bug %d", id)
	}
	sys, err := BugSystem(info)
	if err != nil {
		return Detection{}, err
	}
	cfg := Options{Bugs: bugs.Of(id), Cap: 2}.ConfigFor(sys)
	det := Detection{Bug: info, System: sys.Name}
	start := time.Now()
	fz := fuzz.New(cfg, seed, nil)
	for i := 0; i < maxExecs; i++ {
		res, w, err := fz.Step()
		if err != nil {
			return det, err
		}
		det.Workloads++
		det.StatesChecked += res.StatesChecked
		if res.Buggy() {
			det.Found = true
			det.Via = w.Name
			det.Kind = res.Violations[0].Kind
			det.Phase = res.Violations[0].Phase
			break
		}
	}
	det.Elapsed = time.Since(start)
	return det, nil
}
