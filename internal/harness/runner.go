package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chipmunk/internal/core"
	"chipmunk/internal/workload"
)

// Progress is the suite-progress callback: done workloads out of total,
// with a snapshot of the census so far. Calls are serialized (under a lock
// in parallel mode), one per completed workload.
type Progress func(done, total int, c Census)

// Option tunes a Run call.
type Option func(*runConfig)

type runConfig struct {
	workers  int
	stopOnce bool
	progress Progress
}

// WithWorkers runs the suite across n worker goroutines — the in-process
// analogue of the paper's practice of splitting seq-2/seq-3 suites across
// 10-20 VMs (§4.2). Each workload's engine run is fully independent (own
// devices, own oracle), so parallelism is embarrassing. n <= 0 selects
// GOMAXPROCS; the default without this option is serial.
func WithWorkers(n int) Option {
	return func(rc *runConfig) { rc.workers = n }
}

// WithStopOnFirstBug stops the run after the first violating workload.
// Under WithWorkers, workloads already in flight still finish.
func WithStopOnFirstBug() Option {
	return func(rc *runConfig) { rc.stopOnce = true }
}

// WithProgress reports progress after every completed workload.
func WithProgress(fn Progress) Option {
	return func(rc *runConfig) { rc.progress = fn }
}

// Run executes a workload suite against a system configuration and
// aggregates statistics — the single entry point that replaced RunSuite and
// RunSuiteParallel. It fails fast on engine errors but accumulates
// violations (the caller decides what they mean). Violations are returned
// in suite order regardless of worker count.
//
// Cancelling ctx stops the run promptly; the partial census of workloads
// that completed is returned together with ctx's error.
func Run(ctx context.Context, cfg core.Config, suite []workload.Workload, opts ...Option) (*Census, []core.Violation, error) {
	rc := runConfig{workers: 1}
	for _, o := range opts {
		o(&rc)
	}
	workers := rc.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(suite) {
		workers = len(suite)
	}

	start := time.Now()
	agg := &aggregator{c: &Census{}}
	finalize := func(viol []core.Violation, err error) (*Census, []core.Violation, error) {
		agg.finish(time.Since(start))
		return agg.c, viol, err
	}

	if workers <= 1 {
		var viol []core.Violation
		for i, w := range suite {
			if err := ctx.Err(); err != nil {
				return finalize(viol, err)
			}
			res, err := core.RunContext(ctx, cfg, w)
			if err != nil {
				if ctx.Err() != nil {
					return finalize(viol, ctx.Err())
				}
				return nil, nil, fmt.Errorf("workload %s: %w", w.Name, err)
			}
			agg.add(res)
			viol = append(viol, res.Violations...)
			if rc.progress != nil {
				rc.progress(i+1, len(suite), *agg.c)
			}
			if rc.stopOnce && res.Buggy() {
				break
			}
		}
		return finalize(viol, nil)
	}

	// Parallel: workers pull workload indices; results are kept per index
	// and violations merged in suite order so the output is deterministic.
	// The census itself is all order-independent sums and maxima, so it is
	// folded as results land (progress and partial-cancel censuses see it).
	results := make([]*core.Result, len(suite))
	errs := make([]error, len(suite))
	var next int64
	var stop atomic.Bool
	var mu sync.Mutex // guards agg and progress calls
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil && !stop.Load() {
				j := int(atomic.AddInt64(&next, 1)) - 1
				if j >= len(suite) {
					return
				}
				res, err := core.RunContext(ctx, cfg, suite[j])
				if err != nil {
					errs[j] = err
					if ctx.Err() == nil {
						stop.Store(true) // engine error: fail fast
					}
					continue
				}
				results[j] = res
				mu.Lock()
				agg.add(res)
				if rc.progress != nil {
					rc.progress(agg.c.Workloads, len(suite), *agg.c)
				}
				mu.Unlock()
				if rc.stopOnce && res.Buggy() {
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()

	// Rebuild the quarantine ledger in suite order: add folded it in
	// completion order (fine for progress snapshots), but the final census
	// promises deterministic ordering regardless of worker count.
	var viol []core.Violation
	agg.c.Quarantined = nil
	for i, res := range results {
		if err := errs[i]; err != nil && ctx.Err() == nil {
			return nil, nil, fmt.Errorf("workload %s: %w", suite[i].Name, err)
		}
		if res != nil {
			viol = append(viol, res.Violations...)
			agg.c.Quarantined = append(agg.c.Quarantined, res.Quarantined...)
		}
	}
	return finalize(viol, ctx.Err())
}

// aggregator folds engine results into a Census.
type aggregator struct {
	c                      *Census
	inflightSum, inflightN int
}

func (a *aggregator) add(res *core.Result) {
	a.c.Workloads++
	a.c.StatesChecked += res.StatesChecked
	a.c.StatesDeduped += res.StatesDeduped
	a.c.TruncatedFences += res.TruncatedFences
	a.c.Fences += res.Fences
	if res.MaxInFlight > a.c.MaxInFlight {
		a.c.MaxInFlight = res.MaxInFlight
	}
	for n, cnt := range res.InFlightCounts {
		if n > 0 {
			a.inflightSum += n * cnt
			a.inflightN += cnt
		}
	}
	a.c.Violations += len(res.Violations)
	a.c.Quarantined = append(a.c.Quarantined, res.Quarantined...)
	a.c.SuppressedQuarantine += res.SuppressedQuarantine
	a.c.RetriedChecks += res.RetriedChecks
}

func (a *aggregator) finish(elapsed time.Duration) {
	if a.inflightN > 0 {
		a.c.AvgInFlight = float64(a.inflightSum) / float64(a.inflightN)
	}
	a.c.Elapsed = elapsed
}
