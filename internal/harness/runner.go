package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"chipmunk/internal/core"
	"chipmunk/internal/obs"
	"chipmunk/internal/workload"
)

// Progress is the suite-progress callback: done workloads out of total,
// with a snapshot of the census so far. Calls are always serialized, and
// never run under the aggregation lock. In serial mode there is one
// synchronous call per completed workload; in parallel mode updates are
// delivered from a dedicated goroutine and COALESCED — a slow callback
// (e.g. a terminal printer) observes the latest census rather than
// queueing one call per workload, so it can never serialize the workers.
// The final completed-workload update is always delivered before Run
// returns.
type Progress func(done, total int, c Census)

// Option tunes a Run call.
type Option func(*runConfig)

type runConfig struct {
	workers  int
	stopOnce bool
	progress Progress
}

// WithWorkers runs the suite across n worker goroutines — the in-process
// analogue of the paper's practice of splitting seq-2/seq-3 suites across
// 10-20 VMs (§4.2). Each workload's engine run is fully independent (own
// devices, own oracle), so parallelism is embarrassing. n <= 0 selects
// GOMAXPROCS; the default without this option is serial.
func WithWorkers(n int) Option {
	return func(rc *runConfig) { rc.workers = n }
}

// WithStopOnFirstBug stops the run after the first violating workload.
// Under WithWorkers, workloads already in flight still finish.
func WithStopOnFirstBug() Option {
	return func(rc *runConfig) { rc.stopOnce = true }
}

// WithProgress reports suite progress as workloads complete (see Progress
// for the delivery contract).
func WithProgress(fn Progress) Option {
	return func(rc *runConfig) { rc.progress = fn }
}

// notifier delivers progress callbacks for the parallel path from its own
// goroutine so the aggregation lock is never held across user code.
// Posts coalesce: only the latest pending update is kept, and the wake
// channel holds at most one token, so posting is non-blocking no matter
// how slow the callback is.
type notifier struct {
	fn      Progress
	total   int
	mu      sync.Mutex
	pending *progressUpdate
	wake    chan struct{}
	idle    chan struct{}
}

type progressUpdate struct {
	done int
	c    Census
}

func newNotifier(fn Progress, total int) *notifier {
	n := &notifier{fn: fn, total: total, wake: make(chan struct{}, 1), idle: make(chan struct{})}
	go n.loop()
	return n
}

// post records an update and nudges the delivery goroutine. Nil-safe
// (no WithProgress = no notifier) and safe under the aggregation lock's
// caller — but call it after unlocking anyway; it only takes its own
// micro-lock.
func (n *notifier) post(done int, c Census) {
	if n == nil {
		return
	}
	n.mu.Lock()
	n.pending = &progressUpdate{done: done, c: c}
	n.mu.Unlock()
	select {
	case n.wake <- struct{}{}:
	default: // a wake-up is already queued; it will see this update
	}
}

func (n *notifier) loop() {
	defer close(n.idle)
	for range n.wake {
		n.mu.Lock()
		u := n.pending
		n.pending = nil
		n.mu.Unlock()
		if u != nil {
			n.fn(u.done, n.total, u.c)
		}
	}
}

// stop drains and shuts the delivery goroutine down. Call only after all
// posts have happened (post-wg.Wait); every posted update is guaranteed
// delivered or superseded by a later one that is.
func (n *notifier) stop() {
	if n == nil {
		return
	}
	close(n.wake)
	<-n.idle
	// Belt and braces: a pending update can't survive the drain (a kept
	// pending implies a queued wake token), but deliver it if it did.
	n.mu.Lock()
	u := n.pending
	n.pending = nil
	n.mu.Unlock()
	if u != nil {
		n.fn(u.done, n.total, u.c)
	}
}

// Run executes a workload suite against a system configuration and
// aggregates statistics — the single entry point that replaced RunSuite and
// RunSuiteParallel. It fails fast on engine errors but accumulates
// violations (the caller decides what they mean). Violations are returned
// in suite order regardless of worker count.
//
// Cancelling ctx stops the run promptly; the partial census of workloads
// that completed is returned together with ctx's error.
func Run(ctx context.Context, cfg core.Config, suite []workload.Workload, opts ...Option) (*Census, []core.Violation, error) {
	rc := runConfig{workers: 1}
	for _, o := range opts {
		o(&rc)
	}
	workers := rc.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(suite) {
		workers = len(suite)
	}

	start := time.Now()
	agg := &aggregator{c: &Census{}}
	finalize := func(viol []core.Violation, err error) (*Census, []core.Violation, error) {
		agg.finish(time.Since(start))
		return agg.c, viol, err
	}

	if workers <= 1 {
		var viol []core.Violation
		for i, w := range suite {
			if err := ctx.Err(); err != nil {
				return finalize(viol, err)
			}
			res, err := core.RunContext(ctx, cfg, w)
			if err != nil {
				if ctx.Err() != nil {
					return finalize(viol, ctx.Err())
				}
				return nil, nil, fmt.Errorf("workload %s: %w", w.Name, err)
			}
			agg.add(res)
			viol = append(viol, res.Violations...)
			if rc.progress != nil {
				rc.progress(i+1, len(suite), *agg.c)
			}
			if rc.stopOnce && res.Buggy() {
				break
			}
		}
		return finalize(viol, nil)
	}

	// Parallel: workers pull workload indices; results are kept per index
	// and violations merged in suite order so the output is deterministic.
	// The census itself is all order-independent sums and maxima, so it is
	// folded as results land (progress and partial-cancel censuses see it).
	results := make([]*core.Result, len(suite))
	errs := make([]error, len(suite))
	var next int64
	var stop atomic.Bool
	var mu sync.Mutex // guards agg only; progress runs on the notifier goroutine
	var note *notifier
	if rc.progress != nil {
		note = newNotifier(rc.progress, len(suite))
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil && !stop.Load() {
				j := int(atomic.AddInt64(&next, 1)) - 1
				if j >= len(suite) {
					return
				}
				res, err := core.RunContext(ctx, cfg, suite[j])
				if err != nil {
					errs[j] = err
					if ctx.Err() == nil {
						stop.Store(true) // engine error: fail fast
					}
					continue
				}
				results[j] = res
				mu.Lock()
				agg.add(res)
				done, snap := agg.c.Workloads, *agg.c
				mu.Unlock()
				note.post(done, snap)
				if rc.stopOnce && res.Buggy() {
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	note.stop()

	// Rebuild the quarantine ledger in suite order: add folded it in
	// completion order (fine for progress snapshots), but the final census
	// promises deterministic ordering regardless of worker count.
	var viol []core.Violation
	agg.c.Quarantined = nil
	for i, res := range results {
		if err := errs[i]; err != nil && ctx.Err() == nil {
			return nil, nil, fmt.Errorf("workload %s: %w", suite[i].Name, err)
		}
		if res != nil {
			viol = append(viol, res.Violations...)
			agg.c.Quarantined = append(agg.c.Quarantined, res.Quarantined...)
		}
	}
	return finalize(viol, ctx.Err())
}

// aggregator folds engine results into a Census.
type aggregator struct {
	c                      *Census
	inflightSum, inflightN int
}

func (a *aggregator) add(res *core.Result) {
	a.c.Workloads++
	a.c.StatesChecked += res.StatesChecked
	a.c.StatesDeduped += res.StatesDeduped
	a.c.TruncatedFences += res.TruncatedFences
	a.c.Fences += res.Fences
	if res.MaxInFlight > a.c.MaxInFlight {
		a.c.MaxInFlight = res.MaxInFlight
	}
	for n, cnt := range res.InFlightCounts {
		if n > 0 {
			a.inflightSum += n * cnt
			a.inflightN += cnt
		}
	}
	a.c.Violations += len(res.Violations)
	a.c.Quarantined = append(a.c.Quarantined, res.Quarantined...)
	a.c.SuppressedQuarantine += res.SuppressedQuarantine
	a.c.RetriedChecks += res.RetriedChecks
	if res.Obs != nil {
		if a.c.Obs == nil {
			a.c.Obs = &obs.Snapshot{}
		}
		a.c.Obs.Merge(*res.Obs)
	}
}

func (a *aggregator) finish(elapsed time.Duration) {
	a.c.InFlightSum, a.c.InFlightN = a.inflightSum, a.inflightN
	if a.inflightN > 0 {
		a.c.AvgInFlight = float64(a.inflightSum) / float64(a.inflightN)
	}
	a.c.Elapsed = elapsed
}
