package harness

import (
	"context"
	"testing"

	"chipmunk/internal/ace"
	"chipmunk/internal/bugs"
	"chipmunk/internal/core"
)

// TestPerfFastPathsMatchLegacyAllSystems: each perf fast path — coalesced
// delta application, shared per-crash-point oracle snapshots, cross-run
// buffer pooling — must be byte-identical to its legacy code path across all
// seven systems, on violating runs (published bug sets) and clean ones
// alike, serial and at workers=8. One default-config run serves as the
// baseline every legacy knob is compared against, including quarantine
// ledgers.
func TestPerfFastPathsMatchLegacyAllSystems(t *testing.T) {
	knobs := []struct {
		name string
		set  func(*Options)
	}{
		{"per-store-apply", func(o *Options) { o.DisableCoalescedApply = true }},
		{"per-check-oracle", func(o *Options) { o.DisableOracleSnapshot = true }},
		{"fresh-buffers", func(o *Options) { o.DisableBufferReuse = true }},
	}
	for _, sys := range Systems() {
		sys := sys
		t.Run(sys.Name, func(t *testing.T) {
			t.Parallel()
			set := bugs.AllSet()
			suite := ace.Seq1()[:4]
			if sys.Weak {
				set = bugs.None()
				suite = ace.Seq1Dax()[:4]
			}
			for _, workers := range []int{1, 8} {
				base := Options{Bugs: set, Cap: 2, Workers: workers}
				fastCfg := base.ConfigFor(sys)
				for _, w := range suite {
					fast, err := core.RunContext(context.Background(), fastCfg, w)
					if err != nil {
						t.Fatalf("%s fast: %v", w.Name, err)
					}
					for _, k := range knobs {
						opts := base
						k.set(&opts)
						legacy, err := core.RunContext(context.Background(), opts.ConfigFor(sys), w)
						if err != nil {
							t.Fatalf("%s %s: %v", w.Name, k.name, err)
						}
						compareResults(t, w.Name+"/"+k.name, legacy, fast)
						if len(legacy.Quarantined) != len(fast.Quarantined) {
							t.Fatalf("%s/%s: quarantine ledgers diverge: legacy %d, fast %d",
								w.Name, k.name, len(legacy.Quarantined), len(fast.Quarantined))
						}
						for i := range legacy.Quarantined {
							if legacy.Quarantined[i].String() != fast.Quarantined[i].String() {
								t.Errorf("%s/%s: quarantine %d differs\nlegacy: %s\nfast:   %s",
									w.Name, k.name, i, legacy.Quarantined[i], fast.Quarantined[i])
							}
						}
					}
				}
			}
		})
	}
}
