// Package memfs is a purely in-memory POSIX file-system model. Chipmunk
// uses it as the oracle: the workload runs on a memfs instance in parallel
// with crash-state replay, and per-syscall snapshots of memfs define the
// legal states a crashed-and-recovered file system may present (§3.3).
//
// It is also the reference model for differential testing: every PM file
// system in fixed mode must be observationally equivalent to memfs.
package memfs

import (
	"sort"

	"chipmunk/internal/vfs"
)

type node struct {
	ino      uint64
	typ      vfs.FileType
	nlink    uint32
	data     []byte
	children map[string]*node // directories
	parent   *node            // directories
	xattrs   map[string]string
}

// FS is the in-memory file system.
type FS struct {
	root    *node
	nextIno uint64
	fds     map[vfs.FD]*node
	nextFD  vfs.FD
	mounted bool
}

// New returns an unformatted memfs.
func New() *FS { return &FS{} }

// Caps implements vfs.FS. memfs is trivially "strong": it has no
// persistence at all, so every completed operation is final.
func (f *FS) Caps() vfs.Caps {
	return vfs.Caps{Name: "memfs", Strong: true, AtomicWrite: true, SyncDataWrites: true}
}

// Mkfs implements vfs.FS.
func (f *FS) Mkfs() error {
	f.root = &node{ino: 1, typ: vfs.TypeDir, nlink: 2, children: map[string]*node{}}
	f.root.parent = f.root
	f.nextIno = 2
	f.fds = map[vfs.FD]*node{}
	f.nextFD = 3
	f.mounted = true
	return nil
}

// Mount implements vfs.FS. memfs has no media, so mounting an unformatted
// instance formats it.
func (f *FS) Mount() error {
	if f.root == nil {
		return f.Mkfs()
	}
	f.fds = map[vfs.FD]*node{}
	f.mounted = true
	return nil
}

// Unmount implements vfs.FS.
func (f *FS) Unmount() error {
	f.mounted = false
	f.fds = map[vfs.FD]*node{}
	return nil
}

// lookup resolves path to a node.
func (f *FS) lookup(path string) (*node, error) {
	n := f.root
	for _, c := range vfs.Components(path) {
		if n.typ != vfs.TypeDir {
			return nil, vfs.ErrNotDir
		}
		child, ok := n.children[c]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		n = child
	}
	return n, nil
}

// lookupParent resolves the parent directory and final name of path.
func (f *FS) lookupParent(path string) (*node, string, error) {
	dir, name := vfs.SplitPath(path)
	if name == "" {
		return nil, "", vfs.ErrInvalid
	}
	if !vfs.ValidName(name) {
		return nil, "", vfs.ErrNameTooLong
	}
	p, err := f.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if p.typ != vfs.TypeDir {
		return nil, "", vfs.ErrNotDir
	}
	return p, name, nil
}

// Create implements vfs.FS (O_CREAT|O_EXCL semantics, like ACE's creat).
func (f *FS) Create(path string) (vfs.FD, error) {
	p, name, err := f.lookupParent(path)
	if err != nil {
		return -1, err
	}
	if _, ok := p.children[name]; ok {
		return -1, vfs.ErrExist
	}
	n := &node{ino: f.nextIno, typ: vfs.TypeRegular, nlink: 1}
	f.nextIno++
	p.children[name] = n
	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = n
	return fd, nil
}

// Open implements vfs.FS.
func (f *FS) Open(path string) (vfs.FD, error) {
	n, err := f.lookup(path)
	if err != nil {
		return -1, err
	}
	if n.typ == vfs.TypeDir {
		return -1, vfs.ErrIsDir
	}
	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = n
	return fd, nil
}

// Close implements vfs.FS.
func (f *FS) Close(fd vfs.FD) error {
	if _, ok := f.fds[fd]; !ok {
		return vfs.ErrBadFD
	}
	delete(f.fds, fd)
	return nil
}

// Mkdir implements vfs.FS.
func (f *FS) Mkdir(path string) error {
	p, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	if _, ok := p.children[name]; ok {
		return vfs.ErrExist
	}
	n := &node{ino: f.nextIno, typ: vfs.TypeDir, nlink: 2, children: map[string]*node{}, parent: p}
	f.nextIno++
	p.children[name] = n
	p.nlink++
	return nil
}

// Rmdir implements vfs.FS.
func (f *FS) Rmdir(path string) error {
	p, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	n, ok := p.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	if n.typ != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	if len(n.children) > 0 {
		return vfs.ErrNotEmpty
	}
	delete(p.children, name)
	p.nlink--
	return nil
}

// Link implements vfs.FS.
func (f *FS) Link(oldPath, newPath string) error {
	n, err := f.lookup(oldPath)
	if err != nil {
		return err
	}
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	p, name, err := f.lookupParent(newPath)
	if err != nil {
		return err
	}
	if _, ok := p.children[name]; ok {
		return vfs.ErrExist
	}
	p.children[name] = n
	n.nlink++
	return nil
}

// Unlink implements vfs.FS.
func (f *FS) Unlink(path string) error {
	p, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	n, ok := p.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	delete(p.children, name)
	n.nlink--
	return nil
}

// Rename implements vfs.FS.
func (f *FS) Rename(oldPath, newPath string) error {
	oldPath, newPath = vfs.Clean(oldPath), vfs.Clean(newPath)
	if oldPath == newPath {
		return nil
	}
	if vfs.IsAncestor(oldPath, newPath) {
		return vfs.ErrInvalid
	}
	op, oname, err := f.lookupParent(oldPath)
	if err != nil {
		return err
	}
	n, ok := op.children[oname]
	if !ok {
		return vfs.ErrNotExist
	}
	np, nname, err := f.lookupParent(newPath)
	if err != nil {
		return err
	}
	if existing, ok := np.children[nname]; ok {
		if n.typ == vfs.TypeDir {
			if existing.typ != vfs.TypeDir {
				return vfs.ErrNotDir
			}
			if len(existing.children) > 0 {
				return vfs.ErrNotEmpty
			}
			np.nlink--
		} else {
			if existing.typ == vfs.TypeDir {
				return vfs.ErrIsDir
			}
			existing.nlink--
		}
	}
	delete(op.children, oname)
	np.children[nname] = n
	if n.typ == vfs.TypeDir {
		op.nlink--
		np.nlink++
		n.parent = np
	}
	return nil
}

// Truncate implements vfs.FS.
func (f *FS) Truncate(path string, size int64) error {
	if size < 0 {
		return vfs.ErrInvalid
	}
	n, err := f.lookup(path)
	if err != nil {
		return err
	}
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	n.setSize(size)
	return nil
}

func (n *node) setSize(size int64) {
	cur := int64(len(n.data))
	switch {
	case size < cur:
		n.data = n.data[:size]
	case size > cur:
		n.data = append(n.data, make([]byte, size-cur)...)
	}
}

// Fallocate implements vfs.FS (mode 0: allocate, extending size).
func (f *FS) Fallocate(fd vfs.FD, off, length int64) error {
	n, ok := f.fds[fd]
	if !ok {
		return vfs.ErrBadFD
	}
	if off < 0 || length <= 0 {
		return vfs.ErrInvalid
	}
	if off+length > int64(len(n.data)) {
		n.setSize(off + length)
	}
	return nil
}

// Pwrite implements vfs.FS.
func (f *FS) Pwrite(fd vfs.FD, data []byte, off int64) (int, error) {
	n, ok := f.fds[fd]
	if !ok {
		return 0, vfs.ErrBadFD
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	end := off + int64(len(data))
	if end > int64(len(n.data)) {
		n.setSize(end)
	}
	copy(n.data[off:], data)
	return len(data), nil
}

// Pread implements vfs.FS.
func (f *FS) Pread(fd vfs.FD, buf []byte, off int64) (int, error) {
	n, ok := f.fds[fd]
	if !ok {
		return 0, vfs.ErrBadFD
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if off >= int64(len(n.data)) {
		return 0, nil
	}
	return copy(buf, n.data[off:]), nil
}

// Fsync implements vfs.FS (no-op: memfs has no volatile/durable split).
func (f *FS) Fsync(fd vfs.FD) error {
	if _, ok := f.fds[fd]; !ok {
		return vfs.ErrBadFD
	}
	return nil
}

// Sync implements vfs.FS.
func (f *FS) Sync() error { return nil }

// Stat implements vfs.FS.
func (f *FS) Stat(path string) (vfs.Stat, error) {
	n, err := f.lookup(path)
	if err != nil {
		return vfs.Stat{}, err
	}
	return vfs.Stat{Ino: n.ino, Type: n.typ, Nlink: n.nlink, Size: int64(len(n.data))}, nil
}

// ReadDir implements vfs.FS.
func (f *FS) ReadDir(path string) ([]vfs.DirEnt, error) {
	n, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.typ != vfs.TypeDir {
		return nil, vfs.ErrNotDir
	}
	out := make([]vfs.DirEnt, 0, len(n.children))
	for name, c := range n.children {
		out = append(out, vfs.DirEnt{Name: name, Ino: c.ino, Type: c.typ})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Setxattr implements vfs.XattrFS.
func (f *FS) Setxattr(path, name string, value []byte) error {
	n, err := f.lookup(path)
	if err != nil {
		return err
	}
	if !vfs.ValidName(name) {
		return vfs.ErrInvalid
	}
	if n.xattrs == nil {
		n.xattrs = map[string]string{}
	}
	n.xattrs[name] = string(value)
	return nil
}

// Getxattr implements vfs.XattrFS.
func (f *FS) Getxattr(path, name string) ([]byte, error) {
	n, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	v, ok := n.xattrs[name]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	return []byte(v), nil
}

// Removexattr implements vfs.XattrFS.
func (f *FS) Removexattr(path, name string) error {
	n, err := f.lookup(path)
	if err != nil {
		return err
	}
	if _, ok := n.xattrs[name]; !ok {
		return vfs.ErrNotExist
	}
	delete(n.xattrs, name)
	return nil
}

// Listxattr implements vfs.XattrFS.
func (f *FS) Listxattr(path string) ([]string, error) {
	n, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(n.xattrs))
	for name := range n.xattrs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

var (
	_ vfs.FS      = (*FS)(nil)
	_ vfs.XattrFS = (*FS)(nil)
)

// OpenFDs implements vfs.FDCounter.
func (f *FS) OpenFDs() int { return len(f.fds) }
