package memfs

import (
	"bytes"
	"errors"
	"testing"

	"chipmunk/internal/vfs"
)

func mustMkfs(t *testing.T) *FS {
	t.Helper()
	f := New()
	if err := f.Mkfs(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCreateStatUnlink(t *testing.T) {
	f := mustMkfs(t)
	fd, err := f.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat("/a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Type != vfs.TypeRegular || st.Nlink != 1 || st.Size != 0 {
		t.Fatalf("stat = %+v", st)
	}
	if _, err := f.Create("/a"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := f.Close(fd); err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat("/a"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("stat after unlink: %v", err)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	f := mustMkfs(t)
	fd, _ := f.Create("/a")
	n, err := f.Pwrite(fd, []byte("hello world"), 0)
	if err != nil || n != 11 {
		t.Fatalf("pwrite = %d, %v", n, err)
	}
	// Sparse write past EOF zero-fills.
	if _, err := f.Pwrite(fd, []byte("x"), 20); err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat("/a")
	if st.Size != 21 {
		t.Fatalf("size = %d", st.Size)
	}
	buf := make([]byte, 21)
	n, err = f.Pread(fd, buf, 0)
	if err != nil || n != 21 {
		t.Fatalf("pread = %d, %v", n, err)
	}
	if !bytes.Equal(buf[:11], []byte("hello world")) || buf[15] != 0 || buf[20] != 'x' {
		t.Fatalf("contents = %q", buf)
	}
	// Read past EOF.
	if n, _ := f.Pread(fd, buf, 100); n != 0 {
		t.Fatalf("read past EOF = %d", n)
	}
}

func TestMkdirRmdir(t *testing.T) {
	f := mustMkfs(t)
	if err := f.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	root, _ := f.Stat("/")
	if root.Nlink != 3 {
		t.Fatalf("root nlink = %d, want 3", root.Nlink)
	}
	if _, err := f.Create("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rmdir("/d"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := f.Unlink("/d/f"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	root, _ = f.Stat("/")
	if root.Nlink != 2 {
		t.Fatalf("root nlink = %d, want 2", root.Nlink)
	}
}

func TestLink(t *testing.T) {
	f := mustMkfs(t)
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("data"), 0)
	if err := f.Link("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	sa, _ := f.Stat("/a")
	sb, _ := f.Stat("/b")
	if sa.Ino != sb.Ino || sa.Nlink != 2 || sb.Nlink != 2 {
		t.Fatalf("link: %+v %+v", sa, sb)
	}
	if err := f.Link("/a", "/b"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("link existing: %v", err)
	}
	if err := f.Unlink("/a"); err != nil {
		t.Fatal(err)
	}
	sb, _ = f.Stat("/b")
	if sb.Nlink != 1 {
		t.Fatalf("nlink after unlink = %d", sb.Nlink)
	}
	// Content still readable via the other name.
	fd2, _ := f.Open("/b")
	buf := make([]byte, 4)
	f.Pread(fd2, buf, 0)
	if !bytes.Equal(buf, []byte("data")) {
		t.Fatal("link does not share data")
	}
}

func TestLinkDirRejected(t *testing.T) {
	f := mustMkfs(t)
	f.Mkdir("/d")
	if err := f.Link("/d", "/e"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("link dir: %v", err)
	}
}

func TestRenameFile(t *testing.T) {
	f := mustMkfs(t)
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("xyz"), 0)
	if err := f.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat("/a"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("old name survived rename")
	}
	st, err := f.Stat("/b")
	if err != nil || st.Size != 3 {
		t.Fatalf("new name: %+v %v", st, err)
	}
}

func TestRenameOverwrite(t *testing.T) {
	f := mustMkfs(t)
	fda, _ := f.Create("/a")
	f.Pwrite(fda, []byte("new"), 0)
	fdb, _ := f.Create("/b")
	f.Pwrite(fdb, []byte("old-contents"), 0)
	if err := f.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat("/b")
	if st.Size != 3 {
		t.Fatalf("overwrite rename size = %d", st.Size)
	}
}

func TestRenameDirRules(t *testing.T) {
	f := mustMkfs(t)
	f.Mkdir("/d1")
	f.Mkdir("/d2")
	f.Create("/d2/f")
	// Rename dir over non-empty dir fails.
	if err := f.Rename("/d1", "/d2"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("rename over non-empty: %v", err)
	}
	f.Unlink("/d2/f")
	if err := f.Rename("/d1", "/d2"); err != nil {
		t.Fatalf("rename over empty dir: %v", err)
	}
	// Rename into own subtree fails.
	f.Mkdir("/d2/sub")
	if err := f.Rename("/d2", "/d2/sub/x"); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("rename into subtree: %v", err)
	}
	// Directory rename across parents updates nlink.
	f.Mkdir("/p")
	if err := f.Rename("/d2/sub", "/p/sub"); err != nil {
		t.Fatal(err)
	}
	p, _ := f.Stat("/p")
	if p.Nlink != 3 {
		t.Fatalf("new parent nlink = %d", p.Nlink)
	}
	d2, _ := f.Stat("/d2")
	if d2.Nlink != 2 {
		t.Fatalf("old parent nlink = %d", d2.Nlink)
	}
}

func TestRenameSamePathNoop(t *testing.T) {
	f := mustMkfs(t)
	f.Create("/a")
	if err := f.Rename("/a", "/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat("/a"); err != nil {
		t.Fatal("file disappeared on self-rename")
	}
}

func TestTruncate(t *testing.T) {
	f := mustMkfs(t)
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("0123456789"), 0)
	if err := f.Truncate("/a", 4); err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat("/a")
	if st.Size != 4 {
		t.Fatalf("size = %d", st.Size)
	}
	if err := f.Truncate("/a", 8); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	f.Pread(fd, buf, 0)
	if !bytes.Equal(buf, []byte{'0', '1', '2', '3', 0, 0, 0, 0}) {
		t.Fatalf("truncate-extend = %q", buf)
	}
	if err := f.Truncate("/a", -1); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatal("negative truncate accepted")
	}
}

func TestFallocate(t *testing.T) {
	f := mustMkfs(t)
	fd, _ := f.Create("/a")
	if err := f.Fallocate(fd, 10, 20); err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat("/a")
	if st.Size != 30 {
		t.Fatalf("size = %d", st.Size)
	}
	// Fallocate within existing size does not shrink.
	if err := f.Fallocate(fd, 0, 5); err != nil {
		t.Fatal(err)
	}
	st, _ = f.Stat("/a")
	if st.Size != 30 {
		t.Fatalf("size shrank to %d", st.Size)
	}
	if err := f.Fallocate(fd, -1, 5); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatal("negative offset accepted")
	}
	if err := f.Fallocate(999, 0, 5); !errors.Is(err, vfs.ErrBadFD) {
		t.Fatal("bad fd accepted")
	}
}

func TestOpenDirAndMissing(t *testing.T) {
	f := mustMkfs(t)
	f.Mkdir("/d")
	if _, err := f.Open("/d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("open dir: %v", err)
	}
	if _, err := f.Open("/missing"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	if err := f.Close(12345); !errors.Is(err, vfs.ErrBadFD) {
		t.Fatalf("close bad fd: %v", err)
	}
}

func TestPathThroughFile(t *testing.T) {
	f := mustMkfs(t)
	f.Create("/a")
	if _, err := f.Create("/a/b"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("create through file: %v", err)
	}
}

func TestReadDirSorted(t *testing.T) {
	f := mustMkfs(t)
	f.Create("/c")
	f.Create("/a")
	f.Mkdir("/b")
	ents, err := f.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 3 || ents[0].Name != "a" || ents[1].Name != "b" || ents[2].Name != "c" {
		t.Fatalf("ents = %+v", ents)
	}
	if ents[1].Type != vfs.TypeDir {
		t.Fatal("type wrong")
	}
	if _, err := f.ReadDir("/a"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatal("readdir on file")
	}
}

func TestTwoFDsSameFile(t *testing.T) {
	f := mustMkfs(t)
	fd1, _ := f.Create("/a")
	fd2, _ := f.Open("/a")
	f.Pwrite(fd1, []byte("AAAA"), 0)
	f.Pwrite(fd2, []byte("BB"), 2)
	buf := make([]byte, 4)
	f.Pread(fd1, buf, 0)
	if !bytes.Equal(buf, []byte("AABB")) {
		t.Fatalf("contents = %q", buf)
	}
}

func TestUnlinkDirRejected(t *testing.T) {
	f := mustMkfs(t)
	f.Mkdir("/d")
	if err := f.Unlink("/d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("unlink dir: %v", err)
	}
	if err := f.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
}

func TestMountUnmountCycle(t *testing.T) {
	f := New()
	if err := f.Mount(); err != nil { // mount of unformatted formats
		t.Fatal(err)
	}
	f.Create("/a")
	if err := f.Unmount(); err != nil {
		t.Fatal(err)
	}
	if err := f.Mount(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat("/a"); err != nil {
		t.Fatal("remount lost state (memfs keeps state per instance)")
	}
}

func TestXattrs(t *testing.T) {
	f := mustMkfs(t)
	f.Create("/a")
	if err := f.Setxattr("/a", "user.k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := f.Setxattr("/a", "user.j", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	v, err := f.Getxattr("/a", "user.k")
	if err != nil || string(v) != "v1" {
		t.Fatalf("getxattr = %q %v", v, err)
	}
	names, err := f.Listxattr("/a")
	if err != nil || len(names) != 2 || names[0] != "user.j" {
		t.Fatalf("listxattr = %v %v", names, err)
	}
	if err := f.Removexattr("/a", "user.k"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Getxattr("/a", "user.k"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("removed attr: %v", err)
	}
	if err := f.Removexattr("/a", "user.k"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("double remove")
	}
	if err := f.Setxattr("/a", "bad/name", nil); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatal("bad attr name accepted")
	}
	if _, err := f.Getxattr("/missing", "user.k"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("xattr on missing path")
	}
}

func TestRenameErrorPaths(t *testing.T) {
	f := mustMkfs(t)
	f.Mkdir("/d")
	f.Create("/f")
	// Rename dir over file and file over dir.
	if err := f.Rename("/d", "/f"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("dir over file: %v", err)
	}
	if err := f.Rename("/f", "/d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("file over dir: %v", err)
	}
	if err := f.Rename("/missing", "/x"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("missing source: %v", err)
	}
	// Rename file over file with nlink > 1 keeps the victim's other link.
	f.Link("/f", "/f2")
	f.Create("/g")
	if err := f.Rename("/g", "/f"); err != nil {
		t.Fatal(err)
	}
	st, err := f.Stat("/f2")
	if err != nil || st.Nlink != 1 {
		t.Fatalf("victim's other link: %+v %v", st, err)
	}
}
