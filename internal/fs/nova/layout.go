// Package nova implements a NOVA-like log-structured PM file system
// [Xu & Swanson, FAST '16], plus the NOVA-Fortis extensions [SOSP '17]
// (inode replication and checksums) behind a mode flag.
//
// Architecture, mirroring the real system:
//
//   - Every inode owns a private log of fixed-size entries held in a linked
//     list of log pages. Directory logs hold dentry add/remove entries;
//     file logs hold write and attribute entries that reference data pages.
//   - Data writes are copy-on-write at file-page granularity: a write
//     allocates fresh data pages, copies/merges content with non-temporal
//     stores, appends write entries, and atomically publishes them by
//     advancing the log tail pointer (an 8-byte in-place update).
//   - Operations spanning multiple inodes (link, unlink, rename, mkdir,
//     rmdir) use a small redo journal to update the affected tail/nlink
//     words atomically.
//   - Free-page lists, the directory-entry maps, and the file-page radix
//     trees live only in DRAM and are rebuilt by scanning logs at mount.
//
// The bugs of Table 1 (ids 1-12) are injected behind bugs.Set flags; see
// the package-level documentation of chipmunk/internal/bugs.
package nova

import (
	"encoding/binary"
	"hash/crc32"

	"chipmunk/internal/vfs"
)

const (
	// PageSize is both the allocation unit and the file-page granularity.
	PageSize = 4096
	// InodeSize is the on-PM inode footprint (primary + Fortis replica).
	InodeSize = 256
	// EntrySize is the fixed log-entry size (one cache line).
	EntrySize = 64
	// Magic identifies a formatted NOVA image.
	Magic = 0x4E4F5641 // "NOVA"

	// Superblock layout (page 0).
	sbMagicOff   = 0
	sbFortisOff  = 8  // 1 if formatted in Fortis mode
	sbPagesOff   = 16 // total pages on device
	sbInodesOff  = 24 // number of inode slots
	sbVersionOff = 32

	// Region layout in pages.
	sbPage         = 0
	journalPage    = 1
	freeLogPage    = 2 // Fortis free-log (bug 11's persistent free records)
	inodeTblPage   = 3
	inodeTblPages  = 8                            // 8 pages * 16 inodes = 128 inodes
	csumTablePage  = inodeTblPage + inodeTblPages // Fortis per-page data csums
	csumTablePages = 4                            // covers devices up to 16 MiB
	poolStartPage  = csumTablePage + csumTablePages

	// InodeCount is the number of inode slots.
	InodeCount = inodeTblPages * (PageSize / InodeSize)

	// RootIno is the root directory's inode number (slot index).
	RootIno = 1

	// Inode field offsets (within the 128-byte primary half).
	inoValidOff   = 0   // u32: 1 = in use
	inoTypeOff    = 4   // u32: vfs.FileType
	inoNlinkOff   = 8   // u64
	inoHeadOff    = 16  // u64: first log page (pool page index), 0 = none
	inoTailOff    = 24  // u64: absolute device offset one past last valid entry
	inoCsumOff    = 120 // u32 crc of bytes [0,120) — Fortis only
	inoReplicaOff = 128 // replica copy of [0,128) — Fortis only

	// Log page layout: entries fill the page up to logNextOff; the 8 bytes
	// at logNextOff hold the pool-page index of the next log page (0 =
	// end). Real NOVA packs 4 KB pages with entries; we deliberately scale
	// a "log page" down to a few entries so that the page-chaining code —
	// where Table 1 bug 1 lives — is exercised by the small ACE workloads,
	// just as multi-page logs are routine on real multi-GB devices.
	entriesPerPage = 3
	logNextOff     = entriesPerPage * EntrySize

	// Log entry types.
	etInvalid      = 0
	etDentryAdd    = 1
	etDentryRemove = 2
	etWrite        = 3
	etAttr         = 4

	// Entry header offsets.
	entType  = 0 // u8
	entFlags = 1 // u8: bit 0 = invalidated in place
	entCsum  = 4 // u32 over payload [8,64) — Fortis only
	// Payload begins at byte 8.

	// Dentry add/remove payload.
	deIno     = 8  // u64 target inode
	deFType   = 16 // u8
	deNameLen = 17 // u8
	deName    = 18 // up to 46 bytes

	// Write entry payload.
	weFilePage = 8  // u64 file page index
	wePoolPage = 16 // u64 data pool page index
	weSizeHint = 24 // u64 file size after this write
	weFalloc   = 32 // u8: 1 if this entry came from fallocate
	weZeroFrom = 40 // u64: valid bytes in page for Fortis csum (unused otherwise)

	// Attr (truncate) entry payload.
	atSize = 8 // u64 new file size
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func csum32(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// inodeOff returns the device offset of inode slot ino.
func inodeOff(ino uint64) int64 {
	return int64(inodeTblPage)*PageSize + int64(ino)*InodeSize
}

// pageOff returns the device offset of pool page p (absolute page index).
func pageOff(p uint64) int64 { return int64(p) * PageSize }

func le64(b []byte) uint64     { return binary.LittleEndian.Uint64(b) }
func le32(b []byte) uint32     { return binary.LittleEndian.Uint32(b) }
func put64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func put32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

// entry is the decoded form of a log entry.
type entry struct {
	typ     uint8
	invalid bool
	csum    uint32

	// dentry fields
	ino   uint64
	ftype vfs.FileType
	name  string

	// write fields
	filePage uint64
	poolPage uint64
	sizeHint uint64
	falloc   bool

	// attr fields
	size uint64
}

// encode serializes e into a fresh EntrySize buffer. Fortis callers patch
// the csum afterwards (or deliberately skip it — bug 9).
func (e entry) encode() []byte {
	b := make([]byte, EntrySize)
	b[entType] = e.typ
	if e.invalid {
		b[entFlags] = 1
	}
	switch e.typ {
	case etDentryAdd, etDentryRemove:
		put64(b[deIno:], e.ino)
		b[deFType] = byte(e.ftype)
		b[deNameLen] = byte(len(e.name))
		copy(b[deName:], e.name)
	case etWrite:
		put64(b[weFilePage:], e.filePage)
		put64(b[wePoolPage:], e.poolPage)
		put64(b[weSizeHint:], e.sizeHint)
		if e.falloc {
			b[weFalloc] = 1
		}
	case etAttr:
		put64(b[atSize:], e.size)
	}
	return b
}

// payloadCsum computes the Fortis checksum of an encoded entry.
func payloadCsum(b []byte) uint32 { return csum32(b[8:EntrySize]) }

// decodeEntry parses an entry from raw bytes.
func decodeEntry(b []byte) entry {
	e := entry{
		typ:     b[entType],
		invalid: b[entFlags]&1 != 0,
		csum:    le32(b[entCsum:]),
	}
	switch e.typ {
	case etDentryAdd, etDentryRemove:
		e.ino = le64(b[deIno:])
		e.ftype = vfs.FileType(b[deFType])
		n := int(b[deNameLen])
		if n > EntrySize-deName {
			n = EntrySize - deName
		}
		e.name = string(b[deName : deName+n])
	case etWrite:
		e.filePage = le64(b[weFilePage:])
		e.poolPage = le64(b[wePoolPage:])
		e.sizeHint = le64(b[weSizeHint:])
		e.falloc = b[weFalloc] != 0
	case etAttr:
		e.size = le64(b[atSize:])
	}
	return e
}
