package nova

import "chipmunk/internal/vfs"

// pageAlloc is the DRAM-only free-page bitmap. NOVA keeps allocator state
// volatile as a performance and write-endurance optimization and rebuilds
// it at mount by scanning inode logs (§5.1 Observation 3) — which is
// exactly why allocator rebuild code is a bug hotspot.
type pageAlloc struct {
	used  []bool // indexed by absolute page number
	start uint64 // first allocatable page
	total uint64 // one past last allocatable page
	hint  uint64 // next-fit rotating hint
}

func newPageAlloc(start, total uint64) *pageAlloc {
	return &pageAlloc{used: make([]bool, total), start: start, total: total, hint: start}
}

// alloc returns a free page or ErrNoSpace.
func (a *pageAlloc) alloc() (uint64, error) {
	for i := uint64(0); i < a.total-a.start; i++ {
		p := a.start + (a.hint-a.start+i)%(a.total-a.start)
		if !a.used[p] {
			a.used[p] = true
			a.hint = p + 1
			return p, nil
		}
	}
	return 0, vfs.ErrNoSpace
}

// markUsed claims a page during rebuild. It reports false if the page was
// already claimed (a page referenced twice — corruption).
func (a *pageAlloc) markUsed(p uint64) bool {
	if p < a.start || p >= a.total || a.used[p] {
		return false
	}
	a.used[p] = true
	return true
}

// release frees a page. It reports false on double-free (used by the
// Fortis free-log replay to detect bug 11's consequence).
func (a *pageAlloc) release(p uint64) bool {
	if p < a.start || p >= a.total || !a.used[p] {
		return false
	}
	a.used[p] = false
	return true
}

func (a *pageAlloc) inUse(p uint64) bool {
	return p >= a.start && p < a.total && a.used[p]
}

func (a *pageAlloc) freePages() int {
	n := 0
	for p := a.start; p < a.total; p++ {
		if !a.used[p] {
			n++
		}
	}
	return n
}

// inodeAlloc hands out inode-table slots; also DRAM-only.
type inodeAlloc struct {
	used []bool
}

func newInodeAlloc(n int) *inodeAlloc {
	ia := &inodeAlloc{used: make([]bool, n)}
	ia.used[0] = true // slot 0 reserved (0 = "no inode")
	return ia
}

func (a *inodeAlloc) alloc() (uint64, error) {
	for i, u := range a.used {
		if !u {
			a.used[i] = true
			return uint64(i), nil
		}
	}
	return 0, vfs.ErrNoSpace
}

func (a *inodeAlloc) markUsed(ino uint64) bool {
	if ino >= uint64(len(a.used)) || a.used[ino] {
		return false
	}
	a.used[ino] = true
	return true
}

func (a *inodeAlloc) release(ino uint64) {
	if ino < uint64(len(a.used)) {
		a.used[ino] = false
	}
}
