package nova

import (
	"bytes"
	"sort"

	"chipmunk/internal/bugs"
	"chipmunk/internal/vfs"
)

// Mount implements vfs.FS: attach to an existing (possibly crashed) image
// and rebuild all volatile state — the DRAM inode cache, directory maps,
// file-page radix trees, and the free-page allocator — by scanning the
// on-PM logs, exactly as NOVA does. This rebuild path is where Observation
// 3's bug class lives.
func (f *FS) Mount() error {
	pm := f.pm
	if pm.Load64(sbMagicOff) != Magic {
		return corrupt("bad superblock magic %#x", pm.Load64(sbMagicOff))
	}
	f.fortis = pm.Load64(sbFortisOff) == 1
	f.totalPages = pm.Load64(sbPagesOff)
	if f.totalPages == 0 || int64(f.totalPages)*PageSize > pm.Size() {
		return corrupt("superblock page count %d exceeds device", f.totalPages)
	}

	f.alloc = newPageAlloc(poolStartPage, f.totalPages)
	f.ialloc = newInodeAlloc(InodeCount)
	f.inodes = map[uint64]*dnode{}
	f.fds = map[vfs.FD]uint64{}
	f.nextFD = 3
	f.lazyReplicas = nil
	f.deferredCsums = nil

	// Redo a committed journal before reading any metadata.
	f.recoverJournal()

	// Pass 1: scan the inode table.
	for ino := uint64(1); ino < InodeCount; ino++ {
		d, ok := f.readInode(ino)
		if !ok {
			continue
		}
		if !f.ialloc.markUsed(ino) {
			return corrupt("inode %d claimed twice", ino)
		}
		f.inodes[ino] = d
	}
	root, ok := f.inodes[RootIno]
	if !ok || root.typ != vfs.TypeDir {
		return corrupt("root inode missing or not a directory")
	}

	// Passes 2, 3, 5 and 6 iterate inodes in ascending order, never in map
	// order: with several inodes corrupt, WHICH one aborts the mount (and
	// so the error a crash-state check reports) must be a function of the
	// image alone, or two mounts of the same crash image classify it
	// differently and bug triage stops being reproducible.
	for _, ino := range f.sortedInos() {
		if err := f.rebuildLog(f.inodes[ino]); err != nil {
			return err
		}
	}

	// Pass 3: claim referenced pages; double references are corruption.
	refset := map[uint64]bool{}
	for _, ino := range f.sortedInos() {
		d := f.inodes[ino]
		for _, lp := range d.logPages {
			if !f.alloc.markUsed(lp) {
				return corrupt("log page %d referenced twice", lp)
			}
			refset[lp] = true
		}
		for _, fp := range sortedPageKeys(d.pages) {
			if !f.alloc.markUsed(d.pages[fp]) {
				return corrupt("data page %d referenced twice", d.pages[fp])
			}
			refset[d.pages[fp]] = true
		}
	}

	// Pass 4 (Fortis): replay the truncate free-log. Under bug 11 the log
	// survives crashes that already reclaimed (or never released) the
	// pages, and the replay tries to deallocate free or in-use blocks.
	if f.fortis {
		base := int64(freeLogPage) * PageSize
		count := pm.Load64(base)
		if count > (PageSize-8)/8 {
			return corrupt("free-log count %d out of range", count)
		}
		for i := uint64(0); i < count; i++ {
			p := pm.Load64(base + 8 + int64(i)*8)
			if refset[p] {
				return corrupt("free-log deallocates in-use page %d", p)
			}
			if !f.alloc.release(p) {
				return corrupt("free-log deallocates already-free page %d", p)
			}
		}
	}

	// Pass 5: resolve directory entries; a dentry pointing at a dead inode
	// slot (bug 2's consequence) becomes a "bad" node that fails with EIO.
	// (Sorted snapshot also because placeholder creation below inserts into
	// f.inodes mid-walk; ranging the map while growing it may skip them.)
	referenced := map[uint64]bool{RootIno: true}
	for _, ino := range f.sortedInos() {
		d := f.inodes[ino]
		if d.typ != vfs.TypeDir {
			continue
		}
		for name, de := range d.dirents {
			referenced[de.ino] = true
			if f.inodes[de.ino] == nil {
				f.inodes[de.ino] = &dnode{ino: de.ino, typ: vfs.TypeRegular, bad: true}
				_ = name
			}
		}
	}

	// Pass 6: orphan GC — valid inodes unreachable from the root are
	// left-overs of interrupted operations and are reclaimed.
	reachable := map[uint64]bool{RootIno: true}
	f.markReachable(root, reachable)
	for _, ino := range f.sortedInos() {
		d := f.inodes[ino]
		if reachable[ino] || d.bad {
			continue
		}
		f.destroyInode(d)
	}
	// Bad placeholders that are not referenced by any reachable dir vanish.
	for ino, d := range f.inodes {
		if d.bad && !reachable[ino] {
			delete(f.inodes, ino)
		}
	}

	f.mounted = true
	return nil
}

// sortedInos returns the cached inode numbers in ascending order, the
// canonical walk order for every multi-inode pass.
func (f *FS) sortedInos() []uint64 {
	inos := make([]uint64, 0, len(f.inodes))
	for ino := range f.inodes {
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	return inos
}

// sortedPageKeys returns a file's mapped page indices in ascending order,
// for walks whose side effects (PM writes, error selection) must not depend
// on map order.
func sortedPageKeys(pages map[uint64]uint64) []uint64 {
	fps := make([]uint64, 0, len(pages))
	for fp := range pages {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	return fps
}

func (f *FS) markReachable(d *dnode, seen map[uint64]bool) {
	if d.typ != vfs.TypeDir || d.bad {
		return
	}
	for _, de := range d.dirents {
		if seen[de.ino] {
			continue
		}
		seen[de.ino] = true
		if child := f.inodes[de.ino]; child != nil {
			f.markReachable(child, seen)
		}
	}
}

// readInode loads inode slot ino, handling Fortis checksum validation and
// primary/replica arbitration. ok is false for unused slots.
func (f *FS) readInode(ino uint64) (*dnode, bool) {
	off := inodeOff(ino)
	primary := f.pm.Load(off, 128)
	if !f.fortis {
		if le32(primary[inoValidOff:]) != 1 {
			return nil, false
		}
		return f.dnodeFromImage(ino, primary), true
	}

	replica := f.pm.Load(off+inoReplicaOff, 128)
	pOK := le32(primary[inoValidOff:]) == 1 && csum32(primary[:inoCsumOff]) == le32(primary[inoCsumOff:])
	rOK := le32(replica[inoValidOff:]) == 1 && csum32(replica[:inoCsumOff]) == le32(replica[inoCsumOff:])
	switch {
	case pOK && rOK:
		d := f.dnodeFromImage(ino, primary)
		if !bytes.Equal(primary, replica) {
			if f.has(bugs.FortisReplicaSkew) {
				// Bug 10: recovery never re-syncs the replica; the latent
				// mismatch blocks later deletions.
				d.conflicted = true
			} else {
				f.writeReplica(ino, primary)
			}
		}
		return d, true
	case pOK:
		// Torn replica update: primary is authoritative; repair replica.
		f.writeReplica(ino, primary)
		return f.dnodeFromImage(ino, primary), true
	case rOK:
		// Torn primary update: roll back to the replica.
		f.pm.Store(off, replica)
		f.pm.Flush(off, 128)
		f.pm.Fence()
		return f.dnodeFromImage(ino, replica), true
	default:
		return nil, false
	}
}

func (f *FS) dnodeFromImage(ino uint64, img []byte) *dnode {
	d := &dnode{
		ino:   ino,
		typ:   vfs.FileType(le32(img[inoTypeOff:])),
		nlink: le64(img[inoNlinkOff:]),
		head:  le64(img[inoHeadOff:]),
		tail:  int64(le64(img[inoTailOff:])),
	}
	if d.typ == vfs.TypeDir {
		d.dirents = map[string]*dirent{}
	} else {
		d.pages = map[uint64]uint64{}
	}
	return d
}

// rebuildLog replays d's log into its DRAM maps, validating structure as it
// goes. Bugs 1 and 3 surface here as corrupt-log errors; bug 9 as entries
// whose checksum no longer matches; bugs 7 and 8 as silently wrong replay.
func (f *FS) rebuildLog(d *dnode) error {
	if d.head == 0 {
		if d.tail != 0 {
			return corrupt("inode %d: tail %d with no log", d.ino, d.tail)
		}
		return nil
	}
	if d.head < poolStartPage || d.head >= f.totalPages {
		return corrupt("inode %d: log head %d out of range", d.ino, d.head)
	}
	page := d.head
	pos := pageOff(page)
	d.logPages = []uint64{page}
	seen := map[uint64]bool{page: true}

	for pos != d.tail {
		if pos%PageSize == logNextOff {
			next := f.pm.Load64(pos)
			if next == 0 {
				// The tail says more entries follow, but the link that
				// reaches them was lost — bug 1's crash signature.
				return corrupt("inode %d: log ends at %d before tail %d", d.ino, pos, d.tail)
			}
			if next < poolStartPage || next >= f.totalPages || seen[next] {
				return corrupt("inode %d: bad log link %d", d.ino, next)
			}
			seen[next] = true
			d.logPages = append(d.logPages, next)
			page = next
			pos = pageOff(page)
			continue
		}
		raw := f.pm.Load(pos, EntrySize)
		e := decodeEntry(raw)
		if e.typ == etInvalid || e.typ > etAttr {
			// The tail points past bytes that never became a valid entry —
			// bug 3's crash signature.
			return corrupt("inode %d: invalid log entry type %d at %d", d.ino, e.typ, pos)
		}
		if f.fortis && payloadCsum(raw) != e.csum {
			// Bug 9: a published entry whose checksum never landed.
			if d.typ == vfs.TypeDir {
				d.bad = true
				return nil
			}
			// File entry: treated as unreadable and skipped — data loss.
			pos += EntrySize
			continue
		}
		if !e.invalid {
			f.replayEntry(d, e, pos)
		}
		pos += EntrySize
	}
	return nil
}

// replayEntry applies one valid entry to the DRAM state. pos is the
// entry's device offset, remembered so later renames can invalidate the
// dentry in place.
func (f *FS) replayEntry(d *dnode, e entry, pos int64) {
	switch e.typ {
	case etDentryAdd:
		if d.dirents != nil {
			d.dirents[e.name] = &dirent{ino: e.ino, entryOff: pos}
		}
	case etDentryRemove:
		if d.dirents != nil {
			delete(d.dirents, e.name)
		}
	case etWrite:
		if d.pages == nil {
			return
		}
		if e.falloc && !f.has(bugs.NovaFallocUnfenced) {
			// Fixed: fallocate entries only fill holes.
			if _, mapped := d.pages[e.filePage]; !mapped {
				d.pages[e.filePage] = e.poolPage
			}
		} else {
			// Buggy (bug 8): fallocate entries clobber existing mappings.
			d.pages[e.filePage] = e.poolPage
		}
		d.size = int64(e.sizeHint)
	case etAttr:
		d.size = int64(e.size)
		if d.pages != nil {
			first := uint64((d.size + PageSize - 1) / PageSize)
			for fp := range d.pages {
				if fp >= first {
					delete(d.pages, fp)
				}
			}
		}
	}
}
