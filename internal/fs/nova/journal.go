package nova

import "chipmunk/internal/bugs"

// The journal is a small redo log used to make multi-inode operations
// (link, unlink, rename, mkdir, rmdir) atomic. Each record is a byte-range
// write — in plain NOVA an 8-byte tail or nlink word, in Fortis mode a full
// 128-byte inode image so the checksum and value change together.
//
// Protocol: record the writes, flush, fence; set the commit flag, fence;
// apply the writes in place, fence; clear the commit flag, fence. Recovery
// redoes a committed journal and ignores an uncommitted one. This mirrors
// NOVA's lightweight journal for directory operations.

const (
	jStateOff   = 0  // u64: 0 = free, 1 = committed
	jCountOff   = 8  // u64: number of records
	jRecsOff    = 16 // records of {off u64, len u64, data[jRecDataMax]}
	jRecDataMax = 128
	jRecSize    = 16 + jRecDataMax
	// jMaxRecs bounds a transaction: (4096-16)/144 = 28.
	jMaxRecs = (PageSize - jRecsOff) / jRecSize
)

type jrec struct {
	off  int64
	data []byte
}

// txn accumulates byte-range writes to be applied atomically.
type txn struct {
	fs   *FS
	recs []jrec
}

func (fs *FS) beginTx() *txn { return &txn{fs: fs} }

// set records an 8-byte word write.
func (t *txn) set(off int64, val uint64) {
	b := make([]byte, 8)
	put64(b, val)
	t.setBytes(off, b)
}

// setBytes records a byte-range write of up to jRecDataMax bytes.
func (t *txn) setBytes(off int64, data []byte) {
	if len(t.recs) >= jMaxRecs {
		panic("nova: journal transaction overflow")
	}
	if len(data) > jRecDataMax {
		panic("nova: journal record too large")
	}
	t.recs = append(t.recs, jrec{off, append([]byte(nil), data...)})
}

// addInode records the primary inode image for d (reflecting d's current
// DRAM fields) and, unless lazyReplica is in effect under bug 10, the
// replica image as well.
func (t *txn) addInode(d *dnode, lazyReplica bool) {
	img := t.fs.inodeImage(d)
	t.setBytes(inodeOff(d.ino), img)
	if t.fs.fortis {
		if lazyReplica && t.fs.has(bugs.FortisReplicaSkew) {
			t.fs.lazyReplicas = append(t.fs.lazyReplicas, d.ino)
		} else {
			t.setBytes(inodeOff(d.ino)+inoReplicaOff, img)
		}
	}
}

// commit runs the journal protocol and applies the records in place.
func (t *txn) commit() {
	fs := t.fs
	base := int64(journalPage) * PageSize
	// 1. Record the writes.
	for i, r := range t.recs {
		off := base + jRecsOff + int64(i)*jRecSize
		fs.pm.Store64(off, uint64(r.off))
		fs.pm.Store64(off+8, uint64(len(r.data)))
		fs.pm.Store(off+16, r.data)
	}
	fs.pm.Store64(base+jCountOff, uint64(len(t.recs)))
	fs.pm.Flush(base+jCountOff, 8+len(t.recs)*jRecSize)
	fs.pm.Fence()
	// 2. Commit.
	fs.pm.PersistStore64(base+jStateOff, 1)
	fs.pm.Fence()
	// 3. Apply in place.
	for _, r := range t.recs {
		fs.pm.Store(r.off, r.data)
		fs.pm.Flush(r.off, len(r.data))
	}
	fs.pm.Fence()
	// 4. Free the journal.
	fs.pm.PersistStore64(base+jStateOff, 0)
	fs.pm.Fence()
}

// recoverJournal redoes a committed journal at mount.
func (fs *FS) recoverJournal() {
	base := int64(journalPage) * PageSize
	if fs.pm.Load64(base+jStateOff) != 1 {
		return
	}
	count := fs.pm.Load64(base + jCountOff)
	if count > jMaxRecs {
		count = jMaxRecs
	}
	for i := uint64(0); i < count; i++ {
		off := base + jRecsOff + int64(i)*jRecSize
		target := int64(fs.pm.Load64(off))
		n := fs.pm.Load64(off + 8)
		if n > jRecDataMax || target < 0 || target+int64(n) > fs.pm.Size() {
			continue
		}
		data := fs.pm.Load(off+16, int(n))
		fs.pm.Store(target, data)
		fs.pm.Flush(target, int(n))
	}
	fs.pm.Fence()
	fs.pm.PersistStore64(base+jStateOff, 0)
	fs.pm.Fence()
}
