package nova

import (
	"sync"

	"chipmunk/internal/bugs"
	"chipmunk/internal/vfs"
)

// pagePool recycles Pwrite's page staging buffers across calls and mounts —
// the crash-state checker's usability probe writes through a fresh FS on
// every mounted state, so per-call page allocations would dominate the
// check loop's heap traffic.
var pagePool sync.Pool

func grabPage() []byte {
	if v := pagePool.Get(); v != nil {
		return v.([]byte)
	}
	return make([]byte, PageSize)
}

func putPage(b []byte) {
	pagePool.Put(b) //nolint:staticcheck // fixed-size []byte, pooled by design
}

// maxFileSize bounds file growth so fuzzer-generated offsets cannot exhaust
// the pool (cf. the paper's §4.4 non-crash-consistency finding that NOVA
// mishandled enormous write sizes).
const maxFileSize = 1 << 20

// csumOff returns the device offset of the Fortis data checksum for pool
// page p.
func csumOff(p uint64) int64 {
	return int64(csumTablePage)*PageSize + int64(p)*4
}

// writePageCsum stores the Fortis checksum for a data page (flushed, not
// fenced — callers batch the fence).
func (f *FS) writePageCsum(poolPage uint64, content []byte) {
	if !f.fortis {
		return
	}
	f.pm.Store32(csumOff(poolPage), csum32(content))
	f.pm.Flush(csumOff(poolPage), 4)
}

// verifyPageCsum checks a data page against its Fortis checksum.
func (f *FS) verifyPageCsum(poolPage uint64) bool {
	if !f.fortis {
		return true
	}
	content := f.pm.Load(pageOff(poolPage), PageSize)
	return csum32(content) == f.pm.Load32(csumOff(poolPage))
}

// Pwrite implements vfs.FS.
//
// NOVA data writes are copy-on-write at page granularity: fresh pages are
// filled with non-temporal stores and published atomically by the tail
// update, making multi-page writes crash-atomic. Old pages are freed in
// DRAM only after the publish.
func (f *FS) Pwrite(fd vfs.FD, data []byte, off int64) (int, error) {
	d, err := f.fdInode(fd)
	if err != nil {
		return 0, err
	}
	if d.bad {
		return 0, vfs.ErrIO
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if len(data) == 0 {
		return 0, nil
	}
	end := off + int64(len(data))
	if end > maxFileSize {
		return 0, vfs.ErrNoSpace
	}
	newSize := d.size
	if end > newSize {
		newSize = end
	}

	firstPage := uint64(off / PageSize)
	lastPage := uint64((end - 1) / PageSize)

	// Phase 1: build the new data pages with NT stores. The staging buffer
	// is pooled: the device and the trace both copy the bytes they keep, so
	// it can be recycled as soon as the page is stored.
	type pendingPage struct {
		filePage uint64
		poolPage uint64
	}
	var pend []pendingPage
	content := grabPage()
	defer putPage(content)
	for fp := firstPage; fp <= lastPage; fp++ {
		np, err := f.alloc.alloc()
		if err != nil {
			for _, p := range pend {
				f.alloc.release(p.poolPage)
			}
			return 0, err
		}
		if old, ok := d.pages[fp]; ok {
			f.pm.LoadInto(pageOff(old), content)
		} else {
			clear(content)
		}
		pageStart := int64(fp) * PageSize
		from := max64(off, pageStart)
		to := min64(end, pageStart+PageSize)
		copy(content[from-pageStart:], data[from-off:to-off])
		f.pm.MemcpyNT(pageOff(np), content)
		f.writePageCsum(np, content)
		pend = append(pend, pendingPage{fp, np})
	}
	f.pm.Fence()

	// Phase 2: append one write entry per page.
	entries := make([]entry, len(pend))
	for i, p := range pend {
		entries[i] = entry{typ: etWrite, filePage: p.filePage, poolPage: p.poolPage, sizeHint: uint64(newSize)}
	}

	if f.has(bugs.NovaEntryAfterTail) {
		// Bug 3: publish the final tail first, then write the entries.
		tail := d.tail
		offs := make([]int64, len(entries))
		raws := make([][]byte, len(entries))
		for i, e := range entries {
			raw := e.encode()
			f.finishEncode(raw, false)
			var err error
			offs[i], tail, err = f.reserveSlot(d, tail)
			if err != nil {
				return 0, err
			}
			raws[i] = raw
		}
		d.tail = tail
		f.syncInode(d, true)
		for i := range raws {
			f.writeEntry(offs[i], raws[i])
		}
		f.pm.Fence()
	} else {
		tail := d.tail
		for _, e := range entries {
			var err error
			_, tail, err = f.writeEntryNoPublish(d, tail, e, false)
			if err != nil {
				return 0, err
			}
		}
		d.tail = tail
		f.syncInode(d, true)
	}

	// Phase 3: DRAM state and old-page reclamation.
	for _, p := range pend {
		if old, ok := d.pages[p.filePage]; ok {
			f.alloc.release(old)
		}
		d.pages[p.filePage] = p.poolPage
	}
	d.size = newSize
	f.endOp()
	f.maybeGC(d)
	return len(data), nil
}

// Pread implements vfs.FS.
func (f *FS) Pread(fd vfs.FD, buf []byte, off int64) (int, error) {
	d, err := f.fdInode(fd)
	if err != nil {
		return 0, err
	}
	if d.bad {
		return 0, vfs.ErrIO
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if off >= d.size {
		return 0, nil
	}
	n := int64(len(buf))
	if off+n > d.size {
		n = d.size - off
	}
	for pos := off; pos < off+n; {
		fp := uint64(pos / PageSize)
		pageStart := int64(fp) * PageSize
		chunk := min64(pageStart+PageSize, off+n) - pos
		if pp, ok := d.pages[fp]; ok {
			if !f.verifyPageCsum(pp) {
				return 0, vfs.ErrIO
			}
			f.pm.LoadInto(pageOff(pp)+(pos-pageStart), buf[pos-off:pos-off+chunk])
		} else {
			zero(buf[pos-off : pos-off+chunk])
		}
		pos += chunk
	}
	return int(n), nil
}

// Truncate implements vfs.FS.
//
// Shrinks publish an attr entry (or, in fixed Fortis mode, a CoW write
// entry for a partial tail page), then invalidate the write entries fully
// beyond the new size and zero the tail remainder. Bug 7 also invalidates
// the entry that straddles the new size, so the rebuild loses data below
// it. Bugs 11 and 12 live in the Fortis variant (persistent free-log and
// late checksum).
func (f *FS) Truncate(path string, size int64) error {
	if size < 0 {
		return vfs.ErrInvalid
	}
	if size > maxFileSize {
		return vfs.ErrNoSpace
	}
	d, err := f.lookup(path)
	if err != nil {
		return err
	}
	if d.bad {
		return vfs.ErrIO
	}
	if d.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	if size == d.size {
		return nil
	}
	if size > d.size {
		// Extension: a single attr entry.
		if _, err := f.appendEntry(d, entry{typ: etAttr, size: uint64(size)}, false, true); err != nil {
			return err
		}
		d.size = size
		f.endOp()
		return nil
	}
	return f.truncateShrink(d, size)
}

func (f *FS) truncateShrink(d *dnode, size int64) error {
	oldSize := d.size

	// Pages fully beyond the new size will be freed. Collected in file-page
	// order: the list lands on PM via the Fortis free-log, so its order is
	// image content, not a DRAM detail.
	var freed []uint64
	firstDead := uint64((size + PageSize - 1) / PageSize)
	for _, fp := range sortedPageKeys(d.pages) {
		if fp >= firstDead {
			freed = append(freed, d.pages[fp])
		}
	}

	// Bug 11 (Fortis): persist the page numbers about to be freed in a
	// free-log before the truncate commits; recovery replays it against an
	// allocator that has already reclaimed them.
	if f.fortis && f.has(bugs.FortisDoubleFree) && len(freed) > 0 {
		f.writeFreeLog(freed)
	}

	tailPage := uint64(size / PageSize)
	tailLen := int(size % PageSize)
	tailMapped := false
	if tailLen > 0 {
		_, tailMapped = d.pages[tailPage]
	}

	switch {
	case f.fortis && tailMapped && !f.has(bugs.FortisCsumStaleData):
		// Fixed Fortis: CoW the partial tail page so data and checksum are
		// published together.
		np, err := f.alloc.alloc()
		if err != nil {
			return err
		}
		content := make([]byte, PageSize)
		f.pm.LoadInto(pageOff(d.pages[tailPage]), content)
		zero(content[tailLen:])
		f.pm.MemcpyNT(pageOff(np), content)
		f.writePageCsum(np, content)
		f.pm.Fence()
		if _, err := f.appendEntry(d, entry{
			typ: etWrite, filePage: tailPage, poolPage: np, sizeHint: uint64(size),
		}, false, true); err != nil {
			f.alloc.release(np)
			return err
		}
		f.alloc.release(d.pages[tailPage])
		d.pages[tailPage] = np

	default:
		// Publish the attr entry first; the tail-page remainder is zeroed
		// afterwards (invisible once the size is durable).
		if _, err := f.appendEntry(d, entry{typ: etAttr, size: uint64(size)}, false, true); err != nil {
			return err
		}
		if tailMapped {
			pp := d.pages[tailPage]
			f.pm.MemsetNT(pageOff(pp)+int64(tailLen), 0, PageSize-tailLen)
			f.pm.Fence()
			if f.fortis {
				// Bug 12: the data changed at the previous fence; the
				// checksum catches up only here, and the gap is a crash
				// window. (The fixed Fortis path above never gets here.)
				content := f.pm.Load(pageOff(pp), PageSize)
				f.writePageCsum(pp, content)
				f.pm.Fence()
			}
		}
	}

	// Invalidate write entries for pages beyond the new size — and, under
	// bug 7, also the entry of the page that straddles it, which the
	// rebuild will then silently drop.
	f.invalidateBeyond(d, size)

	for fp := range d.pages {
		if fp >= firstDead {
			f.alloc.release(d.pages[fp])
			delete(d.pages, fp)
		}
	}
	d.size = size

	// Fortis: the free-log is cleared once the truncate is fully applied.
	if f.fortis && f.has(bugs.FortisDoubleFree) && len(freed) > 0 {
		f.clearFreeLog()
	}
	_ = oldSize
	f.endOp()
	return nil
}

// invalidateBeyond walks d's log and invalidates, in place, write entries
// whose pages lie beyond the new size (bug 7: including the straddler).
func (f *FS) invalidateBeyond(d *dnode, size int64) {
	straddler := uint64(size / PageSize)
	hasStraddle := size%PageSize != 0
	f.walkLiveLog(d, func(off int64, e entry) {
		if e.typ != etWrite || e.invalid {
			return
		}
		pageStart := int64(e.filePage) * PageSize
		switch {
		case pageStart >= size:
			f.invalidateEntry(off)
		case hasStraddle && e.filePage == straddler && f.has(bugs.NovaTruncateRebuildLoss):
			f.invalidateEntry(off)
		}
	})
}

// walkLiveLog iterates the entries of a mounted inode's log in order,
// following volatile state (used by live operations, not recovery).
func (f *FS) walkLiveLog(d *dnode, fn func(off int64, e entry)) {
	if d.head == 0 {
		return
	}
	page := d.head
	pos := pageOff(page)
	seen := map[uint64]bool{page: true}
	for pos != d.tail {
		if pos%PageSize == logNextOff {
			next := f.pm.Load64(pos)
			if next == 0 || seen[next] {
				return
			}
			seen[next] = true
			page = next
			pos = pageOff(page)
			continue
		}
		raw := f.pm.Load(pos, EntrySize)
		fn(pos, decodeEntry(raw))
		pos += EntrySize
	}
}

// writeFreeLog persists the to-be-freed page list (bug 11 only).
func (f *FS) writeFreeLog(pages []uint64) {
	base := int64(freeLogPage) * PageSize
	for i, p := range pages {
		f.pm.Store64(base+8+int64(i)*8, p)
	}
	f.pm.Store64(base, uint64(len(pages)))
	f.pm.Flush(base, 8+len(pages)*8)
	f.pm.Fence()
}

// clearFreeLog marks the free-log empty after the truncate completes.
func (f *FS) clearFreeLog() {
	f.pm.PersistStore64(int64(freeLogPage)*PageSize, 0)
	f.pm.Fence()
}

// Fallocate implements vfs.FS (mode 0: allocate and extend).
//
// Fixed behaviour emits fallocate entries only for unmapped pages. Bug 8
// emits them for every page in the range; the live DRAM state stays correct
// but the rebuild maps the fresh zero pages over existing data.
func (f *FS) Fallocate(fd vfs.FD, off, length int64) error {
	d, err := f.fdInode(fd)
	if err != nil {
		return err
	}
	if d.bad {
		return vfs.ErrIO
	}
	if off < 0 || length <= 0 {
		return vfs.ErrInvalid
	}
	end := off + length
	if end > maxFileSize {
		return vfs.ErrNoSpace
	}
	newSize := d.size
	if end > newSize {
		newSize = end
	}
	buggy := f.has(bugs.NovaFallocUnfenced)

	firstPage := uint64(off / PageSize)
	lastPage := uint64((end - 1) / PageSize)
	type pendingPage struct {
		filePage, poolPage uint64
		mapped             bool
	}
	var pend []pendingPage
	for fp := firstPage; fp <= lastPage; fp++ {
		_, mapped := d.pages[fp]
		if mapped && !buggy {
			continue
		}
		np, err := f.alloc.alloc()
		if err != nil {
			for _, p := range pend {
				f.alloc.release(p.poolPage)
			}
			return err
		}
		f.pm.MemsetNT(pageOff(np), 0, PageSize)
		f.writePageCsum(np, make([]byte, PageSize))
		pend = append(pend, pendingPage{fp, np, mapped})
	}
	if len(pend) > 0 {
		f.pm.Fence()
	}

	tail := d.tail
	for _, p := range pend {
		var err error
		_, tail, err = f.writeEntryNoPublish(d, tail, entry{
			typ: etWrite, filePage: p.filePage, poolPage: p.poolPage,
			sizeHint: uint64(newSize), falloc: true,
		}, false)
		if err != nil {
			return err
		}
	}
	if len(pend) == 0 && newSize != d.size {
		var err error
		_, tail, err = f.writeEntryNoPublish(d, tail, entry{typ: etAttr, size: uint64(newSize)}, false)
		if err != nil {
			return err
		}
	}
	if tail != d.tail {
		d.tail = tail
		f.syncInode(d, false)
	}

	for _, p := range pend {
		if p.mapped {
			// Buggy mode allocated a page it will not use in DRAM; the
			// rebuild is what (incorrectly) installs it.
			continue
		}
		d.pages[p.filePage] = p.poolPage
	}
	d.size = newSize
	f.endOp()
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
