package nova

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"chipmunk/internal/bugs"
	"chipmunk/internal/fs/memfs"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
	"chipmunk/internal/vfs"
)

func newRef(t *testing.T) vfs.FS {
	t.Helper()
	ref := memfs.New()
	if err := ref.Mkfs(); err != nil {
		t.Fatal(err)
	}
	return ref
}

const testDevSize = 4 << 20

func newNova(t *testing.T, set bugs.Set, opts ...Option) (*FS, *pmem.Device) {
	t.Helper()
	dev := pmem.NewDevice(testDevSize)
	f := New(persist.New(dev), set, opts...)
	if err := f.Mkfs(); err != nil {
		t.Fatal(err)
	}
	return f, dev
}

func writeFile(t *testing.T, f vfs.FS, path string, data []byte, off int64) {
	t.Helper()
	fd, err := f.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close(fd)
	if _, err := f.Pwrite(fd, data, off); err != nil {
		t.Fatalf("pwrite %s: %v", path, err)
	}
}

func readFile(t *testing.T, f vfs.FS, path string) []byte {
	t.Helper()
	st, err := f.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	fd, err := f.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close(fd)
	buf := make([]byte, st.Size)
	n, err := f.Pread(fd, buf, 0)
	if err != nil {
		t.Fatalf("pread %s: %v", path, err)
	}
	return buf[:n]
}

func TestMkfsAndRootStat(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	st, err := f.Stat("/")
	if err != nil {
		t.Fatal(err)
	}
	if st.Type != vfs.TypeDir || st.Nlink != 2 {
		t.Fatalf("root stat = %+v", st)
	}
	ents, err := f.ReadDir("/")
	if err != nil || len(ents) != 0 {
		t.Fatalf("root entries = %v, %v", ents, err)
	}
}

func TestCreateWriteRead(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	fd, err := f.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox")
	if _, err := f.Pwrite(fd, data, 0); err != nil {
		t.Fatal(err)
	}
	f.Close(fd)
	if got := readFile(t, f, "/a"); !bytes.Equal(got, data) {
		t.Fatalf("read = %q", got)
	}
	st, _ := f.Stat("/a")
	if st.Size != int64(len(data)) || st.Nlink != 1 {
		t.Fatalf("stat = %+v", st)
	}
}

func TestWriteCrossPageAndSparse(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	fd, _ := f.Create("/a")
	big := make([]byte, PageSize+100)
	for i := range big {
		big[i] = byte(i)
	}
	if _, err := f.Pwrite(fd, big, PageSize-50); err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat("/a")
	if st.Size != PageSize-50+int64(len(big)) {
		t.Fatalf("size = %d", st.Size)
	}
	// Hole reads as zeros.
	buf := make([]byte, 10)
	if _, err := f.Pread(fd, buf, 0); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	// Data round-trips.
	got := make([]byte, len(big))
	f.Pread(fd, got, PageSize-50)
	if !bytes.Equal(got, big) {
		t.Fatal("cross-page data mismatch")
	}
}

func TestOverwritePreservesRest(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("AAAAAAAAAA"), 0)
	f.Pwrite(fd, []byte("BB"), 4)
	got := readFile(t, f, "/a")
	if string(got) != "AAAABBAAAA" {
		t.Fatalf("got %q", got)
	}
}

func TestMkdirTreeAndRmdir(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	if err := f.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := f.Mkdir("/d/e"); err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat("/d")
	if st.Nlink != 3 {
		t.Fatalf("dir nlink = %d", st.Nlink)
	}
	if err := f.Rmdir("/d"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("rmdir non-empty: %v", err)
	}
	if err := f.Rmdir("/d/e"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat("/d"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("dir survived rmdir")
	}
}

func TestLinkUnlink(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("shared"), 0)
	f.Close(fd)
	if err := f.Link("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	sa, _ := f.Stat("/a")
	sb, _ := f.Stat("/b")
	if sa.Ino != sb.Ino || sa.Nlink != 2 {
		t.Fatalf("link stats: %+v %+v", sa, sb)
	}
	if err := f.Unlink("/a"); err != nil {
		t.Fatal(err)
	}
	sb, _ = f.Stat("/b")
	if sb.Nlink != 1 {
		t.Fatalf("nlink = %d", sb.Nlink)
	}
	if got := readFile(t, f, "/b"); string(got) != "shared" {
		t.Fatalf("data = %q", got)
	}
	if err := f.Unlink("/b"); err != nil {
		t.Fatal(err)
	}
}

func TestRenameVariants(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("x"), 0)
	f.Close(fd)
	// Same-dir.
	if err := f.Rename("/a", "/b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Stat("/a"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("old name lives")
	}
	// Cross-dir.
	f.Mkdir("/d")
	if err := f.Rename("/b", "/d/c"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, f, "/d/c"); string(got) != "x" {
		t.Fatalf("data = %q", got)
	}
	// Overwrite.
	fd2, _ := f.Create("/victim")
	f.Pwrite(fd2, []byte("victimdata"), 0)
	f.Close(fd2)
	if err := f.Rename("/d/c", "/victim"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, f, "/victim"); string(got) != "x" {
		t.Fatalf("overwrite = %q", got)
	}
	// Directory rename across parents.
	f.Mkdir("/p1")
	f.Mkdir("/p1/sub")
	f.Mkdir("/p2")
	if err := f.Rename("/p1/sub", "/p2/sub"); err != nil {
		t.Fatal(err)
	}
	p1, _ := f.Stat("/p1")
	p2, _ := f.Stat("/p2")
	if p1.Nlink != 2 || p2.Nlink != 3 {
		t.Fatalf("dir nlinks after move: %d %d", p1.Nlink, p2.Nlink)
	}
}

func TestTruncateShrinkExtend(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	fd, _ := f.Create("/a")
	data := make([]byte, 6000)
	for i := range data {
		data[i] = byte(i%250) + 1
	}
	f.Pwrite(fd, data, 0)
	if err := f.Truncate("/a", 100); err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat("/a")
	if st.Size != 100 {
		t.Fatalf("size = %d", st.Size)
	}
	if got := readFile(t, f, "/a"); !bytes.Equal(got, data[:100]) {
		t.Fatal("prefix lost")
	}
	// Extend re-exposes zeros, not stale bytes.
	if err := f.Truncate("/a", 200); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, f, "/a")
	if !bytes.Equal(got[:100], data[:100]) {
		t.Fatal("prefix lost after extend")
	}
	for _, b := range got[100:] {
		if b != 0 {
			t.Fatalf("stale bytes after extend: %v", got[100:])
		}
	}
}

func TestFallocate(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("keepme"), 0)
	if err := f.Fallocate(fd, 0, 8000); err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat("/a")
	if st.Size != 8000 {
		t.Fatalf("size = %d", st.Size)
	}
	// Fallocate must not clobber existing data.
	got := readFile(t, f, "/a")
	if string(got[:6]) != "keepme" {
		t.Fatalf("data clobbered: %q", got[:6])
	}
}

func TestErrors(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	if _, err := f.Create("/missing/x"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("create in missing dir: %v", err)
	}
	f.Create("/a")
	if _, err := f.Create("/a"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := f.Mkdir("/a"); !errors.Is(err, vfs.ErrExist) {
		t.Fatalf("mkdir over file: %v", err)
	}
	if _, err := f.Open("/nope"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	f.Mkdir("/d")
	if err := f.Unlink("/d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("unlink dir: %v", err)
	}
	if err := f.Rmdir("/a"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatalf("rmdir file: %v", err)
	}
	if err := f.Rename("/d", "/d/x"); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("rename into self: %v", err)
	}
	if err := f.Link("/d", "/l"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatalf("link dir: %v", err)
	}
	if err := f.Truncate("/a", -5); !errors.Is(err, vfs.ErrInvalid) {
		t.Fatalf("negative truncate: %v", err)
	}
}

// remount unmounts and mounts a fresh FS instance over the same device,
// forcing a full recovery scan of the durable state.
func remount(t *testing.T, dev *pmem.Device, set bugs.Set, opts ...Option) *FS {
	t.Helper()
	f2 := New(persist.New(dev), set, opts...)
	if err := f2.Mount(); err != nil {
		t.Fatalf("remount: %v", err)
	}
	return f2
}

func TestRemountPreservesState(t *testing.T) {
	for _, fortis := range []bool{false, true} {
		var opts []Option
		if fortis {
			opts = append(opts, WithFortis())
		}
		f, dev := newNova(t, bugs.None(), opts...)
		fd, _ := f.Create("/a")
		f.Pwrite(fd, []byte("persistent data"), 0)
		f.Close(fd)
		f.Mkdir("/d")
		f.Create("/d/inner")
		f.Link("/a", "/d/hard")
		f.Unmount()

		f2 := remount(t, dev, bugs.None(), opts...)
		if got := readFile(t, f2, "/a"); string(got) != "persistent data" {
			t.Fatalf("fortis=%v: data = %q", fortis, got)
		}
		st, err := f2.Stat("/d/hard")
		if err != nil || st.Nlink != 2 {
			t.Fatalf("fortis=%v: hard link: %+v %v", fortis, st, err)
		}
		if _, err := f2.Stat("/d/inner"); err != nil {
			t.Fatalf("fortis=%v: inner: %v", fortis, err)
		}
	}
}

func TestRemountAfterLogChaining(t *testing.T) {
	// More root-dir operations than one scaled-down log page holds.
	f, dev := newNova(t, bugs.None())
	names := []string{"/a", "/b", "/c", "/d", "/e", "/f", "/g", "/h"}
	for _, n := range names {
		if _, err := f.Create(n); err != nil {
			t.Fatalf("create %s: %v", n, err)
		}
	}
	f.Unmount()
	f2 := remount(t, dev, bugs.None())
	ents, err := f2.ReadDir("/")
	if err != nil || len(ents) != len(names) {
		t.Fatalf("entries after chaining = %d, %v", len(ents), err)
	}
}

// TestCrashImageSynchrony: NOVA is synchronous — mounting the persistent
// image after completed operations must reproduce exactly the pre-crash
// observable state.
func TestCrashImageSynchrony(t *testing.T) {
	f, dev := newNova(t, bugs.None())
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("synchronous!"), 0)
	f.Close(fd)
	f.Mkdir("/d")
	f.Rename("/a", "/d/b")

	img := dev.CrashImage()
	f2 := New(persist.New(pmem.FromImage(img)), bugs.None())
	if err := f2.Mount(); err != nil {
		t.Fatalf("mount crash image: %v", err)
	}
	if got := readFile(t, f2, "/d/b"); string(got) != "synchronous!" {
		t.Fatalf("data after crash = %q", got)
	}
	if _, err := f2.Stat("/a"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("old name present after crash")
	}
}

func TestOrphanGC(t *testing.T) {
	// An inode initialized but whose dentry publish never landed must be
	// garbage-collected at mount. Simulate by crafting: create a file, then
	// crash image taken BEFORE the op completes is hard to get here, so
	// instead verify free-space steady-state: create+unlink cycles do not
	// leak pages across remounts.
	f, dev := newNova(t, bugs.None())
	for i := 0; i < 20; i++ {
		fd, err := f.Create("/tmp")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Pwrite(fd, make([]byte, 5000), 0); err != nil {
			t.Fatal(err)
		}
		f.Close(fd)
		if err := f.Unlink("/tmp"); err != nil {
			t.Fatal(err)
		}
	}
	free1 := f.alloc.freePages()
	f.Unmount()
	f2 := remount(t, dev, bugs.None())
	free2 := f2.alloc.freePages()
	if free2 < free1 {
		t.Fatalf("pages leaked across remount: %d -> %d", free1, free2)
	}
}

func TestBadFDAndClosedFD(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	if _, err := f.Pwrite(99, []byte("x"), 0); !errors.Is(err, vfs.ErrBadFD) {
		t.Fatal("bad fd write")
	}
	fd, _ := f.Create("/a")
	f.Close(fd)
	if _, err := f.Pread(fd, make([]byte, 1), 0); !errors.Is(err, vfs.ErrBadFD) {
		t.Fatal("closed fd read")
	}
	if err := f.Fsync(fd); !errors.Is(err, vfs.ErrBadFD) {
		t.Fatal("closed fd fsync")
	}
}

func TestFortisReadsVerifyChecksums(t *testing.T) {
	f, dev := newNova(t, bugs.None(), WithFortis())
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("checksummed"), 0)
	f.Close(fd)
	f.Unmount()
	f2 := remount(t, dev, bugs.None(), WithFortis())
	if got := readFile(t, f2, "/a"); string(got) != "checksummed" {
		t.Fatalf("data = %q", got)
	}
}

func TestCapsNames(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	if f.Caps().Name != "nova" || !f.Caps().Strong || !f.Caps().AtomicWrite {
		t.Fatalf("caps = %+v", f.Caps())
	}
	g, _ := newNova(t, bugs.None(), WithFortis())
	if g.Caps().Name != "nova-fortis" {
		t.Fatalf("caps = %+v", g.Caps())
	}
}

func TestMountGarbageImageFails(t *testing.T) {
	dev := pmem.NewDevice(testDevSize)
	f := New(persist.New(dev), bugs.None())
	if err := f.Mount(); !errors.Is(err, vfs.ErrCorrupt) {
		t.Fatalf("mount of unformatted device: %v", err)
	}
}

// applyOps drives the same random operation sequence against two file
// systems and reports whether every op returned equivalent errors.
type refOp struct {
	kind int
	a, b string
	off  int64
	n    int
	seed int64
}

func genOps(rng *rand.Rand, count int) []refOp {
	paths := []string{"/f0", "/f1", "/d0/f2", "/d0", "/d1"}
	ops := make([]refOp, count)
	for i := range ops {
		ops[i] = refOp{
			kind: rng.Intn(9),
			a:    paths[rng.Intn(len(paths))],
			b:    paths[rng.Intn(len(paths))],
			off:  rng.Int63n(5000),
			n:    rng.Intn(3000) + 1,
			seed: rng.Int63(),
		}
	}
	return ops
}

func applyOp(f vfs.FS, op refOp) error {
	switch op.kind {
	case 0:
		fd, err := f.Create(op.a)
		if err != nil {
			return err
		}
		return f.Close(fd)
	case 1:
		return f.Mkdir(op.a)
	case 2:
		fd, err := f.Open(op.a)
		if err != nil {
			return err
		}
		defer f.Close(fd)
		buf := make([]byte, op.n)
		r := rand.New(rand.NewSource(op.seed))
		r.Read(buf)
		_, err = f.Pwrite(fd, buf, op.off)
		return err
	case 3:
		return f.Unlink(op.a)
	case 4:
		return f.Rmdir(op.a)
	case 5:
		return f.Rename(op.a, op.b)
	case 6:
		return f.Link(op.a, op.b)
	case 7:
		return f.Truncate(op.a, op.off)
	case 8:
		fd, err := f.Open(op.a)
		if err != nil {
			return err
		}
		defer f.Close(fd)
		return f.Fallocate(fd, op.off, int64(op.n))
	}
	return nil
}

// TestPropertyDifferentialVsMemfs: fixed NOVA must be observationally
// equivalent to the in-memory reference model under random workloads,
// including after a remount.
func TestPropertyDifferentialVsMemfs(t *testing.T) {
	runDifferential(t, false)
}

func TestPropertyDifferentialVsMemfsFortis(t *testing.T) {
	runDifferential(t, true)
}

func runDifferential(t *testing.T, fortis bool) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var opts []Option
		if fortis {
			opts = append(opts, WithFortis())
		}
		dev := pmem.NewDevice(testDevSize)
		nv := New(persist.New(dev), bugs.None(), opts...)
		if err := nv.Mkfs(); err != nil {
			t.Fatalf("mkfs: %v", err)
		}
		ref := newRef(t)

		for _, op := range genOps(rng, 30) {
			errN := applyOp(nv, op)
			errR := applyOp(ref, op)
			if (errN == nil) != (errR == nil) {
				t.Logf("seed %d: op %+v: nova=%v ref=%v", seed, op, errN, errR)
				return false
			}
		}
		sN, errN := vfs.Capture(nv)
		sR, errR := vfs.Capture(ref)
		if errN != nil || errR != nil {
			t.Logf("capture: %v %v", errN, errR)
			return false
		}
		if d := vfs.Diff(sN, sR); d != "" {
			t.Logf("seed %d live diff: %s", seed, d)
			return false
		}
		// Remount and compare again.
		nv.Unmount()
		nv2 := New(persist.New(dev), bugs.None(), opts...)
		if err := nv2.Mount(); err != nil {
			t.Logf("seed %d remount: %v", seed, err)
			return false
		}
		s2, err := vfs.Capture(nv2)
		if err != nil {
			t.Logf("capture2: %v", err)
			return false
		}
		if d := vfs.Diff(s2, sR); d != "" {
			t.Logf("seed %d remount diff: %s", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestLogGCReclaimsDeadEntries: creat/unlink churn on one directory must
// not grow the root log without bound; GC rewrites the live entries and
// the state survives a remount.
func TestLogGCReclaimsDeadEntries(t *testing.T) {
	f, dev := newNova(t, bugs.None())
	for i := 0; i < 60; i++ {
		if _, err := f.Create("/churn"); err != nil {
			t.Fatal(err)
		}
		if err := f.Unlink("/churn"); err != nil {
			t.Fatal(err)
		}
	}
	f.Create("/keep")
	root := f.inodes[RootIno]
	if len(root.logPages) > 10 {
		t.Fatalf("root log grew to %d pages despite GC", len(root.logPages))
	}
	f.Unmount()
	f2 := remount(t, dev, bugs.None())
	ents, err := f2.ReadDir("/")
	if err != nil || len(ents) != 1 || ents[0].Name != "keep" {
		t.Fatalf("post-GC remount: %v %v", ents, err)
	}
}

// TestLogGCOnFileOverwrites: repeated overwrites supersede write entries;
// the file log must be collected and data preserved.
func TestLogGCOnFileOverwrites(t *testing.T) {
	f, dev := newNova(t, bugs.None())
	fd, _ := f.Create("/a")
	for i := 0; i < 50; i++ {
		if _, err := f.Pwrite(fd, []byte{byte(i + 1)}, 0); err != nil {
			t.Fatal(err)
		}
	}
	f.Pwrite(fd, []byte("final"), 0)
	d := f.inodes[f.fds[fd]]
	if len(d.logPages) > 10 {
		t.Fatalf("file log grew to %d pages despite GC", len(d.logPages))
	}
	f.Close(fd)
	f.Unmount()
	f2 := remount(t, dev, bugs.None())
	if got := readFile(t, f2, "/a"); string(got) != "final" {
		t.Fatalf("data after GC+remount = %q", got)
	}
}

// TestLogGCFortis: GC must keep Fortis checksums and replicas coherent.
func TestLogGCFortis(t *testing.T) {
	f, dev := newNova(t, bugs.None(), WithFortis())
	for i := 0; i < 60; i++ {
		f.Create("/churn")
		f.Unlink("/churn")
	}
	f.Create("/keep")
	f.Unmount()
	f2 := remount(t, dev, bugs.None(), WithFortis())
	if _, err := f2.Stat("/keep"); err != nil {
		t.Fatal(err)
	}
}

// TestUnlinkWhileOpen covers the deferred-destroy window: an inode whose
// last link is removed while a descriptor is open must stay readable and
// writable through that descriptor, and its inode number must not be
// reused until the last close. Regression for a fuzz-found panic where a
// mkdir reused the freed ino and a write through the stale fd landed in
// the directory's (nil) page map.
func TestUnlinkWhileOpen(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	fd, err := f.Create("/victim")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Pwrite(fd, []byte("before"), 0); err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat("/victim")
	if err := f.Unlink("/victim"); err != nil {
		t.Fatal(err)
	}
	// Allocate aggressively: none of these may reuse the victim's ino.
	if err := f.Mkdir("/d0"); err != nil {
		t.Fatal(err)
	}
	fd2, err := f.Create("/f0")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"/d0", "/f0"} {
		s, err := f.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if s.Ino == st.Ino {
			t.Fatalf("%s reused ino %d of the unlinked-but-open inode", p, st.Ino)
		}
	}
	// The stale descriptor still addresses the original inode.
	if _, err := f.Pwrite(fd, []byte("after"), 6); err != nil {
		t.Fatalf("pwrite through unlinked fd: %v", err)
	}
	buf := make([]byte, 16)
	n, err := f.Pread(fd, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "beforeafter" {
		t.Fatalf("read through unlinked fd = %q", buf[:n])
	}
	if err := f.Close(fd2); err != nil {
		t.Fatal(err)
	}
	// Last close reclaims: the ino becomes reusable afterwards.
	if err := f.Close(fd); err != nil {
		t.Fatal(err)
	}
	fd3, err := f.Create("/f1")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close(fd3)
	s, _ := f.Stat("/f1")
	if s.Ino != st.Ino {
		t.Fatalf("ino %d not reclaimed after last close (got %d)", st.Ino, s.Ino)
	}
}
