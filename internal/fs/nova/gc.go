package nova

import (
	"sort"

	"chipmunk/internal/vfs"
)

// Log garbage collection, modelled on NOVA's "thorough GC": when an
// inode's log accumulates more dead than live entries, the live entries are
// copied into a freshly built chain and the inode's head/tail are switched
// to it in one journaled transaction — the old chain only becomes garbage
// once the new one is durably published, so a crash at any point leaves one
// complete, valid log. Without GC a long-lived directory's log grows
// monotonically (every unlink appends a dentry-remove entry that makes an
// earlier dentry-add dead).
//
// GC runs opportunistically at the end of mutating operations.

// gcThresholdPages: collect once the log chain exceeds this many pages and
// most entries are dead.
const gcThresholdPages = 4

// maybeGC collects d's log if it looks mostly dead. Errors are swallowed:
// GC is an optimization and ENOSPC during GC must not fail the operation
// that triggered it.
func (fs *FS) maybeGC(d *dnode) {
	if len(d.logPages) < gcThresholdPages {
		return
	}
	live := fs.liveEntries(d)
	capacity := len(d.logPages) * entriesPerPage
	if live*2 > capacity {
		return // more than half live: not worth collecting
	}
	fs.collectLog(d, live)
}

// liveEntries counts the entries a rebuild would still need.
func (fs *FS) liveEntries(d *dnode) int {
	if d.typ == vfs.TypeDir {
		return len(d.dirents)
	}
	// Files: one write entry per mapped page plus one attr entry for size.
	return len(d.pages) + 1
}

// collectLog rewrites the live state of d into a fresh log chain and
// publishes it atomically.
func (fs *FS) collectLog(d *dnode, live int) {
	pagesNeeded := (live + entriesPerPage) / entriesPerPage
	if pagesNeeded == 0 {
		pagesNeeded = 1
	}
	if fs.alloc.freePages() < pagesNeeded+1 {
		return
	}

	// Build the new chain off to the side.
	newPages := make([]uint64, 0, pagesNeeded)
	firstPage, err := fs.alloc.alloc()
	if err != nil {
		return
	}
	fs.pm.MemsetNT(pageOff(firstPage), 0, PageSize)
	newPages = append(newPages, firstPage)
	tail := pageOff(firstPage)

	writeOne := func(e entry) bool {
		if tail%PageSize == logNextOff {
			next, err := fs.alloc.alloc()
			if err != nil {
				return false
			}
			fs.pm.MemsetNT(pageOff(next), 0, PageSize)
			// Links inside the not-yet-published chain need no careful
			// ordering: nothing references it until the publish.
			fs.pm.PersistStore64(tail, next)
			newPages = append(newPages, next)
			tail = pageOff(next)
		}
		raw := e.encode()
		fs.finishEncode(raw, false)
		fs.writeEntry(tail, raw)
		tail += EntrySize
		return true
	}

	// The compacted log's on-PM entry order is part of the image: walk the
	// DRAM maps in sorted order, never map order, so collecting the same
	// inode state always produces byte-identical log pages.
	newDirents := map[string]*dirent{}
	ok := true
	if d.typ == vfs.TypeDir {
		names := make([]string, 0, len(d.dirents))
		for name := range d.dirents {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			de := d.dirents[name]
			child := fs.inodes[de.ino]
			ftype := vfs.TypeRegular
			if child != nil {
				ftype = child.typ
			}
			off := tail
			if !writeOne(entry{typ: etDentryAdd, ino: de.ino, ftype: ftype, name: name}) {
				ok = false
				break
			}
			newDirents[name] = &dirent{ino: de.ino, entryOff: off}
		}
	} else {
		for _, fp := range sortedPageKeys(d.pages) {
			if !writeOne(entry{typ: etWrite, filePage: fp, poolPage: d.pages[fp], sizeHint: uint64(d.size)}) {
				ok = false
				break
			}
		}
		if ok {
			ok = writeOne(entry{typ: etAttr, size: uint64(d.size)})
		}
	}
	if !ok {
		for _, p := range newPages {
			fs.alloc.release(p)
		}
		return
	}
	fs.pm.Fence()

	// Publish: head and tail switch together (journaled inode image).
	oldPages := d.logPages
	d.head = firstPage
	d.tail = tail
	d.logPages = newPages
	t := fs.beginTx()
	t.addInode(d, false)
	t.commit()
	if d.typ == vfs.TypeDir {
		d.dirents = newDirents
	}
	for _, p := range oldPages {
		fs.alloc.release(p)
	}
}
