package nova

import (
	"fmt"

	"chipmunk/internal/bugs"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
)

// dirent is a directory entry held in DRAM, remembering where its
// dentry-add log entry lives so rename can invalidate it in place
// (the optimization behind bugs 4 and 5).
type dirent struct {
	ino      uint64
	entryOff int64
}

// dnode is the DRAM inode: everything except nlink and the log pointers is
// volatile and rebuilt at mount.
type dnode struct {
	ino   uint64
	typ   vfs.FileType
	nlink uint64
	size  int64
	tail  int64 // mirrors the on-PM log tail
	head  uint64

	pages    map[uint64]uint64  // file page -> pool page (regular files)
	dirents  map[string]*dirent // name -> entry (directories)
	logPages []uint64           // log-page chain (DRAM bookkeeping)

	// openFDs counts live descriptors (DRAM only). An inode whose last
	// link goes away while descriptors remain stays allocated — readable
	// and writable through those descriptors, invisible by path — and is
	// reclaimed on the last close, as real NOVA does at inode eviction. A
	// crash in that window leaves a valid-but-unreachable PM inode, which
	// Mount's orphan-GC pass reclaims.
	openFDs int
	// bad marks an inode that a dentry references but whose on-PM state is
	// invalid or inconsistent (bugs 2 and 10); operations return ErrIO.
	bad bool
	// conflicted marks a Fortis primary/replica mismatch: reads work from
	// the primary but deletion is refused (bug 10's consequence).
	conflicted bool
}

// FS is the NOVA / NOVA-Fortis file system.
type FS struct {
	pm     *persist.PM
	bugs   bugs.Set
	fortis bool

	totalPages uint64
	alloc      *pageAlloc
	ialloc     *inodeAlloc
	inodes     map[uint64]*dnode
	fds        map[vfs.FD]uint64
	nextFD     vfs.FD
	mounted    bool

	// lazyReplicas holds inodes whose Fortis replica update was deferred
	// to the end of the system call (bug 10).
	lazyReplicas []uint64
	// deferredCsums holds entry checksums postponed past the tail publish
	// (bug 9).
	deferredCsums []deferredCsum
}

// inodeImage builds the 128-byte primary on-PM image for d's current DRAM
// state, with the Fortis checksum stamped when applicable.
func (f *FS) inodeImage(d *dnode) []byte {
	buf := make([]byte, 128)
	put32(buf[inoValidOff:], 1)
	put32(buf[inoTypeOff:], uint32(d.typ))
	put64(buf[inoNlinkOff:], d.nlink)
	put64(buf[inoHeadOff:], d.head)
	put64(buf[inoTailOff:], uint64(d.tail))
	if f.fortis {
		put32(buf[inoCsumOff:], csum32(buf[:inoCsumOff]))
	}
	return buf
}

// Option configures the file system.
type Option func(*FS)

// WithFortis enables NOVA-Fortis mode: inode checksums + replicas and
// per-page data checksums.
func WithFortis() Option { return func(f *FS) { f.fortis = true } }

// New creates a NOVA instance on pm with the given injected bug set.
// bugSet = bugs.None() builds the fixed system.
func New(pm *persist.PM, bugSet bugs.Set, opts ...Option) *FS {
	f := &FS{pm: pm, bugs: bugSet}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Caps implements vfs.FS.
func (f *FS) Caps() vfs.Caps {
	name := "nova"
	if f.fortis {
		name = "nova-fortis"
	}
	return vfs.Caps{Name: name, Strong: true, AtomicWrite: true, SyncDataWrites: true}
}

func (f *FS) has(id bugs.ID) bool { return f.bugs.Has(id) }

// corrupt builds the standard unmountable error.
func corrupt(format string, args ...interface{}) error {
	return fmt.Errorf("%w: "+format, append([]interface{}{vfs.ErrCorrupt}, args...)...)
}

// Mkfs implements vfs.FS: formats the device and mounts.
func (f *FS) Mkfs() error {
	f.totalPages = uint64(f.pm.Size()) / PageSize
	if f.totalPages < poolStartPage+8 {
		return vfs.ErrNoSpace
	}
	pm := f.pm
	// Zero the metadata region: superblock, journal, inode table.
	pm.MemsetNT(0, 0, (inodeTblPage+inodeTblPages)*PageSize)
	pm.Fence()

	f.alloc = newPageAlloc(poolStartPage, f.totalPages)
	f.ialloc = newInodeAlloc(InodeCount)
	f.ialloc.markUsed(RootIno)
	f.inodes = map[uint64]*dnode{}
	f.fds = map[vfs.FD]uint64{}
	f.nextFD = 3

	// Root directory inode with an empty log page.
	headPage, err := f.alloc.alloc()
	if err != nil {
		return err
	}
	pm.MemsetNT(pageOff(headPage), 0, PageSize)
	pm.Fence()
	root := &dnode{
		ino: RootIno, typ: vfs.TypeDir, nlink: 2,
		head: headPage, tail: pageOff(headPage),
		dirents: map[string]*dirent{},
	}
	f.writeInodeInit(root, true)
	f.inodes[RootIno] = root

	// Superblock last: its magic validates the whole image.
	pm.Store64(sbMagicOff, Magic)
	fortis := uint64(0)
	if f.fortis {
		fortis = 1
	}
	pm.Store64(sbFortisOff, fortis)
	pm.Store64(sbPagesOff, f.totalPages)
	pm.Store64(sbInodesOff, InodeCount)
	pm.Store64(sbVersionOff, 1)
	pm.Flush(0, 40)
	pm.Fence()

	f.mounted = true
	return nil
}

// writeInodeInit persists a freshly allocated inode's on-PM state. The
// flush is skipped under bug 2 (for non-root inodes), leaving the new inode
// volatile — the "unreadable and undeletable file" PM bug.
func (f *FS) writeInodeInit(d *dnode, flush bool) {
	off := inodeOff(d.ino)
	buf := f.inodeImage(d)
	f.pm.Store(off, buf)
	if flush {
		f.pm.Flush(off, 128)
	}
	f.pm.Fence()
	if f.fortis {
		// Replica copy of the primary half.
		f.pm.Store(off+inoReplicaOff, buf)
		if flush {
			f.pm.Flush(off+inoReplicaOff, 128)
		}
		f.pm.Fence()
	}
}

// Unmount implements vfs.FS.
func (f *FS) Unmount() error {
	f.mounted = false
	f.fds = map[vfs.FD]uint64{}
	f.inodes = nil
	f.alloc = nil
	f.ialloc = nil
	return nil
}

func (f *FS) fdInode(fd vfs.FD) (*dnode, error) {
	ino, ok := f.fds[fd]
	if !ok {
		return nil, vfs.ErrBadFD
	}
	d := f.inodes[ino]
	if d == nil {
		return nil, vfs.ErrBadFD
	}
	return d, nil
}

// lookup resolves an absolute path.
func (f *FS) lookup(path string) (*dnode, error) {
	d := f.inodes[RootIno]
	if d == nil {
		return nil, vfs.ErrCorrupt
	}
	for _, c := range vfs.Components(path) {
		if d.bad {
			return nil, vfs.ErrIO
		}
		if d.typ != vfs.TypeDir {
			return nil, vfs.ErrNotDir
		}
		de, ok := d.dirents[c]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		d = f.inodes[de.ino]
		if d == nil {
			return nil, vfs.ErrIO
		}
	}
	return d, nil
}

// lookupParent resolves the parent directory and final component.
func (f *FS) lookupParent(path string) (*dnode, string, error) {
	dir, name := vfs.SplitPath(path)
	if name == "" {
		return nil, "", vfs.ErrInvalid
	}
	if !vfs.ValidName(name) {
		return nil, "", vfs.ErrNameTooLong
	}
	p, err := f.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if p.bad {
		return nil, "", vfs.ErrIO
	}
	if p.typ != vfs.TypeDir {
		return nil, "", vfs.ErrNotDir
	}
	return p, name, nil
}

// Stat implements vfs.FS.
func (f *FS) Stat(path string) (vfs.Stat, error) {
	d, err := f.lookup(path)
	if err != nil {
		return vfs.Stat{}, err
	}
	if d.bad {
		return vfs.Stat{}, vfs.ErrIO
	}
	return vfs.Stat{Ino: d.ino, Type: d.typ, Nlink: uint32(d.nlink), Size: d.size}, nil
}

// ReadDir implements vfs.FS.
func (f *FS) ReadDir(path string) ([]vfs.DirEnt, error) {
	d, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	if d.bad {
		return nil, vfs.ErrIO
	}
	if d.typ != vfs.TypeDir {
		return nil, vfs.ErrNotDir
	}
	out := make([]vfs.DirEnt, 0, len(d.dirents))
	for name, de := range d.dirents {
		child := f.inodes[de.ino]
		typ := vfs.TypeRegular
		if child != nil {
			typ = child.typ
		}
		out = append(out, vfs.DirEnt{Name: name, Ino: de.ino, Type: typ})
	}
	sortDirEnts(out)
	return out, nil
}

func sortDirEnts(ents []vfs.DirEnt) {
	for i := 1; i < len(ents); i++ {
		for j := i; j > 0 && ents[j].Name < ents[j-1].Name; j-- {
			ents[j], ents[j-1] = ents[j-1], ents[j]
		}
	}
}

// Open implements vfs.FS.
func (f *FS) Open(path string) (vfs.FD, error) {
	d, err := f.lookup(path)
	if err != nil {
		return -1, err
	}
	if d.bad {
		return -1, vfs.ErrIO
	}
	if d.typ == vfs.TypeDir {
		return -1, vfs.ErrIsDir
	}
	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = d.ino
	d.openFDs++
	return fd, nil
}

// Close implements vfs.FS. Closing the last descriptor of an unlinked
// inode performs the deferred destroy (NOVA's eviction-time reclaim).
func (f *FS) Close(fd vfs.FD) error {
	ino, ok := f.fds[fd]
	if !ok {
		return vfs.ErrBadFD
	}
	delete(f.fds, fd)
	if d := f.inodes[ino]; d != nil {
		d.openFDs--
		if d.nlink == 0 && d.openFDs == 0 {
			f.destroyInode(d)
		}
	}
	return nil
}

// Fsync implements vfs.FS. NOVA is synchronous: every operation is durable
// when it returns, so fsync only validates the descriptor.
func (f *FS) Fsync(fd vfs.FD) error {
	if _, ok := f.fds[fd]; !ok {
		return vfs.ErrBadFD
	}
	return nil
}

// Sync implements vfs.FS (no-op for the same reason).
func (f *FS) Sync() error { return nil }

var _ vfs.FS = (*FS)(nil)

// OpenFDs implements vfs.FDCounter.
func (f *FS) OpenFDs() int { return len(f.fds) }
