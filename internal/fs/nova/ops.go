package nova

import (
	"chipmunk/internal/bugs"
	"chipmunk/internal/vfs"
)

// Create implements vfs.FS: O_CREAT|O_EXCL file creation.
//
// Order: initialize the new inode (fenced), append the dentry-add entry to
// the parent log, publish the parent tail. The file becomes visible
// atomically at the tail publish; a crash earlier leaves an orphan inode
// that mount-time GC reclaims. Bug 2 omits the flush of the inode
// initialization, so the dentry can point at an all-zero inode slot.
func (f *FS) Create(path string) (vfs.FD, error) {
	p, name, err := f.lookupParent(path)
	if err != nil {
		return -1, err
	}
	if _, ok := p.dirents[name]; ok {
		return -1, vfs.ErrExist
	}
	ino, err := f.ialloc.alloc()
	if err != nil {
		return -1, err
	}
	d := &dnode{ino: ino, typ: vfs.TypeRegular, nlink: 1, pages: map[uint64]uint64{}}
	f.writeInodeInit(d, !f.has(bugs.NovaInodeInitNoFlush))

	entryOff, err := f.appendEntry(p, entry{
		typ: etDentryAdd, ino: ino, ftype: vfs.TypeRegular, name: name,
	}, false, false)
	if err != nil {
		f.ialloc.release(ino)
		return -1, err
	}
	f.inodes[ino] = d
	p.dirents[name] = &dirent{ino: ino, entryOff: entryOff}

	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = ino
	d.openFDs++
	return fd, nil
}

// Mkdir implements vfs.FS. The parent's tail and nlink change together, so
// the publish is journaled.
func (f *FS) Mkdir(path string) error {
	p, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	if _, ok := p.dirents[name]; ok {
		return vfs.ErrExist
	}
	ino, err := f.ialloc.alloc()
	if err != nil {
		return err
	}
	headPage, err := f.alloc.alloc()
	if err != nil {
		f.ialloc.release(ino)
		return err
	}
	f.pm.MemsetNT(pageOff(headPage), 0, PageSize)
	f.pm.Fence()
	child := &dnode{
		ino: ino, typ: vfs.TypeDir, nlink: 2,
		head: headPage, tail: pageOff(headPage),
		dirents:  map[string]*dirent{},
		logPages: []uint64{headPage},
	}
	f.writeInodeInit(child, !f.has(bugs.NovaInodeInitNoFlush))

	entryOff, newTail, err := f.writeEntryNoPublish(p, p.tail, entry{
		typ: etDentryAdd, ino: ino, ftype: vfs.TypeDir, name: name,
	}, false)
	if err != nil {
		f.alloc.release(headPage)
		f.ialloc.release(ino)
		return err
	}
	p.tail = newTail
	p.nlink++
	t := f.beginTx()
	t.addInode(p, false)
	t.commit()

	f.inodes[ino] = child
	p.dirents[name] = &dirent{ino: ino, entryOff: entryOff}
	return nil
}

// Link implements vfs.FS.
//
// Fixed path: the new dentry and the link-count bump are journaled
// together. Bug 6 persists the incremented link count in place before the
// dentry is durable; bug 3 additionally publishes the directory tail before
// the dentry bytes.
func (f *FS) Link(oldPath, newPath string) error {
	n, err := f.lookup(oldPath)
	if err != nil {
		return err
	}
	if n.bad {
		return vfs.ErrIO
	}
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	p, name, err := f.lookupParent(newPath)
	if err != nil {
		return err
	}
	if _, ok := p.dirents[name]; ok {
		return vfs.ErrExist
	}

	if f.has(bugs.NovaLinkCountEarly) {
		// In-place optimization: bump nlink first, add the name after.
		// Checking that the in-place update is safe requires re-reading the
		// inode's most recent log page from media — the extra read that
		// made the journalled fix 7% FASTER in the paper's microbenchmark
		// (§5.1 Observation 2).
		if n.head != 0 && len(n.logPages) > 0 {
			lastPage := n.logPages[len(n.logPages)-1]
			_ = f.pm.Load(pageOff(lastPage), PageSize/2)
		}
		_ = f.pm.Load(inodeOff(n.ino), 128)
		n.nlink++
		f.syncInode(n, true)
		entryOff, err := f.appendEntry(p, entry{
			typ: etDentryAdd, ino: n.ino, ftype: n.typ, name: name,
		}, true, false)
		if err != nil {
			n.nlink--
			f.syncInode(n, true)
			return err
		}
		p.dirents[name] = &dirent{ino: n.ino, entryOff: entryOff}
		f.endOp()
		return nil
	}

	entryOff, newTail, err := f.writeEntryNoPublish(p, p.tail, entry{
		typ: etDentryAdd, ino: n.ino, ftype: n.typ, name: name,
	}, false)
	if err != nil {
		return err
	}
	p.tail = newTail
	n.nlink++
	t := f.beginTx()
	t.addInode(p, true)
	t.addInode(n, true)
	t.commit()
	p.dirents[name] = &dirent{ino: n.ino, entryOff: entryOff}
	f.endOp()
	return nil
}

// Unlink implements vfs.FS. The dentry removal and the link-count decrement
// are journaled together; under bug 3 the listed fast path appends the
// remove entry with the tail-first ordering instead.
func (f *FS) Unlink(path string) error {
	p, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	de, ok := p.dirents[name]
	if !ok {
		return vfs.ErrNotExist
	}
	n := f.inodes[de.ino]
	if n == nil || n.bad {
		return vfs.ErrIO
	}
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	if n.conflicted {
		// Bug 10's consequence: the replica mismatch makes deletion fail.
		return vfs.ErrIO
	}

	if f.has(bugs.NovaEntryAfterTail) {
		// Fast path: un-journaled remove entry with risky ordering.
		if _, err := f.appendEntry(p, entry{
			typ: etDentryRemove, ino: n.ino, name: name,
		}, true, true); err != nil {
			return err
		}
		n.nlink--
		f.syncInode(n, false)
	} else {
		_, newTail, err := f.writeEntryNoPublish(p, p.tail, entry{
			typ: etDentryRemove, ino: n.ino, name: name,
		}, true)
		if err != nil {
			return err
		}
		p.tail = newTail
		n.nlink--
		t := f.beginTx()
		t.addInode(p, false)
		t.addInode(n, false)
		t.commit()
	}

	delete(p.dirents, name)
	// Open descriptors defer the destroy to the last Close: the inode
	// number must not be reused while an fd can still reach it.
	if n.nlink == 0 && n.openFDs == 0 {
		f.destroyInode(n)
	}
	f.endOp()
	f.maybeGC(p)
	return nil
}

// destroyInode releases an inode with zero links: PM valid flag cleared,
// data and log pages returned to the DRAM allocator.
func (f *FS) destroyInode(n *dnode) {
	f.invalidateInode(n.ino)
	for _, pp := range n.pages {
		f.alloc.release(pp)
	}
	for _, lp := range n.logPages {
		f.alloc.release(lp)
	}
	if n.head != 0 && len(n.logPages) == 0 {
		f.releaseLogChain(n.head)
	}
	f.ialloc.release(n.ino)
	delete(f.inodes, n.ino)
}

// releaseLogChain frees a log-page chain by following on-PM links (used
// when the DRAM page list is not populated).
func (f *FS) releaseLogChain(head uint64) {
	seen := map[uint64]bool{}
	for p := head; p != 0 && !seen[p]; {
		seen[p] = true
		next := f.pm.Load64(pageOff(p) + logNextOff)
		f.alloc.release(p)
		p = next
	}
}

// Rmdir implements vfs.FS.
func (f *FS) Rmdir(path string) error {
	p, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	de, ok := p.dirents[name]
	if !ok {
		return vfs.ErrNotExist
	}
	n := f.inodes[de.ino]
	if n == nil || n.bad {
		return vfs.ErrIO
	}
	if n.typ != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	if len(n.dirents) > 0 {
		return vfs.ErrNotEmpty
	}
	if n.conflicted {
		return vfs.ErrIO
	}

	_, newTail, err := f.writeEntryNoPublish(p, p.tail, entry{
		typ: etDentryRemove, ino: n.ino, name: name,
	}, true)
	if err != nil {
		return err
	}
	p.tail = newTail
	p.nlink--
	t := f.beginTx()
	t.addInode(p, false)
	t.set(inodeOff(n.ino), 0) // clear child valid+type words
	if f.fortis {
		t.set(inodeOff(n.ino)+inoReplicaOff, 0)
	}
	t.commit()

	delete(p.dirents, name)
	n.nlink = 0
	f.destroyInode(n)
	f.endOp()
	f.maybeGC(p)
	return nil
}

// Rename implements vfs.FS.
//
// Fixed path: the dentry-remove in the old directory, the dentry-add in the
// new directory, any victim link-count change, and directory nlink updates
// are all published by one journaled transaction.
//
// Bug 4 (same-directory path): the old dentry's log entry is invalidated in
// place before the add is published — a crash between loses both names.
// Bug 5 (cross-directory path): the add is published first and the old
// dentry is invalidated in place afterwards — a crash between leaves both.
func (f *FS) Rename(oldPath, newPath string) error {
	oldPath, newPath = vfs.Clean(oldPath), vfs.Clean(newPath)
	if oldPath == newPath {
		return nil
	}
	if vfs.IsAncestor(oldPath, newPath) {
		return vfs.ErrInvalid
	}
	op, oname, err := f.lookupParent(oldPath)
	if err != nil {
		return err
	}
	ode, ok := op.dirents[oname]
	if !ok {
		return vfs.ErrNotExist
	}
	n := f.inodes[ode.ino]
	if n == nil || n.bad {
		return vfs.ErrIO
	}
	np, nname, err := f.lookupParent(newPath)
	if err != nil {
		return err
	}

	// Victim handling.
	var victim *dnode
	if vde, ok := np.dirents[nname]; ok {
		victim = f.inodes[vde.ino]
		if victim == nil {
			return vfs.ErrIO
		}
		if n.typ == vfs.TypeDir {
			if victim.typ != vfs.TypeDir {
				return vfs.ErrNotDir
			}
			if len(victim.dirents) > 0 {
				return vfs.ErrNotEmpty
			}
		} else if victim.typ == vfs.TypeDir {
			return vfs.ErrIsDir
		}
		if victim.conflicted {
			return vfs.ErrIO
		}
	}

	sameDir := op == np
	switch {
	case sameDir && f.has(bugs.NovaRenameInPlaceDelete):
		err = f.renameBuggyDeleteFirst(op, oname, ode, np, nname, n, victim)
	case !sameDir && f.has(bugs.NovaRenameOldSurvives):
		err = f.renameBuggyAddFirst(op, oname, ode, np, nname, n, victim)
	default:
		err = f.renameJournaled(op, oname, np, nname, n, victim)
	}
	if err != nil {
		return err
	}
	f.endOp()
	f.maybeGC(op)
	if np != op {
		f.maybeGC(np)
	}
	return nil
}

// renameJournaled is the fixed rename: everything in one transaction.
func (f *FS) renameJournaled(op *dnode, oname string, np *dnode, nname string, n, victim *dnode) error {
	opTail := op.tail
	_, opTail, err := f.writeEntryNoPublish(op, opTail, entry{
		typ: etDentryRemove, ino: n.ino, name: oname,
	}, false)
	if err != nil {
		return err
	}
	npTail := np.tail
	if op == np {
		npTail = opTail
	}
	addOff, npTail, err := f.writeEntryNoPublish(np, npTail, entry{
		typ: etDentryAdd, ino: n.ino, ftype: n.typ, name: nname,
	}, false)
	if err != nil {
		return err
	}

	// Update DRAM fields that feed the inode images, then journal.
	if op == np {
		op.tail = npTail
	} else {
		op.tail = opTail
		np.tail = npTail
	}
	if n.typ == vfs.TypeDir && op != np {
		op.nlink--
		np.nlink++
	}
	if victim != nil {
		if victim.typ == vfs.TypeDir {
			np.nlink--
			victim.nlink = 0
		} else {
			victim.nlink--
		}
	}

	t := f.beginTx()
	t.addInode(op, true)
	if np != op {
		t.addInode(np, true)
	}
	if victim != nil {
		if victim.typ == vfs.TypeDir {
			t.set(inodeOff(victim.ino), 0)
			if f.fortis {
				t.set(inodeOff(victim.ino)+inoReplicaOff, 0)
			}
		} else {
			t.addInode(victim, true)
		}
	}
	t.commit()

	f.renameApplyDRAM(op, oname, np, nname, n, victim, addOff)
	return nil
}

// renameBuggyDeleteFirst is bug 4: invalidate the old dentry in place, then
// publish the new one.
func (f *FS) renameBuggyDeleteFirst(op *dnode, oname string, ode *dirent, np *dnode, nname string, n, victim *dnode) error {
	f.invalidateEntry(ode.entryOff)
	addOff, err := f.appendEntry(np, entry{
		typ: etDentryAdd, ino: n.ino, ftype: n.typ, name: nname,
	}, true, false)
	if err != nil {
		return err
	}
	f.renameFinishVictim(np, n, victim, op)
	f.renameApplyDRAM(op, oname, np, nname, n, victim, addOff)
	return nil
}

// renameBuggyAddFirst is bug 5: publish the new dentry, then invalidate the
// old one in place.
func (f *FS) renameBuggyAddFirst(op *dnode, oname string, ode *dirent, np *dnode, nname string, n, victim *dnode) error {
	addOff, err := f.appendEntry(np, entry{
		typ: etDentryAdd, ino: n.ino, ftype: n.typ, name: nname,
	}, true, false)
	if err != nil {
		return err
	}
	f.invalidateEntry(ode.entryOff)
	f.renameFinishVictim(np, n, victim, op)
	f.renameApplyDRAM(op, oname, np, nname, n, victim, addOff)
	return nil
}

// renameFinishVictim persists the leftover metadata words the buggy rename
// paths update outside any transaction.
func (f *FS) renameFinishVictim(np *dnode, n, victim *dnode, op *dnode) {
	if n.typ == vfs.TypeDir && op != np {
		op.nlink--
		np.nlink++
		f.syncInode(op, true)
		f.syncInode(np, true)
	}
	if victim != nil {
		if victim.typ == vfs.TypeDir {
			np.nlink--
			victim.nlink = 0
			f.syncInode(np, true)
			f.invalidateInode(victim.ino)
		} else {
			victim.nlink--
			f.syncInode(victim, true)
		}
	}
}

// renameApplyDRAM applies the rename to the DRAM maps and frees a victim
// whose last link went away.
func (f *FS) renameApplyDRAM(op *dnode, oname string, np *dnode, nname string, n, victim *dnode, addOff int64) {
	delete(op.dirents, oname)
	np.dirents[nname] = &dirent{ino: n.ino, entryOff: addOff}
	if victim != nil && victim.nlink == 0 && victim.openFDs == 0 {
		f.destroyInode(victim)
	}
}

// endOp completes deferred work at system-call end: the lazy Fortis replica
// copies (bug 10) and the postponed entry checksums (bug 9).
func (f *FS) endOp() {
	f.flushLazyReplicas()
	f.flushDeferredCsums()
}
