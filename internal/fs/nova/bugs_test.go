package nova

import (
	"errors"
	"testing"

	"chipmunk/internal/bugs"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
	"chipmunk/internal/vfs"
)

// FS-level exercises of the injected-bug code paths. The end-to-end
// detection lives in internal/harness; these tests pin the LIVE behaviour:
// every buggy path must still produce a correct result when no crash
// happens (the bugs are crash-only).

func TestBuggyRenamePathsCorrectWithoutCrash(t *testing.T) {
	for _, set := range []bugs.Set{
		bugs.Of(bugs.NovaRenameInPlaceDelete),
		bugs.Of(bugs.NovaRenameOldSurvives),
		bugs.Of(bugs.NovaRenameInPlaceDelete, bugs.NovaRenameOldSurvives),
	} {
		f, dev := newNova(t, set)
		fd, _ := f.Create("/a")
		f.Pwrite(fd, []byte("content"), 0)
		f.Close(fd)
		f.Mkdir("/d")
		// Same-dir (bug 4 path) and cross-dir (bug 5 path).
		if err := f.Rename("/a", "/b"); err != nil {
			t.Fatal(err)
		}
		if err := f.Rename("/b", "/d/c"); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Stat("/a"); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("set %s: /a lives", set)
		}
		if _, err := f.Stat("/b"); !errors.Is(err, vfs.ErrNotExist) {
			t.Fatalf("set %s: /b lives", set)
		}
		if got := readFile(t, f, "/d/c"); string(got) != "content" {
			t.Fatalf("set %s: data = %q", set, got)
		}
		// Overwrite rename through the buggy paths (victim handling).
		fd2, _ := f.Create("/victim")
		f.Pwrite(fd2, []byte("old"), 0)
		f.Close(fd2)
		if err := f.Rename("/d/c", "/victim"); err != nil {
			t.Fatal(err)
		}
		if got := readFile(t, f, "/victim"); string(got) != "content" {
			t.Fatalf("set %s: overwrite = %q", set, got)
		}
		// And the full crash image (everything fenced) recovers correctly.
		f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), set)
		if err := f2.Mount(); err != nil {
			t.Fatalf("set %s: mount: %v", set, err)
		}
		if got := readFile(t, f2, "/victim"); string(got) != "content" {
			t.Fatalf("set %s: post-crash data = %q", set, got)
		}
	}
}

func TestBuggyDirRenameCrossParents(t *testing.T) {
	// The buggy add-first path with a DIRECTORY exercises
	// renameFinishVictim's nlink bookkeeping.
	f, _ := newNova(t, bugs.Of(bugs.NovaRenameOldSurvives))
	f.Mkdir("/p1")
	f.Mkdir("/p1/sub")
	f.Mkdir("/p2")
	if err := f.Rename("/p1/sub", "/p2/sub"); err != nil {
		t.Fatal(err)
	}
	p1, _ := f.Stat("/p1")
	p2, _ := f.Stat("/p2")
	if p1.Nlink != 2 || p2.Nlink != 3 {
		t.Fatalf("nlinks = %d, %d", p1.Nlink, p2.Nlink)
	}
	// Dir-over-dir victim via the buggy path.
	f.Mkdir("/p1/sub2")
	if err := f.Rename("/p1/sub2", "/p2/sub"); err != nil {
		t.Fatal(err)
	}
	p2b, _ := f.Stat("/p2")
	if p2b.Nlink != 3 {
		t.Fatalf("victim-dir nlink = %d", p2b.Nlink)
	}
}

func TestFortisFreeLogRoundTrip(t *testing.T) {
	// The buggy Fortis truncate writes and clears the free-log; without a
	// crash the clear always lands and mounts stay clean.
	f, dev := newNova(t, bugs.Of(bugs.FortisDoubleFree), WithFortis())
	fd, _ := f.Create("/a")
	f.Pwrite(fd, make([]byte, 9000), 0)
	if err := f.Truncate("/a", 100); err != nil {
		t.Fatal(err)
	}
	f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), bugs.Of(bugs.FortisDoubleFree), WithFortis())
	if err := f2.Mount(); err != nil {
		t.Fatalf("clean free-log should mount: %v", err)
	}
}

func TestDeferredCsumsFlushedAtOpEnd(t *testing.T) {
	// Bug 9's late checksums land by the end of the call: the full crash
	// image mounts with every entry checksum valid.
	f, dev := newNova(t, bugs.Of(bugs.FortisCsumNoFlush), WithFortis())
	f.Create("/a")
	if err := f.Unlink("/a"); err != nil {
		t.Fatal(err)
	}
	f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), bugs.Of(bugs.FortisCsumNoFlush), WithFortis())
	if err := f2.Mount(); err != nil {
		t.Fatal(err)
	}
	ents, err := f2.ReadDir("/")
	if err != nil || len(ents) != 0 {
		t.Fatalf("dir after unlink: %v %v", ents, err)
	}
}

func TestSyncNoop(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalRecoveryRedoesCommitted(t *testing.T) {
	// Craft a committed-but-unapplied journal and verify recoverJournal
	// redoes it at mount.
	f, dev := newNova(t, bugs.None())
	f.Create("/a")
	// Manually stage a journal record changing /a's inode nlink to 5.
	d := f.inodes[f.inodes[RootIno].dirents["a"].ino]
	img := f.inodeImage(d)
	put64(img[inoNlinkOff:], 5)
	base := int64(journalPage) * PageSize
	off := base + jRecsOff
	f.pm.Store64(off, uint64(inodeOff(d.ino)))
	f.pm.Store64(off+8, uint64(len(img)))
	f.pm.Store(off+16, img)
	f.pm.Store64(base+jCountOff, 1)
	f.pm.Flush(base, jRecsOff+jRecSize)
	f.pm.Fence()
	f.pm.PersistStore64(base+jStateOff, 1) // committed, never applied
	f.pm.Fence()

	f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), bugs.None())
	if err := f2.Mount(); err != nil {
		t.Fatal(err)
	}
	st, err := f2.Stat("/a")
	if err != nil || st.Nlink != 5 {
		t.Fatalf("journal redo missing: %+v %v", st, err)
	}
}

func TestAllocInUse(t *testing.T) {
	f, _ := newNova(t, bugs.None())
	p, err := f.alloc.alloc()
	if err != nil {
		t.Fatal(err)
	}
	if !f.alloc.inUse(p) {
		t.Fatal("allocated page not in use")
	}
	f.alloc.release(p)
	if f.alloc.inUse(p) {
		t.Fatal("released page still in use")
	}
	if f.alloc.inUse(0) {
		t.Fatal("page outside pool in use")
	}
}
