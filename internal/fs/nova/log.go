package nova

import (
	"chipmunk/internal/bugs"
)

// reserveSlot returns the device offset where the next entry at the given
// tail should be written, chaining a fresh log page when the current one is
// full. The chained page is zeroed before it is linked so stale bytes can
// never masquerade as entries.
//
// Bug 1 lives here: the published algorithm linked the new page with a
// plain store, never flushing the link word. The tail (updated later, and
// flushed) can then point into the new page while the link that reaches it
// is lost in a crash — recovery follows a nil link with entries still
// outstanding and declares the log corrupt.
func (fs *FS) reserveSlot(d *dnode, tail int64) (entryOff, newTail int64, err error) {
	if tail == 0 {
		// First log page of a fresh file inode; the head pointer is
		// published together with the tail in the inode image.
		newPage, err := fs.alloc.alloc()
		if err != nil {
			return 0, 0, err
		}
		fs.pm.MemsetNT(pageOff(newPage), 0, PageSize)
		fs.pm.Fence()
		d.head = newPage
		d.logPages = append(d.logPages, newPage)
		tail = pageOff(newPage)
	} else if tail%PageSize == logNextOff {
		newPage, err := fs.alloc.alloc()
		if err != nil {
			return 0, 0, err
		}
		fs.pm.MemsetNT(pageOff(newPage), 0, PageSize)
		fs.pm.Fence()
		linkOff := tail // the link word sits exactly at the full-tail offset
		if fs.has(bugs.NovaTailBeforeLink) {
			fs.pm.Store64(linkOff, newPage) // missing flush: link may be lost
		} else {
			fs.pm.PersistStore64(linkOff, newPage)
		}
		fs.pm.Fence()
		d.logPages = append(d.logPages, newPage)
		tail = pageOff(newPage)
	}
	return tail, tail + EntrySize, nil
}

// writeEntry stores and flushes the encoded entry bytes at off (no fence).
func (fs *FS) writeEntry(off int64, raw []byte) {
	fs.pm.Store(off, raw)
	fs.pm.Flush(off, EntrySize)
}

// finishEncode stamps the Fortis payload checksum unless the caller asked
// for the late-checksum path (bug 9).
func (fs *FS) finishEncode(raw []byte, lateCsum bool) {
	if fs.fortis && !lateCsum {
		put32(raw[entCsum:], payloadCsum(raw))
	}
}

// appendEntry appends a single entry to d's log and publishes it by
// advancing the tail — the common path for single-inode operations.
//
//   - risky selects the published fast path carrying bug 3 (tail word
//     persisted and fenced before the entry bytes are flushed); it is used
//     by the operations Table 1 lists for that bug.
//   - lateCsum selects the Fortis path carrying bug 9 (entry checksum
//     updated only after the tail publish).
//
// In the fixed configuration both flags are inert.
func (fs *FS) appendEntry(d *dnode, e entry, risky, lateCsum bool) (int64, error) {
	lateCsum = lateCsum && fs.has(bugs.FortisCsumNoFlush)
	raw := e.encode()
	fs.finishEncode(raw, lateCsum)

	entryOff, newTail, err := fs.reserveSlot(d, d.tail)
	if err != nil {
		return 0, err
	}

	if risky && fs.has(bugs.NovaEntryAfterTail) {
		// Publish the tail first, then write the entry. A crash between the
		// two leaves the tail pointing at garbage.
		d.tail = newTail
		fs.syncInode(d, false)
		fs.writeEntry(entryOff, raw)
		fs.pm.Fence()
		return entryOff, nil
	}

	fs.writeEntry(entryOff, raw)
	fs.pm.Fence()
	d.tail = newTail
	fs.syncInode(d, false)

	if fs.fortis && lateCsum {
		// Bug 9: checksum lands in a separate persistence step after the
		// entry is already reachable.
		put32(raw[entCsum:], payloadCsum(raw))
		fs.pm.Store32(entryOff+entCsum, le32(raw[entCsum:]))
		fs.pm.Flush(entryOff+entCsum, 4)
		fs.pm.Fence()
	}
	return entryOff, nil
}

// writeEntryNoPublish writes an entry without advancing any tail; the
// caller publishes via a journaled transaction (multi-inode operations).
// Returns the entry offset and the tail value the publish must install.
func (fs *FS) writeEntryNoPublish(d *dnode, tail int64, e entry, lateCsum bool) (entryOff, newTail int64, err error) {
	lateCsum = lateCsum && fs.has(bugs.FortisCsumNoFlush)
	raw := e.encode()
	fs.finishEncode(raw, lateCsum)
	entryOff, newTail, err = fs.reserveSlot(d, tail)
	if err != nil {
		return 0, 0, err
	}
	fs.writeEntry(entryOff, raw)
	fs.pm.Fence()
	if fs.fortis && lateCsum {
		fs.deferredCsums = append(fs.deferredCsums, deferredCsum{entryOff, raw})
	}
	return entryOff, newTail, nil
}

type deferredCsum struct {
	off int64
	raw []byte
}

// flushDeferredCsums writes entry checksums that the buggy Fortis path
// postponed past the publish (bug 9).
func (fs *FS) flushDeferredCsums() {
	for _, dc := range fs.deferredCsums {
		put32(dc.raw[entCsum:], payloadCsum(dc.raw))
		fs.pm.Store32(dc.off+entCsum, le32(dc.raw[entCsum:]))
		fs.pm.Flush(dc.off+entCsum, 4)
		fs.pm.Fence()
	}
	fs.deferredCsums = nil
}

// invalidateEntry sets the in-place invalid flag on a published log entry —
// the in-place-update optimization behind bugs 4, 5, and 7. The 8-byte
// store covers the type/flags header word.
func (fs *FS) invalidateEntry(entryOff int64) {
	hdr := fs.pm.Load64(entryOff)
	hdr |= 1 << 8 // entFlags bit 0
	fs.pm.PersistStore64(entryOff, hdr)
	fs.pm.Fence()
	if fs.fortis {
		// Re-stamp the entry checksum over the updated payload region is
		// not needed: the csum covers [8,64) and the flags live in byte 1.
		_ = hdr
	}
}

// syncInode persists d's metadata words (nlink, head, tail) to the primary
// on-PM inode, updating the Fortis checksum, and then mirrors the primary
// into the replica. When lazyReplica is requested under bug 10 the replica
// copy is deferred to the end of the system call, opening the
// primary/replica skew window.
func (fs *FS) syncInode(d *dnode, lazyReplica bool) {
	off := inodeOff(d.ino)
	buf := make([]byte, 128)
	put32(buf[inoValidOff:], 1)
	put32(buf[inoTypeOff:], uint32(d.typ))
	put64(buf[inoNlinkOff:], d.nlink)
	put64(buf[inoHeadOff:], d.head)
	put64(buf[inoTailOff:], uint64(d.tail))
	if fs.fortis {
		put32(buf[inoCsumOff:], csum32(buf[:inoCsumOff]))
	}
	fs.pm.Store(off, buf)
	fs.pm.Flush(off, 128)
	fs.pm.Fence()
	if !fs.fortis {
		return
	}
	if lazyReplica && fs.has(bugs.FortisReplicaSkew) {
		fs.lazyReplicas = append(fs.lazyReplicas, d.ino)
		return
	}
	fs.writeReplica(d.ino, buf)
}

// writeReplica mirrors the primary inode image into the replica slot.
func (fs *FS) writeReplica(ino uint64, primary []byte) {
	off := inodeOff(ino)
	fs.pm.Store(off+inoReplicaOff, primary)
	fs.pm.Flush(off+inoReplicaOff, 128)
	fs.pm.Fence()
}

// flushLazyReplicas performs the deferred replica updates at syscall end
// (bug 10's buggy path still converges once the call completes, which is
// why only mid-call crashes expose it).
func (fs *FS) flushLazyReplicas() {
	for _, ino := range fs.lazyReplicas {
		primary := fs.pm.Load(inodeOff(ino), 128)
		fs.writeReplica(ino, primary)
	}
	fs.lazyReplicas = nil
}

// invalidateInode clears the on-PM valid flag when an inode is freed.
func (fs *FS) invalidateInode(ino uint64) {
	off := inodeOff(ino)
	fs.pm.PersistStore64(off, 0) // clears valid+type words
	fs.pm.Fence()
	if fs.fortis {
		fs.pm.PersistStore64(off+inoReplicaOff, 0)
		fs.pm.Fence()
	}
}
