package winefs

import (
	"chipmunk/internal/vfs"
)

func direntImage(ino uint64, name string) []byte {
	b := make([]byte, DirentSize)
	put64(b[deInoOff:], ino)
	b[deNameLenOff] = byte(len(name))
	copy(b[deNameOff:], name)
	return b
}

// findFreeSlot locates a free dirent slot in p, allocating a metadata block
// (from the aligned allocator's metadata end) if needed.
func (f *FS) findFreeSlot(p *dnode, t *txn) (int64, error) {
	for _, b := range p.blocks {
		if b == 0 {
			continue
		}
		for s := 0; s < direntsPerBlock; s++ {
			off := blockOff(b) + int64(s)*DirentSize
			if f.pm.Load64(off) == 0 && !f.slotPending(p, off) {
				return off, nil
			}
		}
	}
	idx := -1
	for i, b := range p.blocks {
		if b == 0 {
			idx = i
			break
		}
	}
	if idx < 0 {
		return 0, vfs.ErrNoSpace
	}
	nb, err := f.alloc.alloc(kindMeta)
	if err != nil {
		return 0, err
	}
	f.pm.MemsetNT(blockOff(nb), 0, BlockSize)
	f.pm.Fence()
	p.blocks[idx] = nb
	t.setInode(p)
	return blockOff(nb), nil
}

func (f *FS) slotPending(p *dnode, off int64) bool {
	for _, ref := range p.dirents {
		if ref.off == off {
			return true
		}
	}
	return false
}

func (f *FS) allocInode() (uint64, error) {
	for i, used := range f.ialloc {
		if !used {
			f.ialloc[i] = true
			return uint64(i), nil
		}
	}
	return 0, vfs.ErrNoSpace
}

// Create implements vfs.FS.
func (f *FS) Create(path string) (vfs.FD, error) {
	defer f.nextOp()
	p, name, err := f.lookupParent(path)
	if err != nil {
		return -1, err
	}
	if _, ok := p.dirents[name]; ok {
		return -1, vfs.ErrExist
	}
	ino, err := f.allocInode()
	if err != nil {
		return -1, err
	}
	d := &dnode{ino: ino, typ: vfs.TypeRegular, nlink: 1}
	t := f.beginTx()
	t.setInode(d)
	slot, err := f.findFreeSlot(p, t)
	if err != nil {
		f.ialloc[ino] = false
		return -1, err
	}
	t.set(slot, direntImage(ino, name))
	t.commit()

	f.inodes[ino] = d
	p.dirents[name] = direntRef{ino: ino, off: slot}
	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = ino
	return fd, nil
}

// Mkdir implements vfs.FS.
func (f *FS) Mkdir(path string) error {
	defer f.nextOp()
	p, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	if _, ok := p.dirents[name]; ok {
		return vfs.ErrExist
	}
	ino, err := f.allocInode()
	if err != nil {
		return err
	}
	d := &dnode{ino: ino, typ: vfs.TypeDir, nlink: 2, dirents: map[string]direntRef{}}
	p.nlink++
	t := f.beginTx()
	t.setInode(d)
	slot, err := f.findFreeSlot(p, t)
	if err != nil {
		p.nlink--
		f.ialloc[ino] = false
		return err
	}
	t.set(slot, direntImage(ino, name))
	t.setInode(p)
	t.commit()

	f.inodes[ino] = d
	p.dirents[name] = direntRef{ino: ino, off: slot}
	return nil
}

// Link implements vfs.FS.
func (f *FS) Link(oldPath, newPath string) error {
	defer f.nextOp()
	n, err := f.lookup(oldPath)
	if err != nil {
		return err
	}
	if n.bad {
		return vfs.ErrIO
	}
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	p, name, err := f.lookupParent(newPath)
	if err != nil {
		return err
	}
	if _, ok := p.dirents[name]; ok {
		return vfs.ErrExist
	}
	n.nlink++
	t := f.beginTx()
	slot, err := f.findFreeSlot(p, t)
	if err != nil {
		n.nlink--
		return err
	}
	t.set(slot, direntImage(n.ino, name))
	t.setInode(n)
	t.commit()
	p.dirents[name] = direntRef{ino: n.ino, off: slot}
	return nil
}

// Unlink implements vfs.FS.
func (f *FS) Unlink(path string) error {
	defer f.nextOp()
	p, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	ref, ok := p.dirents[name]
	if !ok {
		return vfs.ErrNotExist
	}
	n := f.inodes[ref.ino]
	if n == nil || n.bad {
		return vfs.ErrIO
	}
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	lastLink := n.nlink == 1
	n.nlink--
	t := f.beginTx()
	t.set(ref.off, make([]byte, DirentSize))
	if lastLink {
		t.set(inodeOff(n.ino), make([]byte, InodeSize))
	} else {
		t.setInode(n)
	}
	t.commit()
	delete(p.dirents, name)
	if lastLink {
		f.destroyInode(n)
	}
	return nil
}

// destroyInode frees DRAM state and blocks; the PM invalidation was part of
// the caller's transaction.
func (f *FS) destroyInode(n *dnode) {
	for _, b := range n.blocks {
		if b != 0 {
			f.alloc.release(b)
		}
	}
	f.ialloc[n.ino] = false
	delete(f.inodes, n.ino)
}

// Rmdir implements vfs.FS.
func (f *FS) Rmdir(path string) error {
	defer f.nextOp()
	p, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	ref, ok := p.dirents[name]
	if !ok {
		return vfs.ErrNotExist
	}
	n := f.inodes[ref.ino]
	if n == nil || n.bad {
		return vfs.ErrIO
	}
	if n.typ != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	if len(n.dirents) > 0 {
		return vfs.ErrNotEmpty
	}
	p.nlink--
	n.nlink = 0
	t := f.beginTx()
	t.set(ref.off, make([]byte, DirentSize))
	t.setInode(p)
	t.set(inodeOff(n.ino), make([]byte, InodeSize))
	t.commit()
	delete(p.dirents, name)
	f.destroyInode(n)
	return nil
}

// Rename implements vfs.FS.
func (f *FS) Rename(oldPath, newPath string) error {
	defer f.nextOp()
	oldPath, newPath = vfs.Clean(oldPath), vfs.Clean(newPath)
	if oldPath == newPath {
		return nil
	}
	if vfs.IsAncestor(oldPath, newPath) {
		return vfs.ErrInvalid
	}
	op, oname, err := f.lookupParent(oldPath)
	if err != nil {
		return err
	}
	oref, ok := op.dirents[oname]
	if !ok {
		return vfs.ErrNotExist
	}
	n := f.inodes[oref.ino]
	if n == nil || n.bad {
		return vfs.ErrIO
	}
	np, nname, err := f.lookupParent(newPath)
	if err != nil {
		return err
	}

	var victim *dnode
	var vref direntRef
	if vr, ok := np.dirents[nname]; ok {
		vref = vr
		victim = f.inodes[vr.ino]
		if victim == nil {
			return vfs.ErrIO
		}
		if n.typ == vfs.TypeDir {
			if victim.typ != vfs.TypeDir {
				return vfs.ErrNotDir
			}
			if len(victim.dirents) > 0 {
				return vfs.ErrNotEmpty
			}
		} else if victim.typ == vfs.TypeDir {
			return vfs.ErrIsDir
		}
	}
	victimDies := victim != nil && (victim.typ == vfs.TypeDir || victim.nlink == 1)

	t := f.beginTx()
	t.set(oref.off, make([]byte, DirentSize))
	var slot int64
	if victim != nil {
		slot = vref.off
		t.set(slot, direntImage(n.ino, nname))
	} else {
		slot, err = f.findFreeSlot(np, t)
		if err != nil {
			return err
		}
		t.set(slot, direntImage(n.ino, nname))
	}
	if n.typ == vfs.TypeDir && op != np {
		op.nlink--
		np.nlink++
		t.setInode(op)
		t.setInode(np)
	}
	if victim != nil {
		if victim.typ == vfs.TypeDir {
			np.nlink--
			victim.nlink = 0
			t.setInode(np)
			t.set(inodeOff(victim.ino), make([]byte, InodeSize))
		} else {
			victim.nlink--
			if victimDies {
				t.set(inodeOff(victim.ino), make([]byte, InodeSize))
			} else {
				t.setInode(victim)
			}
		}
	}
	t.commit()

	delete(op.dirents, oname)
	np.dirents[nname] = direntRef{ino: n.ino, off: slot}
	if victimDies {
		f.destroyInode(victim)
	}
	return nil
}
