// Package winefs implements a WineFS-like PM file system [Kadekodi et al.,
// SOSP '21]. WineFS descends from PMFS — in-place metadata under a redo
// journal, direct block pointers, dirent slots in directory blocks — and
// adds the features the paper highlights:
//
//   - per-CPU journals (one redo log per CPU, merged by transaction id at
//     recovery) for scalability;
//   - an alignment-aware allocator that serves metadata from the top of the
//     pool and data from the bottom, preserving huge-page-aligned extents;
//   - a strict mode in which data writes are copy-on-write and published
//     atomically by the journaled block-pointer update.
//
// Injected bugs (Table 1): 14&15 (data fence missing before the publish),
// 17&18 (unaligned NT tail not fenced), 19 (recovery reads only the
// mounting CPU's journal), 20 (strict mode falls back to an in-place,
// non-atomic write for sub-cache-line-aligned overwrites).
package winefs

import (
	"encoding/binary"
	"fmt"

	"chipmunk/internal/bugs"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
)

const (
	// BlockSize is the allocation unit.
	BlockSize = 4096
	// InodeSize is the on-PM inode footprint.
	InodeSize = 128
	// Magic identifies a formatted WineFS image.
	Magic = 0x57494E45 // "WINE"
	// NDirect is the number of direct block pointers per inode.
	NDirect = 12
	// MaxFileSize is NDirect blocks.
	MaxFileSize = NDirect * BlockSize
	// NumCPUs is the size of the per-CPU journal array.
	NumCPUs = 4

	// Block layout: superblock, NumCPUs journal blocks, inode table, pool.
	sbBlock        = 0
	journalBlock0  = 1
	inodeTblBlock  = journalBlock0 + NumCPUs
	inodeTblBlocks = 8
	poolStart      = inodeTblBlock + inodeTblBlocks

	// InodeCount is the number of inode slots.
	InodeCount = inodeTblBlocks * (BlockSize / InodeSize)
	// RootIno is the root directory inode.
	RootIno = 1

	sbMagicOff  = 0
	sbBlocksOff = 8
	// sbReclaimOff holds the reclaim epoch: every transaction with a txid
	// below it is durably applied in place, and recovery must skip it.
	sbReclaimOff = 16

	inoValidOff  = 0
	inoTypeOff   = 4
	inoNlinkOff  = 8
	inoSizeOff   = 16
	inoBlocksOff = 24

	// Directory entry slots.
	DirentSize      = 64
	deInoOff        = 0
	deNameLenOff    = 8
	deNameOff       = 9
	direntsPerBlock = BlockSize / DirentSize
)

func le64(b []byte) uint64     { return binary.LittleEndian.Uint64(b) }
func le32(b []byte) uint32     { return binary.LittleEndian.Uint32(b) }
func put64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func put32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

type dnode struct {
	ino    uint64
	typ    vfs.FileType
	nlink  uint64
	size   int64
	blocks [NDirect]uint64

	dirents map[string]direntRef
	bad     bool
}

type direntRef struct {
	ino uint64
	off int64
}

// Mode selects WineFS's crash-consistency mode.
type Mode int

const (
	// Strict makes data writes crash-atomic via copy-on-write.
	Strict Mode = iota
	// Relaxed writes data in place, PMFS-style (not atomic).
	Relaxed
)

// FS is the WineFS instance.
type FS struct {
	pm   *persist.PM
	bugs bugs.Set
	mode Mode

	totalBlocks uint64
	alloc       *alignAlloc
	ialloc      []bool
	inodes      map[uint64]*dnode
	fds         map[vfs.FD]uint64
	nextFD      vfs.FD
	mounted     bool

	// Per-CPU journal state: DRAM tail mirrors and the global tx counter.
	jTails [NumCPUs]int64
	txid   uint64
	opSeq  uint64 // drives the CPU assignment of operations
}

// Option configures the FS.
type Option func(*FS)

// WithMode selects strict or relaxed mode (default strict).
func WithMode(m Mode) Option { return func(f *FS) { f.mode = m } }

// New creates a WineFS instance with the given injected bug set.
func New(pm *persist.PM, set bugs.Set, opts ...Option) *FS {
	f := &FS{pm: pm, bugs: set, mode: Strict}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Caps implements vfs.FS.
func (f *FS) Caps() vfs.Caps {
	return vfs.Caps{
		Name:           "winefs",
		Strong:         true,
		AtomicWrite:    f.mode == Strict,
		SyncDataWrites: true,
	}
}

func (f *FS) has(id bugs.ID) bool { return f.bugs.Has(id) }

// curCPU returns the CPU the current operation runs on. Operations are
// spread round-robin across CPUs, exercising every journal.
func (f *FS) curCPU() int { return int(f.opSeq % NumCPUs) }

// nextOp advances the simulated CPU assignment; called once per mutating
// system call.
func (f *FS) nextOp() { f.opSeq++ }

func corrupt(format string, args ...interface{}) error {
	return fmt.Errorf("%w: "+format, append([]interface{}{vfs.ErrCorrupt}, args...)...)
}

func inodeOff(ino uint64) int64 {
	return int64(inodeTblBlock)*BlockSize + int64(ino)*InodeSize
}

func blockOff(b uint64) int64 { return int64(b) * BlockSize }

// Mkfs implements vfs.FS.
func (f *FS) Mkfs() error {
	f.totalBlocks = uint64(f.pm.Size()) / BlockSize
	if f.totalBlocks < poolStart+8 {
		return vfs.ErrNoSpace
	}
	pm := f.pm
	pm.MemsetNT(0, 0, poolStart*BlockSize)
	pm.Fence()

	f.alloc = newAlignAlloc(poolStart, f.totalBlocks)
	f.ialloc = make([]bool, InodeCount)
	f.ialloc[0], f.ialloc[RootIno] = true, true
	f.inodes = map[uint64]*dnode{}
	f.fds = map[vfs.FD]uint64{}
	f.nextFD = 3
	f.txid = 1
	for c := 0; c < NumCPUs; c++ {
		f.jTails[c] = jRecsStart
		base := journalBase(c)
		pm.Store64(base+jHeadOff, jRecsStart)
		pm.Store64(base+jTailOff, jRecsStart)
		pm.Flush(base, 16)
	}
	pm.Fence()

	root := &dnode{ino: RootIno, typ: vfs.TypeDir, nlink: 2, dirents: map[string]direntRef{}}
	f.pm.Store(inodeOff(RootIno), f.inodeImage(root))
	f.pm.Flush(inodeOff(RootIno), InodeSize)
	pm.Fence()
	f.inodes[RootIno] = root

	pm.Store64(sbMagicOff, Magic)
	pm.Store64(sbBlocksOff, f.totalBlocks)
	pm.Flush(0, 16)
	pm.Fence()
	f.mounted = true
	return nil
}

func (f *FS) inodeImage(d *dnode) []byte {
	buf := make([]byte, InodeSize)
	put32(buf[inoValidOff:], 1)
	put32(buf[inoTypeOff:], uint32(d.typ))
	put64(buf[inoNlinkOff:], d.nlink)
	put64(buf[inoSizeOff:], uint64(d.size))
	for i, b := range d.blocks {
		put64(buf[inoBlocksOff+i*8:], b)
	}
	return buf
}

// Unmount implements vfs.FS.
func (f *FS) Unmount() error {
	f.mounted = false
	f.fds = map[vfs.FD]uint64{}
	f.inodes = nil
	f.alloc = nil
	return nil
}

func (f *FS) lookup(path string) (*dnode, error) {
	d := f.inodes[RootIno]
	if d == nil {
		return nil, vfs.ErrCorrupt
	}
	for _, c := range vfs.Components(path) {
		if d.bad {
			return nil, vfs.ErrIO
		}
		if d.typ != vfs.TypeDir {
			return nil, vfs.ErrNotDir
		}
		ref, ok := d.dirents[c]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		d = f.inodes[ref.ino]
		if d == nil {
			return nil, vfs.ErrIO
		}
	}
	return d, nil
}

func (f *FS) lookupParent(path string) (*dnode, string, error) {
	dir, name := vfs.SplitPath(path)
	if name == "" {
		return nil, "", vfs.ErrInvalid
	}
	if !vfs.ValidName(name) {
		return nil, "", vfs.ErrNameTooLong
	}
	p, err := f.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if p.typ != vfs.TypeDir {
		return nil, "", vfs.ErrNotDir
	}
	if p.bad {
		return nil, "", vfs.ErrIO
	}
	return p, name, nil
}

// Stat implements vfs.FS.
func (f *FS) Stat(path string) (vfs.Stat, error) {
	d, err := f.lookup(path)
	if err != nil {
		return vfs.Stat{}, err
	}
	if d.bad {
		return vfs.Stat{}, vfs.ErrIO
	}
	return vfs.Stat{Ino: d.ino, Type: d.typ, Nlink: uint32(d.nlink), Size: d.size}, nil
}

// ReadDir implements vfs.FS.
func (f *FS) ReadDir(path string) ([]vfs.DirEnt, error) {
	d, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	if d.bad {
		return nil, vfs.ErrIO
	}
	if d.typ != vfs.TypeDir {
		return nil, vfs.ErrNotDir
	}
	out := make([]vfs.DirEnt, 0, len(d.dirents))
	for name, ref := range d.dirents {
		typ := vfs.TypeRegular
		if c := f.inodes[ref.ino]; c != nil {
			typ = c.typ
		}
		out = append(out, vfs.DirEnt{Name: name, Ino: ref.ino, Type: typ})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// Open implements vfs.FS.
func (f *FS) Open(path string) (vfs.FD, error) {
	d, err := f.lookup(path)
	if err != nil {
		return -1, err
	}
	if d.bad {
		return -1, vfs.ErrIO
	}
	if d.typ == vfs.TypeDir {
		return -1, vfs.ErrIsDir
	}
	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = d.ino
	return fd, nil
}

// Close implements vfs.FS.
func (f *FS) Close(fd vfs.FD) error {
	if _, ok := f.fds[fd]; !ok {
		return vfs.ErrBadFD
	}
	delete(f.fds, fd)
	return nil
}

func (f *FS) fdInode(fd vfs.FD) (*dnode, error) {
	ino, ok := f.fds[fd]
	if !ok {
		return nil, vfs.ErrBadFD
	}
	d := f.inodes[ino]
	if d == nil {
		return nil, vfs.ErrBadFD
	}
	return d, nil
}

// Fsync implements vfs.FS (synchronous system).
func (f *FS) Fsync(fd vfs.FD) error {
	if _, ok := f.fds[fd]; !ok {
		return vfs.ErrBadFD
	}
	return nil
}

// Sync implements vfs.FS.
func (f *FS) Sync() error { return nil }

var _ vfs.FS = (*FS)(nil)

// OpenFDs implements vfs.FDCounter.
func (f *FS) OpenFDs() int { return len(f.fds) }
