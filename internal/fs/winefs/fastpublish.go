package winefs

// The mini-journal backs the strict-mode "fast publish" path of bug 20: a
// fixed two-record redo area in the superblock block. The CORRECT protocol
// would fence the records before the commit word; the published fast path
// issues records and commit in one fence window, so a crash can persist the
// commit with only a subset of the records — recovery then redoes a partial
// transaction. The records are cleared (commit word first durable as zero)
// after every use so a stale commit never replays garbage.
// Each field sits in its own cache line: the commit word and the two
// records persist independently, which is what gives the missing fence its
// crash window.
const (
	mjCommitOff = 64  // within block 0, after the superblock header
	mjRec0Off   = 128 // {target u64, val u64}
	mjRec1Off   = 192 // {target u64, val u64}
)

// fastPublish publishes two 8-byte metadata words via the mini-journal with
// the missing record/commit fence.
func (f *FS) fastPublish(target0 int64, val0 uint64, target1 int64, val1 uint64) {
	pm := f.pm
	// The fast path writes words the per-CPU redo windows may also cover;
	// it retires them first so replay cannot roll the publish back.
	f.reclaimAll()
	// Records and commit in ONE fence window — the bug.
	pm.Store64(mjRec0Off, uint64(target0))
	pm.Store64(mjRec0Off+8, val0)
	pm.Flush(mjRec0Off, 16)
	pm.Store64(mjRec1Off, uint64(target1))
	pm.Store64(mjRec1Off+8, val1)
	pm.Flush(mjRec1Off, 16)
	pm.PersistStore64(mjCommitOff, 1)
	pm.Fence()
	// Apply in place.
	pm.PersistStore64(target0, val0)
	pm.PersistStore64(target1, val1)
	pm.Fence()
	// Retire: clear the commit word, then the records.
	pm.PersistStore64(mjCommitOff, 0)
	pm.Fence()
	pm.MemsetNT(mjRec0Off, 0, mjRec1Off-mjRec0Off+16)
	pm.Fence()
}

// recoverMiniJournal redoes a committed fast-publish transaction. Record
// slots holding zero targets are skipped (the cleared state).
func (f *FS) recoverMiniJournal() error {
	pm := f.pm
	if pm.Load64(mjCommitOff) != 1 {
		return nil
	}
	for _, off := range []int64{mjRec0Off, mjRec1Off} {
		target := int64(pm.Load64(off))
		if target == 0 {
			continue
		}
		if target < 0 || target+8 > pm.Size() {
			return corrupt("mini-journal target %d out of range", target)
		}
		pm.PersistStore64(target, pm.Load64(off+8))
	}
	pm.Fence()
	pm.PersistStore64(mjCommitOff, 0)
	pm.Fence()
	pm.MemsetNT(mjRec0Off, 0, mjRec1Off-mjRec0Off+16)
	pm.Fence()
	return nil
}
