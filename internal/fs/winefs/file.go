package winefs

import (
	"chipmunk/internal/bugs"
	"chipmunk/internal/pmem"
	"chipmunk/internal/vfs"
)

// Pwrite implements vfs.FS.
//
// Strict mode (the default) makes data writes crash-atomic: new blocks are
// built copy-on-write and published by the journaled block-pointer/size
// update. Relaxed mode writes in place, PMFS-style.
//
// Injected bugs: 14&15 skip the data fence before the publish; 17&18 leave
// the sub-word tail of unaligned writes unfenced; 20 is the strict-mode
// fast path that modifies an existing block in place (two fences apart)
// when the write starts at a sub-cache-line offset, breaking atomicity.
func (f *FS) Pwrite(fd vfs.FD, data []byte, off int64) (int, error) {
	defer f.nextOp()
	d, err := f.fdInode(fd)
	if err != nil {
		return 0, err
	}
	if d.bad {
		return 0, vfs.ErrIO
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if len(data) == 0 {
		return 0, nil
	}
	end := off + int64(len(data))
	if end > MaxFileSize {
		return 0, vfs.ErrNoSpace
	}

	if f.mode == Strict {
		return f.pwriteStrict(d, data, off, end)
	}
	return f.pwriteRelaxed(d, data, off, end)
}

// pwriteStrict is the copy-on-write path.
func (f *FS) pwriteStrict(d *dnode, data []byte, off, end int64) (int, error) {
	firstBlk := int(off / BlockSize)
	lastBlk := int((end - 1) / BlockSize)
	newSize := d.size
	if end > newSize {
		newSize = end
	}

	// Bug 20: single-block extending writes at a sub-cache-line offset take
	// a "fast publish" path that pushes the block pointer and the new size
	// through the mini-journal WITHOUT the fence between the records and
	// the commit word. The data pages themselves are built correctly, but a
	// crash can commit the size record without the pointer record — the
	// extended range then reads zeros: the write was not atomic. Exposing
	// it requires replaying exactly two in-flight writes (the size record
	// and the commit), the "one bug needs two writes" of Observation 7.
	if f.has(bugs.WinefsStrictInPlace) && off%pmem.CacheLineSize != 0 &&
		firstBlk == lastBlk && end > d.size {
		nb, err := f.alloc.alloc(kindData)
		if err != nil {
			return 0, err
		}
		content := make([]byte, BlockSize)
		if old := d.blocks[firstBlk]; old != 0 {
			f.pm.LoadInto(blockOff(old), content)
		}
		blkStart := int64(firstBlk) * BlockSize
		copy(content[off-blkStart:], data)
		f.pm.MemcpyNT(blockOff(nb), content)
		f.pm.Fence()

		old := d.blocks[firstBlk]
		d.blocks[firstBlk] = nb
		d.size = end
		f.fastPublish(inodeOff(d.ino)+inoBlocksOff+int64(firstBlk)*8, nb,
			inodeOff(d.ino)+inoSizeOff, uint64(end))
		if old != 0 {
			f.alloc.release(old)
		}
		return len(data), nil
	}

	type pending struct {
		idx     int
		block   uint64
		content []byte
	}
	var pend []pending
	for i := firstBlk; i <= lastBlk; i++ {
		nb, err := f.alloc.alloc(kindData)
		if err != nil {
			for _, p := range pend {
				f.alloc.release(p.block)
			}
			return 0, err
		}
		content := make([]byte, BlockSize)
		if old := d.blocks[i]; old != 0 {
			f.pm.LoadInto(blockOff(old), content)
		}
		blkStart := int64(i) * BlockSize
		from := max64(off, blkStart)
		to := min64(end, blkStart+BlockSize)
		copy(content[from-blkStart:], data[from-off:to-off])
		pend = append(pend, pending{i, nb, content})
	}

	// Stream the new blocks; the publish must not overtake the data.
	for pi, p := range pend {
		last := pi == len(pend)-1
		dst := blockOff(p.block)
		switch {
		case last && f.has(bugs.NTTailNotFenced) && int(end)%8 != 0:
			// The copy helper fences the aligned body only.
			valid := int(end - int64(p.idx)*BlockSize)
			body := valid &^ 7
			f.pm.MemcpyNT(dst, p.content[:body])
			f.pm.Fence()
			f.pm.MemcpyNT(dst+int64(body), p.content[body:])
			// Missing fence for the tail.
		case last && f.has(bugs.WriteNotSync):
			// Missing fence: the publish below can land without the data.
			f.pm.MemcpyNT(dst, p.content)
		default:
			f.pm.MemcpyNT(dst, p.content)
			if last {
				f.pm.Fence()
			}
		}
	}

	// Publish atomically via the journal.
	var olds []uint64
	for _, p := range pend {
		if old := d.blocks[p.idx]; old != 0 {
			olds = append(olds, old)
		}
		d.blocks[p.idx] = p.block
	}
	d.size = newSize
	t := f.beginTx()
	t.setInode(d)
	t.commit()
	for _, b := range olds {
		f.alloc.release(b)
	}
	return int(end - off), nil
}

// pwriteRelaxed is the PMFS-style in-place path.
func (f *FS) pwriteRelaxed(d *dnode, data []byte, off, end int64) (int, error) {
	firstBlk := int(off / BlockSize)
	lastBlk := int((end - 1) / BlockSize)
	metaDirty := false
	for i := firstBlk; i <= lastBlk; i++ {
		if d.blocks[i] != 0 {
			continue
		}
		nb, err := f.alloc.alloc(kindData)
		if err != nil {
			return 0, err
		}
		f.pm.MemsetNT(blockOff(nb), 0, BlockSize)
		d.blocks[i] = nb
		metaDirty = true
	}
	if metaDirty {
		f.pm.Fence()
	}
	if end > d.size {
		d.size = end
		metaDirty = true
	}
	if metaDirty {
		t := f.beginTx()
		t.setInode(d)
		t.commit()
	}
	for i := firstBlk; i <= lastBlk; i++ {
		blkStart := int64(i) * BlockSize
		from := max64(off, blkStart)
		to := min64(end, blkStart+BlockSize)
		chunk := data[from-off : to-off]
		dst := blockOff(d.blocks[i]) + (from - blkStart)
		last := i == lastBlk
		switch {
		case last && f.has(bugs.NTTailNotFenced) && len(chunk)%8 != 0:
			body := len(chunk) &^ 7
			if body > 0 {
				f.pm.MemcpyNT(dst, chunk[:body])
			}
			f.pm.Fence()
			f.pm.MemcpyNT(dst+int64(body), chunk[body:])
		case last && f.has(bugs.WriteNotSync):
			f.pm.MemcpyNT(dst, chunk)
		default:
			f.pm.MemcpyNT(dst, chunk)
			if last {
				f.pm.Fence()
			}
		}
	}
	return len(data), nil
}

// Pread implements vfs.FS.
func (f *FS) Pread(fd vfs.FD, buf []byte, off int64) (int, error) {
	d, err := f.fdInode(fd)
	if err != nil {
		return 0, err
	}
	if d.bad {
		return 0, vfs.ErrIO
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if off >= d.size {
		return 0, nil
	}
	n := int64(len(buf))
	if off+n > d.size {
		n = d.size - off
	}
	for pos := off; pos < off+n; {
		i := int(pos / BlockSize)
		blkStart := int64(i) * BlockSize
		chunk := min64(blkStart+BlockSize, off+n) - pos
		if b := d.blocks[i]; b != 0 {
			f.pm.LoadInto(blockOff(b)+(pos-blkStart), buf[pos-off:pos-off+chunk])
		} else {
			for j := pos - off; j < pos-off+chunk; j++ {
				buf[j] = 0
			}
		}
		pos += chunk
	}
	return int(n), nil
}

// Truncate implements vfs.FS.
func (f *FS) Truncate(path string, size int64) error {
	defer f.nextOp()
	if size < 0 {
		return vfs.ErrInvalid
	}
	if size > MaxFileSize {
		return vfs.ErrNoSpace
	}
	d, err := f.lookup(path)
	if err != nil {
		return err
	}
	if d.bad {
		return vfs.ErrIO
	}
	if d.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	if size == d.size {
		return nil
	}
	if size > d.size {
		d.size = size
		t := f.beginTx()
		t.setInode(d)
		t.commit()
		return nil
	}

	oldBlocks := d.blocks
	firstDead := int((size + BlockSize - 1) / BlockSize)
	for i := firstDead; i < NDirect; i++ {
		d.blocks[i] = 0
	}
	d.size = size
	t := f.beginTx()
	t.setInode(d)
	t.commit()

	if rem := size % BlockSize; rem != 0 && d.blocks[size/BlockSize] != 0 {
		b := d.blocks[size/BlockSize]
		f.pm.MemsetNT(blockOff(b)+rem, 0, int(BlockSize-rem))
		f.pm.Fence()
	}
	for i := firstDead; i < NDirect; i++ {
		if oldBlocks[i] != 0 {
			f.alloc.release(oldBlocks[i])
		}
	}
	return nil
}

// Fallocate implements vfs.FS.
func (f *FS) Fallocate(fd vfs.FD, off, length int64) error {
	defer f.nextOp()
	d, err := f.fdInode(fd)
	if err != nil {
		return err
	}
	if d.bad {
		return vfs.ErrIO
	}
	if off < 0 || length <= 0 {
		return vfs.ErrInvalid
	}
	end := off + length
	if end > MaxFileSize {
		return vfs.ErrNoSpace
	}
	metaDirty := false
	for i := int(off / BlockSize); i <= int((end-1)/BlockSize); i++ {
		if d.blocks[i] != 0 {
			continue
		}
		nb, err := f.alloc.alloc(kindData)
		if err != nil {
			return err
		}
		f.pm.MemsetNT(blockOff(nb), 0, BlockSize)
		d.blocks[i] = nb
		metaDirty = true
	}
	if metaDirty {
		f.pm.Fence()
	}
	if end > d.size {
		d.size = end
		metaDirty = true
	}
	if metaDirty {
		t := f.beginTx()
		t.setInode(d)
		t.commit()
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
