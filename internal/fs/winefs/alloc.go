package winefs

import "chipmunk/internal/vfs"

// alignAlloc is WineFS's alignment-aware allocator (DRAM-only, rebuilt at
// mount). Its goal in the real system is to keep 2 MiB huge-page extents
// unfragmented: metadata blocks (journals, dirent blocks) are carved from
// the top of the pool and data blocks from the bottom, so long runs of
// aligned free space survive metadata churn. We model a huge-page extent as
// hugeRun consecutive blocks.
const hugeRun = 16

type allocKind int

const (
	// kindData allocates from the bottom of the pool.
	kindData allocKind = iota
	// kindMeta allocates from the top, preserving aligned data extents.
	kindMeta
)

type alignAlloc struct {
	used  []bool
	start uint64
	total uint64
}

func newAlignAlloc(start, total uint64) *alignAlloc {
	return &alignAlloc{used: make([]bool, total), start: start, total: total}
}

func (a *alignAlloc) alloc(kind allocKind) (uint64, error) {
	if kind == kindMeta {
		for b := a.total - 1; b >= a.start; b-- {
			if !a.used[b] {
				a.used[b] = true
				return b, nil
			}
		}
		return 0, vfs.ErrNoSpace
	}
	for b := a.start; b < a.total; b++ {
		if !a.used[b] {
			a.used[b] = true
			return b, nil
		}
	}
	return 0, vfs.ErrNoSpace
}

func (a *alignAlloc) markUsed(b uint64) bool {
	if b < a.start || b >= a.total || a.used[b] {
		return false
	}
	a.used[b] = true
	return true
}

func (a *alignAlloc) release(b uint64) bool {
	if b < a.start || b >= a.total || !a.used[b] {
		return false
	}
	a.used[b] = false
	return true
}

func (a *alignAlloc) freeBlocks() int {
	n := 0
	for b := a.start; b < a.total; b++ {
		if !a.used[b] {
			n++
		}
	}
	return n
}

// alignedFreeExtents counts fully free huge-page-aligned runs — the metric
// WineFS optimizes to age gracefully.
func (a *alignAlloc) alignedFreeExtents() int {
	n := 0
	for b := (a.start + hugeRun - 1) / hugeRun * hugeRun; b+hugeRun <= a.total; b += hugeRun {
		free := true
		for i := uint64(0); i < hugeRun; i++ {
			if a.used[b+i] {
				free = false
				break
			}
		}
		if free {
			n++
		}
	}
	return n
}
