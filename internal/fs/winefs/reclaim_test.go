package winefs

import (
	"fmt"
	"testing"

	"chipmunk/internal/bugs"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
	"chipmunk/internal/vfs"
)

// TestReclaimEpochSoundness is a regression test for a recovery-ordering
// hazard: with per-CPU journals, reclaiming one journal while another still
// holds an OLDER transaction that touched the same words (the root
// directory inode, typically) must not let recovery roll the newer state
// back. The reclaim epoch guarantees this even when a crash persists only
// some of the head advances.
//
// The workload drives heavy shared-object (root dir) churn across all four
// journals, through multiple reclaim cycles, remounting after every op
// batch.
func TestReclaimEpochSoundness(t *testing.T) {
	dev := pmem.NewDevice(testDevSize)
	f := New(persist.New(dev), bugs.None())
	if err := f.Mkfs(); err != nil {
		t.Fatal(err)
	}
	expectEntries := map[string]bool{}
	for round := 0; round < 12; round++ {
		name := fmt.Sprintf("/r%02d", round)
		if _, err := f.Create(name); err != nil {
			t.Fatal(err)
		}
		expectEntries[name[1:]] = true
		if round%3 == 2 {
			victim := fmt.Sprintf("/r%02d", round-2)
			if err := f.Unlink(victim); err != nil {
				t.Fatal(err)
			}
			delete(expectEntries, victim[1:])
		}

		// Remount from the crash image after every round and compare the
		// directory exactly.
		f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), bugs.None())
		if err := f2.Mount(); err != nil {
			t.Fatalf("round %d: mount: %v", round, err)
		}
		ents, err := f2.ReadDir("/")
		if err != nil {
			t.Fatalf("round %d: readdir: %v", round, err)
		}
		if len(ents) != len(expectEntries) {
			t.Fatalf("round %d: %d entries, want %d", round, len(ents), len(expectEntries))
		}
		for _, e := range ents {
			if !expectEntries[e.Name] {
				t.Fatalf("round %d: unexpected entry %s", round, e.Name)
			}
		}
		st, _ := f2.Stat("/")
		if st.Nlink != 2 {
			t.Fatalf("round %d: root nlink = %d", round, st.Nlink)
		}
	}
}

// TestReclaimPartialHeadAdvance simulates the exact hazard: persist the
// epoch and only SOME journal heads (as a crash mid-reclaim would), then
// mount. Recovery must skip every pre-epoch transaction rather than re-apply
// the surviving old windows.
func TestReclaimPartialHeadAdvance(t *testing.T) {
	dev := pmem.NewDevice(testDevSize)
	f := New(persist.New(dev), bugs.None())
	if err := f.Mkfs(); err != nil {
		t.Fatal(err)
	}
	// Two ops on different CPUs touching the root image.
	if _, err := f.Create("/a"); err != nil { // cpu 0, tx 1
		t.Fatal(err)
	}
	if err := f.Mkdir("/d"); err != nil { // cpu 1, tx 2 (root nlink -> 3)
		t.Fatal(err)
	}
	// Simulate a crash mid-reclaim: epoch persisted, only journal 1's head
	// advanced. Journal 0 still holds tx 1 with the OLD root image.
	f.pm.PersistStore64(sbReclaimOff, f.txid)
	f.pm.Fence()
	f.pm.PersistStore64(journalBase(1)+jHeadOff, uint64(f.jTails[1]))
	f.pm.Fence()

	f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), bugs.None())
	if err := f2.Mount(); err != nil {
		t.Fatal(err)
	}
	st, err := f2.Stat("/")
	if err != nil {
		t.Fatal(err)
	}
	if st.Nlink != 3 {
		t.Fatalf("root nlink = %d after partial reclaim, want 3 (tx rollback!)", st.Nlink)
	}
	if _, err := f2.Stat("/d"); err != nil {
		t.Fatalf("/d lost: %v", err)
	}
	if _, err := f2.Stat("/a"); err != nil {
		t.Fatalf("/a lost: %v", err)
	}
}

// TestMiniJournalRecoveryRoundTrip: a committed fast-publish transaction is
// redone at mount; a cleared one is ignored.
func TestMiniJournalRecoveryRoundTrip(t *testing.T) {
	dev := pmem.NewDevice(testDevSize)
	f := New(persist.New(dev), bugs.Of(bugs.WinefsStrictInPlace))
	if err := f.Mkfs(); err != nil {
		t.Fatal(err)
	}
	fd, _ := f.Create("/a")
	f.Pwrite(fd, make([]byte, 40), 0)
	f.Pwrite(fd, []byte{1, 2, 3}, 3) // not extending: normal path
	st, _ := f.Stat("/a")
	if st.Size != 40 {
		t.Fatalf("size = %d", st.Size)
	}
	// Extending unaligned write: fast publish.
	f.Pwrite(fd, make([]byte, 100), 41)
	f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), bugs.Of(bugs.WinefsStrictInPlace))
	if err := f2.Mount(); err != nil {
		t.Fatal(err)
	}
	st2, err := f2.Stat("/a")
	if err != nil || st2.Size != 141 {
		t.Fatalf("post-crash size = %d, %v", st2.Size, err)
	}
	_ = vfs.TypeRegular
}
