package winefs

import (
	"sort"

	"chipmunk/internal/bugs"
)

// WineFS keeps one redo journal per CPU. Each transaction is stamped with a
// global monotonically increasing transaction id; recovery parses the
// un-reclaimed window of every journal and re-applies the transactions
// merged in txid order, which keeps redo correct even though operations on
// shared objects (the root directory, say) land in different journals.
//
// Bug 19 is the recovery flaw the paper found: the published code indexed
// the journal array with the CPU id of the mounting task instead of walking
// every journal, so committed transactions in the other journals were never
// re-applied after a crash.
const (
	jHeadOff    = 0
	jTailOff    = 8
	jRecsStart  = 16
	jAreaSize   = 2048
	jRecDataMax = 128
	jTxHdrSize  = 24 // {txid u64, nrecs u64, reserved u64}
)

func journalBase(cpu int) int64 {
	return int64(journalBlock0+cpu) * BlockSize
}

type jrec struct {
	off  int64
	data []byte
}

type txn struct {
	fs   *FS
	cpu  int
	recs []jrec
}

func (f *FS) beginTx() *txn { return &txn{fs: f, cpu: f.curCPU()} }

func (t *txn) set(off int64, data []byte) {
	if len(data) > jRecDataMax {
		panic("winefs: journal record too large")
	}
	t.recs = append(t.recs, jrec{off, append([]byte(nil), data...)})
}

func (t *txn) setInode(d *dnode) {
	t.set(inodeOff(d.ino), t.fs.inodeImage(d))
}

func pad8(n int) int { return (n + 7) &^ 7 }

// regionByte maps a monotonically increasing region offset to a device
// offset inside cpu's journal, wrapping modularly.
func regionByte(cpu int, pos int64) int64 {
	wrapped := jRecsStart + (pos-jRecsStart)%(jAreaSize-jRecsStart)
	return journalBase(cpu) + wrapped
}

func (f *FS) storeWrapped(cpu int, pos int64, data []byte) {
	for i := 0; i < len(data); {
		dev := regionByte(cpu, pos+int64(i))
		room := int(journalBase(cpu) + jAreaSize - dev)
		n := len(data) - i
		if n > room {
			n = room
		}
		f.pm.Store(dev, data[i:i+n])
		f.pm.Flush(dev, n)
		i += n
	}
}

func (f *FS) loadWrapped(cpu int, pos int64, n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		dev := regionByte(cpu, pos+int64(len(out)))
		room := int(journalBase(cpu) + jAreaSize - dev)
		take := n - len(out)
		if take > room {
			take = room
		}
		out = append(out, f.pm.Load(dev, take)...)
	}
	return out
}

// commit writes the tx (header + records), publishes the tail, applies the
// records in place, and reclaims lazily.
func (t *txn) commit() {
	fs := t.fs
	cpu := t.cpu
	base := journalBase(cpu)

	need := int64(jTxHdrSize)
	for _, r := range t.recs {
		need += 16 + int64(pad8(len(r.data)))
	}
	head := int64(fs.pm.Load64(base + jHeadOff))
	if fs.jTails[cpu]+need-head > int64(jAreaSize-jRecsStart) {
		fs.reclaimAll()
	}

	pos := fs.jTails[cpu]
	hdr := make([]byte, jTxHdrSize)
	put64(hdr, fs.txid)
	put64(hdr[8:], uint64(len(t.recs)))
	fs.txid++
	fs.storeWrapped(cpu, pos, hdr)
	pos += jTxHdrSize
	for _, r := range t.recs {
		rh := make([]byte, 16)
		put64(rh, uint64(r.off))
		put64(rh[8:], uint64(len(r.data)))
		fs.storeWrapped(cpu, pos, rh)
		padded := make([]byte, pad8(len(r.data)))
		copy(padded, r.data)
		fs.storeWrapped(cpu, pos+16, padded)
		pos += 16 + int64(len(padded))
	}
	fs.pm.Fence()

	fs.jTails[cpu] = pos
	fs.pm.PersistStore64(base+jTailOff, uint64(pos))
	fs.pm.Fence()

	for _, r := range t.recs {
		fs.pm.Store(r.off, r.data)
		fs.pm.Flush(r.off, len(r.data))
	}
	fs.pm.Fence()

	head = int64(fs.pm.Load64(base + jHeadOff))
	if pos-head >= int64((jAreaSize-jRecsStart)*3/4) {
		fs.reclaimAll()
	}
}

// reclaimAll retires every journal window. Reclamation must be globally
// ordered: per-journal reclamation would let recovery re-apply an old
// transaction from one journal after a newer, already-reclaimed transaction
// from another had updated the same words, rolling it back. The reclaim
// EPOCH (the next unissued txid) is persisted and fenced before any head
// moves: every transaction below the epoch has completed its in-place
// apply (execution is sequential), so recovery skips it — even if a crash
// leaves only some heads advanced.
func (fs *FS) reclaimAll() {
	fs.pm.PersistStore64(sbReclaimOff, fs.txid)
	fs.pm.Fence()
	for c := 0; c < NumCPUs; c++ {
		fs.pm.PersistStore64(journalBase(c)+jHeadOff, uint64(fs.jTails[c]))
	}
	fs.pm.Fence()
}

// parsedTx is one transaction recovered from a journal window.
type parsedTx struct {
	txid uint64
	recs []jrec
}

// recoverJournals re-applies committed transactions. Fixed code merges all
// journals by txid; bug 19 reads only journal[0] (the mounting CPU).
func (f *FS) recoverJournals() error {
	cpus := NumCPUs
	if f.has(bugs.WinefsJournalIndex) {
		cpus = 1 // only the live CPU's journal is consulted
	}
	epoch := f.pm.Load64(sbReclaimOff)
	var txs []parsedTx
	for cpu := 0; cpu < cpus; cpu++ {
		parsed, err := f.parseJournal(cpu)
		if err != nil {
			return err
		}
		for _, tx := range parsed {
			if tx.txid >= epoch {
				txs = append(txs, tx)
			}
		}
	}
	// Journals not consulted still need their DRAM tails for later commits.
	for cpu := 0; cpu < NumCPUs; cpu++ {
		f.jTails[cpu] = int64(f.pm.Load64(journalBase(cpu) + jTailOff))
		if f.txid <= f.lastTxid(cpu) {
			f.txid = f.lastTxid(cpu) + 1
		}
	}
	sort.Slice(txs, func(i, j int) bool { return txs[i].txid < txs[j].txid })
	for _, tx := range txs {
		for _, r := range tx.recs {
			f.pm.Store(r.off, r.data)
			f.pm.Flush(r.off, len(r.data))
		}
	}
	f.pm.Fence()
	return nil
}

// lastTxid scans cpu's window for the highest committed txid.
func (f *FS) lastTxid(cpu int) uint64 {
	txs, err := f.parseJournal(cpu)
	if err != nil || len(txs) == 0 {
		return 0
	}
	return txs[len(txs)-1].txid
}

func (f *FS) parseJournal(cpu int) ([]parsedTx, error) {
	base := journalBase(cpu)
	head := int64(f.pm.Load64(base + jHeadOff))
	tail := int64(f.pm.Load64(base + jTailOff))
	if head < jRecsStart || tail < head {
		return nil, corrupt("journal %d pointers head=%d tail=%d", cpu, head, tail)
	}
	var txs []parsedTx
	for pos := head; pos < tail; {
		hdr := f.loadWrapped(cpu, pos, jTxHdrSize)
		txid := le64(hdr)
		nrecs := le64(hdr[8:])
		if nrecs > 64 {
			return nil, corrupt("journal %d: tx with %d records", cpu, nrecs)
		}
		pos += jTxHdrSize
		tx := parsedTx{txid: txid}
		for i := uint64(0); i < nrecs; i++ {
			rh := f.loadWrapped(cpu, pos, 16)
			target := int64(le64(rh))
			n := int(le64(rh[8:]))
			if n > jRecDataMax {
				return nil, corrupt("journal %d: record length %d", cpu, n)
			}
			if target < 0 || target+int64(n) > f.pm.Size() {
				return nil, corrupt("journal %d: record target %d", cpu, target)
			}
			tx.recs = append(tx.recs, jrec{target, f.loadWrapped(cpu, pos+16, n)})
			pos += 16 + int64(pad8(n))
		}
		txs = append(txs, tx)
	}
	return txs, nil
}
