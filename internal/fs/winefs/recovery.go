package winefs

import (
	"chipmunk/internal/vfs"
)

// Mount implements vfs.FS: per-CPU journal recovery (merged by transaction
// id), inode scan, allocator rebuild, orphan GC.
func (f *FS) Mount() error {
	pm := f.pm
	if pm.Load64(sbMagicOff) != Magic {
		return corrupt("bad superblock magic %#x", pm.Load64(sbMagicOff))
	}
	f.totalBlocks = pm.Load64(sbBlocksOff)
	if f.totalBlocks == 0 || int64(f.totalBlocks)*BlockSize > pm.Size() {
		return corrupt("superblock block count %d exceeds device", f.totalBlocks)
	}

	if err := f.recoverJournals(); err != nil {
		return err
	}
	if err := f.recoverMiniJournal(); err != nil {
		return err
	}

	f.alloc = newAlignAlloc(poolStart, f.totalBlocks)
	f.ialloc = make([]bool, InodeCount)
	f.ialloc[0] = true
	f.inodes = map[uint64]*dnode{}
	f.fds = map[vfs.FD]uint64{}
	f.nextFD = 3

	for ino := uint64(1); ino < InodeCount; ino++ {
		img := pm.Load(inodeOff(ino), InodeSize)
		if le32(img[inoValidOff:]) != 1 {
			continue
		}
		d := &dnode{
			ino:   ino,
			typ:   vfs.FileType(le32(img[inoTypeOff:])),
			nlink: le64(img[inoNlinkOff:]),
			size:  int64(le64(img[inoSizeOff:])),
		}
		for i := 0; i < NDirect; i++ {
			d.blocks[i] = le64(img[inoBlocksOff+i*8:])
		}
		if d.typ == vfs.TypeDir {
			d.dirents = map[string]direntRef{}
		}
		f.ialloc[ino] = true
		f.inodes[ino] = d
	}
	root := f.inodes[RootIno]
	if root == nil || root.typ != vfs.TypeDir {
		return corrupt("root inode missing or not a directory")
	}

	for _, d := range f.inodes {
		for i, b := range d.blocks {
			if b == 0 {
				continue
			}
			if b < poolStart || b >= f.totalBlocks {
				return corrupt("inode %d block[%d]=%d out of range", d.ino, i, b)
			}
			if !f.alloc.markUsed(b) {
				return corrupt("block %d referenced twice", b)
			}
		}
	}

	for _, d := range f.inodes {
		if d.typ != vfs.TypeDir {
			continue
		}
		for _, b := range d.blocks {
			if b == 0 {
				continue
			}
			for s := 0; s < direntsPerBlock; s++ {
				off := blockOff(b) + int64(s)*DirentSize
				slot := pm.Load(off, DirentSize)
				ino := le64(slot[deInoOff:])
				if ino == 0 {
					continue
				}
				nameLen := int(slot[deNameLenOff])
				if ino >= InodeCount || nameLen == 0 || nameLen > DirentSize-deNameOff {
					return corrupt("bad dirent in block %d slot %d", b, s)
				}
				name := string(slot[deNameOff : deNameOff+nameLen])
				d.dirents[name] = direntRef{ino: ino, off: off}
			}
		}
	}

	referenced := map[uint64]bool{RootIno: true}
	for _, d := range f.inodes {
		if d.typ != vfs.TypeDir {
			continue
		}
		for _, ref := range d.dirents {
			referenced[ref.ino] = true
			if f.inodes[ref.ino] == nil {
				f.inodes[ref.ino] = &dnode{ino: ref.ino, typ: vfs.TypeRegular, bad: true}
			}
		}
	}
	reachable := map[uint64]bool{RootIno: true}
	f.markReachable(root, reachable)
	for ino, d := range f.inodes {
		if reachable[ino] || d.bad {
			continue
		}
		f.destroyInodePM(d)
	}
	for ino, d := range f.inodes {
		if d.bad && !reachable[ino] {
			delete(f.inodes, ino)
		}
	}

	f.mounted = true
	return nil
}

// destroyInodePM reclaims an orphan at mount time, clearing its PM slot.
func (f *FS) destroyInodePM(d *dnode) {
	f.pm.PersistStore64(inodeOff(d.ino), 0)
	f.pm.Fence()
	f.destroyInode(d)
}

func (f *FS) markReachable(d *dnode, seen map[uint64]bool) {
	if d.typ != vfs.TypeDir || d.bad {
		return
	}
	for _, ref := range d.dirents {
		if seen[ref.ino] {
			continue
		}
		seen[ref.ino] = true
		if c := f.inodes[ref.ino]; c != nil {
			f.markReachable(c, seen)
		}
	}
}
