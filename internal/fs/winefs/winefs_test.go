package winefs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"chipmunk/internal/bugs"
	"chipmunk/internal/fs/memfs"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
	"chipmunk/internal/vfs"
)

const testDevSize = 4 << 20

func newWinefs(t *testing.T, set bugs.Set, opts ...Option) (*FS, *pmem.Device) {
	t.Helper()
	dev := pmem.NewDevice(testDevSize)
	f := New(persist.New(dev), set, opts...)
	if err := f.Mkfs(); err != nil {
		t.Fatal(err)
	}
	return f, dev
}

func readFile(t *testing.T, f vfs.FS, path string) []byte {
	t.Helper()
	st, err := f.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	fd, err := f.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close(fd)
	buf := make([]byte, st.Size)
	n, err := f.Pread(fd, buf, 0)
	if err != nil {
		t.Fatalf("pread %s: %v", path, err)
	}
	return buf[:n]
}

func TestBasicLifecycle(t *testing.T) {
	for _, mode := range []Mode{Strict, Relaxed} {
		f, _ := newWinefs(t, bugs.None(), WithMode(mode))
		fd, err := f.Create("/a")
		if err != nil {
			t.Fatal(err)
		}
		f.Pwrite(fd, []byte("wine data"), 0)
		f.Close(fd)
		if got := readFile(t, f, "/a"); string(got) != "wine data" {
			t.Fatalf("mode %d: read = %q", mode, got)
		}
		f.Mkdir("/d")
		f.Rename("/a", "/d/b")
		f.Link("/d/b", "/l")
		st, _ := f.Stat("/l")
		if st.Nlink != 2 {
			t.Fatalf("nlink = %d", st.Nlink)
		}
		f.Unlink("/l")
		f.Unlink("/d/b")
		f.Rmdir("/d")
		ents, _ := f.ReadDir("/")
		if len(ents) != 0 {
			t.Fatalf("leftovers: %v", ents)
		}
	}
}

func TestStrictOverwriteCoW(t *testing.T) {
	f, _ := newWinefs(t, bugs.None())
	fd, _ := f.Create("/a")
	f.Pwrite(fd, bytes.Repeat([]byte{1}, 5000), 0)
	f.Pwrite(fd, []byte{9, 9, 9}, 4094) // cross-block overwrite
	got := readFile(t, f, "/a")
	if got[4093] != 1 || got[4094] != 9 || got[4096] != 9 || got[4097] != 1 {
		t.Fatalf("overwrite wrong around boundary: %v", got[4090:4100])
	}
}

func TestCrashImageSynchronyAcrossCPUJournals(t *testing.T) {
	// Operations land on different per-CPU journals; everything must be
	// durable at each syscall return.
	f, dev := newWinefs(t, bugs.None())
	for i, name := range []string{"/a", "/b", "/c", "/d", "/e", "/f"} {
		fd, err := f.Create(name)
		if err != nil {
			t.Fatal(err)
		}
		f.Pwrite(fd, []byte{byte(i + 1)}, 0)
		f.Close(fd)
	}
	img := pmem.FromImage(dev.CrashImage())
	f2 := New(persist.New(img), bugs.None())
	if err := f2.Mount(); err != nil {
		t.Fatalf("mount: %v", err)
	}
	ents, _ := f2.ReadDir("/")
	if len(ents) != 6 {
		t.Fatalf("entries = %d", len(ents))
	}
}

func TestRemountAfterJournalWrap(t *testing.T) {
	f, dev := newWinefs(t, bugs.None())
	for round := 0; round < 10; round++ {
		for _, n := range []string{"/x", "/y", "/z"} {
			if _, err := f.Create(n); err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range []string{"/x", "/y", "/z"} {
			if err := f.Unlink(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	f.Create("/keep")
	f.Unmount()
	f2 := New(persist.New(dev), bugs.None())
	if err := f2.Mount(); err != nil {
		t.Fatalf("remount: %v", err)
	}
	if _, err := f2.Stat("/keep"); err != nil {
		t.Fatal(err)
	}
}

func TestAlignedAllocatorSeparatesKinds(t *testing.T) {
	f, _ := newWinefs(t, bugs.None())
	data, err := f.alloc.alloc(kindData)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := f.alloc.alloc(kindMeta)
	if err != nil {
		t.Fatal(err)
	}
	if data >= meta {
		t.Fatalf("data block %d should be below metadata block %d", data, meta)
	}
	before := f.alloc.alignedFreeExtents()
	// Metadata churn must not erode aligned extents faster than data.
	for i := 0; i < 8; i++ {
		f.alloc.alloc(kindMeta)
	}
	after := f.alloc.alignedFreeExtents()
	if before-after > 1 {
		t.Fatalf("metadata allocations fragmented %d aligned extents", before-after)
	}
}

func TestBug19SingleJournalRecovery(t *testing.T) {
	// Build a crash image holding a committed-but-unapplied transaction in
	// a non-zero CPU journal: run ops until the op counter sits on CPU 1+,
	// then snapshot between the tail publish and the in-place apply. We
	// approximate by replaying the recorded trace up to just after a tail
	// publish — simpler here: write the tx and crash before apply by
	// copying the device mid-commit is engine work; at the FS level we
	// verify the weaker contract that buggy recovery consults only journal
	// 0 while fixed recovery consults all.
	f, dev := newWinefs(t, bugs.None())
	f.Create("/a") // cpu 0
	f.Create("/b") // cpu 1
	// Manually append a committed tx to journal 2 that creates a dirent for
	// a valid inode, simulating a crash before its in-place apply.
	d := &dnode{ino: 9, typ: vfs.TypeRegular, nlink: 1}
	f.ialloc[9] = true
	tx := &txn{fs: f, cpu: 2}
	tx.setInode(d)
	slotOff := int64(0)
	for _, b := range f.inodes[RootIno].blocks {
		if b != 0 {
			slotOff = blockOff(b) + 2*DirentSize
			break
		}
	}
	tx.set(slotOff, direntImage(9, "ghost"))
	// Commit writes + tail publish, but skip the in-place apply: emulate by
	// committing into the journal only.
	base := journalBase(2)
	pos := f.jTails[2]
	hdr := make([]byte, jTxHdrSize)
	put64(hdr, f.txid)
	put64(hdr[8:], uint64(len(tx.recs)))
	f.txid++
	f.storeWrapped(2, pos, hdr)
	pos += jTxHdrSize
	for _, r := range tx.recs {
		rh := make([]byte, 16)
		put64(rh, uint64(r.off))
		put64(rh[8:], uint64(len(r.data)))
		f.storeWrapped(2, pos, rh)
		padded := make([]byte, pad8(len(r.data)))
		copy(padded, r.data)
		f.storeWrapped(2, pos+16, padded)
		pos += 16 + int64(len(padded))
	}
	f.pm.Fence()
	f.pm.PersistStore64(base+jTailOff, uint64(pos))
	f.pm.Fence()

	img := dev.CrashImage()

	// Fixed recovery replays the journal-2 tx: /ghost exists and is readable.
	fixed := New(persist.New(pmem.FromImage(img)), bugs.None())
	if err := fixed.Mount(); err != nil {
		t.Fatalf("fixed mount: %v", err)
	}
	if _, err := fixed.Stat("/ghost"); err != nil {
		t.Fatalf("fixed recovery lost journal-2 tx: %v", err)
	}

	// Buggy recovery consults only journal 0: the tx is lost.
	buggy := New(persist.New(pmem.FromImage(img)), bugs.Of(bugs.WinefsJournalIndex))
	if err := buggy.Mount(); err != nil {
		t.Fatalf("buggy mount: %v", err)
	}
	if _, err := buggy.Stat("/ghost"); err == nil {
		t.Fatal("buggy recovery should have lost the journal-2 tx")
	}
}

func TestBug20FastPublishPath(t *testing.T) {
	f, dev := newWinefs(t, bugs.Of(bugs.WinefsStrictInPlace))
	fd, _ := f.Create("/a")
	f.Pwrite(fd, bytes.Repeat([]byte{0xAA}, 40), 0)
	// Unaligned EXTENDING write hits the mini-journal fast path.
	f.Pwrite(fd, bytes.Repeat([]byte{0xBB}, 100), 3)
	got := readFile(t, f, "/a")
	if len(got) != 103 || got[3] != 0xBB || got[102] != 0xBB || got[2] != 0xAA {
		t.Fatalf("fast-path contents wrong: len=%d head=%v", len(got), got[0:8])
	}
	// The live path must also survive a clean crash + remount.
	f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), bugs.Of(bugs.WinefsStrictInPlace))
	if err := f2.Mount(); err != nil {
		t.Fatalf("mount: %v", err)
	}
	if got := readFile(t, f2, "/a"); len(got) != 103 || got[3] != 0xBB {
		t.Fatalf("post-crash contents wrong: len=%d", len(got))
	}
}

func TestPropertyDifferentialVsMemfs(t *testing.T) {
	paths := []string{"/f0", "/f1", "/d0/f2", "/d0", "/d1"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.NewDevice(testDevSize)
		wf := New(persist.New(dev), bugs.None())
		if err := wf.Mkfs(); err != nil {
			t.Fatal(err)
		}
		ref := memfs.New()
		ref.Mkfs()
		for i := 0; i < 30; i++ {
			kind := rng.Intn(9)
			a := paths[rng.Intn(len(paths))]
			b := paths[rng.Intn(len(paths))]
			off := rng.Int63n(5000)
			n := rng.Intn(3000) + 1
			s2 := rng.Int63()
			e1 := applyOp(wf, kind, a, b, off, n, s2)
			e2 := applyOp(ref, kind, a, b, off, n, s2)
			if (e1 == nil) != (e2 == nil) {
				t.Logf("seed %d op %d(%s,%s): winefs=%v ref=%v", seed, kind, a, b, e1, e2)
				return false
			}
		}
		s1, err1 := vfs.Capture(wf)
		s2c, err2 := vfs.Capture(ref)
		if err1 != nil || err2 != nil {
			t.Logf("capture: %v %v", err1, err2)
			return false
		}
		if d := vfs.Diff(s1, s2c); d != "" {
			t.Logf("seed %d diff: %s", seed, d)
			return false
		}
		wf.Unmount()
		wf2 := New(persist.New(dev), bugs.None())
		if err := wf2.Mount(); err != nil {
			t.Logf("seed %d remount: %v", seed, err)
			return false
		}
		s3, err := vfs.Capture(wf2)
		if err != nil {
			t.Logf("capture3: %v", err)
			return false
		}
		if d := vfs.Diff(s3, s2c); d != "" {
			t.Logf("seed %d remount diff: %s", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func applyOp(f vfs.FS, kind int, a, b string, off int64, n int, seed int64) error {
	switch kind {
	case 0:
		fd, err := f.Create(a)
		if err != nil {
			return err
		}
		return f.Close(fd)
	case 1:
		return f.Mkdir(a)
	case 2:
		fd, err := f.Open(a)
		if err != nil {
			return err
		}
		defer f.Close(fd)
		buf := make([]byte, n)
		rand.New(rand.NewSource(seed)).Read(buf)
		_, err = f.Pwrite(fd, buf, off)
		return err
	case 3:
		return f.Unlink(a)
	case 4:
		return f.Rmdir(a)
	case 5:
		return f.Rename(a, b)
	case 6:
		return f.Link(a, b)
	case 7:
		return f.Truncate(a, off)
	case 8:
		fd, err := f.Open(a)
		if err != nil {
			return err
		}
		defer f.Close(fd)
		return f.Fallocate(fd, off, int64(n))
	}
	return nil
}

func TestErrors(t *testing.T) {
	f, _ := newWinefs(t, bugs.None())
	if _, err := f.Create("/missing/x"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal(err)
	}
	f.Create("/a")
	if _, err := f.Create("/a"); !errors.Is(err, vfs.ErrExist) {
		t.Fatal(err)
	}
	f.Mkdir("/d")
	if err := f.Unlink("/d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Fatal(err)
	}
	if err := f.Rmdir("/a"); !errors.Is(err, vfs.ErrNotDir) {
		t.Fatal(err)
	}
	if _, err := f.Pwrite(77, []byte{1}, 0); !errors.Is(err, vfs.ErrBadFD) {
		t.Fatal(err)
	}
}

func TestCaps(t *testing.T) {
	f, _ := newWinefs(t, bugs.None())
	if !f.Caps().AtomicWrite {
		t.Fatal("strict mode should advertise atomic writes")
	}
	g, _ := newWinefs(t, bugs.None(), WithMode(Relaxed))
	if g.Caps().AtomicWrite {
		t.Fatal("relaxed mode should not advertise atomic writes")
	}
}
