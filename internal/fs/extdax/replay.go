package extdax

import "chipmunk/internal/vfs"

// The methods below exist for SplitFS: its operation-log replay addresses
// files by kernel inode number (paths can have changed between a staged
// write and the crash), mirroring how the real SplitFS relinks staged
// extents into inodes rather than paths.

// HasIno reports whether ino names a live node.
func (f *FS) HasIno(ino uint64) bool { return f.nodes[ino] != nil }

// InoOf resolves a path to its inode number.
func (f *FS) InoOf(path string) (uint64, error) {
	n, err := f.lookup(path)
	if err != nil {
		return 0, err
	}
	return n.ino, nil
}

// PwriteIno writes data at off into the node with the given inode number.
func (f *FS) PwriteIno(ino uint64, data []byte, off int64) error {
	n := f.nodes[ino]
	if n == nil {
		return vfs.ErrNotExist
	}
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	end := off + int64(len(data))
	if end > int64(len(n.data)) {
		n.data = append(n.data, make([]byte, end-int64(len(n.data)))...)
	}
	copy(n.data[off:], data)
	f.dirty[ino] = true
	return nil
}

// ExtendIno grows the node to at least size bytes (fallocate replay).
func (f *FS) ExtendIno(ino uint64, size int64) error {
	n := f.nodes[ino]
	if n == nil {
		return vfs.ErrNotExist
	}
	if int64(len(n.data)) < size {
		n.data = append(n.data, make([]byte, size-int64(len(n.data)))...)
	}
	f.dirty[ino] = true
	return nil
}

// TruncateIno sets the node's size (truncate replay).
func (f *FS) TruncateIno(ino uint64, size int64) error {
	n := f.nodes[ino]
	if n == nil {
		return vfs.ErrNotExist
	}
	cur := int64(len(n.data))
	switch {
	case size < cur:
		n.data = n.data[:size]
	case size > cur:
		n.data = append(n.data, make([]byte, size-cur)...)
	}
	f.dirty[ino] = true
	return nil
}
