package extdax

import (
	"sort"

	"chipmunk/internal/vfs"
)

// All namespace and data operations mutate only the volatile tree and mark
// the touched nodes dirty; durability happens at commit (fsync/sync).

func (f *FS) lookup(path string) (*node, error) {
	n := f.nodes[1]
	if n == nil {
		return nil, vfs.ErrCorrupt
	}
	for _, c := range vfs.Components(path) {
		if n.typ != vfs.TypeDir {
			return nil, vfs.ErrNotDir
		}
		ino, ok := n.children[c]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		n = f.nodes[ino]
		if n == nil {
			return nil, vfs.ErrIO
		}
	}
	return n, nil
}

func (f *FS) lookupParent(path string) (*node, string, error) {
	dir, name := vfs.SplitPath(path)
	if name == "" {
		return nil, "", vfs.ErrInvalid
	}
	if !vfs.ValidName(name) {
		return nil, "", vfs.ErrNameTooLong
	}
	p, err := f.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if p.typ != vfs.TypeDir {
		return nil, "", vfs.ErrNotDir
	}
	return p, name, nil
}

// Create implements vfs.FS.
func (f *FS) Create(path string) (vfs.FD, error) {
	p, name, err := f.lookupParent(path)
	if err != nil {
		return -1, err
	}
	if _, ok := p.children[name]; ok {
		return -1, vfs.ErrExist
	}
	n := &node{ino: f.nextIno, typ: vfs.TypeRegular, nlink: 1}
	f.nextIno++
	p.children[name] = n.ino
	f.nodes[n.ino] = n
	f.dirty[n.ino] = true
	f.dirty[p.ino] = true
	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = n.ino
	return fd, nil
}

// Open implements vfs.FS.
func (f *FS) Open(path string) (vfs.FD, error) {
	n, err := f.lookup(path)
	if err != nil {
		return -1, err
	}
	if n.typ == vfs.TypeDir {
		return -1, vfs.ErrIsDir
	}
	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = n.ino
	return fd, nil
}

// Close implements vfs.FS.
func (f *FS) Close(fd vfs.FD) error {
	if _, ok := f.fds[fd]; !ok {
		return vfs.ErrBadFD
	}
	delete(f.fds, fd)
	return nil
}

// Mkdir implements vfs.FS.
func (f *FS) Mkdir(path string) error {
	p, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	if _, ok := p.children[name]; ok {
		return vfs.ErrExist
	}
	n := &node{ino: f.nextIno, typ: vfs.TypeDir, nlink: 2, children: map[string]uint64{}}
	f.nextIno++
	p.children[name] = n.ino
	p.nlink++
	f.nodes[n.ino] = n
	f.dirty[n.ino] = true
	f.dirty[p.ino] = true
	return nil
}

// Rmdir implements vfs.FS.
func (f *FS) Rmdir(path string) error {
	p, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	ino, ok := p.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	n := f.nodes[ino]
	if n == nil {
		return vfs.ErrIO
	}
	if n.typ != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	if len(n.children) > 0 {
		return vfs.ErrNotEmpty
	}
	delete(p.children, name)
	p.nlink--
	delete(f.nodes, ino)
	f.deleted[ino] = true
	delete(f.dirty, ino)
	f.dirty[p.ino] = true
	return nil
}

// Link implements vfs.FS.
func (f *FS) Link(oldPath, newPath string) error {
	n, err := f.lookup(oldPath)
	if err != nil {
		return err
	}
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	p, name, err := f.lookupParent(newPath)
	if err != nil {
		return err
	}
	if _, ok := p.children[name]; ok {
		return vfs.ErrExist
	}
	p.children[name] = n.ino
	n.nlink++
	f.dirty[p.ino] = true
	f.dirty[n.ino] = true
	return nil
}

// Unlink implements vfs.FS.
func (f *FS) Unlink(path string) error {
	p, name, err := f.lookupParent(path)
	if err != nil {
		return err
	}
	ino, ok := p.children[name]
	if !ok {
		return vfs.ErrNotExist
	}
	n := f.nodes[ino]
	if n == nil {
		return vfs.ErrIO
	}
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	delete(p.children, name)
	n.nlink--
	f.dirty[p.ino] = true
	if n.nlink == 0 {
		delete(f.nodes, ino)
		f.deleted[ino] = true
		delete(f.dirty, ino)
	} else {
		f.dirty[ino] = true
	}
	return nil
}

// Rename implements vfs.FS.
func (f *FS) Rename(oldPath, newPath string) error {
	oldPath, newPath = vfs.Clean(oldPath), vfs.Clean(newPath)
	if oldPath == newPath {
		return nil
	}
	if vfs.IsAncestor(oldPath, newPath) {
		return vfs.ErrInvalid
	}
	op, oname, err := f.lookupParent(oldPath)
	if err != nil {
		return err
	}
	ino, ok := op.children[oname]
	if !ok {
		return vfs.ErrNotExist
	}
	n := f.nodes[ino]
	np, nname, err := f.lookupParent(newPath)
	if err != nil {
		return err
	}
	if vIno, ok := np.children[nname]; ok {
		victim := f.nodes[vIno]
		if victim == nil {
			return vfs.ErrIO
		}
		if n.typ == vfs.TypeDir {
			if victim.typ != vfs.TypeDir {
				return vfs.ErrNotDir
			}
			if len(victim.children) > 0 {
				return vfs.ErrNotEmpty
			}
			np.nlink--
			delete(f.nodes, vIno)
			f.deleted[vIno] = true
			delete(f.dirty, vIno)
		} else {
			if victim.typ == vfs.TypeDir {
				return vfs.ErrIsDir
			}
			victim.nlink--
			if victim.nlink == 0 {
				delete(f.nodes, vIno)
				f.deleted[vIno] = true
				delete(f.dirty, vIno)
			} else {
				f.dirty[vIno] = true
			}
		}
	}
	delete(op.children, oname)
	np.children[nname] = ino
	if n.typ == vfs.TypeDir && op != np {
		op.nlink--
		np.nlink++
	}
	f.dirty[op.ino] = true
	f.dirty[np.ino] = true
	return nil
}

// Truncate implements vfs.FS.
func (f *FS) Truncate(path string, size int64) error {
	if size < 0 {
		return vfs.ErrInvalid
	}
	n, err := f.lookup(path)
	if err != nil {
		return err
	}
	if n.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	cur := int64(len(n.data))
	switch {
	case size < cur:
		n.data = n.data[:size]
	case size > cur:
		n.data = append(n.data, make([]byte, size-cur)...)
	}
	f.dirty[n.ino] = true
	return nil
}

// Fallocate implements vfs.FS.
func (f *FS) Fallocate(fd vfs.FD, off, length int64) error {
	n, err := f.fdNode(fd)
	if err != nil {
		return err
	}
	if off < 0 || length <= 0 {
		return vfs.ErrInvalid
	}
	if off+length > int64(len(n.data)) {
		n.data = append(n.data, make([]byte, off+length-int64(len(n.data)))...)
	}
	f.dirty[n.ino] = true
	return nil
}

func (f *FS) fdNode(fd vfs.FD) (*node, error) {
	ino, ok := f.fds[fd]
	if !ok {
		return nil, vfs.ErrBadFD
	}
	n := f.nodes[ino]
	if n == nil {
		return nil, vfs.ErrBadFD
	}
	return n, nil
}

// Pwrite implements vfs.FS.
func (f *FS) Pwrite(fd vfs.FD, data []byte, off int64) (int, error) {
	n, err := f.fdNode(fd)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	end := off + int64(len(data))
	if end > int64(len(n.data)) {
		n.data = append(n.data, make([]byte, end-int64(len(n.data)))...)
	}
	copy(n.data[off:], data)
	f.dirty[n.ino] = true
	return len(data), nil
}

// Pread implements vfs.FS.
func (f *FS) Pread(fd vfs.FD, buf []byte, off int64) (int, error) {
	n, err := f.fdNode(fd)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if off >= int64(len(n.data)) {
		return 0, nil
	}
	return copy(buf, n.data[off:]), nil
}

// Fsync implements vfs.FS: commits the running journal transaction, making
// everything dirty so far durable (ext4's global journal semantics).
func (f *FS) Fsync(fd vfs.FD) error {
	if _, ok := f.fds[fd]; !ok {
		return vfs.ErrBadFD
	}
	return f.commit()
}

// Sync implements vfs.FS.
func (f *FS) Sync() error { return f.commit() }

// Stat implements vfs.FS.
func (f *FS) Stat(path string) (vfs.Stat, error) {
	n, err := f.lookup(path)
	if err != nil {
		return vfs.Stat{}, err
	}
	return vfs.Stat{Ino: n.ino, Type: n.typ, Nlink: n.nlink, Size: int64(len(n.data))}, nil
}

// ReadDir implements vfs.FS.
func (f *FS) ReadDir(path string) ([]vfs.DirEnt, error) {
	n, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	if n.typ != vfs.TypeDir {
		return nil, vfs.ErrNotDir
	}
	out := make([]vfs.DirEnt, 0, len(n.children))
	for name, ino := range n.children {
		typ := vfs.TypeRegular
		if c := f.nodes[ino]; c != nil {
			typ = c.typ
		}
		out = append(out, vfs.DirEnt{Name: name, Ino: ino, Type: typ})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Setxattr implements vfs.XattrFS (ext4-DAX and XFS-DAX support extended
// attributes; the other tested systems do not, matching §4.1).
func (f *FS) Setxattr(path, name string, value []byte) error {
	n, err := f.lookup(path)
	if err != nil {
		return err
	}
	if !vfs.ValidName(name) {
		return vfs.ErrInvalid
	}
	if n.xattrs == nil {
		n.xattrs = map[string]string{}
	}
	n.xattrs[name] = string(value)
	f.dirty[n.ino] = true
	return nil
}

// Getxattr implements vfs.XattrFS.
func (f *FS) Getxattr(path, name string) ([]byte, error) {
	n, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	v, ok := n.xattrs[name]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	return []byte(v), nil
}

// Removexattr implements vfs.XattrFS.
func (f *FS) Removexattr(path, name string) error {
	n, err := f.lookup(path)
	if err != nil {
		return err
	}
	if _, ok := n.xattrs[name]; !ok {
		return vfs.ErrNotExist
	}
	delete(n.xattrs, name)
	f.dirty[n.ino] = true
	return nil
}

// Listxattr implements vfs.XattrFS.
func (f *FS) Listxattr(path string) ([]string, error) {
	n, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(n.xattrs))
	for name := range n.xattrs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

var _ vfs.XattrFS = (*FS)(nil)
