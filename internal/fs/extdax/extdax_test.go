package extdax

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"chipmunk/internal/fs/memfs"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
	"chipmunk/internal/vfs"
)

const testDevSize = 4 << 20

func newExt(t *testing.T, v Variant) (*FS, *pmem.Device) {
	t.Helper()
	dev := pmem.NewDevice(testDevSize)
	f := New(persist.New(dev), v)
	if err := f.Mkfs(); err != nil {
		t.Fatal(err)
	}
	return f, dev
}

func TestVolatileUntilFsync(t *testing.T) {
	f, dev := newExt(t, Ext4)
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("not yet durable"), 0)

	// Crash without fsync: the file is gone.
	f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), Ext4)
	if err := f2.Mount(); err != nil {
		t.Fatalf("mount: %v", err)
	}
	if _, err := f2.Stat("/a"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("unsynced file survived crash: %v", err)
	}

	// After fsync it survives.
	if err := f.Fsync(fd); err != nil {
		t.Fatal(err)
	}
	f3 := New(persist.New(pmem.FromImage(dev.CrashImage())), Ext4)
	if err := f3.Mount(); err != nil {
		t.Fatal(err)
	}
	st, err := f3.Stat("/a")
	if err != nil || st.Size != 15 {
		t.Fatalf("synced file: %+v %v", st, err)
	}
	fd3, _ := f3.Open("/a")
	buf := make([]byte, 15)
	f3.Pread(fd3, buf, 0)
	if string(buf) != "not yet durable" {
		t.Fatalf("data = %q", buf)
	}
}

func TestCrashRevertsToLastCommit(t *testing.T) {
	f, dev := newExt(t, Ext4)
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("v1"), 0)
	f.Sync()
	f.Pwrite(fd, []byte("v2"), 0)
	f.Unlink("/a") // volatile: unlink after the sync

	f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), Ext4)
	if err := f2.Mount(); err != nil {
		t.Fatal(err)
	}
	fd2, err := f2.Open("/a")
	if err != nil {
		t.Fatalf("file should be back at v1: %v", err)
	}
	buf := make([]byte, 2)
	f2.Pread(fd2, buf, 0)
	if string(buf) != "v1" {
		t.Fatalf("data = %q, want v1", buf)
	}
}

func TestTornCommitIgnored(t *testing.T) {
	// A commit whose records are durable but whose commit block is not must
	// be ignored: simulate by syncing, then writing a valid-looking header
	// with garbage body directly past the log end.
	f, dev := newExt(t, Ext4)
	fd, _ := f.Create("/a")
	f.Fsync(fd)
	// Corrupt: place a tx header at jTail with no commit record.
	hdr := make([]byte, txHdrSize)
	hdr[0], hdr[1], hdr[2], hdr[3] = 0x42, 0x34, 0x58, 0x54 // txMagic LE
	dev.NTStore(f.jTail, hdr)
	dev.Fence()
	f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), Ext4)
	if err := f2.Mount(); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Stat("/a"); err != nil {
		t.Fatalf("state before torn tx lost: %v", err)
	}
}

func TestVariants(t *testing.T) {
	e, _ := newExt(t, Ext4)
	x, _ := newExt(t, XFS)
	if e.Caps().Name != "ext4-dax" || x.Caps().Name != "xfs-dax" {
		t.Fatal("variant names")
	}
	if e.Caps().Strong || x.Caps().Strong {
		t.Fatal("DAX systems must advertise weak guarantees")
	}
	// Mounting with the wrong variant fails (different magic).
	dev := pmem.NewDevice(testDevSize)
	f := New(persist.New(dev), Ext4)
	f.Mkfs()
	wrong := New(persist.New(pmem.FromImage(dev.CrashImage())), XFS)
	if err := wrong.Mount(); !errors.Is(err, vfs.ErrCorrupt) {
		t.Fatalf("cross-variant mount: %v", err)
	}
}

func TestTagPlumbing(t *testing.T) {
	f, dev := newExt(t, Ext4)
	f.Create("/a")
	if err := f.CommitTagged(42); err != nil {
		t.Fatal(err)
	}
	f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), Ext4)
	if err := f2.Mount(); err != nil {
		t.Fatal(err)
	}
	if f2.Tag() != 42 {
		t.Fatalf("tag = %d", f2.Tag())
	}
}

func TestPropertyDifferentialVsMemfsWithSync(t *testing.T) {
	paths := []string{"/f0", "/f1", "/d0/f2", "/d0", "/d1"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.NewDevice(testDevSize)
		ef := New(persist.New(dev), Ext4)
		if err := ef.Mkfs(); err != nil {
			t.Fatal(err)
		}
		ref := memfs.New()
		ref.Mkfs()
		for i := 0; i < 25; i++ {
			kind := rng.Intn(10)
			a := paths[rng.Intn(len(paths))]
			b := paths[rng.Intn(len(paths))]
			off := rng.Int63n(5000)
			n := rng.Intn(3000) + 1
			s2 := rng.Int63()
			e1 := applyOp(ef, kind, a, b, off, n, s2)
			e2 := applyOp(ref, kind, a, b, off, n, s2)
			if (e1 == nil) != (e2 == nil) {
				t.Logf("seed %d op %d: ext=%v ref=%v", seed, kind, e1, e2)
				return false
			}
		}
		s1, err1 := vfs.Capture(ef)
		s2c, err2 := vfs.Capture(ref)
		if err1 != nil || err2 != nil {
			return false
		}
		if d := vfs.Diff(s1, s2c); d != "" {
			t.Logf("seed %d diff: %s", seed, d)
			return false
		}
		// Sync, crash, remount: must equal the reference exactly.
		if err := ef.Sync(); err != nil {
			t.Logf("sync: %v", err)
			return false
		}
		ef2 := New(persist.New(pmem.FromImage(dev.CrashImage())), Ext4)
		if err := ef2.Mount(); err != nil {
			t.Logf("seed %d remount: %v", seed, err)
			return false
		}
		s3, err := vfs.Capture(ef2)
		if err != nil {
			return false
		}
		if d := vfs.Diff(s3, s2c); d != "" {
			t.Logf("seed %d post-sync diff: %s", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func applyOp(f vfs.FS, kind int, a, b string, off int64, n int, seed int64) error {
	switch kind {
	case 0:
		fd, err := f.Create(a)
		if err != nil {
			return err
		}
		return f.Close(fd)
	case 1:
		return f.Mkdir(a)
	case 2:
		fd, err := f.Open(a)
		if err != nil {
			return err
		}
		defer f.Close(fd)
		buf := make([]byte, n)
		rand.New(rand.NewSource(seed)).Read(buf)
		_, err = f.Pwrite(fd, buf, off)
		return err
	case 3:
		return f.Unlink(a)
	case 4:
		return f.Rmdir(a)
	case 5:
		return f.Rename(a, b)
	case 6:
		return f.Link(a, b)
	case 7:
		return f.Truncate(a, off)
	case 8:
		fd, err := f.Open(a)
		if err != nil {
			return err
		}
		defer f.Close(fd)
		return f.Fallocate(fd, off, int64(n))
	case 9:
		return f.Sync()
	}
	return nil
}

func TestHardLinkSurvivesSync(t *testing.T) {
	f, dev := newExt(t, Ext4)
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("linked"), 0)
	f.Link("/a", "/b")
	f.Sync()
	f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), Ext4)
	if err := f2.Mount(); err != nil {
		t.Fatal(err)
	}
	sa, _ := f2.Stat("/a")
	sb, _ := f2.Stat("/b")
	if sa.Ino != sb.Ino || sa.Nlink != 2 {
		t.Fatalf("hard link lost: %+v %+v", sa, sb)
	}
	bs := make([]byte, 6)
	fdb, _ := f2.Open("/b")
	f2.Pread(fdb, bs, 0)
	if !bytes.Equal(bs, []byte("linked")) {
		t.Fatalf("data = %q", bs)
	}
}

func TestXattrsSurviveCommit(t *testing.T) {
	f, dev := newExt(t, Ext4)
	fd, _ := f.Create("/a")
	f.Close(fd)
	if err := f.Setxattr("/a", "user.owner", []byte("alice")); err != nil {
		t.Fatal(err)
	}
	if err := f.Setxattr("/a", "user.tag", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := f.Removexattr("/a", "user.tag"); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), Ext4)
	if err := f2.Mount(); err != nil {
		t.Fatal(err)
	}
	v, err := f2.Getxattr("/a", "user.owner")
	if err != nil || string(v) != "alice" {
		t.Fatalf("xattr after crash: %q %v", v, err)
	}
	if _, err := f2.Getxattr("/a", "user.tag"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("removed xattr resurrected: %v", err)
	}
	names, _ := f2.Listxattr("/a")
	if len(names) != 1 || names[0] != "user.owner" {
		t.Fatalf("listxattr = %v", names)
	}
}

func TestXattrVolatileUntilCommit(t *testing.T) {
	f, dev := newExt(t, Ext4)
	fd, _ := f.Create("/a")
	f.Fsync(fd)
	f.Setxattr("/a", "user.late", []byte("v"))
	// No sync: the attribute is lost at crash.
	f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), Ext4)
	if err := f2.Mount(); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Getxattr("/a", "user.late"); err == nil {
		t.Fatal("unsynced xattr survived")
	}
}

func TestJournalCompactionPingPong(t *testing.T) {
	// A small device forces many compactions; state must survive each flip
	// and every crash image in between must mount to the last commit.
	dev := pmem.NewDevice(256 << 10)
	f := New(persist.New(dev), Ext4)
	if err := f.Mkfs(); err != nil {
		t.Fatal(err)
	}
	fd, _ := f.Create("/a")
	payload := make([]byte, 4096)
	for round := 0; round < 60; round++ {
		for i := range payload {
			payload[i] = byte(round)
		}
		if _, err := f.Pwrite(fd, payload, 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Fsync(fd); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		f2 := New(persist.New(pmem.FromImage(dev.CrashImage())), Ext4)
		if err := f2.Mount(); err != nil {
			t.Fatalf("round %d: mount: %v", round, err)
		}
		fd2, err := f2.Open("/a")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		buf := make([]byte, 4096)
		f2.Pread(fd2, buf, 0)
		if buf[0] != byte(round) || buf[4095] != byte(round) {
			t.Fatalf("round %d: data = %d/%d", round, buf[0], buf[4095])
		}
	}
}

func TestCompactionPreservesTreeAndXattrs(t *testing.T) {
	dev := pmem.NewDevice(256 << 10)
	f := New(persist.New(dev), Ext4)
	f.Mkfs()
	f.Mkdir("/d")
	fd, _ := f.Create("/d/file")
	f.Pwrite(fd, []byte("survivor"), 0)
	f.Link("/d/file", "/hard")
	f.Setxattr("/d/file", "user.k", []byte("v"))
	f.Sync()
	before, _ := vfs.Capture(f)

	// Churn until compaction certainly happened (several times).
	fd2, _ := f.Create("/churn")
	big := make([]byte, 8192)
	for i := 0; i < 40; i++ {
		f.Pwrite(fd2, big, 0)
		f.Sync()
	}
	f.Unlink("/churn")
	f.Sync()

	f3 := New(persist.New(pmem.FromImage(dev.CrashImage())), Ext4)
	if err := f3.Mount(); err != nil {
		t.Fatal(err)
	}
	after, err := vfs.Capture(f3)
	if err != nil {
		t.Fatal(err)
	}
	delete(before, "/churn")
	// The root dir entries changed (churn removed); compare the stable part.
	for _, p := range []string{"/d", "/d/file", "/hard"} {
		if !after[p].Equal(before[p]) {
			t.Fatalf("%s changed across compaction:\n got  %s\n want %s",
				p, after[p].Describe(), before[p].Describe())
		}
	}
	v, err := f3.Getxattr("/d/file", "user.k")
	if err != nil || string(v) != "v" {
		t.Fatalf("xattr lost: %q %v", v, err)
	}
}
