// Package extdax models ext4-DAX and XFS-DAX: mature journaling file
// systems mounted in DAX mode, with the WEAK crash-consistency guarantees
// the paper contrasts against PM-native designs. All state lives in a
// volatile cache until an fsync/fdatasync/sync commits a journal
// transaction; a crash reverts the file system to its last committed
// transaction.
//
// The on-PM format is a logical redo journal: each commit appends one
// transaction holding the serialized nodes dirtied since the previous
// commit (plus deletions), sealed by a checksummed commit header. Recovery
// replays committed transactions in order. This compresses ext4's
// jbd2+checkpoint machinery into its crash-semantics essence: fsync-gated,
// transaction-atomic durability. Like the real systems — where most code is
// shared with the battle-tested non-DAX versions — it carries no injected
// bugs, and Chipmunk finds none (§4.4).
//
// Transactions carry an opaque tag so a layered file system (SplitFS) can
// record how much of its own operation log each kernel commit covers.
package extdax

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
)

const (
	// Magic identifies a formatted image (variant-specific).
	magicExt4 = 0x45585434 // "EXT4"
	magicXFS  = 0x58465344 // "XFSD"

	sbMagicOff = 0
	sbSizeOff  = 8
	// sbActiveOff holds the device offset of the active journal area (the
	// 8-byte atomic flip that makes compaction crash-consistent).
	sbActiveOff = 16
	// journalStart is where the first journal area begins. The journal is
	// ping-pong compacted between two halves of the remaining device: when
	// the active area fills, the whole tree is serialized as one snapshot
	// transaction at the start of the inactive area, the active pointer is
	// flipped atomically, and appending continues there — jbd2's
	// checkpoint-and-reclaim expressed at the logical level.
	journalStart = 64

	// Transaction framing.
	txMagic      = 0x54583442
	txHdrSize    = 32 // {magic u32, pad u32, txid u64, tag u64, bodyLen u64}
	txCommitSize = 16 // {commitMagic u32, csum u32, txid u64}
	commitMagic  = 0x434F4D54
	recNode      = 1
	recDelete    = 2
	maxNameLen   = vfs.MaxNameLen
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Variant selects the modelled system.
type Variant int

const (
	// Ext4 models ext4-DAX.
	Ext4 Variant = iota
	// XFS models XFS-DAX.
	XFS
)

// node is a volatile-tree node.
type node struct {
	ino      uint64
	typ      vfs.FileType
	nlink    uint32
	data     []byte
	children map[string]uint64 // directories
	xattrs   map[string]string
}

// FS is the ext4-DAX / XFS-DAX model.
type FS struct {
	pm      persist.Space
	variant Variant

	nodes   map[uint64]*node
	nextIno uint64
	fds     map[vfs.FD]uint64
	nextFD  vfs.FD

	dirty   map[uint64]bool // nodes dirtied since the last commit
	deleted map[uint64]bool

	txid    uint64
	jTail   int64 // device offset where the next transaction goes
	jBase   int64 // start of the active journal area
	jLimit  int64 // one past the end of the active journal area
	tag     uint64
	mounted bool
}

// areaBounds returns the [base, limit) bounds of journal area 0 or 1.
func (f *FS) areaBounds(area int) (int64, int64) {
	usable := f.pm.Size() - journalStart
	half := usable / 2
	if area == 0 {
		return journalStart, journalStart + half
	}
	return journalStart + half, f.pm.Size()
}

// New creates an instance over space.
func New(space persist.Space, variant Variant) *FS {
	return &FS{pm: space, variant: variant}
}

func (f *FS) magic() uint64 {
	if f.variant == XFS {
		return magicXFS
	}
	return magicExt4
}

// Caps implements vfs.FS: weak guarantees, fsync required.
func (f *FS) Caps() vfs.Caps {
	name := "ext4-dax"
	if f.variant == XFS {
		name = "xfs-dax"
	}
	return vfs.Caps{Name: name, Strong: false, AtomicWrite: false, SyncDataWrites: false}
}

// Mkfs implements vfs.FS.
func (f *FS) Mkfs() error {
	f.pm.MemsetNT(0, 0, int(min64(int64(64<<10), f.pm.Size())))
	f.pm.Fence()
	f.pm.Store64(sbMagicOff, f.magic())
	f.pm.Store64(sbSizeOff, uint64(f.pm.Size()))
	base, limit := f.areaBounds(0)
	f.pm.Store64(sbActiveOff, uint64(base))
	f.pm.Flush(0, 24)
	f.pm.Fence()

	f.nodes = map[uint64]*node{1: {ino: 1, typ: vfs.TypeDir, nlink: 2, children: map[string]uint64{}}}
	f.nextIno = 2
	f.fds = map[vfs.FD]uint64{}
	f.nextFD = 3
	f.dirty = map[uint64]bool{1: true}
	f.deleted = map[uint64]bool{}
	f.txid = 1
	f.jBase, f.jLimit = base, limit
	f.jTail = base
	f.mounted = true
	// Commit the empty root so a crash right after mkfs recovers cleanly.
	return f.commit()
}

// Unmount implements vfs.FS. Dirty (uncommitted) state is dropped, exactly
// like unplugging a weak file system without sync.
func (f *FS) Unmount() error {
	f.mounted = false
	f.fds = map[vfs.FD]uint64{}
	return nil
}

// Mount implements vfs.FS: replay all committed transactions.
func (f *FS) Mount() error {
	if f.pm.Load64(sbMagicOff) != f.magic() {
		return fmt.Errorf("%w: bad superblock magic", vfs.ErrCorrupt)
	}
	f.nodes = map[uint64]*node{}
	f.fds = map[vfs.FD]uint64{}
	f.nextFD = 3
	f.dirty = map[uint64]bool{}
	f.deleted = map[uint64]bool{}
	f.nextIno = 2
	f.tag = 0

	f.jBase = int64(f.pm.Load64(sbActiveOff))
	b0, l0 := f.areaBounds(0)
	b1, l1 := f.areaBounds(1)
	switch f.jBase {
	case b0:
		f.jLimit = l0
	case b1:
		f.jLimit = l1
	default:
		return fmt.Errorf("%w: active journal pointer %d", vfs.ErrCorrupt, f.jBase)
	}
	pos := f.jBase
	f.txid = 0 // the first tx of an area sets the expected sequence
	for {
		txid, tag, next, ok := f.replayTx(pos)
		if !ok {
			break
		}
		f.txid = txid + 1
		f.tag = tag
		pos = next
	}
	f.jTail = pos

	root := f.nodes[1]
	if root == nil || root.typ != vfs.TypeDir {
		return fmt.Errorf("%w: no committed root", vfs.ErrCorrupt)
	}
	for ino := range f.nodes {
		if ino >= f.nextIno {
			f.nextIno = ino + 1
		}
	}
	f.mounted = true
	return nil
}

// Tag returns the tag of the newest committed transaction (used by SplitFS
// to know how much of its op-log the kernel state covers).
func (f *FS) Tag() uint64 { return f.tag }

// commit appends one transaction holding all dirty state. No-op when clean.
func (f *FS) commit() error {
	return f.commitTagged(f.tag)
}

// CommitTagged commits dirty state, recording tag in the transaction
// header.
func (f *FS) CommitTagged(tag uint64) error { return f.commitTagged(tag) }

func (f *FS) commitTagged(tag uint64) error {
	if len(f.dirty) == 0 && len(f.deleted) == 0 && tag == f.tag {
		return nil
	}
	body := f.encodeBody()
	need := int64(txHdrSize + len(body) + txCommitSize)
	if f.jTail+need > f.jLimit {
		if err := f.compact(); err != nil {
			return err
		}
		if f.jTail+need > f.jLimit {
			return vfs.ErrNoSpace
		}
	}
	hdr := make([]byte, txHdrSize)
	binary.LittleEndian.PutUint32(hdr, txMagic)
	binary.LittleEndian.PutUint64(hdr[8:], f.txid)
	binary.LittleEndian.PutUint64(hdr[16:], tag)
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(body)))

	// jbd2-style: descriptor + data blocks first, fence, then the commit
	// record, fence.
	f.pm.Store(f.jTail, hdr)
	f.pm.Flush(f.jTail, len(hdr))
	if len(body) > 0 {
		f.pm.Store(f.jTail+txHdrSize, body)
		f.pm.Flush(f.jTail+txHdrSize, len(body))
	}
	f.pm.Fence()

	commit := make([]byte, txCommitSize)
	binary.LittleEndian.PutUint32(commit, commitMagic)
	binary.LittleEndian.PutUint32(commit[4:], crc32.Checksum(body, castagnoli))
	binary.LittleEndian.PutUint64(commit[8:], f.txid)
	f.pm.Store(f.jTail+txHdrSize+int64(len(body)), commit)
	f.pm.Flush(f.jTail+txHdrSize+int64(len(body)), txCommitSize)
	f.pm.Fence()

	f.jTail += need
	f.txid++
	f.tag = tag
	f.dirty = map[uint64]bool{}
	f.deleted = map[uint64]bool{}
	return nil
}

// compact checkpoints the whole tree into the inactive journal area as one
// snapshot transaction and atomically flips the active pointer. A crash
// before the flip leaves the old area authoritative; after it, the new one.
func (f *FS) compact() error {
	newBase, newLimit := f.areaBounds(0)
	if f.jBase == newBase {
		newBase, newLimit = f.areaBounds(1)
	}
	// Serialize everything as the snapshot body.
	allDirty := map[uint64]bool{}
	for ino := range f.nodes {
		allDirty[ino] = true
	}
	savedDirty, savedDeleted := f.dirty, f.deleted
	f.dirty, f.deleted = allDirty, map[uint64]bool{}
	body := f.encodeBody()
	f.dirty, f.deleted = savedDirty, savedDeleted

	need := int64(txHdrSize + len(body) + txCommitSize)
	if newBase+need > newLimit {
		return vfs.ErrNoSpace
	}
	snapID := f.txid
	hdr := make([]byte, txHdrSize)
	binary.LittleEndian.PutUint32(hdr, txMagic)
	binary.LittleEndian.PutUint64(hdr[8:], snapID)
	binary.LittleEndian.PutUint64(hdr[16:], f.tag)
	binary.LittleEndian.PutUint64(hdr[24:], uint64(len(body)))
	f.pm.Store(newBase, hdr)
	f.pm.Flush(newBase, len(hdr))
	if len(body) > 0 {
		f.pm.Store(newBase+txHdrSize, body)
		f.pm.Flush(newBase+txHdrSize, len(body))
	}
	f.pm.Fence()
	commit := make([]byte, txCommitSize)
	binary.LittleEndian.PutUint32(commit, commitMagic)
	binary.LittleEndian.PutUint32(commit[4:], crc32.Checksum(body, castagnoli))
	binary.LittleEndian.PutUint64(commit[8:], snapID)
	f.pm.Store(newBase+txHdrSize+int64(len(body)), commit)
	f.pm.Flush(newBase+txHdrSize+int64(len(body)), txCommitSize)
	f.pm.Fence()
	// The atomic flip.
	f.pm.PersistStore64(sbActiveOff, uint64(newBase))
	f.pm.Fence()

	f.jBase, f.jLimit = newBase, newLimit
	f.jTail = newBase + need
	f.txid = snapID + 1
	return nil
}

// encodeBody serializes the dirty and deleted nodes.
func (f *FS) encodeBody() []byte {
	var out []byte
	inos := make([]uint64, 0, len(f.dirty))
	for ino := range f.dirty {
		if f.deleted[ino] {
			continue
		}
		inos = append(inos, ino)
	}
	sort.Slice(inos, func(i, j int) bool { return inos[i] < inos[j] })
	for _, ino := range inos {
		n := f.nodes[ino]
		if n == nil {
			continue
		}
		out = append(out, recNode)
		out = appendU64(out, ino)
		out = append(out, byte(n.typ))
		out = appendU32(out, n.nlink)
		// Extended attributes.
		xnames := make([]string, 0, len(n.xattrs))
		for name := range n.xattrs {
			xnames = append(xnames, name)
		}
		sort.Strings(xnames)
		out = appendU32(out, uint32(len(xnames)))
		for _, name := range xnames {
			out = append(out, byte(len(name)))
			out = append(out, name...)
			val := n.xattrs[name]
			out = appendU32(out, uint32(len(val)))
			out = append(out, val...)
		}
		if n.typ == vfs.TypeRegular {
			out = appendU64(out, uint64(len(n.data)))
			out = append(out, n.data...)
		} else {
			names := make([]string, 0, len(n.children))
			for name := range n.children {
				names = append(names, name)
			}
			sort.Strings(names)
			out = appendU32(out, uint32(len(names)))
			for _, name := range names {
				out = append(out, byte(len(name)))
				out = append(out, name...)
				out = appendU64(out, n.children[name])
			}
		}
	}
	dels := make([]uint64, 0, len(f.deleted))
	for ino := range f.deleted {
		dels = append(dels, ino)
	}
	sort.Slice(dels, func(i, j int) bool { return dels[i] < dels[j] })
	for _, ino := range dels {
		out = append(out, recDelete)
		out = appendU64(out, ino)
	}
	return out
}

// replayTx validates and applies the transaction at pos. ok is false at the
// end of the committed log (bad magic, bad checksum, or truncation).
func (f *FS) replayTx(pos int64) (txid, tag uint64, next int64, ok bool) {
	if pos+txHdrSize > f.pm.Size() {
		return 0, 0, 0, false
	}
	hdr := f.pm.Load(pos, txHdrSize)
	if binary.LittleEndian.Uint32(hdr) != txMagic {
		return 0, 0, 0, false
	}
	txid = binary.LittleEndian.Uint64(hdr[8:])
	tag = binary.LittleEndian.Uint64(hdr[16:])
	bodyLen := int64(binary.LittleEndian.Uint64(hdr[24:]))
	if bodyLen < 0 || pos+txHdrSize+bodyLen+txCommitSize > f.pm.Size() {
		return 0, 0, 0, false
	}
	if f.txid != 0 && txid != f.txid {
		return 0, 0, 0, false
	}
	if f.txid == 0 && txid == 0 {
		return 0, 0, 0, false
	}
	body := f.pm.Load(pos+txHdrSize, int(bodyLen))
	commit := f.pm.Load(pos+txHdrSize+bodyLen, txCommitSize)
	if binary.LittleEndian.Uint32(commit) != commitMagic ||
		binary.LittleEndian.Uint64(commit[8:]) != txid ||
		binary.LittleEndian.Uint32(commit[4:]) != crc32.Checksum(body, castagnoli) {
		return 0, 0, 0, false
	}
	f.applyBody(body)
	return txid, tag, pos + txHdrSize + bodyLen + txCommitSize, true
}

func (f *FS) applyBody(body []byte) {
	for i := 0; i < len(body); {
		switch body[i] {
		case recNode:
			i++
			ino := binary.LittleEndian.Uint64(body[i:])
			i += 8
			typ := vfs.FileType(body[i])
			i++
			nlink := binary.LittleEndian.Uint32(body[i:])
			i += 4
			n := &node{ino: ino, typ: typ, nlink: nlink}
			xcnt := int(binary.LittleEndian.Uint32(body[i:]))
			i += 4
			if xcnt > 0 {
				n.xattrs = map[string]string{}
			}
			for x := 0; x < xcnt; x++ {
				nl := int(body[i])
				i++
				name := string(body[i : i+nl])
				i += nl
				vl := int(binary.LittleEndian.Uint32(body[i:]))
				i += 4
				n.xattrs[name] = string(body[i : i+vl])
				i += vl
			}
			if typ == vfs.TypeRegular {
				dataLen := int(binary.LittleEndian.Uint64(body[i:]))
				i += 8
				n.data = append([]byte(nil), body[i:i+dataLen]...)
				i += dataLen
			} else {
				n.children = map[string]uint64{}
				cnt := int(binary.LittleEndian.Uint32(body[i:]))
				i += 4
				for c := 0; c < cnt; c++ {
					nl := int(body[i])
					i++
					name := string(body[i : i+nl])
					i += nl
					n.children[name] = binary.LittleEndian.Uint64(body[i:])
					i += 8
				}
			}
			f.nodes[ino] = n
		case recDelete:
			i++
			ino := binary.LittleEndian.Uint64(body[i:])
			i += 8
			delete(f.nodes, ino)
		default:
			return
		}
	}
}

func appendU64(b []byte, v uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

var _ vfs.FS = (*FS)(nil)

// OpenFDs implements vfs.FDCounter.
func (f *FS) OpenFDs() int { return len(f.fds) }
