package pmfs

import (
	"chipmunk/internal/bugs"
	"chipmunk/internal/vfs"
)

// truncAdd records ino on the persistent truncate list before an operation
// that frees its blocks, so recovery can finish an interrupted reclamation.
func (f *FS) truncAdd(ino uint64) {
	base := int64(truncBlock) * BlockSize
	f.pm.Store64(base+truncEntsOff, ino)
	f.pm.Flush(base+truncEntsOff, 8)
	f.pm.Fence()
	f.pm.PersistStore64(base+truncCountOff, 1)
	f.pm.Fence()
}

// truncRemove clears the list once the reclamation completed.
func (f *FS) truncRemove() {
	f.pm.PersistStore64(int64(truncBlock)*BlockSize+truncCountOff, 0)
	f.pm.Fence()
}

// Mount implements vfs.FS: journal recovery, inode-table scan, DRAM
// allocator rebuild, truncate-list replay, orphan GC.
//
// Bug 13 reproduces PMFS's recovery-ordering flaw: the published code
// replayed the truncate list before the DRAM free list existed, and the
// replay's attempt to return blocks dereferenced a null pointer. We model
// the kernel oops as a mount failure.
func (f *FS) Mount() error {
	pm := f.pm
	if pm.Load64(sbMagicOff) != Magic {
		return corrupt("bad superblock magic %#x", pm.Load64(sbMagicOff))
	}
	f.totalBlocks = pm.Load64(sbBlocksOff)
	if f.totalBlocks == 0 || int64(f.totalBlocks)*BlockSize > pm.Size() {
		return corrupt("superblock block count %d exceeds device", f.totalBlocks)
	}

	if err := f.recoverJournal(); err != nil {
		return err
	}

	if f.has(bugs.PmfsTruncateListNull) {
		// Published ordering: replay the truncate list now. The DRAM free
		// list (f.alloc) has not been rebuilt yet; touching it is the null
		// dereference.
		count := pm.Load64(int64(truncBlock)*BlockSize + truncCountOff)
		if count > 0 {
			return corrupt("null pointer dereference: truncate-list replay before free-list rebuild (ino %d)",
				pm.Load64(int64(truncBlock)*BlockSize+truncEntsOff))
		}
	}

	f.alloc = newBlockAlloc(poolStart, f.totalBlocks)
	f.ialloc = make([]bool, InodeCount)
	f.ialloc[0] = true
	f.inodes = map[uint64]*dnode{}
	f.fds = map[vfs.FD]uint64{}
	f.nextFD = 3

	// Inode scan.
	for ino := uint64(1); ino < InodeCount; ino++ {
		img := pm.Load(inodeOff(ino), InodeSize)
		if le32(img[inoValidOff:]) != 1 {
			continue
		}
		d := &dnode{
			ino:   ino,
			typ:   vfs.FileType(le32(img[inoTypeOff:])),
			nlink: le64(img[inoNlinkOff:]),
			size:  int64(le64(img[inoSizeOff:])),
		}
		for i := 0; i < NDirect; i++ {
			d.blocks[i] = le64(img[inoBlocksOff+i*8:])
		}
		if d.typ == vfs.TypeDir {
			d.dirents = map[string]direntRef{}
		}
		f.ialloc[ino] = true
		f.inodes[ino] = d
	}
	root := f.inodes[RootIno]
	if root == nil || root.typ != vfs.TypeDir {
		return corrupt("root inode missing or not a directory")
	}

	// Claim blocks; double references are corruption.
	for _, d := range f.inodes {
		for i, b := range d.blocks {
			if b == 0 {
				continue
			}
			if b < poolStart || b >= f.totalBlocks {
				return corrupt("inode %d block[%d]=%d out of range", d.ino, i, b)
			}
			if !f.alloc.markUsed(b) {
				return corrupt("block %d referenced twice", b)
			}
		}
	}

	// Directory scan.
	for _, d := range f.inodes {
		if d.typ != vfs.TypeDir {
			continue
		}
		for _, b := range d.blocks {
			if b == 0 {
				continue
			}
			for s := 0; s < direntsPerBlock; s++ {
				off := blockOff(b) + int64(s)*DirentSize
				slot := pm.Load(off, DirentSize)
				ino := le64(slot[deInoOff:])
				if ino == 0 {
					continue
				}
				nameLen := int(slot[deNameLenOff])
				if ino >= InodeCount || nameLen == 0 || nameLen > DirentSize-deNameOff {
					return corrupt("bad dirent in block %d slot %d", b, s)
				}
				name := string(slot[deNameOff : deNameOff+nameLen])
				d.dirents[name] = direntRef{ino: ino, off: off}
			}
		}
	}

	// Truncate-list replay (fixed ordering: after the allocator rebuild).
	count := pm.Load64(int64(truncBlock)*BlockSize + truncCountOff)
	if count > truncMaxEnts {
		return corrupt("truncate-list count %d out of range", count)
	}
	if count > 0 {
		ino := pm.Load64(int64(truncBlock)*BlockSize + truncEntsOff)
		if d := f.inodes[ino]; d != nil {
			// Free blocks beyond the committed size and persist the
			// cleaned pointers — finishing the interrupted operation.
			firstDead := int((d.size + BlockSize - 1) / BlockSize)
			dirty := false
			for i := firstDead; i < NDirect; i++ {
				if d.blocks[i] != 0 {
					f.alloc.release(d.blocks[i])
					d.blocks[i] = 0
					dirty = true
				}
			}
			if dirty {
				f.persistInode(d)
				pm.Fence()
			}
		}
		f.truncRemove()
	}

	// Dangling dirents become bad placeholders; then orphan GC.
	referenced := map[uint64]bool{RootIno: true}
	for _, d := range f.inodes {
		if d.typ != vfs.TypeDir {
			continue
		}
		for _, ref := range d.dirents {
			referenced[ref.ino] = true
			if f.inodes[ref.ino] == nil {
				f.inodes[ref.ino] = &dnode{ino: ref.ino, typ: vfs.TypeRegular, bad: true}
			}
		}
	}
	reachable := map[uint64]bool{RootIno: true}
	f.markReachable(root, reachable)
	for ino, d := range f.inodes {
		if reachable[ino] || d.bad {
			continue
		}
		f.destroyInode(d)
	}
	for ino, d := range f.inodes {
		if d.bad && !reachable[ino] {
			delete(f.inodes, ino)
		}
	}

	f.mounted = true
	return nil
}

func (f *FS) markReachable(d *dnode, seen map[uint64]bool) {
	if d.typ != vfs.TypeDir || d.bad {
		return
	}
	for _, ref := range d.dirents {
		if seen[ref.ino] {
			continue
		}
		seen[ref.ino] = true
		if c := f.inodes[ref.ino]; c != nil {
			f.markReachable(c, seen)
		}
	}
}
