package pmfs

import (
	"chipmunk/internal/bugs"
	"chipmunk/internal/vfs"
)

// Pwrite implements vfs.FS.
//
// PMFS writes file data in place with non-temporal stores, so a crash can
// tear a write (data writes are not atomic — Caps.AtomicWrite is false).
// Metadata (new block pointers, the size) commits first via the journal;
// data is then streamed and fenced.
//
// Bug 14&15: the final extent's data is not fenced before returning, so the
// write is not synchronous. Bug 17&18: the non-temporal copy helper's fast
// path fences the 8-byte-aligned body but not the sub-word tail of
// unaligned writes.
func (f *FS) Pwrite(fd vfs.FD, data []byte, off int64) (int, error) {
	d, err := f.fdInode(fd)
	if err != nil {
		return 0, err
	}
	if d.bad {
		return 0, vfs.ErrIO
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if len(data) == 0 {
		return 0, nil
	}
	end := off + int64(len(data))
	if end > MaxFileSize {
		return 0, vfs.ErrNoSpace
	}

	// Phase 1: allocate missing blocks and commit metadata.
	firstBlk := int(off / BlockSize)
	lastBlk := int((end - 1) / BlockSize)
	metaDirty := false
	var fresh []uint64
	for i := firstBlk; i <= lastBlk; i++ {
		if d.blocks[i] != 0 {
			continue
		}
		nb, err := f.alloc.alloc()
		if err != nil {
			for _, b := range fresh {
				f.alloc.release(b)
			}
			return 0, err
		}
		f.pm.MemsetNT(blockOff(nb), 0, BlockSize)
		d.blocks[i] = nb
		fresh = append(fresh, nb)
		metaDirty = true
	}
	if len(fresh) > 0 {
		f.pm.Fence()
	}
	if end > d.size {
		d.size = end
		metaDirty = true
	}
	if metaDirty {
		t := f.beginTx()
		t.setInode(d)
		t.commit()
	}

	// Phase 2: stream the data in place.
	for i := firstBlk; i <= lastBlk; i++ {
		blkStart := int64(i) * BlockSize
		from := max64(off, blkStart)
		to := min64(end, blkStart+BlockSize)
		chunk := data[from-off : to-off]
		dst := blockOff(d.blocks[i]) + (from - blkStart)
		last := i == lastBlk

		switch {
		case last && f.has(bugs.NTTailNotFenced) && len(chunk)%8 != 0:
			// Fast-path copy: fence the aligned body, forget the tail.
			body := len(chunk) &^ 7
			if body > 0 {
				f.pm.MemcpyNT(dst, chunk[:body])
			}
			f.pm.Fence()
			f.pm.MemcpyNT(dst+int64(body), chunk[body:])
			// Missing fence: the sub-word tail stays in flight.
		case last && f.has(bugs.WriteNotSync):
			// Missing fence on the final extent: write not synchronous.
			f.pm.MemcpyNT(dst, chunk)
		default:
			f.pm.MemcpyNT(dst, chunk)
			if last {
				f.pm.Fence()
			}
		}
	}
	return len(data), nil
}

// Pread implements vfs.FS.
func (f *FS) Pread(fd vfs.FD, buf []byte, off int64) (int, error) {
	d, err := f.fdInode(fd)
	if err != nil {
		return 0, err
	}
	if d.bad {
		return 0, vfs.ErrIO
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if off >= d.size {
		return 0, nil
	}
	n := int64(len(buf))
	if off+n > d.size {
		n = d.size - off
	}
	for pos := off; pos < off+n; {
		i := int(pos / BlockSize)
		blkStart := int64(i) * BlockSize
		chunk := min64(blkStart+BlockSize, off+n) - pos
		if b := d.blocks[i]; b != 0 {
			f.pm.LoadInto(blockOff(b)+(pos-blkStart), buf[pos-off:pos-off+chunk])
		} else {
			for j := pos - off; j < pos-off+chunk; j++ {
				buf[j] = 0
			}
		}
		pos += chunk
	}
	return int(n), nil
}

// Truncate implements vfs.FS. Shrinks are protected by the truncate list:
// the inode is recorded before the new size commits, so recovery can finish
// freeing blocks beyond the committed size.
func (f *FS) Truncate(path string, size int64) error {
	if size < 0 {
		return vfs.ErrInvalid
	}
	if size > MaxFileSize {
		return vfs.ErrNoSpace
	}
	d, err := f.lookup(path)
	if err != nil {
		return err
	}
	if d.bad {
		return vfs.ErrIO
	}
	if d.typ == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	if size == d.size {
		return nil
	}

	if size > d.size {
		d.size = size
		t := f.beginTx()
		t.setInode(d)
		t.commit()
		return nil
	}

	// Shrink: list first, then commit the size, then reclaim.
	f.truncAdd(d.ino)
	oldBlocks := d.blocks
	firstDead := int((size + BlockSize - 1) / BlockSize)
	for i := firstDead; i < NDirect; i++ {
		d.blocks[i] = 0
	}
	d.size = size
	t := f.beginTx()
	t.setInode(d)
	t.commit()

	// Zero the tail remainder so a later extension reads zeros (beyond the
	// committed size, hence crash-invisible).
	if rem := size % BlockSize; rem != 0 && d.blocks[size/BlockSize] != 0 {
		b := d.blocks[size/BlockSize]
		f.pm.MemsetNT(blockOff(b)+rem, 0, int(BlockSize-rem))
		f.pm.Fence()
	}
	for i := firstDead; i < NDirect; i++ {
		if oldBlocks[i] != 0 {
			f.alloc.release(oldBlocks[i])
		}
	}
	f.truncRemove()
	return nil
}

// Fallocate implements vfs.FS: allocate blocks and extend the size.
func (f *FS) Fallocate(fd vfs.FD, off, length int64) error {
	d, err := f.fdInode(fd)
	if err != nil {
		return err
	}
	if d.bad {
		return vfs.ErrIO
	}
	if off < 0 || length <= 0 {
		return vfs.ErrInvalid
	}
	end := off + length
	if end > MaxFileSize {
		return vfs.ErrNoSpace
	}
	metaDirty := false
	var fresh []uint64
	for i := int(off / BlockSize); i <= int((end-1)/BlockSize); i++ {
		if d.blocks[i] != 0 {
			continue
		}
		nb, err := f.alloc.alloc()
		if err != nil {
			for _, b := range fresh {
				f.alloc.release(b)
			}
			return err
		}
		f.pm.MemsetNT(blockOff(nb), 0, BlockSize)
		d.blocks[i] = nb
		fresh = append(fresh, nb)
		metaDirty = true
	}
	if len(fresh) > 0 {
		f.pm.Fence()
	}
	if end > d.size {
		d.size = end
		metaDirty = true
	}
	if metaDirty {
		t := f.beginTx()
		t.setInode(d)
		t.commit()
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
