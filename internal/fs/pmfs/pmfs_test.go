package pmfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"chipmunk/internal/bugs"
	"chipmunk/internal/fs/memfs"
	"chipmunk/internal/persist"
	"chipmunk/internal/pmem"
	"chipmunk/internal/vfs"
)

const testDevSize = 4 << 20

func newPmfs(t *testing.T, set bugs.Set) (*FS, *pmem.Device) {
	t.Helper()
	dev := pmem.NewDevice(testDevSize)
	f := New(persist.New(dev), set)
	if err := f.Mkfs(); err != nil {
		t.Fatal(err)
	}
	return f, dev
}

func readFile(t *testing.T, f vfs.FS, path string) []byte {
	t.Helper()
	st, err := f.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	fd, err := f.Open(path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	defer f.Close(fd)
	buf := make([]byte, st.Size)
	n, err := f.Pread(fd, buf, 0)
	if err != nil {
		t.Fatalf("pread %s: %v", path, err)
	}
	return buf[:n]
}

func TestBasicOps(t *testing.T) {
	f, _ := newPmfs(t, bugs.None())
	fd, err := f.Create("/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Pwrite(fd, []byte("pmfs data"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close(fd)
	if got := readFile(t, f, "/a"); string(got) != "pmfs data" {
		t.Fatalf("read = %q", got)
	}
	if err := f.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rename("/a", "/d/b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Link("/d/b", "/l"); err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat("/l")
	if st.Nlink != 2 {
		t.Fatalf("nlink = %d", st.Nlink)
	}
	if err := f.Unlink("/l"); err != nil {
		t.Fatal(err)
	}
	if err := f.Unlink("/d/b"); err != nil {
		t.Fatal(err)
	}
	if err := f.Rmdir("/d"); err != nil {
		t.Fatal(err)
	}
	ents, _ := f.ReadDir("/")
	if len(ents) != 0 {
		t.Fatalf("leftover entries: %v", ents)
	}
}

func TestWriteInPlaceOverwrite(t *testing.T) {
	f, _ := newPmfs(t, bugs.None())
	fd, _ := f.Create("/a")
	f.Pwrite(fd, bytes.Repeat([]byte("A"), 5000), 0)
	f.Pwrite(fd, []byte("BBB"), 4998) // crosses block boundary
	got := readFile(t, f, "/a")
	if got[4997] != 'A' || got[4998] != 'B' || got[5000] != 'B' {
		t.Fatalf("overwrite wrong: %q", got[4995:])
	}
	st, _ := f.Stat("/a")
	if st.Size != 5001 {
		t.Fatalf("size = %d", st.Size)
	}
}

func TestTruncateAndExtend(t *testing.T) {
	f, _ := newPmfs(t, bugs.None())
	fd, _ := f.Create("/a")
	data := bytes.Repeat([]byte{7}, 9000)
	f.Pwrite(fd, data, 0)
	if err := f.Truncate("/a", 4500); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate("/a", 8000); err != nil {
		t.Fatal(err)
	}
	got := readFile(t, f, "/a")
	if len(got) != 8000 {
		t.Fatalf("size = %d", len(got))
	}
	for i := 0; i < 4500; i++ {
		if got[i] != 7 {
			t.Fatalf("prefix lost at %d", i)
		}
	}
	for i := 4500; i < 8000; i++ {
		if got[i] != 0 {
			t.Fatalf("stale data at %d: %d", i, got[i])
		}
	}
}

func TestMaxFileSize(t *testing.T) {
	f, _ := newPmfs(t, bugs.None())
	fd, _ := f.Create("/a")
	if _, err := f.Pwrite(fd, []byte("x"), MaxFileSize); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("write beyond max: %v", err)
	}
	if err := f.Fallocate(fd, MaxFileSize-10, 20); !errors.Is(err, vfs.ErrNoSpace) {
		t.Fatalf("falloc beyond max: %v", err)
	}
}

func TestRemountPreservesState(t *testing.T) {
	f, dev := newPmfs(t, bugs.None())
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("durable"), 0)
	f.Close(fd)
	f.Mkdir("/d")
	f.Create("/d/x")
	f.Unmount()

	f2 := New(persist.New(dev), bugs.None())
	if err := f2.Mount(); err != nil {
		t.Fatalf("remount: %v", err)
	}
	if got := readFile(t, f2, "/a"); string(got) != "durable" {
		t.Fatalf("data = %q", got)
	}
	if _, err := f2.Stat("/d/x"); err != nil {
		t.Fatal(err)
	}
}

func TestJournalWrapAcrossManyOps(t *testing.T) {
	// Enough transactions to wrap the deliberately small journal several
	// times, then verify a clean remount (fixed mode must handle wrapped
	// records).
	f, dev := newPmfs(t, bugs.None())
	names := []string{"/a", "/b", "/c", "/d", "/e"}
	for round := 0; round < 6; round++ {
		for _, n := range names {
			if _, err := f.Create(n); err != nil {
				t.Fatal(err)
			}
		}
		for _, n := range names {
			if err := f.Unlink(n); err != nil {
				t.Fatal(err)
			}
		}
	}
	f.Create("/final")
	f.Unmount()
	f2 := New(persist.New(dev), bugs.None())
	if err := f2.Mount(); err != nil {
		t.Fatalf("remount after wrap: %v", err)
	}
	if _, err := f2.Stat("/final"); err != nil {
		t.Fatal(err)
	}
	ents, _ := f2.ReadDir("/")
	if len(ents) != 1 {
		t.Fatalf("entries = %v", ents)
	}
}

func TestCrashImageSynchrony(t *testing.T) {
	f, dev := newPmfs(t, bugs.None())
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("sync write"), 0)
	f.Close(fd)
	f.Rename("/a", "/b")

	img := dev.CrashImage()
	f2 := New(persist.New(pmem.FromImage(img)), bugs.None())
	if err := f2.Mount(); err != nil {
		t.Fatalf("mount crash image: %v", err)
	}
	if got := readFile(t, f2, "/b"); string(got) != "sync write" {
		t.Fatalf("data = %q", got)
	}
}

func TestBug14WriteNotSynchronous(t *testing.T) {
	// With bug 14 the final extent is never fenced: the crash image right
	// after the write must be missing the data.
	f, dev := newPmfs(t, bugs.Of(bugs.WriteNotSync))
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("lostlost"), 0) // 8-aligned so bug 17 isn't implicated
	img := pmem.FromImage(dev.CrashImage())
	f2 := New(persist.New(img), bugs.None())
	if err := f2.Mount(); err != nil {
		t.Fatalf("mount: %v", err)
	}
	got := readFile(t, f2, "/a")
	if bytes.Equal(got, []byte("lostlost")) {
		t.Fatal("bug 14: data survived a crash without a fence")
	}
}

func TestBug17UnalignedTailLost(t *testing.T) {
	f, dev := newPmfs(t, bugs.Of(bugs.NTTailNotFenced))
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("0123456789ABC"), 0) // 13 bytes: unaligned tail
	img := pmem.FromImage(dev.CrashImage())
	f2 := New(persist.New(img), bugs.None())
	if err := f2.Mount(); err != nil {
		t.Fatalf("mount: %v", err)
	}
	got := readFile(t, f2, "/a")
	if bytes.Equal(got, []byte("0123456789ABC")) {
		t.Fatal("bug 17: unaligned tail survived without its fence")
	}
	if !bytes.Equal(got[:8], []byte("01234567")) {
		t.Fatalf("bug 17: aligned body should survive, got %q", got)
	}
}

func TestBug17AlignedWritesUnaffected(t *testing.T) {
	f, dev := newPmfs(t, bugs.Of(bugs.NTTailNotFenced))
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("16-byte-aligned!"), 0)
	img := pmem.FromImage(dev.CrashImage())
	f2 := New(persist.New(img), bugs.None())
	if err := f2.Mount(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, f2, "/a"); !bytes.Equal(got, []byte("16-byte-aligned!")) {
		t.Fatalf("aligned write affected by bug 17: %q", got)
	}
}

func TestBug13MountFailsWithPendingTruncate(t *testing.T) {
	// Craft a crash image where the truncate list is non-empty: snapshot
	// mid-unlink by copying the device just after truncAdd. We approximate
	// by calling truncAdd directly.
	f, dev := newPmfs(t, bugs.Of(bugs.PmfsTruncateListNull))
	fd, _ := f.Create("/a")
	f.Pwrite(fd, []byte("x"), 0)
	f.Close(fd)
	f.truncAdd(2)
	img := pmem.FromImage(dev.CrashImage())
	f2 := New(persist.New(img), bugs.Of(bugs.PmfsTruncateListNull))
	if err := f2.Mount(); !errors.Is(err, vfs.ErrCorrupt) {
		t.Fatalf("buggy mount with pending truncate: %v", err)
	}
	// Fixed code mounts the same image fine.
	f3 := New(persist.New(pmem.FromImage(img.CrashImage())), bugs.None())
	if err := f3.Mount(); err != nil {
		t.Fatalf("fixed mount: %v", err)
	}
}

func TestPropertyDifferentialVsMemfs(t *testing.T) {
	paths := []string{"/f0", "/f1", "/d0/f2", "/d0", "/d1"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dev := pmem.NewDevice(testDevSize)
		pf := New(persist.New(dev), bugs.None())
		if err := pf.Mkfs(); err != nil {
			t.Fatal(err)
		}
		ref := memfs.New()
		ref.Mkfs()

		for i := 0; i < 30; i++ {
			kind := rng.Intn(9)
			a := paths[rng.Intn(len(paths))]
			b := paths[rng.Intn(len(paths))]
			off := rng.Int63n(5000)
			n := rng.Intn(3000) + 1
			seed2 := rng.Int63()
			e1 := applyOp(pf, kind, a, b, off, n, seed2)
			e2 := applyOp(ref, kind, a, b, off, n, seed2)
			if (e1 == nil) != (e2 == nil) {
				t.Logf("seed %d op %d(%s,%s): pmfs=%v ref=%v", seed, kind, a, b, e1, e2)
				return false
			}
		}
		s1, err1 := vfs.Capture(pf)
		s2, err2 := vfs.Capture(ref)
		if err1 != nil || err2 != nil {
			t.Logf("capture: %v %v", err1, err2)
			return false
		}
		if d := vfs.Diff(s1, s2); d != "" {
			t.Logf("seed %d diff: %s", seed, d)
			return false
		}
		pf.Unmount()
		pf2 := New(persist.New(dev), bugs.None())
		if err := pf2.Mount(); err != nil {
			t.Logf("seed %d remount: %v", seed, err)
			return false
		}
		s3, err := vfs.Capture(pf2)
		if err != nil {
			t.Logf("capture3: %v", err)
			return false
		}
		if d := vfs.Diff(s3, s2); d != "" {
			t.Logf("seed %d remount diff: %s", seed, d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func applyOp(f vfs.FS, kind int, a, b string, off int64, n int, seed int64) error {
	switch kind {
	case 0:
		fd, err := f.Create(a)
		if err != nil {
			return err
		}
		return f.Close(fd)
	case 1:
		return f.Mkdir(a)
	case 2:
		fd, err := f.Open(a)
		if err != nil {
			return err
		}
		defer f.Close(fd)
		buf := make([]byte, n)
		rand.New(rand.NewSource(seed)).Read(buf)
		_, err = f.Pwrite(fd, buf, off)
		return err
	case 3:
		return f.Unlink(a)
	case 4:
		return f.Rmdir(a)
	case 5:
		return f.Rename(a, b)
	case 6:
		return f.Link(a, b)
	case 7:
		return f.Truncate(a, off)
	case 8:
		fd, err := f.Open(a)
		if err != nil {
			return err
		}
		defer f.Close(fd)
		return f.Fallocate(fd, off, int64(n))
	}
	return nil
}

func TestNoSpaceExhaustion(t *testing.T) {
	// A tiny device runs out of blocks gracefully.
	dev := pmem.NewDevice((poolStart + 8) * BlockSize)
	f := New(persist.New(dev), bugs.None())
	if err := f.Mkfs(); err != nil {
		t.Fatal(err)
	}
	fd, _ := f.Create("/a")
	var lastErr error
	for i := 0; i < 10; i++ {
		_, lastErr = f.Pwrite(fd, make([]byte, BlockSize), int64(i)*BlockSize)
		if lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, vfs.ErrNoSpace) {
		t.Fatalf("expected ENOSPC, got %v", lastErr)
	}
}
