package pmfs

import "chipmunk/internal/bugs"

// PMFS's journal is a small circular redo log. Records carry byte-range
// writes; the persistent head and tail words delimit the committed region.
// The tail advance is the commit point (records are fenced before it), and
// the head is advanced lazily in batches, so recovery normally re-applies a
// window of recent transactions — redo is idempotent and ordered, so this
// is safe.
//
// Records wrap byte-wise around the record area. Bug 16 lives in the
// recovery walk: the published code read wrapped records linearly, running
// off the end of the journal area into unrelated memory.
const (
	jHeadOff   = 0 // u64: region offset of the oldest un-reclaimed record
	jTailOff   = 8 // u64: region offset one past the last committed record
	jRecsStart = 16
	// jAreaSize is deliberately small so the wrap path is exercised by
	// short workloads (real PMFS journals wrap too, just over longer runs).
	jAreaSize   = 1024
	jRecDataMax = 128
	// jReclaimThreshold: advance head once the log is this full.
	jReclaimThreshold = (jAreaSize - jRecsStart) * 3 / 4
)

type jrec struct {
	off  int64
	data []byte
}

type txn struct {
	fs   *FS
	recs []jrec
}

func (f *FS) beginTx() *txn { return &txn{fs: f} }

func (t *txn) set(off int64, data []byte) {
	if len(data) > jRecDataMax {
		panic("pmfs: journal record too large")
	}
	t.recs = append(t.recs, jrec{off, append([]byte(nil), data...)})
}

// setInode records d's full inode image.
func (t *txn) setInode(d *dnode) {
	t.set(inodeOff(d.ino), t.fs.inodeImage(d))
}

func pad8(n int) int { return (n + 7) &^ 7 }

// regionByte maps a region offset (possibly needing wrap) to a device
// offset.
func regionByte(pos int64) int64 {
	wrapped := jRecsStart + (pos-jRecsStart)%(jAreaSize-jRecsStart)
	return int64(journalBlock)*BlockSize + wrapped
}

// storeWrapped writes data at region offset pos, wrapping byte-wise.
func (f *FS) storeWrapped(pos int64, data []byte) {
	for i := 0; i < len(data); {
		dev := regionByte(pos + int64(i))
		// Contiguous run until the area end.
		room := int(int64(journalBlock)*BlockSize + jAreaSize - dev)
		n := len(data) - i
		if n > room {
			n = room
		}
		f.pm.Store(dev, data[i:i+n])
		f.pm.Flush(dev, n)
		i += n
	}
}

// loadWrapped reads n bytes at region offset pos with wrap handling.
func (f *FS) loadWrapped(pos int64, n int) []byte {
	out := make([]byte, 0, n)
	for len(out) < n {
		dev := regionByte(pos + int64(len(out)))
		room := int(int64(journalBlock)*BlockSize + jAreaSize - dev)
		take := n - len(out)
		if take > room {
			take = room
		}
		out = append(out, f.pm.Load(dev, take)...)
	}
	return out
}

// commit appends the records, advances the tail (the commit point), applies
// the records in place, and occasionally reclaims the log.
func (t *txn) commit() {
	fs := t.fs
	base := int64(journalBlock) * BlockSize
	// Reclaim eagerly if this transaction would overrun un-reclaimed
	// records: everything up to the current tail is already applied.
	need := int64(0)
	for _, r := range t.recs {
		need += 16 + int64(pad8(len(r.data)))
	}
	head := int64(fs.pm.Load64(base + jHeadOff))
	if fs.jTail+need-head > int64(jAreaSize-jRecsStart) {
		fs.pm.PersistStore64(base+jHeadOff, uint64(fs.jTail))
		fs.pm.Fence()
	}
	pos := fs.jTail
	for _, r := range t.recs {
		hdr := make([]byte, 16)
		put64(hdr, uint64(r.off))
		put64(hdr[8:], uint64(len(r.data)))
		fs.storeWrapped(pos, hdr)
		padded := make([]byte, pad8(len(r.data)))
		copy(padded, r.data)
		fs.storeWrapped(pos+16, padded)
		pos += 16 + int64(len(padded))
	}
	fs.pm.Fence()
	// Commit point: publish the new tail.
	fs.jTail = pos
	fs.pm.PersistStore64(base+jTailOff, uint64(pos))
	fs.pm.Fence()
	// Apply in place.
	for _, r := range t.recs {
		fs.pm.Store(r.off, r.data)
		fs.pm.Flush(r.off, len(r.data))
	}
	fs.pm.Fence()
	// Lazy reclamation: advance the head in batches.
	head = int64(fs.pm.Load64(base + jHeadOff))
	if pos-head >= int64(jReclaimThreshold) {
		fs.pm.PersistStore64(base+jHeadOff, uint64(pos))
		fs.pm.Fence()
	}
}

// recoverJournal re-applies the committed record window [head, tail).
// Fixed code walks records wrap-aware; the published code (bug 16) read
// them linearly and walked out of the journal area.
func (f *FS) recoverJournal() error {
	base := int64(journalBlock) * BlockSize
	head := int64(f.pm.Load64(base + jHeadOff))
	tail := int64(f.pm.Load64(base + jTailOff))
	if head < jRecsStart || tail < head {
		return corrupt("journal pointers head=%d tail=%d", head, tail)
	}
	f.jTail = tail
	oob := f.has(bugs.PmfsJournalOOB)
	for pos := head; pos < tail; {
		if oob {
			// The published walk reads the record linearly from its start
			// offset. A record that wraps the circular boundary is read
			// past the end of the journal area — an out-of-bounds access.
			dev := regionByte(pos)
			if dev+16 > base+jAreaSize {
				return corrupt("out-of-bounds journal read at device offset %d", dev+16)
			}
			recLen := int64(f.pm.Load64(dev + 8))
			if recLen > jRecDataMax {
				return corrupt("out-of-bounds journal record length %d at %d", recLen, dev)
			}
			if dev+16+int64(pad8(int(recLen))) > base+jAreaSize {
				return corrupt("out-of-bounds journal read: record at %d runs past area end", dev)
			}
			target := int64(f.pm.Load64(dev))
			data := f.pm.Load(dev+16, int(recLen))
			if target < 0 || target+recLen > f.pm.Size() {
				return corrupt("journal replay targets invalid offset %d", target)
			}
			f.pm.Store(target, data)
			f.pm.Flush(target, int(recLen))
			pos += 16 + int64(pad8(int(recLen)))
			continue
		}
		hdr := f.loadWrapped(pos, 16)
		target := int64(le64(hdr))
		recLen := int(le64(hdr[8:]))
		if recLen > jRecDataMax {
			return corrupt("journal record length %d out of range", recLen)
		}
		if target < 0 || target+int64(recLen) > f.pm.Size() {
			return corrupt("journal replay targets invalid offset %d", target)
		}
		data := f.loadWrapped(pos+16, recLen)
		f.pm.Store(target, data)
		f.pm.Flush(target, recLen)
		pos += 16 + int64(pad8(recLen))
	}
	f.pm.Fence()
	return nil
}
