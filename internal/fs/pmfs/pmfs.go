// Package pmfs implements a PMFS-like PM file system [Dulloor et al.,
// EuroSys '14]: in-place metadata updates protected by a small journal,
// direct block pointers in the inode, directory entries stored in directory
// data blocks, a persistent truncate list for crash-safe block reclamation,
// and a DRAM-only free-block list rebuilt at mount.
//
// Unlike NOVA, PMFS writes file data in place, so data writes are not
// crash-atomic (Caps.AtomicWrite = false). Metadata operations are
// synchronous and atomic through the journal.
//
// Injected bugs (Table 1): 13 (truncate-list replay before the allocator is
// rebuilt), 14&15 (final write extent not flushed), 16 (journal replay
// walks out of bounds), 17&18 (non-temporal tail of unaligned writes not
// fenced).
package pmfs

import (
	"fmt"

	"chipmunk/internal/bugs"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
)

const (
	// BlockSize is the allocation unit.
	BlockSize = 4096
	// InodeSize is the on-PM inode footprint.
	InodeSize = 128
	// Magic identifies a formatted PMFS image.
	Magic = 0x504D4653 // "PMFS"
	// NDirect is the number of direct block pointers per inode.
	NDirect = 12
	// MaxFileSize is NDirect blocks.
	MaxFileSize = NDirect * BlockSize

	// Block layout.
	sbBlock        = 0
	journalBlock   = 1
	truncBlock     = 2
	inodeTblBlock  = 3
	inodeTblBlocks = 8
	poolStart      = inodeTblBlock + inodeTblBlocks

	// InodeCount is the number of inode slots.
	InodeCount = inodeTblBlocks * (BlockSize / InodeSize)
	// RootIno is the root directory inode.
	RootIno = 1

	// Superblock offsets.
	sbMagicOff  = 0
	sbBlocksOff = 8

	// Inode field offsets.
	inoValidOff  = 0  // u32
	inoTypeOff   = 4  // u32
	inoNlinkOff  = 8  // u64
	inoSizeOff   = 16 // u64
	inoBlocksOff = 24 // NDirect u64 block pointers (0 = hole)

	// Directory entry slots inside directory data blocks.
	DirentSize      = 64
	deInoOff        = 0 // u64 (0 = free slot)
	deNameLenOff    = 8 // u8
	deNameOff       = 9 // up to 55 bytes
	direntsPerBlock = BlockSize / DirentSize

	// Truncate list block: count u64 at 0, then {ino u64, size u64} pairs.
	truncCountOff = 0
	truncEntsOff  = 8
	truncMaxEnts  = (BlockSize - truncEntsOff) / 16
)

// dnode caches an inode in DRAM.
type dnode struct {
	ino    uint64
	typ    vfs.FileType
	nlink  uint64
	size   int64
	blocks [NDirect]uint64

	dirents map[string]direntRef // directories
	bad     bool
}

// direntRef locates a directory entry slot on PM.
type direntRef struct {
	ino uint64
	off int64 // device offset of the 64-byte slot
}

// FS is the PMFS instance.
type FS struct {
	pm   *persist.PM
	bugs bugs.Set

	totalBlocks uint64
	alloc       *blockAlloc
	ialloc      []bool
	inodes      map[uint64]*dnode
	fds         map[vfs.FD]uint64
	nextFD      vfs.FD
	mounted     bool

	jTail int64 // next free byte in the journal record area (DRAM mirror)
}

// New creates a PMFS instance on pm with the given injected bug set.
func New(pm *persist.PM, set bugs.Set) *FS {
	return &FS{pm: pm, bugs: set}
}

// Caps implements vfs.FS.
func (f *FS) Caps() vfs.Caps {
	return vfs.Caps{Name: "pmfs", Strong: true, AtomicWrite: false, SyncDataWrites: true}
}

func (f *FS) has(id bugs.ID) bool { return f.bugs.Has(id) }

func corrupt(format string, args ...interface{}) error {
	return fmt.Errorf("%w: "+format, append([]interface{}{vfs.ErrCorrupt}, args...)...)
}

func inodeOff(ino uint64) int64 {
	return int64(inodeTblBlock)*BlockSize + int64(ino)*InodeSize
}

func blockOff(b uint64) int64 { return int64(b) * BlockSize }

// Mkfs implements vfs.FS.
func (f *FS) Mkfs() error {
	f.totalBlocks = uint64(f.pm.Size()) / BlockSize
	if f.totalBlocks < poolStart+8 {
		return vfs.ErrNoSpace
	}
	pm := f.pm
	pm.MemsetNT(0, 0, poolStart*BlockSize)
	pm.Fence()

	f.alloc = newBlockAlloc(poolStart, f.totalBlocks)
	f.ialloc = make([]bool, InodeCount)
	f.ialloc[0], f.ialloc[RootIno] = true, true
	f.inodes = map[uint64]*dnode{}
	f.fds = map[vfs.FD]uint64{}
	f.nextFD = 3
	f.jTail = jRecsStart

	// Journal pointers start at the record region.
	pm.Store64(int64(journalBlock)*BlockSize+jHeadOff, jRecsStart)
	pm.Store64(int64(journalBlock)*BlockSize+jTailOff, jRecsStart)
	pm.Flush(int64(journalBlock)*BlockSize, 16)
	pm.Fence()

	root := &dnode{ino: RootIno, typ: vfs.TypeDir, nlink: 2, dirents: map[string]direntRef{}}
	f.persistInode(root)
	pm.Fence()
	f.inodes[RootIno] = root

	pm.Store64(sbMagicOff, Magic)
	pm.Store64(sbBlocksOff, f.totalBlocks)
	pm.Flush(0, 16)
	pm.Fence()
	f.mounted = true
	return nil
}

// persistInode writes d's full on-PM inode image (flushed, not fenced).
func (f *FS) persistInode(d *dnode) {
	buf := f.inodeImage(d)
	f.pm.Store(inodeOff(d.ino), buf)
	f.pm.Flush(inodeOff(d.ino), InodeSize)
}

func (f *FS) inodeImage(d *dnode) []byte {
	buf := make([]byte, InodeSize)
	put32(buf[inoValidOff:], 1)
	put32(buf[inoTypeOff:], uint32(d.typ))
	put64(buf[inoNlinkOff:], d.nlink)
	put64(buf[inoSizeOff:], uint64(d.size))
	for i, b := range d.blocks {
		put64(buf[inoBlocksOff+i*8:], b)
	}
	return buf
}

// Unmount implements vfs.FS.
func (f *FS) Unmount() error {
	f.mounted = false
	f.fds = map[vfs.FD]uint64{}
	f.inodes = nil
	f.alloc = nil
	return nil
}

// lookup resolves an absolute path.
func (f *FS) lookup(path string) (*dnode, error) {
	d := f.inodes[RootIno]
	if d == nil {
		return nil, vfs.ErrCorrupt
	}
	for _, c := range vfs.Components(path) {
		if d.bad {
			return nil, vfs.ErrIO
		}
		if d.typ != vfs.TypeDir {
			return nil, vfs.ErrNotDir
		}
		ref, ok := d.dirents[c]
		if !ok {
			return nil, vfs.ErrNotExist
		}
		d = f.inodes[ref.ino]
		if d == nil {
			return nil, vfs.ErrIO
		}
	}
	return d, nil
}

func (f *FS) lookupParent(path string) (*dnode, string, error) {
	dir, name := vfs.SplitPath(path)
	if name == "" {
		return nil, "", vfs.ErrInvalid
	}
	if !vfs.ValidName(name) {
		return nil, "", vfs.ErrNameTooLong
	}
	p, err := f.lookup(dir)
	if err != nil {
		return nil, "", err
	}
	if p.typ != vfs.TypeDir {
		return nil, "", vfs.ErrNotDir
	}
	if p.bad {
		return nil, "", vfs.ErrIO
	}
	return p, name, nil
}

// Stat implements vfs.FS.
func (f *FS) Stat(path string) (vfs.Stat, error) {
	d, err := f.lookup(path)
	if err != nil {
		return vfs.Stat{}, err
	}
	if d.bad {
		return vfs.Stat{}, vfs.ErrIO
	}
	return vfs.Stat{Ino: d.ino, Type: d.typ, Nlink: uint32(d.nlink), Size: d.size}, nil
}

// ReadDir implements vfs.FS.
func (f *FS) ReadDir(path string) ([]vfs.DirEnt, error) {
	d, err := f.lookup(path)
	if err != nil {
		return nil, err
	}
	if d.bad {
		return nil, vfs.ErrIO
	}
	if d.typ != vfs.TypeDir {
		return nil, vfs.ErrNotDir
	}
	out := make([]vfs.DirEnt, 0, len(d.dirents))
	for name, ref := range d.dirents {
		typ := vfs.TypeRegular
		if c := f.inodes[ref.ino]; c != nil {
			typ = c.typ
		}
		out = append(out, vfs.DirEnt{Name: name, Ino: ref.ino, Type: typ})
	}
	sortDirEnts(out)
	return out, nil
}

func sortDirEnts(ents []vfs.DirEnt) {
	for i := 1; i < len(ents); i++ {
		for j := i; j > 0 && ents[j].Name < ents[j-1].Name; j-- {
			ents[j], ents[j-1] = ents[j-1], ents[j]
		}
	}
}

// Open implements vfs.FS.
func (f *FS) Open(path string) (vfs.FD, error) {
	d, err := f.lookup(path)
	if err != nil {
		return -1, err
	}
	if d.bad {
		return -1, vfs.ErrIO
	}
	if d.typ == vfs.TypeDir {
		return -1, vfs.ErrIsDir
	}
	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = d.ino
	return fd, nil
}

// Close implements vfs.FS.
func (f *FS) Close(fd vfs.FD) error {
	if _, ok := f.fds[fd]; !ok {
		return vfs.ErrBadFD
	}
	delete(f.fds, fd)
	return nil
}

func (f *FS) fdInode(fd vfs.FD) (*dnode, error) {
	ino, ok := f.fds[fd]
	if !ok {
		return nil, vfs.ErrBadFD
	}
	d := f.inodes[ino]
	if d == nil {
		return nil, vfs.ErrBadFD
	}
	return d, nil
}

// Fsync implements vfs.FS: PMFS is synchronous, so this only validates fd.
func (f *FS) Fsync(fd vfs.FD) error {
	if _, ok := f.fds[fd]; !ok {
		return vfs.ErrBadFD
	}
	return nil
}

// Sync implements vfs.FS.
func (f *FS) Sync() error { return nil }

var _ vfs.FS = (*FS)(nil)

// OpenFDs implements vfs.FDCounter.
func (f *FS) OpenFDs() int { return len(f.fds) }
