package pmfs

import (
	"encoding/binary"

	"chipmunk/internal/vfs"
)

func le64(b []byte) uint64     { return binary.LittleEndian.Uint64(b) }
func le32(b []byte) uint32     { return binary.LittleEndian.Uint32(b) }
func put64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }
func put32(b []byte, v uint32) { binary.LittleEndian.PutUint32(b, v) }

// blockAlloc is the DRAM-only free-block list. PMFS famously keeps it in
// DRAM and rebuilds it at mount by scanning inode block pointers; bug 13
// is the truncate-list replay touching it before that rebuild has happened.
type blockAlloc struct {
	used  []bool
	start uint64
	total uint64
	hint  uint64
}

func newBlockAlloc(start, total uint64) *blockAlloc {
	return &blockAlloc{used: make([]bool, total), start: start, total: total, hint: start}
}

func (a *blockAlloc) alloc() (uint64, error) {
	for i := uint64(0); i < a.total-a.start; i++ {
		b := a.start + (a.hint-a.start+i)%(a.total-a.start)
		if !a.used[b] {
			a.used[b] = true
			a.hint = b + 1
			return b, nil
		}
	}
	return 0, vfs.ErrNoSpace
}

func (a *blockAlloc) markUsed(b uint64) bool {
	if b < a.start || b >= a.total || a.used[b] {
		return false
	}
	a.used[b] = true
	return true
}

func (a *blockAlloc) release(b uint64) bool {
	if b < a.start || b >= a.total || !a.used[b] {
		return false
	}
	a.used[b] = false
	return true
}

func (a *blockAlloc) freeBlocks() int {
	n := 0
	for b := a.start; b < a.total; b++ {
		if !a.used[b] {
			n++
		}
	}
	return n
}
