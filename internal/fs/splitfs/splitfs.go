// Package splitfs implements a SplitFS-like hybrid file system [Kadekodi et
// al., SOSP '19] in strict mode: a user-space library handles the data path
// and logs every operation synchronously, while a kernel file system
// (ext4-DAX, package extdax) provides the backing namespace.
//
// The PM device is split into three regions:
//
//   - the kernel region, formatted as ext4-DAX;
//   - the operation log, where the user-space half appends one checksummed
//     record per system call (this is what makes strict-mode SplitFS
//     synchronous and atomic even though ext4-DAX is weak);
//   - the staging area, where write data is placed with non-temporal
//     stores before its log record is published.
//
// A "relink" (triggered by fsync/sync, or by log/stage pressure) commits
// the accumulated state into the kernel file system — tagged with the
// highest op sequence it covers — and resets the log and staging area.
// Recovery mounts the kernel file system and replays log records newer than
// the kernel's tag.
//
// Injected bugs (Table 1): 21 (metadata record not fenced), 22 (staging
// cursor keyed by file descriptor, so a second FD's writes clobber staged
// data), 23 (replay groups records by file descriptor instead of global
// sequence order), 24 (record payload not flushed before the checksummed
// header), 25 (rename logged as create-new now and delete-old later).
package splitfs

import (
	"encoding/binary"
	"hash/crc32"

	"chipmunk/internal/bugs"
	"chipmunk/internal/fs/extdax"
	"chipmunk/internal/persist"
	"chipmunk/internal/vfs"
)

const (
	// Region split: the kernel gets half the device, the op-log a quarter,
	// the staging area the rest.
	logStart = 64 // within the op-log region

	// Entry header: {payloadLen u32, csum u32, seq u64, opcode u8, fdslot
	// u32}. The header occupies a full cache line so that sealing it never
	// implicitly writes back payload bytes sharing the line — the payload's
	// durability must come from its own flush (which bug 24 omits).
	entHdrSize = 64

	// stageChunk is the per-file staging window.
	stageChunk = 64 << 10

	opCreat        = 1
	opMkdir        = 2
	opLink         = 3
	opUnlink       = 4
	opRmdir        = 5
	opRename       = 6
	opRenameCreate = 7 // bug 25's first half
	opRenameDelete = 8 // bug 25's deferred second half
	opTruncate     = 9
	opFalloc       = 10
	opPwrite       = 11
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// openFile tracks one SplitFS descriptor.
type openFile struct {
	kfd  vfs.FD
	path string
	ino  uint64
}

// FS is the SplitFS instance.
type FS struct {
	pm   *persist.PM
	bugs bugs.Set

	kernel *extdax.FS
	logRg  *persist.Region
	stage  *persist.Region

	fds    map[vfs.FD]*openFile
	nextFD vfs.FD

	seq     uint64 // last op sequence number issued
	logTail int64  // next free byte in the op-log region
	mounted bool

	// Staging state. stageBase maps an inode to its chunk; the write
	// cursor is keyed per-inode (fixed) or per-FD (bug 22).
	stageBump  int64
	stageBase  map[uint64]int64
	inoCursor  map[uint64]int64
	fdCursor   map[vfs.FD]int64
	pendingOps [][]byte // bug 25: deferred delete-old records
}

// New creates a SplitFS over pm. The device must be large enough for the
// three regions (>= 1 MiB).
func New(pm *persist.PM, set bugs.Set) *FS {
	total := pm.Size()
	kernelSize := total / 2
	logSize := total / 4
	f := &FS{
		pm:   pm,
		bugs: set,
	}
	f.logRg = persist.NewRegion(pm, kernelSize, logSize)
	f.stage = persist.NewRegion(pm, kernelSize+logSize, total-kernelSize-logSize)
	f.kernel = extdax.New(persist.NewRegion(pm, 0, kernelSize), extdax.Ext4)
	return f
}

// Caps implements vfs.FS: strict-mode SplitFS is synchronous and atomic.
func (f *FS) Caps() vfs.Caps {
	return vfs.Caps{Name: "splitfs", Strong: true, AtomicWrite: true, SyncDataWrites: true}
}

func (f *FS) has(id bugs.ID) bool { return f.bugs.Has(id) }

// Mkfs implements vfs.FS.
func (f *FS) Mkfs() error {
	if err := f.kernel.Mkfs(); err != nil {
		return err
	}
	f.logRg.MemsetNT(0, 0, logStart)
	f.logRg.Fence()
	f.resetVolatile()
	f.seq = 0
	f.logTail = logStart
	f.mounted = true
	return nil
}

func (f *FS) resetVolatile() {
	f.fds = map[vfs.FD]*openFile{}
	f.nextFD = 3
	f.stageBump = 0
	f.stageBase = map[uint64]int64{}
	f.inoCursor = map[uint64]int64{}
	f.fdCursor = map[vfs.FD]int64{}
	f.pendingOps = nil
}

// Unmount implements vfs.FS.
func (f *FS) Unmount() error {
	f.mounted = false
	f.fds = map[vfs.FD]*openFile{}
	return f.kernel.Unmount()
}

// relink commits the accumulated state into the kernel file system and
// resets the log and staging area. In the real SplitFS this is the relink
// ioctl that swaps staged extents into the inode; our kernel substrate
// expresses it as a tagged journal commit.
func (f *FS) relink() error {
	f.flushPending()
	if err := f.kernel.CommitTagged(f.seq); err != nil {
		return err
	}
	f.logTail = logStart
	f.stageBump = 0
	f.stageBase = map[uint64]int64{}
	f.inoCursor = map[uint64]int64{}
	f.fdCursor = map[vfs.FD]int64{}
	return nil
}

// appendEntry publishes one op record. metadata selects bug 21's missing
// fence; bug 24 skips the payload flush on every record.
func (f *FS) appendEntry(opcode uint8, fdslot vfs.FD, payload []byte, metadata bool) error {
	f.flushPending()
	return f.appendEntryRaw(opcode, fdslot, payload, metadata)
}

func (f *FS) appendEntryRaw(opcode uint8, fdslot vfs.FD, payload []byte, metadata bool) error {
	need := int64(entHdrSize + len(payload))
	if f.logTail+need > f.logRg.Size() {
		// Log pressure: relink to make room.
		if err := f.relink(); err != nil {
			return err
		}
	}
	hdr := make([]byte, entHdrSize)
	binary.LittleEndian.PutUint32(hdr, uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	f.seq++
	binary.LittleEndian.PutUint64(hdr[8:], f.seq)
	hdr[16] = opcode
	binary.LittleEndian.PutUint32(hdr[17:], uint32(fdslot))

	f.logRg.Store(f.logTail+entHdrSize, payload)
	if !f.has(bugs.SplitfsTailBeforeCsum) {
		f.logRg.Flush(f.logTail+entHdrSize, len(payload))
	}
	// Bug 24: the checksummed header is published while the payload bytes
	// were never written back — recovery sees a sealed record whose body
	// checksum cannot match and silently drops the operation.
	f.logRg.Store(f.logTail, hdr)
	f.logRg.Flush(f.logTail, entHdrSize)
	if metadata && f.has(bugs.SplitfsOplogUnfenced) {
		// Bug 21: no fence; the record is still in flight when the call
		// returns.
	} else {
		f.logRg.Fence()
	}
	f.logTail += need
	return nil
}

// flushPending appends records deferred by bug 25.
func (f *FS) flushPending() {
	pend := f.pendingOps
	f.pendingOps = nil
	for _, p := range pend {
		// opcode/fdslot packed in the first two bytes of the deferred blob.
		f.appendEntryRaw(p[0], 0, p[1:], true)
	}
}

// payload builders.

func pstr(s string) []byte {
	b := []byte{byte(len(s))}
	return append(b, s...)
}

func readPstr(b []byte) (string, []byte) {
	n := int(b[0])
	return string(b[1 : 1+n]), b[1+n:]
}

func pu64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

var _ vfs.FS = (*FS)(nil)

// OpenFDs implements vfs.FDCounter. Every SplitFS descriptor wraps one
// kernel descriptor, so the two tables must agree; reporting the larger
// count surfaces leaks on either side of the delegation.
func (f *FS) OpenFDs() int {
	if k := f.kernel.OpenFDs(); k > len(f.fds) {
		return k
	}
	return len(f.fds)
}
