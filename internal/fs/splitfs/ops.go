package splitfs

import (
	"encoding/binary"

	"chipmunk/internal/bugs"
	"chipmunk/internal/vfs"
)

// Create implements vfs.FS.
func (f *FS) Create(path string) (vfs.FD, error) {
	kfd, err := f.kernel.Create(path)
	if err != nil {
		return -1, err
	}
	ino, _ := f.kernel.InoOf(path)
	if err := f.appendEntry(opCreat, -1, pstr(vfs.Clean(path)), true); err != nil {
		return -1, err
	}
	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = &openFile{kfd: kfd, path: vfs.Clean(path), ino: ino}
	return fd, nil
}

// Open implements vfs.FS.
func (f *FS) Open(path string) (vfs.FD, error) {
	kfd, err := f.kernel.Open(path)
	if err != nil {
		return -1, err
	}
	ino, _ := f.kernel.InoOf(path)
	fd := f.nextFD
	f.nextFD++
	f.fds[fd] = &openFile{kfd: kfd, path: vfs.Clean(path), ino: ino}
	return fd, nil
}

// Close implements vfs.FS.
func (f *FS) Close(fd vfs.FD) error {
	of, ok := f.fds[fd]
	if !ok {
		return vfs.ErrBadFD
	}
	delete(f.fds, fd)
	delete(f.fdCursor, fd)
	return f.kernel.Close(of.kfd)
}

// Mkdir implements vfs.FS.
func (f *FS) Mkdir(path string) error {
	if err := f.kernel.Mkdir(path); err != nil {
		return err
	}
	return f.appendEntry(opMkdir, -1, pstr(vfs.Clean(path)), true)
}

// Rmdir implements vfs.FS.
func (f *FS) Rmdir(path string) error {
	if err := f.kernel.Rmdir(path); err != nil {
		return err
	}
	return f.appendEntry(opRmdir, -1, pstr(vfs.Clean(path)), true)
}

// Link implements vfs.FS.
func (f *FS) Link(oldPath, newPath string) error {
	if err := f.kernel.Link(oldPath, newPath); err != nil {
		return err
	}
	payload := append(pstr(vfs.Clean(oldPath)), pstr(vfs.Clean(newPath))...)
	return f.appendEntry(opLink, -1, payload, true)
}

// Unlink implements vfs.FS.
func (f *FS) Unlink(path string) error {
	if err := f.kernel.Unlink(path); err != nil {
		return err
	}
	return f.appendEntry(opUnlink, -1, pstr(vfs.Clean(path)), true)
}

// Rename implements vfs.FS.
//
// Fixed: one atomic rename record. Bug 25 (files only): the optimized path
// logs the create of the new name immediately and defers the delete of the
// old name to the next log append — a crash in between replays into a state
// with both names.
func (f *FS) Rename(oldPath, newPath string) error {
	oldPath, newPath = vfs.Clean(oldPath), vfs.Clean(newPath)
	st, statErr := f.kernel.Stat(oldPath)
	if err := f.kernel.Rename(oldPath, newPath); err != nil {
		return err
	}
	if f.has(bugs.SplitfsRenameOldSurvives) && statErr == nil && st.Type == vfs.TypeRegular {
		payload := append(pstr(oldPath), pstr(newPath)...)
		if err := f.appendEntry(opRenameCreate, -1, payload, true); err != nil {
			return err
		}
		deferred := append([]byte{opRenameDelete}, pstr(oldPath)...)
		f.pendingOps = append(f.pendingOps, deferred)
		return nil
	}
	payload := append(pstr(oldPath), pstr(newPath)...)
	return f.appendEntry(opRename, -1, payload, true)
}

// Truncate implements vfs.FS.
func (f *FS) Truncate(path string, size int64) error {
	ino, err := f.kernel.InoOf(vfs.Clean(path))
	if err != nil {
		return err
	}
	if err := f.kernel.Truncate(path, size); err != nil {
		return err
	}
	payload := append(pu64(ino), pu64(uint64(size))...)
	return f.appendEntry(opTruncate, -1, payload, true)
}

// Fallocate implements vfs.FS.
func (f *FS) Fallocate(fd vfs.FD, off, length int64) error {
	of, ok := f.fds[fd]
	if !ok {
		return vfs.ErrBadFD
	}
	if err := f.kernel.Fallocate(of.kfd, off, length); err != nil {
		return err
	}
	payload := append(pu64(of.ino), append(pu64(uint64(off)), pu64(uint64(length))...)...)
	return f.appendEntry(opFalloc, fd, payload, true)
}

// Pwrite implements vfs.FS: stage the data, log the record, update the
// kernel's volatile state.
func (f *FS) Pwrite(fd vfs.FD, data []byte, off int64) (int, error) {
	of, ok := f.fds[fd]
	if !ok {
		return 0, vfs.ErrBadFD
	}
	if off < 0 {
		return 0, vfs.ErrInvalid
	}
	if len(data) == 0 {
		return 0, nil
	}
	if int64(len(data)) > stageChunk {
		return 0, vfs.ErrNoSpace
	}

	// Reserve a staging window for the inode.
	base, ok := f.stageBase[of.ino]
	if !ok {
		if f.stageBump+stageChunk > f.stage.Size() {
			if err := f.relink(); err != nil {
				return 0, err
			}
		}
		base = f.stageBump
		f.stageBump += stageChunk
		f.stageBase[of.ino] = base
	}

	// The staging cursor: per-inode in the fixed system; the published code
	// tracked it per file descriptor (bug 22). A descriptor opened while
	// the file is otherwise closed correctly resumes from the inode's
	// cursor, but a descriptor opened CONCURRENTLY with another initializes
	// its private cursor to the chunk base — its first write then clobbers
	// staged bytes that earlier records still reference. Only concurrent
	// two-descriptor workloads (which ACE never generates) reach the bad
	// path.
	var cursor int64
	if f.has(bugs.SplitfsStagePerFD) {
		c, ok := f.fdCursor[fd]
		if !ok {
			if f.anotherOpenFD(fd, of.ino) {
				c = 0 // the forgotten concurrent-open case
			} else {
				c = f.inoCursor[of.ino]
			}
		}
		cursor = c
	} else {
		cursor = f.inoCursor[of.ino]
	}
	if cursor+int64(len(data)) > stageChunk {
		if err := f.relink(); err != nil {
			return 0, err
		}
		base = f.stageBump
		f.stageBump += stageChunk
		f.stageBase[of.ino] = base
		cursor = 0
	}
	stageOff := base + cursor
	f.stage.MemcpyNT(stageOff, data)
	f.stage.Fence()
	if f.has(bugs.SplitfsStagePerFD) {
		f.fdCursor[fd] = cursor + int64(len(data))
	}
	if cursor+int64(len(data)) > f.inoCursor[of.ino] {
		f.inoCursor[of.ino] = cursor + int64(len(data))
	}

	// Log record: {ino, off, len, stageOff}.
	payload := append(pu64(of.ino), append(pu64(uint64(off)),
		append(pu64(uint64(len(data))), pu64(uint64(stageOff))...)...)...)
	if err := f.appendEntry(opPwrite, fd, payload, false); err != nil {
		return 0, err
	}

	// Kernel volatile state.
	if _, err := f.kernel.Pwrite(of.kfd, data, off); err != nil {
		return 0, err
	}
	return len(data), nil
}

// Pread implements vfs.FS (reads come from the kernel's volatile tree,
// which SplitFS keeps current).
func (f *FS) Pread(fd vfs.FD, buf []byte, off int64) (int, error) {
	of, ok := f.fds[fd]
	if !ok {
		return 0, vfs.ErrBadFD
	}
	return f.kernel.Pread(of.kfd, buf, off)
}

// Fsync implements vfs.FS: relink.
func (f *FS) Fsync(fd vfs.FD) error {
	if _, ok := f.fds[fd]; !ok {
		return vfs.ErrBadFD
	}
	return f.relink()
}

// Sync implements vfs.FS.
func (f *FS) Sync() error { return f.relink() }

// Stat implements vfs.FS.
func (f *FS) Stat(path string) (vfs.Stat, error) { return f.kernel.Stat(path) }

// ReadDir implements vfs.FS.
func (f *FS) ReadDir(path string) ([]vfs.DirEnt, error) { return f.kernel.ReadDir(path) }

// anotherOpenFD reports whether a different descriptor currently has ino
// open.
func (f *FS) anotherOpenFD(fd vfs.FD, ino uint64) bool {
	for other, of := range f.fds {
		if other != fd && of.ino == ino {
			return true
		}
	}
	return false
}

// decodeWrite unpacks a pwrite payload.
func decodeWrite(p []byte) (ino uint64, off, n, stageOff int64) {
	ino = binary.LittleEndian.Uint64(p)
	off = int64(binary.LittleEndian.Uint64(p[8:]))
	n = int64(binary.LittleEndian.Uint64(p[16:]))
	stageOff = int64(binary.LittleEndian.Uint64(p[24:]))
	return
}
