package splitfs

import (
	"encoding/binary"
	"hash/crc32"
	"sort"

	"chipmunk/internal/bugs"
	"chipmunk/internal/vfs"
)

// logEntry is one parsed op-log record.
type logEntry struct {
	seq     uint64
	opcode  uint8
	fdslot  int32
	payload []byte
}

// Mount implements vfs.FS: recover the kernel file system, then replay the
// op-log records the kernel commit does not cover.
func (f *FS) Mount() error {
	if err := f.kernel.Mount(); err != nil {
		return err
	}
	f.resetVolatile()
	tag := f.kernel.Tag()

	entries, scanEnd := f.scanLog()
	f.logTail = scanEnd
	f.seq = tag
	for _, e := range entries {
		if e.seq > f.seq {
			f.seq = e.seq
		}
	}

	var replay []logEntry
	for _, e := range entries {
		if e.seq > tag {
			replay = append(replay, e)
		}
	}
	if f.has(bugs.SplitfsRelinkSkip) {
		// Bug 23: within a run of consecutive write records to one inode,
		// the replay loop drains each descriptor's records as a group
		// instead of following global sequence order. Sequential workloads
		// are unaffected (descriptor numbers increase with the sequence),
		// but interleaved writes through two concurrently open descriptors
		// replay out of order and the stale data wins.
		reorderRunsPerFD(replay)
	}
	for _, e := range replay {
		f.replayEntry(e)
	}

	// Checkpoint the recovered state so the log and staging area restart
	// clean (the real SplitFS relinks during recovery too).
	if err := f.relink(); err != nil {
		return err
	}
	f.mounted = true
	return nil
}

// scanLog parses records from the log start: a record is accepted while its
// payload checksum matches and sequence numbers strictly increase (stale
// records from before the last relink fail the monotonicity check).
func (f *FS) scanLog() ([]logEntry, int64) {
	var out []logEntry
	pos := int64(logStart)
	lastSeq := uint64(0)
	for pos+entHdrSize <= f.logRg.Size() {
		hdr := f.logRg.Load(pos, entHdrSize)
		plen := int64(binary.LittleEndian.Uint32(hdr))
		csum := binary.LittleEndian.Uint32(hdr[4:])
		seq := binary.LittleEndian.Uint64(hdr[8:])
		opcode := hdr[16]
		fdslot := int32(binary.LittleEndian.Uint32(hdr[17:]))
		if opcode == 0 || opcode > opPwrite || plen < 0 || pos+entHdrSize+plen > f.logRg.Size() {
			break
		}
		if seq <= lastSeq {
			break
		}
		payload := f.logRg.Load(pos+entHdrSize, int(plen))
		if crc32.Checksum(payload, castagnoli) != csum {
			// Torn record: end of the valid log. With bug 24 this is how a
			// completed operation silently disappears.
			break
		}
		out = append(out, logEntry{seq: seq, opcode: opcode, fdslot: fdslot, payload: payload})
		lastSeq = seq
		pos += entHdrSize + plen
	}
	return out, pos
}

// replayEntry applies one record to the kernel's volatile state. Replay is
// deterministic: records were produced by successful operations on exactly
// this base state, so errors indicate an earlier record was lost; they are
// ignored, matching the real system's best-effort log replay.
func (f *FS) replayEntry(e logEntry) {
	switch e.opcode {
	case opCreat:
		path, _ := readPstr(e.payload)
		if kfd, err := f.kernel.Create(path); err == nil {
			f.kernel.Close(kfd)
		}
	case opMkdir:
		path, _ := readPstr(e.payload)
		f.kernel.Mkdir(path)
	case opRmdir:
		path, _ := readPstr(e.payload)
		f.kernel.Rmdir(path)
	case opLink:
		oldPath, rest := readPstr(e.payload)
		newPath, _ := readPstr(rest)
		f.kernel.Link(oldPath, newPath)
	case opUnlink:
		path, _ := readPstr(e.payload)
		f.kernel.Unlink(path)
	case opRename:
		oldPath, rest := readPstr(e.payload)
		newPath, _ := readPstr(rest)
		f.kernel.Rename(oldPath, newPath)
	case opRenameCreate:
		// Bug 25's first half: materialize the new name; the old name is
		// removed only by the (possibly lost) opRenameDelete record.
		oldPath, rest := readPstr(e.payload)
		newPath, _ := readPstr(rest)
		f.kernel.Link(oldPath, newPath)
	case opRenameDelete:
		path, _ := readPstr(e.payload)
		f.kernel.Unlink(path)
	case opTruncate:
		ino := binary.LittleEndian.Uint64(e.payload)
		size := int64(binary.LittleEndian.Uint64(e.payload[8:]))
		f.kernel.TruncateIno(ino, size)
	case opFalloc:
		ino := binary.LittleEndian.Uint64(e.payload)
		off := int64(binary.LittleEndian.Uint64(e.payload[8:]))
		n := int64(binary.LittleEndian.Uint64(e.payload[16:]))
		f.kernel.ExtendIno(ino, off+n)
	case opPwrite:
		ino, off, n, stageOff := decodeWrite(e.payload)
		if stageOff < 0 || stageOff+n > f.stage.Size() {
			return
		}
		data := f.stage.Load(stageOff, int(n))
		f.kernel.PwriteIno(ino, data, off)
	}
}

// reorderRunsPerFD stable-sorts each maximal run of consecutive pwrite
// records targeting the same inode by descriptor number (bug 23's replay
// grouping).
func reorderRunsPerFD(entries []logEntry) {
	i := 0
	for i < len(entries) {
		if entries[i].opcode != opPwrite {
			i++
			continue
		}
		ino := binary.LittleEndian.Uint64(entries[i].payload)
		j := i + 1
		for j < len(entries) && entries[j].opcode == opPwrite &&
			binary.LittleEndian.Uint64(entries[j].payload) == ino {
			j++
		}
		run := entries[i:j]
		sort.SliceStable(run, func(a, b int) bool { return run[a].fdslot < run[b].fdslot })
		i = j
	}
}

var _ vfs.FS = (*FS)(nil)
